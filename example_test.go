package hyparview_test

import (
	"fmt"
	"time"

	"hyparview"
)

// ExampleNewCluster builds a simulated overlay and floods one broadcast.
func ExampleNewCluster() {
	c := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
		N:    200,
		Seed: 7,
	})
	c.Stabilize(30)
	fmt.Printf("connected: %v\n", c.Snapshot().IsConnected())
	fmt.Printf("reliability: %.2f\n", c.Broadcast())
	// Output:
	// connected: true
	// reliability: 1.00
}

// ExampleNewCluster_massFailure reproduces the paper's headline behaviour:
// reliability survives a catastrophic 80% crash.
func ExampleNewCluster_massFailure() {
	c := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
		N:    500,
		Seed: 11,
	})
	c.Stabilize(50)
	c.FailFraction(0.8)
	rels := c.BroadcastBurst(5)
	fmt.Printf("5th message after 80%% failures: %.2f\n", rels[4])
	// Output:
	// 5th message after 80% failures: 1.00
}

// ExampleNewCluster_xbot runs the X-BOT optimizer under a Euclidean latency
// model and shows the overlay getting sharply cheaper at full reliability.
func ExampleNewCluster_xbot() {
	oblivious := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
		N: 300, Seed: 7, LatencyModel: hyparview.NewEuclideanLatency(7),
	})
	optimized := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
		N: 300, Seed: 7, LatencyModel: hyparview.NewEuclideanLatency(7),
		Optimizer: hyparview.OptimizerXBot,
	})
	oblivious.Stabilize(40)
	optimized.Stabilize(40)
	cut := 1 - optimized.MeanActiveLinkCost()/oblivious.MeanActiveLinkCost()
	fmt.Printf("link cost cut by at least half: %v\n", cut > 0.5)
	fmt.Printf("reliability: %.2f\n", optimized.Broadcast())
	// Output:
	// link cost cut by at least half: true
	// reliability: 1.00
}

// ExampleNewAgent runs two real TCP nodes on loopback.
func ExampleNewAgent() {
	got := make(chan string, 1)
	a, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
		OnDeliver: func(p []byte) { got <- string(p) },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer a.Close()
	b, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer b.Close()

	if err := b.Join(a.Addr()); err != nil {
		fmt.Println(err)
		return
	}
	if err := b.Broadcast([]byte("hello overlay")); err != nil {
		fmt.Println(err)
		return
	}
	select {
	case m := <-got:
		fmt.Println(m)
	case <-time.After(5 * time.Second):
		fmt.Println("timeout")
	}
	// Output:
	// hello overlay
}

// ExampleNewAgent_fullStack runs the complete protocol stack over real TCP:
// Plumtree broadcast trees instead of flooding, and the X-BOT optimizer
// rewiring the overlay from live RTT measurements.
func ExampleNewAgent_fullStack() {
	cfg := hyparview.AgentConfig{
		CyclePeriod: 100 * time.Millisecond,
		Broadcast:   hyparview.AgentBroadcastPlumtree,
		Optimize:    true,
	}
	got := make(chan string, 1)
	cfg.OnDeliver = func(p []byte) { got <- string(p) }
	a, err := hyparview.NewAgent("127.0.0.1:0", cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer a.Close()
	b, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
		CyclePeriod: 100 * time.Millisecond,
		Broadcast:   hyparview.AgentBroadcastPlumtree,
		Optimize:    true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer b.Close()

	if err := b.Join(a.Addr()); err != nil {
		fmt.Println(err)
		return
	}
	if err := b.Broadcast([]byte("over the tree")); err != nil {
		fmt.Println(err)
		return
	}
	select {
	case m := <-got:
		fmt.Println(m)
	case <-time.After(5 * time.Second):
		fmt.Println("timeout")
	}
	stats := a.BroadcastStats()
	fmt.Printf("delivered: %d\n", stats.Delivered)
	// Output:
	// over the tree
	// delivered: 1
}
