// Command benchdelta compares `go test -bench` output against the committed
// BENCH_*.json baselines and emits a benchstat-style delta table. It is
// warn-only by design: regressions print GitHub Actions ::warning::
// annotations and the exit status is always 0, because the CI runners'
// wall-clock noise (shared vCPUs) makes a hard gate flaky — the committed
// baselines move only when a PR deliberately re-records them.
//
// A baseline datapoint is compared on the first metric it carries, in order:
// events_per_sec (higher is better), msgs_per_sec (higher is better), then
// ns_per_op (lower is better). That lets one tool gate the simulator suites,
// the pub/sub workload suite, and the transport suite's latency and
// throughput families alike.
//
// Usage:
//
//	go run ./scripts/benchdelta -baseline BENCH_sim.json bench-sim.txt bench-cluster.txt
//	go run ./scripts/benchdelta -baseline BENCH_transport.json bench-transport.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one benchmark result line, capturing the name (subtest
// paths like "BenchmarkBroadcastThroughput/agents=8" included, the -N
// GOMAXPROCS suffix stripped), the ns/op figure, and the trailing custom
// metrics, e.g.
// "BenchmarkCluster100k-4  20  377255566 ns/op  1050251 events/sec ...".
var benchLine = regexp.MustCompile(`^(Benchmark[\w/=.]+?)(?:-\d+)?\s+\d+\s+(\S+)\s+ns/op(.*)$`)

// metricPair matches one "<value> <unit>" custom metric after ns/op.
var metricPair = regexp.MustCompile(`(\S+)\s+([\w/]+)`)

// baseline is the subset of the BENCH_*.json files this tool consumes.
type baseline struct {
	Datapoints []struct {
		Name         string  `json:"name"`
		EventsPerSec float64 `json:"events_per_sec"`
		MsgsPerSec   float64 `json:"msgs_per_sec"`
		NsPerOp      float64 `json:"ns_per_op"`
	} `json:"datapoints"`
}

// refPoint is one comparable baseline value: the metric's unit label, the
// committed value, and its direction.
type refPoint struct {
	unit        string
	want        float64
	lowerBetter bool
}

// warnBelow is the fraction of the committed baseline a measurement may drop
// to before a warning is emitted; generous because CI machines are noisy.
// Lower-is-better metrics warn symmetrically, at want/warnBelow.
const warnBelow = 0.70

func main() {
	baselinePath := flag.String("baseline", "BENCH_sim.json", "committed baseline JSON")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Printf("::warning::benchdelta: %v (skipping comparison)\n", err)
		return
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Printf("::warning::benchdelta: parse %s: %v\n", *baselinePath, err)
		return
	}
	ref := map[string]refPoint{}
	for _, d := range base.Datapoints {
		switch {
		case d.EventsPerSec > 0:
			ref[d.Name] = refPoint{unit: "events/sec", want: d.EventsPerSec}
		case d.MsgsPerSec > 0:
			ref[d.Name] = refPoint{unit: "msgs/sec", want: d.MsgsPerSec}
		case d.NsPerOp > 0:
			ref[d.Name] = refPoint{unit: "ns/op", want: d.NsPerOp, lowerBetter: true}
		}
	}

	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "baseline", "this run", "delta")
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Printf("::warning::benchdelta: %v\n", err)
			continue
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			name := m[1]
			rp, ok := ref[name]
			if !ok {
				continue
			}
			got, ok := measured(rp.unit, m[2], m[3])
			if !ok {
				continue
			}
			// delta is signed so that positive always means improved.
			delta := (got - rp.want) / rp.want * 100
			regressed := got < rp.want*warnBelow
			if rp.lowerBetter {
				delta = -delta
				regressed = got > rp.want/warnBelow
			}
			fmt.Printf("%-44s %11.0f %s %11.0f %s %+7.1f%%\n", name, rp.want, rp.unit, got, rp.unit, delta)
			if regressed {
				fmt.Printf("::warning::%s: %.0f %s is %.0f%% worse than the committed baseline %.0f (threshold %.0f%%)\n",
					name, got, rp.unit, -delta, rp.want, (1-warnBelow)*100)
			}
		}
		f.Close()
	}
}

// measured extracts the value of the wanted unit from one bench line: ns/op
// comes from its fixed column, anything else from the trailing custom-metric
// pairs.
func measured(unit, nsField, rest string) (float64, bool) {
	if unit == "ns/op" {
		v, err := strconv.ParseFloat(nsField, 64)
		return v, err == nil
	}
	for _, p := range metricPair.FindAllStringSubmatch(rest, -1) {
		if p[2] == unit {
			v, err := strconv.ParseFloat(p[1], 64)
			return v, err == nil
		}
	}
	return 0, false
}
