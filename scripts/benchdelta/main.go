// Command benchdelta compares `go test -bench` output against the committed
// BENCH_sim.json baselines and emits a benchstat-style delta table. It is
// warn-only by design: regressions print GitHub Actions ::warning::
// annotations and the exit status is always 0, because the CI runners'
// wall-clock noise (shared vCPUs) makes a hard gate flaky — the committed
// baselines move only when a PR deliberately re-records them.
//
// Usage:
//
//	go run ./scripts/benchdelta -baseline BENCH_sim.json bench-sim.txt bench-cluster.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches one benchmark result line with an events/sec metric,
// e.g. "BenchmarkCluster100k  20  377255566 ns/op  1050251 events/sec ...".
var benchLine = regexp.MustCompile(`^(Benchmark\w+?)(?:-\d+)?\s+\d+\s+\S+\s+ns/op\s+(\S+)\s+events/sec`)

// baseline is the subset of BENCH_sim.json this tool consumes.
type baseline struct {
	Datapoints []struct {
		Name         string  `json:"name"`
		EventsPerSec float64 `json:"events_per_sec"`
	} `json:"datapoints"`
}

// warnBelow is the fraction of the committed baseline a measurement may drop
// to before a warning is emitted; generous because CI machines are noisy.
const warnBelow = 0.70

func main() {
	baselinePath := flag.String("baseline", "BENCH_sim.json", "committed baseline JSON")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Printf("::warning::benchdelta: %v (skipping comparison)\n", err)
		return
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Printf("::warning::benchdelta: parse %s: %v\n", *baselinePath, err)
		return
	}
	ref := map[string]float64{}
	for _, d := range base.Datapoints {
		if d.EventsPerSec > 0 {
			ref[d.Name] = d.EventsPerSec
		}
	}

	fmt.Printf("%-28s %14s %14s %8s\n", "benchmark", "baseline", "this run", "delta")
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Printf("::warning::benchdelta: %v\n", err)
			continue
		}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			m := benchLine.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			name := m[1]
			got, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			want, ok := ref[name]
			if !ok {
				fmt.Printf("%-28s %14s %14.0f %8s\n", name, "(none)", got, "-")
				continue
			}
			delta := (got - want) / want * 100
			fmt.Printf("%-28s %14.0f %14.0f %+7.1f%%\n", name, want, got, delta)
			if got < want*warnBelow {
				fmt.Printf("::warning::%s: %.0f events/sec is %.0f%% below the committed baseline %.0f (threshold %.0f%%)\n",
					name, got, -delta, want, (1-warnBelow)*100)
			}
		}
		f.Close()
	}
}
