package hyparview

// Benchmark harness: one testing.B benchmark per table/figure of the paper's
// evaluation (§5), plus ablation benches for the design choices DESIGN.md
// calls out. Each benchmark regenerates its experiment at a reduced scale
// (the full n=10,000 runs live in cmd/hpv-sim and EXPERIMENTS.md) and
// reports the experiment's headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as a quick-shape regression check.

import (
	"testing"

	"hyparview/internal/core"
	"hyparview/internal/metrics"
	"hyparview/internal/peer"
	"hyparview/internal/sim"
)

const (
	benchN      = 1000
	benchCycles = 50
)

func benchOpts(seed uint64) sim.Options {
	return sim.Options{N: benchN, Seed: seed, StabilizationCycles: benchCycles}
}

// BenchmarkFig1FanoutReliability regenerates Fig. 1(a): Cyclon's reliability
// as a function of the gossip fanout.
func BenchmarkFig1FanoutReliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := sim.Fig1FanoutReliability(sim.Cyclon, benchOpts(uint64(i+1)), []int{2, 4, 6}, 10)
		if len(tbl.Rows) != 3 {
			b.Fatal("unexpected table shape")
		}
	}
}

// BenchmarkFig1cFailure50 regenerates Fig. 1(c): the 100-message burst after
// 50% node failures under Cyclon and Scamp.
func BenchmarkFig1cFailure50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := sim.Fig1cFailure50(benchOpts(uint64(i+1)), 25)
		if len(tbl.Rows) != 25 {
			b.Fatal("unexpected table shape")
		}
	}
}

// BenchmarkFig2MassFailure regenerates Fig. 2 at one failure level (60%) for
// all four protocols and reports HyParView's mean reliability.
func BenchmarkFig2MassFailure(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		points, _ := sim.Fig2MassFailure(benchOpts(uint64(i+1)), []int{60}, 30)
		for _, p := range points {
			if p.Protocol == sim.HyParView {
				rel = p.Reliability
			}
		}
	}
	b.ReportMetric(rel, "hyparview-rel@60%")
}

// BenchmarkFig3Recovery regenerates one Fig. 3 panel (60% failures) and
// reports HyParView's final-message reliability.
func BenchmarkFig3Recovery(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		c := sim.NewCluster(sim.HyParView, benchOpts(uint64(i+1)))
		c.Stabilize(benchCycles)
		c.FailFraction(0.6)
		rels := c.BroadcastBurst(30)
		last = rels[len(rels)-1]
	}
	b.ReportMetric(last, "final-rel")
}

// BenchmarkFig4HealingTime regenerates Fig. 4 at 40% failures and reports
// HyParView's healing time in cycles.
func BenchmarkFig4HealingTime(b *testing.B) {
	var cycles float64
	for i := 0; i < b.N; i++ {
		results, _ := sim.Fig4HealingTime(benchOpts(uint64(i+1)), []int{40}, 5, 50)
		for _, r := range results {
			if r.Protocol == sim.HyParView {
				cycles = float64(r.Cycles)
			}
		}
	}
	b.ReportMetric(cycles, "healing-cycles")
}

// BenchmarkTable1GraphProperties regenerates Table 1 and reports HyParView's
// clustering coefficient.
func BenchmarkTable1GraphProperties(b *testing.B) {
	var cc float64
	for i := 0; i < b.N; i++ {
		rows, _ := sim.Table1GraphProperties(benchOpts(uint64(i+1)), 50, 10)
		for _, r := range rows {
			if r.Protocol == sim.HyParView {
				cc = r.Clustering
			}
		}
	}
	b.ReportMetric(cc, "clustering")
}

// BenchmarkFig5InDegree regenerates Fig. 5's in-degree distributions.
func BenchmarkFig5InDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := sim.Fig5InDegree(benchOpts(uint64(i + 1)))
		if len(tbl.Rows) == 0 {
			b.Fatal("empty distribution")
		}
	}
}

// --- Micro-benchmarks of the operational hot paths ---------------------------

// BenchmarkBroadcastFlood measures one full flood over a stabilized
// 1000-node HyParView overlay (the per-message cost of dissemination).
func BenchmarkBroadcastFlood(b *testing.B) {
	c := sim.NewCluster(sim.HyParView, benchOpts(1))
	c.Stabilize(benchCycles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rel := c.Broadcast(); rel < 1 {
			b.Fatalf("reliability %v", rel)
		}
	}
}

// BenchmarkBroadcastFanout measures one fanout-4 gossip round over Cyclon.
func BenchmarkBroadcastFanout(b *testing.B) {
	c := sim.NewCluster(sim.Cyclon, benchOpts(1))
	c.Stabilize(benchCycles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Broadcast()
	}
}

// BenchmarkMembershipCycle measures one full membership cycle (every node
// shuffles once) on a 1000-node HyParView overlay.
func BenchmarkMembershipCycle(b *testing.B) {
	c := sim.NewCluster(sim.HyParView, benchOpts(1))
	c.Stabilize(benchCycles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sim.RunCycle()
	}
}

// BenchmarkJoin measures the cost of one node joining a 1000-node overlay
// (JOIN + ARWL random walks + symmetric connects), including the message
// processing it triggers across the cluster.
func BenchmarkJoin(b *testing.B) {
	c := sim.NewCluster(sim.HyParView, benchOpts(1))
	c.Stabilize(benchCycles)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodeID := ID(benchN + i + 1)
		var nd *core.Node
		c.Sim.Add(nodeID, func(env peer.Env) peer.Process {
			nd = core.New(env, core.Config{})
			return nd
		})
		if err := nd.Join(ID(1)); err != nil {
			b.Fatal(err)
		}
		c.Sim.Drain()
	}
}

// --- Ablations ----------------------------------------------------------------

// BenchmarkAblationPassiveViewSize sweeps the passive view size and reports
// post-failure reliability: the paper's stated future work ("relation
// between passive view size and resilience", §6).
func BenchmarkAblationPassiveViewSize(b *testing.B) {
	for _, size := range []int{5, 15, 30, 60} {
		size := size
		b.Run(metricName("passive", size), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts(uint64(i + 1))
				opts.HyParView = core.Config{PassiveSize: size}
				c := sim.NewCluster(sim.HyParView, opts)
				c.Stabilize(benchCycles)
				c.FailFraction(0.8)
				rel = metrics.Mean(c.BroadcastBurst(20))
			}
			b.ReportMetric(rel, "rel@80%fail")
		})
	}
}

// BenchmarkAblationARWL sweeps the Active Random Walk Length and reports the
// overlay's in-degree spread (ARWL controls how well joins diffuse).
func BenchmarkAblationARWL(b *testing.B) {
	for _, arwl := range []uint8{1, 3, 6, 10} {
		arwl := arwl
		b.Run(metricName("arwl", int(arwl)), func(b *testing.B) {
			var cc float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts(uint64(i + 1))
				opts.HyParView = core.Config{ARWL: arwl, PRWL: 1, ShuffleTTL: arwl}
				c := sim.NewCluster(sim.HyParView, opts)
				c.Stabilize(benchCycles)
				cc = c.Snapshot().ClusteringCoefficient()
			}
			b.ReportMetric(cc, "clustering")
		})
	}
}

// BenchmarkAblationShuffleMix sweeps the active/passive mix of the shuffle
// exchange list (ka/kp, §4.4) and reports post-failure reliability.
func BenchmarkAblationShuffleMix(b *testing.B) {
	mixes := []struct{ ka, kp int }{{0, 7}, {3, 4}, {5, 2}}
	for _, mix := range mixes {
		mix := mix
		b.Run(metricName("ka", mix.ka), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts(uint64(i + 1))
				opts.HyParView = core.Config{ShuffleKa: mix.ka, ShuffleKp: mix.kp}
				c := sim.NewCluster(sim.HyParView, opts)
				c.Stabilize(benchCycles)
				c.FailFraction(0.6)
				rel = metrics.Mean(c.BroadcastBurst(20))
			}
			b.ReportMetric(rel, "rel@60%fail")
		})
	}
}

// BenchmarkAblationPriority compares the NEIGHBOR priority mechanism on/off:
// without high-priority requests, isolated nodes cannot force themselves
// back into saturated views (§4.3).
func BenchmarkAblationPriority(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "priority-on"
		if disabled {
			name = "priority-off"
		}
		b.Run(name, func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				opts := benchOpts(uint64(i + 1))
				opts.HyParView = core.Config{DisablePriority: disabled}
				c := sim.NewCluster(sim.HyParView, opts)
				c.Stabilize(benchCycles)
				c.FailFraction(0.8)
				rel = metrics.Mean(c.BroadcastBurst(20))
			}
			b.ReportMetric(rel, "rel@80%fail")
		})
	}
}

func metricName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
