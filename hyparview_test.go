package hyparview_test

// Facade tests: exercise the library exactly as an external user would,
// through the root package's exported API only.

import (
	"sync/atomic"
	"testing"
	"time"

	"hyparview"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := hyparview.DefaultConfig()
	if cfg.ActiveSize != 5 || cfg.PassiveSize != 30 || cfg.ARWL != 6 || cfg.PRWL != 3 {
		t.Errorf("defaults diverge from the paper's §5.1: %+v", cfg)
	}
	if cfg.ShuffleKa != 3 || cfg.ShuffleKp != 4 {
		t.Errorf("shuffle defaults diverge from the paper's §5.1: %+v", cfg)
	}
}

func TestFromAddrStable(t *testing.T) {
	if hyparview.FromAddr("h:1") != hyparview.FromAddr("h:1") {
		t.Error("FromAddr not stable")
	}
}

func TestSimulatedClusterEndToEnd(t *testing.T) {
	c := hyparview.NewCluster(hyparview.ProtoHyParView, hyparview.ClusterOptions{
		N:    200,
		Seed: 4,
	})
	c.Stabilize(20)
	if rel := c.Broadcast(); rel != 1.0 {
		t.Errorf("reliability = %v, want 1.0", rel)
	}
	if !c.Snapshot().IsConnected() {
		t.Error("overlay disconnected")
	}
	c.FailFraction(0.5)
	rels := c.BroadcastBurst(5)
	if rels[4] < 0.98 {
		t.Errorf("post-failure reliability = %v", rels[4])
	}
}

func TestAllProtocolConstantsBuildClusters(t *testing.T) {
	for _, p := range []hyparview.Protocol{
		hyparview.ProtoHyParView, hyparview.ProtoCyclon,
		hyparview.ProtoCyclonAcked, hyparview.ProtoScamp,
	} {
		c := hyparview.NewCluster(p, hyparview.ClusterOptions{N: 60, Seed: 9})
		if got := c.Sim.AliveCount(); got != 60 {
			t.Errorf("%v: alive = %d", p, got)
		}
	}
}

func TestTCPAgentsEndToEnd(t *testing.T) {
	var delivered atomic.Int64
	newAgent := func() *hyparview.Agent {
		a, err := hyparview.NewAgent("127.0.0.1:0", hyparview.AgentConfig{
			OnDeliver: func([]byte) { delivered.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = a.Close() })
		return a
	}
	contact := newAgent()
	peers := make([]*hyparview.Agent, 5)
	for i := range peers {
		peers[i] = newAgent()
		if err := peers[i].Join(contact.Addr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)
	if err := peers[2].Broadcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for delivered.Load() < 6 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := delivered.Load(); got != 6 {
		t.Errorf("delivered = %d, want 6", got)
	}
}

func TestGossipModeConstants(t *testing.T) {
	if hyparview.GossipFlood.String() != "flood" || hyparview.GossipFanout.String() != "fanout" {
		t.Error("gossip mode re-exports broken")
	}
}
