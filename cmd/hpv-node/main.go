// Command hpv-node runs a HyParView broadcast node over real TCP: the
// deployment the paper deferred to future work (§6), hosting the full
// protocol stack — HyParView membership, flood or Plumtree broadcast, and
// optionally the X-BOT overlay optimizer driven by live RTT measurements.
// Half-open neighbor detection is on by default (-suspect): an active peer
// whose RTT probes go unanswered for 3 consecutive rounds is suspected and
// expelled without waiting for a TCP write timeout; transient connection
// failures heal through the transport's backoff redialer instead of
// churning the view.
//
// Start a contact node, then join others to it and type lines to broadcast:
//
//	hpv-node -listen 127.0.0.1:7001 -broadcast plumtree -optimize
//	hpv-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001 -broadcast plumtree -optimize
//	hpv-node -listen 127.0.0.1:7003 -join 127.0.0.1:7001 -broadcast plumtree -optimize
//
// Every line read from stdin is broadcast over the overlay; received
// broadcasts and periodic view snapshots — including delivery/redundancy
// counters and, when optimizing, the mean measured RTT of the active links —
// are printed to stdout.
//
// With -topics the node additionally runs the topic pub/sub router over the
// selected broadcast layer: it subscribes to the listed topics (printing
// deliveries as "<< [topic]"), stdin lines publish to the first listed topic,
// and -publish-rate drives a synthetic feed round-robin across the topics —
// batched on the publish side per -batch / -flush:
//
//	hpv-node -listen 127.0.0.1:7001 -broadcast plumtree -topics 1,2
//	hpv-node -join 127.0.0.1:7001 -broadcast plumtree -topics 1 -publish-rate 50
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hyparview/internal/pubsub"
	"hyparview/internal/transport"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdin, os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "hpv-node:", err)
		os.Exit(1)
	}
}

// run hosts one node until stdin closes or a stop signal arrives. It is
// separated from main for testability.
func run(args []string, stdin io.Reader, stdout io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("hpv-node", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "listen address")
		join      = fs.String("join", "", "contact node address (empty = start a new overlay)")
		period    = fs.Duration("cycle", time.Second, "membership cycle period (ΔT)")
		views     = fs.Duration("views", 5*time.Second, "view snapshot print period (0 = off)")
		broadcast = fs.String("broadcast", "flood", "broadcast layer: flood or plumtree")
		optimize  = fs.Bool("optimize", false, "run the X-BOT optimizer over live RTT measurements")
		probe     = fs.Duration("probe", 0, "RTT probe period with -optimize or -suspect (0 = cycle period)")
		suspect   = fs.Int("suspect", 3, "consecutive unanswered probes before a neighbor is suspected half-open (0 = off)")
		topicsArg = fs.String("topics", "", "comma-separated topic IDs to subscribe to (enables the pub/sub router)")
		pubRate   = fs.Float64("publish-rate", 0, "synthetic publishes per second, round-robin over -topics (0 = stdin only)")
		batch     = fs.Int("batch", 16, "pub/sub publish-side batch size (messages per frame)")
		flush     = fs.Duration("flush", 20*time.Millisecond, "pub/sub batch flush interval")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	topics, err := parseTopics(*topicsArg)
	if err != nil {
		return err
	}
	if *pubRate > 0 && len(topics) == 0 {
		return fmt.Errorf("-publish-rate needs -topics to publish into")
	}
	var mode transport.BroadcastMode
	switch *broadcast {
	case "flood":
		mode = transport.BroadcastFlood
	case "plumtree":
		mode = transport.BroadcastPlumtree
	default:
		return fmt.Errorf("unknown broadcast layer %q (want flood or plumtree)", *broadcast)
	}

	// Deliveries are printed from the agent goroutine; serialize them with
	// the main loop's prints through a channel.
	delivered := make(chan string, 16)
	echo := func(s string) {
		select {
		case delivered <- s:
		default: // console writer stalled; drop the echo, not the node
		}
	}
	cfg := transport.AgentConfig{
		CyclePeriod:  *period,
		Broadcast:    mode,
		Optimize:     *optimize,
		ProbePeriod:  *probe,
		SuspectAfter: *suspect,
		OnDeliver:    func(p []byte) { echo(string(p)) },
	}
	if len(topics) > 0 {
		cfg.PubSub = &pubsub.Config{
			MaxBatch:      *batch,
			FlushInterval: uint64(*flush / time.Millisecond),
		}
	}
	agent, err := transport.NewAgent(*listen, cfg)
	if err != nil {
		return err
	}
	defer agent.Close()
	fmt.Fprintf(stdout, "node %v listening on %s (broadcast=%s optimize=%v)\n",
		agent.Self(), agent.Addr(), mode, *optimize)
	for _, tp := range topics {
		if err := agent.Subscribe(tp, func(topic uint32, payload []byte, _ int) {
			echo(fmt.Sprintf("[%d] %s", topic, payload))
		}); err != nil {
			return err
		}
	}
	if len(topics) > 0 {
		fmt.Fprintf(stdout, "pub/sub on topics %v (batch=%d flush=%v rate=%g/s)\n",
			topics, *batch, *flush, *pubRate)
	}

	if *join != "" {
		if err := agent.Join(*join); err != nil {
			return fmt.Errorf("join: %w", err)
		}
		fmt.Fprintf(stdout, "joined overlay via %s\n", *join)
	}

	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	var viewTick <-chan time.Time
	if *views > 0 {
		t := time.NewTicker(*views)
		defer t.Stop()
		viewTick = t.C
	}
	var pubTick <-chan time.Time
	if *pubRate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *pubRate))
		defer t.Stop()
		pubTick = t.C
	}
	seq := 0

	for {
		select {
		case line, ok := <-lines:
			if !ok {
				return nil
			}
			if line == "" {
				continue
			}
			if len(topics) > 0 {
				if err := agent.Publish(topics[0], []byte(line)); err != nil {
					return fmt.Errorf("publish: %w", err)
				}
				continue
			}
			if err := agent.Broadcast([]byte(line)); err != nil {
				return fmt.Errorf("broadcast: %w", err)
			}
		case <-pubTick:
			topic := topics[seq%len(topics)]
			payload := fmt.Sprintf("feed %d @ %s", seq, time.Now().Format(time.RFC3339Nano))
			seq++
			if err := agent.Publish(topic, []byte(payload)); err != nil {
				return fmt.Errorf("publish: %w", err)
			}
		case m := <-delivered:
			fmt.Fprintf(stdout, "<< %s\n", m)
		case <-viewTick:
			fmt.Fprintln(stdout, snapshot(agent))
		case <-stop:
			fmt.Fprintln(stdout, "shutting down")
			return nil
		}
	}
}

// snapshot renders one periodic status line: views, broadcast accounting
// (deliveries, duplicate ratio — the per-node share of the overlay's RMR),
// and the optimizer's live link-cost estimate when enabled.
func snapshot(agent *transport.Agent) string {
	bs := agent.BroadcastStats()
	s := fmt.Sprintf("-- active=%v passive(%d) delivered=%d dup=%d fwd=%d",
		agent.ActiveView(), len(agent.PassiveView()),
		bs.Delivered, bs.Duplicates, bs.Forwarded)
	if ps, ok := agent.PlumtreeStats(); ok {
		s += fmt.Sprintf(" tree[ihave=%d graft=%d prune=%d]",
			ps.IHavesSent, ps.GraftsSent, ps.PrunesSent)
	}
	if xs, ok := agent.OptimizerStats(); ok {
		s += fmt.Sprintf(" xbot[attempts=%d swaps=%d]", xs.Attempts, xs.SwapsCompleted)
		if cost, ok := agent.MeanLinkCost(); ok {
			s += fmt.Sprintf(" rtt=%.0fµs", cost)
		}
	}
	if ps, ok := agent.PubSubStats(); ok {
		s += fmt.Sprintf(" pubsub[pub=%d frames=%d dlv=%d nosub=%d]",
			ps.Published, ps.Frames, ps.Delivered, ps.NoSubscriber)
	}
	ts := agent.TransportStats()
	s += fmt.Sprintf(" tx[frames=%d writes=%d fpw=%.1f reads=%d ovf=%d redial=%d susp=%d drain=%d races=%d]",
		ts.FramesSent, ts.WriteCalls, ts.FramesPerWrite(), ts.ReadSyscalls, ts.Overflowed,
		ts.Redials, ts.Suspected, ts.Drained, ts.DialRacesLost)
	return s
}

// parseTopics splits a comma-separated topic list ("1,2,7") into topic IDs.
func parseTopics(arg string) ([]uint32, error) {
	if arg == "" {
		return nil, nil
	}
	var out []uint32
	for _, f := range strings.Split(arg, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 32)
		if err != nil || v == 0 || v > uint64(pubsub.MaxTopic) {
			return nil, fmt.Errorf("bad topic %q (want 1..%d)", f, pubsub.MaxTopic)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}
