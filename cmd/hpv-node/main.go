// Command hpv-node runs a HyParView broadcast node over real TCP: the
// deployment the paper deferred to future work (§6), hosting the full
// protocol stack — HyParView membership, flood or Plumtree broadcast, and
// optionally the X-BOT overlay optimizer driven by live RTT measurements.
//
// Start a contact node, then join others to it and type lines to broadcast:
//
//	hpv-node -listen 127.0.0.1:7001 -broadcast plumtree -optimize
//	hpv-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001 -broadcast plumtree -optimize
//	hpv-node -listen 127.0.0.1:7003 -join 127.0.0.1:7001 -broadcast plumtree -optimize
//
// Every line read from stdin is broadcast over the overlay; received
// broadcasts and periodic view snapshots — including delivery/redundancy
// counters and, when optimizing, the mean measured RTT of the active links —
// are printed to stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyparview/internal/transport"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdin, os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "hpv-node:", err)
		os.Exit(1)
	}
}

// run hosts one node until stdin closes or a stop signal arrives. It is
// separated from main for testability.
func run(args []string, stdin io.Reader, stdout io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("hpv-node", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "listen address")
		join      = fs.String("join", "", "contact node address (empty = start a new overlay)")
		period    = fs.Duration("cycle", time.Second, "membership cycle period (ΔT)")
		views     = fs.Duration("views", 5*time.Second, "view snapshot print period (0 = off)")
		broadcast = fs.String("broadcast", "flood", "broadcast layer: flood or plumtree")
		optimize  = fs.Bool("optimize", false, "run the X-BOT optimizer over live RTT measurements")
		probe     = fs.Duration("probe", 0, "RTT probe period with -optimize (0 = cycle period)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var mode transport.BroadcastMode
	switch *broadcast {
	case "flood":
		mode = transport.BroadcastFlood
	case "plumtree":
		mode = transport.BroadcastPlumtree
	default:
		return fmt.Errorf("unknown broadcast layer %q (want flood or plumtree)", *broadcast)
	}

	// Deliveries are printed from the agent goroutine; serialize them with
	// the main loop's prints through a channel.
	delivered := make(chan string, 16)
	agent, err := transport.NewAgent(*listen, transport.AgentConfig{
		CyclePeriod: *period,
		Broadcast:   mode,
		Optimize:    *optimize,
		ProbePeriod: *probe,
		OnDeliver: func(p []byte) {
			select {
			case delivered <- string(p):
			default: // console writer stalled; drop the echo, not the node
			}
		},
	})
	if err != nil {
		return err
	}
	defer agent.Close()
	fmt.Fprintf(stdout, "node %v listening on %s (broadcast=%s optimize=%v)\n",
		agent.Self(), agent.Addr(), mode, *optimize)

	if *join != "" {
		if err := agent.Join(*join); err != nil {
			return fmt.Errorf("join: %w", err)
		}
		fmt.Fprintf(stdout, "joined overlay via %s\n", *join)
	}

	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	var viewTick <-chan time.Time
	if *views > 0 {
		t := time.NewTicker(*views)
		defer t.Stop()
		viewTick = t.C
	}

	for {
		select {
		case line, ok := <-lines:
			if !ok {
				return nil
			}
			if line == "" {
				continue
			}
			if err := agent.Broadcast([]byte(line)); err != nil {
				return fmt.Errorf("broadcast: %w", err)
			}
		case m := <-delivered:
			fmt.Fprintf(stdout, "<< %s\n", m)
		case <-viewTick:
			fmt.Fprintln(stdout, snapshot(agent))
		case <-stop:
			fmt.Fprintln(stdout, "shutting down")
			return nil
		}
	}
}

// snapshot renders one periodic status line: views, broadcast accounting
// (deliveries, duplicate ratio — the per-node share of the overlay's RMR),
// and the optimizer's live link-cost estimate when enabled.
func snapshot(agent *transport.Agent) string {
	bs := agent.BroadcastStats()
	s := fmt.Sprintf("-- active=%v passive(%d) delivered=%d dup=%d fwd=%d",
		agent.ActiveView(), len(agent.PassiveView()),
		bs.Delivered, bs.Duplicates, bs.Forwarded)
	if ps, ok := agent.PlumtreeStats(); ok {
		s += fmt.Sprintf(" tree[ihave=%d graft=%d prune=%d]",
			ps.IHavesSent, ps.GraftsSent, ps.PrunesSent)
	}
	if xs, ok := agent.OptimizerStats(); ok {
		s += fmt.Sprintf(" xbot[attempts=%d swaps=%d]", xs.Attempts, xs.SwapsCompleted)
		if cost, ok := agent.MeanLinkCost(); ok {
			s += fmt.Sprintf(" rtt=%.0fµs", cost)
		}
	}
	return s
}
