// Command hpv-node runs a HyParView broadcast node over real TCP: the
// deployment the paper deferred to future work (§6).
//
// Start a contact node, then join others to it and type lines to broadcast:
//
//	hpv-node -listen 127.0.0.1:7001
//	hpv-node -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//	hpv-node -listen 127.0.0.1:7003 -join 127.0.0.1:7001
//
// Every line read from stdin is flooded over the overlay; received
// broadcasts and periodic view snapshots are printed to stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyparview/internal/transport"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdin, os.Stdout, stop); err != nil {
		fmt.Fprintln(os.Stderr, "hpv-node:", err)
		os.Exit(1)
	}
}

// run hosts one node until stdin closes or a stop signal arrives. It is
// separated from main for testability.
func run(args []string, stdin io.Reader, stdout io.Writer, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("hpv-node", flag.ContinueOnError)
	var (
		listen = fs.String("listen", "127.0.0.1:0", "listen address")
		join   = fs.String("join", "", "contact node address (empty = start a new overlay)")
		period = fs.Duration("cycle", time.Second, "membership cycle period (ΔT)")
		views  = fs.Duration("views", 5*time.Second, "view snapshot print period (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Deliveries are printed from the agent goroutine; serialize them with
	// the main loop's prints through a channel.
	delivered := make(chan string, 16)
	agent, err := transport.NewAgent(*listen, transport.AgentConfig{
		CyclePeriod: *period,
		OnDeliver: func(p []byte) {
			select {
			case delivered <- string(p):
			default: // console writer stalled; drop the echo, not the node
			}
		},
	})
	if err != nil {
		return err
	}
	defer agent.Close()
	fmt.Fprintf(stdout, "node %v listening on %s\n", agent.Self(), agent.Addr())

	if *join != "" {
		if err := agent.Join(*join); err != nil {
			return fmt.Errorf("join: %w", err)
		}
		fmt.Fprintf(stdout, "joined overlay via %s\n", *join)
	}

	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()

	var viewTick <-chan time.Time
	if *views > 0 {
		t := time.NewTicker(*views)
		defer t.Stop()
		viewTick = t.C
	}

	for {
		select {
		case line, ok := <-lines:
			if !ok {
				return nil
			}
			if line == "" {
				continue
			}
			if err := agent.Broadcast([]byte(line)); err != nil {
				return fmt.Errorf("broadcast: %w", err)
			}
		case m := <-delivered:
			fmt.Fprintf(stdout, "<< %s\n", m)
		case <-viewTick:
			fmt.Fprintf(stdout, "-- active=%v passive(%d)\n",
				agent.ActiveView(), len(agent.PassiveView()))
		case <-stop:
			fmt.Fprintln(stdout, "shutting down")
			return nil
		}
	}
}
