package main

import (
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe string sink.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitContains(t *testing.T, buf *syncBuffer, frag string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), frag) {
		if time.Now().After(deadline) {
			t.Fatalf("output never contained %q:\n%s", frag, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-no-such-flag"}, strings.NewReader(""), &out, nil); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunBadBroadcastMode(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-broadcast", "carrier-pigeon"}, strings.NewReader(""), &out, nil); err == nil {
		t.Error("unknown broadcast layer accepted")
	}
}

func TestRunJoinFailure(t *testing.T) {
	var out syncBuffer
	err := run([]string{"-join", "127.0.0.1:1"}, strings.NewReader(""), &out, nil)
	if err == nil {
		t.Error("join to a dead contact succeeded")
	}
}

func TestRunEOFTerminates(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-views", "0"}, strings.NewReader(""), &out, nil)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not terminate on stdin EOF")
	}
	waitContains(t, &out, "listening on")
}

func TestRunSignalTerminates(t *testing.T) {
	var out syncBuffer
	stop := make(chan os.Signal, 1)
	// Keep stdin open: the blocked reader goroutine exits with the process.
	pr, pw := io.Pipe()
	defer pw.Close()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-views", "0"}, pr, &out, stop)
	}()
	waitContains(t, &out, "listening on")
	stop <- os.Interrupt
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not terminate on signal")
	}
	waitContains(t, &out, "shutting down")
}

func TestTwoNodesBroadcastEndToEnd(t *testing.T) {
	// Contact node.
	var contactOut syncBuffer
	contactStdin, contactW := io.Pipe()
	defer contactW.Close()
	contactDone := make(chan error, 1)
	go func() {
		contactDone <- run([]string{"-listen", "127.0.0.1:0", "-views", "0", "-cycle", "100ms"},
			contactStdin, &contactOut, nil)
	}()
	waitContains(t, &contactOut, "listening on")
	addr := extractAddr(t, contactOut.String())

	// Second node joins and broadcasts one line from stdin.
	var peerOut syncBuffer
	peerStdin, peerW := io.Pipe()
	peerDone := make(chan error, 1)
	go func() {
		peerDone <- run([]string{"-join", addr, "-views", "0", "-cycle", "100ms"},
			peerStdin, &peerOut, nil)
	}()
	waitContains(t, &peerOut, "joined overlay")
	if _, err := peerW.Write([]byte("ping over tcp\n")); err != nil {
		t.Fatal(err)
	}
	waitContains(t, &contactOut, "<< ping over tcp")
	_ = peerW.Close()
	<-peerDone
	_ = contactW.Close()
	<-contactDone
}

// TestTwoNodesPlumtreeOptimize runs the full stack end to end: two nodes on
// Plumtree broadcast with the X-BOT optimizer, a line broadcast over the
// tree, and a status snapshot carrying the tree and optimizer counters.
func TestTwoNodesPlumtreeOptimize(t *testing.T) {
	stack := []string{"-broadcast", "plumtree", "-optimize", "-cycle", "100ms"}

	var contactOut syncBuffer
	contactStdin, contactW := io.Pipe()
	defer contactW.Close()
	contactDone := make(chan error, 1)
	go func() {
		contactDone <- run(append([]string{"-listen", "127.0.0.1:0", "-views", "200ms"}, stack...),
			contactStdin, &contactOut, nil)
	}()
	waitContains(t, &contactOut, "listening on")
	waitContains(t, &contactOut, "broadcast=plumtree optimize=true")
	addr := extractAddr(t, contactOut.String())

	var peerOut syncBuffer
	peerStdin, peerW := io.Pipe()
	peerDone := make(chan error, 1)
	go func() {
		peerDone <- run(append([]string{"-join", addr, "-views", "0"}, stack...),
			peerStdin, &peerOut, nil)
	}()
	waitContains(t, &peerOut, "joined overlay")
	if _, err := peerW.Write([]byte("tree over tcp\n")); err != nil {
		t.Fatal(err)
	}
	waitContains(t, &contactOut, "<< tree over tcp")
	waitContains(t, &contactOut, "tree[")
	waitContains(t, &contactOut, "xbot[")
	_ = peerW.Close()
	<-peerDone
	_ = contactW.Close()
	<-contactDone
}

func TestRunBadTopics(t *testing.T) {
	var out syncBuffer
	if err := run([]string{"-topics", "1,zero"}, strings.NewReader(""), &out, nil); err == nil {
		t.Error("malformed -topics accepted")
	}
	if err := run([]string{"-topics", "0"}, strings.NewReader(""), &out, nil); err == nil {
		t.Error("topic 0 accepted (reserved for plain broadcasts)")
	}
	if err := run([]string{"-publish-rate", "10"}, strings.NewReader(""), &out, nil); err == nil {
		t.Error("-publish-rate without -topics accepted")
	}
}

// TestTwoNodesPubSub runs the pub/sub stack end to end over real sockets: a
// subscriber node, a publisher node driving both a synthetic feed and a stdin
// line into topic 1, and a snapshot carrying the router counters.
func TestTwoNodesPubSub(t *testing.T) {
	var contactOut syncBuffer
	contactStdin, contactW := io.Pipe()
	defer contactW.Close()
	contactDone := make(chan error, 1)
	go func() {
		contactDone <- run([]string{"-listen", "127.0.0.1:0", "-views", "200ms",
			"-cycle", "100ms", "-topics", "1,2"}, contactStdin, &contactOut, nil)
	}()
	waitContains(t, &contactOut, "pub/sub on topics [1 2]")
	addr := extractAddr(t, contactOut.String())

	var peerOut syncBuffer
	peerStdin, peerW := io.Pipe()
	peerDone := make(chan error, 1)
	go func() {
		peerDone <- run([]string{"-join", addr, "-views", "0", "-cycle", "100ms",
			"-topics", "1", "-publish-rate", "40", "-flush", "10ms"},
			peerStdin, &peerOut, nil)
	}()
	waitContains(t, &peerOut, "joined overlay")
	waitContains(t, &contactOut, "<< [1] feed ") // synthetic publishes arrive
	if _, err := peerW.Write([]byte("line into topic one\n")); err != nil {
		t.Fatal(err)
	}
	waitContains(t, &contactOut, "<< [1] line into topic one")
	waitContains(t, &contactOut, "pubsub[") // snapshot shows router counters
	_ = peerW.Close()
	<-peerDone
	_ = contactW.Close()
	<-contactDone
}

// extractAddr pulls "listening on <addr>" out of the node banner.
func extractAddr(t *testing.T, s string) string {
	t.Helper()
	const marker = "listening on "
	i := strings.Index(s, marker)
	if i < 0 {
		t.Fatalf("no banner in %q", s)
	}
	rest := s[i+len(marker):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	// The banner continues after the address ("... (broadcast=...)").
	if f := strings.Fields(rest); len(f) > 0 {
		return f[0]
	}
	return strings.TrimSpace(rest)
}
