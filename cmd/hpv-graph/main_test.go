package main

import (
	"strings"
	"testing"

	"hyparview/internal/sim"
)

func TestParseProto(t *testing.T) {
	tests := []struct {
		give    string
		want    sim.Protocol
		wantErr bool
	}{
		{give: "hyparview", want: sim.HyParView},
		{give: "HPV", want: sim.HyParView},
		{give: "cyclon", want: sim.Cyclon},
		{give: "CyclonAcked", want: sim.CyclonAcked},
		{give: "acked", want: sim.CyclonAcked},
		{give: "scamp", want: sim.Scamp},
		{give: "bogus", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseProto(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseProto(%q) error = %v", tt.give, err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseProto(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunHealthyOverlay(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-proto", "hyparview", "-n", "150", "-stabilize", "10",
		"-asp-samples", "20", "-indegree",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, frag := range []string{
		"protocol:", "HyParView", "connected:", "true",
		"symmetry:", "1.0000", "in-degree histogram:",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("output missing %q:\n%s", frag, text)
		}
	}
}

func TestRunWithFailures(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-proto", "hyparview", "-n", "200", "-stabilize", "10",
		"-fail", "50", "-asp-samples", "10",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "killed 100 of 200") {
		t.Errorf("failure report missing:\n%s", text)
	}
	if !strings.Contains(text, "live nodes:           100") {
		t.Errorf("live count wrong:\n%s", text)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-proto", "nope"}, &out); err == nil {
		t.Error("unknown protocol accepted")
	}
}
