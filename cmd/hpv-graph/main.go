// Command hpv-graph builds a simulated overlay under one of the membership
// protocols and prints its graph properties: the analysis behind the paper's
// Table 1 and Fig. 5, plus connectivity/symmetry diagnostics, optionally
// after a mass failure.
//
//	hpv-graph -proto hyparview -n 10000 -fail 60
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hyparview/internal/metrics"
	"hyparview/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpv-graph:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hpv-graph", flag.ContinueOnError)
	var (
		protoName = fs.String("proto", "hyparview", "protocol: hyparview|cyclon|cyclonacked|scamp")
		n         = fs.Int("n", 10000, "cluster size")
		seed      = fs.Uint64("seed", 1, "random seed")
		cycles    = fs.Int("stabilize", 50, "stabilization cycles")
		failPct   = fs.Int("fail", 0, "failure percentage to induce before analysis")
		asp       = fs.Int("asp-samples", 200, "BFS sources for avg shortest path (0 = exact)")
		hist      = fs.Bool("indegree", false, "print the full in-degree histogram")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	proto, err := parseProto(*protoName)
	if err != nil {
		return err
	}

	c := sim.NewCluster(proto, sim.Options{N: *n, Seed: *seed})
	c.Stabilize(*cycles)
	if *failPct > 0 {
		killed := c.FailFraction(float64(*failPct) / 100)
		c.Sim.Drain()
		fmt.Fprintf(out, "killed %d of %d nodes (%d%%)\n", killed, *n, *failPct)
	}

	snap := c.Snapshot()
	degs := snap.OutDegrees()
	var avgDeg float64
	for _, d := range degs {
		avgDeg += float64(d)
	}
	avgDeg /= float64(snap.Order())

	fmt.Fprintf(out, "protocol:             %v\n", proto)
	fmt.Fprintf(out, "live nodes:           %d\n", snap.Order())
	fmt.Fprintf(out, "avg out-degree:       %.3f\n", avgDeg)
	fmt.Fprintf(out, "connected:            %v\n", snap.IsConnected())
	fmt.Fprintf(out, "largest component:    %.4f\n", snap.LargestComponentFraction())
	fmt.Fprintf(out, "symmetry:             %.4f\n", snap.SymmetryFraction())
	fmt.Fprintf(out, "clustering coeff:     %.6f\n", snap.ClusteringCoefficient())
	fmt.Fprintf(out, "avg shortest path:    %.4f\n", snap.AvgShortestPath(c.Sim.Rand(), *asp))
	fmt.Fprintf(out, "view accuracy:        %.4f\n", c.Accuracy())

	if *hist {
		dist := metrics.IntHistogram(snap.InDegreeDistribution())
		fmt.Fprintf(out, "in-degree histogram:  %s\n", dist.String())
	}
	return nil
}

func parseProto(s string) (sim.Protocol, error) {
	switch strings.ToLower(s) {
	case "hyparview", "hpv":
		return sim.HyParView, nil
	case "cyclon":
		return sim.Cyclon, nil
	case "cyclonacked", "acked":
		return sim.CyclonAcked, nil
	case "scamp":
		return sim.Scamp, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q", s)
	}
}
