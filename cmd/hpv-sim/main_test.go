package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParsePcts(t *testing.T) {
	def := []int{10, 20}
	tests := []struct {
		name string
		give string
		want []int
	}{
		{name: "empty uses default", give: "", want: def},
		{name: "spaces ok", give: " 30 , 40 ", want: []int{30, 40}},
		{name: "garbage filtered", give: "30,xx,101,-5", want: []int{30}},
		{name: "all garbage falls back", give: "xx,yy", want: def},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := parsePcts(tt.give, def); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("parsePcts(%q) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestRunSingleExperimentSmall(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "table1", "-n", "150", "-stabilize", "10", "-asp-samples", "20",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"Table1", "Cyclon", "Scamp", "HyParView"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "fig5", "-n", "120", "-stabilize", "5", "-csv",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "protocol,in-degree,nodes") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
}

func TestRunCustomPcts(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "fig3", "-n", "120", "-stabilize", "5", "-pcts", "50", "-fig3msgs", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "50% failures") {
		t.Errorf("custom pct not honored:\n%s", out.String())
	}
	if strings.Contains(out.String(), "20% failures") {
		t.Error("default pcts ran despite -pcts")
	}
}

func TestRunPlumtreeExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "plumtree", "-n", "150", "-stabilize", "10", "-fig3msgs", "5", "-pcts", "30",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"FloodVsPlumtree", "gossip", "plumtree", "rmr"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestRunBroadcastFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "fig5", "-n", "120", "-stabilize", "5", "-broadcast", "plumtree",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("plumtree-broadcast run produced no output")
	}
	if err := run([]string{"-broadcast", "bongo"}, &out); err == nil {
		t.Error("unknown broadcast layer accepted")
	}
}

func TestRunXBotExperiment(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "xbot", "-n", "200", "-stabilize", "20", "-fig3msgs", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"ObliviousVsXBot", "oblivious", "xbot", "mean-link-cost", "euclidean"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}

func TestRunLatencyFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "xbot", "-n", "150", "-stabilize", "15", "-fig3msgs", "3", "-latency", "transit",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "transit-stub") {
		t.Errorf("latency model not honored:\n%s", out.String())
	}
	// Any experiment must run under a latency model, not just xbot.
	out.Reset()
	if err := run([]string{
		"-exp", "fig5", "-n", "120", "-stabilize", "5", "-latency", "euclidean",
	}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("fig5 under a latency model produced no output")
	}
	if err := run([]string{"-latency", "bongo"}, &out); err == nil {
		t.Error("unknown latency model accepted")
	}
}

func TestRunOptimizeFlag(t *testing.T) {
	var out strings.Builder
	// The optimizer composes with any experiment (peer-sampling protocols
	// ignore it); hetero is HyParView-only, so it visibly applies there.
	err := run([]string{
		"-exp", "hetero", "-n", "150", "-stabilize", "10", "-optimize", "xbot",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("optimized hetero run produced no output")
	}
	if err := run([]string{"-optimize", "bongo"}, &out); err == nil {
		t.Error("unknown optimizer accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExtensionExperiments(t *testing.T) {
	for _, exp := range []string{"overhead", "hetero"} {
		var out strings.Builder
		err := run([]string{"-exp", exp, "-n", "120", "-stabilize", "5"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", exp)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunDurationMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "fig5", "-n", "120", "-shuffle-interval", "50", "-duration", "500",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("duration-mode run produced no output")
	}
}

func TestRunDurationRequiresShuffleInterval(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "fig5", "-n", "120", "-duration", "500"}, &out); err == nil {
		t.Error("-duration without -shuffle-interval accepted")
	}
}

func TestRunXBotLatencyPercentiles(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-exp", "xbot", "-n", "150", "-stabilize", "10", "-fig3msgs", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"lat-p50", "lat-p99"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("output missing %q:\n%s", frag, out.String())
		}
	}
}
