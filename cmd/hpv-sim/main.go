// Command hpv-sim regenerates the tables and figures of the HyParView paper
// (DSN 2007) from this repository's simulator.
//
// Usage:
//
//	hpv-sim -exp fig2 -n 10000 -msgs 1000
//	hpv-sim -exp all -n 10000 -csv
//
// Experiments: fig1 (fanout×reliability, Cyclon+Scamp), fig1c (50% failure
// burst), fig2 (mean reliability vs failure %), fig3 (per-message recovery
// series), fig4 (healing time in cycles), table1 (graph properties), fig5
// (in-degree distribution), plumtree (flood vs epidemic broadcast trees;
// also part of -exp extensions), xbot (oblivious vs X-BOT-optimized overlay
// under a latency model), adversarial (the fault-injection scenario suite:
// mass failure, churn, partitions healing mid-broadcast, per-link
// loss/reorder, Byzantine-lite tampering and replay, each checked against a
// reliability envelope; a violated envelope exits non-zero), workload (the
// end-user pub/sub SLO experiment: a Zipfian topic workload over per-node
// pubsub routers, batched vs unbatched arms, reporting end-user-weighted
// delivery-latency percentiles, per-topic reliability and bytes-on-wire per
// delivered message; an arm outside its envelope exits non-zero), all.
// -experiment is accepted as an alias for -exp. The -broadcast=plumtree flag switches any
// experiment's broadcast layer from flood/fanout gossip to Plumtree;
// -latency=<model> runs any experiment in event-driven virtual time
// (uniform, euclidean or transit link latencies); -optimize=xbot runs the
// X-BOT optimizer alongside HyParView in any experiment;
// -shuffle-interval=<ticks> switches HyParView to scheduler-driven periodic
// shuffle rounds (the paper's ΔT as real timer events) and -duration=<ticks>
// then expresses the stabilization budget as virtual time instead of a cycle
// count. -cpuprofile/-memprofile write pprof profiles of the run (see the
// Profiling section of docs/EXPERIMENTS.md for methodology).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"hyparview/internal/metrics"
	"hyparview/internal/netsim"
	"hyparview/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hpv-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hpv-sim", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: fig1|fig1c|fig2|fig3|fig4|table1|fig5|plumtree|xbot|adversarial|workload|all")
		expAlias   = fs.String("experiment", "", "alias for -exp")
		n          = fs.Int("n", 10000, "cluster size (paper: 10000)")
		seed       = fs.Uint64("seed", 1, "base random seed")
		msgs       = fs.Int("msgs", 1000, "messages per burst for fig2 (paper: 1000)")
		fig3M      = fs.Int("fig3msgs", 100, "messages per series for fig3/fig1c")
		cycles     = fs.Int("stabilize", 50, "stabilization cycles (paper: 50)")
		shuffleIv  = fs.Uint64("shuffle-interval", 0, "virtual ticks between HyParView shuffle rounds; >0 switches to scheduler-driven periodic mode (rounds are timer events, not external cycles)")
		duration   = fs.Uint64("duration", 0, "stabilization budget as a virtual-time duration in ticks, rounded up to whole shuffle rounds (requires -shuffle-interval; overrides -stabilize)")
		fanout     = fs.Int("fanout", 4, "gossip fanout for Cyclon/Scamp (paper: 4)")
		broadcast  = fs.String("broadcast", "gossip", "broadcast layer: gossip (flood/fanout) or plumtree")
		shards     = fs.Int("shards", 1, "event-engine shards; >1 selects the parallel wave/barrier engine (same seed + same shard count reproduces the same run)")
		latency    = fs.String("latency", "none", "latency model: none (FIFO), uniform, euclidean or transit")
		optimize   = fs.String("optimize", "none", "overlay optimizer: none or xbot (HyParView only)")
		pcts       = fs.String("pcts", "", "comma-separated failure percentages (default per experiment)")
		asp        = fs.Int("asp-samples", 200, "BFS sources for avg shortest path (0 = exact)")
		runs       = fs.Int("runs", 1, "independent seeded runs to aggregate for fig2/fig4")
		events     = fs.Int("events", 2000, "publish events for the workload experiment")
		topics     = fs.Int("topics", 100, "topic-space size for the workload experiment")
		csv        = fs.Bool("csv", false, "emit CSV instead of aligned text")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile = fs.String("memprofile", "", "write a heap profile taken at exit to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *expAlias != "" {
		*exp = *expAlias
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer func() {
			// Collect first so the profile shows live protocol state, not
			// construction garbage (the methodology in docs/EXPERIMENTS.md).
			runtime.GC()
			_ = pprof.WriteHeapProfile(f)
			_ = f.Close()
		}()
	}
	opts := sim.Options{
		N:                   *n,
		Seed:                *seed,
		Fanout:              *fanout,
		StabilizationCycles: *cycles,
		ShuffleInterval:     *shuffleIv,
		Shards:              *shards,
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", *shards)
	}
	if *duration > 0 {
		if *shuffleIv == 0 {
			return fmt.Errorf("-duration requires -shuffle-interval (a duration only has meaning against the shuffle clock)")
		}
		// Duration-based methodology: the stabilization budget is virtual
		// time, expressed as duration/ΔT rounds and rounded up so the run
		// never stabilizes for less virtual time than asked.
		opts.StabilizationCycles = int((*duration + *shuffleIv - 1) / *shuffleIv)
	}
	switch *broadcast {
	case "gossip", "flood":
		opts.Broadcast = sim.BroadcastGossip
	case "plumtree":
		opts.Broadcast = sim.BroadcastPlumtree
	default:
		return fmt.Errorf("unknown broadcast layer %q (want gossip or plumtree)", *broadcast)
	}
	model, err := netsim.ParseLatencyModel(*latency, *seed)
	if err != nil {
		return err
	}
	opts.LatencyModel = model
	switch *optimize {
	case "", "none":
	case "xbot":
		opts.Optimizer = sim.OptimizerXBot
	default:
		return fmt.Errorf("unknown optimizer %q (want none or xbot)", *optimize)
	}
	emit := func(t *metrics.Table) {
		if *csv {
			fmt.Fprintf(out, "# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Fprintln(out, t.String())
		}
	}
	runOne := func(name string) error {
		start := time.Now()
		defer func() {
			fmt.Fprintf(out, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "fig1":
			fanouts := []int{1, 2, 3, 4, 5, 6, 7}
			emit(sim.Fig1FanoutReliability(sim.Cyclon, opts, fanouts, 50))
			emit(sim.Fig1FanoutReliability(sim.Scamp, opts, fanouts, 50))
		case "fig1c":
			emit(sim.Fig1cFailure50(opts, *fig3M))
		case "fig2":
			levels := parsePcts(*pcts, []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 95})
			if *runs > 1 {
				emit(sim.Fig2MassFailureRuns(opts, levels, *msgs, *runs))
			} else {
				_, t := sim.Fig2MassFailure(opts, levels, *msgs)
				emit(t)
			}
		case "fig3":
			for _, pct := range parsePcts(*pcts, []int{20, 40, 60, 70, 80, 95}) {
				emit(sim.Fig3Recovery(opts, pct, *fig3M))
			}
		case "fig4":
			levels := parsePcts(*pcts, []int{10, 20, 30, 40, 50, 60, 70, 80, 90})
			if *runs > 1 {
				emit(sim.Fig4HealingTimeRuns(opts, levels, 10, 200, *runs))
			} else {
				_, t := sim.Fig4HealingTime(opts, levels, 10, 200)
				emit(t)
			}
		case "table1":
			_, t := sim.Table1GraphProperties(opts, *asp, 50)
			emit(t)
		case "fig5":
			emit(sim.Fig5InDegree(opts))
		case "plumtree":
			// Flood vs Plumtree over the same HyParView overlay: reliability,
			// relative message redundancy and hop count, with and without
			// mass failures (SRDS 2007 companion paper).
			levels := parsePcts(*pcts, []int{10, 30, 50})
			_, t := sim.FloodVsPlumtree(opts, 20, *fig3M, levels)
			emit(t)
		case "overhead":
			// Extension: the paper's §6 PlanetLab packet-overhead question.
			_, t := sim.Overhead(opts, 10, 50)
			emit(t)
		case "churn":
			// Extension: sustained churn, 1%/cycle for 30 cycles.
			_, t := sim.Churn(opts, 1.0, 30, 5)
			emit(t)
		case "passive":
			// Extension: passive view size vs resilience (§6 future work).
			emit(sim.PassiveResilience(opts, []int{5, 10, 20, 30, 60}, 80, 50))
		case "hetero":
			// Extension: heterogeneous degrees (§6 adaptive fanout idea).
			emit(sim.HeterogeneousDegrees(opts, 10, 15))
		case "partition":
			// Extension: 30/70 network cut for 3 cycles, then heal.
			_, t := sim.PartitionHeal(opts, 0.3, 3, 10)
			emit(t)
		case "adversarial":
			// Fault-injection scenario suite: the paper's 80%-failure headline
			// plus churn, partition, loss/reorder, Byzantine-lite tampering and
			// replay, each run against its reliability envelope. A scenario
			// outside its envelope fails the run — this is the CI regression
			// gate for the bugs the injection hooks surfaced.
			points, t := sim.Adversarial(opts, *msgs)
			emit(t)
			if !sim.AdversarialOK(points) {
				return fmt.Errorf("adversarial envelope violated (see table)")
			}
		case "workload":
			// End-user pub/sub SLOs: Zipfian topic workload over per-node
			// pubsub routers, batched vs unbatched publish arms under one
			// seed. The envelope (per-topic reliability ≥ 0.99, batching
			// reducing hot-topic bytes per delivery) gates the run.
			points, t := sim.Workload(opts, sim.WorkloadOptions{
				Events: *events,
				Topics: *topics,
			})
			emit(t)
			if !sim.WorkloadOK(points) {
				return fmt.Errorf("workload envelope violated (see table)")
			}
		case "xbot":
			// Oblivious vs X-BOT-optimized overlay under a latency model
			// (Euclidean unless -latency selects another): link cost,
			// reliability, virtual-time broadcast latency, degrees (the SRDS
			// 2009 companion paper's evaluation).
			_, t := sim.ObliviousVsXBot(opts, *fig3M)
			emit(t)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if *exp == "all" {
		for _, name := range []string{"fig1", "fig1c", "fig2", "fig3", "fig4", "table1", "fig5"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	if *exp == "extensions" {
		for _, name := range []string{"overhead", "churn", "passive", "hetero", "partition", "plumtree", "xbot"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(*exp)
}

// parsePcts parses "20,40,60" with a fallback default.
func parsePcts(s string, def []int) []int {
	if strings.TrimSpace(s) == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err == nil && v >= 0 && v < 100 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		return def
	}
	return out
}
