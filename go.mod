module hyparview

go 1.24
