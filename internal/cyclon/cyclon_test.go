package cyclon

import (
	"fmt"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// fakeEnv is a scriptable peer.Env (mirrors the one in package core's tests).
type fakeEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
	down map[id.ID]bool
	sent []sentMsg
}

type sentMsg struct {
	to id.ID
	m  msg.Message
}

func newFakeEnv(self id.ID) *fakeEnv {
	return &fakeEnv{self: self, rand: rng.New(uint64(self) + 77), down: make(map[id.ID]bool)}
}

var _ peer.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Self() id.ID     { return e.self }
func (e *fakeEnv) Rand() *rng.Rand { return e.rand }
func (e *fakeEnv) Watch(id.ID)     {}
func (e *fakeEnv) Unwatch(id.ID)   {}

func (e *fakeEnv) Send(dst id.ID, m msg.Message) error {
	if e.down[dst] {
		return fmt.Errorf("send: %w", peer.ErrPeerDown)
	}
	e.sent = append(e.sent, sentMsg{to: dst, m: m})
	return nil
}

func (e *fakeEnv) Probe(dst id.ID) error {
	if e.down[dst] {
		return fmt.Errorf("probe: %w", peer.ErrPeerDown)
	}
	return nil
}

func (e *fakeEnv) take() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

func newTestNode(self id.ID, cfg Config) (*Node, *fakeEnv) {
	env := newFakeEnv(self)
	return New(env, cfg), env
}

// seedView fills the node's view directly.
func seedView(n *Node, ids ...id.ID) {
	for _, x := range ids {
		n.insert(msg.Entry{Node: x})
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Config
		wantErr bool
	}{
		{name: "defaults", give: DefaultConfig(), wantErr: false},
		{name: "acked", give: AckedConfig(), wantErr: false},
		{name: "zero view", give: Config{ViewSize: 0, ShuffleLen: 1, JoinTTL: 1}, wantErr: true},
		{name: "shuffle exceeds view", give: Config{ViewSize: 5, ShuffleLen: 6, JoinTTL: 1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestAckedConfigDetectsFailures(t *testing.T) {
	if !AckedConfig().DetectFailures {
		t.Error("AckedConfig must enable failure detection")
	}
	if DefaultConfig().DetectFailures {
		t.Error("DefaultConfig must not detect failures")
	}
}

func TestJoinSendsRequestAndLinksContact(t *testing.T) {
	n, env := newTestNode(1, Config{})
	if err := n.Join(2); err != nil {
		t.Fatal(err)
	}
	if got := n.Neighbors(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Neighbors = %v, want [n2]", got)
	}
	sent := env.take()
	if len(sent) != 1 || sent[0].m.Type != msg.Join {
		t.Errorf("sent = %+v", sent)
	}
}

func TestHandleJoinLaunchesWalks(t *testing.T) {
	n, env := newTestNode(1, Config{ViewSize: 8, ShuffleLen: 4, JoinTTL: 5})
	seedView(n, 10, 11, 12)
	n.Deliver(99, msg.Message{Type: msg.Join, Sender: 99, Subject: 99})
	walks := 0
	for _, s := range env.take() {
		if s.m.Type == msg.CyclonJoinWalk {
			walks++
			if s.m.Subject != 99 || s.m.TTL != n.cfg.JoinTTL {
				t.Errorf("bad walk: %+v", s.m)
			}
		}
	}
	if walks != 8 {
		t.Errorf("walks = %d, want ViewSize=8", walks)
	}
}

func TestJoinWalkForwardsWhileTTLLives(t *testing.T) {
	n, env := newTestNode(1, Config{})
	seedView(n, 10, 11)
	n.Deliver(10, msg.Message{Type: msg.CyclonJoinWalk, Sender: 10, Subject: 99, TTL: 3})
	sent := env.take()
	if len(sent) != 1 || sent[0].m.Type != msg.CyclonJoinWalk || sent[0].m.TTL != 2 {
		t.Errorf("walk not forwarded: %+v", sent)
	}
	if n.has(99) {
		t.Error("walker node adopted joiner before TTL expiry")
	}
}

func TestJoinWalkEndSwapsEntry(t *testing.T) {
	cfg := Config{ViewSize: 3, ShuffleLen: 2, JoinTTL: 5}
	n, env := newTestNode(1, cfg)
	seedView(n, 10, 11, 12) // full view
	n.Deliver(10, msg.Message{Type: msg.CyclonJoinWalk, Sender: 10, Subject: 99, TTL: 0})
	if !n.has(99) {
		t.Fatal("walk end did not adopt joiner")
	}
	if len(n.View()) != 3 {
		t.Errorf("view size changed: %d", len(n.View()))
	}
	// The displaced entry must be gifted to the joiner.
	sent := env.take()
	if len(sent) != 1 || sent[0].to != 99 || sent[0].m.Type != msg.CyclonShuffleReply {
		t.Fatalf("no gift to joiner: %+v", sent)
	}
	if len(sent[0].m.Entries) == 0 {
		t.Error("gift contains no entries")
	}
}

func TestJoinWalkPreservesInDegree(t *testing.T) {
	// Across a walk-end swap the total in-degree stays constant: the
	// victim's reference moves to the joiner, and the victim is re-referenced
	// by the joiner.
	cfg := Config{ViewSize: 2, ShuffleLen: 2, JoinTTL: 5}
	n, env := newTestNode(1, cfg)
	seedView(n, 10, 11)
	n.Deliver(10, msg.Message{Type: msg.CyclonJoinWalk, Sender: 10, Subject: 99, TTL: 0})
	sent := env.take()
	if len(sent) != 1 {
		t.Fatalf("want 1 gift message, got %d", len(sent))
	}
	gift := sent[0].m.Entries
	// n now references 99 and one old entry; the other old entry + self are in the gift.
	refs := map[id.ID]int{}
	for _, e := range n.View() {
		refs[e.Node]++
	}
	for _, e := range gift {
		refs[e.Node]++
	}
	if refs[10]+refs[11] != 2 {
		t.Errorf("old entries lost or duplicated: view=%v gift=%v", n.View(), gift)
	}
}

func TestOnCycleShufflesWithOldest(t *testing.T) {
	n, env := newTestNode(1, Config{ViewSize: 5, ShuffleLen: 3, JoinTTL: 5})
	n.insert(msg.Entry{Node: 10, Age: 0})
	n.insert(msg.Entry{Node: 11, Age: 7}) // oldest
	n.insert(msg.Entry{Node: 12, Age: 2})
	n.OnCycle()
	sent := env.take()
	if len(sent) != 1 || sent[0].m.Type != msg.CyclonShuffle {
		t.Fatalf("sent = %+v", sent)
	}
	if sent[0].to != 11 {
		t.Errorf("shuffle target = %v, want oldest n11", sent[0].to)
	}
	if n.has(11) {
		t.Error("oldest entry not removed at shuffle initiation")
	}
	// First entry must be the initiator with age 0.
	if es := sent[0].m.Entries; len(es) == 0 || es[0].Node != 1 || es[0].Age != 0 {
		t.Errorf("first entry = %+v, want self age 0", sent[0].m.Entries)
	}
	// Ages of remaining entries incremented.
	for _, e := range n.View() {
		if e.Node == 10 && e.Age != 1 {
			t.Errorf("entry 10 age = %d, want 1", e.Age)
		}
	}
}

func TestOnCycleWithDeadOldestLosesShuffle(t *testing.T) {
	n, env := newTestNode(1, Config{})
	n.insert(msg.Entry{Node: 10, Age: 9})
	n.insert(msg.Entry{Node: 11, Age: 0})
	env.down[10] = true
	n.OnCycle()
	if n.has(10) {
		t.Error("dead oldest entry survived the shuffle attempt")
	}
	if len(env.take()) != 0 {
		t.Error("messages sent despite dead target")
	}
	if n.Stats().ShufflesLost != 1 {
		t.Errorf("ShufflesLost = %d, want 1", n.Stats().ShufflesLost)
	}
}

func TestHandleShuffleRepliesAndIntegrates(t *testing.T) {
	n, env := newTestNode(1, Config{ViewSize: 10, ShuffleLen: 3, JoinTTL: 5})
	seedView(n, 10, 11, 12)
	n.Deliver(20, msg.Message{
		Type:    msg.CyclonShuffle,
		Sender:  20,
		Entries: []msg.Entry{{Node: 20, Age: 0}, {Node: 21, Age: 4}},
	})
	sent := env.take()
	if len(sent) != 1 || sent[0].to != 20 || sent[0].m.Type != msg.CyclonShuffleReply {
		t.Fatalf("no reply: %+v", sent)
	}
	if len(sent[0].m.Entries) > 3 {
		t.Errorf("reply larger than ShuffleLen: %d", len(sent[0].m.Entries))
	}
	if !n.has(20) || !n.has(21) {
		t.Error("received entries not integrated")
	}
}

func TestIntegrateDuplicateKeepsYoungerAge(t *testing.T) {
	n, _ := newTestNode(1, Config{})
	n.insert(msg.Entry{Node: 10, Age: 9})
	n.integrate([]msg.Entry{{Node: 10, Age: 2}}, nil)
	for _, e := range n.View() {
		if e.Node == 10 && e.Age != 2 {
			t.Errorf("age = %d, want 2 (younger wins)", e.Age)
		}
	}
	if len(n.View()) != 1 {
		t.Error("duplicate created a second entry")
	}
}

func TestIntegrateSkipsSelf(t *testing.T) {
	n, _ := newTestNode(1, Config{})
	n.integrate([]msg.Entry{{Node: 1, Age: 0}}, nil)
	if n.has(1) {
		t.Error("own identifier integrated")
	}
}

func TestIntegrateFullViewReplacesSentFirst(t *testing.T) {
	cfg := Config{ViewSize: 3, ShuffleLen: 3, JoinTTL: 5}
	n, _ := newTestNode(1, cfg)
	seedView(n, 10, 11, 12)
	n.integrate(
		[]msg.Entry{{Node: 20}, {Node: 21}},
		[]msg.Entry{{Node: 10}, {Node: 11}},
	)
	if !n.has(20) || !n.has(21) {
		t.Error("received entries not integrated")
	}
	if n.has(10) || n.has(11) {
		t.Error("sent entries not replaced first")
	}
	if !n.has(12) {
		t.Error("unrelated entry evicted although sent entries were available")
	}
	if len(n.View()) != 3 {
		t.Errorf("view size = %d, want 3", len(n.View()))
	}
}

func TestViewNeverExceedsCapacity(t *testing.T) {
	cfg := Config{ViewSize: 4, ShuffleLen: 4, JoinTTL: 3}
	n, _ := newTestNode(1, cfg)
	r := rng.New(5)
	for i := 0; i < 2000; i++ {
		var es []msg.Entry
		for k := 0; k < r.Intn(6); k++ {
			es = append(es, msg.Entry{Node: id.ID(r.Intn(50) + 2), Age: uint16(r.Intn(10))})
		}
		switch r.Intn(3) {
		case 0:
			n.integrate(es, nil)
		case 1:
			n.Deliver(id.ID(r.Intn(50)+2), msg.Message{Type: msg.CyclonShuffle, Sender: id.ID(r.Intn(50) + 2), Entries: es})
		case 2:
			n.OnCycle()
		}
		if len(n.View()) > cfg.ViewSize {
			t.Fatalf("step %d: view overflow %d", i, len(n.View()))
		}
		for _, e := range n.View() {
			if e.Node == 1 {
				t.Fatalf("step %d: self in view", i)
			}
		}
	}
}

func TestOnPeerDownRespectsDetectFlag(t *testing.T) {
	plain, _ := newTestNode(1, DefaultConfig())
	seedView(plain, 10)
	plain.OnPeerDown(10)
	if !plain.has(10) {
		t.Error("plain Cyclon purged an entry on failure")
	}

	acked, _ := newTestNode(2, AckedConfig())
	seedView(acked, 10)
	acked.OnPeerDown(10)
	if acked.has(10) {
		t.Error("CyclonAcked kept a detected-failed entry")
	}
	if acked.Stats().EntriesPurged != 1 {
		t.Errorf("EntriesPurged = %d, want 1", acked.Stats().EntriesPurged)
	}
}

func TestGossipTargetsDistinctAndExcluding(t *testing.T) {
	n, _ := newTestNode(1, Config{})
	seedView(n, 10, 11, 12, 13, 14)
	for trial := 0; trial < 100; trial++ {
		ts := n.GossipTargets(3, 12)
		if len(ts) != 3 {
			t.Fatalf("targets = %v, want 3", ts)
		}
		seen := map[id.ID]bool{}
		for _, x := range ts {
			if x == 12 || seen[x] {
				t.Fatalf("bad targets %v", ts)
			}
			seen[x] = true
		}
	}
	// Fanout larger than the view: everything except the excluded node.
	if ts := n.GossipTargets(99, 12); len(ts) != 4 {
		t.Errorf("targets = %v, want all 4 others", ts)
	}
}

// has reports whether node is in the view (test helper).
func (n *Node) has(node id.ID) bool {
	_, ok := n.present[node]
	return ok
}

func TestShuffleReplyIntegratesAgainstLastSent(t *testing.T) {
	cfg := Config{ViewSize: 4, ShuffleLen: 3, JoinTTL: 5}
	n, env := newTestNode(1, cfg)
	// View full with an old entry so OnCycle shuffles deterministically.
	n.insert(msg.Entry{Node: 10, Age: 5})
	n.insert(msg.Entry{Node: 11, Age: 0})
	n.insert(msg.Entry{Node: 12, Age: 0})
	n.insert(msg.Entry{Node: 13, Age: 0})
	n.OnCycle() // shuffles with oldest (10), records lastSent
	sent := env.take()
	if len(sent) != 1 || sent[0].to != 10 {
		t.Fatalf("setup: %+v", sent)
	}
	// The reply brings fresh entries; the view must absorb them without
	// exceeding capacity, preferring to replace what was sent.
	n.Deliver(10, msg.Message{
		Type:    msg.CyclonShuffleReply,
		Sender:  10,
		Entries: []msg.Entry{{Node: 20}, {Node: 21}, {Node: 22}},
	})
	if !n.has(20) || !n.has(21) {
		t.Error("reply entries not integrated")
	}
	if len(n.View()) > cfg.ViewSize {
		t.Errorf("view overflow: %d", len(n.View()))
	}
	// A second, duplicate reply must not be re-integrated against stale
	// lastSent bookkeeping (it was cleared).
	viewBefore := len(n.View())
	n.Deliver(10, msg.Message{
		Type:    msg.CyclonShuffleReply,
		Sender:  10,
		Entries: []msg.Entry{{Node: 20}},
	})
	if len(n.View()) > cfg.ViewSize || len(n.View()) < viewBefore {
		t.Errorf("duplicate reply corrupted view: %d", len(n.View()))
	}
}

func TestSelfAccessor(t *testing.T) {
	n, _ := newTestNode(42, Config{})
	if n.Self() != 42 {
		t.Error("Self() wrong")
	}
}

func TestJoinSelfNoop(t *testing.T) {
	n, env := newTestNode(1, Config{})
	if err := n.Join(1); err != nil {
		t.Fatal(err)
	}
	if len(env.take()) != 0 || len(n.View()) != 0 {
		t.Error("self-join had effects")
	}
}

func TestAgingMonotoneUntilExchanged(t *testing.T) {
	// Property: an entry that is never exchanged ages by exactly one per
	// cycle until it becomes the oldest and is shuffled out.
	n, env := newTestNode(1, Config{ViewSize: 4, ShuffleLen: 2, JoinTTL: 3})
	n.insert(msg.Entry{Node: 10, Age: 0})
	n.insert(msg.Entry{Node: 11, Age: 0})
	env.down[10] = true
	env.down[11] = true
	for cycle := 1; cycle <= 2; cycle++ {
		n.OnCycle() // shuffle target is dead, so entries only age and drop
	}
	// Both entries were oldest once each and got removed; view must be
	// empty and no message ever sent.
	if len(n.View()) != 0 {
		t.Errorf("view = %v, want empty after purging dead oldest twice", n.View())
	}
	if len(env.take()) != 0 {
		t.Error("messages sent to dead targets")
	}
}
