// Package cyclon implements the Cyclon membership protocol (Voulgaris,
// Gavidia, van Steen 2005), one of the two baselines the HyParView paper
// evaluates against, plus the paper's CyclonAcked variant (§5: Cyclon with
// ack-based failure detection during dissemination).
//
// Cyclon is a purely cyclic protocol: each node keeps a fixed-size partial
// view of (identifier, age) entries and periodically performs an "enhanced
// shuffle" with the oldest entry in its view. Joins are implemented with
// fixed-length random walks that preserve the in-degree of existing nodes.
package cyclon

import (
	"fmt"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// Config carries the Cyclon parameters. Defaults follow the HyParView
// paper's experimental setting (§5.1): view size 35 (the sum of HyParView's
// active and passive sizes), shuffle length 14, random-walk TTL 5.
type Config struct {
	// ViewSize is the fixed partial-view capacity.
	ViewSize int

	// ShuffleLen is the number of entries exchanged per shuffle (including
	// the initiator's own fresh entry).
	ShuffleLen int

	// JoinTTL is the length of the random walks used by the join protocol.
	JoinTTL uint8

	// DetectFailures enables the CyclonAcked behaviour: when the gossip
	// layer reports a failed send (missing acknowledgment), the entry is
	// purged from the view. Plain Cyclon ignores such failures.
	DetectFailures bool
}

// DefaultConfig returns the paper's §5.1 Cyclon parameters.
func DefaultConfig() Config {
	return Config{ViewSize: 35, ShuffleLen: 14, JoinTTL: 5}
}

// AckedConfig returns the paper's CyclonAcked configuration.
func AckedConfig() Config {
	c := DefaultConfig()
	c.DetectFailures = true
	return c
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.ViewSize <= 0:
		return fmt.Errorf("cyclon: ViewSize must be positive, got %d", c.ViewSize)
	case c.ShuffleLen <= 0:
		return fmt.Errorf("cyclon: ShuffleLen must be positive, got %d", c.ShuffleLen)
	case c.ShuffleLen > c.ViewSize:
		return fmt.Errorf("cyclon: ShuffleLen (%d) exceeds ViewSize (%d)", c.ShuffleLen, c.ViewSize)
	}
	return nil
}

// WithDefaults fills zero-valued fields from DefaultConfig.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.ViewSize == 0 {
		c.ViewSize = d.ViewSize
	}
	if c.ShuffleLen == 0 {
		c.ShuffleLen = d.ShuffleLen
	}
	if c.JoinTTL == 0 {
		c.JoinTTL = d.JoinTTL
	}
	return c
}

// Stats counts protocol events on one node.
type Stats struct {
	ShufflesInitiated uint64
	ShufflesAnswered  uint64
	ShufflesLost      uint64 // initiations whose target was already dead
	JoinWalksEnded    uint64
	EntriesPurged     uint64 // CyclonAcked removals
}

// Node is one Cyclon protocol instance. Not safe for concurrent use.
type Node struct {
	env  peer.Env
	self id.ID
	cfg  Config

	entries []msg.Entry
	present map[id.ID]int // node -> index in entries

	// lastSent remembers the entries shipped in our outstanding shuffle
	// request; the integration rule replaces exactly these when the view is
	// full.
	lastSent []msg.Entry

	// gossipScratch backs GossipTargets' reused result buffer (see the
	// peer.Membership contract).
	gossipScratch []id.ID

	stats Stats
}

var _ peer.Membership = (*Node)(nil)

// New constructs a Cyclon node bound to env. Zero Config fields take
// defaults; invalid configurations panic.
func New(env peer.Env, cfg Config) *Node {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Node{
		env:     env,
		self:    env.Self(),
		cfg:     cfg,
		entries: make([]msg.Entry, 0, cfg.ViewSize),
		present: make(map[id.ID]int, cfg.ViewSize),
	}
}

// Join bootstraps through contact: the contact is added locally and asked to
// launch the in-degree-preserving random walks that advertise us.
func (n *Node) Join(contact id.ID) error {
	if contact == n.self || contact.IsNil() {
		return nil
	}
	if err := n.env.Send(contact, msg.Message{
		Type:    msg.Join,
		Sender:  n.self,
		Subject: n.self,
	}); err != nil {
		return err
	}
	n.insert(msg.Entry{Node: contact})
	return nil
}

// Self returns the node's identifier.
func (n *Node) Self() id.ID { return n.self }

// Stats returns a copy of the protocol counters.
func (n *Node) Stats() Stats { return n.stats }

// View returns a copy of the (identifier, age) view entries.
func (n *Node) View() []msg.Entry {
	out := make([]msg.Entry, len(n.entries))
	copy(out, n.entries)
	return out
}

// Neighbors implements peer.Membership.
func (n *Node) Neighbors() []id.ID {
	out := make([]id.ID, len(n.entries))
	for i, e := range n.entries {
		out[i] = e.Node
	}
	return out
}

// GossipTargets implements peer.Membership: fanout uniformly random distinct
// view members, excluding exclude. The result is a reused scratch buffer,
// valid until the next call (peer.Membership contract).
func (n *Node) GossipTargets(fanout int, exclude id.ID) []id.ID {
	if fanout <= 0 || len(n.entries) == 0 {
		return nil
	}
	candidates := n.gossipScratch[:0]
	for _, e := range n.entries {
		if e.Node != exclude {
			candidates = append(candidates, e.Node)
		}
	}
	n.gossipScratch = candidates
	r := n.env.Rand()
	if fanout >= len(candidates) {
		return candidates
	}
	for i := 0; i < fanout; i++ {
		j := i + r.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
	}
	return candidates[:fanout]
}

// OnPeerDown implements peer.Membership. Plain Cyclon has no failure
// detector; the CyclonAcked variant purges the failed entry (paper §5).
func (n *Node) OnPeerDown(peerID id.ID) {
	if !n.cfg.DetectFailures {
		return
	}
	if n.remove(peerID) {
		n.stats.EntriesPurged++
	}
}

// OnCycle implements peer.Membership: one enhanced shuffle with the oldest
// view entry.
func (n *Node) OnCycle() {
	if len(n.entries) == 0 {
		return
	}
	// 1. Age every entry.
	for i := range n.entries {
		n.entries[i].Age++
	}
	// 2. Pick the oldest entry q and remove it: failed nodes are guaranteed
	// to age to the top and be discarded, which is Cyclon's (slow) healing
	// mechanism.
	oldest := 0
	for i, e := range n.entries {
		if e.Age > n.entries[oldest].Age {
			oldest = i
		}
	}
	q := n.entries[oldest].Node
	n.remove(q)
	// 3. Build the sample: our own fresh entry plus ShuffleLen-1 others.
	sample := n.sampleEntries(n.cfg.ShuffleLen - 1)
	out := make([]msg.Entry, 0, len(sample)+1)
	out = append(out, msg.Entry{Node: n.self})
	out = append(out, sample...)
	n.lastSent = sample
	n.stats.ShufflesInitiated++
	if err := n.env.Send(q, msg.Message{
		Type:    msg.CyclonShuffle,
		Sender:  n.self,
		Entries: out,
	}); err != nil {
		// The oldest entry was dead: Cyclon silently loses the shuffle
		// (modelling a timeout); the entry stays removed.
		n.stats.ShufflesLost++
		n.lastSent = nil
	}
}

// Deliver implements peer.Membership.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	switch m.Type {
	case msg.Join:
		n.handleJoin(m.Subject)
	case msg.CyclonJoinWalk:
		n.handleJoinWalk(from, m)
	case msg.CyclonShuffle:
		n.handleShuffle(m)
	case msg.CyclonShuffleReply:
		n.handleShuffleReply(m)
	default:
		// Not a Cyclon message; ignore.
	}
}

// --- Join protocol -----------------------------------------------------------

func (n *Node) handleJoin(joiner id.ID) {
	if joiner == n.self || joiner.IsNil() {
		return
	}
	// Launch ViewSize random walks; each replaces one remote entry with the
	// joiner, preserving the in-degree distribution (Cyclon §join).
	walks := n.cfg.ViewSize
	if len(n.entries) == 0 {
		// Degenerate bootstrap: the introducer is alone, link directly.
		n.insert(msg.Entry{Node: joiner})
		return
	}
	for i := 0; i < walks; i++ {
		target := n.entries[n.env.Rand().Intn(len(n.entries))].Node
		_ = n.env.Send(target, msg.Message{
			Type:    msg.CyclonJoinWalk,
			Sender:  n.self,
			Subject: joiner,
			TTL:     n.cfg.JoinTTL,
		})
	}
}

func (n *Node) handleJoinWalk(from id.ID, m msg.Message) {
	joiner := m.Subject
	if joiner.IsNil() {
		return
	}
	if m.TTL > 0 && len(n.entries) > 0 {
		// Keep walking.
		target := n.entries[n.env.Rand().Intn(len(n.entries))].Node
		fwd := m
		fwd.Sender = n.self
		fwd.TTL = m.TTL - 1
		if n.env.Send(target, fwd) == nil {
			return
		}
		// Walk target dead: terminate the walk here instead.
	}
	n.stats.JoinWalksEnded++
	if joiner == n.self {
		return
	}
	// Swap a random local entry for the joiner and gift the displaced entry
	// to the joiner so its view fills up.
	if _, dup := n.present[joiner]; dup {
		return
	}
	var displaced []msg.Entry
	if len(n.entries) >= n.cfg.ViewSize {
		victim := n.entries[n.env.Rand().Intn(len(n.entries))]
		n.remove(victim.Node)
		if victim.Node != joiner {
			displaced = []msg.Entry{victim}
		}
	}
	n.insert(msg.Entry{Node: joiner})
	_ = n.env.Send(joiner, msg.Message{
		Type:    msg.CyclonShuffleReply,
		Sender:  n.self,
		Entries: append(displaced, msg.Entry{Node: n.self}),
	})
	_ = from
}

// --- Shuffle protocol ---------------------------------------------------------

func (n *Node) handleShuffle(m msg.Message) {
	n.stats.ShufflesAnswered++
	reply := n.sampleEntries(n.cfg.ShuffleLen)
	// Reply over a temporary channel; if the initiator died meanwhile the
	// exchange is simply lost.
	_ = n.env.Send(m.Sender, msg.Message{
		Type:    msg.CyclonShuffleReply,
		Sender:  n.self,
		Entries: reply,
	})
	n.integrate(m.Entries, reply)
}

func (n *Node) handleShuffleReply(m msg.Message) {
	sent := n.lastSent
	n.lastSent = nil
	n.integrate(m.Entries, sent)
}

// integrate merges received entries into the view: duplicates keep the
// younger age, empty slots are filled first, then entries sent to the peer
// are replaced, then random entries (Cyclon's enhanced-shuffle rule).
// sentToPeer is consumed in slice order to keep the simulation deterministic.
func (n *Node) integrate(received, sentToPeer []msg.Entry) {
	sent := make([]id.ID, len(sentToPeer))
	for i, e := range sentToPeer {
		sent[i] = e.Node
	}
	for _, e := range received {
		if e.Node == n.self || e.Node.IsNil() {
			continue
		}
		if i, ok := n.present[e.Node]; ok {
			if e.Age < n.entries[i].Age {
				n.entries[i].Age = e.Age
			}
			continue
		}
		if len(n.entries) >= n.cfg.ViewSize {
			var evicted bool
			sent, evicted = n.evictPreferring(sent)
			if !evicted {
				continue // nothing evictable; should not happen
			}
		}
		n.insert(e)
	}
}

// evictPreferring removes one entry, preferring those in sent, falling back
// to a random victim. It returns the remaining preference list and whether
// an eviction happened.
func (n *Node) evictPreferring(sent []id.ID) ([]id.ID, bool) {
	for i, node := range sent {
		if _, ok := n.present[node]; ok {
			n.remove(node)
			return sent[i+1:], true
		}
	}
	if len(n.entries) == 0 {
		return nil, false
	}
	victim := n.entries[n.env.Rand().Intn(len(n.entries))].Node
	return nil, n.remove(victim)
}

// --- View plumbing ------------------------------------------------------------

func (n *Node) insert(e msg.Entry) {
	if e.Node == n.self || e.Node.IsNil() {
		return
	}
	if _, ok := n.present[e.Node]; ok {
		return
	}
	if len(n.entries) >= n.cfg.ViewSize {
		return
	}
	n.present[e.Node] = len(n.entries)
	n.entries = append(n.entries, e)
}

func (n *Node) remove(node id.ID) bool {
	i, ok := n.present[node]
	if !ok {
		return false
	}
	last := len(n.entries) - 1
	n.entries[i] = n.entries[last]
	n.present[n.entries[i].Node] = i
	n.entries = n.entries[:last]
	delete(n.present, node)
	return true
}

// sampleEntries returns up to k distinct random view entries (copies).
func (n *Node) sampleEntries(k int) []msg.Entry {
	if k <= 0 || len(n.entries) == 0 {
		return nil
	}
	if k > len(n.entries) {
		k = len(n.entries)
	}
	idx := n.env.Rand().Perm(len(n.entries))[:k]
	out := make([]msg.Entry, k)
	for i, j := range idx {
		out[i] = n.entries[j]
	}
	return out
}
