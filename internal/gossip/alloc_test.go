package gossip

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// nullEnv is an environment whose hot-path operations allocate nothing, so
// AllocsPerRun isolates the gossip layer's own allocations.
type nullEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
}

var _ peer.Env = (*nullEnv)(nil)

func (e *nullEnv) Self() id.ID                   { return e.self }
func (e *nullEnv) Send(id.ID, msg.Message) error { return nil }
func (e *nullEnv) Probe(id.ID) error             { return nil }
func (e *nullEnv) Rand() *rng.Rand               { return e.rand }
func (e *nullEnv) Watch(id.ID)                   {}
func (e *nullEnv) Unwatch(id.ID)                 {}

// flatMembership serves a fixed neighbor list through a reused scratch
// buffer, like the real memberships do per the GossipTargets contract.
type flatMembership struct {
	neighbors []id.ID
	scratch   []id.ID
}

var _ peer.Membership = (*flatMembership)(nil)

func (f *flatMembership) Deliver(id.ID, msg.Message) {}
func (f *flatMembership) OnCycle()                   {}
func (f *flatMembership) Neighbors() []id.ID         { return append([]id.ID(nil), f.neighbors...) }
func (f *flatMembership) OnPeerDown(id.ID)           {}
func (f *flatMembership) NeighborVersion() uint64    { return 1 }

func (f *flatMembership) GossipTargets(fanout int, exclude id.ID) []id.ID {
	f.scratch = f.scratch[:0]
	for _, n := range f.neighbors {
		if n != exclude {
			f.scratch = append(f.scratch, n)
		}
	}
	if fanout > 0 && len(f.scratch) > fanout {
		f.scratch = f.scratch[:fanout]
	}
	return f.scratch
}

// TestSteadyStateDeliveryZeroAlloc pins the acceptance criterion for the
// gossip layer: once warmed, delivering a fresh broadcast copy, forwarding
// it, and absorbing duplicate copies allocates nothing. Any regression —
// a map sneaking back into the seen path, a fresh slice per fan-out — fails
// this test before it shows up in BENCH_sim.json.
func TestSteadyStateDeliveryZeroAlloc(t *testing.T) {
	env := &nullEnv{self: 1, rand: rng.New(1)}
	mem := &flatMembership{neighbors: []id.ID{2, 3, 4, 5}}
	payload := make([]byte, 64)
	n := New(env, mem, Config{Mode: Flood}, nil)

	round := uint64(0)
	iteration := func() {
		round++
		// One fresh copy (delivered + forwarded) and two duplicates — the
		// flood steady state, including dedup-window evictions once round
		// exceeds the seen capacity.
		n.Deliver(2, msg.Message{Type: msg.Gossip, Sender: 2, Round: round, Hops: 1, Payload: payload})
		n.Deliver(3, msg.Message{Type: msg.Gossip, Sender: 3, Round: round, Hops: 2, Payload: payload})
		n.Deliver(4, msg.Message{Type: msg.Gossip, Sender: 4, Round: round, Hops: 2, Payload: payload})
	}
	// Warm past the seen window so the eviction path is exercised inside
	// the measured runs too.
	for i := 0; i < DefaultSeenWindow+8; i++ {
		iteration()
	}
	if allocs := testing.AllocsPerRun(200, iteration); allocs != 0 {
		t.Fatalf("steady-state gossip delivery allocates %.1f/op, want 0", allocs)
	}

	d, dup, fwd, _ := n.Counters()
	if d == 0 || dup == 0 || fwd == 0 {
		t.Fatalf("test drove no real traffic: delivered=%d dup=%d fwd=%d", d, dup, fwd)
	}
}

// TestTrackerDeliverZeroAlloc pins the harness-side per-delivery path.
func TestTrackerDeliverZeroAlloc(t *testing.T) {
	tr := NewTracker()
	round := tr.NextRound()
	tr.Deliver(round, 0, nil, 0)
	if allocs := testing.AllocsPerRun(200, func() {
		tr.Deliver(round, 0, nil, 3)
	}); allocs != 0 {
		t.Fatalf("Tracker.Deliver allocates %.1f/op, want 0", allocs)
	}
	// Fresh rounds with Forget (the MeasureBurst pattern) stay flat too.
	if allocs := testing.AllocsPerRun(200, func() {
		r := tr.NextRound()
		tr.Deliver(r, 0, nil, 1)
		tr.Forget(r)
	}); allocs != 0 {
		t.Fatalf("Tracker round lifecycle allocates %.1f/op, want 0", allocs)
	}
}
