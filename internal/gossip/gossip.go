// Package gossip implements the broadcast protocol of the paper's
// evaluation (§5): a node forwards a message the first time it receives it,
// with no a-priori bound on the number of gossip rounds.
//
// Two forwarding modes are supported:
//
//   - Flood: forward to every overlay neighbor except the arrival link. This
//     is HyParView's deterministic dissemination over the symmetric active
//     view (§4.1).
//   - Fanout(t): forward to t members chosen at random from the partial
//     view. This is the classic gossip used on top of Cyclon and SCAMP.
//
// Send failures (peer.ErrPeerDown, i.e. a broken TCP connection) are passed
// to the membership protocol via OnPeerDown, which is how HyParView and
// CyclonAcked detect failures during dissemination while plain Cyclon and
// SCAMP ignore them.
package gossip

import (
	"errors"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/roundcache"
)

// DefaultSeenWindow is the default window, in rounds, of the per-node
// delivered-message cache (Config.SeenWindow): a node remembers (and
// deduplicates) the last SeenWindow round identifiers it delivered. Rounds
// are allocated monotonically, so the direct-mapped cache behaves as a ring
// over the most recent rounds; a copy arriving more than SeenWindow rounds
// late would be re-delivered, the bounded-memory trade every deployed
// message-id cache makes. Deliveries of one round are always fully drained
// before the harness starts the next, so the window only has to cover the
// rounds genuinely in flight at once; 128 keeps the per-node footprint at
// ~3KB (a 256-slot open-addressed table plus the 128-entry eviction ring) —
// flat for the life of the node — even at 100k-node populations.
const DefaultSeenWindow = 128

// Mode selects the forwarding strategy.
type Mode uint8

// Forwarding modes.
const (
	// Flood forwards to all neighbors except the sender (HyParView).
	Flood Mode = iota + 1
	// Fanout forwards to Config.Fanout random view members (Cyclon, SCAMP).
	Fanout
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Flood:
		return "flood"
	case Fanout:
		return "fanout"
	default:
		return "unknown"
	}
}

// Config parameterizes a gossip node.
type Config struct {
	// Mode is the forwarding strategy.
	Mode Mode

	// Fanout is the per-hop fan-out in Fanout mode (paper §5.1: 4).
	Fanout int

	// ReportPeerDown controls whether send failures are reported to the
	// membership protocol's OnPeerDown. True for HyParView (TCP failure
	// detector) and CyclonAcked (acknowledgments); false for plain Cyclon
	// and SCAMP whose gossip is fire-and-forget.
	ReportPeerDown bool

	// SeenWindow is the capacity, in rounds, of the delivered-message
	// dedup cache (see DefaultSeenWindow). Zero takes the default.
	SeenWindow int
}

// Delivery is the callback invoked exactly once per locally delivered
// broadcast. topic is the pub/sub topic tag of the round (0 for untagged
// plain broadcasts; see msg.Message.Topic for the encoding of the batch
// flag).
type Delivery func(round uint64, topic uint32, payload []byte, hops int)

// Broadcaster is the contract every broadcast-layer node satisfies: the
// flood/fanout Node in this package and the tree-based node in
// internal/plumtree. The experiment harness builds clusters against this
// interface so the broadcast protocol is a per-cluster switch, and the shared
// Counters accounting is what feeds the RMR (relative message redundancy)
// metric in internal/metrics.
type Broadcaster interface {
	peer.Process
	peer.FailureObserver

	// Broadcast emits a new message with a round identifier unique per
	// message (provided by the Tracker or an application counter).
	Broadcast(round uint64, payload []byte)

	// BroadcastTopic emits a new message tagged with a pub/sub topic. The
	// tag rides the round end to end (forwarding, caching, GRAFT
	// retransmission) and reaches every Delivery callback unchanged.
	// Broadcast(round, payload) is BroadcastTopic(round, 0, payload).
	BroadcastTopic(round uint64, topic uint32, payload []byte)

	// Counters returns the node's payload accounting: locally delivered
	// messages (first copies, including the node's own broadcasts),
	// redundant payload receptions, successful payload forwards, and sends
	// rejected with peer.ErrPeerDown.
	Counters() (delivered, duplicates, forwarded, sendFails uint64)

	// Seen reports whether the node has delivered round. The underlying
	// state is a fixed-capacity cache over the most recent rounds (see
	// DefaultSeenWindow), so Seen reports false for rounds older than the
	// window.
	Seen(round uint64) bool

	// ResetSeen clears the delivered-message state in place. The caches are
	// fixed-capacity, so this is a semantic reset (start a fresh round
	// epoch), not a memory bound.
	ResetSeen()

	// Membership returns the wrapped membership protocol.
	Membership() peer.Membership
}

// Node wires a membership protocol instance to the broadcast layer. It
// implements peer.Process: broadcast traffic is consumed here, everything
// else is handed to the membership protocol.
type Node struct {
	env        peer.Env
	membership peer.Membership
	cfg        Config
	seen       roundcache.Set
	onDeliver  Delivery

	// sendRef is env's optional by-reference send fast path (peer.RefSender),
	// probed once here; nil means fall back to env.Send. The flood fan-out
	// pushes one frozen message to every neighbor, so skipping the by-value
	// argument copy per link is measurable at scale.
	sendRef func(dst id.ID, m *msg.Message) error

	// fwdScratch stages the outgoing copy of a relayed broadcast. It lives
	// on the node (already heap-allocated) so that taking its address for
	// the by-reference send path cannot make the message escape — a
	// stack-local here would cost one heap allocation per delivered event.
	fwdScratch msg.Message

	// lastRound/hasLast fast-path the dominant dedup case: a redundant copy
	// of the round delivered most recently. Flood redundancy means most
	// receptions are duplicates of the round currently in flight, and this
	// check resolves on the node's own (already loaded) cache line instead
	// of a random access into the seen table. lastRound is also in the seen
	// cache — this is an accelerator, not a second source of truth.
	lastRound uint64
	hasLast   bool

	// Counters for the evaluation.
	delivered  uint64
	duplicates uint64
	forwarded  uint64
	sendFails  uint64
}

var _ Broadcaster = (*Node)(nil)

// New builds a gossip node over membership. onDeliver may be nil.
func New(env peer.Env, membership peer.Membership, cfg Config, onDeliver Delivery) *Node {
	if cfg.Mode == 0 {
		cfg.Mode = Flood
	}
	if cfg.Mode == Fanout && cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.SeenWindow <= 0 {
		cfg.SeenWindow = DefaultSeenWindow
	}
	n := &Node{
		env:        env,
		membership: membership,
		cfg:        cfg,
		onDeliver:  onDeliver,
	}
	if rs, ok := env.(peer.RefSender); ok {
		n.sendRef = rs.SendRef
	}
	n.seen.Init(cfg.SeenWindow)
	return n
}

// Membership returns the wrapped membership protocol.
func (n *Node) Membership() peer.Membership { return n.membership }

// Deliver implements peer.Process.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	if m.Type != msg.Gossip {
		n.membership.Deliver(from, m)
		return
	}
	n.receiveGossip(from, &m)
}

// OnCycle implements peer.Process by delegating to the membership protocol.
func (n *Node) OnCycle() { n.membership.OnCycle() }

// Broadcast emits a new message with the given round identifier and payload
// from this node. Round identifiers must be unique per message (the
// experiment harness or an application-level counter provides them).
func (n *Node) Broadcast(round uint64, payload []byte) {
	n.BroadcastTopic(round, 0, payload)
}

// BroadcastTopic emits a new topic-tagged message from this node (see
// Broadcaster). The tag is a per-round scalar: it is copied into every
// forwarded hop for free under the copy-on-write relay.
func (n *Node) BroadcastTopic(round uint64, topic uint32, payload []byte) {
	if n.hasLast && round == n.lastRound {
		return
	}
	if !n.seen.Add(round) {
		return
	}
	n.lastRound, n.hasLast = round, true
	n.delivered++
	if n.onDeliver != nil {
		n.onDeliver(round, topic, payload, 0)
	}
	n.fwdScratch = msg.Message{
		Type:    msg.Gossip,
		Sender:  n.env.Self(),
		Round:   round,
		Hops:    0,
		Topic:   topic,
		Payload: payload,
	}
	n.forward(id.Nil, &n.fwdScratch)
}

// receiveGossip handles one incoming broadcast copy. m points at Deliver's
// argument copy — by-reference purely to avoid another struct copy; it is
// read-only here per the ownership rules.
func (n *Node) receiveGossip(from id.ID, m *msg.Message) {
	if n.hasLast && m.Round == n.lastRound {
		n.duplicates++
		return
	}
	if !n.seen.Add(m.Round) {
		n.duplicates++
		return
	}
	n.lastRound, n.hasLast = m.Round, true
	n.delivered++
	if n.onDeliver != nil {
		n.onDeliver(m.Round, m.Topic, m.Payload, int(m.Hops)+1)
	}
	// Copy-on-write relay: the struct copy in fwdScratch rewrites the
	// per-hop scalars while sharing the frozen payload slice.
	n.fwdScratch = *m
	n.fwdScratch.Sender = n.env.Self()
	n.fwdScratch.Hops = m.Hops + 1
	n.forward(from, &n.fwdScratch)
}

// forward relays *m to the mode's targets, excluding the arrival link. m
// aliases fwdScratch; sends never retain it.
func (n *Node) forward(from id.ID, m *msg.Message) {
	var targets []id.ID
	switch n.cfg.Mode {
	case Flood:
		targets = n.membership.GossipTargets(0, from)
	case Fanout:
		targets = n.membership.GossipTargets(n.cfg.Fanout, from)
	}
	for _, t := range targets {
		if err := n.send(t, m); err != nil {
			n.sendFails++
			if n.cfg.ReportPeerDown && errors.Is(err, peer.ErrPeerDown) {
				// This is the paper's failure-detection moment: the entire
				// broadcast overlay is implicitly tested at every broadcast
				// (§4.1 item iii). Only a proven-down peer is reported —
				// an overloaded simulator (queue overflow) loses the copy
				// without indicting the link.
				n.membership.OnPeerDown(t)
			}
			continue
		}
		n.forwarded++
	}
}

// send dispatches through the by-reference fast path when the environment
// provides one. m is frozen (see package peer): both paths may alias it.
func (n *Node) send(dst id.ID, m *msg.Message) error {
	if n.sendRef != nil {
		return n.sendRef(dst, m)
	}
	return n.env.Send(dst, *m)
}

// Counters returns (delivered, duplicates, forwarded, sendFailures).
func (n *Node) Counters() (delivered, duplicates, forwarded, sendFails uint64) {
	return n.delivered, n.duplicates, n.forwarded, n.sendFails
}

// Seen reports whether the node has delivered round within the seen window.
func (n *Node) Seen(round uint64) bool {
	return n.seen.Contains(round)
}

// ResetSeen clears the delivered-message cache in place; no memory is
// released or allocated (the cache is fixed-capacity).
func (n *Node) ResetSeen() {
	n.hasLast = false
	n.seen.Reset()
}

// OnPeerDown implements peer.FailureObserver: connection-level failure
// notifications from the environment (TCP resets for watched links) are
// forwarded to the membership protocol.
func (n *Node) OnPeerDown(peerID id.ID) {
	n.membership.OnPeerDown(peerID)
}
