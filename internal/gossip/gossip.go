// Package gossip implements the broadcast protocol of the paper's
// evaluation (§5): a node forwards a message the first time it receives it,
// with no a-priori bound on the number of gossip rounds.
//
// Two forwarding modes are supported:
//
//   - Flood: forward to every overlay neighbor except the arrival link. This
//     is HyParView's deterministic dissemination over the symmetric active
//     view (§4.1).
//   - Fanout(t): forward to t members chosen at random from the partial
//     view. This is the classic gossip used on top of Cyclon and SCAMP.
//
// Send failures (peer.ErrPeerDown, i.e. a broken TCP connection) are passed
// to the membership protocol via OnPeerDown, which is how HyParView and
// CyclonAcked detect failures during dissemination while plain Cyclon and
// SCAMP ignore them.
package gossip

import (
	"errors"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// Mode selects the forwarding strategy.
type Mode uint8

// Forwarding modes.
const (
	// Flood forwards to all neighbors except the sender (HyParView).
	Flood Mode = iota + 1
	// Fanout forwards to Config.Fanout random view members (Cyclon, SCAMP).
	Fanout
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Flood:
		return "flood"
	case Fanout:
		return "fanout"
	default:
		return "unknown"
	}
}

// Config parameterizes a gossip node.
type Config struct {
	// Mode is the forwarding strategy.
	Mode Mode

	// Fanout is the per-hop fan-out in Fanout mode (paper §5.1: 4).
	Fanout int

	// ReportPeerDown controls whether send failures are reported to the
	// membership protocol's OnPeerDown. True for HyParView (TCP failure
	// detector) and CyclonAcked (acknowledgments); false for plain Cyclon
	// and SCAMP whose gossip is fire-and-forget.
	ReportPeerDown bool
}

// Delivery is the callback invoked exactly once per locally delivered
// broadcast.
type Delivery func(round uint64, payload []byte, hops int)

// Broadcaster is the contract every broadcast-layer node satisfies: the
// flood/fanout Node in this package and the tree-based node in
// internal/plumtree. The experiment harness builds clusters against this
// interface so the broadcast protocol is a per-cluster switch, and the shared
// Counters accounting is what feeds the RMR (relative message redundancy)
// metric in internal/metrics.
type Broadcaster interface {
	peer.Process
	peer.FailureObserver

	// Broadcast emits a new message with a round identifier unique per
	// message (provided by the Tracker or an application counter).
	Broadcast(round uint64, payload []byte)

	// Counters returns the node's payload accounting: locally delivered
	// messages (first copies, including the node's own broadcasts),
	// redundant payload receptions, successful payload forwards, and sends
	// rejected with peer.ErrPeerDown.
	Counters() (delivered, duplicates, forwarded, sendFails uint64)

	// Seen reports whether the node has delivered round.
	Seen(round uint64) bool

	// ResetSeen clears the delivered-message state to bound memory in long
	// experiments.
	ResetSeen()

	// Membership returns the wrapped membership protocol.
	Membership() peer.Membership
}

// Node wires a membership protocol instance to the broadcast layer. It
// implements peer.Process: broadcast traffic is consumed here, everything
// else is handed to the membership protocol.
type Node struct {
	env        peer.Env
	membership peer.Membership
	cfg        Config
	seen       map[uint64]struct{}
	onDeliver  Delivery

	// Counters for the evaluation.
	delivered  uint64
	duplicates uint64
	forwarded  uint64
	sendFails  uint64
}

var _ Broadcaster = (*Node)(nil)

// New builds a gossip node over membership. onDeliver may be nil.
func New(env peer.Env, membership peer.Membership, cfg Config, onDeliver Delivery) *Node {
	if cfg.Mode == 0 {
		cfg.Mode = Flood
	}
	if cfg.Mode == Fanout && cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	return &Node{
		env:        env,
		membership: membership,
		cfg:        cfg,
		seen:       make(map[uint64]struct{}),
		onDeliver:  onDeliver,
	}
}

// Membership returns the wrapped membership protocol.
func (n *Node) Membership() peer.Membership { return n.membership }

// Deliver implements peer.Process.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	if m.Type != msg.Gossip {
		n.membership.Deliver(from, m)
		return
	}
	n.receiveGossip(from, m)
}

// OnCycle implements peer.Process by delegating to the membership protocol.
func (n *Node) OnCycle() { n.membership.OnCycle() }

// Broadcast emits a new message with the given round identifier and payload
// from this node. Round identifiers must be unique per message (the
// experiment harness or an application-level counter provides them).
func (n *Node) Broadcast(round uint64, payload []byte) {
	if _, dup := n.seen[round]; dup {
		return
	}
	n.seen[round] = struct{}{}
	n.delivered++
	if n.onDeliver != nil {
		n.onDeliver(round, payload, 0)
	}
	n.forward(id.Nil, msg.Message{
		Type:    msg.Gossip,
		Sender:  n.env.Self(),
		Round:   round,
		Hops:    0,
		Payload: payload,
	})
}

// receiveGossip handles one incoming broadcast copy.
func (n *Node) receiveGossip(from id.ID, m msg.Message) {
	if _, dup := n.seen[m.Round]; dup {
		n.duplicates++
		return
	}
	n.seen[m.Round] = struct{}{}
	n.delivered++
	if n.onDeliver != nil {
		n.onDeliver(m.Round, m.Payload, int(m.Hops)+1)
	}
	fwd := m
	fwd.Sender = n.env.Self()
	fwd.Hops = m.Hops + 1
	n.forward(from, fwd)
}

// forward relays m to the mode's targets, excluding the arrival link.
func (n *Node) forward(from id.ID, m msg.Message) {
	var targets []id.ID
	switch n.cfg.Mode {
	case Flood:
		targets = n.membership.GossipTargets(0, from)
	case Fanout:
		targets = n.membership.GossipTargets(n.cfg.Fanout, from)
	}
	for _, t := range targets {
		if err := n.env.Send(t, m); err != nil {
			n.sendFails++
			if n.cfg.ReportPeerDown && errors.Is(err, peer.ErrPeerDown) {
				// This is the paper's failure-detection moment: the entire
				// broadcast overlay is implicitly tested at every broadcast
				// (§4.1 item iii). Only a proven-down peer is reported —
				// an overloaded simulator (queue overflow) loses the copy
				// without indicting the link.
				n.membership.OnPeerDown(t)
			}
			continue
		}
		n.forwarded++
	}
}

// Counters returns (delivered, duplicates, forwarded, sendFailures).
func (n *Node) Counters() (delivered, duplicates, forwarded, sendFails uint64) {
	return n.delivered, n.duplicates, n.forwarded, n.sendFails
}

// Seen reports whether the node has delivered round.
func (n *Node) Seen(round uint64) bool {
	_, ok := n.seen[round]
	return ok
}

// ResetSeen clears the delivered-message table; experiments spanning many
// thousands of rounds use this to bound memory.
func (n *Node) ResetSeen() {
	n.seen = make(map[uint64]struct{})
}

// OnPeerDown implements peer.FailureObserver: connection-level failure
// notifications from the environment (TCP resets for watched links) are
// forwarded to the membership protocol.
func (n *Node) OnPeerDown(peerID id.ID) {
	n.membership.OnPeerDown(peerID)
}
