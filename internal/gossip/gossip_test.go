package gossip

import (
	"fmt"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// fakeMembership is a scriptable peer.Membership.
type fakeMembership struct {
	neighbors []id.ID
	downs     []id.ID
	delivered []msg.Message
	cycles    int
}

var _ peer.Membership = (*fakeMembership)(nil)

func (f *fakeMembership) Deliver(_ id.ID, m msg.Message) { f.delivered = append(f.delivered, m) }
func (f *fakeMembership) OnCycle()                       { f.cycles++ }
func (f *fakeMembership) Neighbors() []id.ID             { return append([]id.ID(nil), f.neighbors...) }
func (f *fakeMembership) OnPeerDown(p id.ID)             { f.downs = append(f.downs, p) }

func (f *fakeMembership) GossipTargets(fanout int, exclude id.ID) []id.ID {
	var out []id.ID
	for _, n := range f.neighbors {
		if n != exclude {
			out = append(out, n)
		}
	}
	if fanout > 0 && len(out) > fanout {
		out = out[:fanout]
	}
	return out
}

// fakeEnv records sends.
type fakeEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
	down map[id.ID]bool
	sent []sentMsg
}

type sentMsg struct {
	to id.ID
	m  msg.Message
}

var _ peer.Env = (*fakeEnv)(nil)

func newFakeEnv(self id.ID) *fakeEnv {
	return &fakeEnv{self: self, rand: rng.New(1), down: make(map[id.ID]bool)}
}

func (e *fakeEnv) Self() id.ID     { return e.self }
func (e *fakeEnv) Rand() *rng.Rand { return e.rand }
func (e *fakeEnv) Watch(id.ID)     {}
func (e *fakeEnv) Unwatch(id.ID)   {}
func (e *fakeEnv) Probe(id.ID) error {
	return nil
}

func (e *fakeEnv) Send(dst id.ID, m msg.Message) error {
	if e.down[dst] {
		return fmt.Errorf("send: %w", peer.ErrPeerDown)
	}
	e.sent = append(e.sent, sentMsg{to: dst, m: m})
	return nil
}

func TestBroadcastFloodsAllNeighbors(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3, 4}}
	var delivered []uint64
	n := New(env, mem, Config{Mode: Flood}, func(r uint64, _ uint32, _ []byte, _ int) {
		delivered = append(delivered, r)
	})
	n.Broadcast(7, []byte("x"))
	if len(env.sent) != 3 {
		t.Fatalf("sent to %d peers, want 3", len(env.sent))
	}
	for _, s := range env.sent {
		if s.m.Type != msg.Gossip || s.m.Round != 7 || s.m.Hops != 0 {
			t.Errorf("bad gossip frame: %+v", s.m)
		}
	}
	if len(delivered) != 1 || delivered[0] != 7 {
		t.Errorf("local delivery = %v, want [7]", delivered)
	}
}

func TestReceiveForwardsOnceExcludingSender(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3, 4}}
	n := New(env, mem, Config{Mode: Flood}, nil)
	g := msg.Message{Type: msg.Gossip, Sender: 2, Round: 9, Hops: 3}
	n.Deliver(2, g)
	if len(env.sent) != 2 {
		t.Fatalf("forwarded to %d peers, want 2 (sender excluded)", len(env.sent))
	}
	for _, s := range env.sent {
		if s.to == 2 {
			t.Error("message forwarded back to sender")
		}
		if s.m.Hops != 4 {
			t.Errorf("hops = %d, want 4", s.m.Hops)
		}
		if s.m.Sender != 1 {
			t.Errorf("relay sender = %v, want self", s.m.Sender)
		}
	}
	env.sent = nil
	// Second copy: duplicate, must not forward.
	n.Deliver(3, g)
	if len(env.sent) != 0 {
		t.Error("duplicate was forwarded")
	}
	d, dup, fwd, _ := n.Counters()
	if d != 1 || dup != 1 || fwd != 2 {
		t.Errorf("counters = %d %d %d", d, dup, fwd)
	}
}

func TestFanoutModeBoundsTargets(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3, 4, 5, 6, 7}}
	n := New(env, mem, Config{Mode: Fanout, Fanout: 4}, nil)
	n.Broadcast(1, nil)
	if len(env.sent) != 4 {
		t.Errorf("fanout sent %d, want 4", len(env.sent))
	}
}

func TestPeerDownReporting(t *testing.T) {
	env := newFakeEnv(1)
	env.down[3] = true
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{Mode: Flood, ReportPeerDown: true}, nil)
	n.Broadcast(1, nil)
	if len(mem.downs) != 1 || mem.downs[0] != 3 {
		t.Errorf("downs = %v, want [n3]", mem.downs)
	}
	_, _, _, fails := n.Counters()
	if fails != 1 {
		t.Errorf("sendFails = %d, want 1", fails)
	}
}

func TestPeerDownNotReportedWhenDisabled(t *testing.T) {
	env := newFakeEnv(1)
	env.down[3] = true
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{Mode: Flood, ReportPeerDown: false}, nil)
	n.Broadcast(1, nil)
	if len(mem.downs) != 0 {
		t.Errorf("downs = %v, want none (fire-and-forget)", mem.downs)
	}
}

func TestNonGossipDelegatedToMembership(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{}
	n := New(env, mem, Config{}, nil)
	n.Deliver(2, msg.Message{Type: msg.Shuffle, Sender: 2})
	if len(mem.delivered) != 1 || mem.delivered[0].Type != msg.Shuffle {
		t.Error("membership message not delegated")
	}
	n.OnCycle()
	if mem.cycles != 1 {
		t.Error("OnCycle not delegated")
	}
	n.OnPeerDown(9)
	if len(mem.downs) != 1 || mem.downs[0] != 9 {
		t.Error("OnPeerDown not forwarded")
	}
}

func TestBroadcastDuplicateRoundIgnored(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{Mode: Flood}, nil)
	n.Broadcast(5, nil)
	env.sent = nil
	n.Broadcast(5, nil)
	if len(env.sent) != 0 {
		t.Error("re-broadcast of a seen round forwarded")
	}
}

func TestResetSeenAllowsRedelivery(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{Mode: Flood}, nil)
	n.Deliver(2, msg.Message{Type: msg.Gossip, Sender: 2, Round: 3})
	if !n.Seen(3) {
		t.Fatal("round not marked seen")
	}
	n.ResetSeen()
	if n.Seen(3) {
		t.Error("ResetSeen did not clear")
	}
}

func TestOnPeerDownUnknownPeerForwarded(t *testing.T) {
	// The gossip layer is a pure pass-through for failure notifications: a
	// peer it never sent to (or that is not in the view at all) still
	// reaches the membership protocol, which owns the decision.
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{Mode: Flood}, nil)
	n.OnPeerDown(42)
	n.OnPeerDown(42) // repeated notification is forwarded again, not deduped
	if len(mem.downs) != 2 || mem.downs[0] != 42 || mem.downs[1] != 42 {
		t.Errorf("downs = %v, want [n42 n42]", mem.downs)
	}
}

func TestResetSeenRedeliveryCountsAgain(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	var deliveries int
	n := New(env, mem, Config{Mode: Flood}, func(uint64, uint32, []byte, int) { deliveries++ })
	g := msg.Message{Type: msg.Gossip, Sender: 2, Round: 3}
	n.Deliver(2, g)
	n.Deliver(2, g)
	d, dup, _, _ := n.Counters()
	if d != 1 || dup != 1 || deliveries != 1 {
		t.Fatalf("before reset: delivered=%d dup=%d callbacks=%d", d, dup, deliveries)
	}
	// ResetSeen trades exactly-once delivery for bounded memory: a round
	// redelivered afterwards counts (and is forwarded) as new. Experiments
	// must only reset between bursts, which this behavior makes observable.
	n.ResetSeen()
	n.Deliver(2, g)
	d, dup, _, _ = n.Counters()
	if d != 2 || dup != 1 || deliveries != 2 {
		t.Errorf("after reset: delivered=%d dup=%d callbacks=%d, want 2 1 2", d, dup, deliveries)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	r1 := tr.NextRound()
	r2 := tr.NextRound()
	if r1 == r2 {
		t.Fatal("NextRound not unique")
	}
	tr.Deliver(r1, 0, nil, 0)
	tr.Deliver(r1, 0, nil, 3)
	tr.Deliver(r1, 0, nil, 5)
	if got := tr.Delivered(r1); got != 3 {
		t.Errorf("Delivered = %d, want 3", got)
	}
	if got := tr.Reliability(r1, 6); got != 0.5 {
		t.Errorf("Reliability = %v, want 0.5", got)
	}
	if got := tr.MaxHops(r1); got != 5 {
		t.Errorf("MaxHops = %d, want 5", got)
	}
	if got := tr.AvgHops(r1); got != (0+3+5)/3.0 {
		t.Errorf("AvgHops = %v", got)
	}
	if got := tr.Reliability(r2, 6); got != 0 {
		t.Errorf("unknown round reliability = %v, want 0", got)
	}
	tr.Forget(r1)
	if tr.Delivered(r1) != 0 {
		t.Error("Forget did not clear round")
	}
	if tr.Reliability(r1, 0) != 0 {
		t.Error("zero population reliability must be 0")
	}
}

func TestTrackerReset(t *testing.T) {
	tr := NewTracker()
	r := tr.NextRound()
	tr.Deliver(r, 0, nil, 0)
	tr.Reset()
	if tr.Delivered(r) != 0 {
		t.Error("Reset kept stats")
	}
	if next := tr.NextRound(); next <= r {
		t.Error("Reset rewound the round counter")
	}
}

func TestModeString(t *testing.T) {
	if Flood.String() != "flood" || Fanout.String() != "fanout" || Mode(9).String() != "unknown" {
		t.Error("mode names wrong")
	}
}

func TestMembershipAccessor(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{}
	n := New(env, mem, Config{}, nil)
	if n.Membership() != peer.Membership(mem) {
		t.Error("Membership() does not return the wrapped protocol")
	}
}
