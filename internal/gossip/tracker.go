package gossip

// Tracker aggregates per-round delivery statistics across a simulated
// cluster. The experiment harness installs one Tracker-backed Delivery
// callback per node and reads reliability figures from it.
//
// Gossip reliability is defined in the paper (§2.5) as the percentage of
// live nodes that deliver a broadcast; 100% means atomic broadcast.
type Tracker struct {
	next   uint64
	rounds map[uint64]*roundStats
}

type roundStats struct {
	delivered int
	maxHops   int
	sumHops   int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{rounds: make(map[uint64]*roundStats)}
}

// NextRound allocates a fresh round identifier.
func (t *Tracker) NextRound() uint64 {
	t.next++
	return t.next
}

// Deliver records one delivery of round after hops overlay hops. It is the
// Delivery callback to install on gossip nodes.
func (t *Tracker) Deliver(round uint64, _ []byte, hops int) {
	rs := t.rounds[round]
	if rs == nil {
		rs = &roundStats{}
		t.rounds[round] = rs
	}
	rs.delivered++
	rs.sumHops += hops
	if hops > rs.maxHops {
		rs.maxHops = hops
	}
}

// Delivered returns the number of nodes that delivered round.
func (t *Tracker) Delivered(round uint64) int {
	if rs := t.rounds[round]; rs != nil {
		return rs.delivered
	}
	return 0
}

// Reliability returns the fraction (0..1) of the alive population that
// delivered round.
func (t *Tracker) Reliability(round uint64, alive int) float64 {
	if alive <= 0 {
		return 0
	}
	return float64(t.Delivered(round)) / float64(alive)
}

// MaxHops returns the maximum hop count observed for round's deliveries.
func (t *Tracker) MaxHops(round uint64) int {
	if rs := t.rounds[round]; rs != nil {
		return rs.maxHops
	}
	return 0
}

// AvgHops returns the mean delivery hop count for round.
func (t *Tracker) AvgHops(round uint64) float64 {
	rs := t.rounds[round]
	if rs == nil || rs.delivered == 0 {
		return 0
	}
	return float64(rs.sumHops) / float64(rs.delivered)
}

// Forget drops the statistics of round, bounding tracker memory in long
// experiments.
func (t *Tracker) Forget(round uint64) { delete(t.rounds, round) }

// Reset drops all per-round statistics but keeps the round counter
// monotonic.
func (t *Tracker) Reset() { t.rounds = make(map[uint64]*roundStats) }
