package gossip

import "hyparview/internal/roundcache"

// TrackerWindow is the capacity, in rounds, of the tracker's per-round
// statistics cache. The harness measures one round at a time (each broadcast
// is fully drained, read and Forgotten before the next), so the window only
// has to cover rounds measured concurrently; 1024 leaves two orders of
// magnitude of slack while keeping the tracker a flat 32KB for the life of a
// run.
const TrackerWindow = 1024

// Tracker aggregates per-round delivery statistics across a simulated
// cluster. The experiment harness installs one Tracker-backed Delivery
// callback per node and reads reliability figures from it.
//
// Gossip reliability is defined in the paper (§2.5) as the percentage of
// live nodes that deliver a broadcast; 100% means atomic broadcast.
//
// The per-round state lives in a fixed-capacity round cache: Deliver on the
// per-delivery hot path is one array access and never allocates, and a round
// older than TrackerWindow behind the newest tracked round is evicted (its
// statistics read as zero, exactly as after Forget).
type Tracker struct {
	next   uint64
	rounds *roundcache.Cache[roundStats]
}

type roundStats struct {
	delivered int
	maxHops   int
	sumHops   int
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{rounds: roundcache.New[roundStats](TrackerWindow)}
}

// NextRound allocates a fresh round identifier.
func (t *Tracker) NextRound() uint64 {
	t.next++
	return t.next
}

// Deliver records one delivery of round after hops overlay hops. It is the
// Delivery callback to install on gossip nodes.
func (t *Tracker) Deliver(round uint64, _ uint32, _ []byte, hops int) {
	rs, existed := t.rounds.Put(round)
	if !existed {
		*rs = roundStats{}
	}
	rs.delivered++
	rs.sumHops += hops
	if hops > rs.maxHops {
		rs.maxHops = hops
	}
}

// Delivered returns the number of nodes that delivered round.
func (t *Tracker) Delivered(round uint64) int {
	if rs := t.rounds.Get(round); rs != nil {
		return rs.delivered
	}
	return 0
}

// Reliability returns the fraction (0..1) of the alive population that
// delivered round.
func (t *Tracker) Reliability(round uint64, alive int) float64 {
	if alive <= 0 {
		return 0
	}
	return float64(t.Delivered(round)) / float64(alive)
}

// MaxHops returns the maximum hop count observed for round's deliveries.
func (t *Tracker) MaxHops(round uint64) int {
	if rs := t.rounds.Get(round); rs != nil {
		return rs.maxHops
	}
	return 0
}

// AvgHops returns the mean delivery hop count for round.
func (t *Tracker) AvgHops(round uint64) float64 {
	rs := t.rounds.Get(round)
	if rs == nil || rs.delivered == 0 {
		return 0
	}
	return float64(rs.sumHops) / float64(rs.delivered)
}

// Forget drops the statistics of round.
func (t *Tracker) Forget(round uint64) { t.rounds.Remove(round) }

// Reset drops all per-round statistics in place (no allocation) but keeps
// the round counter monotonic.
func (t *Tracker) Reset() { t.rounds.Reset() }
