package gossip_test

import (
	"testing"

	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
	"hyparview/internal/peer"
)

// meshMember is a full-mesh static membership: every node neighbors every
// other, giving the broadcast layer a maximally redundant overlay so the
// counter accounting is exercised under heavy duplication.
type meshMember struct {
	self id.ID
	n    int
}

var _ peer.Membership = (*meshMember)(nil)

func (m *meshMember) Deliver(id.ID, msg.Message) {}
func (m *meshMember) OnCycle()                   {}
func (m *meshMember) OnPeerDown(id.ID)           {}

func (m *meshMember) Neighbors() []id.ID {
	out := make([]id.ID, 0, m.n-1)
	for i := 1; i <= m.n; i++ {
		if p := id.ID(i); p != m.self {
			out = append(out, p)
		}
	}
	return out
}

func (m *meshMember) GossipTargets(fanout int, exclude id.ID) []id.ID {
	var out []id.ID
	for _, p := range m.Neighbors() {
		if p != exclude {
			out = append(out, p)
		}
	}
	if fanout > 0 && len(out) > fanout {
		out = out[:fanout]
	}
	return out
}

// buildMesh wires n flood-gossip nodes over a full mesh in one simulator.
func buildMesh(n int) (*netsim.Sim, map[id.ID]*gossip.Node) {
	sim := netsim.New(1)
	nodes := make(map[id.ID]*gossip.Node, n)
	for i := 1; i <= n; i++ {
		nodeID := id.ID(i)
		sim.Add(nodeID, func(env peer.Env) peer.Process {
			g := gossip.New(env, &meshMember{self: nodeID, n: n}, gossip.Config{Mode: gossip.Flood}, nil)
			nodes[nodeID] = g
			return g
		})
	}
	return sim, nodes
}

// TestConcurrentBroadcastAccounting drives two broadcasts of DIFFERENT
// rounds that are in flight simultaneously (both enqueued before any
// delivery) and checks the cluster-wide counter identities against the
// simulator's own statistics.
func TestConcurrentBroadcastAccounting(t *testing.T) {
	const n = 8
	sim, nodes := buildMesh(n)
	before := sim.Stats()
	nodes[1].Broadcast(10, nil)
	nodes[5].Broadcast(11, nil)
	sim.Drain()
	after := sim.Stats()

	var del, dup, fwd, fails uint64
	for _, g := range nodes {
		d, du, f, sf := g.Counters()
		del += d
		dup += du
		fwd += f
		fails += sf
	}
	// Every node delivers both rounds exactly once.
	if del != 2*n {
		t.Errorf("total delivered = %d, want %d", del, 2*n)
	}
	for _, g := range nodes {
		if !g.Seen(10) || !g.Seen(11) {
			t.Error("a node missed one of the concurrent rounds")
		}
	}
	// Identity 1: every network reception is a first copy or a duplicate
	// (the two source-local deliveries never crossed the network).
	if got, want := (del-2)+dup, after.Delivered-before.Delivered; got != want {
		t.Errorf("receptions by counters = %d, by simulator = %d", got, want)
	}
	// Identity 2: with no failures, everything forwarded was sent.
	if got, want := fwd, after.Sent-before.Sent; got != want {
		t.Errorf("forwards by counters = %d, sends by simulator = %d", got, want)
	}
	if fails != 0 {
		t.Errorf("sendFails = %d on a healthy mesh", fails)
	}
}

// TestConcurrentSameRoundBroadcast has two nodes originate the SAME round
// concurrently — an application-level round collision. Each node must
// deliver exactly once, with the excess accounted as duplicates.
func TestConcurrentSameRoundBroadcast(t *testing.T) {
	const n = 6
	sim, nodes := buildMesh(n)
	nodes[1].Broadcast(7, nil)
	nodes[2].Broadcast(7, nil)
	sim.Drain()

	var del uint64
	for _, g := range nodes {
		d, _, _, _ := g.Counters()
		del += d
	}
	if del != n {
		t.Errorf("total delivered = %d, want %d (exactly once per node)", del, n)
	}
	for nodeID, g := range nodes {
		d, _, _, _ := g.Counters()
		if d != 1 {
			t.Errorf("node %v delivered %d times", nodeID, d)
		}
	}
}

// TestBroadcastToFailedPeersAccountsSendFails floods a mesh where some
// destinations are already dead: the failures surface in sendFails, and
// reliability over the survivors stays atomic.
func TestBroadcastToFailedPeersAccountsSendFails(t *testing.T) {
	const n = 6
	sim, nodes := buildMesh(n)
	sim.Fail(3)
	sim.Fail(4)
	nodes[1].Broadcast(1, nil)
	sim.Drain()

	var del, fails uint64
	for _, nodeID := range sim.AliveIDs() {
		d, _, _, sf := nodes[nodeID].Counters()
		del += d
		fails += sf
	}
	if del != 4 {
		t.Errorf("live deliveries = %d, want 4", del)
	}
	if fails == 0 {
		t.Error("no sendFails recorded despite two dead destinations")
	}
}
