// Package metrics provides the small statistics toolkit used by the
// experiment harness: summary statistics, percentiles, histograms and CSV
// rendering of result series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual aggregate statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.Count = len(xs)
	if s.Count == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.Count)
	if s.Count > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.Count-1))
	}
	return s
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f",
		s.Count, s.Mean, s.Stddev, s.Min, s.Max)
}

// Mean returns the arithmetic mean of xs (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// WeightedPercentile returns the p-th percentile (0..100) of values under
// per-sample weights: the smallest value v such that at least p% of the
// total weight lies at or below v. It extends Percentile to populations
// where one sample stands for many end users — the workload harness weights
// each delivery by the subscribers served through the delivering node.
// Non-positive weights are ignored; an empty or weightless sample yields 0.
func WeightedPercentile(values, weights []float64, p float64) float64 {
	if len(values) == 0 || len(values) != len(weights) {
		return 0
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return 0
	}
	if p <= 0 {
		return values[idx[0]]
	}
	target := p / 100 * total
	var acc float64
	for _, i := range idx {
		if weights[i] <= 0 {
			continue
		}
		acc += weights[i]
		if acc >= target {
			return values[i]
		}
	}
	return values[idx[len(idx)-1]]
}

// RMR computes the relative message redundancy of a broadcast (Plumtree
// paper, §4.1): RMR = m/(n-1) - 1, where m is the number of payload messages
// exchanged over the network during dissemination and n is the number of
// nodes that delivered the message. Zero means exactly one payload per
// receiver (a spanning tree); flooding over an overlay of average degree d
// yields roughly d-2 (each node forwards to its d-1 links beyond the
// arrival one). The metric is meaningless for fewer than two deliveries,
// for which 0 is returned.
func RMR(payloadMsgs, nodesDelivered float64) float64 {
	if nodesDelivered <= 1 {
		return 0
	}
	return payloadMsgs/(nodesDelivered-1) - 1
}

// IntHistogram is a frequency table over integer values.
type IntHistogram map[int]int

// Add increments the count of value v.
func (h IntHistogram) Add(v int) { h[v]++ }

// Keys returns the observed values in ascending order.
func (h IntHistogram) Keys() []int {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Total returns the number of recorded observations.
func (h IntHistogram) Total() int {
	t := 0
	for _, c := range h {
		t += c
	}
	return t
}

// Mean returns the mean of the recorded observations.
func (h IntHistogram) Mean() float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h {
		sum += float64(v) * float64(c)
	}
	return sum / float64(total)
}

// String renders "value:count" pairs in ascending value order.
func (h IntHistogram) String() string {
	var b strings.Builder
	for i, k := range h.Keys() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", k, h[k])
	}
	return b.String()
}

// Table is a simple column-oriented result table rendered as aligned text or
// CSV; every experiment driver returns one.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with 4 decimal
// places.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", x)
		case float32:
			row[i] = fmt.Sprintf("%.4f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// CSV renders the table as CSV with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the table as aligned plain text with its title.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
