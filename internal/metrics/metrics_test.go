package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("Summary = %+v", s)
	}
	wantSD := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Stddev-wantSD) > 1e-9 {
		t.Errorf("Stddev = %v, want %v", s.Stddev, wantSD)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty Summary = %+v", s)
	}
	if s := Summarize([]float64{7}); s.Mean != 7 || s.Stddev != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single Summary = %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if str := s.String(); !strings.Contains(str, "n=2") || !strings.Contains(str, "mean=1.5") {
		t.Errorf("String = %q", str)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 6}); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
}

func TestRMR(t *testing.T) {
	// A perfect spanning tree: n-1 payload messages reach n nodes.
	if got := RMR(99, 100); got != 0 {
		t.Errorf("RMR(99, 100) = %v, want 0 (spanning tree)", got)
	}
	// Four payload receptions per receiver beyond the first (a flood over a
	// degree-5 overlay) is a redundancy of 3.
	if got := RMR(4*99, 100); got != 3 {
		t.Errorf("RMR(396, 100) = %v, want 3", got)
	}
	// Degenerate populations are defined as 0 rather than dividing by zero.
	if RMR(5, 1) != 0 || RMR(0, 0) != 0 {
		t.Error("RMR of <=1 deliveries must be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4} // unsorted on purpose
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {110, 5}, {12.5, 1.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestIntHistogram(t *testing.T) {
	h := IntHistogram{}
	for _, v := range []int{3, 1, 3, 2, 3} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("Keys = %v", keys)
	}
	if got := h.Mean(); math.Abs(got-2.4) > 1e-9 {
		t.Errorf("Mean = %v, want 2.4", got)
	}
	if s := h.String(); s != "1:1 2:1 3:3" {
		t.Errorf("String = %q", s)
	}
	var empty IntHistogram
	if empty.Mean() != 0 || empty.Total() != 0 {
		t.Error("empty histogram stats wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, 0.5)
	tb.AddRow("x", float32(0.25))
	text := tb.String()
	if !strings.Contains(text, "== demo ==") {
		t.Errorf("missing title: %q", text)
	}
	if !strings.Contains(text, "0.5000") || !strings.Contains(text, "0.2500") {
		t.Errorf("float formatting wrong: %q", text)
	}
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 || lines[0] != "a,b" || lines[1] != "1,0.5000" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "col", "x")
	tb.AddRow("longvalue", 1)
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	// The header cell must be padded to the row width.
	if !strings.HasPrefix(lines[1], "longvalue") || len(lines[0]) < len("longvalue") {
		t.Errorf("alignment broken:\n%s", tb.String())
	}
}

func TestWeightedPercentile(t *testing.T) {
	values := []float64{10, 20, 30}
	weights := []float64{1, 1, 98}
	// 98% of the weight sits on 30: every percentile above ~2 lands there.
	if got := WeightedPercentile(values, weights, 50); got != 30 {
		t.Errorf("p50 = %v, want 30", got)
	}
	if got := WeightedPercentile(values, weights, 1); got != 10 {
		t.Errorf("p1 = %v, want 10", got)
	}
	// Equal weights reduce to the unweighted rank semantics.
	eq := []float64{1, 1, 1, 1}
	vs := []float64{4, 1, 3, 2}
	if got := WeightedPercentile(vs, eq, 100); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := WeightedPercentile(vs, eq, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := WeightedPercentile(nil, nil, 50); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := WeightedPercentile(vs, []float64{0, 0, 0, 0}, 50); got != 0 {
		t.Errorf("weightless = %v, want 0", got)
	}
}
