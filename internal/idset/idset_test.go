package idset

import (
	"math/rand"
	"sort"
	"testing"

	"hyparview/internal/id"
)

func TestSetSortedSemantics(t *testing.T) {
	var s Set
	ids := []id.ID{5, 2, 9, 1, 7}
	for _, n := range ids {
		if !s.Add(n) {
			t.Fatalf("Add(%v) not newly inserted", n)
		}
	}
	if s.Add(5) {
		t.Fatal("duplicate Add reported as new")
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	got := s.Members()
	want := []id.ID{1, 2, 5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
		if s.At(i) != want[i] {
			t.Fatalf("At(%d) = %v, want %v", i, s.At(i), want[i])
		}
	}
	if !s.Remove(5) || s.Remove(5) || s.Contains(5) {
		t.Fatal("Remove semantics wrong")
	}
	if !s.Contains(7) {
		t.Fatal("unrelated member lost on Remove")
	}
	s.Clear()
	if s.Len() != 0 || s.Members() != nil {
		t.Fatal("Clear left members behind")
	}
}

func TestSetRetainSorted(t *testing.T) {
	var s Set
	for _, n := range []id.ID{1, 3, 5, 7, 9} {
		s.Add(n)
	}
	s.RetainSorted([]id.ID{2, 3, 4, 7, 10})
	got := s.Members()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("RetainSorted = %v, want [3 7]", got)
	}
	s.RetainSorted(nil)
	if s.Len() != 0 {
		t.Fatalf("RetainSorted(nil) left %d members", s.Len())
	}
}

func TestSetAppendToSkips(t *testing.T) {
	var s Set
	for _, n := range []id.ID{3, 1, 2} {
		s.Add(n)
	}
	scratch := make([]id.ID, 0, 4)
	out := s.AppendTo(scratch, 2)
	if len(out) != 2 || out[0] != 1 || out[1] != 3 {
		t.Fatalf("AppendTo skip=2 = %v", out)
	}
}

func TestSetAgainstMap(t *testing.T) {
	var s Set
	ref := map[id.ID]bool{}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		n := id.ID(r.Intn(64) + 1)
		if r.Intn(2) == 0 {
			if s.Add(n) == ref[n] {
				t.Fatalf("Add(%v): inserted=%v but ref present=%v", n, !ref[n], ref[n])
			}
			ref[n] = true
		} else {
			if s.Remove(n) != ref[n] {
				t.Fatalf("Remove(%v): removed but ref present=%v", n, ref[n])
			}
			delete(ref, n)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, ref %d", s.Len(), len(ref))
	}
	want := make([]id.ID, 0, len(ref))
	for n := range ref {
		want = append(want, n)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := s.AppendTo(nil, id.Nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, got, want)
		}
	}
}
