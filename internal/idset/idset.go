// Package idset provides a small sorted array-backed set of node
// identifiers.
//
// Plumtree's eager/lazy peer partitions hold at most an active view's worth
// of entries (≈5 for the paper's configurations), yet the protocol consults
// them on every delivered payload. A map[id.ID]struct{} pays hashing on every
// membership test, allocates on insert, and forces the deterministic send
// paths to extract-and-sort the keys on every push. A sorted slice gives O(n)
// worst-case operations that beat the map for n this small, iterates in the
// deterministic ascending order the simulator's traces rely on without any
// per-push allocation, and never allocates in steady state once grown.
package idset

import "hyparview/internal/id"

// Set is a sorted set of node identifiers. The zero value is an empty set
// ready for use. Not safe for concurrent use.
type Set struct {
	ids []id.ID
}

// Len returns the number of members.
func (s *Set) Len() int { return len(s.ids) }

// search returns the insertion index of n (binary search).
func (s *Set) search(n id.ID) int {
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Contains reports whether n is a member.
func (s *Set) Contains(n id.ID) bool {
	i := s.search(n)
	return i < len(s.ids) && s.ids[i] == n
}

// Add inserts n, keeping the set sorted, and reports whether it was newly
// inserted.
func (s *Set) Add(n id.ID) bool {
	i := s.search(n)
	if i < len(s.ids) && s.ids[i] == n {
		return false
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = n
	return true
}

// Remove deletes n and reports whether it was present.
func (s *Set) Remove(n id.ID) bool {
	i := s.search(n)
	if i >= len(s.ids) || s.ids[i] != n {
		return false
	}
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
	return true
}

// At returns the i-th member in ascending order.
func (s *Set) At(i int) id.ID { return s.ids[i] }

// AppendTo appends the members except skip to dst in ascending order and
// returns the extended slice; dst may be a reused scratch buffer.
func (s *Set) AppendTo(dst []id.ID, skip id.ID) []id.ID {
	for _, n := range s.ids {
		if n != skip {
			dst = append(dst, n)
		}
	}
	return dst
}

// Members returns a freshly allocated copy of the membership in ascending
// order, or nil when empty.
func (s *Set) Members() []id.ID {
	if len(s.ids) == 0 {
		return nil
	}
	return s.AppendTo(make([]id.ID, 0, len(s.ids)), id.Nil)
}

// RetainSorted keeps only the members that appear in sorted, which must be
// in ascending order. Both sequences are sorted, so this is one merge pass
// with no allocation.
func (s *Set) RetainSorted(sorted []id.ID) {
	out := s.ids[:0]
	j := 0
	for _, n := range s.ids {
		for j < len(sorted) && sorted[j] < n {
			j++
		}
		if j < len(sorted) && sorted[j] == n {
			out = append(out, n)
		}
	}
	s.ids = out
}

// Clear removes all members, keeping the backing array for reuse.
func (s *Set) Clear() { s.ids = s.ids[:0] }
