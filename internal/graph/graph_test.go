package graph

import (
	"math"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/rng"
)

// adjacency builds a neighbor function from a literal map.
func adjacency(m map[id.ID][]id.ID) func(id.ID) []id.ID {
	return func(n id.ID) []id.ID { return m[n] }
}

func idsUpTo(n int) []id.ID {
	out := make([]id.ID, n)
	for i := range out {
		out[i] = id.ID(i + 1)
	}
	return out
}

func TestBuildDropsEdgesOutsidePopulation(t *testing.T) {
	adj := map[id.ID][]id.ID{
		1: {2, 99}, // 99 not in population (e.g. failed)
		2: {1, 1},  // duplicate edges are kept as sent (views can't dup, but be safe)
	}
	s := Build([]id.ID{1, 2}, adjacency(adj))
	if s.Order() != 2 {
		t.Fatalf("Order = %d", s.Order())
	}
	deg := s.OutDegrees()
	if deg[0] != 1 {
		t.Errorf("node 1 out-degree = %d, want 1 (edge to 99 dropped)", deg[0])
	}
}

func TestBuildDropsSelfLoops(t *testing.T) {
	s := Build([]id.ID{1}, adjacency(map[id.ID][]id.ID{1: {1}}))
	if s.OutDegrees()[0] != 0 {
		t.Error("self loop kept")
	}
}

func TestInDegrees(t *testing.T) {
	// Star: 2,3,4 all point at 1.
	adj := map[id.ID][]id.ID{2: {1}, 3: {1}, 4: {1}}
	s := Build(idsUpTo(4), adjacency(adj))
	in := s.InDegrees()
	if in[0] != 3 || in[1] != 0 {
		t.Errorf("InDegrees = %v", in)
	}
	dist := s.InDegreeDistribution()
	if dist[3] != 1 || dist[0] != 3 {
		t.Errorf("distribution = %v", dist)
	}
}

func TestClusteringCoefficientTriangle(t *testing.T) {
	adj := map[id.ID][]id.ID{1: {2, 3}, 2: {3}} // undirected triangle
	s := Build(idsUpTo(3), adjacency(adj))
	if cc := s.ClusteringCoefficient(); math.Abs(cc-1.0) > 1e-9 {
		t.Errorf("triangle clustering = %v, want 1", cc)
	}
}

func TestClusteringCoefficientStar(t *testing.T) {
	adj := map[id.ID][]id.ID{1: {2, 3, 4}}
	s := Build(idsUpTo(4), adjacency(adj))
	if cc := s.ClusteringCoefficient(); cc != 0 {
		t.Errorf("star clustering = %v, want 0", cc)
	}
}

func TestClusteringCoefficientPartial(t *testing.T) {
	// Node 1 has neighbors 2,3,4 with exactly one edge among them (2-3):
	// c(1) = 1/3. Nodes 2,3 each see neighbors {1, each other} with the
	// 1-2/1-3 edges closing their triangles: c=1. Node 4 has degree 1: 0.
	adj := map[id.ID][]id.ID{1: {2, 3, 4}, 2: {3}}
	s := Build(idsUpTo(4), adjacency(adj))
	want := (1.0/3 + 1 + 1 + 0) / 4
	if cc := s.ClusteringCoefficient(); math.Abs(cc-want) > 1e-9 {
		t.Errorf("clustering = %v, want %v", cc, want)
	}
}

func TestAvgShortestPathLine(t *testing.T) {
	// 1-2-3-4: pairs (1,2)=1 (1,3)=2 (1,4)=3 (2,3)=1 (2,4)=2 (3,4)=1,
	// mean = 10/6.
	adj := map[id.ID][]id.ID{1: {2}, 2: {3}, 3: {4}}
	s := Build(idsUpTo(4), adjacency(adj))
	want := 10.0 / 6
	if asp := s.AvgShortestPath(rng.New(1), 0); math.Abs(asp-want) > 1e-9 {
		t.Errorf("ASP = %v, want %v", asp, want)
	}
}

func TestAvgShortestPathSampledClose(t *testing.T) {
	// Ring of 60 nodes: exact ASP is n/4 ≈ 15.25 for even n (per source:
	// mean of 1..30 with 30 counted once).
	n := 60
	adj := make(map[id.ID][]id.ID, n)
	for i := 1; i <= n; i++ {
		next := id.ID(i%n + 1)
		adj[id.ID(i)] = []id.ID{next}
	}
	s := Build(idsUpTo(n), adjacency(adj))
	exact := s.AvgShortestPath(rng.New(1), 0)
	sampled := s.AvgShortestPath(rng.New(2), 10)
	if math.Abs(exact-sampled) > 1e-9 {
		// On a vertex-transitive graph every source gives the same mean.
		t.Errorf("sampled ASP %v deviates from exact %v", sampled, exact)
	}
}

func TestConnectedComponents(t *testing.T) {
	adj := map[id.ID][]id.ID{1: {2}, 3: {4}, 4: {5}}
	s := Build(idsUpTo(6), adjacency(adj))
	cc := s.ConnectedComponents()
	if len(cc) != 3 || cc[0] != 3 || cc[1] != 2 || cc[2] != 1 {
		t.Errorf("components = %v, want [3 2 1]", cc)
	}
	if s.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if f := s.LargestComponentFraction(); math.Abs(f-0.5) > 1e-9 {
		t.Errorf("largest fraction = %v, want 0.5", f)
	}
}

func TestIsConnectedSingleComponent(t *testing.T) {
	adj := map[id.ID][]id.ID{1: {2}, 2: {3}}
	s := Build(idsUpTo(3), adjacency(adj))
	if !s.IsConnected() {
		t.Error("connected graph reported disconnected")
	}
}

func TestSymmetryFraction(t *testing.T) {
	sym := Build(idsUpTo(2), adjacency(map[id.ID][]id.ID{1: {2}, 2: {1}}))
	if f := sym.SymmetryFraction(); f != 1 {
		t.Errorf("symmetric graph fraction = %v, want 1", f)
	}
	asym := Build(idsUpTo(3), adjacency(map[id.ID][]id.ID{1: {2}, 2: {1, 3}}))
	if f := asym.SymmetryFraction(); math.Abs(f-2.0/3) > 1e-9 {
		t.Errorf("fraction = %v, want 2/3", f)
	}
	empty := Build(idsUpTo(2), adjacency(map[id.ID][]id.ID{}))
	if f := empty.SymmetryFraction(); f != 1 {
		t.Errorf("empty graph fraction = %v, want 1 (vacuous)", f)
	}
}

func TestAccuracy(t *testing.T) {
	views := map[id.ID][]id.ID{
		1: {2, 3},    // both live -> 1.0
		2: {3, 4, 5}, // 4,5 dead -> 1/3
		3: {},        // empty views don't count
	}
	live := []id.ID{1, 2, 3}
	alive := func(n id.ID) bool { return n <= 3 }
	got := Accuracy(live, adjacency(views), alive)
	want := (1.0 + 1.0/3) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Accuracy = %v, want %v", got, want)
	}
}

func TestAccuracyEmptyPopulation(t *testing.T) {
	if got := Accuracy(nil, adjacency(nil), func(id.ID) bool { return true }); got != 0 {
		t.Errorf("Accuracy(empty) = %v, want 0", got)
	}
}

func TestIDsReturnsCopy(t *testing.T) {
	s := Build(idsUpTo(2), adjacency(nil))
	ids := s.IDs()
	ids[0] = 99
	if s.IDs()[0] == 99 {
		t.Error("IDs() exposed internal storage")
	}
}
