// Package graph computes the overlay-graph properties the paper's
// evaluation reports (§2.3, §5.4): degree distributions, clustering
// coefficient, average shortest path, connectivity and accuracy.
//
// An overlay is captured as a directed adjacency snapshot: for every node,
// the identifiers in its partial/active view. Metrics that the literature
// defines on undirected graphs (clustering, shortest paths) operate on the
// underlying undirected graph, i.e. the union of the two edge directions.
package graph

import (
	"sort"

	"hyparview/internal/id"
	"hyparview/internal/rng"
)

// Snapshot is a directed adjacency capture of an overlay restricted to a
// node population (usually the live nodes).
type Snapshot struct {
	ids   []id.ID
	index map[id.ID]int
	out   [][]int32 // out[i] = indices of i's out-neighbors within ids
}

// Build creates a snapshot from the node set nodes and the adjacency
// function neighbors (typically Membership.Neighbors). Out-edges pointing
// outside the population (e.g. at failed nodes) are dropped; use Accuracy to
// measure them instead.
func Build(nodes []id.ID, neighbors func(id.ID) []id.ID) *Snapshot {
	s := &Snapshot{
		ids:   make([]id.ID, len(nodes)),
		index: make(map[id.ID]int, len(nodes)),
		out:   make([][]int32, len(nodes)),
	}
	copy(s.ids, nodes)
	for i, n := range s.ids {
		s.index[n] = i
	}
	for i, n := range s.ids {
		for _, nb := range neighbors(n) {
			if j, ok := s.index[nb]; ok && j != i {
				s.out[i] = append(s.out[i], int32(j))
			}
		}
	}
	return s
}

// Order returns the number of nodes in the snapshot.
func (s *Snapshot) Order() int { return len(s.ids) }

// OutDegrees returns each node's out-degree, indexed like IDs().
func (s *Snapshot) OutDegrees() []int {
	out := make([]int, len(s.out))
	for i := range s.out {
		out[i] = len(s.out[i])
	}
	return out
}

// InDegrees returns each node's in-degree: the number of population members
// holding it in their view (paper §2.3, the reachability measure of Fig. 5).
func (s *Snapshot) InDegrees() []int {
	in := make([]int, len(s.ids))
	for i := range s.out {
		for _, j := range s.out[i] {
			in[j]++
		}
	}
	return in
}

// InDegreeDistribution returns a map from in-degree value to the number of
// nodes with that in-degree (the paper's Fig. 5 histogram).
func (s *Snapshot) InDegreeDistribution() map[int]int {
	dist := make(map[int]int)
	for _, d := range s.InDegrees() {
		dist[d]++
	}
	return dist
}

// IDs returns the snapshot's node population.
func (s *Snapshot) IDs() []id.ID {
	out := make([]id.ID, len(s.ids))
	copy(out, s.ids)
	return out
}

// undirected returns the undirected adjacency (union of edge directions,
// deduplicated).
func (s *Snapshot) undirected() [][]int32 {
	adj := make([][]int32, len(s.ids))
	for i := range s.out {
		adj[i] = append(adj[i], s.out[i]...)
	}
	for i := range s.out {
		for _, j := range s.out[i] {
			adj[j] = append(adj[j], int32(i))
		}
	}
	for i := range adj {
		adj[i] = dedupe(adj[i])
	}
	return adj
}

func dedupe(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// ClusteringCoefficient returns the graph's average clustering coefficient
// on the undirected overlay: for each node, the number of edges among its
// neighbors divided by the maximum possible, averaged over all nodes
// (paper §2.3; nodes of degree < 2 contribute 0).
func (s *Snapshot) ClusteringCoefficient() float64 {
	adj := s.undirected()
	sets := make([]map[int32]struct{}, len(adj))
	for i, nb := range adj {
		sets[i] = make(map[int32]struct{}, len(nb))
		for _, j := range nb {
			sets[i][j] = struct{}{}
		}
	}
	var total float64
	for _, nb := range adj {
		k := len(nb)
		if k < 2 {
			continue
		}
		links := 0
		for a := 0; a < len(nb); a++ {
			for b := a + 1; b < len(nb); b++ {
				if _, ok := sets[nb[a]][nb[b]]; ok {
					links++
				}
			}
		}
		total += float64(2*links) / float64(k*(k-1))
	}
	if len(adj) == 0 {
		return 0
	}
	return total / float64(len(adj))
}

// AvgShortestPath estimates the average shortest path length on the
// undirected overlay by running BFS from up to samples random sources
// (samples <= 0 means every node, i.e. the exact value). Unreachable pairs
// are excluded; use ConnectedComponents to detect them.
func (s *Snapshot) AvgShortestPath(r *rng.Rand, samples int) float64 {
	n := len(s.ids)
	if n < 2 {
		return 0
	}
	adj := s.undirected()
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	if samples > 0 && samples < n {
		r.Shuffle(n, func(i, j int) { sources[i], sources[j] = sources[j], sources[i] })
		sources = sources[:samples]
	}
	var sum, count float64
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	for _, src := range sources {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for i, d := range dist {
			if i != src && d > 0 {
				sum += float64(d)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / count
}

// ConnectedComponents returns the sizes of the undirected overlay's
// connected components in descending order.
func (s *Snapshot) ConnectedComponents() []int {
	n := len(s.ids)
	adj := s.undirected()
	seen := make([]bool, n)
	var sizes []int
	queue := make([]int32, 0, n)
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		seen[start] = true
		queue = append(queue[:0], int32(start))
		size := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			size++
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// LargestComponentFraction returns the fraction of nodes in the largest
// undirected connected component (1.0 means the overlay is connected).
func (s *Snapshot) LargestComponentFraction() float64 {
	if len(s.ids) == 0 {
		return 0
	}
	cc := s.ConnectedComponents()
	return float64(cc[0]) / float64(len(s.ids))
}

// IsConnected reports whether the undirected overlay is a single component.
func (s *Snapshot) IsConnected() bool {
	return len(s.ids) == 0 || len(s.ConnectedComponents()) == 1
}

// SymmetryFraction returns the fraction of directed edges whose reverse edge
// also exists. HyParView's active-view overlay should be fully symmetric
// (1.0) in quiescent states (§4.1).
func (s *Snapshot) SymmetryFraction() float64 {
	edges := make(map[[2]int32]struct{})
	total := 0
	for i := range s.out {
		for _, j := range s.out[i] {
			edges[[2]int32{int32(i), j}] = struct{}{}
			total++
		}
	}
	if total == 0 {
		return 1
	}
	sym := 0
	for e := range edges {
		if _, ok := edges[[2]int32{e[1], e[0]}]; ok {
			sym++
		}
	}
	return float64(sym) / float64(total)
}

// Accuracy computes the paper's accuracy metric (§2.3) for a population:
// for each live node, the fraction of its view entries that point at live
// nodes, averaged over live nodes. It needs the raw (unfiltered) view
// function and the liveness predicate, so it is a free function rather than
// a Snapshot method.
func Accuracy(live []id.ID, neighbors func(id.ID) []id.ID, alive func(id.ID) bool) float64 {
	var sum float64
	counted := 0
	for _, n := range live {
		nb := neighbors(n)
		if len(nb) == 0 {
			continue
		}
		ok := 0
		for _, m := range nb {
			if alive(m) {
				ok++
			}
		}
		sum += float64(ok) / float64(len(nb))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}
