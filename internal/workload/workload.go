// Package workload generates seeded, deterministic topic pub/sub workloads
// for the experiment harness: a Zipfian topic popularity distribution, a
// subscription assignment that models a configurable end-user population
// behind the overlay nodes, and a publish schedule.
//
// The generator is pure data — it knows nothing about the simulator or the
// transport. The harness maps its subscription assignment onto
// pubsub.Router.Subscribe calls and replays its publish events through
// Publish, in the simulator against virtual time or on sockets against the
// real clock.
//
// # Population model
//
// The "millions of users" of the ROADMAP are not simulated as nodes: an
// overlay node is a broker/edge server, and each (node, topic) subscription
// carries a weight — the number of end-users served through that node for
// that topic. Topic popularity is Zipfian with exponent Config.Exponent
// (s ≈ 1.0 reproduces the classic topic-popularity skew measured in pub/sub
// traces), applied twice: to the subscriber population (hot topics are
// subscribed on more nodes, and by more users per node) and to the publish
// schedule (hot topics receive proportionally more messages). End-user SLO
// percentiles weight each delivery sample by the users behind it, so one
// delivery on a hot edge counts for the thousands of users it serves.
// Publishes originate from a small fixed producer set per topic
// (Config.Producers) — feeds live on specific nodes — so hot topics
// concentrate high per-node publish rates, the regime publish-side batching
// amortizes.
//
// # Determinism
//
// Everything derives from Config.Seed through internal/rng streams split per
// concern, so the same configuration yields byte-identical subscription
// tables and publish traces (TraceBytes pins this), independent of map
// iteration or wall time.
package workload

import (
	"encoding/binary"
	"math"
	"sort"

	"hyparview/internal/rng"
)

// Config parameterizes a workload. Zero fields take the defaults documented
// per field.
type Config struct {
	// Seed is the root of every random stream in the workload.
	Seed uint64

	// Nodes is the overlay population the subscriptions map onto. Required.
	Nodes int

	// Topics is the topic-space size (default 100). Topic identifiers are
	// 1..Topics, rank-ordered by popularity: topic 1 is the hottest.
	Topics int

	// Exponent is the Zipf exponent s (default 1.0): topic k's popularity
	// share is proportional to 1/k^s.
	Exponent float64

	// Subscribers is the modeled end-user population (default 1e6). It is
	// distributed over topics by popularity and over each topic's
	// subscriber nodes evenly, becoming the per-delivery SLO weights.
	Subscribers uint64

	// SubscriberFraction is the fraction of nodes subscribing to the
	// hottest topic (default 0.5); colder topics scale down with their
	// popularity share, floored at MinSubscribers nodes.
	SubscriberFraction float64

	// MinSubscribers floors the subscriber-node count of every topic
	// (default 3), so the coldest tail still has someone to deliver to.
	MinSubscribers int

	// PayloadBytes is the application payload size of every published
	// message (default 64). The harness prepends its own timestamp header.
	PayloadBytes int

	// Producers is the number of publisher nodes per topic (default 3,
	// clamped to Nodes). Each topic's publishes come from its own small
	// fixed producer set — application feeds live on specific nodes — so a
	// hot topic concentrates a high publish rate on few nodes, the regime
	// publish-side batching targets.
	Producers int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Topics <= 0 {
		c.Topics = 100
	}
	if c.Exponent == 0 {
		c.Exponent = 1.0
	}
	if c.Subscribers == 0 {
		c.Subscribers = 1_000_000
	}
	if c.SubscriberFraction == 0 {
		c.SubscriberFraction = 0.5
	}
	if c.MinSubscribers <= 0 {
		c.MinSubscribers = 3
	}
	if c.PayloadBytes <= 0 {
		c.PayloadBytes = 64
	}
	if c.Producers <= 0 {
		c.Producers = 3
	}
	if c.Producers > c.Nodes && c.Nodes > 0 {
		c.Producers = c.Nodes
	}
	return c
}

// Event is one publish in the schedule: node publishes the next message on
// topic.
type Event struct {
	Node  int
	Topic uint32
}

// Workload is a fully materialized workload: popularity distribution,
// subscription assignment, and a publish-schedule stream.
type Workload struct {
	cfg Config

	cdf    []float64 // cdf[k] = P(topic rank <= k+1)
	shares []float64 // per-topic popularity share, rank order

	// subs[n] is node n's sorted topic list; weights[t-1] is the end-user
	// count each subscriber of topic t serves.
	subs    [][]uint32
	weights []float64
	nsubs   []int // subscriber-node count per topic, rank order

	// prods[t-1] is topic t's fixed producer-node set.
	prods [][]int

	sched *rng.Rand // publish-schedule stream
}

// New materializes a workload from cfg.
func New(cfg Config) *Workload {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		panic("workload: Config.Nodes is required")
	}
	w := &Workload{cfg: cfg}
	w.buildDistribution()
	root := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	w.buildSubscriptions(root.Split())
	w.buildProducers(root.Split())
	w.sched = root.Split()
	return w
}

// buildDistribution precomputes the Zipf shares and CDF over topic ranks.
func (w *Workload) buildDistribution() {
	k := w.cfg.Topics
	w.shares = make([]float64, k)
	total := 0.0
	for i := 0; i < k; i++ {
		s := 1.0 / math.Pow(float64(i+1), w.cfg.Exponent)
		w.shares[i] = s
		total += s
	}
	w.cdf = make([]float64, k)
	acc := 0.0
	for i := 0; i < k; i++ {
		w.shares[i] /= total
		acc += w.shares[i]
		w.cdf[i] = acc
	}
	w.cdf[k-1] = 1.0 // close the tail against FP drift
}

// buildSubscriptions assigns each topic its subscriber nodes and weights.
func (w *Workload) buildSubscriptions(r *rng.Rand) {
	cfg := w.cfg
	w.subs = make([][]uint32, cfg.Nodes)
	w.weights = make([]float64, cfg.Topics)
	w.nsubs = make([]int, cfg.Topics)
	perm := make([]int, cfg.Nodes)
	for t := 0; t < cfg.Topics; t++ {
		// Subscriber-node count scales with popularity relative to rank 1.
		frac := cfg.SubscriberFraction * w.shares[t] / w.shares[0]
		count := int(math.Round(frac * float64(cfg.Nodes)))
		if count < cfg.MinSubscribers {
			count = cfg.MinSubscribers
		}
		if count > cfg.Nodes {
			count = cfg.Nodes
		}
		// Deterministic partial Fisher–Yates: the first count entries of a
		// fresh permutation are this topic's subscriber nodes.
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < count; i++ {
			j := i + r.Intn(cfg.Nodes-i)
			perm[i], perm[j] = perm[j], perm[i]
			w.subs[perm[i]] = append(w.subs[perm[i]], uint32(t+1))
		}
		w.nsubs[t] = count
		w.weights[t] = float64(cfg.Subscribers) * w.shares[t] / float64(count)
	}
	for _, ts := range w.subs {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
}

// buildProducers picks each topic's fixed producer-node set: the first
// Producers entries of a fresh deterministic permutation per topic.
func (w *Workload) buildProducers(r *rng.Rand) {
	cfg := w.cfg
	w.prods = make([][]int, cfg.Topics)
	perm := make([]int, cfg.Nodes)
	for t := 0; t < cfg.Topics; t++ {
		for i := range perm {
			perm[i] = i
		}
		set := make([]int, cfg.Producers)
		for i := 0; i < cfg.Producers; i++ {
			j := i + r.Intn(cfg.Nodes-i)
			perm[i], perm[j] = perm[j], perm[i]
			set[i] = perm[i]
		}
		w.prods[t] = set
	}
}

// Producers returns topic's fixed producer-node set. The slice is owned by
// the workload; callers must not mutate it.
func (w *Workload) Producers(topic uint32) []int { return w.prods[topic-1] }

// Subscriptions returns node n's topic list, sorted ascending. The slice is
// owned by the workload; callers must not mutate it.
func (w *Workload) Subscriptions(n int) []uint32 { return w.subs[n] }

// SubscriberNodes returns how many nodes subscribe to topic.
func (w *Workload) SubscriberNodes(topic uint32) int { return w.nsubs[topic-1] }

// Weight returns the end-user count behind each subscribing node of topic —
// the SLO weight of one delivery on that topic.
func (w *Workload) Weight(topic uint32) float64 { return w.weights[topic-1] }

// Share returns topic's popularity share (sums to 1 over the topic space).
func (w *Workload) Share(topic uint32) float64 { return w.shares[topic-1] }

// PayloadBytes returns the configured application payload size.
func (w *Workload) PayloadBytes() int { return w.cfg.PayloadBytes }

// Topics returns the topic-space size; identifiers are 1..Topics.
func (w *Workload) Topics() int { return w.cfg.Topics }

// SampleTopic draws one topic from the Zipfian popularity distribution using
// the workload's schedule stream: binary search over the precomputed CDF.
func (w *Workload) sampleTopic() uint32 {
	u := w.sched.Float64()
	lo, hi := 0, len(w.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo + 1)
}

// Next draws the next publish event: a Zipf-popular topic published by one
// of the topic's fixed producer nodes, drawn uniformly within the set.
// Successive calls advance the deterministic schedule.
func (w *Workload) Next() Event {
	topic := w.sampleTopic()
	set := w.prods[topic-1]
	return Event{
		Node:  set[w.sched.Intn(len(set))],
		Topic: topic,
	}
}

// Events materializes the next n publish events of the schedule.
func (w *Workload) Events(n int) []Event {
	out := make([]Event, n)
	for i := range out {
		out[i] = w.Next()
	}
	return out
}

// TraceBytes serializes a schedule prefix plus the full subscription
// assignment into a canonical byte string. Two workloads with the same
// configuration produce identical bytes — the determinism pin the repository
// maintains for every seeded component (same seed ⇒ byte-identical traces).
func TraceBytes(cfg Config, events int) []byte {
	w := New(cfg)
	var buf []byte
	buf = binary.BigEndian.AppendUint64(buf, cfg.Seed)
	for n := 0; n < w.cfg.Nodes; n++ {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(w.subs[n])))
		for _, t := range w.subs[n] {
			buf = binary.BigEndian.AppendUint32(buf, t)
		}
	}
	for t := 0; t < w.cfg.Topics; t++ {
		for _, n := range w.prods[t] {
			buf = binary.BigEndian.AppendUint64(buf, uint64(n))
		}
	}
	for i := 0; i < events; i++ {
		ev := w.Next()
		buf = binary.BigEndian.AppendUint64(buf, uint64(ev.Node))
		buf = binary.BigEndian.AppendUint32(buf, ev.Topic)
	}
	return buf
}
