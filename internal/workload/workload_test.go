package workload

import (
	"bytes"
	"math"
	"testing"
)

func testConfig() Config {
	return Config{Seed: 7, Nodes: 200, Topics: 50, Exponent: 1.0, Subscribers: 1_000_000}
}

// TestDeterminismPin is the repository-wide contract applied to the load
// generator: the same seed yields byte-identical subscription tables and
// publish traces.
func TestDeterminismPin(t *testing.T) {
	a := TraceBytes(testConfig(), 5000)
	b := TraceBytes(testConfig(), 5000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different workload traces")
	}
	cfg := testConfig()
	cfg.Seed = 8
	if bytes.Equal(a, TraceBytes(cfg, 5000)) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestZipfSharesAreNormalizedAndRankOrdered(t *testing.T) {
	w := New(testConfig())
	sum := 0.0
	prev := math.Inf(1)
	for k := 1; k <= w.Topics(); k++ {
		s := w.Share(uint32(k))
		if s <= 0 || s > prev {
			t.Fatalf("share(%d) = %g, want positive and non-increasing (prev %g)", k, s, prev)
		}
		prev = s
		sum += s
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
	// s=1.0 over 50 topics: rank 1 holds 1/H(50) ≈ 22% of the traffic.
	if hot := w.Share(1); hot < 0.15 || hot > 0.30 {
		t.Fatalf("hot-topic share = %g, outside the Zipf(1.0) envelope", hot)
	}
}

func TestScheduleFollowsPopularity(t *testing.T) {
	w := New(testConfig())
	counts := make([]int, w.Topics()+1)
	const n = 200_000
	producers := make(map[uint32]map[int]bool)
	for i := 0; i < n; i++ {
		ev := w.Next()
		if ev.Node < 0 || ev.Node >= 200 {
			t.Fatalf("publisher node %d out of range", ev.Node)
		}
		if producers[ev.Topic] == nil {
			producers[ev.Topic] = make(map[int]bool)
		}
		producers[ev.Topic][ev.Node] = true
		if ev.Topic < 1 || ev.Topic > uint32(w.Topics()) {
			t.Fatalf("topic %d out of range", ev.Topic)
		}
		counts[ev.Topic]++
	}
	for _, k := range []uint32{1, 2, 10, 50} {
		got := float64(counts[k]) / n
		want := w.Share(k)
		if math.Abs(got-want) > 0.01+want*0.15 {
			t.Errorf("topic %d frequency %g, want ≈ %g", k, got, want)
		}
	}
	// Every topic publishes only from its fixed producer set (default 3).
	for topic, nodes := range producers {
		set := map[int]bool{}
		for _, p := range w.Producers(topic) {
			set[p] = true
		}
		if len(set) != 3 {
			t.Fatalf("topic %d has %d producers, want 3", topic, len(set))
		}
		for node := range nodes {
			if !set[node] {
				t.Errorf("topic %d published from %d, outside its producer set", topic, node)
			}
		}
	}
}

func TestSubscriptionAssignment(t *testing.T) {
	cfg := testConfig()
	w := New(cfg)
	seen := make([]int, w.Topics()+1)
	for n := 0; n < cfg.Nodes; n++ {
		ts := w.Subscriptions(n)
		for i, tp := range ts {
			if i > 0 && ts[i-1] >= tp {
				t.Fatalf("node %d topics not sorted/unique: %v", n, ts)
			}
			seen[tp]++
		}
	}
	users := 0.0
	for k := 1; k <= w.Topics(); k++ {
		tp := uint32(k)
		if seen[k] != w.SubscriberNodes(tp) {
			t.Fatalf("topic %d: assignment says %d nodes, accessor says %d", k, seen[k], w.SubscriberNodes(tp))
		}
		if seen[k] < 3 {
			t.Fatalf("topic %d has %d subscriber nodes, floor is 3", k, seen[k])
		}
		if w.Weight(tp) <= 0 {
			t.Fatalf("topic %d weight %g", k, w.Weight(tp))
		}
		users += w.Weight(tp) * float64(seen[k])
	}
	// The weights reconstruct the modeled end-user population.
	if math.Abs(users-1_000_000) > 1 {
		t.Fatalf("weighted population %g, want 1e6", users)
	}
	// The hottest topic reaches about SubscriberFraction of the overlay.
	if hot := w.SubscriberNodes(1); hot < 80 || hot > 120 {
		t.Fatalf("hot topic on %d/200 nodes, want ≈ 100", hot)
	}
}
