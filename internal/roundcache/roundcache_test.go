package roundcache

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(100) // rounds up to 128
	if s.Contains(7) {
		t.Fatal("empty set contains 7")
	}
	if !s.Add(7) || s.Add(7) {
		t.Fatal("Add(7) newly-inserted semantics wrong")
	}
	if !s.Contains(7) || s.Len() != 1 {
		t.Fatalf("after Add(7): contains=%v len=%d", s.Contains(7), s.Len())
	}
	if !s.Remove(7) || s.Remove(7) || s.Contains(7) || s.Len() != 0 {
		t.Fatal("Remove(7) semantics wrong")
	}
}

func TestSetFIFOEviction(t *testing.T) {
	s := NewSet(4)
	for r := uint64(1); r <= 4; r++ {
		s.Add(r)
	}
	s.Add(5) // evicts 1, the oldest
	if s.Contains(1) {
		t.Fatal("oldest round not evicted")
	}
	for r := uint64(2); r <= 5; r++ {
		if !s.Contains(r) {
			t.Fatalf("round %d missing after eviction of 1", r)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

func TestSetRandomRounds(t *testing.T) {
	// The TCP agents draw round identifiers from a 64-bit random stream;
	// the cache must deduplicate the most recent capacity rounds exactly,
	// with no birthday-collision evictions (the failure mode of a
	// direct-mapped window).
	s := NewSet(64)
	r := rand.New(rand.NewSource(7))
	var recent []uint64
	for i := 0; i < 10_000; i++ {
		round := r.Uint64()
		if !s.Add(round) {
			t.Fatalf("fresh random round %d reported as duplicate", round)
		}
		if s.Add(round) {
			t.Fatal("immediate duplicate not detected")
		}
		recent = append(recent, round)
		if len(recent) > 64 {
			recent = recent[1:]
		}
		for _, rr := range recent {
			if !s.Contains(rr) {
				t.Fatalf("round %d (within the last %d) evicted early", rr, len(recent))
			}
		}
	}
}

func TestSetResetInPlace(t *testing.T) {
	s := NewSet(16)
	for r := uint64(0); r < 16; r++ {
		s.Add(r)
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	for r := uint64(0); r < 16; r++ {
		if s.Contains(r) {
			t.Fatalf("round %d survived Reset", r)
		}
	}
	// The table must be fully usable after an in-place reset.
	for r := uint64(100); r < 116; r++ {
		if !s.Add(r) {
			t.Fatalf("Add(%d) after Reset failed", r)
		}
	}
	if s.Len() != 16 {
		t.Fatalf("Len after refill = %d", s.Len())
	}
}

func TestSetZeroRound(t *testing.T) {
	s := NewSet(8)
	if s.Contains(0) {
		t.Fatal("empty set contains round 0")
	}
	s.Add(0)
	if !s.Contains(0) {
		t.Fatal("round 0 not stored")
	}
}

// TestSetAgainstModel drives the set with random adds/removes and checks
// every answer against a reference map + FIFO list.
func TestSetAgainstModel(t *testing.T) {
	const capacity = 16
	s := NewSet(capacity)
	present := map[uint64]bool{}
	var order []uint64 // insertion order of live entries (ghosts removed)
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 50_000; i++ {
		round := uint64(r.Intn(64)) // small space: plenty of collisions
		switch r.Intn(3) {
		case 0, 1:
			added := s.Add(round)
			if added == present[round] {
				t.Fatalf("step %d: Add(%d)=%v but model present=%v", i, round, added, present[round])
			}
			if added {
				// Model the FIFO ring: a new insertion evicts the entry
				// capacity insertions ago. Ghost entries (removed rounds)
				// still occupy ring slots, so replay the same rule: track
				// all insertions, evict the one falling off the window if
				// still present.
				order = append(order, round)
				present[round] = true
				if len(order) > capacity {
					victim := order[0]
					order = order[1:]
					if victim != round {
						delete(present, victim)
					}
				}
			}
		case 2:
			removed := s.Remove(round)
			if removed != present[round] {
				t.Fatalf("step %d: Remove(%d)=%v but model present=%v", i, round, removed, present[round])
			}
			delete(present, round)
			// The ring keeps its ghost; the model's order list keeps it too
			// so window accounting matches. Mark it dead by leaving present
			// unset — the eviction replay above skips dead victims via the
			// present check in Contains comparisons below.
		}
		for rr := uint64(0); rr < 64; rr++ {
			if s.Contains(rr) != present[rr] {
				t.Fatalf("step %d: Contains(%d)=%v, model %v", i, rr, s.Contains(rr), present[rr])
			}
		}
		if s.Len() != len(present) {
			t.Fatalf("step %d: Len=%d, model %d", i, s.Len(), len(present))
		}
	}
}

func TestCacheReusesEntries(t *testing.T) {
	type val struct{ xs []int }
	c := New[val](4)
	v, existed := c.Put(1)
	if existed {
		t.Fatal("fresh Put reports existed")
	}
	v.xs = append(v.xs[:0], 1, 2, 3)

	if got := c.Get(1); got == nil || len(got.xs) != 3 {
		t.Fatalf("Get(1) = %+v", got)
	}
	c.Remove(1)
	if c.Get(1) != nil {
		t.Fatal("removed round still readable")
	}
	// After cycling far past capacity, total backing capacity is recycled:
	// the cache allocates nothing in steady state (pinned precisely by the
	// AllocsPerRun tests in the protocol packages; here we assert the
	// values keep non-trivial capacity to recycle).
	recycled := 0
	for r := uint64(10); r < 200; r++ {
		v, _ := c.Put(r)
		if cap(v.xs) > 0 {
			recycled++
		}
		v.xs = append(v.xs[:0], int(r))
	}
	if recycled == 0 {
		t.Fatal("no value slot was ever recycled with its backing array")
	}
}

func TestCacheFIFOEvictionAndReset(t *testing.T) {
	c := New[int](4)
	for r := uint64(0); r < 6; r++ {
		v, _ := c.Put(r)
		*v = int(r)
	}
	// Rounds 0 and 1 fell off the 4-entry window.
	if c.Get(0) != nil || c.Get(1) != nil {
		t.Fatal("evicted rounds still present")
	}
	for r := uint64(2); r < 6; r++ {
		if v := c.Get(r); v == nil || *v != int(r) {
			t.Fatalf("Get(%d) = %v", r, v)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	c.Reset()
	if c.Len() != 0 || c.Get(3) != nil {
		t.Fatal("Reset did not clear keys")
	}
}

// TestCacheAgainstModel mirrors TestSetAgainstModel for the value cache,
// additionally checking stored values survive the backward-shift moves.
func TestCacheAgainstModel(t *testing.T) {
	const capacity = 8
	c := New[uint64](capacity)
	present := map[uint64]uint64{}
	var order []uint64
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50_000; i++ {
		round := uint64(r.Intn(48))
		switch r.Intn(3) {
		case 0, 1:
			_, existedModel := present[round]
			v, existed := c.Put(round)
			if existed != existedModel {
				t.Fatalf("step %d: Put(%d) existed=%v, model %v", i, round, existed, existedModel)
			}
			*v = round * 1000
			if !existed {
				order = append(order, round)
				present[round] = round * 1000
				if len(order) > capacity {
					victim := order[0]
					order = order[1:]
					if victim != round {
						delete(present, victim)
					}
				}
			}
		case 2:
			_, existedModel := present[round]
			if c.Remove(round) != existedModel {
				t.Fatalf("step %d: Remove(%d) mismatch", i, round)
			}
			delete(present, round)
		}
		for rr := uint64(0); rr < 48; rr++ {
			v := c.Get(rr)
			want, ok := present[rr]
			if (v != nil) != ok {
				t.Fatalf("step %d: Get(%d) presence=%v, model %v", i, rr, v != nil, ok)
			}
			if v != nil && *v != want {
				t.Fatalf("step %d: Get(%d)=%d, model %d (value lost in a shift?)", i, rr, *v, want)
			}
		}
	}
}

func TestCacheForEach(t *testing.T) {
	c := New[string](8)
	for _, r := range []uint64{3, 5, 9} {
		v, _ := c.Put(r)
		*v = "x"
	}
	seen := map[uint64]bool{}
	c.ForEach(func(round uint64, v *string) {
		if *v != "x" {
			t.Fatalf("round %d value %q", round, *v)
		}
		seen[round] = true
	})
	if len(seen) != 3 || !seen[3] || !seen[5] || !seen[9] {
		t.Fatalf("ForEach visited %v", seen)
	}
}
