// Package roundcache provides fixed-capacity, allocation-free caches keyed by
// broadcast round identifiers.
//
// The broadcast layers (internal/gossip, internal/plumtree) and the delivery
// tracker need per-round state — "have I delivered round r?", the cached
// payload for GRAFT retransmission, the announcers of a round known only by
// IHAVE. Go maps give the right semantics but the wrong cost model: every
// insert may allocate, Reset either re-allocates the map or leaves its bucket
// array at high-water size, and at 100k nodes the per-delivery map traffic
// dominates the whole protocol stack (see BENCH_sim.json).
//
// Both containers here are open-addressed hash tables (linear probing,
// backward-shift deletion, fibonacci hashing) over fixed-capacity arrays,
// with FIFO eviction: once capacity rounds are held, inserting a new round
// evicts the round added capacity insertions ago. That bounds memory for the
// life of the node, keeps the steady state allocation-free, and — unlike a
// window keyed on round values — guarantees the most recent capacity
// distinct rounds are remembered exactly, whatever the identifiers look
// like. That last property matters: the simulator's harness allocates rounds
// monotonically, but the TCP agents draw them from a 64-bit random stream,
// and a cache that assumed monotonicity would evict live rounds under
// birthday collisions and re-deliver (observed as reliability > 1 in the
// 12-agent loopback soak before this design).
//
// An evicted delivered-round entry can at worst re-deliver a message older
// than capacity rounds — the bounded-memory trade every deployed gossip
// message-id cache makes.
package roundcache

// fib is the 64-bit fibonacci hashing multiplier (2^64 / φ); the high bits
// of round*fib spread both sequential and random round identifiers uniformly
// over a power-of-two table.
const fib = 0x9E3779B97F4A7C15

// table is the shared open-addressed core: keys only, so Set embeds it alone
// and Cache pairs it with a value array whose entries move in lockstep.
type table struct {
	keys  []uint64 // round+1 per slot; 0 = empty
	fifo  []uint64 // ring of the last len(fifo) inserted rounds (+1; 0 = free)
	head  int      // next fifo write position (oldest entry when full)
	n     int      // live table entries
	shift uint8    // 64 - log2(len(keys)): fibonacci hash shift
}

func (t *table) init(capacity int) {
	c := ceilPow2(capacity)
	t.keys = make([]uint64, 2*c) // ≤50% load keeps probe chains short
	t.fifo = make([]uint64, c)
	t.head = 0
	t.n = 0
	t.shift = 64
	for 1<<(64-t.shift) < 2*c {
		t.shift--
	}
}

func (t *table) home(round uint64) int {
	return int((round * fib) >> t.shift)
}

// find returns the slot holding round, or -1.
func (t *table) find(round uint64) int {
	mask := len(t.keys) - 1
	for i := t.home(round); ; i = (i + 1) & mask {
		switch t.keys[i] {
		case round + 1:
			return i
		case 0:
			return -1
		}
	}
}

// insert places round (not present) into the table and returns its slot.
func (t *table) insert(round uint64) int {
	mask := len(t.keys) - 1
	i := t.home(round)
	for t.keys[i] != 0 {
		i = (i + 1) & mask
	}
	t.keys[i] = round + 1
	t.n++
	return i
}

// remove deletes round from the table using backward-shift deletion (no
// tombstones: probe chains stay minimal forever). Every entry movement is
// reported through swap(from, to) so a parallel value array stays in sync;
// swap is called such that a plain element swap keeps evicted values
// available for recycling. It returns whether round was present.
func (t *table) remove(round uint64, swap func(from, to int)) bool {
	i := t.find(round)
	if i < 0 {
		return false
	}
	mask := len(t.keys) - 1
	t.keys[i] = 0
	t.n--
	// Backward shift: walk the probe chain after i, moving up any entry
	// whose home position does not lie in the (hole, current] window —
	// i.e. entries that could no longer be found once the hole stops their
	// probe chain.
	hole := i
	for j := (i + 1) & mask; t.keys[j] != 0; j = (j + 1) & mask {
		home := t.home(t.keys[j] - 1)
		// Move keys[j] into the hole unless its home lies strictly after
		// the hole on the cyclic probe path (in which case the hole does
		// not break its chain).
		if cyclicBetween(hole, home, j) {
			continue
		}
		t.keys[hole] = t.keys[j]
		t.keys[j] = 0
		if swap != nil {
			swap(j, hole)
		}
		hole = j
	}
	return true
}

// cyclicBetween reports whether pos lies in the half-open cyclic interval
// (hole, j]: the positions a probe starting after hole still visits.
func cyclicBetween(hole, pos, j int) bool {
	if hole <= j {
		return hole < pos && pos <= j
	}
	return pos > hole || pos <= j
}

// noteInsert records round in the FIFO ring and returns the round (if any)
// that must be evicted to make room — the one inserted capacity insertions
// ago, if it is still live.
func (t *table) noteInsert(round uint64) (evict uint64, ok bool) {
	old := t.fifo[t.head]
	t.fifo[t.head] = round + 1
	t.head++
	if t.head == len(t.fifo) {
		t.head = 0
	}
	if old == 0 {
		return 0, false
	}
	return old - 1, true
}

func (t *table) reset() {
	clear(t.keys)
	clear(t.fifo)
	t.head = 0
	t.n = 0
}

// Set is a fixed-capacity set of round identifiers with allocation-free
// Add/Contains/Remove and FIFO eviction. The zero value is invalid; use
// NewSet, or embed a Set by value and Init it (one pointer dereference fewer
// on every operation, which is measurable when the set is consulted per
// delivered event across 100k cache-cold nodes).
type Set struct {
	t table
}

// NewSet returns a set remembering the most recent capacity rounds.
// Capacity is rounded up to a power of two; values < 2 are clamped to 2.
func NewSet(capacity int) *Set {
	s := &Set{}
	s.Init(capacity)
	return s
}

// Init (re)initializes the set with the given capacity.
func (s *Set) Init(capacity int) { s.t.init(capacity) }

// Contains reports whether round is in the set.
func (s *Set) Contains(round uint64) bool { return s.t.find(round) >= 0 }

// Add inserts round, evicting the round added capacity insertions ago if it
// is still present. It reports whether round was newly inserted (false:
// already present).
func (s *Set) Add(round uint64) bool {
	if s.t.find(round) >= 0 {
		return false
	}
	if evict, ok := s.t.noteInsert(round); ok {
		s.t.remove(evict, nil)
	}
	s.t.insert(round)
	return true
}

// Remove deletes round and reports whether it was present.
func (s *Set) Remove(round uint64) bool { return s.t.remove(round, nil) }

// Len returns the number of rounds currently held.
func (s *Set) Len() int { return s.t.n }

// Reset clears the set in place; no memory is released or allocated.
func (s *Set) Reset() { s.t.reset() }

// Cache is a fixed-capacity map from round identifiers to values of type V
// with allocation-free steady-state access and FIFO eviction. Entries are
// recycled in place when a round is evicted, removed or the cache is reset,
// so a V holding slices keeps its backing arrays across generations (the
// "reuse entries instead of make-on-reset" discipline). The zero value is
// invalid; use New, or embed by value and Init.
type Cache[V any] struct {
	t    table
	vals []V

	// swapFn is the bound swap method, created once: passing c.swap at each
	// eviction site would allocate a fresh method value per call.
	swapFn func(from, to int)
}

// New returns a cache remembering the most recent capacity rounds. Capacity
// is rounded up to a power of two; values < 2 are clamped to 2.
func New[V any](capacity int) *Cache[V] {
	c := &Cache[V]{}
	c.Init(capacity)
	return c
}

// Init (re)initializes the cache with the given capacity.
func (c *Cache[V]) Init(capacity int) {
	c.t.init(capacity)
	c.vals = make([]V, len(c.t.keys))
	c.swapFn = c.swap
}

// swap keeps the value array aligned with backward-shifted keys. A plain
// element swap (rather than a copy) parks the dead value — and its
// recyclable backing arrays — in the vacated slot instead of aliasing one
// live backing array from two slots.
func (c *Cache[V]) swap(from, to int) {
	c.vals[from], c.vals[to] = c.vals[to], c.vals[from]
}

// Get returns a pointer to round's value, or nil when round is absent. The
// pointer is valid until the next Put or Remove on the cache; callers must
// not retain it across mutations.
func (c *Cache[V]) Get(round uint64) *V {
	i := c.t.find(round)
	if i < 0 {
		return nil
	}
	return &c.vals[i]
}

// Put inserts round (evicting the round added capacity insertions ago, if
// still present) and returns a pointer to its value slot together with
// whether the round was already present. The value slot is NOT zeroed on
// eviction or fresh insert: the caller resets the fields it uses, which is
// what lets entries recycle their slice capacity.
func (c *Cache[V]) Put(round uint64) (v *V, existed bool) {
	if i := c.t.find(round); i >= 0 {
		return &c.vals[i], true
	}
	if evict, ok := c.t.noteInsert(round); ok {
		c.t.remove(evict, c.swapFn)
	}
	return &c.vals[c.t.insert(round)], false
}

// Remove deletes round, keeping its value slot's memory for reuse, and
// reports whether it was present.
func (c *Cache[V]) Remove(round uint64) bool {
	return c.t.remove(round, c.swapFn)
}

// Len returns the number of rounds currently held.
func (c *Cache[V]) Len() int { return c.t.n }

// Reset clears the key table in place. Values are kept untouched for reuse:
// the next Put of any round hands back a previous value to recycle.
func (c *Cache[V]) Reset() { c.t.reset() }

// ForEach calls fn for every occupied slot in unspecified order. fn must not
// mutate the cache.
func (c *Cache[V]) ForEach(fn func(round uint64, v *V)) {
	for i, r := range c.t.keys {
		if r != 0 {
			fn(r-1, &c.vals[i])
		}
	}
}

// ceilPow2 rounds capacity up to a power of two, clamping to [2, 1<<20].
func ceilPow2(capacity int) int {
	if capacity < 2 {
		capacity = 2
	}
	if capacity > 1<<20 {
		capacity = 1 << 20
	}
	p := 2
	for p < capacity {
		p <<= 1
	}
	return p
}
