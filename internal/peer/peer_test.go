package peer_test

import (
	"errors"
	"fmt"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// memEnv is a minimal in-memory peer.Env: it records traffic and models
// failed destinations, exercising the contract every environment (netsim,
// transport) implements.
type memEnv struct {
	peertest.ManualScheduler
	self    id.ID
	rand    *rng.Rand
	down    map[id.ID]bool
	sent    []id.ID
	watched map[id.ID]bool
}

var _ peer.Env = (*memEnv)(nil)

func newMemEnv(self id.ID) *memEnv {
	return &memEnv{
		self:    self,
		rand:    rng.New(uint64(self)),
		down:    make(map[id.ID]bool),
		watched: make(map[id.ID]bool),
	}
}

func (e *memEnv) Self() id.ID     { return e.self }
func (e *memEnv) Rand() *rng.Rand { return e.rand }

func (e *memEnv) Send(dst id.ID, _ msg.Message) error {
	if e.down[dst] {
		// The contract allows wrapping, so callers must test with errors.Is.
		return fmt.Errorf("send %v->%v: %w", e.self, dst, peer.ErrPeerDown)
	}
	e.sent = append(e.sent, dst)
	return nil
}

func (e *memEnv) Probe(dst id.ID) error {
	if e.down[dst] {
		return peer.ErrPeerDown
	}
	return nil
}

func (e *memEnv) Watch(dst id.ID)   { e.watched[dst] = true }
func (e *memEnv) Unwatch(dst id.ID) { delete(e.watched, dst) }

// memMembership is a minimal in-memory peer.Membership over a fixed view.
type memMembership struct {
	view   []id.ID
	downs  []id.ID
	cycles int
}

var _ peer.Membership = (*memMembership)(nil)

func (m *memMembership) Deliver(id.ID, msg.Message) {}
func (m *memMembership) OnCycle()                   { m.cycles++ }
func (m *memMembership) Neighbors() []id.ID         { return append([]id.ID(nil), m.view...) }
func (m *memMembership) OnPeerDown(p id.ID)         { m.downs = append(m.downs, p) }

func (m *memMembership) GossipTargets(fanout int, exclude id.ID) []id.ID {
	var out []id.ID
	for _, n := range m.view {
		if n != exclude {
			out = append(out, n)
		}
	}
	if fanout > 0 && len(out) > fanout {
		out = out[:fanout]
	}
	return out
}

func TestErrPeerDownDetectableThroughWrapping(t *testing.T) {
	env := newMemEnv(1)
	env.down[2] = true
	err := env.Send(2, msg.Message{Type: msg.Gossip})
	if err == nil {
		t.Fatal("send to failed peer succeeded")
	}
	// This is the failure-detection idiom every protocol in the repository
	// uses: identity via errors.Is regardless of wrapping.
	if !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("wrapped error not identifiable: %v", err)
	}
	if err := env.Probe(2); !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("probe of failed peer = %v, want ErrPeerDown", err)
	}
	if err := env.Probe(3); err != nil {
		t.Errorf("probe of live peer = %v, want nil", err)
	}
}

func TestEnvContractBasics(t *testing.T) {
	env := newMemEnv(7)
	if env.Self() != 7 {
		t.Errorf("Self() = %v", env.Self())
	}
	if env.Rand() == nil {
		t.Error("Rand() must return the node's private stream")
	}
	if err := env.Send(2, msg.Message{Type: msg.Gossip}); err != nil {
		t.Errorf("send to live peer failed: %v", err)
	}
	env.Watch(2)
	if !env.watched[2] {
		t.Error("Watch not registered")
	}
	env.Unwatch(2)
	if env.watched[2] {
		t.Error("Unwatch did not cancel")
	}
}

func TestMembershipContract(t *testing.T) {
	m := &memMembership{view: []id.ID{2, 3, 4}}

	// Neighbors returns a fresh slice: mutating it must not corrupt the view.
	n := m.Neighbors()
	n[0] = 99
	if m.Neighbors()[0] != 2 {
		t.Error("Neighbors() exposed internal state")
	}

	// GossipTargets excludes the arrival hop and honors the fanout bound.
	targets := m.GossipTargets(0, 3)
	if len(targets) != 2 {
		t.Errorf("flood targets = %v, want view minus excluded", targets)
	}
	for _, p := range targets {
		if p == 3 {
			t.Error("excluded peer present in gossip targets")
		}
	}
	if got := m.GossipTargets(1, 0); len(got) != 1 {
		t.Errorf("fanout-1 targets = %v, want a single peer", got)
	}

	m.OnCycle()
	if m.cycles != 1 {
		t.Error("OnCycle not counted")
	}
	m.OnPeerDown(4)
	if len(m.downs) != 1 || m.downs[0] != 4 {
		t.Errorf("downs = %v, want [n4]", m.downs)
	}
}

// failureObserver documents the optional interface an environment probes
// for with a type assertion (as netsim does) before delivering connection
// resets.
type failureObserver struct {
	memMembership
	resets []id.ID
}

func (f *failureObserver) OnPeerDown(p id.ID) { f.resets = append(f.resets, p) }

func TestFailureObserverAssertion(t *testing.T) {
	var proc interface{} = &failureObserver{}
	obs, ok := proc.(peer.FailureObserver)
	if !ok {
		t.Fatal("failureObserver does not satisfy peer.FailureObserver")
	}
	obs.OnPeerDown(9)
	if got := proc.(*failureObserver).resets; len(got) != 1 || got[0] != 9 {
		t.Errorf("resets = %v, want [n9]", got)
	}

	// A plain membership without the interface must fail the assertion:
	// environments rely on this to skip notification delivery.
	var plain interface{} = struct{ peer.Env }{}
	if _, ok := plain.(peer.FailureObserver); ok {
		t.Error("non-observer asserted as FailureObserver")
	}
}
