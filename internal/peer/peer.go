// Package peer defines the contracts shared by every membership protocol in
// this repository and by the two environments that host them (the
// discrete-event simulator and the real TCP transport).
//
// Splitting these interfaces into their own package keeps the protocol
// packages (core, cyclon, scamp), the broadcast layer (gossip) and the
// environments (netsim, transport) free of import cycles.
package peer

import (
	"errors"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/rng"
)

// ErrPeerDown is returned by Env.Send and Env.Probe when the destination has
// failed or is unreachable. It models a TCP connection reset/refusal: the
// paper relies on exactly this signal as its failure detector (§1 item iii).
var ErrPeerDown = errors.New("peer: destination down")

// ErrOverflow is returned (wrapped) by Env.Send when the environment sheds
// the message under overload instead of queueing it unboundedly: the
// simulator's in-flight event cap and the TCP transport's bounded per-peer
// send queues both report it. It is deliberately distinct from ErrPeerDown —
// an overloaded link is alive, and tearing it down would amplify exactly the
// message storm that caused the shed. Protocols treat it as a lost message.
var ErrOverflow = errors.New("peer: send queue overflow")

// Message ownership.
//
// msg.Message is a value type whose slice fields (Payload, Nodes, Entries,
// Directory) are shared, never defensively copied, on the hot path. The
// environments and every protocol in this repository observe one
// copy-on-write discipline:
//
//   - A slice handed to Env.Send is frozen: neither the sender nor any
//     receiver may mutate its contents afterwards, ever. The simulator hands
//     the same backing arrays to every receiver of a fan-out (one payload
//     buffer serves a whole broadcast); the TCP transport encodes from them
//     concurrently with the caller's next steps.
//   - Per-hop mutation happens on the value fields only (TTL, Hops, Sender):
//     a forwarder copies the struct — `fwd := m; fwd.TTL--` — which shares
//     the slices and rewrites the scalars. That is the write part of
//     copy-on-write, and it is what keeps relaying allocation-free.
//   - A receiver that needs to *change* a slice (integrate a shuffle list,
//     build a reply) copies it first, into scratch it owns.
//   - A receiver may retain a received slice beyond the handler return
//     (Plumtree caches payloads for GRAFT retransmission) exactly because of
//     the freeze rule: a frozen slice is safe to alias forever.
//   - Delivery callbacks (gossip.Delivery) receive the shared payload and
//     must treat it as read-only; applications that need a private copy make
//     one.
//
// msg.Message.Clone remains available for the rare caller that needs a
// deeply owned copy (tests, persistence), but no protocol hot path uses it.

// Scheduler is the time contract every environment provides alongside message
// delivery. Time is measured in ticks, an abstract unit each environment maps
// onto its own clock: the simulator counts virtual ticks on its event heap
// (the same unit its latency models speak), the TCP transport maps one tick
// to one millisecond of wall time.
//
// Scheduled messages are delivered to the local process exactly like network
// traffic, with from == Self(); a protocol recognizes its own timers by
// (type, sender) — see msg.Tick for the shared convention. Delivery is
// ordered: of two scheduled messages, the one with the earlier deadline is
// delivered first, and the simulator breaks ties by scheduling order.
//
// This is the PeerSim-style engine contract the paper's evaluation (§5)
// assumes: every periodic protocol behavior — HyParView's shuffle rounds,
// Plumtree's IHAVE timers, X-BOT's optimization cadence — is expressed
// against it once and runs identically in virtual and real time.
type Scheduler interface {
	// Now returns the current time in ticks. It never decreases.
	Now() uint64

	// After schedules m for delivery to the local process once delay ticks
	// have elapsed. A zero delay means "behind everything already in
	// flight": the message is delivered after all traffic queued at the
	// current instant. One-shot; scheduling is infallible.
	After(delay uint64, m msg.Message)

	// Every registers a periodic delivery of m every interval ticks, first
	// firing one interval from now. The registration lives as long as the
	// node: the simulator stops delivering to failed nodes, the transport
	// stops when the agent closes. A zero interval is clamped to one tick.
	Every(interval uint64, m msg.Message)
}

// Env is the environment a protocol instance runs in. The simulator provides
// a synchronous deterministic implementation; the transport package provides
// one backed by real TCP connections. Every environment is also a Scheduler:
// protocols own their timers instead of being driven by external cycle calls.
type Env interface {
	Scheduler

	// Self returns the identifier of the local node.
	Self() id.ID

	// Send delivers m to dst. It returns ErrPeerDown (possibly wrapped) when
	// dst is known to have failed; protocols built on reliable transports
	// treat that as failure detection, protocols modelling lossy gossip
	// ignore it.
	Send(dst id.ID, m msg.Message) error

	// Probe attempts to establish a connection to dst without sending
	// anything, modelling a bare TCP connect (paper §4.3: the first step of
	// replacing a failed active-view member).
	Probe(dst id.ID) error

	// Rand returns the node's private deterministic random stream.
	Rand() *rng.Rand

	// Watch registers interest in connection-level failure notifications
	// for dst, modelling an open TCP connection: if dst fails while
	// watched, the environment invokes the process's OnPeerDown (see
	// FailureObserver). HyParView watches its active view — TCP doubles as
	// its failure detector (§4.1 item iii) — while Cyclon and Scamp, which
	// keep no connections open, never watch anything.
	Watch(dst id.ID)

	// Unwatch cancels a Watch, modelling closing the connection.
	Unwatch(dst id.ID)
}

// FailureObserver is implemented by processes that want asynchronous
// connection-breakage notifications for peers they Watch.
type FailureObserver interface {
	OnPeerDown(peerID id.ID)
}

// RefSender is an optional Env extension for fan-out hot paths: Send with
// the message passed by reference. Semantics are identical to Env.Send —
// the callee copies what it keeps and never retains the pointer — but a
// broadcast layer pushing one frozen message to k neighbors avoids k
// by-value struct copies at the call boundary. Callers must treat *m as
// frozen exactly as if it had been passed to Send. Environments whose Send
// is dominated by I/O (the TCP transport) need not implement it; layers
// probe for it once at construction and fall back to Send.
type RefSender interface {
	SendRef(dst id.ID, m *msg.Message) error
}

// Membership is the behaviour every membership protocol exposes to the
// gossip broadcast layer and to the experiment harness.
type Membership interface {
	// Deliver processes one membership protocol message from the network.
	Deliver(from id.ID, m msg.Message)

	// OnCycle executes one periodic membership step (the cyclic part of the
	// protocol: HyParView and Cyclon shuffles, Scamp lease/heartbeats).
	OnCycle()

	// Neighbors returns the node's current overlay out-neighbors: the active
	// view for HyParView, the partial view for Cyclon and Scamp. The result
	// is a fresh slice.
	Neighbors() []id.ID

	// GossipTargets returns the peers a broadcast should be forwarded to,
	// excluding exclude (usually the hop the message arrived from). Flooding
	// protocols return all neighbors; peer-sampling protocols return fanout
	// random members. The returned slice is owned by the membership instance
	// and only valid until its next GossipTargets call: it is a reused
	// scratch buffer on the per-delivery hot path, so callers iterate it
	// immediately and never retain or mutate it.
	GossipTargets(fanout int, exclude id.ID) []id.ID

	// OnPeerDown informs the protocol that a send to peerID failed. This is
	// the reactive failure-detection path: HyParView repairs its active
	// view, CyclonAcked purges the entry, plain Cyclon and Scamp ignore it.
	OnPeerDown(peerID id.ID)
}

// Process is the unit the simulator schedules: message delivery plus the
// periodic cycle hook.
type Process interface {
	Deliver(from id.ID, m msg.Message)
	OnCycle()
}

// NeighborVersioned is an optional Membership extension: a change counter
// over the Neighbors set. The counter increments whenever the overlay
// neighborhood changes (any addition or removal); it never decreases.
//
// Layers that mirror the neighborhood — Plumtree's eager/lazy partition —
// poll the version on every delivery and resynchronize only when it moved,
// turning an allocate-and-diff per event into a single integer compare in
// steady state. Memberships that do not implement the interface are
// resynchronized unconditionally, which is correct but pays the full diff on
// every delivery. Wrapping layers (X-BOT) forward the inner protocol's
// version.
type NeighborVersioned interface {
	NeighborVersion() uint64
}
