// Package peer defines the contracts shared by every membership protocol in
// this repository and by the two environments that host them (the
// discrete-event simulator and the real TCP transport).
//
// Splitting these interfaces into their own package keeps the protocol
// packages (core, cyclon, scamp), the broadcast layer (gossip) and the
// environments (netsim, transport) free of import cycles.
package peer

import (
	"errors"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/rng"
)

// ErrPeerDown is returned by Env.Send and Env.Probe when the destination has
// failed or is unreachable. It models a TCP connection reset/refusal: the
// paper relies on exactly this signal as its failure detector (§1 item iii).
var ErrPeerDown = errors.New("peer: destination down")

// Scheduler is the time contract every environment provides alongside message
// delivery. Time is measured in ticks, an abstract unit each environment maps
// onto its own clock: the simulator counts virtual ticks on its event heap
// (the same unit its latency models speak), the TCP transport maps one tick
// to one millisecond of wall time.
//
// Scheduled messages are delivered to the local process exactly like network
// traffic, with from == Self(); a protocol recognizes its own timers by
// (type, sender) — see msg.Tick for the shared convention. Delivery is
// ordered: of two scheduled messages, the one with the earlier deadline is
// delivered first, and the simulator breaks ties by scheduling order.
//
// This is the PeerSim-style engine contract the paper's evaluation (§5)
// assumes: every periodic protocol behavior — HyParView's shuffle rounds,
// Plumtree's IHAVE timers, X-BOT's optimization cadence — is expressed
// against it once and runs identically in virtual and real time.
type Scheduler interface {
	// Now returns the current time in ticks. It never decreases.
	Now() uint64

	// After schedules m for delivery to the local process once delay ticks
	// have elapsed. A zero delay means "behind everything already in
	// flight": the message is delivered after all traffic queued at the
	// current instant. One-shot; scheduling is infallible.
	After(delay uint64, m msg.Message)

	// Every registers a periodic delivery of m every interval ticks, first
	// firing one interval from now. The registration lives as long as the
	// node: the simulator stops delivering to failed nodes, the transport
	// stops when the agent closes. A zero interval is clamped to one tick.
	Every(interval uint64, m msg.Message)
}

// Env is the environment a protocol instance runs in. The simulator provides
// a synchronous deterministic implementation; the transport package provides
// one backed by real TCP connections. Every environment is also a Scheduler:
// protocols own their timers instead of being driven by external cycle calls.
type Env interface {
	Scheduler

	// Self returns the identifier of the local node.
	Self() id.ID

	// Send delivers m to dst. It returns ErrPeerDown (possibly wrapped) when
	// dst is known to have failed; protocols built on reliable transports
	// treat that as failure detection, protocols modelling lossy gossip
	// ignore it.
	Send(dst id.ID, m msg.Message) error

	// Probe attempts to establish a connection to dst without sending
	// anything, modelling a bare TCP connect (paper §4.3: the first step of
	// replacing a failed active-view member).
	Probe(dst id.ID) error

	// Rand returns the node's private deterministic random stream.
	Rand() *rng.Rand

	// Watch registers interest in connection-level failure notifications
	// for dst, modelling an open TCP connection: if dst fails while
	// watched, the environment invokes the process's OnPeerDown (see
	// FailureObserver). HyParView watches its active view — TCP doubles as
	// its failure detector (§4.1 item iii) — while Cyclon and Scamp, which
	// keep no connections open, never watch anything.
	Watch(dst id.ID)

	// Unwatch cancels a Watch, modelling closing the connection.
	Unwatch(dst id.ID)
}

// FailureObserver is implemented by processes that want asynchronous
// connection-breakage notifications for peers they Watch.
type FailureObserver interface {
	OnPeerDown(peerID id.ID)
}

// Membership is the behaviour every membership protocol exposes to the
// gossip broadcast layer and to the experiment harness.
type Membership interface {
	// Deliver processes one membership protocol message from the network.
	Deliver(from id.ID, m msg.Message)

	// OnCycle executes one periodic membership step (the cyclic part of the
	// protocol: HyParView and Cyclon shuffles, Scamp lease/heartbeats).
	OnCycle()

	// Neighbors returns the node's current overlay out-neighbors: the active
	// view for HyParView, the partial view for Cyclon and Scamp. The result
	// is a fresh slice.
	Neighbors() []id.ID

	// GossipTargets returns the peers a broadcast should be forwarded to,
	// excluding exclude (usually the hop the message arrived from). Flooding
	// protocols return all neighbors; peer-sampling protocols return fanout
	// random members.
	GossipTargets(fanout int, exclude id.ID) []id.ID

	// OnPeerDown informs the protocol that a send to peerID failed. This is
	// the reactive failure-detection path: HyParView repairs its active
	// view, CyclonAcked purges the entry, plain Cyclon and Scamp ignore it.
	OnPeerDown(peerID id.ID)
}

// Process is the unit the simulator schedules: message delivery plus the
// periodic cycle hook.
type Process interface {
	Deliver(from id.ID, m msg.Message)
	OnCycle()
}
