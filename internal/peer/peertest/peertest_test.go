package peertest

import (
	"testing"

	"hyparview/internal/msg"
)

// The manual scheduler is itself held to the contract it helps others test:
// running it through the conformance suite keeps the suite and the helper
// honest against each other.
func TestManualSchedulerConformance(t *testing.T) {
	Conformance(t, func(t *testing.T) *Instance {
		ms := &ManualScheduler{}
		var got []msg.Message
		return &Instance{
			Sched:     ms,
			Run:       func(d uint64) { got = append(got, ms.Advance(d)...) },
			Delivered: func() []msg.Message { return append([]msg.Message(nil), got...) },
		}
	})
}

func TestManualSchedulerTieBreaksBySchedulingOrder(t *testing.T) {
	ms := &ManualScheduler{}
	ms.After(10, msg.Message{Round: 1})
	ms.After(10, msg.Message{Round: 2})
	due := ms.Advance(10)
	if len(due) != 2 || due[0].Round != 1 || due[1].Round != 2 {
		t.Fatalf("equal-deadline firing order = %v, want scheduling order", due)
	}
	if ms.Now() != 10 {
		t.Errorf("clock = %d, want 10", ms.Now())
	}
	if ms.Pending() != 0 {
		t.Errorf("pending = %d, want 0", ms.Pending())
	}
}

func TestManualSchedulerPeriodicReArmsWithinOneAdvance(t *testing.T) {
	ms := &ManualScheduler{}
	ms.Every(3, msg.Message{Round: 9})
	due := ms.Advance(10)
	if len(due) != 3 { // ticks 3, 6, 9
		t.Fatalf("periodic fired %d times over 10 ticks at interval 3, want 3", len(due))
	}
	if ms.Pending() != 1 {
		t.Errorf("periodic registration lost: pending = %d", ms.Pending())
	}
}
