// Package peertest provides shared test support for the peer.Scheduler
// contract: a manually-advanced scheduler for protocol unit tests, and the
// conformance suite both environments (the discrete-event simulator and the
// real TCP transport) must pass.
package peertest

import (
	"testing"

	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// ManualScheduler implements peer.Scheduler with an explicitly advanced
// clock. Protocol unit tests embed it in their fake environments and stay in
// full control of time: Advance returns the timer messages that became due,
// and the test delivers them to the node under test itself (with
// from == self), choosing the interleaving it wants to exercise.
type ManualScheduler struct {
	clock uint64
	seq   uint64
	queue []manualEntry
}

type manualEntry struct {
	at       uint64
	seq      uint64
	interval uint64 // 0 for one-shot
	m        msg.Message
}

var _ peer.Scheduler = (*ManualScheduler)(nil)

// Now implements peer.Scheduler.
func (s *ManualScheduler) Now() uint64 { return s.clock }

// After implements peer.Scheduler.
func (s *ManualScheduler) After(delay uint64, m msg.Message) {
	s.seq++
	s.queue = append(s.queue, manualEntry{at: s.clock + delay, seq: s.seq, m: m})
}

// Every implements peer.Scheduler.
func (s *ManualScheduler) Every(interval uint64, m msg.Message) {
	if interval == 0 {
		interval = 1
	}
	s.seq++
	s.queue = append(s.queue, manualEntry{at: s.clock + interval, seq: s.seq, interval: interval, m: m})
}

// Pending returns the number of scheduled deliveries (a periodic
// registration counts once, at its next deadline).
func (s *ManualScheduler) Pending() int { return len(s.queue) }

// Advance moves the clock forward by d ticks and returns the timer messages
// due at or before the new time, in firing order (deadline, then scheduling
// order). Periodic registrations re-arm and may fire several times within
// one Advance.
func (s *ManualScheduler) Advance(d uint64) []msg.Message {
	target := s.clock + d
	var due []msg.Message
	for {
		best := -1
		for i := range s.queue {
			if s.queue[i].at > target {
				continue
			}
			if best < 0 || entryLess(s.queue[i], s.queue[best]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := s.queue[best]
		if e.at > s.clock {
			s.clock = e.at
		}
		due = append(due, e.m)
		if e.interval > 0 {
			s.seq++
			s.queue[best] = manualEntry{at: e.at + e.interval, seq: s.seq, interval: e.interval, m: e.m}
		} else {
			s.queue = append(s.queue[:best], s.queue[best+1:]...)
		}
	}
	s.clock = target
	return due
}

func entryLess(a, b manualEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Instance adapts one environment's scheduler to the conformance suite.
type Instance struct {
	// Sched is the scheduler under test.
	Sched peer.Scheduler

	// Run lets scheduled work fire for at least d ticks of the instance's
	// clock, blocking until the deliveries due in that window have reached
	// the hosted process.
	Run func(d uint64)

	// Delivered returns the messages the hosted process has received from
	// the scheduler so far, in delivery order. The instance must verify
	// internally that each arrived with from == self.
	Delivered func() []msg.Message

	// Real marks a wall-clock scheduler: tick counts become lower bounds
	// and exact interleaving within one instant is not asserted.
	Real bool
}

// tick builds the marker message the suite schedules; instances see only its
// Round.
func tick(round uint64) msg.Message {
	return msg.Message{Type: msg.Tick, Round: round}
}

func rounds(ms []msg.Message) []uint64 {
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.Round
	}
	return out
}

// Conformance runs the shared peer.Scheduler contract suite against fresh
// instances built by mk. Both environments run exactly this suite, which is
// what makes "every periodic behavior runs identically in virtual and real
// time" a tested property rather than a convention.
func Conformance(t *testing.T, mk func(t *testing.T) *Instance) {
	t.Run("NowAdvancesMonotonically", func(t *testing.T) {
		in := mk(t)
		t0 := in.Sched.Now()
		in.Run(40)
		t1 := in.Sched.Now()
		if t1 < t0+40 {
			t.Errorf("Now after Run(40) = %d, want >= %d", t1, t0+40)
		}
		if got := in.Sched.Now(); got < t1 {
			t.Errorf("Now decreased: %d after %d", got, t1)
		}
	})

	t.Run("AfterFiresOnceInDeadlineOrder", func(t *testing.T) {
		in := mk(t)
		in.Sched.After(200, tick(1))
		in.Sched.After(40, tick(2))
		in.Run(400)
		got := rounds(in.Delivered())
		if len(got) != 2 || got[0] != 2 || got[1] != 1 {
			t.Fatalf("deliveries = %v, want [2 1] (deadline order, each once)", got)
		}
		in.Run(400)
		if got := rounds(in.Delivered()); len(got) != 2 {
			t.Errorf("one-shot timer fired again: %v", got)
		}
	})

	t.Run("AfterZeroFiresBehindCurrentInstant", func(t *testing.T) {
		in := mk(t)
		in.Sched.After(0, tick(3))
		in.Run(40)
		if got := rounds(in.Delivered()); len(got) != 1 || got[0] != 3 {
			t.Fatalf("deliveries = %v, want [3]", got)
		}
	})

	t.Run("EveryRepeats", func(t *testing.T) {
		in := mk(t)
		in.Sched.Every(40, tick(4))
		in.Run(200)
		got := rounds(in.Delivered())
		if in.Real {
			if len(got) < 2 {
				t.Fatalf("periodic fired %d times over 5 intervals, want >= 2", len(got))
			}
		} else if len(got) != 5 {
			t.Fatalf("periodic fired %d times, want exactly 5 (ticks 40..200)", len(got))
		}
		for _, r := range got {
			if r != 4 {
				t.Fatalf("unexpected delivery %v", got)
			}
		}
	})
}
