package faults

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/rng"
)

// record is a test Redeliver sink.
type record struct {
	msgs   []msg.Message
	tos    []id.ID
	delays []uint64
}

func (rc *record) redeliver(from, to id.ID, m msg.Message, delay uint64) {
	rc.msgs = append(rc.msgs, m)
	rc.tos = append(rc.tos, to)
	rc.delays = append(rc.delays, delay)
}

func TestInjectorZeroValueIsNoOp(t *testing.T) {
	var inj Injector
	hook := inj.Hook()
	m := msg.Message{Type: msg.Gossip, Sender: 1, Round: 7}
	repl, ok := hook(2, &m)
	if repl != nil || !ok {
		t.Errorf("zero injector altered delivery: repl=%v ok=%v", repl, ok)
	}
	if st := inj.Stats(); st.Inspected != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInjectorDropRate(t *testing.T) {
	inj := Injector{
		Rand:    rng.New(1),
		Default: Profile{Drop: 0.25},
	}
	hook := inj.Hook()
	dropped := 0
	const n = 10000
	for i := 0; i < n; i++ {
		m := msg.Message{Type: msg.Gossip, Sender: 1, Round: uint64(i)}
		if _, ok := hook(2, &m); !ok {
			dropped++
		}
	}
	frac := float64(dropped) / n
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("drop fraction = %.3f, want ~0.25", frac)
	}
	if st := inj.Stats(); st.Dropped != uint64(dropped) {
		t.Errorf("Dropped = %d, counted %d", st.Dropped, dropped)
	}
}

func TestInjectorDuplicateAndDelayRedeliver(t *testing.T) {
	rc := &record{}
	inj := Injector{
		Rand:      rng.New(2),
		Redeliver: rc.redeliver,
		Default:   Profile{Duplicate: 1, DupDelay: 3, Delay: 1, MaxDelay: 5},
	}
	hook := inj.Hook()
	m := msg.Message{Type: msg.Gossip, Sender: 1, Round: 9}
	_, ok := hook(2, &m)
	if ok {
		t.Error("Delay=1 must suppress the immediate delivery")
	}
	if len(rc.msgs) != 2 {
		t.Fatalf("redeliveries = %d, want 2 (duplicate + delayed original)", len(rc.msgs))
	}
	for i, got := range rc.msgs {
		if got.Round != 9 || rc.tos[i] != 2 {
			t.Errorf("redelivery %d: round=%d to=%v", i, got.Round, rc.tos[i])
		}
	}
	if rc.delays[0] > 3 {
		t.Errorf("duplicate delay = %d, want <= DupDelay", rc.delays[0])
	}
	if rc.delays[1] < 1 || rc.delays[1] > 6 {
		t.Errorf("delay-fault delay = %d, want in [1, 1+MaxDelay]", rc.delays[1])
	}
	if st := inj.Stats(); st.Duplicated != 1 || st.Delayed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInjectorRedeliverNilDisablesDupDelay(t *testing.T) {
	inj := Injector{
		Rand:    rng.New(3),
		Default: Profile{Duplicate: 1, Delay: 1},
	}
	m := msg.Message{Type: msg.Gossip}
	if _, ok := inj.Hook()(2, &m); !ok {
		t.Error("without Redeliver the delay fault must be disabled (message delivered)")
	}
}

func TestInjectorFilterPassesThroughUndrawn(t *testing.T) {
	inj := Injector{
		Rand:    rng.New(4),
		Default: Profile{Drop: 1},
		Filter: func(_ id.ID, m *msg.Message) bool {
			return m.Type == msg.Gossip // only gossip is fault-eligible
		},
	}
	hook := inj.Hook()
	j := msg.Message{Type: msg.Join}
	if _, ok := hook(2, &j); !ok {
		t.Error("filtered-out message was dropped")
	}
	g := msg.Message{Type: msg.Gossip}
	if _, ok := hook(2, &g); ok {
		t.Error("fault-eligible message survived Drop=1")
	}
}

func TestInjectorPerLinkOverridesDefault(t *testing.T) {
	lossy := &Profile{Drop: 1}
	inj := Injector{
		Rand: rng.New(5),
		PerLink: func(from, to id.ID) *Profile {
			if from == 1 {
				return lossy
			}
			return nil // fall back to Default (no faults)
		},
	}
	hook := inj.Hook()
	m1 := msg.Message{Type: msg.Gossip, Sender: 1}
	if _, ok := hook(2, &m1); ok {
		t.Error("lossy link delivered")
	}
	m2 := msg.Message{Type: msg.Gossip, Sender: 3}
	if _, ok := hook(2, &m2); !ok {
		t.Error("default link dropped")
	}
}

func TestTamperCountsAndReplaces(t *testing.T) {
	inj := Injector{
		Rand: rng.New(6),
		Tamper: func(_ id.ID, m *msg.Message) *msg.Message {
			repl := *m
			repl.Round = 42
			return &repl
		},
	}
	m := msg.Message{Type: msg.Gossip, Round: 1}
	repl, ok := inj.Hook()(2, &m)
	if !ok || repl == nil || repl.Round != 42 {
		t.Errorf("tamper result: repl=%v ok=%v", repl, ok)
	}
	if st := inj.Stats(); st.Tampered != 1 {
		t.Errorf("Tampered = %d, want 1", st.Tampered)
	}
}

func TestChainShortCircuitsAndThreadsReplacements(t *testing.T) {
	bump := func(_ id.ID, m *msg.Message) (*msg.Message, bool) {
		repl := *m
		repl.Round++
		return &repl, true
	}
	dropOdd := func(_ id.ID, m *msg.Message) (*msg.Message, bool) {
		return nil, m.Round%2 == 0
	}
	hook := Chain(bump, bump, dropOdd)
	m := msg.Message{Type: msg.Gossip, Round: 0}
	repl, ok := hook(1, &m)
	if !ok || repl == nil || repl.Round != 2 {
		t.Errorf("chained result: repl=%+v ok=%v", repl, ok)
	}
	m = msg.Message{Type: msg.Gossip, Round: 1}
	if _, ok := hook(1, &m); ok {
		t.Error("chain did not short-circuit on suppression")
	}
}

func TestShuffleLiarPoisonsWithoutMutatingOriginal(t *testing.T) {
	r := rng.New(7)
	liar := ShuffleLiar(r)
	orig := []id.ID{10, 11}
	m := msg.Message{Type: msg.Shuffle, Sender: 5, Nodes: orig}
	repl := liar(3, &m)
	if repl == nil {
		t.Fatal("liar left a shuffle untouched")
	}
	// The receiver's own id must be among the lies.
	foundSelf := false
	for _, n := range repl.Nodes {
		if n == 3 {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Errorf("poisoned list %v lacks the receiver's id", repl.Nodes)
	}
	if len(repl.Nodes) <= len(orig) {
		t.Errorf("poisoned list %v not longer than original %v", repl.Nodes, orig)
	}
	// Copy-on-write: the original message's frozen slice is untouched.
	if &orig[0] == &repl.Nodes[0] {
		t.Error("liar reused the original slice backing array")
	}
	if m.Nodes[0] != 10 || m.Nodes[1] != 11 || len(m.Nodes) != 2 {
		t.Errorf("original mutated: %v", m.Nodes)
	}
	// Non-shuffle traffic passes untouched.
	g := msg.Message{Type: msg.Gossip, Nodes: orig}
	if liar(3, &g) != nil {
		t.Error("liar tampered non-shuffle traffic")
	}
}

func TestPayloadCorrupterFlipsCopy(t *testing.T) {
	r := rng.New(8)
	corrupt := PayloadCorrupter(r)
	payload := []byte{1, 2, 3}
	m := msg.Message{Type: msg.Gossip, Payload: payload}
	repl := corrupt(1, &m)
	if repl == nil {
		t.Fatal("corrupter left a payload untouched")
	}
	diff := 0
	for i := range payload {
		if repl.Payload[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corrupted bytes = %d, want exactly 1", diff)
	}
	if payload[0] != 1 || payload[1] != 2 || payload[2] != 3 {
		t.Errorf("original payload mutated: %v", payload)
	}
	empty := msg.Message{Type: msg.Gossip}
	if corrupt(1, &empty) != nil {
		t.Error("corrupter tampered an empty payload")
	}
}

func TestTamperBySendersRestricts(t *testing.T) {
	byz := map[id.ID]bool{4: true}
	tam := TamperBySenders(byz, func(_ id.ID, m *msg.Message) *msg.Message {
		repl := *m
		repl.Round = 99
		return &repl
	})
	honest := msg.Message{Type: msg.Gossip, Sender: 1}
	if tam(2, &honest) != nil {
		t.Error("honest sender tampered")
	}
	lying := msg.Message{Type: msg.Gossip, Sender: 4}
	if repl := tam(2, &lying); repl == nil || repl.Round != 99 {
		t.Error("byzantine sender not tampered")
	}
}

func TestReplayerReinjectsStaleRounds(t *testing.T) {
	rc := &record{}
	rp := &Replayer{Rand: rng.New(9), Redeliver: rc.redeliver, Prob: 1, Keep: 4}
	hook := rp.Hook()
	for i := uint64(1); i <= 10; i++ {
		m := msg.Message{Type: msg.Gossip, Sender: 1, Round: i}
		if repl, ok := hook(2, &m); repl != nil || !ok {
			t.Fatal("replayer must pass the original through")
		}
	}
	if rp.Replayed() != 10 || len(rc.msgs) != 10 {
		t.Fatalf("replayed = %d (sink %d), want 10", rp.Replayed(), len(rc.msgs))
	}
	// Replays draw from the bounded ring: only the Keep most recent rounds.
	for _, m := range rc.msgs[len(rc.msgs)-3:] {
		if m.Round < 6 {
			t.Errorf("replayed round %d evicted from a Keep=4 ring over rounds 1..10", m.Round)
		}
	}
	// Control traffic is neither recorded nor replayed.
	rcLen := len(rc.msgs)
	j := msg.Message{Type: msg.Join, Sender: 1}
	hook(2, &j)
	if len(rc.msgs) != rcLen {
		t.Error("replayer recorded control traffic")
	}
}

func TestSynchronizedPreservesResult(t *testing.T) {
	hook := Synchronized(func(_ id.ID, m *msg.Message) (*msg.Message, bool) {
		return nil, m.Round != 3
	})
	m := msg.Message{Round: 3}
	if _, ok := hook(1, &m); ok {
		t.Error("wrapped hook result lost")
	}
}

func TestDeterministicDrawSequence(t *testing.T) {
	// Same seed, same delivery order ⇒ identical fault decisions.
	run := func() []bool {
		inj := Injector{Rand: rng.New(11), Default: Profile{Drop: 0.5}}
		hook := inj.Hook()
		var out []bool
		for i := 0; i < 100; i++ {
			m := msg.Message{Type: msg.Gossip, Round: uint64(i)}
			_, ok := hook(2, &m)
			out = append(out, ok)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault decisions diverge at %d under the same seed", i)
		}
	}
}
