// Package faults composes adversarial fault injection over the Intercept
// seam exposed by both runtimes (netsim.Sim.Intercept, transport's
// Config.Intercept): one hook signature drives drop, delay, duplicate,
// reorder, payload-tamper, SHUFFLE-lie and round-replay faults in the
// simulator and on real sockets.
//
// Determinism: every fault decision draws from a single rng.Rand owned by
// the injector, consumed in delivery order. In the simulator deliveries are
// totally ordered, so a run with the same seed makes the same draws and the
// contract "same seed ⇒ byte-identical traces" holds with injection enabled.
// Over TCP (where delivery order is racy by nature) wrap the hook with
// Synchronized; injection is then safe, just not reproducible — exactly as
// repeated wall-clock runs already are.
//
// Ownership: hooks operate on a private copy of the message struct handed in
// by the runtime. A tamperer must never mutate the slice fields in place —
// they are frozen, shared copy-on-write with every other copy of the fan-out
// — so tamperers build fresh slices (or msg.Clone) and return a replacement
// struct. Duplicates and delayed copies may share the original's slices:
// redelivery only re-reads them.
package faults

import (
	"sync"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/rng"
)

// Hook is the fault-injection seam shared by both runtimes: it observes one
// message about to be delivered to node. Returning (nil, true) delivers the
// original, (repl, true) delivers the replacement, (_, false) suppresses the
// delivery.
type Hook = func(node id.ID, m *msg.Message) (*msg.Message, bool)

// Redeliver re-injects a message into the runtime for delivery to `to` after
// delay ticks, bypassing the hook (netsim.Sim.Redeliver provides it in the
// simulator). Fault artifacts — duplicates, delayed copies, replays — re-enter
// through it so they are never re-intercepted.
type Redeliver = func(from, to id.ID, m msg.Message, delay uint64)

// Tamper mutates one message, Byzantine-style. It returns a replacement
// message (whose slices it owns) or nil to leave the original untouched.
type Tamper = func(node id.ID, m *msg.Message) *msg.Message

// Profile is one link's (or the default) fault mix. Probabilities are in
// [0, 1]; zero fields disable the corresponding fault.
type Profile struct {
	// Drop is the probability a delivery is silently lost.
	Drop float64
	// Duplicate is the probability an extra copy is redelivered, after a
	// uniform extra delay in [0, DupDelay] ticks.
	Duplicate float64
	DupDelay  uint64
	// Delay is the probability the delivery is deferred by a uniform delay in
	// [1, 1+MaxDelay] ticks instead of arriving now — which also reorders it
	// behind traffic scheduled in between.
	Delay    float64
	MaxDelay uint64
}

// Stats counts the faults an Injector has applied.
type Stats struct {
	Inspected  uint64 // messages the hook observed
	Dropped    uint64 // deliveries suppressed
	Duplicated uint64 // extra copies scheduled
	Delayed    uint64 // deliveries deferred (suppressed now, redelivered later)
	Tampered   uint64 // messages replaced by the Tamper function
}

// Injector is a composable fault hook: per-link (or default) drop, duplicate
// and delay probabilities plus an optional Byzantine tamperer, all drawing
// from one deterministic random stream. The zero value is a no-op hook; an
// Injector is not safe for concurrent use (see Synchronized).
type Injector struct {
	// Rand drives every fault decision. Required for any non-zero Profile;
	// seed it from the run's seed to keep injected runs deterministic.
	Rand *rng.Rand
	// Redeliver re-injects duplicates and delayed copies. When nil, the
	// Duplicate and Delay faults are disabled (Drop and Tamper still apply).
	Redeliver Redeliver
	// Default is the fault mix applied to links PerLink does not override.
	Default Profile
	// PerLink, when non-nil, selects the profile for a directed link; a nil
	// result falls back to Default. See LinkProfiles.
	PerLink func(from, to id.ID) *Profile
	// Tamper, when non-nil, may replace a message (Byzantine-lite faults).
	Tamper Tamper
	// Filter, when non-nil, restricts injection: messages for which it
	// returns false pass through untouched (and undrawn — keep the filter
	// deterministic or draws desynchronize across runs).
	Filter func(node id.ID, m *msg.Message) bool

	stats Stats
}

// Hook returns the Injector's fault hook, ready to install as
// netsim.Sim.Intercept or (wrapped in Synchronized) transport
// Config.Intercept.
func (inj *Injector) Hook() Hook { return inj.intercept }

// Stats returns a copy of the fault counters.
func (inj *Injector) Stats() Stats { return inj.stats }

func (inj *Injector) intercept(node id.ID, m *msg.Message) (*msg.Message, bool) {
	inj.stats.Inspected++
	if inj.Filter != nil && !inj.Filter(node, m) {
		return nil, true
	}
	p := &inj.Default
	if inj.PerLink != nil {
		if q := inj.PerLink(m.Sender, node); q != nil {
			p = q
		}
	}
	r := inj.Rand
	if p.Drop > 0 && r.Float64() < p.Drop {
		inj.stats.Dropped++
		return nil, false
	}
	var repl *msg.Message
	if inj.Tamper != nil {
		if t := inj.Tamper(node, m); t != nil {
			inj.stats.Tampered++
			repl = t
			m = t
		}
	}
	if p.Duplicate > 0 && inj.Redeliver != nil && r.Float64() < p.Duplicate {
		inj.stats.Duplicated++
		inj.Redeliver(m.Sender, node, *m, delayDraw(r, p.DupDelay))
	}
	if p.Delay > 0 && inj.Redeliver != nil && r.Float64() < p.Delay {
		inj.stats.Delayed++
		inj.Redeliver(m.Sender, node, *m, 1+delayDraw(r, p.MaxDelay))
		return nil, false
	}
	return repl, true
}

// delayDraw returns a uniform delay in [0, max].
func delayDraw(r *rng.Rand, max uint64) uint64 {
	if max == 0 {
		return 0
	}
	return r.Uint64n(max + 1)
}

// Chain composes hooks left to right: each sees the previous one's
// replacement, any suppression short-circuits.
func Chain(hooks ...Hook) Hook {
	return func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		var repl *msg.Message
		cur := m
		for _, h := range hooks {
			r, ok := h(node, cur)
			if !ok {
				return nil, false
			}
			if r != nil {
				repl, cur = r, r
			}
		}
		return repl, true
	}
}

// Synchronized serializes a hook behind a mutex for the TCP transport, whose
// reader goroutines invoke the hook concurrently. The simulator is
// single-threaded and does not need it.
func Synchronized(h Hook) Hook {
	var mu sync.Mutex
	return func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		mu.Lock()
		defer mu.Unlock()
		return h(node, m)
	}
}

// Tampers composes tamperers in order, each seeing the previous replacement.
func Tampers(ts ...Tamper) Tamper {
	return func(node id.ID, m *msg.Message) *msg.Message {
		var repl *msg.Message
		cur := m
		for _, t := range ts {
			if r := t(node, cur); r != nil {
				repl, cur = r, r
			}
		}
		return repl
	}
}

// TamperBySenders restricts t to messages claiming a sender in byz: the
// Byzantine-lite model where a subset of nodes lies and everyone else is
// honest.
func TamperBySenders(byz map[id.ID]bool, t Tamper) Tamper {
	return func(node id.ID, m *msg.Message) *msg.Message {
		if !byz[m.Sender] {
			return nil
		}
		return t(node, m)
	}
}

// ShuffleLiar returns a tamperer that poisons SHUFFLE/SHUFFLEREPLY exchange
// lists with the three lies core's handler sanitation must reject: the
// receiver's own identifier, a duplicated entry, and a fabricated identifier
// that resolves to no live node.
func ShuffleLiar(r *rng.Rand) Tamper {
	return func(node id.ID, m *msg.Message) *msg.Message {
		if m.Type != msg.Shuffle && m.Type != msg.ShuffleReply {
			return nil
		}
		t := *m
		nodes := make([]id.ID, 0, len(m.Nodes)+3)
		nodes = append(nodes, m.Nodes...)
		nodes = append(nodes, node)
		if len(nodes) > 0 {
			nodes = append(nodes, nodes[r.Intn(len(nodes))])
		}
		nodes = append(nodes, id.ID(1<<40|r.Uint64n(1<<20)))
		t.Nodes = nodes
		return &t
	}
}

// PayloadCorrupter returns a tamperer that flips one byte of broadcast
// payloads. Deliveries still count for the reliability tracker (the protocol
// carries no integrity layer — the fault verifies nothing crashes and
// dissemination metadata stays consistent under corruption).
func PayloadCorrupter(r *rng.Rand) Tamper {
	return func(_ id.ID, m *msg.Message) *msg.Message {
		if (m.Type != msg.Gossip && m.Type != msg.PlumtreeGossip) || len(m.Payload) == 0 {
			return nil
		}
		t := *m
		pl := append([]byte(nil), m.Payload...)
		pl[r.Intn(len(pl))] ^= 0xff
		t.Payload = pl
		return &t
	}
}

// Replayer records broadcast payload messages as they pass the hook and
// re-injects stale ones later: the round-replay fault, which the broadcast
// layers' seen-tables must absorb without double-delivering. Keep bounds the
// memory (a ring of the most recent messages).
type Replayer struct {
	Rand      *rng.Rand
	Redeliver Redeliver
	// Prob is the per-delivery probability of replaying one recorded message
	// to the current receiver.
	Prob float64
	// Keep is the ring capacity (default 64).
	Keep int

	ring     []msg.Message
	next     int
	replayed uint64
}

// Replayed returns how many stale messages were re-injected.
func (rp *Replayer) Replayed() uint64 { return rp.replayed }

// Hook returns the replayer's hook; compose it with an Injector via Chain.
func (rp *Replayer) Hook() Hook {
	return func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		if m.Type == msg.Gossip || m.Type == msg.PlumtreeGossip {
			keep := rp.Keep
			if keep <= 0 {
				keep = 64
			}
			if len(rp.ring) < keep {
				rp.ring = append(rp.ring, *m)
			} else {
				rp.ring[rp.next] = *m
				rp.next = (rp.next + 1) % keep
			}
			if rp.Prob > 0 && rp.Redeliver != nil && rp.Rand.Float64() < rp.Prob {
				stale := rp.ring[rp.Rand.Intn(len(rp.ring))]
				rp.Redeliver(stale.Sender, node, stale, 0)
				rp.replayed++
			}
		}
		return nil, true
	}
}
