package faults

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/rng"
)

func TestPoissonChurnDeterministicAndBounded(t *testing.T) {
	gen := func() []ChurnEvent { return PoissonChurn(rng.New(1), 2.0, 100) }
	a, b := gen(), gen()
	if len(a) == 0 {
		t.Fatal("empty churn trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	last := uint64(0)
	for i, ev := range a {
		if ev != b[i] {
			t.Fatalf("traces diverge at %d under the same seed", i)
		}
		if ev.At >= 100 {
			t.Errorf("event %d at %d, beyond horizon", i, ev.At)
		}
		if ev.At < last {
			t.Errorf("trace not time-ordered at %d", i)
		}
		last = ev.At
	}
	// Mean gap 2.0 over horizon 100 ⇒ ~50 events.
	if len(a) < 25 || len(a) > 100 {
		t.Errorf("trace has %d events, want ~50", len(a))
	}
}

func TestFlashCrowdAllJoinsAtOneTick(t *testing.T) {
	crowd := FlashCrowd(7, 30)
	if len(crowd) != 30 {
		t.Fatalf("crowd size = %d", len(crowd))
	}
	for _, ev := range crowd {
		if !ev.Join || ev.At != 7 {
			t.Errorf("unexpected event %+v", ev)
		}
	}
}

func TestMergeTracesStableOrder(t *testing.T) {
	a := []ChurnEvent{{At: 1, Join: true}, {At: 5, Join: true}}
	b := []ChurnEvent{{At: 1, Join: false}, {At: 3, Join: false}}
	merged := MergeTraces(a, b)
	want := []ChurnEvent{{At: 1, Join: true}, {At: 1, Join: false}, {At: 3, Join: false}, {At: 5, Join: true}}
	if len(merged) != len(want) {
		t.Fatalf("merged length = %d", len(merged))
	}
	for i, ev := range merged {
		if ev != want[i] {
			t.Errorf("merged[%d] = %+v, want %+v", i, ev, want[i])
		}
	}
}

func TestLinkProfilesDeterministicPerLink(t *testing.T) {
	max := Profile{Drop: 0.1, Duplicate: 0.2, DupDelay: 3, Delay: 0.4, MaxDelay: 5}
	a := LinkProfiles(1, max)
	b := LinkProfiles(1, max)
	p1 := a(1, 2)
	if p2 := a(1, 2); p1 != p2 {
		t.Error("profile not cached per link")
	}
	q1 := b(1, 2)
	if *p1 != *q1 {
		t.Errorf("same (seed, link) produced different profiles: %+v vs %+v", *p1, *q1)
	}
	if r := a(2, 1); *r == *p1 {
		t.Error("reverse direction unexpectedly identical (directed links must draw independently)")
	}
	if p1.Drop < 0 || p1.Drop > max.Drop || p1.Delay > max.Delay {
		t.Errorf("profile out of bounds: %+v", *p1)
	}
	if p1.DupDelay != max.DupDelay || p1.MaxDelay != max.MaxDelay {
		t.Errorf("delay bounds not inherited: %+v", *p1)
	}
}

func TestPickFraction(t *testing.T) {
	ids := make([]id.ID, 100)
	for i := range ids {
		ids[i] = id.ID(i + 1)
	}
	picked := PickFraction(rng.New(3), ids, 0.1)
	if len(picked) != 10 {
		t.Errorf("picked %d, want 10", len(picked))
	}
	for n := range picked {
		if n < 1 || n > 100 {
			t.Errorf("picked unknown id %v", n)
		}
	}
	if same := PickFraction(rng.New(3), ids, 0.1); len(same) == len(picked) {
		for n := range picked {
			if !same[n] {
				t.Error("same seed picked a different set")
				break
			}
		}
	}
	// The input slice is not reordered.
	for i := range ids {
		if ids[i] != id.ID(i+1) {
			t.Fatal("PickFraction mutated its input")
		}
	}
	if all := PickFraction(rng.New(4), ids, 2.0); len(all) != 100 {
		t.Errorf("frac > 1 picked %d, want all 100", len(all))
	}
}
