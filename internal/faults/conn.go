package faults

import (
	"fmt"
	"net"
	"sync"
	"syscall"
	"time"

	"hyparview/internal/rng"
)

// This file extends the message-level Intercept seam down to the wire: a
// seeded net.Conn wrapper (Conn) plus the Sockets controller that decides,
// per dial and per write, whether to inject a socket-level fault — dial
// failures, connection resets, partial writes, stalls, and a directed
// blackhole that models a peer whose process wedged while its kernel keeps
// ACKing. The transport mounts it through Config.Dial and Config.WrapConn.
//
// Determinism matches the package contract for TCP: all draws come from one
// mutex-guarded rng.Rand in arrival order, so fault mixes are seed-stable in
// distribution even though socket scheduling makes exact sequences racy.

// Dialer matches transport.Config.Dial: one dial attempt bounded by timeout.
type Dialer = func(addr string, timeout time.Duration) (net.Conn, error)

// ConnPlan is the socket-level fault mix. Probabilities are in [0, 1]; zero
// fields disable the corresponding fault.
type ConnPlan struct {
	// DialFail is the probability one dial attempt fails outright.
	DialFail float64
	// DialDelay stalls every dial attempt before it proceeds — enough to
	// hold a dial-race window open deterministically.
	DialDelay time.Duration
	// Reset is the per-write probability the connection is closed under the
	// writer mid-stream (the remote observes an abrupt close; the writer
	// gets a write-on-closed error).
	Reset float64
	// Partial is the per-write probability only a prefix of the buffer is
	// written before the connection errors — the torn-frame case a framed
	// protocol must treat as connection death.
	Partial float64
	// Stall is the per-write probability the write sleeps StallDelay first:
	// head-of-line latency injection without breakage.
	Stall      float64
	StallDelay time.Duration
}

// ConnStats counts socket-level faults injected.
type ConnStats struct {
	DialsFailed uint64 // dial attempts rejected
	Resets      uint64 // connections closed mid-write
	Partials    uint64 // torn writes
	Stalls      uint64 // delayed writes
	Blackholed  uint64 // reads/writes swallowed while the blackhole was on
}

// Sockets is the controller for socket-level fault injection: it owns the
// seeded random stream, the live fault plan, and the blackhole switch. Safe
// for concurrent use — wrapped connections from many goroutines draw from
// it under one mutex.
type Sockets struct {
	mu    sync.Mutex
	r     *rng.Rand
	plan  ConnPlan
	black bool
	// failDials and resetWrites are directed one-shot counters for
	// deterministic tests: each forces the fault on the next n operations
	// regardless of the probabilistic plan.
	failDials   int
	resetWrites int
	stats       ConnStats
}

// NewSockets builds a controller whose fault decisions draw from seed.
func NewSockets(seed uint64) *Sockets {
	return &Sockets{r: rng.New(seed)}
}

// SetPlan replaces the live fault plan (safe mid-run).
func (s *Sockets) SetPlan(p ConnPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.plan = p
}

// FailNextDials forces the next n dial attempts to fail, ahead of any
// probabilistic decision — the deterministic handle for backoff tests.
func (s *Sockets) FailNextDials(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failDials = n
}

// ResetNextWrites forces a reset on the next n writes across all wrapped
// connections.
func (s *Sockets) ResetNextWrites(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetWrites = n
}

// Blackhole flips the blackhole switch. While on, every wrapped connection
// goes silent: writes report success and vanish, reads consume and discard
// whatever arrives (the kernel keeps ACKing, so remote writers do not block
// — precisely the stalled-process failure TCP cannot surface on its own,
// and the case the RTT-probe suspicion machinery exists for). Turning the
// switch off restores traffic for subsequent calls; a read already parked
// inside the blackhole stays dark until its connection closes.
func (s *Sockets) Blackhole(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.black = on
}

// Stats snapshots the injected-fault counters.
func (s *Sockets) Stats() ConnStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Sockets) blackholed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.black
}

// dialVerdict decides one dial attempt; it returns the injected delay and
// whether the dial should fail.
func (s *Sockets) dialVerdict() (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delay := s.plan.DialDelay
	if s.failDials > 0 {
		s.failDials--
		s.stats.DialsFailed++
		return delay, true
	}
	if s.plan.DialFail > 0 && s.r.Float64() < s.plan.DialFail {
		s.stats.DialsFailed++
		return delay, true
	}
	return delay, false
}

// writeFault is the verdict for one write.
type writeFault uint8

const (
	writeOK writeFault = iota
	writeReset
	writePartial
	writeStall
)

func (s *Sockets) writeVerdict() writeFault {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.resetWrites > 0 {
		s.resetWrites--
		s.stats.Resets++
		return writeReset
	}
	switch {
	case s.plan.Reset > 0 && s.r.Float64() < s.plan.Reset:
		s.stats.Resets++
		return writeReset
	case s.plan.Partial > 0 && s.r.Float64() < s.plan.Partial:
		s.stats.Partials++
		return writePartial
	case s.plan.Stall > 0 && s.r.Float64() < s.plan.Stall:
		s.stats.Stalls++
		return writeStall
	}
	return writeOK
}

func (s *Sockets) countBlackholed() {
	s.mu.Lock()
	s.stats.Blackholed++
	s.mu.Unlock()
}

// Dialer wraps base (nil for plain TCP) with dial-failure injection and the
// connection wrapper, for transport.Config.Dial.
func (s *Sockets) Dialer(base Dialer) Dialer {
	if base == nil {
		base = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		delay, fail := s.dialVerdict()
		if delay > 0 {
			time.Sleep(delay)
		}
		if fail {
			return nil, fmt.Errorf("faults: injected dial failure to %s", addr)
		}
		c, err := base(addr, timeout)
		if err != nil {
			return nil, err
		}
		return s.Wrap(c, false), nil
	}
}

// Wrap wraps one connection with this controller's fault injection, for
// transport.Config.WrapConn. Wrapping is idempotent.
func (s *Sockets) Wrap(c net.Conn, _ bool) net.Conn {
	if fc, ok := c.(*Conn); ok && fc.s == s {
		return c
	}
	return &Conn{Conn: c, s: s, done: make(chan struct{})}
}

// Conn is a net.Conn with socket-level fault injection: the wire half of the
// fault seam (the Intercept hook is the message half). It forwards
// SyscallConn from the underlying connection so the transport's peek-based
// health check still sees the true kernel socket state — a blackhole hides
// in-flight bytes, not the socket itself.
type Conn struct {
	net.Conn
	s        *Sockets
	onceDone sync.Once
	done     chan struct{}
}

var _ syscall.Conn = (*Conn)(nil)

// errInjected is the error surfaced for injected resets and torn writes.
var errInjected = fmt.Errorf("faults: injected connection failure")

// Read passes through until the blackhole engages; a blackholed read
// consumes and discards arriving bytes forever (silence, not EOF), parking
// on connection close. A read already blocked inside the kernel when the
// switch flips delivers its data normally — in-flight bytes escape, exactly
// like a real partition cutting over mid-stream.
func (c *Conn) Read(p []byte) (int, error) {
	if !c.s.blackholed() {
		return c.Conn.Read(p)
	}
	c.s.countBlackholed()
	for {
		n, err := c.Conn.Read(p)
		_ = n
		if err != nil {
			// The remote may be gone, but a blackhole is silence: park until
			// this side deliberately closes the connection.
			<-c.done
			return 0, net.ErrClosed
		}
	}
}

// Write injects the per-write verdict: blackholed writes vanish
// successfully, resets close the connection under the writer, partial
// writes tear the frame, stalls add head-of-line latency.
func (c *Conn) Write(p []byte) (int, error) {
	if c.s.blackholed() {
		c.s.countBlackholed()
		return len(p), nil
	}
	switch c.s.writeVerdict() {
	case writeReset:
		_ = c.Conn.Close()
		return 0, errInjected
	case writePartial:
		if len(p) > 1 {
			_, _ = c.Conn.Write(p[:len(p)/2])
		}
		_ = c.Conn.Close()
		return 0, errInjected
	case writeStall:
		c.s.mu.Lock()
		d := c.s.plan.StallDelay
		c.s.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
	}
	return c.Conn.Write(p)
}

// Close releases any read parked in the blackhole along with the underlying
// connection.
func (c *Conn) Close() error {
	c.onceDone.Do(func() { close(c.done) })
	return c.Conn.Close()
}

// SyscallConn forwards the raw descriptor so peek-based health checks see
// the true socket state.
func (c *Conn) SyscallConn() (syscall.RawConn, error) {
	if sc, ok := c.Conn.(syscall.Conn); ok {
		return sc.SyscallConn()
	}
	return nil, fmt.Errorf("faults: underlying conn exposes no raw descriptor")
}
