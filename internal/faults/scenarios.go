package faults

// Scenario generators: deterministic descriptions of hostile runs — churn
// traces, flash crowds, partition plans, per-link fault surfaces — consumed
// by the experiment harness (internal/sim's adversarial suite). Generators
// are pure functions of their seeded rng, so a scenario is replayable from
// the run's seed alone.

import (
	"math"
	"sort"

	"hyparview/internal/id"
	"hyparview/internal/rng"
)

// ChurnEvent is one membership change in a generated trace. The time unit is
// whatever the consumer drives the run with (virtual ticks or cycle indices).
type ChurnEvent struct {
	At   uint64
	Join bool // true: a fresh node joins; false: a random live node crashes
}

// PoissonChurn generates a churn trace over [0, horizon): events arrive as a
// Poisson process with mean inter-arrival gap meanGap, each independently a
// join or a crash with equal probability — the classic churn model where
// session starts and ends are memoryless.
func PoissonChurn(r *rng.Rand, meanGap float64, horizon uint64) []ChurnEvent {
	var out []ChurnEvent
	at := 0.0
	for {
		// Exponential inter-arrival via inverse transform; 1-u is in (0, 1].
		at += -math.Log(1-r.Float64()) * meanGap
		if at >= float64(horizon) {
			return out
		}
		out = append(out, ChurnEvent{At: uint64(at), Join: r.Bool()})
	}
}

// FlashCrowd is count simultaneous joins at tick at: the correlated-arrival
// burst a Poisson trace never produces.
func FlashCrowd(at uint64, count int) []ChurnEvent {
	out := make([]ChurnEvent, count)
	for i := range out {
		out[i] = ChurnEvent{At: at, Join: true}
	}
	return out
}

// MergeTraces merges churn traces into one time-ordered trace. The sort is
// stable so same-tick events keep their per-trace order.
func MergeTraces(traces ...[]ChurnEvent) []ChurnEvent {
	var out []ChurnEvent
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// PartitionPlan describes an asymmetric network cut that heals later: a
// MinorityFrac-sized side is split off at CutAt and the cut is removed at
// HealAt. Consumers arrange for traffic (e.g. an in-flight broadcast) to
// straddle the window.
type PartitionPlan struct {
	CutAt        uint64
	HealAt       uint64
	MinorityFrac float64
}

// AsymmetricPartition is a convenience constructor for PartitionPlan.
func AsymmetricPartition(cutAt, healAt uint64, minorityFrac float64) PartitionPlan {
	return PartitionPlan{CutAt: cutAt, HealAt: healAt, MinorityFrac: minorityFrac}
}

// LinkProfiles derives a deterministic per-link fault surface: every directed
// link gets its own profile with rates drawn uniformly in [0, max.<rate>],
// fixed for the run — some links lossy, some reordering, most mild — keyed
// only by (seed, from, to). Profiles are cached per link (memory grows with
// the set of links actually carrying traffic, i.e. the overlay's edges).
func LinkProfiles(seed uint64, max Profile) func(from, to id.ID) *Profile {
	cache := make(map[[2]id.ID]*Profile)
	return func(from, to id.ID) *Profile {
		k := [2]id.ID{from, to}
		if p, ok := cache[k]; ok {
			return p
		}
		r := rng.New(seed ^ uint64(from)*0x9e3779b97f4a7c15 ^ uint64(to)*0xbf58476d1ce4e5b9)
		p := &Profile{
			Drop:      r.Float64() * max.Drop,
			Duplicate: r.Float64() * max.Duplicate,
			DupDelay:  max.DupDelay,
			Delay:     r.Float64() * max.Delay,
			MaxDelay:  max.MaxDelay,
		}
		cache[k] = p
		return p
	}
}

// PickFraction selects ⌈frac·len(ids)⌉ distinct identifiers uniformly at
// random: the harness helper for choosing Byzantine senders or crash victims.
func PickFraction(r *rng.Rand, ids []id.ID, frac float64) map[id.ID]bool {
	k := int(frac*float64(len(ids)) + 0.5)
	if k > len(ids) {
		k = len(ids)
	}
	picked := make(map[id.ID]bool, k)
	scratch := append([]id.ID(nil), ids...)
	r.Shuffle(len(scratch), func(i, j int) { scratch[i], scratch[j] = scratch[j], scratch[i] })
	for _, n := range scratch[:k] {
		picked[n] = true
	}
	return picked
}
