package faults

import (
	"errors"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"
)

// tcpPair returns a connected loopback TCP pair (client, server).
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = r.c.Close()
	})
	return client, r.c
}

func TestFailNextDialsIsDirected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			_ = c.Close()
		}
	}()

	s := NewSockets(1)
	dial := s.Dialer(nil)
	s.FailNextDials(2)
	for i := 0; i < 2; i++ {
		if _, err := dial(ln.Addr().String(), time.Second); err == nil {
			t.Fatalf("dial %d succeeded under FailNextDials", i)
		}
	}
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial after the directed failures: %v", err)
	}
	defer c.Close()
	if _, ok := c.(*Conn); !ok {
		t.Error("dialer did not wrap the successful connection")
	}
	if got := s.Stats().DialsFailed; got != 2 {
		t.Errorf("DialsFailed = %d, want 2", got)
	}
}

func TestResetNextWritesClosesUnderWriter(t *testing.T) {
	client, server := tcpPair(t)
	s := NewSockets(2)
	wc := s.Wrap(client, false)

	s.ResetNextWrites(1)
	if _, err := wc.Write([]byte("doomed")); err == nil {
		t.Fatal("reset write reported success")
	}
	// The underlying connection is closed under the writer: the remote sees
	// the stream end.
	_ = server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := server.Read(buf); err == nil {
		if _, err2 := server.Read(buf); err2 == nil {
			t.Error("remote still readable after an injected reset")
		}
	}
	if got := s.Stats().Resets; got != 1 {
		t.Errorf("Resets = %d, want 1", got)
	}
}

func TestPartialWriteTearsTheFrame(t *testing.T) {
	client, server := tcpPair(t)
	s := NewSockets(3)
	s.SetPlan(ConnPlan{Partial: 1})
	wc := s.Wrap(client, false)

	payload := make([]byte, 100)
	if _, err := wc.Write(payload); err == nil {
		t.Fatal("partial write reported success")
	}
	_ = server.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, err := io.ReadAll(server)
	if err != nil && !errors.Is(err, io.EOF) {
		t.Fatalf("reading the torn stream: %v", err)
	}
	if len(got) == 0 || len(got) >= len(payload) {
		t.Errorf("remote received %d bytes of a %d-byte torn write, want a strict prefix > 0", len(got), len(payload))
	}
	if s.Stats().Partials != 1 {
		t.Errorf("Partials = %d, want 1", s.Stats().Partials)
	}
}

func TestStallDelaysButDelivers(t *testing.T) {
	client, server := tcpPair(t)
	s := NewSockets(4)
	s.SetPlan(ConnPlan{Stall: 1, StallDelay: 60 * time.Millisecond})
	wc := s.Wrap(client, false)

	start := time.Now()
	if _, err := wc.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("stalled write returned after %v, want >= ~60ms", elapsed)
	}
	_ = server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "slow" {
		t.Errorf("stalled write not delivered intact: %q, %v", buf, err)
	}
	if s.Stats().Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", s.Stats().Stalls)
	}
}

func TestBlackholeSwallowsBothDirections(t *testing.T) {
	client, server := tcpPair(t)
	s := NewSockets(5)
	wc := s.Wrap(client, false)
	s.Blackhole(true)

	// Writes report success and vanish.
	if n, err := wc.Write([]byte("into the void")); err != nil || n != 13 {
		t.Fatalf("blackholed write: n=%d err=%v, want full success", n, err)
	}
	_ = server.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 32)
	if n, err := server.Read(buf); err == nil {
		t.Errorf("remote received %d blackholed bytes", n)
	}

	// Reads consume and discard: data sent by the remote disappears, and the
	// reader stays parked through the remote's close (silence, not EOF).
	readRet := make(chan error, 1)
	go func() {
		_, err := wc.Read(buf)
		readRet <- err
	}()
	if _, err := server.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	_ = server.Close()
	select {
	case err := <-readRet:
		t.Fatalf("blackholed read returned (%v) on remote data/close; want parked", err)
	case <-time.After(100 * time.Millisecond):
	}
	// A local deliberate close releases the parked read.
	_ = wc.Close()
	select {
	case err := <-readRet:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("released read: %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked read never released by Close")
	}
	if s.Stats().Blackholed == 0 {
		t.Error("Blackholed = 0 after swallowed traffic")
	}
}

func TestBlackholeOffRestoresTraffic(t *testing.T) {
	client, server := tcpPair(t)
	s := NewSockets(6)
	wc := s.Wrap(client, false)
	s.Blackhole(true)
	if _, err := wc.Write([]byte("void")); err != nil {
		t.Fatal(err)
	}
	s.Blackhole(false)
	if _, err := wc.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	_ = server.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(server, buf); err != nil || string(buf) != "back" {
		t.Errorf("post-blackhole write not delivered: %q, %v", buf, err)
	}
}

func TestWrapIdempotentAndForwardsRawConn(t *testing.T) {
	client, _ := tcpPair(t)
	s := NewSockets(7)
	wc := s.Wrap(client, false)
	if s.Wrap(wc, true) != wc {
		t.Error("re-wrapping a wrapped connection built a second layer")
	}
	sc, ok := wc.(syscall.Conn)
	if !ok {
		t.Fatal("wrapped connection does not implement syscall.Conn")
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		t.Fatalf("SyscallConn: %v", err)
	}
	var fd uintptr
	if err := raw.Control(func(f uintptr) { fd = f }); err != nil {
		t.Fatalf("Control: %v", err)
	}
	if fd == 0 {
		t.Error("forwarded raw descriptor is zero")
	}
}

// TestVerdictsSeedStable pins determinism: two controllers with the same
// seed and plan produce the same dial- and write-verdict sequences.
func TestVerdictsSeedStable(t *testing.T) {
	plan := ConnPlan{DialFail: 0.3, Reset: 0.2, Partial: 0.2, Stall: 0.2}
	run := func() ([]bool, []writeFault) {
		s := NewSockets(42)
		s.SetPlan(plan)
		dials := make([]bool, 64)
		writes := make([]writeFault, 64)
		for i := range dials {
			_, dials[i] = s.dialVerdict()
		}
		for i := range writes {
			writes[i] = s.writeVerdict()
		}
		return dials, writes
	}
	d1, w1 := run()
	d2, w2 := run()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("dial verdict %d diverged across same-seed controllers", i)
		}
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("write verdict %d diverged across same-seed controllers", i)
		}
	}
}

// TestConcurrentVerdictsSafe exercises the controller's mutex under -race:
// many connections drawing verdicts and flipping the blackhole concurrently.
func TestConcurrentVerdictsSafe(t *testing.T) {
	s := NewSockets(8)
	s.SetPlan(ConnPlan{Reset: 0.1, Partial: 0.1, Stall: 0.1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch g % 4 {
				case 0:
					s.writeVerdict()
				case 1:
					s.dialVerdict()
				case 2:
					s.Blackhole(i%2 == 0)
				case 3:
					_ = s.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	s.Blackhole(false)
}
