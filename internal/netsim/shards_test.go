package netsim

// Engine-level pins for the sharded wave/barrier engine (shards.go):
// cross-shard-count trace equality on raw rings, hook re-entry (Redeliver
// from an Intercept hook) while waves run on shard goroutines, and a
// parallel-wave exerciser that the CI -race step leans on. Tests that need
// the concurrent path raise GOMAXPROCS before construction: NewSharded
// captures it, and a single-P runtime would otherwise take the (identical in
// outcome) serial wave path.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// ringTrace runs a TTL ring on the given engine and returns the Tap trace.
func ringTrace(shards, n, msgs, hops int) (string, Stats) {
	s := buildRingSharded(n, shards)
	var b strings.Builder
	s.Tap = func(from, to id.ID, m msg.Message) {
		fmt.Fprintf(&b, "%d>%d:%d@%d\n", from, to, m.Round, s.Now())
	}
	for k := 0; k < msgs; k++ {
		src := id.ID(k%n + 1)
		dst := id.ID(uint64(src)%uint64(n) + 1)
		_ = s.Inject(src, dst, msg.Message{Type: msg.Gossip, Round: uint64(k), TTL: uint8(hops)})
	}
	s.Drain()
	return b.String(), s.Stats()
}

func TestShardedMatchesLegacyEngineTrace(t *testing.T) {
	ref, refStats := ringTrace(1, 200, 96, 16)
	if ref == "" {
		t.Fatal("empty reference trace")
	}
	for _, shards := range []int{2, 4, 8} {
		got, gotStats := ringTrace(shards, 200, 96, 16)
		if got != ref {
			t.Errorf("shards=%d: trace diverged from the single-shard engine", shards)
		}
		if gotStats != refStats {
			t.Errorf("shards=%d: stats diverged: %+v vs %+v", shards, gotStats, refStats)
		}
	}
}

func TestShardedHookReentryRedeliver(t *testing.T) {
	// The regression the wave design must hold: an Intercept hook calling
	// Redeliver while multi-event waves are in flight. Hooks run in the
	// coordinator pre-pass, so re-entry sequences immediately and
	// deterministically; the duplicated copies land in the instant's next
	// wave, bypass the hook, and are delivered by shard goroutines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	run := func() (string, Stats, int) {
		const n = 128 // one injected wave of n events: over parallelMinWave
		s := NewSharded(3, 4)
		recs := make([]*recorder, n)
		for i := 0; i < n; i++ {
			recs[i] = addRecorder(s, id.ID(i+1))
		}
		hookCalls := 0
		s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
			hookCalls++
			if err := s.Redeliver(m.Sender, node, *m, 0); err != nil {
				t.Fatalf("Redeliver from hook: %v", err)
			}
			return nil, true
		}
		var b strings.Builder
		s.Tap = func(from, to id.ID, m msg.Message) {
			fmt.Fprintf(&b, "%d>%d:%d@%d\n", from, to, m.Round, s.Now())
		}
		for i := 0; i < n; i++ {
			src := id.ID(i + 1)
			dst := id.ID((i+1)%n + 1)
			if err := s.Inject(src, dst, msg.Message{Type: msg.Gossip, Sender: src, Round: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		s.Drain()
		return b.String(), s.Stats(), hookCalls
	}

	trace, st, hookCalls := run()
	if hookCalls != 128 {
		t.Errorf("hook ran %d times, want 128 (redeliveries must be exempt)", hookCalls)
	}
	if st.Delivered != 256 {
		t.Errorf("Delivered = %d, want 256 (originals + duplicates)", st.Delivered)
	}
	if st.Redelivered != 128 {
		t.Errorf("Redelivered = %d, want 128", st.Redelivered)
	}
	trace2, st2, _ := run()
	if trace != trace2 || st != st2 {
		t.Error("hook re-entry run is not deterministic under a fixed seed")
	}
}

func TestShardedParallelWavesUnderChurn(t *testing.T) {
	// The -race exerciser: large waves delivered by 8 shard goroutines on a
	// multi-P runtime, with a fault hook active (coordinator pre-pass), churn
	// between drains (Fail/Revive with parked-timer re-scheduling), and
	// timers armed from inside wave deliveries.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	// TTL-bounded forwarders (ringProc) keep waves alive a few hops without
	// looping forever.
	const n = 512
	s := NewSharded(7, 8)
	for i := 0; i < n; i++ {
		next := id.ID((i+1+i%7)%n + 1)
		s.Add(id.ID(i+1), func(env peer.Env) peer.Process {
			return &ringProc{env: env, next: next}
		})
	}
	drops := 0
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		if m.Round%17 == 0 {
			drops++
			return nil, false
		}
		return nil, true
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < n; i++ {
			src := id.ID(i + 1)
			dst := id.ID((i+round+1)%n + 1)
			_ = s.Inject(src, dst, msg.Message{Type: msg.Gossip, Sender: src, Round: uint64(round*n + i), TTL: 3})
		}
		s.Drain()
		// Churn: kill a stripe, revive it next round.
		for i := round * 20; i < round*20+20; i++ {
			s.Fail(id.ID(i%n + 1))
		}
		s.Drain()
		for i := round * 20; i < round*20+20; i++ {
			s.Revive(id.ID(i%n + 1))
		}
	}
	s.Drain()
	if drops == 0 {
		t.Error("fault hook never fired")
	}
	if st := s.Stats(); st.Delivered == 0 || st.FaultDropped == 0 {
		t.Errorf("degenerate churn run: %+v", st)
	}
}
