// Package netsim is a deterministic discrete-event simulator for
// peer-to-peer protocols: this repository's stand-in for PeerSim, the
// simulator used by the paper's evaluation (§5).
//
// Model:
//
//   - Nodes are identified by id.ID and host a peer.Process.
//   - Send enqueues a message onto a global FIFO queue; Drain pops and
//     delivers messages one at a time, synchronously, until the queue is
//     empty. Within one Drain the simulation is single-threaded and
//     completely deterministic given the seed.
//   - Send and Probe to a failed node return peer.ErrPeerDown to the caller
//     immediately. This models TCP's connect/reset failure signal, the
//     failure detector HyParView relies on. Lossy protocols simply ignore
//     the error, modelling fire-and-forget datagrams.
//   - RunCycle invokes OnCycle on every live node in a seeded random order,
//     draining the queue after each node, mirroring PeerSim's cycle-driven
//     mode with immediate message processing.
//
// The simulator is not safe for concurrent use; experiments own one Sim each.
package netsim

import (
	"fmt"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/rng"
)

// event is one queued message delivery. at/seq order deliveries when a
// latency model is installed; in FIFO mode both stay zero/monotonic.
type event struct {
	from, to id.ID
	m        msg.Message
	at       uint64 // virtual delivery time
	seq      uint64 // tiebreaker preserving send order
}

// node is the simulator's per-node bookkeeping.
type node struct {
	proc  peer.Process
	rand  *rng.Rand
	alive bool
}

// Stats aggregates counters over the lifetime of a Sim.
type Stats struct {
	// Sent counts successful Send calls (message enqueued).
	Sent uint64
	// Delivered counts messages handed to a live process.
	Delivered uint64
	// Dropped counts messages whose destination died after enqueue.
	Dropped uint64
	// SendFailures counts Send/Probe calls rejected with ErrPeerDown.
	SendFailures uint64
	// BytesSent sums the wire-encoded size of every enqueued message,
	// supporting the packet-overhead measurements the paper planned for
	// PlanetLab (§6).
	BytesSent uint64
}

// Sim is a deterministic event-driven network simulator.
type Sim struct {
	rand  *rng.Rand
	nodes map[id.ID]*node
	order []id.ID // insertion order; basis for deterministic iteration
	queue []event
	head  int
	stats Stats

	// watchers maps a watched node to the set of nodes holding an open
	// connection to it; when it fails, live watchers implementing
	// peer.FailureObserver receive OnPeerDown (a TCP reset, delivered at
	// the next Drain).
	watchers     map[id.ID]map[id.ID]struct{}
	pendingDowns []id.ID

	// partition, when non-nil, assigns nodes to network partitions: traffic
	// between different partition groups fails exactly like traffic to a
	// crashed node (TCP connects time out across the cut). Nodes absent
	// from the map are in group 0.
	partition map[id.ID]int

	// MaxQueue bounds the number of in-flight events as a safety net
	// against protocol bugs that generate message storms. Zero means the
	// default (64M events).
	MaxQueue int

	// Tap, when non-nil, observes every delivered message (after liveness
	// filtering, before the process handles it). Used by tests and the
	// trace recorder; it must not mutate the simulation.
	Tap func(from, to id.ID, m msg.Message)

	// Latency, when non-nil, switches the simulator from FIFO delivery to
	// event-driven virtual time: every message is delayed by
	// Latency(from, to) abstract ticks and deliveries happen in timestamp
	// order (send order breaks ties). The function may draw from the rand
	// it is handed to model jitter; determinism is preserved. The paper's
	// experiments measure hops, not wall time, and run in FIFO mode.
	Latency func(from, to id.ID, r *rng.Rand) uint64

	now   uint64 // virtual clock (advances only in latency mode)
	seq   uint64 // send sequence for deterministic tie-breaking
	lheap []event
}

// New returns an empty simulator seeded with seed.
func New(seed uint64) *Sim {
	return &Sim{
		rand:     rng.New(seed),
		nodes:    make(map[id.ID]*node),
		watchers: make(map[id.ID]map[id.ID]struct{}),
	}
}

// Endpoint is the peer.Env handed to a process at construction time.
type Endpoint struct {
	sim  *Sim
	self id.ID
	rand *rng.Rand
}

var _ peer.Env = (*Endpoint)(nil)

// Self returns the identifier of the endpoint's node.
func (e *Endpoint) Self() id.ID { return e.self }

// Rand returns the node's private random stream.
func (e *Endpoint) Rand() *rng.Rand { return e.rand }

// Send enqueues m for delivery to dst, or returns peer.ErrPeerDown if dst has
// already failed (TCP-style synchronous failure detection).
func (e *Endpoint) Send(dst id.ID, m msg.Message) error {
	return e.sim.send(e.self, dst, m)
}

// Probe reports whether a connection to dst could be established.
func (e *Endpoint) Probe(dst id.ID) error {
	n, ok := e.sim.nodes[dst]
	if !ok || !n.alive || !e.sim.reachable(e.self, dst) {
		e.sim.stats.SendFailures++
		return fmt.Errorf("probe %v: %w", dst, peer.ErrPeerDown)
	}
	return nil
}

// Watch registers this node for failure notifications about dst, modelling
// an open TCP connection.
func (e *Endpoint) Watch(dst id.ID) {
	ws := e.sim.watchers[dst]
	if ws == nil {
		ws = make(map[id.ID]struct{}, 4)
		e.sim.watchers[dst] = ws
	}
	ws[e.self] = struct{}{}
}

// Unwatch cancels a Watch, modelling closing the connection.
func (e *Endpoint) Unwatch(dst id.ID) {
	if ws := e.sim.watchers[dst]; ws != nil {
		delete(ws, e.self)
		if len(ws) == 0 {
			delete(e.sim.watchers, dst)
		}
	}
}

// Add registers a new live node and constructs its process via factory,
// which receives the node's environment. Add panics on duplicate ids: that
// is always a harness bug.
func (s *Sim) Add(nodeID id.ID, factory func(peer.Env) peer.Process) {
	if nodeID.IsNil() {
		panic("netsim: cannot add nil node id")
	}
	if _, dup := s.nodes[nodeID]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", nodeID))
	}
	ep := &Endpoint{sim: s, self: nodeID, rand: s.rand.Split()}
	s.nodes[nodeID] = &node{proc: factory(ep), rand: ep.rand, alive: true}
	s.order = append(s.order, nodeID)
}

// send implements Endpoint.Send.
func (s *Sim) send(from, to id.ID, m msg.Message) error {
	dst, ok := s.nodes[to]
	if !ok || !dst.alive || !s.reachable(from, to) {
		s.stats.SendFailures++
		return fmt.Errorf("send %v->%v: %w", from, to, peer.ErrPeerDown)
	}
	limit := s.MaxQueue
	if limit <= 0 {
		limit = 64 << 20
	}
	if len(s.queue)-s.head+len(s.lheap) >= limit {
		panic("netsim: event queue limit exceeded (message storm?)")
	}
	s.seq++
	ev := event{from: from, to: to, m: m, seq: s.seq}
	if s.Latency != nil {
		ev.at = s.now + s.Latency(from, to, s.rand)
		s.pushEvent(ev)
	} else {
		s.queue = append(s.queue, ev)
	}
	s.stats.Sent++
	s.stats.BytesSent += uint64(msg.EncodedSize(m))
	return nil
}

// Now returns the virtual clock; it only advances in latency mode.
func (s *Sim) Now() uint64 { return s.now }

// pushEvent inserts ev into the latency min-heap (ordered by at, then seq).
func (s *Sim) pushEvent(ev event) {
	s.lheap = append(s.lheap, ev)
	i := len(s.lheap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s.lheap[i], s.lheap[parent]) {
			break
		}
		s.lheap[i], s.lheap[parent] = s.lheap[parent], s.lheap[i]
		i = parent
	}
}

// popEvent removes the earliest event from the latency heap.
func (s *Sim) popEvent() event {
	top := s.lheap[0]
	last := len(s.lheap) - 1
	s.lheap[0] = s.lheap[last]
	s.lheap = s.lheap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s.lheap) && eventLess(s.lheap[l], s.lheap[smallest]) {
			smallest = l
		}
		if r < len(s.lheap) && eventLess(s.lheap[r], s.lheap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s.lheap[i], s.lheap[smallest] = s.lheap[smallest], s.lheap[i]
		i = smallest
	}
}

func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Inject enqueues a message from outside the simulation (the experiment
// harness), e.g. the initial JOIN or a broadcast trigger.
func (s *Sim) Inject(from, to id.ID, m msg.Message) error {
	return s.send(from, to, m)
}

// flushDowns delivers pending connection-reset notifications to live
// watchers. Notifications run before queued messages so that a batch of
// simultaneous failures is observed atomically, as the paper's methodology
// induces them.
func (s *Sim) flushDowns() {
	for len(s.pendingDowns) > 0 {
		victim := s.pendingDowns[0]
		s.pendingDowns = s.pendingDowns[1:]
		ws := s.watchers[victim]
		if len(ws) == 0 {
			continue
		}
		vNode := s.nodes[victim]
		vDead := vNode == nil || !vNode.alive
		// Deterministic notification order.
		watcherIDs := make([]id.ID, 0, len(ws))
		for w := range ws {
			watcherIDs = append(watcherIDs, w)
		}
		sortIDs(watcherIDs)
		for _, w := range watcherIDs {
			n := s.nodes[w]
			if n == nil || !n.alive {
				delete(ws, w) // dead watchers never hear anything again
				continue
			}
			// A crash resets every connection; a partition resets only the
			// links that cross the cut.
			if !vDead && s.reachable(w, victim) {
				continue
			}
			delete(ws, w)
			if obs, ok := n.proc.(peer.FailureObserver); ok {
				obs.OnPeerDown(victim)
			}
		}
		if len(ws) == 0 {
			delete(s.watchers, victim)
		}
	}
}

// Drain delivers queued messages until the queue is empty and returns the
// number of messages delivered. Deliveries may enqueue further messages;
// those are processed too.
func (s *Sim) Drain() int {
	if s.Latency != nil {
		return s.drainTimed()
	}
	delivered := 0
	s.flushDowns()
	for s.head < len(s.queue) {
		ev := s.queue[s.head]
		s.head++
		dst := s.nodes[ev.to]
		if dst == nil || !dst.alive {
			// Destination died while the message was in flight.
			s.stats.Dropped++
			continue
		}
		if s.Tap != nil {
			s.Tap(ev.from, ev.to, ev.m)
		}
		dst.proc.Deliver(ev.from, ev.m)
		s.stats.Delivered++
		delivered++
		if s.head == len(s.queue) {
			// Queue fully consumed: reset storage so it does not grow
			// without bound across the run.
			s.queue = s.queue[:0]
			s.head = 0
		}
	}
	if s.head > 0 {
		// The loop can exit right after a dropped message without passing
		// the in-loop compaction; reset here so storage never accretes a
		// consumed prefix across Drain calls.
		s.queue = s.queue[:0]
		s.head = 0
	}
	return delivered
}

// drainTimed is Drain in latency mode: deliveries happen in virtual-time
// order and the clock advances to each event's timestamp.
func (s *Sim) drainTimed() int {
	delivered := 0
	s.flushDowns()
	for len(s.lheap) > 0 {
		ev := s.popEvent()
		if ev.at > s.now {
			s.now = ev.at
		}
		dst := s.nodes[ev.to]
		if dst == nil || !dst.alive || !s.reachable(ev.from, ev.to) {
			// Destination died (or the network cut) while in flight.
			s.stats.Dropped++
			continue
		}
		if s.Tap != nil {
			s.Tap(ev.from, ev.to, ev.m)
		}
		dst.proc.Deliver(ev.from, ev.m)
		s.stats.Delivered++
		delivered++
		s.flushDowns()
	}
	return delivered
}

// RunCycle executes one membership protocol cycle: every live node's OnCycle
// hook runs once, in seeded random order, with the message queue drained
// after each hook (PeerSim cycle-driven semantics).
func (s *Sim) RunCycle() {
	alive := s.AliveIDs()
	s.rand.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, nodeID := range alive {
		n := s.nodes[nodeID]
		if n == nil || !n.alive {
			continue // may have "failed" mid-cycle in churn scenarios
		}
		n.proc.OnCycle()
		s.Drain()
	}
}

// RunCycles executes count cycles.
func (s *Sim) RunCycles(count int) {
	for i := 0; i < count; i++ {
		s.RunCycle()
	}
}

// Fail marks nodeID as crashed. In-flight messages to it are dropped,
// future sends to it fail with peer.ErrPeerDown, and nodes watching it (open
// TCP connections) receive an OnPeerDown notification at the next Drain.
func (s *Sim) Fail(nodeID id.ID) {
	n, ok := s.nodes[nodeID]
	if !ok || !n.alive {
		return
	}
	n.alive = false
	if len(s.watchers[nodeID]) > 0 {
		s.pendingDowns = append(s.pendingDowns, nodeID)
	}
}

// Revive marks a previously failed node as live again. The process state is
// whatever it was at crash time; protocols that need a clean restart should
// be re-added under a fresh id instead.
func (s *Sim) Revive(nodeID id.ID) {
	if n, ok := s.nodes[nodeID]; ok {
		n.alive = true
	}
}

// Alive reports whether nodeID exists and has not failed.
func (s *Sim) Alive(nodeID id.ID) bool {
	n, ok := s.nodes[nodeID]
	return ok && n.alive
}

// AliveIDs returns the identifiers of all live nodes in insertion order.
func (s *Sim) AliveIDs() []id.ID {
	out := make([]id.ID, 0, len(s.order))
	for _, nodeID := range s.order {
		if s.nodes[nodeID].alive {
			out = append(out, nodeID)
		}
	}
	return out
}

// IDs returns all node identifiers (live and failed) in insertion order.
func (s *Sim) IDs() []id.ID {
	out := make([]id.ID, len(s.order))
	copy(out, s.order)
	return out
}

// AliveCount returns the number of live nodes.
func (s *Sim) AliveCount() int {
	c := 0
	for _, n := range s.nodes {
		if n.alive {
			c++
		}
	}
	return c
}

// Process returns the process hosted at nodeID, or nil if unknown.
func (s *Sim) Process(nodeID id.ID) peer.Process {
	n, ok := s.nodes[nodeID]
	if !ok {
		return nil
	}
	return n.proc
}

// Rand returns the simulator's root random stream (used by harnesses to pick
// broadcast sources, failure victims, ...).
func (s *Sim) Rand() *rng.Rand { return s.rand }

// Stats returns a copy of the simulator's counters.
func (s *Sim) Stats() Stats { return s.stats }

// Pending returns the number of queued, undelivered messages.
func (s *Sim) Pending() int { return len(s.queue) - s.head }

// reachable reports whether traffic may flow from a to b under the current
// partition (the harness is responsible for injecting reset notifications
// when it cuts the network; see Partition).
func (s *Sim) reachable(a, b id.ID) bool {
	if s.partition == nil {
		return true
	}
	return s.partition[a] == s.partition[b]
}

// Partition splits the network: every node is assigned a group by assign
// (nodes mapped to the same integer can talk; crossing traffic fails like a
// crashed destination). Watched cross-partition links receive reset
// notifications at the next Drain, just as crashes do — a network cut looks
// exactly like peer death to TCP. Call Heal to remove the partition.
func (s *Sim) Partition(assign func(id.ID) int) {
	s.partition = make(map[id.ID]int, len(s.order))
	for _, nodeID := range s.order {
		s.partition[nodeID] = assign(nodeID)
	}
	// Break watched links that now cross the cut.
	for watchedNode, ws := range s.watchers {
		for watcher := range ws {
			if !s.reachable(watcher, watchedNode) {
				s.pendingDowns = append(s.pendingDowns, watchedNode)
				break
			}
		}
	}
}

// Heal removes the current network partition. Overlay links do not reappear
// by themselves: the membership protocol has to re-merge the components.
func (s *Sim) Heal() {
	s.partition = nil
}

// sortIDs sorts identifiers ascending (insertion sort: watcher sets are tiny).
func sortIDs(xs []id.ID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
