// Package netsim is a deterministic discrete-event simulator for
// peer-to-peer protocols: this repository's stand-in for PeerSim, the
// simulator used by the paper's evaluation (§5).
//
// Model:
//
//   - Nodes are identified by id.ID and host a peer.Process. Internally the
//     simulator keys everything by a dense node index: the id→index map is
//     consulted once per Send, and the hot delivery path is pure slice
//     access, which is what makes 100k-node populations practical.
//   - All deliveries flow through a single timestamped event heap ordered by
//     (virtual time, send sequence). Without a latency model every message
//     is scheduled with delay 0, so heap order degenerates to exactly the
//     old FIFO order; with a Latency function installed, messages are
//     delayed per link and the virtual clock advances to each event's
//     timestamp. Event payloads live in a pooled slab recycled through a
//     free list, so a long run allocates no per-event garbage beyond the
//     messages themselves.
//   - The simulator implements peer.Scheduler: protocols schedule one-shot
//     timers (After) and periodic rounds (Every) as self-addressed messages
//     on the same heap, interleaved in time order with network traffic.
//   - Send and Probe to a failed node return peer.ErrPeerDown to the caller
//     immediately. This models TCP's connect/reset failure signal, the
//     failure detector HyParView relies on. Lossy protocols simply ignore
//     the error, modelling fire-and-forget datagrams.
//   - Drain runs until no messages or one-shot timers remain, advancing the
//     clock as needed, with the periodic schedule frozen: Every-registered
//     rounds fire only inside RunFor windows. The split is what keeps Drain
//     terminating — under a latency model, self-sustaining periodic rounds
//     plus delayed traffic would otherwise never quiesce — and it matches
//     the paper's methodology, whose bursts run "with no membership cycles
//     in between". RunFor advances virtual time by a fixed duration, firing
//     everything — periodic rounds included — that falls inside the window,
//     in timestamp order across both schedules. RunCycle invokes OnCycle on
//     every live node in a seeded random order for the legacy
//     externally-driven cycle mode.
//
// The simulator is not safe for concurrent use; experiments own one Sim each.
package netsim

import (
	"fmt"
	"sync"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/rng"
)

// ErrOverflow is returned (wrapped) by Send when the in-flight event limit
// is exceeded. Overflowed events are counted in Stats.Overflowed and dropped,
// so runaway message storms degrade the run instead of crashing it. It is an
// alias of peer.ErrOverflow: the TCP transport sheds with the same sentinel,
// so protocol code distinguishes overload from peer death identically in
// both runtimes.
var ErrOverflow = peer.ErrOverflow

// Event kinds: wire traffic versus scheduler deliveries.
const (
	kindMessage  uint8 = iota // network message (counted in wire stats, Tapped)
	kindTimer                 // one-shot scheduler delivery (peer.Scheduler.After)
	kindPeriodic              // periodic scheduler delivery (re-arms itself)
)

// event is the pooled payload of one scheduled delivery.
type event struct {
	from     id.ID // sender identity handed to Deliver (self for timers)
	to       int32 // destination node index
	kind     uint8
	exempt   bool   // bypass the Intercept hook (fault-injected redeliveries)
	interval uint64 // re-arm interval for kindPeriodic
	m        msg.Message
}

// heapEvent is the compact ordering record kept on the heap; the bulky event
// body stays put in the slab while these 24-byte records are sifted.
type heapEvent struct {
	at   uint64 // virtual delivery time
	seq  uint64 // tiebreaker preserving scheduling order
	slot int32  // slab index
}

// simNode is the simulator's per-node bookkeeping, stored by value in a
// dense index-ordered table.
type simNode struct {
	id    id.ID
	proc  peer.Process
	rand  *rng.Rand
	alive bool

	// parked holds scheduler events (one-shot timers, periodic
	// registrations) that came due while the node was failed. They are
	// re-scheduled on Revive: dropping them would wedge timer-owning state
	// machines forever, and re-arming a dead node's periodic rounds would
	// burn heap work delivering nothing for the rest of the run.
	parked []event
}

// Stats aggregates counters over the lifetime of a Sim.
type Stats struct {
	// Sent counts successful Send calls (message enqueued).
	Sent uint64
	// Delivered counts messages handed to a live process.
	Delivered uint64
	// Dropped counts messages whose destination died after enqueue.
	Dropped uint64
	// SendFailures counts Send/Probe calls rejected with ErrPeerDown.
	SendFailures uint64
	// Overflowed counts events rejected by the MaxQueue limit: the send is
	// dropped and reported with ErrOverflow instead of crashing the run, so
	// massive-failure experiments degrade gracefully under message storms.
	Overflowed uint64
	// FaultDropped counts deliveries suppressed by the Intercept hook.
	FaultDropped uint64
	// Redelivered counts messages re-injected through Redeliver (delay,
	// duplicate and replay faults).
	Redelivered uint64
	// BytesSent sums the wire-encoded size of every enqueued message,
	// supporting the packet-overhead measurements the paper planned for
	// PlanetLab (§6).
	BytesSent uint64
}

// Sim is a deterministic event-driven network simulator.
type Sim struct {
	rand  *rng.Rand
	nodes []simNode       // dense node table in insertion order
	index map[id.ID]int32 // id → node table index
	alive int             // live-node count, maintained by Add/Fail/Revive

	// aliveBits packs per-node liveness one bit per table index. The
	// per-send liveness check is the one random access the hot dispatch
	// path cannot avoid; against the 64-byte simNode records a 100k-node
	// population costs a DRAM miss per send, while the bitset (12.5KB)
	// stays cache-resident.
	aliveBits []uint64

	// dense is true while node identifiers follow the harness convention
	// id.ID(i+1) for the i-th added node. Every cluster builder in this
	// repository numbers nodes that way, which lets the per-send id→index
	// translation — the last map access on the hot dispatch path — collapse
	// to an integer subtraction. The first out-of-pattern Add clears the
	// flag and everything falls back to the map, which is maintained either
	// way.
	dense bool

	stats Stats

	heap  []heapEvent // messages and one-shot timers
	pheap []heapEvent // periodic rounds: fired only by RunFor
	slab  []event
	free  []int32 // recycled slab slots
	wire  int     // in-flight network messages, the population MaxQueue bounds

	now uint64 // virtual clock
	seq uint64 // scheduling sequence for deterministic tie-breaking

	// shards, when non-empty, switches the simulator to the sharded
	// wave/barrier engine (see shards.go): the heap/slab machinery above is
	// idle and every event lives in per-shard time buckets instead. Built by
	// NewSharded; nil for the classic single-shard engine.
	shards []shard
	// inWave is true while shard goroutines are delivering a wave: endpoint
	// sends and timer registrations record into per-shard output logs
	// instead of sequencing immediately.
	inWave bool
	// instantActive is true while runInstant is processing an instant:
	// delay-0 traffic joins the instant's next wave rather than a bucket.
	instantActive bool
	// waveWG is reused across waves so the parallel fan-out allocates
	// nothing in steady state; waveParallel gates the fan-out on a
	// multi-P runtime (captured at NewSharded).
	waveWG       sync.WaitGroup
	waveParallel bool

	// watchers maps a watched node to the set of nodes holding an open
	// connection to it; when it fails, live watchers implementing
	// peer.FailureObserver receive OnPeerDown (a TCP reset, delivered at
	// the next Drain).
	watchers     map[id.ID]map[id.ID]struct{}
	pendingDowns []id.ID

	// partition, when non-nil, assigns nodes to network partitions: traffic
	// between different partition groups fails exactly like traffic to a
	// crashed node (TCP connects time out across the cut). Nodes absent
	// from the map are in group 0.
	partition map[id.ID]int

	// MaxQueue bounds the number of in-flight events as a safety net
	// against protocol bugs that generate message storms. Zero means the
	// default (64M events). Excess events are dropped and counted in
	// Stats.Overflowed; Send reports them with ErrOverflow.
	MaxQueue int

	// Tap, when non-nil, observes every delivered network message (after
	// liveness filtering, before the process handles it). Scheduler
	// deliveries — local timers — are not wire traffic and are not tapped.
	// Used by tests and the trace recorder; it must not mutate the
	// simulation.
	Tap func(from, to id.ID, m msg.Message)

	// Latency, when non-nil, delays every message by Latency(from, to)
	// abstract ticks. The function may draw from the rand it is handed to
	// model jitter; determinism is preserved. When nil, messages are
	// scheduled with delay 0 — the classic FIFO mode the paper's hop-count
	// experiments run in (they measure hops, not wall time).
	Latency func(from, to id.ID, r *rng.Rand) uint64

	// Intercept, when non-nil, is the fault-injection seam: it observes every
	// network message at the delivery path, after liveness and partition
	// filtering and before Tap and dispatch (timers are local scheduler
	// state, not wire traffic, and are never intercepted). Returning false
	// suppresses the delivery (counted in Stats.FaultDropped). Returning a
	// non-nil replacement delivers it instead of the original — tamper faults
	// mutate a copy, never the original's slices, which other fan-out copies
	// share under the copy-on-write regime. The hook runs on a private struct
	// copy and may call Redeliver to schedule duplicates, delayed copies or
	// replays; redelivered messages bypass the hook (and the latency model),
	// so a delay fault cannot re-delay its own artifact forever. For the
	// determinism contract, any randomness must come from a stream seeded off
	// the run's seed and consumed only here, in delivery order (see package
	// faults). The nil case costs one predictable branch: the no-fault hot
	// path stays allocation-free.
	Intercept func(node id.ID, m *msg.Message) (*msg.Message, bool)
}

// New returns an empty simulator seeded with seed.
func New(seed uint64) *Sim {
	return &Sim{
		rand:     rng.New(seed),
		index:    make(map[id.ID]int32),
		dense:    true,
		watchers: make(map[id.ID]map[id.ID]struct{}),
	}
}

// nodeIndex translates a node identifier to its table index. In the dense
// id regime (see Sim.dense) this is a bounds check and a subtraction; only
// irregular populations pay the map lookup.
func (s *Sim) nodeIndex(nodeID id.ID) (int32, bool) {
	if s.dense {
		if nodeID == 0 || uint64(nodeID) > uint64(len(s.nodes)) {
			return 0, false
		}
		return int32(nodeID - 1), true
	}
	ti, ok := s.index[nodeID]
	return ti, ok
}

// Endpoint is the peer.Env handed to a process at construction time.
type Endpoint struct {
	sim  *Sim
	self id.ID
	idx  int32
	rand *rng.Rand
	sh   *shard // owning shard under the wave engine; nil single-shard
}

var _ peer.Env = (*Endpoint)(nil)

// Self returns the identifier of the endpoint's node.
func (e *Endpoint) Self() id.ID { return e.self }

// Rand returns the node's private random stream.
func (e *Endpoint) Rand() *rng.Rand { return e.rand }

// Send enqueues m for delivery to dst, or returns peer.ErrPeerDown if dst has
// already failed (TCP-style synchronous failure detection). The message is
// handed on by pointer internally: one struct copy lands in the event slab
// and no others are made.
func (e *Endpoint) Send(dst id.ID, m msg.Message) error {
	if e.sh != nil {
		return e.sim.sendSharded(e.sh, e.self, dst, &m)
	}
	return e.sim.send(e.self, dst, &m)
}

// SendRef implements peer.RefSender: Send without the by-value argument copy,
// for the broadcast fan-out paths that push one frozen message to every
// neighbor.
func (e *Endpoint) SendRef(dst id.ID, m *msg.Message) error {
	if e.sh != nil {
		return e.sim.sendSharded(e.sh, e.self, dst, m)
	}
	return e.sim.send(e.self, dst, m)
}

// Probe reports whether a connection to dst could be established.
func (e *Endpoint) Probe(dst id.ID) error {
	s := e.sim
	ti, ok := s.nodeIndex(dst)
	if !ok || !s.aliveAt(ti) || !s.reachable(e.self, dst) {
		if e.sh != nil && s.inWave {
			e.sh.stats.sendFailures++ // shard-local: Probe may run mid-wave
		} else {
			s.stats.SendFailures++
		}
		return fmt.Errorf("probe %v: %w", dst, peer.ErrPeerDown)
	}
	return nil
}

// Now implements peer.Scheduler: the virtual clock in ticks.
func (e *Endpoint) Now() uint64 { return e.sim.now }

// After implements peer.Scheduler: m is delivered to this node's process,
// with from == Self, once delay virtual ticks have elapsed — behind all
// traffic already scheduled at the current instant when delay is zero.
// Infallible: timers bypass the MaxQueue limit (see schedule).
func (e *Endpoint) After(delay uint64, m msg.Message) {
	if e.sh != nil {
		e.sim.scheduleSharded(e.sh, e.self, e.idx, true, delay, &m)
		return
	}
	_ = e.sim.schedule(e.self, e.idx, kindTimer, delay, 0, &m, false)
}

// Every implements peer.Scheduler: m is delivered to this node's process
// every interval ticks, first firing one interval from now. The registration
// lives as long as the simulation; deliveries skip the node while it is
// failed.
func (e *Endpoint) Every(interval uint64, m msg.Message) {
	if interval == 0 {
		interval = 1
	}
	if e.sh != nil {
		e.sim.scheduleSharded(e.sh, e.self, e.idx, false, interval, &m)
		return
	}
	_ = e.sim.schedule(e.self, e.idx, kindPeriodic, interval, interval, &m, false)
}

// Watch registers this node for failure notifications about dst, modelling
// an open TCP connection.
func (e *Endpoint) Watch(dst id.ID) {
	if e.sh != nil {
		// Registration lives on the watcher's own shard: only this node
		// (hence only this shard's goroutine) ever writes it, so watches
		// taken mid-wave need no lock.
		e.sh.watch(e.self, dst)
		return
	}
	ws := e.sim.watchers[dst]
	if ws == nil {
		ws = make(map[id.ID]struct{}, 4)
		e.sim.watchers[dst] = ws
	}
	ws[e.self] = struct{}{}
}

// Unwatch cancels a Watch, modelling closing the connection.
func (e *Endpoint) Unwatch(dst id.ID) {
	if e.sh != nil {
		e.sh.unwatch(e.self, dst)
		return
	}
	if ws := e.sim.watchers[dst]; ws != nil {
		delete(ws, e.self)
		if len(ws) == 0 {
			delete(e.sim.watchers, dst)
		}
	}
}

// Add registers a new live node and constructs its process via factory,
// which receives the node's environment. Add panics on duplicate ids: that
// is always a harness bug. The factory may already use the environment's
// scheduler (periodic protocols register their rounds at construction).
func (s *Sim) Add(nodeID id.ID, factory func(peer.Env) peer.Process) {
	if nodeID.IsNil() {
		panic("netsim: cannot add nil node id")
	}
	if _, dup := s.index[nodeID]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", nodeID))
	}
	idx := int32(len(s.nodes))
	if nodeID != id.ID(idx+1) {
		s.dense = false
	}
	ep := &Endpoint{sim: s, self: nodeID, idx: idx, rand: s.rand.Split()}
	if s.sharded() {
		ep.sh = s.shardOf(idx)
	}
	s.nodes = append(s.nodes, simNode{id: nodeID, rand: ep.rand, alive: true})
	s.index[nodeID] = idx
	for int(idx)>>6 >= len(s.aliveBits) {
		s.aliveBits = append(s.aliveBits, 0)
	}
	s.setAliveBit(idx, true)
	s.alive++
	s.nodes[idx].proc = factory(ep)
}

// setAliveBit mirrors simNode.alive into the packed bitset.
func (s *Sim) setAliveBit(idx int32, alive bool) {
	if alive {
		s.aliveBits[idx>>6] |= 1 << (uint(idx) & 63)
	} else {
		s.aliveBits[idx>>6] &^= 1 << (uint(idx) & 63)
	}
}

// aliveAt reports liveness by table index through the cache-resident bitset.
func (s *Sim) aliveAt(idx int32) bool {
	return s.aliveBits[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// send implements Endpoint.Send. m is passed by pointer to avoid struct
// copies on the per-send hot path; the callee stores exactly one copy into
// the event slab and never retains the pointer.
func (s *Sim) send(from, to id.ID, m *msg.Message) error {
	ti, ok := s.nodeIndex(to)
	if !ok || !s.aliveAt(ti) || !s.reachable(from, to) {
		s.stats.SendFailures++
		return fmt.Errorf("send %v->%v: %w", from, to, peer.ErrPeerDown)
	}
	var delay uint64
	if s.Latency != nil {
		delay = s.Latency(from, to, s.rand)
	}
	if err := s.schedule(from, ti, kindMessage, delay, 0, m, false); err != nil {
		return err
	}
	s.stats.Sent++
	s.stats.BytesSent += uint64(m.EncodedSize())
	return nil
}

// Redeliver enqueues m for delivery to dst after delay ticks, bypassing both
// the Intercept hook and the Latency model: it is the re-entry path fault
// injectors use to express delay, duplicate and replay faults without the
// hook re-intercepting its own artifacts. The message counts against
// MaxQueue and the delivery stats but not Stats.Sent — it is a fault
// artifact, not a protocol send. An unknown or dead destination is reported
// as down, matching Send; a node dying afterwards drops the copy at delivery
// time like any in-flight message.
func (s *Sim) Redeliver(from, to id.ID, m msg.Message, delay uint64) error {
	if s.sharded() {
		// Hooks run on the coordinator (the wave pre-pass), never on shard
		// goroutines, so re-entry here always sequences immediately.
		return s.redeliverSharded(from, to, &m, delay)
	}
	ti, ok := s.nodeIndex(to)
	if !ok || !s.aliveAt(ti) {
		return fmt.Errorf("redeliver %v->%v: %w", from, to, peer.ErrPeerDown)
	}
	if err := s.schedule(from, ti, kindMessage, delay, 0, &m, true); err != nil {
		return err
	}
	s.stats.Redelivered++
	return nil
}

// schedule places one event on its heap, drawing its body from the slab
// pool. Only network messages are subject to the MaxQueue limit: they are
// what a storm amplifies, while scheduler deliveries are bounded by protocol
// state (one timer per missing round, one registration per periodic task) —
// dropping those would wedge timer-owning state machines forever (an armed
// Plumtree timer that never fires blocks that round's repair permanently),
// so After/Every stay genuinely infallible as the contract promises.
func (s *Sim) schedule(from id.ID, to int32, kind uint8, delay, interval uint64, m *msg.Message, exempt bool) error {
	if kind == kindMessage {
		limit := s.MaxQueue
		if limit <= 0 {
			limit = 64 << 20
		}
		if s.wire >= limit {
			s.stats.Overflowed++
			return fmt.Errorf("%w: %d messages in flight (message storm?)", ErrOverflow, s.wire)
		}
		s.wire++
	}
	slot := s.newSlot()
	ev := &s.slab[slot]
	ev.from, ev.to, ev.kind, ev.exempt, ev.interval, ev.m = from, to, kind, exempt, interval, *m
	s.seq++
	he := heapEvent{at: s.now + delay, seq: s.seq, slot: slot}
	if kind == kindPeriodic {
		push(&s.pheap, he)
	} else {
		push(&s.heap, he)
	}
	return nil
}

// newSlot takes a free slab slot, growing the slab when the pool is dry.
func (s *Sim) newSlot() int32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	s.slab = append(s.slab, event{})
	return int32(len(s.slab) - 1)
}

// Now returns the virtual clock in ticks. It advances whenever an event with
// a later timestamp is processed (latency-mode traffic, scheduler timers) and
// jumps to the end of every RunFor window.
func (s *Sim) Now() uint64 { return s.now }

// The event heaps are 4-ary: half the sift-down depth of a binary heap and
// all four children of a node adjacent in memory (96 of 128 cache-line
// bytes), which matters when a 100k-node broadcast keeps hundreds of
// thousands of records in flight. (at, seq) is a strict total order — seq is
// unique — so the pop sequence is identical to any other correct min-heap's
// and determinism is untouched by the arity.

// push inserts he into h (min-ordered by at, then seq). An event scheduled
// behind everything at its instant (the FIFO common case: monotonically
// increasing seq) terminates after a single parent comparison.
func push(h *[]heapEvent, he heapEvent) {
	*h = append(*h, he)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes the earliest event record from h.
func pop(h *[]heapEvent) heapEvent {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		first := 4*i + 1
		if first >= len(s) {
			return top
		}
		smallest := i
		end := first + 4
		if end > len(s) {
			end = len(s)
		}
		for c := first; c < end; c++ {
			if eventLess(s[c], s[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			return top
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

func eventLess(a, b heapEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Inject enqueues a message from outside the simulation (the experiment
// harness), e.g. the initial JOIN or a broadcast trigger.
func (s *Sim) Inject(from, to id.ID, m msg.Message) error {
	if s.sharded() {
		return s.sendSharded(nil, from, to, &m)
	}
	return s.send(from, to, &m)
}

// flushDowns delivers pending connection-reset notifications to live
// watchers. Notifications run before queued messages so that a batch of
// simultaneous failures is observed atomically, as the paper's methodology
// induces them.
func (s *Sim) flushDowns() {
	if s.sharded() {
		s.flushDownsSharded()
		return
	}
	for len(s.pendingDowns) > 0 {
		victim := s.pendingDowns[0]
		s.pendingDowns = s.pendingDowns[1:]
		ws := s.watchers[victim]
		if len(ws) == 0 {
			continue
		}
		vDead := true
		if vi, ok := s.nodeIndex(victim); ok && s.nodes[vi].alive {
			vDead = false
		}
		// Deterministic notification order.
		watcherIDs := make([]id.ID, 0, len(ws))
		for w := range ws {
			watcherIDs = append(watcherIDs, w)
		}
		sortIDs(watcherIDs)
		for _, w := range watcherIDs {
			wi, ok := s.nodeIndex(w)
			if !ok || !s.nodes[wi].alive {
				delete(ws, w) // dead watchers never hear anything again
				continue
			}
			// A crash resets every connection; a partition resets only the
			// links that cross the cut.
			if !vDead && s.reachable(w, victim) {
				continue
			}
			delete(ws, w)
			if obs, ok := s.nodes[wi].proc.(peer.FailureObserver); ok {
				obs.OnPeerDown(victim)
			}
		}
		if len(ws) == 0 {
			delete(s.watchers, victim)
		}
	}
}

// fire processes one popped event, advancing the clock to its timestamp.
// It returns 1 when a process received a delivery, 0 when the event was
// dropped (dead or unreachable destination).
//
// The hot path delivers straight out of the event slab: the only Message
// copy made here is the Deliver argument itself. The slot is released after
// delivery — handlers scheduling new traffic therefore cannot recycle it
// mid-call, and the ev pointer is never dereferenced again once a callee
// (schedule, Deliver) could have grown the slab under it.
func (s *Sim) fire(he heapEvent) int {
	ev := &s.slab[he.slot]
	kind := ev.kind
	from := ev.from
	if kind == kindMessage {
		s.wire--
	}
	if he.at > s.now {
		s.now = he.at
	}
	dst := &s.nodes[ev.to]
	if !dst.alive {
		switch kind {
		case kindMessage:
			// Destination died while the message was in flight.
			s.stats.Dropped++
		default:
			// Scheduler state survives the failure: park the timer or
			// registration for Revive instead of dropping it (see simNode).
			dst.parked = append(dst.parked, *ev)
		}
		s.releaseSlot(he.slot)
		return 0
	}
	if kind == kindPeriodic {
		// Re-arm before delivering so the cadence is unaffected by whatever
		// the handler schedules. A round whose deadline the clock has
		// already passed (Drain advanced time while the periodic schedule
		// was frozen) drops the missed firings, like time.Ticker.
		next := he.at + ev.interval
		if next <= s.now {
			next = s.now + ev.interval
		}
		evCopy := *ev
		s.seq++
		slot := s.newSlot() // may grow the slab: refresh ev below
		s.slab[slot] = evCopy
		push(&s.pheap, heapEvent{at: next, seq: s.seq, slot: slot})
		ev = &s.slab[he.slot]
	}
	if kind == kindMessage {
		if !s.reachable(from, dst.id) {
			s.stats.Dropped++ // the network cut while in flight
			s.releaseSlot(he.slot)
			return 0
		}
		if s.Intercept != nil && !ev.exempt {
			return s.fireIntercepted(he, ev.to, from)
		}
		if s.Tap != nil {
			s.Tap(from, dst.id, ev.m)
		}
	}
	dst.proc.Deliver(from, ev.m)
	// ev is stale here (Deliver may have scheduled and grown the slab).
	s.releaseSlot(he.slot)
	if kind == kindMessage {
		s.stats.Delivered++
	}
	return 1
}

// fireIntercepted runs the Intercept hook for one message delivery. The hook
// operates on a private struct copy: it may mutate or replace that copy but
// never the slab slot, whose slices are shared copy-on-write with every other
// copy of a fan-out — and the copy also keeps the delivered message stable
// when the hook's own Redeliver calls grow the slab under the slot.
func (s *Sim) fireIntercepted(he heapEvent, toIdx int32, from id.ID) int {
	hooked := s.slab[he.slot].m
	s.releaseSlot(he.slot)
	dstID := s.nodes[toIdx].id
	repl, deliver := s.Intercept(dstID, &hooked)
	if !deliver {
		s.stats.FaultDropped++
		return 0
	}
	if repl != nil {
		hooked = *repl
	}
	if s.Tap != nil {
		s.Tap(from, dstID, hooked)
	}
	s.nodes[toIdx].proc.Deliver(from, hooked)
	s.stats.Delivered++
	return 1
}

// releaseSlot returns a slab slot to the free list, nil-ing only the
// pointer-bearing fields (the GC cares about nothing else, and schedule
// fully reassigns every field on reuse) — cheaper than zeroing the whole
// 160-byte event.
func (s *Sim) releaseSlot(slot int32) {
	m := &s.slab[slot].m
	m.Nodes, m.Entries, m.Payload, m.Directory = nil, nil, nil, nil
	s.free = append(s.free, slot)
}

// Drain delivers events until no messages or one-shot timers remain and
// returns the number of deliveries made. Deliveries may enqueue further
// events; those are processed too, with the virtual clock advancing to each
// event's timestamp. The periodic schedule is frozen for the duration: a
// Drain is the instantaneous-convergence operator of the paper's
// methodology ("no membership cycles in between"), and letting
// self-sustaining rounds fire here would keep a latency-model run from ever
// quiescing. Periodic rounds fire in RunFor.
func (s *Sim) Drain() int {
	if s.sharded() {
		return s.drainSharded()
	}
	delivered := 0
	s.flushDowns()
	for len(s.heap) > 0 {
		delivered += s.fire(pop(&s.heap))
		s.flushDowns()
	}
	return delivered
}

// RunFor advances virtual time by d ticks, processing every event — periodic
// rounds included, interleaved in timestamp order with traffic — that falls
// inside the window, and returns the number of deliveries made. The clock
// lands exactly on Now()+d, so back-to-back RunFor calls tile time without
// gaps; traffic scheduled beyond the window stays pending for the next
// RunFor or Drain.
func (s *Sim) RunFor(d uint64) int {
	if s.sharded() {
		return s.runForSharded(d)
	}
	target := s.now + d
	delivered := 0
	s.flushDowns()
	for {
		hasOnce := len(s.heap) > 0 && s.heap[0].at <= target
		hasPeriodic := len(s.pheap) > 0 && s.pheap[0].at <= target
		var he heapEvent
		switch {
		case hasOnce && (!hasPeriodic || eventLess(s.heap[0], s.pheap[0])):
			he = pop(&s.heap)
		case hasPeriodic:
			he = pop(&s.pheap)
		default:
			if target > s.now {
				s.now = target
			}
			return delivered
		}
		delivered += s.fire(he)
		s.flushDowns()
	}
}

// RunCycle executes one membership protocol cycle: every live node's OnCycle
// hook runs once, in seeded random order, with the event heap drained
// after each hook (PeerSim cycle-driven semantics). Protocols that schedule
// their own periodic rounds are driven with RunFor instead.
func (s *Sim) RunCycle() {
	alive := s.AliveIDs()
	s.rand.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, nodeID := range alive {
		ni, _ := s.nodeIndex(nodeID)
		n := &s.nodes[ni]
		if !n.alive {
			continue // may have "failed" mid-cycle in churn scenarios
		}
		n.proc.OnCycle()
		s.Drain()
	}
}

// RunCycles executes count cycles.
func (s *Sim) RunCycles(count int) {
	for i := 0; i < count; i++ {
		s.RunCycle()
	}
}

// Fail marks nodeID as crashed. In-flight messages to it are dropped,
// future sends to it fail with peer.ErrPeerDown, and nodes watching it (open
// TCP connections) receive an OnPeerDown notification at the next Drain.
func (s *Sim) Fail(nodeID id.ID) {
	ni, ok := s.nodeIndex(nodeID)
	if !ok || !s.nodes[ni].alive {
		return
	}
	s.nodes[ni].alive = false
	s.setAliveBit(ni, false)
	s.alive--
	if s.sharded() {
		if s.watchedSharded(nodeID) {
			s.pendingDowns = append(s.pendingDowns, nodeID)
		}
	} else if len(s.watchers[nodeID]) > 0 {
		s.pendingDowns = append(s.pendingDowns, nodeID)
	}
}

// Revive marks a previously failed node as live again. The process state is
// whatever it was at crash time; protocols that need a clean restart should
// be re-added under a fresh id instead. Scheduler events that came due
// during the outage are re-scheduled: parked one-shot timers fire behind
// the traffic now in flight, parked periodic registrations resume one
// interval from now.
func (s *Sim) Revive(nodeID id.ID) {
	ni, ok := s.nodeIndex(nodeID)
	if !ok || s.nodes[ni].alive {
		return
	}
	s.nodes[ni].alive = true
	s.setAliveBit(ni, true)
	s.alive++
	parked := s.nodes[ni].parked
	s.nodes[ni].parked = nil
	for _, ev := range parked {
		s.seq++
		if s.sharded() {
			if ev.kind == kindPeriodic {
				s.enqueuePeriodic(s.now+ev.interval, s.seq, &ev)
			} else {
				s.enqueueAt(s.now, s.seq, &ev)
			}
			continue
		}
		slot := s.newSlot()
		s.slab[slot] = ev
		if ev.kind == kindPeriodic {
			push(&s.pheap, heapEvent{at: s.now + ev.interval, seq: s.seq, slot: slot})
		} else {
			push(&s.heap, heapEvent{at: s.now, seq: s.seq, slot: slot})
		}
	}
}

// Alive reports whether nodeID exists and has not failed.
func (s *Sim) Alive(nodeID id.ID) bool {
	ni, ok := s.nodeIndex(nodeID)
	return ok && s.nodes[ni].alive
}

// AliveIDs returns the identifiers of all live nodes in insertion order.
func (s *Sim) AliveIDs() []id.ID {
	out := make([]id.ID, 0, len(s.nodes))
	for i := range s.nodes {
		if s.nodes[i].alive {
			out = append(out, s.nodes[i].id)
		}
	}
	return out
}

// IDs returns all node identifiers (live and failed) in insertion order.
func (s *Sim) IDs() []id.ID {
	out := make([]id.ID, len(s.nodes))
	for i := range s.nodes {
		out[i] = s.nodes[i].id
	}
	return out
}

// AliveCount returns the number of live nodes in O(1).
func (s *Sim) AliveCount() int { return s.alive }

// RandomAlive returns a uniformly random live node, drawing from r until a
// live one is hit (expected draws: population/alive). It returns (Nil,
// false) when no node is alive. Unlike AliveIDs it allocates nothing, which
// matters to harness paths invoked once per broadcast.
func (s *Sim) RandomAlive(r *rng.Rand) (id.ID, bool) {
	if s.alive == 0 || len(s.nodes) == 0 {
		return id.Nil, false
	}
	for {
		n := &s.nodes[r.Intn(len(s.nodes))]
		if n.alive {
			return n.id, true
		}
	}
}

// Process returns the process hosted at nodeID, or nil if unknown.
func (s *Sim) Process(nodeID id.ID) peer.Process {
	ni, ok := s.nodeIndex(nodeID)
	if !ok {
		return nil
	}
	return s.nodes[ni].proc
}

// Rand returns the simulator's root random stream (used by harnesses to pick
// broadcast sources, failure victims, ...).
func (s *Sim) Rand() *rng.Rand { return s.rand }

// Stats returns a copy of the simulator's counters.
func (s *Sim) Stats() Stats {
	if s.sharded() {
		return s.statsSharded()
	}
	return s.stats
}

// Pending returns the number of queued, undelivered messages and one-shot
// timers (periodic registrations are standing and not counted).
func (s *Sim) Pending() int {
	if s.sharded() {
		return s.pendingSharded()
	}
	return len(s.heap)
}

// reachable reports whether traffic may flow from a to b under the current
// partition (the harness is responsible for injecting reset notifications
// when it cuts the network; see Partition).
func (s *Sim) reachable(a, b id.ID) bool {
	if s.partition == nil {
		return true
	}
	return s.partition[a] == s.partition[b]
}

// Partition splits the network: every node is assigned a group by assign
// (nodes mapped to the same integer can talk; crossing traffic fails like a
// crashed destination). Watched cross-partition links receive reset
// notifications at the next Drain, just as crashes do — a network cut looks
// exactly like peer death to TCP. Call Heal to remove the partition.
func (s *Sim) Partition(assign func(id.ID) int) {
	s.partition = make(map[id.ID]int, len(s.nodes))
	for i := range s.nodes {
		s.partition[s.nodes[i].id] = assign(s.nodes[i].id)
	}
	// Break watched links that now cross the cut.
	if s.sharded() {
		s.partitionBreakSharded()
		return
	}
	for watchedNode, ws := range s.watchers {
		for watcher := range ws {
			if !s.reachable(watcher, watchedNode) {
				s.pendingDowns = append(s.pendingDowns, watchedNode)
				break
			}
		}
	}
}

// Heal removes the current network partition. Overlay links do not reappear
// by themselves: the membership protocol has to re-merge the components.
func (s *Sim) Heal() {
	s.partition = nil
}

// sortIDs sorts identifiers ascending (insertion sort: watcher sets are tiny).
func sortIDs(xs []id.ID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
