package netsim

// Event-engine throughput benchmarks. A ring of forwarder processes bounces
// TTL-bounded messages through the heap, isolating the engine's own cost —
// heap push/pop, slab recycling, node-table dispatch — from any protocol
// logic. BENCH_sim.json records the headline events/sec at n=10k and n=100k;
// run with:
//
//	go test ./internal/netsim/ -run '^$' -bench BenchmarkEngine -benchtime 20x

import (
	"fmt"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// ringProc forwards every delivery to the next ring member until the TTL
// dies.
type ringProc struct {
	env  peer.Env
	next id.ID
}

func (p *ringProc) Deliver(_ id.ID, m msg.Message) {
	if m.TTL == 0 {
		return
	}
	m.TTL--
	_ = p.env.Send(p.next, m)
}

func (p *ringProc) OnCycle() {}

func buildRing(n int) *Sim { return buildRingSharded(n, 1) }

func buildRingSharded(n, shards int) *Sim {
	s := NewSharded(1, shards)
	for i := 0; i < n; i++ {
		nodeID := id.ID(i + 1)
		next := id.ID((i+1)%n + 1)
		s.Add(nodeID, func(env peer.Env) peer.Process {
			return &ringProc{env: env, next: next}
		})
	}
	return s
}

// benchEngine measures raw engine throughput: each iteration injects msgs
// TTL-hop messages spread around the ring and drains them, reporting
// deliveries per second.
func benchEngine(b *testing.B, n int) { benchEngineSharded(b, n, 1) }

func benchEngineSharded(b *testing.B, n, shards int) {
	const msgs, hops = 1024, 64
	s := buildRingSharded(n, shards)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < msgs; k++ {
			src := id.ID(k*(n/msgs+1)%n + 1)
			dst := id.ID(uint64(src)%uint64(n) + 1)
			_ = s.Inject(src, dst, msg.Message{Type: msg.Gossip, Round: uint64(k), TTL: hops})
		}
		s.Drain()
	}
	b.StopTimer()
	events := float64(b.N) * msgs * (hops + 1)
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkEngine10k(b *testing.B)  { benchEngine(b, 10_000) }
func BenchmarkEngine100k(b *testing.B) { benchEngine(b, 100_000) }

// BenchmarkEngine1M compares the engines at the million-node scale the
// ROADMAP targets: the single-shard heap engine as the reference, then the
// sharded wave/barrier engine. The shard counts are fixed (not GOMAXPROCS-
// derived) so recorded numbers are comparable across machines.
func BenchmarkEngine1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-node engine benchmark skipped in -short mode")
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchEngineSharded(b, 1_000_000, shards)
		})
	}
}
