package netsim

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
)

// The simulator's Endpoint must pass the same scheduler conformance suite as
// the TCP transport's real-clock scheduler: that shared suite is what makes
// "periodic behavior runs identically in virtual and real time" a tested
// property of the peer.Scheduler contract.
func TestSchedulerConformance(t *testing.T) {
	peertest.Conformance(t, func(t *testing.T) *peertest.Instance {
		s := New(1)
		rec := &schedRecorder{t: t, self: 1}
		s.Add(1, func(env peer.Env) peer.Process {
			rec.env = env
			return rec
		})
		return &peertest.Instance{
			Sched:     rec.env.(peer.Scheduler),
			Run:       func(d uint64) { s.RunFor(d) },
			Delivered: func() []msg.Message { return rec.got },
		}
	})
}

// schedRecorder records scheduler deliveries, enforcing the from == self
// contract.
type schedRecorder struct {
	t    *testing.T
	self id.ID
	env  peer.Env
	got  []msg.Message
}

func (r *schedRecorder) Deliver(from id.ID, m msg.Message) {
	if from != r.self {
		r.t.Errorf("scheduler delivery from %v, want self %v", from, r.self)
	}
	r.got = append(r.got, m)
}

func (r *schedRecorder) OnCycle() {}
