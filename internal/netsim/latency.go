package netsim

import (
	"fmt"
	"math"

	"hyparview/internal/id"
	"hyparview/internal/rng"
)

// LatencyModel describes the link latencies of a simulated network. It serves
// two consumers at once:
//
//   - The simulator's event-driven mode: Delay matches the Sim.Latency
//     signature, so installing a model is `sim.Latency = model.Delay`.
//   - Topology-aware optimizers (internal/xbot): Cost is the deterministic
//     base latency of a link with jitter stripped, i.e. what a node would
//     measure by averaging round-trip probes. It is the canonical cost
//     oracle for the X-BOT experiments.
//
// Models are pure functions of (model parameters, node identifiers): they
// keep no per-node state, so any two components — or two separate Sim
// instances — observing the same model agree on every link cost regardless
// of construction or join order. All models are symmetric:
// Cost(a,b) == Cost(b,a).
type LatencyModel interface {
	// Delay returns the virtual-time delay of one message from->to in
	// abstract ticks, possibly adding jitter drawn from r. Self-addressed
	// messages (timers) get a minimal delay of 1 tick.
	Delay(from, to id.ID, r *rng.Rand) uint64

	// Cost returns the deterministic base cost of the undirected link {a,b}:
	// the Delay with jitter removed.
	Cost(a, b id.ID) uint64

	// Name identifies the model in tables and CLI flags.
	Name() string
}

// mix64 is splitmix64's finalizer: a fast, well-distributed 64-bit hash used
// to derive per-node virtual coordinates from (seed, id) pairs.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitCoord hashes (seed, key, axis) to a coordinate in [0, 1).
func unitCoord(seed, key, axis uint64) float64 {
	h := mix64(seed ^ mix64(key^axis*0x9e3779b97f4a7c15))
	return float64(h>>11) / float64(1<<53)
}

// jittered adds a uniform random jitter in [0, jitter] to base.
func jittered(base, jitter uint64, r *rng.Rand) uint64 {
	if jitter == 0 || r == nil {
		return base
	}
	return base + r.Uint64n(jitter+1)
}

// Uniform is the degenerate latency model: every link costs Base ticks, so
// event-driven runs reproduce FIFO-mode results up to delivery interleaving.
// It exists as the control arm of latency experiments: an optimizer must
// measure zero improvement under it.
type Uniform struct {
	// Base is the cost of every link. Default (via NewUniform): 50.
	Base uint64
	// Jitter is the maximum uniform extra delay added per message.
	Jitter uint64
}

// NewUniform returns a uniform model with base cost 50 and no jitter.
func NewUniform() *Uniform { return &Uniform{Base: 50} }

// Delay implements LatencyModel.
func (u *Uniform) Delay(from, to id.ID, r *rng.Rand) uint64 {
	if from == to {
		return 1
	}
	return jittered(u.Base, u.Jitter, r)
}

// Cost implements LatencyModel.
func (u *Uniform) Cost(a, b id.ID) uint64 {
	if a == b {
		return 0
	}
	return u.Base
}

// Name implements LatencyModel.
func (u *Uniform) Name() string { return "uniform" }

// Euclidean places every node at virtual coordinates on the unit square
// (hashed from the seed and the node identifier, as in Vivaldi-style network
// coordinate systems) and charges the Euclidean distance, scaled and offset:
//
//	cost(a,b) = Min + Scale * dist(coord(a), coord(b))
//
// The mean cost of a uniformly random link is ≈ Min + 0.5214*Scale, while
// nearby nodes cost ≈ Min, giving topology optimizers a wide spread to
// exploit. This is the default model of the X-BOT experiments.
type Euclidean struct {
	// Seed drives the coordinate hashing.
	Seed uint64
	// Scale multiplies the unit-square distance. Default (NewEuclidean): 1000.
	Scale uint64
	// Min is the floor cost of any link (serialization/stack overhead).
	// Default (NewEuclidean): 10.
	Min uint64
	// Jitter is the maximum uniform extra delay added per message.
	Jitter uint64
}

// NewEuclidean returns a Euclidean model with Scale 1000 and Min 10.
func NewEuclidean(seed uint64) *Euclidean {
	return &Euclidean{Seed: seed, Scale: 1000, Min: 10}
}

// coord returns the node's virtual (x, y) position on the unit square.
func (e *Euclidean) coord(n id.ID) (x, y float64) {
	return unitCoord(e.Seed, uint64(n), 1), unitCoord(e.Seed, uint64(n), 2)
}

// Delay implements LatencyModel.
func (e *Euclidean) Delay(from, to id.ID, r *rng.Rand) uint64 {
	if from == to {
		return 1
	}
	return jittered(e.Cost(from, to), e.Jitter, r)
}

// Cost implements LatencyModel.
func (e *Euclidean) Cost(a, b id.ID) uint64 {
	if a == b {
		return 0
	}
	ax, ay := e.coord(a)
	bx, by := e.coord(b)
	d := math.Hypot(ax-bx, ay-by)
	return e.Min + uint64(d*float64(e.Scale))
}

// Name implements LatencyModel.
func (e *Euclidean) Name() string { return "euclidean" }

// TransitStub models the classic two-tier internet topology (GT-ITM): nodes
// hash into one of Clusters stub domains, each attached to a transit router
// placed on the unit square. Intra-cluster traffic pays only the stub access
// cost; inter-cluster traffic additionally crosses the transit backbone:
//
//	same cluster:      2*Stub
//	different cluster: 2*Stub + Backbone + Scale * dist(center_a, center_b)
//
// The bimodal cost distribution (cheap local links, expensive long-haul
// links) is the regime where locality-aware overlay optimization pays off
// most, and the model the X-BOT evaluation emphasises.
type TransitStub struct {
	// Seed drives cluster assignment and transit-router placement.
	Seed uint64
	// Clusters is the number of stub domains. Default (NewTransitStub): 10.
	Clusters int
	// Stub is the one-way stub access cost. Default: 5.
	Stub uint64
	// Backbone is the fixed cost of entering the transit backbone. Default: 50.
	Backbone uint64
	// Scale multiplies the unit-square distance between transit routers.
	// Default: 400.
	Scale uint64
	// Jitter is the maximum uniform extra delay added per message.
	Jitter uint64
}

// NewTransitStub returns a transit-stub model with clusters stub domains and
// the defaults documented on the struct fields.
func NewTransitStub(seed uint64, clusters int) *TransitStub {
	if clusters <= 0 {
		clusters = 10
	}
	return &TransitStub{Seed: seed, Clusters: clusters, Stub: 5, Backbone: 50, Scale: 400}
}

// cluster returns the stub domain of node n.
func (t *TransitStub) cluster(n id.ID) uint64 {
	return mix64(t.Seed^mix64(uint64(n))) % uint64(t.Clusters)
}

// Delay implements LatencyModel.
func (t *TransitStub) Delay(from, to id.ID, r *rng.Rand) uint64 {
	if from == to {
		return 1
	}
	return jittered(t.Cost(from, to), t.Jitter, r)
}

// Cost implements LatencyModel.
func (t *TransitStub) Cost(a, b id.ID) uint64 {
	if a == b {
		return 0
	}
	ca, cb := t.cluster(a), t.cluster(b)
	if ca == cb {
		return 2 * t.Stub
	}
	ax := unitCoord(t.Seed, ca, 3)
	ay := unitCoord(t.Seed, ca, 4)
	bx := unitCoord(t.Seed, cb, 3)
	by := unitCoord(t.Seed, cb, 4)
	d := math.Hypot(ax-bx, ay-by)
	return 2*t.Stub + t.Backbone + uint64(d*float64(t.Scale))
}

// Name implements LatencyModel.
func (t *TransitStub) Name() string { return "transit-stub" }

// ParseLatencyModel maps a CLI flag value to a model seeded with seed:
// "none"/"" (nil model, FIFO mode), "uniform", "euclidean", "transit" (or
// "transit-stub"). Unknown names return an error listing the options.
func ParseLatencyModel(name string, seed uint64) (LatencyModel, error) {
	switch name {
	case "", "none", "fifo":
		return nil, nil
	case "uniform":
		return NewUniform(), nil
	case "euclidean":
		return NewEuclidean(seed), nil
	case "transit", "transit-stub":
		return NewTransitStub(seed, 10), nil
	default:
		return nil, fmt.Errorf("unknown latency model %q (want none, uniform, euclidean or transit)", name)
	}
}
