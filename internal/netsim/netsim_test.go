package netsim

import (
	"errors"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/rng"
)

// recorder is a minimal process that records deliveries and can bounce
// messages onward.
type recorder struct {
	env      peer.Env
	got      []msg.Message
	from     []id.ID
	downs    []id.ID
	cycles   int
	bounceTo id.ID // if set, every delivery is forwarded there
}

func (r *recorder) Deliver(from id.ID, m msg.Message) {
	r.got = append(r.got, m)
	r.from = append(r.from, from)
	if !r.bounceTo.IsNil() {
		_ = r.env.Send(r.bounceTo, m)
	}
}

func (r *recorder) OnCycle() { r.cycles++ }

func (r *recorder) OnPeerDown(p id.ID) { r.downs = append(r.downs, p) }

func addRecorder(s *Sim, nodeID id.ID) *recorder {
	var rec *recorder
	s.Add(nodeID, func(env peer.Env) peer.Process {
		rec = &recorder{env: env}
		return rec
	})
	return rec
}

func TestSendDeliverFIFO(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	_ = a
	b := addRecorder(s, 2)
	for i := uint64(1); i <= 5; i++ {
		if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.Drain(); n != 5 {
		t.Fatalf("Drain delivered %d, want 5", n)
	}
	for i, m := range b.got {
		if m.Round != uint64(i+1) {
			t.Errorf("delivery %d has round %d; FIFO violated", i, m.Round)
		}
		if b.from[i] != 1 {
			t.Errorf("delivery %d from %v, want n1", i, b.from[i])
		}
	}
}

func TestSendToDeadFails(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	addRecorder(s, 2)
	s.Fail(2)
	err := s.Inject(1, 2, msg.Message{Type: msg.Gossip})
	if !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("send to dead node: err = %v, want ErrPeerDown", err)
	}
	if err := s.Inject(1, 99, msg.Message{Type: msg.Gossip}); !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("send to unknown node: err = %v, want ErrPeerDown", err)
	}
}

func TestInFlightDroppedOnDeath(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip}); err != nil {
		t.Fatal(err)
	}
	s.Fail(2) // dies with the message in flight
	s.Drain()
	if len(b.got) != 0 {
		t.Error("dead node received an in-flight message")
	}
	if s.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Stats().Dropped)
	}
}

func TestProbeSemantics(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	addRecorder(s, 2)
	if err := a.env.Probe(2); err != nil {
		t.Errorf("probe of live node failed: %v", err)
	}
	s.Fail(2)
	if err := a.env.Probe(2); !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("probe of dead node: %v, want ErrPeerDown", err)
	}
}

func TestWatchNotification(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	b := addRecorder(s, 2)
	c := addRecorder(s, 3)
	a.env.Watch(3)
	b.env.Watch(3)
	b.env.Unwatch(3) // b closed its connection again
	s.Fail(3)
	_ = c
	s.Drain()
	if len(a.downs) != 1 || a.downs[0] != 3 {
		t.Errorf("watcher a downs = %v, want [n3]", a.downs)
	}
	if len(b.downs) != 0 {
		t.Errorf("unwatched b downs = %v, want none", b.downs)
	}
}

func TestWatchNotificationSkipsDeadWatchers(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	addRecorder(s, 2)
	a.env.Watch(2)
	s.Fail(1) // the watcher dies first
	s.Fail(2)
	s.Drain()
	if len(a.downs) != 0 {
		t.Errorf("dead watcher was notified: %v", a.downs)
	}
}

func TestFailIdempotent(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	addRecorder(s, 2)
	a.env.Watch(2)
	s.Fail(2)
	s.Fail(2) // second Fail must not queue a second notification
	s.Drain()
	if len(a.downs) != 1 {
		t.Errorf("downs = %v, want exactly one", a.downs)
	}
}

func TestReviveRestoresDelivery(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	s.Fail(2)
	s.Revive(2)
	if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if len(b.got) != 1 {
		t.Error("revived node did not receive message")
	}
	if !s.Alive(2) {
		t.Error("revived node not alive")
	}
}

func TestRunCycleHitsEveryLiveNode(t *testing.T) {
	s := New(1)
	recs := make([]*recorder, 5)
	for i := range recs {
		recs[i] = addRecorder(s, id.ID(i+1))
	}
	s.Fail(3)
	s.RunCycles(2)
	for i, r := range recs {
		want := 2
		if id.ID(i+1) == 3 {
			want = 0
		}
		if r.cycles != want {
			t.Errorf("node %d cycles = %d, want %d", i+1, r.cycles, want)
		}
	}
}

func TestCascadedDeliveries(t *testing.T) {
	// 1 -> 2 -> 3: node 2 bounces to 3; a single Drain must process the
	// cascade.
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	c := addRecorder(s, 3)
	b.bounceTo = 3
	if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: 7}); err != nil {
		t.Fatal(err)
	}
	if n := s.Drain(); n != 2 {
		t.Fatalf("Drain delivered %d, want 2", n)
	}
	if len(c.got) != 1 || c.got[0].Round != 7 {
		t.Errorf("cascade did not reach node 3: %v", c.got)
	}
}

func TestAliveBookkeeping(t *testing.T) {
	s := New(1)
	for i := 1; i <= 4; i++ {
		addRecorder(s, id.ID(i))
	}
	s.Fail(2)
	if got := s.AliveCount(); got != 3 {
		t.Errorf("AliveCount = %d, want 3", got)
	}
	alive := s.AliveIDs()
	if len(alive) != 3 {
		t.Fatalf("AliveIDs len = %d, want 3", len(alive))
	}
	for _, n := range alive {
		if n == 2 {
			t.Error("dead node listed alive")
		}
	}
	if len(s.IDs()) != 4 {
		t.Error("IDs() must include dead nodes")
	}
	if s.Process(1) == nil || s.Process(99) != nil {
		t.Error("Process lookup wrong")
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add did not panic")
		}
	}()
	addRecorder(s, 1)
}

func TestNilAddPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Add(Nil) did not panic")
		}
	}()
	addRecorder(s, id.Nil)
}

func TestQueueLimitDropsWithErrorAndStat(t *testing.T) {
	s := New(1)
	s.MaxQueue = 4
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	var firstErr error
	for i := 0; i < 10; i++ {
		if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if !errors.Is(firstErr, ErrOverflow) {
		t.Fatalf("overflow err = %v, want ErrOverflow", firstErr)
	}
	if errors.Is(firstErr, peer.ErrPeerDown) {
		t.Fatal("overflow must be distinguishable from peer death: protocols gate failure detection on ErrPeerDown")
	}
	st := s.Stats()
	if st.Overflowed != 6 {
		t.Errorf("Overflowed = %d, want 6 (10 sends, 4 slots)", st.Overflowed)
	}
	if st.Sent != 4 {
		t.Errorf("Sent = %d, want 4", st.Sent)
	}
	// The run degrades instead of crashing: the queued prefix still delivers.
	s.Drain()
	if len(b.got) != 4 {
		t.Errorf("deliveries = %d, want the 4 accepted sends", len(b.got))
	}
}

func TestStatsCounters(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	addRecorder(s, 2)
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip})
	s.Fail(2)
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip})
	s.Drain()
	st := s.Stats()
	if st.Sent != 1 || st.Dropped != 1 || st.SendFailures != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", s.Pending())
	}
}

func TestPartitionBlocksCrossTraffic(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	b := addRecorder(s, 2)
	s.Partition(func(n id.ID) int { return int(n % 2) })
	if err := a.env.Send(2, msg.Message{Type: msg.Gossip}); !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("cross-partition send: %v, want ErrPeerDown", err)
	}
	if err := a.env.Probe(2); !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("cross-partition probe: %v, want ErrPeerDown", err)
	}
	_ = b
	s.Heal()
	if err := a.env.Send(2, msg.Message{Type: msg.Gossip}); err != nil {
		t.Errorf("post-heal send: %v", err)
	}
	s.Drain()
	if len(b.got) != 1 {
		t.Error("post-heal message not delivered")
	}
}

func TestPartitionSameSideUnaffected(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	c := addRecorder(s, 3)
	s.Partition(func(n id.ID) int { return int(n % 2) }) // 1 and 3 same side
	if err := a.env.Send(3, msg.Message{Type: msg.Gossip}); err != nil {
		t.Errorf("same-side send: %v", err)
	}
	s.Drain()
	if len(c.got) != 1 {
		t.Error("same-side message lost")
	}
}

func TestPartitionResetsOnlyCrossWatchers(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1) // group 1
	b := addRecorder(s, 2) // group 0
	c := addRecorder(s, 3) // group 1
	a.env.Watch(3)         // same side: must NOT fire
	b.env.Watch(3)         // cross side: must fire
	s.Partition(func(n id.ID) int { return int(n % 2) })
	s.Drain()
	if len(a.downs) != 0 {
		t.Errorf("same-side watcher notified: %v", a.downs)
	}
	if len(b.downs) != 1 || b.downs[0] != 3 {
		t.Errorf("cross-side watcher downs = %v, want [n3]", b.downs)
	}
	_ = c
}

func TestPartitionThenCrashStillNotifies(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	addRecorder(s, 3)
	a.env.Watch(3)
	s.Partition(func(n id.ID) int { return 0 }) // everyone same group
	s.Fail(3)
	s.Drain()
	if len(a.downs) != 1 {
		t.Errorf("crash under partition not notified: %v", a.downs)
	}
}

func TestTapObservesDeliveriesDeterministically(t *testing.T) {
	run := func() []uint64 {
		s := New(7)
		var seen []uint64
		s.Tap = func(from, to id.ID, m msg.Message) {
			seen = append(seen, m.Round)
		}
		addRecorder(s, 1)
		b := addRecorder(s, 2)
		b.bounceTo = 3
		addRecorder(s, 3)
		for i := uint64(1); i <= 4; i++ {
			_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: i})
		}
		s.Drain()
		return seen
	}
	a, b := run(), run()
	if len(a) != 8 { // 4 direct + 4 bounced
		t.Fatalf("tap saw %d deliveries, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tap order diverged at %d", i)
		}
	}
}

func TestLatencyModeOrdersByVirtualTime(t *testing.T) {
	s := New(1)
	// Fixed per-destination latencies: message to 3 is slower than to 2,
	// so despite send order 3-first, 2 must deliver first.
	s.Latency = func(from, to id.ID, _ *rng.Rand) uint64 {
		if to == 3 {
			return 100
		}
		return 10
	}
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	c := addRecorder(s, 3)
	order := make([]id.ID, 0, 2)
	s.Tap = func(_, to id.ID, _ msg.Message) { order = append(order, to) }
	_ = s.Inject(1, 3, msg.Message{Type: msg.Gossip, Round: 1})
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: 2})
	s.Drain()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("delivery order = %v, want [n2 n3]", order)
	}
	if len(b.got) != 1 || len(c.got) != 1 {
		t.Error("deliveries lost")
	}
	if s.Now() != 100 {
		t.Errorf("virtual clock = %d, want 100", s.Now())
	}
}

func TestLatencyModeTieBreaksBySendOrder(t *testing.T) {
	s := New(1)
	s.Latency = func(id.ID, id.ID, *rng.Rand) uint64 { return 5 }
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	for i := uint64(1); i <= 10; i++ {
		_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: i})
	}
	s.Drain()
	for i, m := range b.got {
		if m.Round != uint64(i+1) {
			t.Fatalf("tie-break violated at %d: %d", i, m.Round)
		}
	}
}

func TestLatencyModeClockAccumulatesAcrossHops(t *testing.T) {
	// 1 -> 2 -> 3 with latency 7 per hop: node 3 delivers at t=14.
	s := New(1)
	s.Latency = func(id.ID, id.ID, *rng.Rand) uint64 { return 7 }
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	b.bounceTo = 3
	addRecorder(s, 3)
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: 1})
	s.Drain()
	if s.Now() != 14 {
		t.Errorf("clock = %d, want 14", s.Now())
	}
}

func TestLatencyModeDeterministic(t *testing.T) {
	run := func() []uint64 {
		s := New(9)
		s.Latency = func(_, _ id.ID, r *rng.Rand) uint64 { return 1 + r.Uint64n(50) }
		var order []uint64
		s.Tap = func(_, _ id.ID, m msg.Message) { order = append(order, m.Round) }
		addRecorder(s, 1)
		addRecorder(s, 2)
		addRecorder(s, 3)
		for i := uint64(1); i <= 20; i++ {
			_ = s.Inject(1, id.ID(2+i%2), msg.Message{Type: msg.Gossip, Round: i})
		}
		s.Drain()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jittered latency broke determinism at %d", i)
		}
	}
}

func TestLatencyModeDropsToDeadAndPartitioned(t *testing.T) {
	s := New(1)
	s.Latency = func(id.ID, id.ID, *rng.Rand) uint64 { return 10 }
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip})
	s.Fail(2)
	s.Drain()
	if len(b.got) != 0 {
		t.Error("dead node received a timed in-flight message")
	}
	if s.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d", s.Stats().Dropped)
	}
}

// TestLatencyModeWholeProtocolStillConverges runs the full HyParView cluster
// flow under a jittered latency model: reliability must be unaffected (the
// protocol is asynchronous; only timing changes).
func TestLatencyModeWholeProtocolStillConverges(t *testing.T) {
	s := New(33)
	s.Latency = func(_, _ id.ID, r *rng.Rand) uint64 { return 1 + r.Uint64n(20) }
	// Reuse the recorder-free core protocol path via peer plumbing is
	// exercised in package core's tests; here a message-count sanity check
	// suffices: inject a chain and confirm cascaded timed delivery works.
	a := addRecorder(s, 1)
	b := addRecorder(s, 2)
	c := addRecorder(s, 3)
	b.bounceTo = 3
	_ = a
	for i := uint64(1); i <= 50; i++ {
		_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: i})
	}
	s.Drain()
	if len(c.got) != 50 {
		t.Fatalf("cascaded timed deliveries = %d, want 50", len(c.got))
	}
}

func TestSchedulerTimersExemptFromQueueLimit(t *testing.T) {
	s := New(1)
	s.MaxQueue = 1
	a := addRecorder(s, 1)
	addRecorder(s, 2)
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip}) // fills the wire budget
	// Timers are bounded by protocol state, not amplified by storms:
	// dropping them would wedge timer-owning state machines (an armed
	// Plumtree timer that never fires blocks that round's repair forever).
	a.env.After(5, msg.Message{Type: msg.Tick, Round: 42})
	a.env.Every(7, msg.Message{Type: msg.Tick, Round: 43})
	s.Drain()
	if len(a.got) != 1 || a.got[0].Round != 42 {
		t.Fatalf("timer deliveries = %v, want the After(5) tick", a.got)
	}
	if s.Stats().Overflowed != 0 {
		t.Errorf("Overflowed = %d, want 0 (only messages count)", s.Stats().Overflowed)
	}
	if got := s.RunFor(7); got != 1 {
		t.Errorf("periodic fire in RunFor = %d deliveries, want 1", got)
	}
}

func TestSchedulerEventsParkedAcrossFailure(t *testing.T) {
	s := New(1)
	a := addRecorder(s, 1)
	a.env.After(5, msg.Message{Type: msg.Tick, Round: 1})
	a.env.Every(10, msg.Message{Type: msg.Tick, Round: 2})
	s.Fail(1)
	if n := s.RunFor(40); n != 0 {
		t.Fatalf("failed node received %d deliveries", n)
	}
	if len(a.got) != 0 {
		t.Fatalf("failed node saw timers: %v", a.got)
	}
	// A dead node's periodic registration must not keep re-arming: it is
	// parked after its first due firing, so the heaps go quiet.
	if got := len(s.pheap) + len(s.heap); got != 0 {
		t.Fatalf("dead node keeps %d events cycling through the heaps", got)
	}
	// Revive: the parked one-shot fires behind current traffic, the parked
	// periodic resumes one interval from now.
	s.Revive(1)
	s.Drain()
	if len(a.got) != 1 || a.got[0].Round != 1 {
		t.Fatalf("parked timer after revive = %v, want the After tick", a.got)
	}
	s.RunFor(10)
	if len(a.got) != 2 || a.got[1].Round != 2 {
		t.Fatalf("parked periodic did not resume: %v", a.got)
	}
}
