package netsim

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/rng"
)

func TestLatencyModelsSymmetricAndDeterministic(t *testing.T) {
	models := []LatencyModel{
		NewUniform(),
		NewEuclidean(42),
		NewTransitStub(42, 8),
	}
	for _, m := range models {
		t.Run(m.Name(), func(t *testing.T) {
			for a := id.ID(1); a <= 40; a++ {
				for b := a + 1; b <= 40; b++ {
					c1 := m.Cost(a, b)
					if c2 := m.Cost(b, a); c1 != c2 {
						t.Fatalf("cost asymmetric: %v->%v=%d, %v->%v=%d", a, b, c1, b, a, c2)
					}
					if c1 != m.Cost(a, b) {
						t.Fatalf("cost of %v-%v not deterministic", a, b)
					}
					// Without jitter, Delay must equal Cost.
					if d := m.Delay(a, b, rng.New(1)); d != c1 {
						t.Fatalf("delay %d != cost %d for %v-%v", d, c1, a, b)
					}
				}
			}
			if m.Cost(7, 7) != 0 {
				t.Error("self cost not zero")
			}
			if m.Delay(7, 7, rng.New(1)) != 1 {
				t.Error("self delay not the minimal tick")
			}
		})
	}
}

func TestEuclideanCostSpread(t *testing.T) {
	m := NewEuclidean(7)
	var min, max uint64 = 1 << 62, 0
	for a := id.ID(1); a <= 100; a++ {
		for b := a + 1; b <= 100; b++ {
			c := m.Cost(a, b)
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
	}
	// Coordinates on the unit square with Scale 1000 must produce a wide
	// spread: that spread is what a topology optimizer exploits.
	if max < 4*min {
		t.Errorf("cost spread too narrow: min=%d max=%d", min, max)
	}
	if min < m.Min {
		t.Errorf("cost %d below the model floor %d", min, m.Min)
	}
}

func TestTransitStubBimodal(t *testing.T) {
	m := NewTransitStub(3, 5)
	var local, remote int
	for a := id.ID(1); a <= 60; a++ {
		for b := a + 1; b <= 60; b++ {
			if m.cluster(a) == m.cluster(b) {
				local++
				if got := m.Cost(a, b); got != 2*m.Stub {
					t.Fatalf("intra-cluster cost = %d, want %d", got, 2*m.Stub)
				}
			} else {
				remote++
				if got := m.Cost(a, b); got < 2*m.Stub+m.Backbone {
					t.Fatalf("inter-cluster cost = %d, below backbone floor", got)
				}
			}
		}
	}
	if local == 0 || remote == 0 {
		t.Fatalf("degenerate clustering: local=%d remote=%d", local, remote)
	}
}

func TestUniformJitterBounded(t *testing.T) {
	m := &Uniform{Base: 100, Jitter: 20}
	r := rng.New(9)
	for i := 0; i < 1000; i++ {
		d := m.Delay(1, 2, r)
		if d < 100 || d > 120 {
			t.Fatalf("jittered delay %d outside [100,120]", d)
		}
	}
	if m.Cost(1, 2) != 100 {
		t.Error("cost must strip jitter")
	}
}

func TestParseLatencyModel(t *testing.T) {
	for name, want := range map[string]string{
		"uniform":      "uniform",
		"euclidean":    "euclidean",
		"transit":      "transit-stub",
		"transit-stub": "transit-stub",
	} {
		m, err := ParseLatencyModel(name, 1)
		if err != nil || m == nil {
			t.Fatalf("ParseLatencyModel(%q): %v, %v", name, m, err)
		}
		if m.Name() != want {
			t.Errorf("ParseLatencyModel(%q).Name() = %q, want %q", name, m.Name(), want)
		}
	}
	for _, name := range []string{"", "none", "fifo"} {
		if m, err := ParseLatencyModel(name, 1); err != nil || m != nil {
			t.Errorf("ParseLatencyModel(%q) = %v, %v; want nil, nil", name, m, err)
		}
	}
	if _, err := ParseLatencyModel("bongo", 1); err == nil {
		t.Error("unknown model name accepted")
	}
}

// echoProc delivers nothing; it records the virtual time of each delivery.
type echoProc struct {
	sim   *Sim
	times []uint64
}

func (p *echoProc) Deliver(from id.ID, m msg.Message) { p.times = append(p.times, p.sim.Now()) }
func (p *echoProc) OnCycle()                          {}

// TestSimWithLatencyModelOrdersByDistance wires a Euclidean model into a Sim
// and checks that deliveries happen in cost order and advance the clock.
func TestSimWithLatencyModelOrdersByDistance(t *testing.T) {
	s := New(1)
	model := NewEuclidean(1)
	s.Latency = model.Delay
	procs := make(map[id.ID]*echoProc)
	for _, n := range []id.ID{1, 2, 3, 4} {
		n := n
		s.Add(n, func(env peer.Env) peer.Process {
			p := &echoProc{sim: s}
			procs[n] = p
			return p
		})
	}
	for _, dst := range []id.ID{2, 3, 4} {
		if err := s.Inject(1, dst, msg.Message{Type: msg.Gossip, Sender: 1, Round: 1}); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	for _, dst := range []id.ID{2, 3, 4} {
		p := procs[dst]
		if len(p.times) != 1 {
			t.Fatalf("node %v deliveries = %d", dst, len(p.times))
		}
		if want := model.Cost(1, dst); p.times[0] != want {
			t.Errorf("node %v delivered at t=%d, want cost %d", dst, p.times[0], want)
		}
	}
	if s.Now() == 0 {
		t.Error("virtual clock did not advance")
	}
}
