// The sharded wave/barrier engine: the multi-core execution mode of the
// simulator (NewSharded with shards >= 2). The single-shard engine in
// netsim.go processes one event at a time off a global heap; this engine
// partitions the node table by dense index (idx mod shards), keeps every
// shard's pending events in per-instant FIFO bucket vectors, and advances
// virtual time as a sequence of deterministic barrier steps:
//
//  1. Wave formation (coordinator): the wave is every event due at the
//     current instant T — the shard's bucket for T plus, in RunFor, due
//     periodic rounds — each already in (at, seq) order.
//  2. Hook pre-pass (coordinator, only when Tap or Intercept is installed):
//     the wave is walked across all shards in global seq order and the
//     fault-injection hook and trace tap run serially, exactly as the
//     single-shard engine would run them. This is what keeps stateful
//     injectors byte-deterministic: hook state evolves in a canonical
//     order no matter how many shards execute the deliveries.
//  3. Parallel delivery: each shard delivers its slice of the wave to its
//     own nodes, in seq order per node. Handler output — sends, timers,
//     periodic re-arms — is not enqueued yet; it is recorded in a per-shard
//     output log tagged (parent seq, birth index).
//  4. Canonical merge (coordinator): the shards' output logs, each already
//     sorted by (parent seq, birth index), are S-way merged in that order;
//     every record is assigned the next global sequence number, latency
//     delays are drawn from the root stream in merge order, and the event
//     is routed to its destination shard's bucket. Delay-0 output forms the
//     next wave at the same instant; the loop repeats until the instant
//     quiesces, then time advances to the next bucket.
//
// Because a FIFO-ordered serial run is exactly "waves processed in (parent
// seq, birth) order", the merge reproduces the single-shard engine's total
// delivery order per destination node: with the same seed, a run is
// byte-identical across shard counts whenever no Intercept hook reschedules
// traffic (and byte-identical across repeated runs of the same shard count
// always — the determinism contract sharding must preserve).
//
// Shared mutable state during a parallel wave is confined to: the shard's
// own buckets/outputs/stats, the destination node's process state (every
// node belongs to exactly one shard), and whatever the host application's
// Delivery callbacks touch — those must be synchronized by the caller when
// shards >= 2 (the sim harness guards its tracker with a mutex).
package netsim

import (
	"fmt"
	"runtime"
	"sync"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// parallelMinWave is the smallest wave (events across all shards) worth
// fanning out to shard goroutines; smaller waves are processed serially by
// the coordinator, which is both faster (no wakeup latency) and identical in
// outcome (shard slices touch disjoint state either way).
const parallelMinWave = 64

// waveLookahead is how far ahead of the delivery cursor runWave touches the
// upcoming destinations' node records: far enough to overlap several DRAM
// misses in the out-of-order window, near enough that the lines are still
// cached when the cursor arrives.
const waveLookahead = 12

// sevent is one scheduled event in a shard's bucket, wave or periodic heap.
type sevent struct {
	at   uint64 // delivery instant (bucket entries: the bucket's time)
	seq  uint64 // global sequence number, the deterministic tiebreaker
	skip bool   // suppressed by the Intercept pre-pass (already counted)
	ev   event
}

// outRec is one unit of handler output recorded during a parallel wave,
// sequenced canonically at the barrier.
type outRec struct {
	pseq  uint64 // seq of the event whose handler produced this record
	birth uint32 // order among that handler's outputs (re-arm first, then sends)
	at    uint64 // absolute delivery time for timers and periodic re-arms
	ev    event
}

// shardStats are the per-shard slices of Stats, summed on read.
type shardStats struct {
	sent         uint64
	delivered    uint64
	dropped      uint64
	sendFailures uint64
	bytesSent    uint64
}

// shard owns one partition of the node population (dense index mod shard
// count) and all event state addressed to it.
type shard struct {
	sim *Sim
	id  int

	cur  []sevent // the wave slice being processed at the current instant
	next []sevent // delay-0 outputs joining the next wave at the same instant

	future map[uint64][]sevent // pending events keyed by instant
	times  []uint64            // min-heap over future's keys
	pool   [][]sevent          // recycled bucket vectors

	pheap []sevent // periodic registrations, (at, seq) min-heap
	due   []sevent // scratch: due periodics pulled for the current instant

	out  []outRec // wave output log, (pseq, birth)-ordered by construction
	opos int      // merge cursor into out
	ppos int      // pre-pass cursor into cur

	// pseq/birth identify the event whose handler is currently running, so
	// sends and timers land in out with their canonical tag.
	pseq  uint64
	birth uint32

	waveDelivered int // deliveries made in the current wave (coordinator-read)
	wireDone      int // wire messages consumed this wave (coordinator-read)

	queued int // events in future buckets + next (Pending)

	touched uint64 // lookahead-touch sink; see runWave

	// watching[d] is the set of nodes on this shard holding an open
	// connection to d. Writes come only from this shard's nodes (their
	// Watch/Unwatch), so no lock is needed; the coordinator unions the
	// per-shard sets when d fails.
	watching map[id.ID]map[id.ID]struct{}

	stats shardStats
}

// sharded reports whether the wave/barrier engine is active.
func (s *Sim) sharded() bool { return len(s.shards) > 0 }

// Shards returns the shard count: 1 for the single-shard heap engine.
func (s *Sim) Shards() int {
	if !s.sharded() {
		return 1
	}
	return len(s.shards)
}

// NewSharded returns a simulator whose event engine is partitioned into
// shards parallel shards (see the package comment of this file). A shard
// count of one (or less) returns the classic single-shard engine — the
// reference the conformance suite compares against. Nodes are assigned to
// shards by dense index modulo the shard count.
func NewSharded(seed uint64, shards int) *Sim {
	if shards <= 1 {
		return New(seed)
	}
	s := New(seed)
	s.shards = make([]shard, shards)
	// On a single-P runtime goroutine fan-out cannot overlap anything and
	// only adds scheduling latency per wave; the serial path is identical in
	// outcome (shard slices touch disjoint state either way), so take it.
	// Captured once: tests that want the concurrent path under -race raise
	// GOMAXPROCS before construction.
	s.waveParallel = runtime.GOMAXPROCS(0) > 1
	for i := range s.shards {
		s.shards[i] = shard{
			sim:      s,
			id:       i,
			future:   make(map[uint64][]sevent),
			watching: make(map[id.ID]map[id.ID]struct{}),
		}
	}
	return s
}

// shardOf returns the shard owning the node at table index idx.
func (s *Sim) shardOf(idx int32) *shard {
	return &s.shards[int(idx)%len(s.shards)]
}

// ---- enqueue paths -------------------------------------------------------

// grabVec takes a recycled bucket vector — the largest one pooled. Wave
// vectors grow to the broadcast's peak wave (millions of events at 1M
// nodes); handing a small bucket vector to a big wave would regrow it
// through doubling reallocs of hundreds of MB per broadcast. Picking the
// max-capacity vector makes the two biggest arrays ping-pong between the
// cur/next wave slots, so the steady state re-allocates nothing. The pool
// stays a handful of entries, so the scan is noise.
func (sh *shard) grabVec() []sevent {
	if n := len(sh.pool); n > 0 {
		best := 0
		for i := 1; i < n; i++ {
			if cap(sh.pool[i]) > cap(sh.pool[best]) {
				best = i
			}
		}
		v := sh.pool[best]
		sh.pool[best] = sh.pool[n-1]
		sh.pool = sh.pool[:n-1]
		return v[:0]
	}
	return make([]sevent, 0, 64)
}

// putVec returns a vector's backing storage to the pool.
func (sh *shard) putVec(v []sevent) {
	if cap(v) > 0 {
		sh.pool = append(sh.pool, v[:0])
	}
}

// enqueueAt routes one sequenced event to its destination shard: the next
// wave when it lands on the active instant, a future bucket otherwise.
func (s *Sim) enqueueAt(at, seq uint64, ev *event) {
	sh := s.shardOf(ev.to)
	se := sevent{at: at, seq: seq, ev: *ev}
	if s.instantActive && at == s.now {
		sh.next = append(sh.next, se)
		sh.queued++
		return
	}
	b, ok := sh.future[at]
	if !ok {
		b = sh.grabVec()
		pushTime(&sh.times, at)
	}
	sh.future[at] = append(b, se)
	sh.queued++
}

// enqueuePeriodic registers a periodic event on its shard's heap.
func (s *Sim) enqueuePeriodic(at, seq uint64, ev *event) {
	sh := s.shardOf(ev.to)
	pushSevent(&sh.pheap, sevent{at: at, seq: seq, ev: *ev})
}

// sendSharded is the wave-engine send path. During a parallel wave the event
// is recorded in the sending shard's output log for canonical sequencing at
// the barrier; from coordinator context (harness Inject, OnCycle and
// OnPeerDown handlers, hooks) it is sequenced immediately, exactly like the
// single-shard engine. sh is the sending node's shard (nil for harness
// sends).
func (s *Sim) sendSharded(sh *shard, from, to id.ID, m *msg.Message) error {
	ti, ok := s.nodeIndex(to)
	if !ok || !s.aliveAt(ti) || !s.reachable(from, to) {
		if sh != nil && s.inWave {
			sh.stats.sendFailures++
		} else {
			s.stats.SendFailures++
		}
		return fmt.Errorf("send %v->%v: %w", from, to, peer.ErrPeerDown)
	}
	if sh != nil && s.inWave {
		// Overflow is resolved at the barrier (the in-flight total is not
		// known mid-wave); the tentative counters are rolled back there if
		// the merge sheds this event.
		sh.out = append(sh.out, outRec{pseq: sh.pseq, birth: sh.birth,
			ev: event{from: from, to: ti, kind: kindMessage, m: *m}})
		sh.birth++
		sh.stats.sent++
		sh.stats.bytesSent += uint64(m.EncodedSize())
		return nil
	}
	// Coordinator context: synchronous overflow, immediate sequencing —
	// identical semantics to the single-shard engine.
	if s.wire >= s.queueLimit() {
		s.stats.Overflowed++
		return fmt.Errorf("%w: %d messages in flight (message storm?)", ErrOverflow, s.wire)
	}
	s.wire++
	var delay uint64
	if s.Latency != nil {
		delay = s.Latency(from, to, s.rand)
	}
	s.seq++
	s.enqueueAt(s.now+delay, s.seq, &event{from: from, to: ti, kind: kindMessage, m: *m})
	s.stats.Sent++
	s.stats.BytesSent += uint64(m.EncodedSize())
	return nil
}

// redeliverSharded is Redeliver on the wave engine: hooks run on the
// coordinator (the pre-pass), so re-entry always sequences immediately.
func (s *Sim) redeliverSharded(from, to id.ID, m *msg.Message, delay uint64) error {
	ti, ok := s.nodeIndex(to)
	if !ok || !s.aliveAt(ti) {
		return fmt.Errorf("redeliver %v->%v: %w", from, to, peer.ErrPeerDown)
	}
	if s.wire >= s.queueLimit() {
		s.stats.Overflowed++
		return fmt.Errorf("%w: %d messages in flight (message storm?)", ErrOverflow, s.wire)
	}
	s.wire++
	s.seq++
	s.enqueueAt(s.now+delay, s.seq, &event{from: from, to: ti, kind: kindMessage, exempt: true, m: *m})
	s.stats.Redelivered++
	return nil
}

// scheduleSharded handles After (oneshot=true) and Every from an endpoint.
func (s *Sim) scheduleSharded(sh *shard, self id.ID, idx int32, oneshot bool, delay uint64, m *msg.Message) {
	kind, interval := kindPeriodic, delay
	if oneshot {
		kind, interval = kindTimer, 0
	}
	ev := event{from: self, to: idx, kind: kind, interval: interval, m: *m}
	if sh != nil && s.inWave {
		sh.out = append(sh.out, outRec{pseq: sh.pseq, birth: sh.birth, at: s.now + delay, ev: ev})
		sh.birth++
		return
	}
	s.seq++
	if oneshot {
		s.enqueueAt(s.now+delay, s.seq, &ev)
	} else {
		s.enqueuePeriodic(s.now+delay, s.seq, &ev)
	}
}

// queueLimit resolves MaxQueue.
func (s *Sim) queueLimit() int {
	if s.MaxQueue > 0 {
		return s.MaxQueue
	}
	return 64 << 20
}

// ---- the barrier loop ----------------------------------------------------

// minOnceTime returns the earliest instant holding bucketed traffic.
func (s *Sim) minOnceTime() (uint64, bool) {
	var best uint64
	found := false
	for i := range s.shards {
		sh := &s.shards[i]
		if len(sh.times) > 0 && (!found || sh.times[0] < best) {
			best, found = sh.times[0], true
		}
	}
	return best, found
}

// minPeriodicTime returns the earliest pending periodic fire.
func (s *Sim) minPeriodicTime() (uint64, bool) {
	var best uint64
	found := false
	for i := range s.shards {
		sh := &s.shards[i]
		if len(sh.pheap) > 0 && (!found || sh.pheap[0].at < best) {
			best, found = sh.pheap[0].at, true
		}
	}
	return best, found
}

// drainSharded is Drain on the wave engine: periodic schedule frozen.
func (s *Sim) drainSharded() int {
	delivered := 0
	s.flushDowns()
	for {
		t, ok := s.minOnceTime()
		if !ok {
			return delivered
		}
		delivered += s.runInstant(t, false)
		s.flushDowns()
	}
}

// runForSharded is RunFor on the wave engine: periodic rounds fire too.
func (s *Sim) runForSharded(d uint64) int {
	target := s.now + d
	delivered := 0
	s.flushDowns()
	for {
		t, ok := s.minOnceTime()
		if pt, pok := s.minPeriodicTime(); pok && (!ok || pt < t) {
			t, ok = pt, true
		}
		if !ok || t > target {
			if target > s.now {
				s.now = target
			}
			return delivered
		}
		delivered += s.runInstant(t, true)
		s.flushDowns()
	}
}

// runInstant processes every event due at instant t (which may lie in the
// past for stale periodic rounds after a Drain advanced the clock), wave by
// wave, until the instant quiesces. It returns the number of deliveries.
func (s *Sim) runInstant(t uint64, periodic bool) int {
	if t > s.now {
		s.now = t
	}
	t = s.now
	s.instantActive = true
	delivered := 0

	// Wave formation: the instant's bucket on each shard, with due periodic
	// rounds spliced in by (at, seq).
	for i := range s.shards {
		sh := &s.shards[i]
		sh.formWave(t, periodic)
	}

	for {
		total := 0
		for i := range s.shards {
			total += len(s.shards[i].cur)
		}
		if total == 0 {
			break
		}
		if s.Tap != nil || s.Intercept != nil {
			s.prePass()
		}
		s.inWave = true
		if s.waveParallel && total >= parallelMinWave {
			s.waveWG.Add(len(s.shards))
			for i := range s.shards {
				go s.shards[i].runWave(&s.waveWG)
			}
			s.waveWG.Wait()
		} else {
			for i := range s.shards {
				s.shards[i].runWave(nil)
			}
		}
		s.inWave = false
		for i := range s.shards {
			sh := &s.shards[i]
			delivered += sh.waveDelivered
			s.wire -= sh.wireDone
		}
		s.mergeOutputs()
		// The next wave at this instant is whatever delay-0 output landed.
		for i := range s.shards {
			sh := &s.shards[i]
			sh.putVec(sh.cur)
			sh.cur, sh.next = sh.next, sh.grabVec()
			sh.queued -= len(sh.cur)
			sh.ppos = 0
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.putVec(sh.cur)
		sh.cur = nil
		sh.putVec(sh.next)
		sh.next = nil
	}
	s.instantActive = false
	return delivered
}

// formWave assembles the shard's slice of the instant-t wave: the t bucket
// plus (in RunFor) periodic rounds due at or before t, ordered by (at, seq).
func (sh *shard) formWave(t uint64, periodic bool) {
	var bucket []sevent
	if b, ok := sh.future[t]; ok {
		delete(sh.future, t)
		popTimeValue(&sh.times, t)
		bucket = b
		sh.queued -= len(b)
	}
	if !periodic || len(sh.pheap) == 0 || sh.pheap[0].at > t {
		// Common case: the bucket is the wave.
		if bucket != nil {
			sh.putVec(sh.cur)
			sh.cur = bucket
		} else {
			sh.cur = sh.grabVec()
		}
		sh.next = sh.grabVec()
		sh.ppos = 0
		return
	}
	// Pull due periodic rounds in (at, seq) order; rounds whose deadline
	// already passed (Drain froze the schedule while time advanced) come
	// first, then rounds at exactly t interleave with the bucket by seq.
	sh.due = sh.due[:0]
	for len(sh.pheap) > 0 && sh.pheap[0].at <= t {
		sh.due = append(sh.due, popSevent(&sh.pheap))
	}
	cur := sh.grabVec()
	di, bi := 0, 0
	for di < len(sh.due) && sh.due[di].at < t {
		cur = append(cur, sh.due[di])
		di++
	}
	for di < len(sh.due) || bi < len(bucket) {
		if bi >= len(bucket) || (di < len(sh.due) && sh.due[di].seq < bucket[bi].seq) {
			cur = append(cur, sh.due[di])
			di++
		} else {
			cur = append(cur, bucket[bi])
			bi++
		}
	}
	sh.putVec(bucket)
	sh.putVec(sh.cur)
	sh.cur = cur
	sh.next = sh.grabVec()
	sh.ppos = 0
}

// prePass walks the wave across all shards in global seq order, running the
// Intercept hook and the Tap exactly as the single-shard engine would:
// serially, in canonical delivery order, on the coordinator goroutine. Hook
// verdicts are recorded on the events (skip / replaced message) and applied
// during the parallel phase.
func (s *Sim) prePass() {
	for {
		var best *shard
		for i := range s.shards {
			sh := &s.shards[i]
			if sh.ppos < len(sh.cur) && (best == nil || sh.cur[sh.ppos].seq < best.cur[best.ppos].seq) {
				best = sh
			}
		}
		if best == nil {
			return
		}
		se := &best.cur[best.ppos]
		best.ppos++
		ev := &se.ev
		if ev.kind != kindMessage {
			continue
		}
		dst := &s.nodes[ev.to]
		if !dst.alive || !s.reachable(ev.from, dst.id) {
			continue // dropped in the parallel phase; hooks never see it
		}
		if s.Intercept != nil && !ev.exempt {
			hooked := ev.m
			repl, deliver := s.Intercept(dst.id, &hooked)
			if !deliver {
				se.skip = true
				s.stats.FaultDropped++
				continue
			}
			if repl != nil {
				hooked = *repl
			}
			ev.m = hooked
		}
		if s.Tap != nil {
			s.Tap(ev.from, dst.id, ev.m)
		}
	}
}

// runWave delivers the shard's slice of the current wave. It runs on a shard
// goroutine for large waves and on the coordinator for small ones; either
// way it touches only this shard's nodes, buckets, output log and counters.
func (sh *shard) runWave(wg *sync.WaitGroup) {
	if wg != nil {
		defer wg.Done()
	}
	s := sh.sim
	count, wireDone := 0, 0
	for i := range sh.cur {
		// Lookahead touch: the wave vector already knows the next few
		// destinations, so start their node records' cache misses now and
		// let out-of-order execution overlap them with this delivery. The
		// serial heap engine structurally cannot do this — the next event
		// is only known after the current pop. At 1M nodes every delivery
		// touches DRAM-cold node state, and this memory-level parallelism
		// is worth more than the arithmetic around it.
		if i+waveLookahead < len(sh.cur) {
			ahead := &s.nodes[sh.cur[i+waveLookahead].ev.to]
			if ahead.alive {
				sh.touched++ // keeps the load live past dead-code elimination
			}
		}
		se := &sh.cur[i]
		ev := &se.ev
		if ev.kind == kindMessage {
			wireDone++
		}
		dst := &s.nodes[ev.to]
		if !dst.alive {
			if ev.kind == kindMessage {
				sh.stats.dropped++
			} else {
				dst.parked = append(dst.parked, *ev)
			}
			continue
		}
		sh.pseq, sh.birth = se.seq, 1
		if ev.kind == kindPeriodic {
			// Re-arm before delivering (birth 0: ahead of the handler's own
			// output), clamping missed deadlines like time.Ticker.
			next := se.at + ev.interval
			if next <= s.now {
				next = s.now + ev.interval
			}
			sh.out = append(sh.out, outRec{pseq: se.seq, birth: 0, at: next, ev: *ev})
		}
		if ev.kind == kindMessage {
			if !s.reachable(ev.from, dst.id) {
				sh.stats.dropped++
				continue
			}
			if se.skip {
				continue // suppressed by the Intercept pre-pass
			}
		}
		dst.proc.Deliver(ev.from, ev.m)
		count++
		if ev.kind == kindMessage {
			sh.stats.delivered++
		}
	}
	sh.waveDelivered = count
	sh.wireDone = wireDone
}

// mergeOutputs sequences every shard's wave output canonically: an S-way
// merge by (parent seq, birth index) — each shard's log is already sorted —
// assigning global sequence numbers, drawing latency delays from the root
// stream in merge order, and routing events to their destination shards.
// This order is exactly the order in which a single-shard run would have
// made the same schedule calls, which is what keeps traces byte-identical
// across shard counts.
func (s *Sim) mergeOutputs() {
	for i := range s.shards {
		s.shards[i].opos = 0
	}
	limit := s.queueLimit()
	for {
		var src *shard
		for i := range s.shards {
			sh := &s.shards[i]
			if sh.opos >= len(sh.out) {
				continue
			}
			if src == nil {
				src = sh
				continue
			}
			a, b := &sh.out[sh.opos], &src.out[src.opos]
			if a.pseq < b.pseq || (a.pseq == b.pseq && a.birth < b.birth) {
				src = sh
			}
		}
		if src == nil {
			break
		}
		r := &src.out[src.opos]
		src.opos++
		switch r.ev.kind {
		case kindMessage:
			var delay uint64
			if s.Latency != nil {
				delay = s.Latency(r.ev.from, s.nodes[r.ev.to].id, s.rand)
			}
			if s.wire >= limit {
				// Shed at the barrier: the sender already returned nil, so
				// roll its tentative counters back and count the overflow.
				s.stats.Overflowed++
				src.stats.sent--
				src.stats.bytesSent -= uint64(r.ev.m.EncodedSize())
				continue
			}
			s.wire++
			s.seq++
			s.enqueueAt(s.now+delay, s.seq, &r.ev)
		case kindTimer:
			s.seq++
			s.enqueueAt(r.at, s.seq, &r.ev)
		case kindPeriodic:
			s.seq++
			s.enqueuePeriodic(r.at, s.seq, &r.ev)
		}
	}
	for i := range s.shards {
		s.shards[i].out = s.shards[i].out[:0]
	}
}

// ---- sharded liveness bookkeeping ---------------------------------------

// flushDownsSharded is flushDowns over the per-shard watch tables: for each
// pending victim the watcher sets are unioned across shards, sorted, and
// notified exactly like the single-shard engine.
func (s *Sim) flushDownsSharded() {
	for len(s.pendingDowns) > 0 {
		victim := s.pendingDowns[0]
		s.pendingDowns = s.pendingDowns[1:]
		watcherIDs := s.gatherWatchers(victim, nil)
		if len(watcherIDs) == 0 {
			continue
		}
		sortIDs(watcherIDs)
		vDead := true
		if vi, ok := s.nodeIndex(victim); ok && s.nodes[vi].alive {
			vDead = false
		}
		for _, w := range watcherIDs {
			wi, ok := s.nodeIndex(w)
			if !ok || !s.nodes[wi].alive {
				s.dropWatch(w, victim) // dead watchers never hear anything again
				continue
			}
			// A crash resets every connection; a partition resets only the
			// links that cross the cut.
			if !vDead && s.reachable(w, victim) {
				continue
			}
			s.dropWatch(w, victim)
			if obs, ok := s.nodes[wi].proc.(peer.FailureObserver); ok {
				obs.OnPeerDown(victim)
			}
		}
	}
}

// partitionBreakSharded queues reset notifications for watched links that
// cross a freshly installed partition, deterministically (victims sorted,
// deduplicated) regardless of map iteration order.
func (s *Sim) partitionBreakSharded() {
	var broken []id.ID
	for i := range s.shards {
		for watchedNode, ws := range s.shards[i].watching {
			for watcher := range ws {
				if !s.reachable(watcher, watchedNode) {
					broken = append(broken, watchedNode)
					break
				}
			}
		}
	}
	sortIDs(broken)
	for i, v := range broken {
		if i > 0 && broken[i-1] == v {
			continue
		}
		s.pendingDowns = append(s.pendingDowns, v)
	}
}

// watch registers watcher (a node on shard sh) as watching dst.
func (sh *shard) watch(watcher, dst id.ID) {
	ws := sh.watching[dst]
	if ws == nil {
		ws = make(map[id.ID]struct{}, 4)
		sh.watching[dst] = ws
	}
	ws[watcher] = struct{}{}
}

// unwatch cancels a watch registration.
func (sh *shard) unwatch(watcher, dst id.ID) {
	if ws := sh.watching[dst]; ws != nil {
		delete(ws, watcher)
		if len(ws) == 0 {
			delete(sh.watching, dst)
		}
	}
}

// watchedSharded reports whether any node watches victim.
func (s *Sim) watchedSharded(victim id.ID) bool {
	for i := range s.shards {
		if len(s.shards[i].watching[victim]) > 0 {
			return true
		}
	}
	return false
}

// gatherWatchers appends every watcher of victim to buf (unsorted).
func (s *Sim) gatherWatchers(victim id.ID, buf []id.ID) []id.ID {
	for i := range s.shards {
		for w := range s.shards[i].watching[victim] {
			buf = append(buf, w)
		}
	}
	return buf
}

// dropWatch removes watcher's registration on victim from whichever shard
// holds it (the watcher's own shard).
func (s *Sim) dropWatch(watcher, victim id.ID) {
	if wi, ok := s.nodeIndex(watcher); ok {
		s.shardOf(wi).unwatch(watcher, victim)
	}
}

// pendingSharded counts queued once events across shards.
func (s *Sim) pendingSharded() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].queued
	}
	return total
}

// statsSharded merges the per-shard counter slices into the global Stats.
func (s *Sim) statsSharded() Stats {
	out := s.stats
	for i := range s.shards {
		st := &s.shards[i].stats
		out.Sent += st.sent
		out.Delivered += st.delivered
		out.Dropped += st.dropped
		out.SendFailures += st.sendFailures
		out.BytesSent += st.bytesSent
	}
	return out
}

// ---- small heaps ---------------------------------------------------------

// pushTime inserts t into the binary min-heap h. Each instant is pushed at
// most once (bucket creation is guarded by the future map).
func pushTime(h *[]uint64, t uint64) {
	*h = append(*h, t)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[i] >= s[p] {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// popTimeValue removes t from the heap; t is always the minimum (instants
// are consumed in time order).
func popTimeValue(h *[]uint64, t uint64) {
	s := *h
	if len(s) == 0 || s[0] != t {
		// Defensive: scan (cannot happen under the consume-in-order
		// discipline, but a silent mis-pop would corrupt time ordering).
		for i := range s {
			if s[i] == t {
				s[i] = s[len(s)-1]
				*h = s[:len(s)-1]
				siftTime(*h, i)
				return
			}
		}
		return
	}
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	siftTime(*h, 0)
}

func siftTime(s []uint64, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s) && s[l] < s[least] {
			least = l
		}
		if r < len(s) && s[r] < s[least] {
			least = r
		}
		if least == i {
			return
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
}

// pushSevent inserts se into the (at, seq) min-heap h.
func pushSevent(h *[]sevent, se sevent) {
	*h = append(*h, se)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !seventLess(&s[i], &s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// popSevent removes the minimum from h.
func popSevent(h *[]sevent) sevent {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s) && seventLess(&s[l], &s[least]) {
			least = l
		}
		if r < len(s) && seventLess(&s[r], &s[least]) {
			least = r
		}
		if least == i {
			return top
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
}

func seventLess(a, b *sevent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
