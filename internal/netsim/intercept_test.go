package netsim

// The fault-injection seam: Intercept observes every message delivery (after
// liveness/partition filtering, before Tap and dispatch), can suppress or
// replace it, and can re-inject copies through the hook-exempt Redeliver
// path. Timers and periodic self-events never pass through the hook — only
// wire traffic does.

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

func TestInterceptDropSuppressesDelivery(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		return nil, m.Round == 2 // deliver only round 2
	}
	for i := uint64(1); i <= 3; i++ {
		if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip, Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	if len(b.got) != 1 || b.got[0].Round != 2 {
		t.Fatalf("delivered %v, want only round 2", b.got)
	}
	st := s.Stats()
	if st.FaultDropped != 2 {
		t.Errorf("FaultDropped = %d, want 2", st.FaultDropped)
	}
	if st.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1", st.Delivered)
	}
}

func TestInterceptReplacementDelivered(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		repl := *m
		repl.Round = 99
		repl.Nodes = append([]id.ID{id.ID(7)}, m.Nodes...)
		return &repl, true
	}
	if err := s.Inject(1, 2, msg.Message{Type: msg.Shuffle, Round: 1, Nodes: []id.ID{3}}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if len(b.got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(b.got))
	}
	got := b.got[0]
	if got.Round != 99 || len(got.Nodes) != 2 || got.Nodes[0] != 7 {
		t.Errorf("tampered message not delivered intact: %+v", got)
	}
}

func TestInterceptSeesSenderAndReceiver(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	addRecorder(s, 2)
	var sawNode id.ID
	var sawSender id.ID
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		sawNode, sawSender = node, m.Sender
		return nil, true
	}
	if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip, Sender: 1}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if sawNode != 2 || sawSender != 1 {
		t.Errorf("hook saw (node=%v, sender=%v), want (2, 1)", sawNode, sawSender)
	}
}

func TestRedeliverBypassesHook(t *testing.T) {
	// A hook that duplicates every delivery through Redeliver: the copies
	// must not be re-intercepted (no exponential blowup) and must count as
	// redeliveries.
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	hookCalls := 0
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		hookCalls++
		if err := s.Redeliver(m.Sender, node, *m, 0); err != nil {
			t.Fatalf("Redeliver: %v", err)
		}
		return nil, true
	}
	if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip, Sender: 1, Round: 5}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if hookCalls != 1 {
		t.Errorf("hook ran %d times, want 1 (redelivery must be exempt)", hookCalls)
	}
	if len(b.got) != 2 {
		t.Errorf("deliveries = %d, want 2 (original + duplicate)", len(b.got))
	}
	if st := s.Stats(); st.Redelivered != 1 {
		t.Errorf("Redelivered = %d, want 1", st.Redelivered)
	}
}

func TestRedeliverDelayOrdersBehindTraffic(t *testing.T) {
	// A delayed redelivery fires after traffic scheduled in between: the
	// reorder fault.
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	first := true
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		if first {
			first = false
			// Defer the first message by 10 ticks and suppress the original.
			if err := s.Redeliver(m.Sender, node, *m, 10); err != nil {
				t.Fatalf("Redeliver: %v", err)
			}
			return nil, false
		}
		return nil, true
	}
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Sender: 1, Round: 1})
	_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Sender: 1, Round: 2})
	s.Drain()
	if len(b.got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(b.got))
	}
	if b.got[0].Round != 2 || b.got[1].Round != 1 {
		t.Errorf("rounds delivered in order %d,%d; want 2,1 (reorder)", b.got[0].Round, b.got[1].Round)
	}
}

func TestRedeliverToDeadNodeFails(t *testing.T) {
	s := New(1)
	addRecorder(s, 1)
	addRecorder(s, 2)
	s.Fail(2)
	if err := s.Redeliver(1, 2, msg.Message{Type: msg.Gossip}, 0); err == nil {
		t.Error("redeliver to dead node succeeded, want error")
	}
}

func TestInterceptSkipsTimers(t *testing.T) {
	// Scheduler self-events (After/Every) are not wire traffic: the hook
	// must never see them.
	s := New(1)
	a := addRecorder(s, 1)
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		t.Errorf("hook observed a timer event: %+v", *m)
		return nil, true
	}
	a.env.After(5, msg.Message{Type: msg.Tick})
	s.Drain()
	if len(a.got) != 1 {
		t.Fatalf("timer deliveries = %d, want 1", len(a.got))
	}
}

func TestInterceptHookMayGrowSlab(t *testing.T) {
	// The hook runs on a private copy taken before its slab slot is
	// released, so a hook that schedules many redeliveries (growing the
	// event slab and invalidating interior pointers) must not corrupt the
	// message under inspection.
	s := New(1)
	addRecorder(s, 1)
	b := addRecorder(s, 2)
	payload := []byte{1, 2, 3, 4}
	s.Intercept = func(node id.ID, m *msg.Message) (*msg.Message, bool) {
		for i := 0; i < 64; i++ { // force slab growth mid-hook
			_ = s.Redeliver(m.Sender, node, msg.Message{Type: msg.Gossip, Sender: m.Sender, Round: 1000 + uint64(i)}, 1)
		}
		if len(m.Payload) != 4 || m.Payload[0] != 1 {
			t.Errorf("message corrupted under slab growth: %+v", *m)
		}
		return nil, true
	}
	if err := s.Inject(1, 2, msg.Message{Type: msg.Gossip, Sender: 1, Round: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if len(b.got) != 65 {
		t.Errorf("deliveries = %d, want 65", len(b.got))
	}
}

func TestPassThroughHookMatchesNilHookTrace(t *testing.T) {
	// A hook that passes everything through must produce the same Tap trace
	// as no hook at all: the intercepted path Taps exactly like the fast
	// path.
	run := func(hook bool) []msg.Message {
		s := New(42)
		addRecorder(s, 1)
		rb := addRecorder(s, 2)
		rb.bounceTo = 3
		addRecorder(s, 3)
		if hook {
			s.Intercept = func(id.ID, *msg.Message) (*msg.Message, bool) { return nil, true }
		}
		var trace []msg.Message
		s.Tap = func(from, to id.ID, m msg.Message) { trace = append(trace, m) }
		for i := uint64(1); i <= 10; i++ {
			_ = s.Inject(1, 2, msg.Message{Type: msg.Gossip, Sender: 1, Round: i})
		}
		s.Drain()
		return trace
	}
	plain, hooked := run(false), run(true)
	if len(plain) == 0 || len(plain) != len(hooked) {
		t.Fatalf("trace lengths differ: %d vs %d", len(plain), len(hooked))
	}
	for i := range plain {
		if plain[i].Round != hooked[i].Round || plain[i].Type != hooked[i].Type {
			t.Fatalf("trace diverges at %d: %+v vs %+v", i, plain[i], hooked[i])
		}
	}
}
