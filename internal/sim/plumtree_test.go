package sim

import (
	"testing"

	"hyparview/internal/plumtree"
)

// TestFloodVsPlumtreeAtScale is the headline comparison: over the same
// stabilized 1000-node HyParView overlay, Plumtree must match flooding's
// reliability while cutting the relative message redundancy, both before and
// immediately after a 30% mass failure.
func TestFloodVsPlumtreeAtScale(t *testing.T) {
	points, _ := FloodVsPlumtree(Options{N: 1000, Seed: 3}, 20, 20, []int{30})
	byKey := make(map[string]FloodVsPlumtreePoint)
	for _, p := range points {
		byKey[p.Broadcast.String()+"/"+string(rune('0'+p.FailPct/10))] = p
	}
	flood0, plum0 := byKey["gossip/0"], byKey["plumtree/0"]
	flood30, plum30 := byKey["gossip/3"], byKey["plumtree/3"]

	// Reliability: the tree must not cost deliveries.
	if plum0.MeanReliability < flood0.MeanReliability {
		t.Errorf("stabilized: plumtree reliability %.4f < flood %.4f",
			plum0.MeanReliability, flood0.MeanReliability)
	}
	if plum0.MeanReliability < 1.0 {
		t.Errorf("stabilized plumtree reliability = %.4f, want 1.0", plum0.MeanReliability)
	}
	// Redundancy: flooding pays ~degree-1 extra payloads per delivery, the
	// stabilized tree pays almost none.
	if plum0.RMR >= flood0.RMR {
		t.Errorf("stabilized: plumtree RMR %.4f not below flood %.4f", plum0.RMR, flood0.RMR)
	}
	if plum0.RMR > 0.05 {
		t.Errorf("stabilized plumtree RMR = %.4f, want ~0 (single tree)", plum0.RMR)
	}
	if flood0.RMR < 1 {
		t.Errorf("flood RMR = %.4f, implausibly low for a degree-5 overlay", flood0.RMR)
	}

	// Under a 30% mass failure the lazy links and graft repair must keep
	// Plumtree at flood's reliability, still at lower redundancy.
	if plum30.MeanReliability < flood30.MeanReliability {
		t.Errorf("30%% failures: plumtree reliability %.4f < flood %.4f",
			plum30.MeanReliability, flood30.MeanReliability)
	}
	if plum30.RMR >= flood30.RMR {
		t.Errorf("30%% failures: plumtree RMR %.4f not below flood %.4f", plum30.RMR, flood30.RMR)
	}
}

// TestPlumtreeClusterReliabilityHigh mirrors the flood cluster smoke test at
// a smaller scale: a stabilized Plumtree cluster delivers atomically.
func TestPlumtreeClusterReliabilityHigh(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 500, Seed: 7, Broadcast: BroadcastPlumtree})
	c.Stabilize(50)
	c.BroadcastBurst(10)
	for i := 0; i < 5; i++ {
		if rel := c.Broadcast(); rel != 1.0 {
			t.Errorf("broadcast %d reliability = %v, want 1.0", i, rel)
		}
	}
}

// TestPlumtreeSurvivesMassFailure mirrors the paper's §5 methodology under
// the tree broadcast: the burst right after a heavy failure recovers.
func TestPlumtreeSurvivesMassFailure(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 500, Seed: 9, Broadcast: BroadcastPlumtree})
	c.Stabilize(50)
	c.BroadcastBurst(10)
	c.FailFraction(0.4)
	rels := c.BroadcastBurst(20)
	if final := rels[len(rels)-1]; final < 0.999 {
		t.Errorf("final reliability after 40%% failures = %v, want ~1", final)
	}
}

// TestPlumtreeDeterminism pins the seed-reproducibility contract for the
// tree broadcast layer, as TestDeterminism does for flooding.
func TestPlumtreeDeterminism(t *testing.T) {
	run := func() BurstStats {
		c := NewCluster(HyParView, Options{N: 300, Seed: 21, Broadcast: BroadcastPlumtree})
		c.Stabilize(30)
		c.BroadcastBurst(10)
		return c.MeasureBurst(10)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("identical seeds diverged: %+v vs %+v", a, b)
	}
}

// TestPlumtreeOverPeerSampling checks the layer is membership-agnostic: over
// Cyclon's directed partial views it must reach at least what the overlay's
// reachability allows, comparable to fanout gossip.
func TestPlumtreeOverPeerSampling(t *testing.T) {
	c := NewCluster(Cyclon, Options{N: 300, Seed: 5, Broadcast: BroadcastPlumtree})
	c.Stabilize(30)
	c.BroadcastBurst(5)
	rels := c.BroadcastBurst(5)
	for i, rel := range rels {
		if rel < 0.95 {
			t.Errorf("broadcast %d over Cyclon reliability = %v, want >= 0.95", i, rel)
		}
	}
}

// TestPlumtreeConfigPlumbing verifies cluster options reach the nodes.
func TestPlumtreeConfigPlumbing(t *testing.T) {
	c := NewCluster(HyParView, Options{
		N: 50, Seed: 2, Broadcast: BroadcastPlumtree,
		Plumtree: plumtree.Config{TimerDelay: 3},
	})
	pn, ok := c.Gossiper(1).(*plumtree.Node)
	if !ok {
		t.Fatalf("broadcaster is %T, want *plumtree.Node", c.Gossiper(1))
	}
	if got := pn.Config().TimerDelay; got != 3 {
		t.Errorf("TimerDelay = %d, option did not reach the node", got)
	}
	if !pn.Config().ReportPeerDown {
		t.Error("ReportPeerDown not forced on over HyParView")
	}
	c.Stabilize(5)
	if rel := c.Broadcast(); rel != 1.0 {
		t.Errorf("small cluster reliability = %v", rel)
	}
}

func TestBroadcastProtocolString(t *testing.T) {
	if BroadcastGossip.String() != "gossip" || BroadcastPlumtree.String() != "plumtree" {
		t.Error("broadcast protocol names wrong")
	}
	if BroadcastProtocol(9).String() == "" {
		t.Error("unknown broadcast protocol has empty name")
	}
}

// TestCounterTotalsAccounting cross-checks the cluster-wide counters against
// the simulator's own delivery statistics for a flood burst.
func TestCounterTotalsAccounting(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 200, Seed: 13})
	c.Stabilize(20)
	d0, dup0, _, _ := c.CounterTotals()
	before := c.Sim.Stats()
	c.BroadcastBurst(5)
	after := c.Sim.Stats()
	d1, dup1, _, _ := c.CounterTotals()
	// Every network-delivered payload is either a first copy or a duplicate;
	// the 5 sources delivered locally without a network message.
	gotReceptions := (d1 - d0 - 5) + (dup1 - dup0)
	if gotReceptions != after.Delivered-before.Delivered {
		t.Errorf("counter receptions = %d, sim delivered = %d",
			gotReceptions, after.Delivered-before.Delivered)
	}
}
