package sim

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/metrics"
	"hyparview/internal/rng"
)

func TestClusterBuildAllProtocols(t *testing.T) {
	for _, p := range AllProtocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			c := NewCluster(p, Options{N: 300, Seed: 5})
			if got := c.Sim.AliveCount(); got != 300 {
				t.Fatalf("alive = %d, want 300", got)
			}
			snap := c.Snapshot()
			if !snap.IsConnected() {
				t.Errorf("%v overlay disconnected after joins", p)
			}
		})
	}
}

func TestStabilizedReliabilityIsHigh(t *testing.T) {
	tests := []struct {
		proto Protocol
		min   float64
	}{
		{HyParView, 1.0}, // deterministic flood on a connected symmetric overlay
		{Cyclon, 0.90},   // fanout-4 gossip cannot guarantee atomicity
		{CyclonAcked, 0.90},
		{Scamp, 0.85},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.proto.String(), func(t *testing.T) {
			c := NewCluster(tt.proto, Options{N: 500, Seed: 7})
			c.Stabilize(50)
			rels := c.BroadcastBurst(20)
			mean := metrics.Mean(rels)
			if mean < tt.min {
				t.Errorf("mean reliability = %.4f, want >= %.2f", mean, tt.min)
			}
		})
	}
}

func TestHyParViewSurvivesMassFailure(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 600, Seed: 11})
	c.Stabilize(50)
	killed := c.FailFraction(0.7)
	if killed != 420 {
		t.Fatalf("killed = %d, want 420", killed)
	}
	rels := c.BroadcastBurst(10)
	if last := rels[len(rels)-1]; last < 0.95 {
		t.Errorf("reliability after 70%% failures = %.4f, want >= 0.95 (paper Fig. 3)", last)
	}
}

func TestCyclonAckedHealsOverMessages(t *testing.T) {
	c := NewCluster(CyclonAcked, Options{N: 600, Seed: 13})
	c.Stabilize(50)
	c.FailFraction(0.5)
	rels := c.BroadcastBurst(60)
	early := metrics.Mean(rels[:10])
	late := metrics.Mean(rels[50:])
	if late < early {
		t.Errorf("CyclonAcked did not heal: early=%.3f late=%.3f", early, late)
	}
	if late < 0.85 {
		t.Errorf("late reliability = %.3f, want >= 0.85 (paper: recovers within ≈25 msgs)", late)
	}
}

func TestPlainCyclonStaysDegraded(t *testing.T) {
	// Without failure detection and without membership cycles, Cyclon's
	// views keep pointing at corpses: the average over the burst must stay
	// clearly below CyclonAcked's.
	acked := NewCluster(CyclonAcked, Options{N: 600, Seed: 17})
	plain := NewCluster(Cyclon, Options{N: 600, Seed: 17})
	for _, c := range []*Cluster{acked, plain} {
		c.Stabilize(50)
		c.FailFraction(0.6)
	}
	ackedMean := metrics.Mean(acked.BroadcastBurst(60))
	plainMean := metrics.Mean(plain.BroadcastBurst(60))
	if plainMean >= ackedMean {
		t.Errorf("plain Cyclon (%.3f) not worse than CyclonAcked (%.3f)", plainMean, ackedMean)
	}
}

func TestFailFractionNeverKillsEveryone(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 50, Seed: 19})
	c.FailFraction(1.0)
	if c.Sim.AliveCount() < 1 {
		t.Error("FailFraction killed the whole population")
	}
	if c.FailFraction(0) != 0 {
		t.Error("FailFraction(0) killed someone")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		c := NewCluster(HyParView, Options{N: 300, Seed: 23})
		c.Stabilize(20)
		c.FailFraction(0.4)
		return c.BroadcastBurst(10)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at message %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAccuracyDropsThenRecovers(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 400, Seed: 29})
	c.Stabilize(50)
	if acc := c.Accuracy(); acc < 0.999 {
		t.Fatalf("pre-failure accuracy = %.4f, want 1.0", acc)
	}
	c.FailFraction(0.5)
	// Deliver TCP resets + reactive repairs.
	c.Sim.Drain()
	if acc := c.Accuracy(); acc < 0.99 {
		t.Errorf("post-repair accuracy = %.4f, want >= 0.99 (active views purge dead)", acc)
	}
}

func TestBroadcastDetailedHops(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 300, Seed: 31})
	c.Stabilize(30)
	rel, maxHops, avgHops := c.BroadcastDetailed()
	if rel != 1.0 {
		t.Errorf("reliability = %v, want 1", rel)
	}
	if maxHops < 2 || maxHops > 30 {
		t.Errorf("maxHops = %d, implausible", maxHops)
	}
	if avgHops <= 0 || avgHops > float64(maxHops) {
		t.Errorf("avgHops = %v vs maxHops %d", avgHops, maxHops)
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		HyParView: "HyParView", Cyclon: "Cyclon",
		CyclonAcked: "CyclonAcked", Scamp: "Scamp", Protocol(9): "Protocol(9)",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.N != 1000 || o.Fanout != 4 || o.StabilizationCycles != 50 || o.Seed == 0 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestResetSeenBoundsMemory(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 50, Seed: 37})
	c.Stabilize(5)
	c.BroadcastBurst(5)
	c.ResetSeen()
	// After reset, a fresh broadcast must still work.
	if rel := c.Broadcast(); rel < 1.0 {
		t.Errorf("post-reset broadcast reliability = %v", rel)
	}
}

// TestSoakLongRun exercises a mid-size cluster through repeated
// failure/heal/churn waves — a long-haul stability check. Skipped with
// -short.
func TestSoakLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	c := NewCluster(HyParView, Options{N: 800, Seed: 101})
	c.Stabilize(50)
	nextID := 801
	for wave := 0; wave < 6; wave++ {
		c.FailFraction(0.3)
		// Replace the casualties with newcomers mid-flight.
		alive := c.Sim.AliveIDs()
		for j := 0; j < 100; j++ {
			contact := alive[c.Sim.Rand().Intn(len(alive))]
			c.addNode(id.ID(nextID), contact)
			nextID++
		}
		c.Sim.RunCycles(3)
		rels := c.BroadcastBurst(10)
		if mean := metrics.Mean(rels); mean < 0.97 {
			t.Fatalf("wave %d: mean reliability %.4f", wave, mean)
		}
		// Structural invariants hold cluster-wide across waves.
		snap := c.Snapshot()
		if lcc := snap.LargestComponentFraction(); lcc < 0.99 {
			t.Fatalf("wave %d: lcc %.4f", wave, lcc)
		}
		if sym := snap.SymmetryFraction(); sym < 0.98 {
			t.Fatalf("wave %d: symmetry %.4f", wave, sym)
		}
		c.ResetSeen()
		c.Tracker.Reset()
	}
}

func TestLatencyModelDoesNotAffectReliability(t *testing.T) {
	// The protocol is asynchronous: a jittered latency model changes
	// delivery timing, never outcomes like connectivity or reliability.
	c := NewCluster(HyParView, Options{
		N:    300,
		Seed: 41,
		Latency: func(_, _ id.ID, r *rng.Rand) uint64 {
			return 1 + r.Uint64n(100)
		},
	})
	c.Stabilize(30)
	snap := c.Snapshot()
	if !snap.IsConnected() || snap.SymmetryFraction() < 0.999 {
		t.Fatalf("overlay degraded under latency: conn=%v sym=%.4f",
			snap.IsConnected(), snap.SymmetryFraction())
	}
	if rel := c.Broadcast(); rel != 1.0 {
		t.Errorf("reliability under latency = %v, want 1", rel)
	}
	if c.Sim.Now() == 0 {
		t.Error("virtual clock never advanced")
	}
	c.FailFraction(0.5)
	rels := c.BroadcastBurst(5)
	if rels[4] < 0.99 {
		t.Errorf("post-failure reliability under latency = %v", rels[4])
	}
}
