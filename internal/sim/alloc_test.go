package sim

// Whole-stack allocation and aliasing pins for the copy-on-write message
// regime (see "Message ownership" in package peer): broadcast fan-out must
// share one payload buffer across every delivery, per-hop mutation must stay
// on struct copies, and the steady-state delivery path through the full
// HyParView + broadcast stack must allocate nothing.

import (
	"bytes"
	"testing"
	"unsafe"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

// TestBroadcastSteadyStateZeroAlloc pins the acceptance criterion across the
// whole stack: one full-cluster broadcast — source Broadcast, every
// delivery, every forward, tracker accounting, drain — allocates nothing
// once warm. This subsumes the per-package pins: a regression in core's
// GossipTargets, netsim's dispatch, or the harness shows up here.
func TestBroadcastSteadyStateZeroAlloc(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 300, Seed: 1})
	c.Stabilize(2)
	for i := 0; i < 3; i++ { // warm heaps, slab, scratch buffers
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatalf("warm-up reliability %v, want 1.0", rel)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatal("reliability dropped during measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state full-stack broadcast allocates %.1f/op, want 0", allocs)
	}
}

// TestBroadcastSteadyStateZeroAllocPlumtree is the same pin over Plumtree:
// eager pushes, lazy IHAVEs, prune/graft control traffic and the tree
// convergence already behind it must all run allocation-free.
func TestBroadcastSteadyStateZeroAllocPlumtree(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 300, Seed: 1, Broadcast: BroadcastPlumtree})
	c.Stabilize(2)
	for i := 0; i < 10; i++ { // converge the tree, then warm
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatalf("warm-up reliability %v, want 1.0", rel)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatal("reliability dropped during measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state plumtree broadcast allocates %.1f/op, want 0", allocs)
	}
}

// TestPayloadFanOutSharesOneBuffer proves the copy-on-write half of the
// regime: every copy of a broadcast payload crossing the simulated wire
// aliases the source's single backing array (no Clone-style deep copies),
// and after the broadcast the buffer is byte-identical to what was sent —
// no layer mutated the shared bytes.
func TestPayloadFanOutSharesOneBuffer(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 200, Seed: 1})
	c.Stabilize(2)

	payload := []byte("frozen-after-send payload")
	orig := append([]byte(nil), payload...)
	base := unsafe.SliceData(payload)

	copies, aliased := 0, 0
	c.Sim.Tap = func(_, _ id.ID, m msg.Message) {
		if m.Type != msg.Gossip || m.Payload == nil {
			return
		}
		copies++
		if unsafe.SliceData(m.Payload) == base {
			aliased++
		}
	}
	defer func() { c.Sim.Tap = nil }()

	round := c.Tracker.NextRound()
	c.Gossiper(c.IDs()[0]).Broadcast(round, payload)
	c.Sim.Drain()

	if delivered := c.Tracker.Delivered(round); delivered != 200 {
		t.Fatalf("delivered %d of 200", delivered)
	}
	if copies == 0 {
		t.Fatal("tap saw no payload traffic")
	}
	if aliased != copies {
		t.Fatalf("%d of %d wire copies aliased the original buffer; want all (zero-copy fan-out)", aliased, copies)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatalf("shared payload mutated during dissemination: %q", payload)
	}
}

// TestHopMutationStaysOnStructCopy proves the write half of copy-on-write:
// forwarders increment Hops on their own struct copy, so observed hop counts
// rise along paths while every copy keeps sharing the one payload buffer —
// one node's mutation is never visible through another's copy.
func TestHopMutationStaysOnStructCopy(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 200, Seed: 1})
	c.Stabilize(2)

	hopsSeen := map[uint16]int{}
	c.Sim.Tap = func(_, _ id.ID, m msg.Message) {
		if m.Type == msg.Gossip && m.Payload != nil {
			hopsSeen[m.Hops]++
		}
	}
	defer func() { c.Sim.Tap = nil }()

	round := c.Tracker.NextRound()
	c.Gossiper(c.IDs()[0]).Broadcast(round, []byte("x"))
	c.Sim.Drain()

	if len(hopsSeen) < 2 {
		t.Fatalf("expected multiple distinct hop counts on the wire, saw %v", hopsSeen)
	}
	// Hop counts must start at 0 (source's own sends); if a forwarder's
	// increment leaked into a shared struct, the source-adjacent copies
	// would show inflated hops.
	if hopsSeen[0] == 0 {
		t.Fatalf("no zero-hop copies observed: %v", hopsSeen)
	}
}

// TestShuffleListFrozenInFlight proves relayed SHUFFLE walks share the
// origin's Nodes list without mutating it: TTL decrements happen on struct
// copies while every relay carries the identical identifier list.
func TestShuffleListFrozenInFlight(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 100, Seed: 1})
	c.Stabilize(2)

	type shuffleObs struct {
		ttl   uint8
		nodes []id.ID
		data  *id.ID
	}
	var walks map[id.ID][]shuffleObs // keyed by walk origin (Subject)
	c.Sim.Tap = func(_, _ id.ID, m msg.Message) {
		if m.Type != msg.Shuffle || m.Nodes == nil {
			return
		}
		walks[m.Subject] = append(walks[m.Subject], shuffleObs{
			ttl:   m.TTL,
			nodes: append([]id.ID(nil), m.Nodes...),
			data:  unsafe.SliceData(m.Nodes),
		})
	}
	defer func() { c.Sim.Tap = nil }()

	walks = make(map[id.ID][]shuffleObs)
	c.Sim.RunCycle() // every node initiates one shuffle

	relayed := 0
	for origin, obs := range walks {
		first := obs[0]
		for _, o := range obs[1:] {
			relayed++
			if o.data != first.data {
				t.Fatalf("walk from %v re-allocated its Nodes list mid-flight (copy instead of share)", origin)
			}
			if o.ttl >= first.ttl {
				t.Fatalf("walk from %v: TTL did not decrease along the relay (%d -> %d)", origin, first.ttl, o.ttl)
			}
			if len(o.nodes) != len(first.nodes) {
				t.Fatalf("walk from %v: Nodes list changed length in flight", origin)
			}
			for i := range o.nodes {
				if o.nodes[i] != first.nodes[i] {
					t.Fatalf("walk from %v: shared Nodes list mutated in flight at %d", origin, i)
				}
			}
		}
	}
	if relayed == 0 {
		t.Skip("no shuffle walk was relayed this cycle; topology too small")
	}
}
