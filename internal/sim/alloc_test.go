package sim

// Whole-stack allocation and aliasing pins for the copy-on-write message
// regime (see "Message ownership" in package peer): broadcast fan-out must
// share one payload buffer across every delivery, per-hop mutation must stay
// on struct copies, and the steady-state delivery path through the full
// HyParView + broadcast stack must allocate nothing.

import (
	"bytes"
	"runtime"
	"testing"
	"unsafe"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

// TestBroadcastSteadyStateZeroAlloc pins the acceptance criterion across the
// whole stack: one full-cluster broadcast — source Broadcast, every
// delivery, every forward, tracker accounting, drain — allocates nothing
// once warm. This subsumes the per-package pins: a regression in core's
// GossipTargets, netsim's dispatch, or the harness shows up here.
func TestBroadcastSteadyStateZeroAlloc(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 300, Seed: 1})
	c.Stabilize(2)
	for i := 0; i < 3; i++ { // warm heaps, slab, scratch buffers
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatalf("warm-up reliability %v, want 1.0", rel)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatal("reliability dropped during measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state full-stack broadcast allocates %.1f/op, want 0", allocs)
	}
}

// TestBroadcastSteadyStateZeroAllocPlumtree is the same pin over Plumtree:
// eager pushes, lazy IHAVEs, prune/graft control traffic and the tree
// convergence already behind it must all run allocation-free.
func TestBroadcastSteadyStateZeroAllocPlumtree(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 300, Seed: 1, Broadcast: BroadcastPlumtree})
	c.Stabilize(2)
	for i := 0; i < 10; i++ { // converge the tree, then warm
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatalf("warm-up reliability %v, want 1.0", rel)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if rel := c.Broadcast(); rel != 1.0 {
			t.Fatal("reliability dropped during measurement")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state plumtree broadcast allocates %.1f/op, want 0", allocs)
	}
}

// TestShardedBroadcastSteadyStateZeroAlloc extends the zero-alloc pin to the
// sharded wave/barrier engine: once the per-shard bucket vectors, output logs
// and wave heaps are warm, a full-cluster broadcast through the 4-shard
// barrier loop — wave formation, delivery, canonical merge — must allocate
// nothing, exactly like the single-shard heap engine it replaces.
func TestShardedBroadcastSteadyStateZeroAlloc(t *testing.T) {
	for _, bcast := range []BroadcastProtocol{BroadcastGossip, BroadcastPlumtree} {
		c := NewCluster(HyParView, Options{N: 300, Seed: 1, Shards: 4, Broadcast: bcast})
		c.Stabilize(2)
		for i := 0; i < 10; i++ { // warm shard vectors, pools and scratch buffers
			if rel := c.Broadcast(); rel != 1.0 {
				t.Fatalf("broadcast=%d: warm-up reliability %v, want 1.0", bcast, rel)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if rel := c.Broadcast(); rel != 1.0 {
				t.Fatal("reliability dropped during measurement")
			}
		})
		if allocs != 0 {
			t.Fatalf("broadcast=%d: sharded steady-state broadcast allocates %.1f/op, want 0", bcast, allocs)
		}
	}
}

// TestShardedFootprintPerNode pins the sharded engine's memory budget: the
// marginal heap cost of a stabilized flood-broadcast cluster node — protocol
// state, engine slot, shard bucket storage, tracker accounting — must stay
// within the documented budget (see docs/EXPERIMENTS.md, "Breaking the
// million-node barrier"). The budget is deliberately loose (the measured
// figure is ~7 KiB/node); it exists to catch order-of-magnitude regressions
// such as a per-node goroutine, an unpooled per-wave allocation surviving
// drain, or an accidental O(n) structure per shard. Flood is the
// configuration the 1M-node claim is made for; Plumtree adds a fixed
// ~195 KiB/node delivered-round cache (Config.CacheWindow) on top, which is
// a protocol design constant, not an engine cost.
func TestShardedFootprintPerNode(t *testing.T) {
	const n = 20_000
	const budget = 16 << 10 // bytes per node

	measure := func() uint64 {
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := measure()
	c := NewCluster(HyParView, Options{N: n, Seed: 1, Shards: 4})
	c.Stabilize(3)
	c.MeasureBurst(2)
	after := measure()
	runtime.KeepAlive(c)

	perNode := (after - before) / n
	t.Logf("sharded cluster footprint: %d bytes/node (%d nodes, %.1f MiB total)",
		perNode, n, float64(after-before)/(1<<20))
	if perNode > budget {
		t.Errorf("footprint = %d bytes/node, budget %d (order-of-magnitude guard)", perNode, budget)
	}
}

// TestPayloadFanOutSharesOneBuffer proves the copy-on-write half of the
// regime: every copy of a broadcast payload crossing the simulated wire
// aliases the source's single backing array (no Clone-style deep copies),
// and after the broadcast the buffer is byte-identical to what was sent —
// no layer mutated the shared bytes.
func TestPayloadFanOutSharesOneBuffer(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 200, Seed: 1})
	c.Stabilize(2)

	payload := []byte("frozen-after-send payload")
	orig := append([]byte(nil), payload...)
	base := unsafe.SliceData(payload)

	copies, aliased := 0, 0
	c.Sim.Tap = func(_, _ id.ID, m msg.Message) {
		if m.Type != msg.Gossip || m.Payload == nil {
			return
		}
		copies++
		if unsafe.SliceData(m.Payload) == base {
			aliased++
		}
	}
	defer func() { c.Sim.Tap = nil }()

	round := c.Tracker.NextRound()
	c.Gossiper(c.IDs()[0]).Broadcast(round, payload)
	c.Sim.Drain()

	if delivered := c.Tracker.Delivered(round); delivered != 200 {
		t.Fatalf("delivered %d of 200", delivered)
	}
	if copies == 0 {
		t.Fatal("tap saw no payload traffic")
	}
	if aliased != copies {
		t.Fatalf("%d of %d wire copies aliased the original buffer; want all (zero-copy fan-out)", aliased, copies)
	}
	if !bytes.Equal(payload, orig) {
		t.Fatalf("shared payload mutated during dissemination: %q", payload)
	}
}

// TestHopMutationStaysOnStructCopy proves the write half of copy-on-write:
// forwarders increment Hops on their own struct copy, so observed hop counts
// rise along paths while every copy keeps sharing the one payload buffer —
// one node's mutation is never visible through another's copy.
func TestHopMutationStaysOnStructCopy(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 200, Seed: 1})
	c.Stabilize(2)

	hopsSeen := map[uint16]int{}
	c.Sim.Tap = func(_, _ id.ID, m msg.Message) {
		if m.Type == msg.Gossip && m.Payload != nil {
			hopsSeen[m.Hops]++
		}
	}
	defer func() { c.Sim.Tap = nil }()

	round := c.Tracker.NextRound()
	c.Gossiper(c.IDs()[0]).Broadcast(round, []byte("x"))
	c.Sim.Drain()

	if len(hopsSeen) < 2 {
		t.Fatalf("expected multiple distinct hop counts on the wire, saw %v", hopsSeen)
	}
	// Hop counts must start at 0 (source's own sends); if a forwarder's
	// increment leaked into a shared struct, the source-adjacent copies
	// would show inflated hops.
	if hopsSeen[0] == 0 {
		t.Fatalf("no zero-hop copies observed: %v", hopsSeen)
	}
}

// TestShuffleListFrozenInFlight proves relayed SHUFFLE walks share the
// origin's Nodes list without mutating it: TTL decrements happen on struct
// copies while every relay carries the identical identifier list.
func TestShuffleListFrozenInFlight(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 100, Seed: 1})
	c.Stabilize(2)

	type shuffleObs struct {
		ttl   uint8
		nodes []id.ID
		data  *id.ID
	}
	var walks map[id.ID][]shuffleObs // keyed by walk origin (Subject)
	c.Sim.Tap = func(_, _ id.ID, m msg.Message) {
		if m.Type != msg.Shuffle || m.Nodes == nil {
			return
		}
		walks[m.Subject] = append(walks[m.Subject], shuffleObs{
			ttl:   m.TTL,
			nodes: append([]id.ID(nil), m.Nodes...),
			data:  unsafe.SliceData(m.Nodes),
		})
	}
	defer func() { c.Sim.Tap = nil }()

	walks = make(map[id.ID][]shuffleObs)
	c.Sim.RunCycle() // every node initiates one shuffle

	relayed := 0
	for origin, obs := range walks {
		first := obs[0]
		for _, o := range obs[1:] {
			relayed++
			if o.data != first.data {
				t.Fatalf("walk from %v re-allocated its Nodes list mid-flight (copy instead of share)", origin)
			}
			if o.ttl >= first.ttl {
				t.Fatalf("walk from %v: TTL did not decrease along the relay (%d -> %d)", origin, first.ttl, o.ttl)
			}
			if len(o.nodes) != len(first.nodes) {
				t.Fatalf("walk from %v: Nodes list changed length in flight", origin)
			}
			for i := range o.nodes {
				if o.nodes[i] != first.nodes[i] {
					t.Fatalf("walk from %v: shared Nodes list mutated in flight at %d", origin, i)
				}
			}
		}
	}
	if relayed == 0 {
		t.Skip("no shuffle walk was relayed this cycle; topology too small")
	}
}
