package sim

// Scheduler/time determinism: the event engine must produce byte-identical
// wire traces under a fixed seed — across runs, and across the FIFO mode and
// an explicit zero-delay latency mode (which exercise the same single event
// heap through different configuration paths) — and the scheduler-driven
// periodic mode must drive the protocol to the same health the cycle-driven
// mode reaches.

import (
	"fmt"
	"strings"
	"testing"

	"hyparview/internal/core"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
	"hyparview/internal/rng"
)

// clusterTrace builds a HyParView cluster, then records every delivered wire
// message (with its virtual timestamp) over stabilization and a measured
// burst.
func clusterTrace(opts Options, stabilize, msgs int) string {
	c := NewCluster(HyParView, opts)
	var b strings.Builder
	c.Sim.Tap = func(from, to id.ID, m msg.Message) {
		fmt.Fprintf(&b, "%d>%d:%d:%d@%d\n", from, to, m.Type, m.Round, c.Sim.Now())
	}
	c.Stabilize(stabilize)
	c.MeasureBurst(msgs)
	return b.String()
}

func TestSameSeedSameEventTrace(t *testing.T) {
	opts := Options{N: 120, Seed: 7, Broadcast: BroadcastPlumtree}
	a := clusterTrace(opts, 5, 3)
	b := clusterTrace(opts, 5, 3)
	if a == "" {
		t.Fatal("empty event trace")
	}
	if a != b {
		t.Fatal("same seed produced diverging event traces")
	}
}

func TestFIFOMatchesZeroDelayLatencyMode(t *testing.T) {
	// FIFO mode is, by construction, delay-0 scheduling on the shared event
	// heap: installing an explicit always-zero latency function must yield a
	// byte-identical trace, timestamps included.
	base := Options{N: 80, Seed: 3, Broadcast: BroadcastPlumtree}
	fifo := clusterTrace(base, 4, 2)
	zeroOpts := base
	zeroOpts.Latency = func(id.ID, id.ID, *rng.Rand) uint64 { return 0 }
	zero := clusterTrace(zeroOpts, 4, 2)
	if fifo == "" {
		t.Fatal("empty event trace")
	}
	if fifo != zero {
		t.Fatal("FIFO and delay-0 latency mode diverged")
	}
}

func TestPeriodicModeDeterministic(t *testing.T) {
	opts := Options{N: 100, Seed: 5, ShuffleInterval: 20, Broadcast: BroadcastPlumtree}
	a := clusterTrace(opts, 10, 3)
	b := clusterTrace(opts, 10, 3)
	if a == "" {
		t.Fatal("empty event trace")
	}
	if a != b {
		t.Fatal("scheduler-driven periodic mode is not deterministic under a fixed seed")
	}
}

func TestPeriodicShuffleRoundsDriveProtocol(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 300, Seed: 2, ShuffleInterval: 50})
	sentBefore := c.Sim.Stats().Sent
	nowBefore := c.Sim.Now()
	c.Stabilize(10) // = RunFor(500): ten self-scheduled rounds per node
	if got := c.Sim.Now() - nowBefore; got != 500 {
		t.Fatalf("virtual clock advanced %d ticks, want 500", got)
	}
	if c.Sim.Stats().Sent == sentBefore {
		t.Fatal("scheduled shuffle rounds generated no traffic")
	}
	var shuffles uint64
	for _, nodeID := range c.Sim.AliveIDs() {
		if hv, ok := c.Membership(nodeID).(*core.Node); ok {
			shuffles += hv.Stats().ShufflesInitiated
		}
	}
	// Every node self-schedules ΔT rounds: expect roughly one shuffle per
	// node per round (some nodes may skip a round while isolated).
	if shuffles < 300*5 {
		t.Errorf("shuffles initiated = %d over 10 scheduled rounds of 300 nodes, want >= 1500", shuffles)
	}
	if rel := c.Broadcast(); rel != 1.0 {
		t.Errorf("reliability after periodic stabilization = %v, want 1.0", rel)
	}
}

// TestPeriodicModeWithLatencyModelTerminates pins the Drain/RunFor split:
// with per-link delays, self-scheduled shuffle rounds generate delayed
// traffic forever, so a Drain that fired periodic rounds would never
// quiesce. The cluster must build, stabilize and measure a burst — with
// delivery-latency percentiles populated — in bounded work.
func TestPeriodicModeWithLatencyModelTerminates(t *testing.T) {
	c := NewCluster(HyParView, Options{
		N: 200, Seed: 4, ShuffleInterval: 100,
		LatencyModel: netsim.NewEuclidean(4),
	})
	c.Stabilize(10)
	stats := c.MeasureBurst(3)
	if stats.MeanReliability != 1.0 {
		t.Errorf("reliability = %v, want 1.0", stats.MeanReliability)
	}
	if stats.LatencyP50 <= 0 || stats.LatencyP99 < stats.LatencyP50 {
		t.Errorf("latency percentiles p50=%v p99=%v, want 0 < p50 <= p99",
			stats.LatencyP50, stats.LatencyP99)
	}
}
