package sim

import (
	"fmt"

	"hyparview/internal/metrics"
)

// Experiment drivers: one per figure/table of the paper's evaluation (§5).
// Each returns a metrics.Table whose rows mirror the series the paper plots.
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.

// Fig1FanoutReliability reproduces Fig. 1(a)/(b): the average reliability of
// msgs broadcasts after stabilization, as a function of the gossip fanout,
// for one peer-sampling protocol (Cyclon for 1a, Scamp for 1b).
func Fig1FanoutReliability(proto Protocol, opts Options, fanouts []int, msgs int) *metrics.Table {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Fig1 %s: fanout vs reliability (n=%d, %d msgs)", proto, opts.N, msgs),
		"fanout", "reliability", "min", "max")
	for _, f := range fanouts {
		o := opts
		o.Fanout = f
		o.Seed = opts.Seed + uint64(f)*1000
		c := NewCluster(proto, o)
		c.Stabilize(o.StabilizationCycles)
		rels := c.BroadcastBurst(msgs)
		s := metrics.Summarize(rels)
		t.AddRow(f, s.Mean, s.Min, s.Max)
	}
	return t
}

// Fig1cFailure50 reproduces Fig. 1(c): per-message reliability of the 100
// messages exchanged right after 50% of the nodes fail, for Cyclon and
// Scamp, before any membership cycle runs.
func Fig1cFailure50(opts Options, msgs int) *metrics.Table {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Fig1c: reliability after 50%% failures (n=%d)", opts.N),
		"msg", "cyclon", "scamp")
	series := make(map[Protocol][]float64)
	for _, p := range []Protocol{Cyclon, Scamp} {
		c := NewCluster(p, opts)
		c.Stabilize(opts.StabilizationCycles)
		c.FailFraction(0.5)
		series[p] = c.BroadcastBurst(msgs)
	}
	for i := 0; i < msgs; i++ {
		t.AddRow(i+1, series[Cyclon][i], series[Scamp][i])
	}
	return t
}

// Fig2Point is one protocol/failure-percentage measurement of Fig. 2.
type Fig2Point struct {
	Protocol    Protocol
	FailPct     int
	Reliability float64 // mean over the burst
	Final       float64 // reliability of the last message (post-recovery)
}

// Fig2MassFailure reproduces Fig. 2: the average reliability of msgs (paper:
// 1000) broadcasts sent immediately after failing failPcts percent of the
// nodes, for all four protocols.
func Fig2MassFailure(opts Options, failPcts []int, msgs int) ([]Fig2Point, *metrics.Table) {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Fig2: mean reliability of %d msgs after mass failure (n=%d)", msgs, opts.N),
		"fail%", "hyparview", "cyclonacked", "cyclon", "scamp")
	var points []Fig2Point
	byPct := make(map[int]map[Protocol]float64)
	for _, pct := range failPcts {
		byPct[pct] = make(map[Protocol]float64)
		for _, p := range AllProtocols() {
			o := opts
			o.Seed = opts.Seed + uint64(pct)*31 + uint64(p)*7919
			c := NewCluster(p, o)
			c.Stabilize(o.StabilizationCycles)
			c.FailFraction(float64(pct) / 100)
			rels := c.BroadcastBurst(msgs)
			mean := metrics.Mean(rels)
			byPct[pct][p] = mean
			points = append(points, Fig2Point{
				Protocol:    p,
				FailPct:     pct,
				Reliability: mean,
				Final:       rels[len(rels)-1],
			})
		}
	}
	for _, pct := range failPcts {
		m := byPct[pct]
		t.AddRow(pct, m[HyParView], m[CyclonAcked], m[Cyclon], m[Scamp])
	}
	return points, t
}

// Fig3Recovery reproduces Fig. 3(a-f): the per-message reliability series
// after failing pct percent of the nodes, for all four protocols.
func Fig3Recovery(opts Options, pct int, msgs int) *metrics.Table {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Fig3 (%d%% failures, n=%d): reliability per message", pct, opts.N),
		"msg", "hyparview", "cyclonacked", "cyclon", "scamp")
	series := make(map[Protocol][]float64)
	for _, p := range AllProtocols() {
		o := opts
		o.Seed = opts.Seed + uint64(pct)*31 + uint64(p)*7919
		c := NewCluster(p, o)
		c.Stabilize(o.StabilizationCycles)
		c.FailFraction(float64(pct) / 100)
		series[p] = c.BroadcastBurst(msgs)
	}
	for i := 0; i < msgs; i++ {
		t.AddRow(i+1, series[HyParView][i], series[CyclonAcked][i],
			series[Cyclon][i], series[Scamp][i])
	}
	return t
}

// HealingResult is one protocol/failure-level measurement of Fig. 4.
type HealingResult struct {
	Protocol Protocol
	FailPct  int
	// Cycles is the number of membership cycles needed to regain the
	// pre-failure reliability; -1 when MaxCycles was exhausted first.
	Cycles int
}

// Fig4HealingTime reproduces Fig. 4: after a mass failure, how many
// membership cycles each protocol needs to regain its pre-failure
// reliability. Each cycle, probes broadcasts from random live nodes are
// averaged (paper: 10). Scamp is excluded, as in the paper, because its
// healing depends on the lease timer.
func Fig4HealingTime(opts Options, failPcts []int, probes, maxCycles int) ([]HealingResult, *metrics.Table) {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Fig4: membership cycles to regain pre-failure reliability (n=%d)", opts.N),
		"fail%", "hyparview", "cyclonacked", "cyclon")
	protos := []Protocol{HyParView, CyclonAcked, Cyclon}
	var results []HealingResult
	cells := make(map[int]map[Protocol]string)
	for _, pct := range failPcts {
		cells[pct] = make(map[Protocol]string)
		for _, p := range protos {
			o := opts
			o.Seed = opts.Seed + uint64(pct)*131 + uint64(p)*104729
			c := NewCluster(p, o)
			c.Stabilize(o.StabilizationCycles)
			baseline := metrics.Mean(c.BroadcastBurst(probes))
			c.FailFraction(float64(pct) / 100)
			cycles := -1
			for cyc := 1; cyc <= maxCycles; cyc++ {
				c.Sim.RunCycle()
				rel := metrics.Mean(c.BroadcastBurst(probes))
				if rel >= baseline {
					cycles = cyc
					break
				}
			}
			results = append(results, HealingResult{Protocol: p, FailPct: pct, Cycles: cycles})
			if cycles < 0 {
				cells[pct][p] = fmt.Sprintf(">%d", maxCycles)
			} else {
				cells[pct][p] = fmt.Sprintf("%d", cycles)
			}
		}
	}
	for _, pct := range failPcts {
		m := cells[pct]
		t.AddRow(pct, m[HyParView], m[CyclonAcked], m[Cyclon])
	}
	return results, t
}

// Table1Row is one protocol's graph-property measurement of Table 1.
type Table1Row struct {
	Protocol       Protocol
	Clustering     float64
	AvgShortestPth float64
	MaxHops        float64 // mean over messages of the per-message max hops
}

// Table1GraphProperties reproduces Table 1: average clustering coefficient,
// average shortest path and maximum hops to delivery after stabilization.
// aspSamples bounds the shortest-path BFS sources (<=0 for exact); hopMsgs
// is the number of broadcasts averaged for the hop column.
func Table1GraphProperties(opts Options, aspSamples, hopMsgs int) ([]Table1Row, *metrics.Table) {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Table1: overlay graph properties after stabilization (n=%d)", opts.N),
		"protocol", "clustering", "avg-shortest-path", "max-hops-to-delivery")
	var rows []Table1Row
	for _, p := range []Protocol{Cyclon, Scamp, HyParView} { // paper's row order
		o := opts
		o.Seed = opts.Seed + uint64(p)*7919
		c := NewCluster(p, o)
		c.Stabilize(o.StabilizationCycles)
		snap := c.Snapshot()
		cc := snap.ClusteringCoefficient()
		asp := snap.AvgShortestPath(c.Sim.Rand(), aspSamples)
		var maxHops float64
		for i := 0; i < hopMsgs; i++ {
			_, mh, _ := c.BroadcastDetailed()
			maxHops += float64(mh)
		}
		if hopMsgs > 0 {
			maxHops /= float64(hopMsgs)
		}
		rows = append(rows, Table1Row{
			Protocol: p, Clustering: cc, AvgShortestPth: asp, MaxHops: maxHops,
		})
		t.AddRow(p.String(), fmt.Sprintf("%.6f", cc), asp, maxHops)
	}
	return rows, t
}

// Fig5InDegree reproduces Fig. 5: the in-degree distribution of the overlay
// after stabilization, for the three membership protocols.
func Fig5InDegree(opts Options) *metrics.Table {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Fig5: in-degree distribution after stabilization (n=%d)", opts.N),
		"protocol", "in-degree", "nodes")
	for _, p := range []Protocol{Cyclon, Scamp, HyParView} {
		o := opts
		o.Seed = opts.Seed + uint64(p)*7919
		c := NewCluster(p, o)
		c.Stabilize(o.StabilizationCycles)
		dist := c.Snapshot().InDegreeDistribution()
		h := metrics.IntHistogram(dist)
		for _, k := range h.Keys() {
			t.AddRow(p.String(), k, dist[k])
		}
	}
	return t
}

// FloodVsPlumtreePoint is one broadcast-layer/failure-level measurement of
// the flood-vs-tree comparison.
type FloodVsPlumtreePoint struct {
	Broadcast BroadcastProtocol
	FailPct   int
	BurstStats
}

// FloodVsPlumtree compares HyParView's flood broadcast against Plumtree over
// the same membership substrate: after stabilization and a warm-up burst
// (which lets Plumtree prune its eager links into a spanning tree), it
// measures a burst of msgs broadcasts at each failure level — 0 plus the
// paper's mass-failure percentages — reporting reliability, relative message
// redundancy (RMR) and last-delivery hop count. This is the experiment of
// the authors' companion Plumtree paper (SRDS 2007) run under this paper's
// §5 methodology.
func FloodVsPlumtree(opts Options, warmup, msgs int, failPcts []int) ([]FloodVsPlumtreePoint, *metrics.Table) {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("FloodVsPlumtree: HyParView broadcast layers (n=%d, %d msgs)", opts.N, msgs),
		"broadcast", "fail%", "reliability", "final-rel", "rmr", "max-hops")
	var points []FloodVsPlumtreePoint
	// Always measure the no-failure baseline, without duplicating it when
	// the caller lists 0 explicitly.
	levels := []int{0}
	seen := map[int]bool{0: true}
	for _, pct := range failPcts {
		if !seen[pct] {
			seen[pct] = true
			levels = append(levels, pct)
		}
	}
	for _, b := range []BroadcastProtocol{BroadcastGossip, BroadcastPlumtree} {
		for _, pct := range levels {
			o := opts
			o.Broadcast = b
			// Same seed for both layers at a given failure level: identical
			// overlay construction and failure pattern, so the comparison
			// isolates the broadcast layer.
			o.Seed = opts.Seed + uint64(pct)*31
			c := NewCluster(HyParView, o)
			c.Stabilize(o.StabilizationCycles)
			c.BroadcastBurst(warmup)
			if pct > 0 {
				c.FailFraction(float64(pct) / 100)
			}
			stats := c.MeasureBurst(msgs)
			points = append(points, FloodVsPlumtreePoint{Broadcast: b, FailPct: pct, BurstStats: stats})
			t.AddRow(b.String(), pct, stats.MeanReliability, stats.FinalReliability,
				stats.RMR, stats.MeanMaxHops)
		}
	}
	return points, t
}

// Fig2MassFailureRuns aggregates Fig2MassFailure over runs independent
// seeded executions, as the paper does ("results show an aggregation from
// multiple runs of each experiment", §5.1). The table reports per-cell
// means.
func Fig2MassFailureRuns(opts Options, failPcts []int, msgs, runs int) *metrics.Table {
	opts = opts.withDefaults()
	if runs < 1 {
		runs = 1
	}
	t := metrics.NewTable(
		fmt.Sprintf("Fig2: mean reliability of %d msgs after mass failure (n=%d, %d runs)",
			msgs, opts.N, runs),
		"fail%", "hyparview", "cyclonacked", "cyclon", "scamp")
	acc := make(map[int]map[Protocol]float64)
	for run := 0; run < runs; run++ {
		o := opts
		o.Seed = opts.Seed + uint64(run)*1_000_003
		points, _ := Fig2MassFailure(o, failPcts, msgs)
		for _, p := range points {
			if acc[p.FailPct] == nil {
				acc[p.FailPct] = make(map[Protocol]float64)
			}
			acc[p.FailPct][p.Protocol] += p.Reliability / float64(runs)
		}
	}
	for _, pct := range failPcts {
		m := acc[pct]
		t.AddRow(pct, m[HyParView], m[CyclonAcked], m[Cyclon], m[Scamp])
	}
	return t
}

// Fig4HealingTimeRuns aggregates Fig4HealingTime over runs seeded
// executions, reporting mean cycles-to-heal per cell (protocols that exhaust
// maxCycles contribute maxCycles, a lower bound).
func Fig4HealingTimeRuns(opts Options, failPcts []int, probes, maxCycles, runs int) *metrics.Table {
	opts = opts.withDefaults()
	if runs < 1 {
		runs = 1
	}
	t := metrics.NewTable(
		fmt.Sprintf("Fig4: cycles to regain pre-failure reliability (n=%d, %d runs)",
			opts.N, runs),
		"fail%", "hyparview", "cyclonacked", "cyclon")
	acc := make(map[int]map[Protocol]float64)
	for run := 0; run < runs; run++ {
		o := opts
		o.Seed = opts.Seed + uint64(run)*1_000_003
		results, _ := Fig4HealingTime(o, failPcts, probes, maxCycles)
		for _, r := range results {
			if acc[r.FailPct] == nil {
				acc[r.FailPct] = make(map[Protocol]float64)
			}
			c := r.Cycles
			if c < 0 {
				c = maxCycles
			}
			acc[r.FailPct][r.Protocol] += float64(c) / float64(runs)
		}
	}
	for _, pct := range failPcts {
		m := acc[pct]
		t.AddRow(pct, m[HyParView], m[CyclonAcked], m[Cyclon])
	}
	return t
}
