package sim

import (
	"fmt"
	"strings"
	"testing"

	"hyparview/internal/faults"
	"hyparview/internal/id"
	"hyparview/internal/msg"
)

// The adversarial suite's regression pins: the envelope table holds at a CI
// scale, the partition-heal-mid-broadcast scenario converges with no phantom
// eager edges (the bug the suite originally surfaced), and fault injection
// preserves trace determinism.

func TestAdversarialEnvelopesHold(t *testing.T) {
	opts := Options{N: 300, Seed: 42}
	points, table := Adversarial(opts, 15)
	if len(points) != 8 {
		t.Fatalf("scenarios = %d, want 8", len(points))
	}
	classes := make(map[string]bool)
	for _, p := range points {
		if p.Class != "none" {
			classes[p.Class] = true
		}
		if !p.OK {
			t.Errorf("scenario %q outside its envelope: rel=%.4f final=%.4f floor=%.4f note=%q",
				p.Scenario, p.Rel, p.FinalRel, p.Floor, p.Note)
		}
	}
	if len(classes) < 4 {
		t.Errorf("distinct fault classes = %d, want >= 4 (got %v)", len(classes), classes)
	}
	if !AdversarialOK(points) {
		t.Error("AdversarialOK = false")
	}
	if s := table.String(); !strings.Contains(s, "kill-80pct") {
		t.Error("table missing the paper's headline scenario row")
	}
}

func TestAdversarialHeadlineAtPaperScale(t *testing.T) {
	// The paper's most hostile data point at full scale: 80% of 1000 nodes
	// crash at once, and broadcast reliability must recover to >= 0.99.
	if testing.Short() {
		t.Skip("full-scale envelope; run without -short")
	}
	p := advMassFailure(Options{N: 1000, Seed: 42}.withDefaults(), 25)
	if !p.OK {
		t.Errorf("kill-80pct at n=1000 outside envelope: final=%.4f floor=%.2f note=%q",
			p.FinalRel, p.Floor, p.Note)
	}
	if p.FinalRel < 0.99 {
		t.Errorf("final reliability = %.4f, want >= 0.99", p.FinalRel)
	}
}

func TestPartitionHealMidcastConverges(t *testing.T) {
	res := PartitionHealMidcast(Options{N: 300, Seed: 7},
		faults.AsymmetricPartition(40, 160, 0.20))
	// The cut must land genuinely mid-flight: some but not all nodes held
	// the payload when the partition landed.
	if res.DeliveredAtCut == 0 || res.DeliveredAtCut >= 300 {
		t.Errorf("delivered at cut = %d, want strictly mid-flight (0 < x < 300)", res.DeliveredAtCut)
	}
	if res.Reliability != 1.0 {
		t.Errorf("post-heal reliability = %.4f, want 1.0", res.Reliability)
	}
	if res.MinorityDelivered != res.MinoritySize {
		t.Errorf("minority delivered = %d/%d, want all", res.MinorityDelivered, res.MinoritySize)
	}
	if res.PhantomEagerEdges != 0 {
		t.Errorf("phantom eager edges = %d, want 0", res.PhantomEagerEdges)
	}
}

// injectedTrace records every delivered wire message of a faulted run.
func injectedTrace(opts Options, stabilize, msgs int) (string, faults.Stats) {
	c := NewCluster(HyParView, opts)
	inj := c.InstallFaults(&faults.Injector{
		Default: faults.Profile{Drop: 0.02, Duplicate: 0.02, DupDelay: 2, Delay: 0.10, MaxDelay: 3},
	})
	var b strings.Builder
	c.Sim.Tap = func(from, to id.ID, m msg.Message) {
		fmt.Fprintf(&b, "%d>%d:%d:%d@%d\n", from, to, m.Type, m.Round, c.Sim.Now())
	}
	c.Stabilize(stabilize)
	c.MeasureBurst(msgs)
	return b.String(), inj.Stats()
}

func TestInjectionPreservesTraceDeterminism(t *testing.T) {
	opts := Options{N: 120, Seed: 7, Broadcast: BroadcastPlumtree}
	a, sa := injectedTrace(opts, 5, 3)
	b, sb := injectedTrace(opts, 5, 3)
	if a == "" {
		t.Fatal("empty event trace")
	}
	if sa.Inspected == 0 || sa.Dropped == 0 {
		t.Fatalf("injector idle: %+v", sa)
	}
	if sa != sb {
		t.Fatalf("fault stats diverge under the same seed: %+v vs %+v", sa, sb)
	}
	if a != b {
		t.Fatal("same seed produced diverging traces under injection")
	}
	// And the faulted trace really differs from the clean one (the injector
	// is not a no-op).
	if clean := clusterTrace(opts, 5, 3); clean == a {
		t.Error("injected trace identical to clean trace")
	}
}

// TestInjectionTraceDeterminismShardMatrix extends the injection-determinism
// pin over the sharded engine: at every shard count, same seed ⇒ identical
// fault stats and byte-identical traces. The contract under injection is per
// shard count — the hook pre-pass runs injector state in canonical order, but
// Redeliver artifacts are sequenced at hook time (before the wave's own
// output), so the interleaving legitimately differs from the single-shard
// engine's; aggregate equivalence across counts is pinned separately by the
// conformance suite.
func TestInjectionTraceDeterminismShardMatrix(t *testing.T) {
	for _, shards := range shardMatrix {
		opts := Options{N: 120, Seed: 7, Shards: shards, Broadcast: BroadcastPlumtree}
		a, sa := injectedTrace(opts, 5, 3)
		b, sb := injectedTrace(opts, 5, 3)
		if a == "" {
			t.Fatalf("shards=%d: empty event trace", shards)
		}
		if sa.Inspected == 0 || sa.Dropped == 0 {
			t.Fatalf("shards=%d: injector idle: %+v", shards, sa)
		}
		if sa != sb {
			t.Fatalf("shards=%d: fault stats diverge under the same seed: %+v vs %+v", shards, sa, sb)
		}
		if a != b {
			t.Fatalf("shards=%d: same seed produced diverging traces under injection", shards)
		}
	}
}
