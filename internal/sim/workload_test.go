package sim

import (
	"fmt"
	"testing"
)

// TestWorkloadExperiment runs the pub/sub workload experiment at reduced
// scale and checks the acceptance envelope: every topic delivers at
// reliability ≥ 0.99 in both arms, batching cuts both the frame count and
// the hot topic's wire bytes per delivered message, and the weighted latency
// percentiles are populated (the run is in virtual-time latency mode).
func TestWorkloadExperiment(t *testing.T) {
	opts := Options{N: 250, Seed: 7, StabilizationCycles: 30}
	wopts := WorkloadOptions{Events: 1200, Rate: 8}
	points, table := Workload(opts, wopts)
	fmt.Println(table.String())
	if len(points) != 2 {
		t.Fatalf("got %d arms, want 2", len(points))
	}
	byArm := map[string]WorkloadPoint{}
	for _, p := range points {
		byArm[p.Arm] = p
		if p.MinReliability < 0.99 {
			t.Errorf("%s arm: min per-topic reliability %.4f, want >= 0.99", p.Arm, p.MinReliability)
		}
		if p.Deliveries == 0 || p.Frames == 0 {
			t.Errorf("%s arm: deliveries=%d frames=%d, want both > 0", p.Arm, p.Deliveries, p.Frames)
		}
		if p.LatencyP50 <= 0 || p.LatencyP99 < p.LatencyP50 {
			t.Errorf("%s arm: weighted latency p50=%.1f p99=%.1f, want 0 < p50 <= p99",
				p.Arm, p.LatencyP50, p.LatencyP99)
		}
	}
	ub, ba := byArm["unbatched"], byArm["batched"]
	if ub.Frames != uint64(wopts.Events) {
		t.Errorf("unbatched arm sent %d frames for %d events, want equal", ub.Frames, wopts.Events)
	}
	if ba.Frames >= ub.Frames {
		t.Errorf("batched arm sent %d frames, unbatched %d: batching should reduce frames",
			ba.Frames, ub.Frames)
	}
	if ba.HotBytesPerDelivery >= ub.HotBytesPerDelivery {
		t.Errorf("hot-topic bytes/delivery: batched %.2f >= unbatched %.2f, batching should reduce it",
			ba.HotBytesPerDelivery, ub.HotBytesPerDelivery)
	}
	if !WorkloadOK(points) {
		t.Error("WorkloadOK = false for a run whose individual checks passed")
	}
}

// TestWorkloadDeterminism pins the experiment end to end: the same seed
// yields identical measurements (the workload generator's determinism pin
// lifted through the full simulator stack).
func TestWorkloadDeterminism(t *testing.T) {
	opts := Options{N: 120, Seed: 11, StabilizationCycles: 20}
	wopts := WorkloadOptions{Events: 400, Rate: 8, Topics: 30}
	a, _ := Workload(opts, wopts)
	b, _ := Workload(opts, wopts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arm %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
