package sim

import (
	"fmt"
	"testing"
)

func TestSmokeAllProtocols(t *testing.T) {
	for _, p := range AllProtocols() {
		c := NewCluster(p, Options{N: 1000, Seed: 42})
		c.Stabilize(50)
		snap := c.Snapshot()
		rel := c.Broadcast()
		deg := 0.0
		for _, d := range snap.OutDegrees() {
			deg += float64(d)
		}
		deg /= float64(snap.Order())
		fmt.Printf("%-12s  conn=%v  lcc=%.3f  avgdeg=%.2f  rel=%.4f  cc=%.5f sym=%.3f\n",
			p, snap.IsConnected(), snap.LargestComponentFraction(), deg, rel,
			snap.ClusteringCoefficient(), snap.SymmetryFraction())
		c.FailFraction(0.5)
		rels := c.BroadcastBurst(20)
		fmt.Printf("   after 50%% fail: first=%.3f last=%.3f\n", rels[0], rels[19])
	}
}
