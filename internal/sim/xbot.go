package sim

// The X-BOT evaluation: oblivious vs optimized overlays under a non-uniform
// latency model (the SRDS 2009 companion paper's question, run under this
// paper's §5 methodology).

import (
	"fmt"

	"hyparview/internal/metrics"
	"hyparview/internal/netsim"
	"hyparview/internal/xbot"
)

// XBotResult is one arm (oblivious or optimized) of the comparison.
type XBotResult struct {
	// Optimized reports which arm this is.
	Optimized bool
	// MeanLinkCost and P90LinkCost summarize the latency-model cost of the
	// overlay's directed active links.
	MeanLinkCost float64
	P90LinkCost  float64
	// MeanReliability and MeanMaxLatency come from a measured burst: the
	// broadcast reliability and the virtual-time latency of each message's
	// last delivery, averaged over the burst. LatencyP50 and LatencyP99 are
	// percentiles over every individual delivery latency of the burst —
	// X-BOT's cost cut must show up in the tail, not just the mean.
	MeanReliability float64
	MeanMaxLatency  float64
	LatencyP50      float64
	LatencyP99      float64
	// MeanDegree and MaxInDegree capture the degree distribution: X-BOT must
	// not trade connectivity for cost.
	MeanDegree  float64
	MaxInDegree int
	// Symmetry is the fraction of directed links whose reverse exists;
	// Connected reports whether the overlay is one component.
	Symmetry  float64
	Connected bool
	// SwapsCompleted totals the initiator-side completed swaps (0 for the
	// oblivious arm).
	SwapsCompleted uint64
}

// measureArm builds one cluster and measures everything XBotResult reports.
func measureArm(opts Options, optimized bool, msgs int) XBotResult {
	if optimized {
		opts.Optimizer = OptimizerXBot
	} else {
		opts.Optimizer = OptimizerNone
	}
	c := NewCluster(HyParView, opts)
	c.Stabilize(opts.StabilizationCycles)
	burst := c.MeasureBurst(msgs)

	costs := c.ActiveLinkCosts()
	snap := c.Snapshot()
	in := snap.InDegrees()
	maxIn := 0
	for _, d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	out := snap.OutDegrees()
	var degSum float64
	for _, d := range out {
		degSum += float64(d)
	}
	res := XBotResult{
		Optimized:       optimized,
		MeanLinkCost:    metrics.Mean(costs),
		P90LinkCost:     metrics.Percentile(costs, 90),
		MeanReliability: burst.MeanReliability,
		MeanMaxLatency:  burst.MeanMaxLatency,
		LatencyP50:      burst.LatencyP50,
		LatencyP99:      burst.LatencyP99,
		MeanDegree:      degSum / float64(len(out)),
		MaxInDegree:     maxIn,
		Symmetry:        snap.SymmetryFraction(),
		Connected:       snap.IsConnected(),
	}
	if optimized {
		for _, nodeID := range c.Sim.AliveIDs() {
			if xn, ok := c.Membership(nodeID).(*xbot.Node); ok {
				res.SwapsCompleted += xn.Stats().SwapsCompleted
			}
		}
	}
	return res
}

// ObliviousVsXBot compares the paper's oblivious HyParView overlay against
// the same overlay continuously optimized by X-BOT, both built from the same
// seed under the same latency model (Euclidean by default). After
// stabilization — during which the optimizer runs as part of the membership
// cycles — it measures a burst of msgs broadcasts and the overlay's link
// costs and degree structure. The headline numbers: X-BOT must cut the mean
// active-link cost sharply (the SRDS 2009 paper reports 20–50% depending on
// the cost model) while leaving reliability, degrees and connectivity
// untouched.
func ObliviousVsXBot(opts Options, msgs int) ([2]XBotResult, *metrics.Table) {
	opts = opts.withDefaults()
	if opts.LatencyModel == nil {
		opts.LatencyModel = netsim.NewEuclidean(opts.Seed)
	}
	t := metrics.NewTable(
		fmt.Sprintf("ObliviousVsXBot: link cost and broadcast under %s latency (n=%d, %d msgs)",
			opts.LatencyModel.Name(), opts.N, msgs),
		"overlay", "mean-link-cost", "p90-link-cost", "reliability",
		"vtime-latency", "lat-p50", "lat-p99", "mean-degree", "max-in-degree",
		"symmetry", "connected", "swaps")
	var results [2]XBotResult
	for i, optimized := range []bool{false, true} {
		results[i] = measureArm(opts, optimized, msgs)
		r := results[i]
		name := "oblivious"
		if optimized {
			name = "xbot"
		}
		t.AddRow(name, r.MeanLinkCost, r.P90LinkCost, r.MeanReliability,
			r.MeanMaxLatency, r.LatencyP50, r.LatencyP99, r.MeanDegree,
			r.MaxInDegree, fmt.Sprintf("%.3f", r.Symmetry), r.Connected,
			r.SwapsCompleted)
	}
	return results, t
}
