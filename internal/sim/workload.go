package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/metrics"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
	"hyparview/internal/pubsub"
	"hyparview/internal/workload"
)

// WorkloadOptions parameterizes the pub/sub workload experiment. Zero fields
// take the defaults documented per field.
type WorkloadOptions struct {
	// Events is the number of publish events replayed from the Zipfian
	// schedule (default 2000).
	Events int
	// Rate is the publish pacing: publishes per virtual tick (default 8).
	Rate int
	// Warmup is the number of untagged warm-up broadcasts before measuring
	// (default 20) — enough for Plumtree to prune its eager links into a
	// spanning tree.
	Warmup int

	// Topics, Exponent, Subscribers and PayloadBytes parameterize the
	// generator; see workload.Config. PayloadBytes is floored at 8 — the
	// harness stamps the publish tick into the first 8 payload bytes.
	Topics       int
	Exponent     float64
	Subscribers  uint64
	PayloadBytes int

	// MaxBatch, MaxBatchBytes and FlushInterval configure the batched arm
	// (defaults 16 messages, 4096 bytes, 20 ticks). The unbatched arm always
	// runs with batching disabled.
	MaxBatch      int
	MaxBatchBytes int
	FlushInterval uint64
}

// withDefaults fills unset workload options.
func (o WorkloadOptions) withDefaults() WorkloadOptions {
	if o.Events <= 0 {
		o.Events = 2000
	}
	if o.Rate <= 0 {
		o.Rate = 8
	}
	if o.Warmup <= 0 {
		o.Warmup = 20
	}
	if o.Topics <= 0 {
		o.Topics = 100
	}
	if o.Exponent == 0 {
		o.Exponent = 1.0
	}
	if o.Subscribers == 0 {
		o.Subscribers = 1_000_000
	}
	if o.PayloadBytes < 8 {
		if o.PayloadBytes <= 0 {
			o.PayloadBytes = 64
		} else {
			o.PayloadBytes = 8
		}
	}
	if o.MaxBatch <= 1 {
		o.MaxBatch = 16
	}
	if o.MaxBatchBytes <= 0 {
		o.MaxBatchBytes = 4096
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = 20
	}
	return o
}

// WorkloadPoint is one arm's end-user SLO measurement.
type WorkloadPoint struct {
	// Arm names the configuration: "unbatched" or "batched".
	Arm string
	// Events is the number of publishes replayed; Frames the broadcast
	// rounds they produced (== Events unbatched, fewer batched).
	Events int
	Frames uint64
	// Deliveries counts subscriber handler invocations across the cluster.
	Deliveries uint64
	// LatencyP50 and LatencyP99 are end-user-weighted publish→deliver
	// percentiles in virtual ticks: each delivery sample is weighted by the
	// end-users served through the delivering node for that topic, so the
	// percentile reads as "the latency the p-th percentile user saw".
	LatencyP50 float64
	LatencyP99 float64
	// MeanReliability, MinReliability and HotReliability are per-topic
	// delivered/expected fractions: mean and min over the published topics,
	// and the hottest topic's own figure.
	MeanReliability float64
	MinReliability  float64
	HotReliability  float64
	// BytesPerDelivery is total wire bytes (payload rounds, IHAVE/GRAFT
	// control, membership chatter during the run) per handler delivery.
	// HotBytesPerDelivery narrows to the hottest topic: payload-frame wire
	// bytes carrying topic 1, per topic-1 delivery — the number batching
	// must reduce to pay for itself.
	BytesPerDelivery    float64
	HotBytesPerDelivery float64
}

// Workload runs the end-user pub/sub SLO experiment: a Zipfian topic workload
// (popularity-skewed subscriptions modeling Subscribers end-users behind the
// overlay nodes, and a matching publish schedule) replayed through per-node
// pubsub.Routers over the cluster's broadcast layer, in two arms — unbatched
// and publish-side batched — under identical seeds, so the comparison
// isolates the batching policy. It reports end-user-weighted delivery-latency
// percentiles, per-topic reliability and bytes-on-wire per delivered message
// (ROADMAP: the product-facing numbers the protocol tables don't show).
//
// The simulator runs in event-driven virtual time; when opts installs no
// latency model, the Euclidean default is used so "latency" means link
// delays, not FIFO zero-time.
func Workload(opts Options, wopts WorkloadOptions) ([]WorkloadPoint, *metrics.Table) {
	opts = opts.withDefaults()
	wopts = wopts.withDefaults()
	if opts.Latency == nil && opts.LatencyModel == nil {
		opts.LatencyModel = netsim.NewEuclidean(opts.Seed)
	}
	t := metrics.NewTable(
		fmt.Sprintf("Workload: Zipf(s=%.2g) pub/sub over HyParView/%s (n=%d, %d topics, %d events, %.2g end-users)",
			wopts.Exponent, opts.Broadcast, opts.N, wopts.Topics, wopts.Events, float64(wopts.Subscribers)),
		"arm", "frames", "deliveries", "rel-mean", "rel-min", "rel-hot",
		"lat-p50", "lat-p99", "bytes/dlv", "hot-bytes/dlv")
	var points []WorkloadPoint
	for _, arm := range []string{"unbatched", "batched"} {
		o := opts
		// Same seed for both arms: identical overlay, subscriptions and
		// publish schedule; only the batching policy differs.
		cfg := &pubsub.Config{}
		if arm == "batched" {
			cfg.MaxBatch = wopts.MaxBatch
			cfg.MaxBatchBytes = wopts.MaxBatchBytes
			cfg.FlushInterval = wopts.FlushInterval
		}
		o.PubSub = cfg
		p := runWorkloadArm(arm, o, wopts)
		points = append(points, p)
		t.AddRow(p.Arm, p.Frames, p.Deliveries, p.MeanReliability, p.MinReliability,
			p.HotReliability, p.LatencyP50, p.LatencyP99, p.BytesPerDelivery, p.HotBytesPerDelivery)
	}
	return points, t
}

// runWorkloadArm builds one cluster, replays the schedule and measures.
func runWorkloadArm(arm string, opts Options, wopts WorkloadOptions) WorkloadPoint {
	c := NewCluster(HyParView, opts)
	c.Stabilize(opts.StabilizationCycles)
	c.BroadcastBurst(wopts.Warmup)

	w := workload.New(workload.Config{
		Seed:         opts.Seed,
		Nodes:        opts.N,
		Topics:       wopts.Topics,
		Exponent:     wopts.Exponent,
		Subscribers:  wopts.Subscribers,
		PayloadBytes: wopts.PayloadBytes,
	})

	published := make([]uint64, w.Topics()+1)
	delivered := make([]uint64, w.Topics()+1)
	var values, weights []float64
	handler := func(topic uint32, payload []byte, _ int) {
		delivered[topic]++
		if len(payload) >= 8 {
			values = append(values, float64(c.Sim.Now()-binary.BigEndian.Uint64(payload)))
			weights = append(weights, w.Weight(topic))
		}
	}
	for i, nodeID := range c.ids {
		r := c.Router(nodeID)
		for _, topic := range w.Subscriptions(i) {
			if err := r.Subscribe(topic, handler); err != nil {
				panic(fmt.Sprintf("sim: workload subscribe: %v", err))
			}
		}
	}

	// Per-topic wire accounting: every payload-round delivery carries its
	// topic tag, so the fault-injection seam doubles as a byte meter.
	topicBytes := make([]uint64, w.Topics()+1)
	c.Sim.Intercept = func(_ id.ID, m *msg.Message) (*msg.Message, bool) {
		if m.Type == msg.Gossip || m.Type == msg.PlumtreeGossip {
			if topic, _ := pubsub.SplitTopic(m.Topic); topic != 0 && topic <= uint32(w.Topics()) {
				topicBytes[topic] += uint64(m.EncodedSize())
			}
		}
		return m, true
	}
	baseBytes := c.Sim.Stats().BytesSent
	baseFrames := workloadFrames(c)

	// Drain cadence: the flood dedup cache remembers the last SeenWindow
	// round identifiers per node, so the number of rounds in flight must stay
	// below it — an evicted round's circulating copies would be re-accepted
	// and re-forwarded without end. Completing the outstanding floods every
	// half-window keeps dedup sound; virtual-time latency samples are
	// unaffected because Drain advances the clock to each delivery's own
	// timestamp.
	drainEvery := gossip.DefaultSeenWindow / 2
	for i := 0; i < wopts.Events; i++ {
		ev := w.Next()
		payload := make([]byte, wopts.PayloadBytes)
		binary.BigEndian.PutUint64(payload, c.Sim.Now())
		if err := c.Router(c.ids[ev.Node]).Publish(ev.Topic, payload); err != nil {
			panic(fmt.Sprintf("sim: workload publish: %v", err))
		}
		published[ev.Topic]++
		if (i+1)%wopts.Rate == 0 {
			c.Sim.RunFor(1)
		}
		if (i+1)%drainEvery == 0 {
			// Drain is the instantaneous-convergence operator: virtual time
			// jumps to the completion of every outstanding flood. Flush open
			// frames first so no buffered message straddles the jump and
			// charges the whole window to its delivery latency.
			flushRouters(c)
			c.Sim.Drain()
		}
	}
	// Let the periodic flush tick fire once more for still-open frames, force
	// a flush for configurations without the tick, then drain all traffic.
	c.Sim.RunFor(wopts.FlushInterval + 1)
	flushRouters(c)
	c.Sim.Drain()
	c.Sim.Intercept = nil

	p := WorkloadPoint{Arm: arm, Events: wopts.Events}
	p.Frames = workloadFrames(c) - baseFrames
	relSum, topics := 0.0, 0
	p.MinReliability = math.Inf(1)
	for topic := 1; topic <= w.Topics(); topic++ {
		p.Deliveries += delivered[topic]
		if published[topic] == 0 {
			continue
		}
		expected := float64(published[topic]) * float64(w.SubscriberNodes(uint32(topic)))
		rel := float64(delivered[topic]) / expected
		relSum += rel
		topics++
		if rel < p.MinReliability {
			p.MinReliability = rel
		}
	}
	if topics > 0 {
		p.MeanReliability = relSum / float64(topics)
	} else {
		p.MinReliability = 0
	}
	if published[1] > 0 {
		p.HotReliability = float64(delivered[1]) /
			(float64(published[1]) * float64(w.SubscriberNodes(1)))
	}
	p.LatencyP50 = metrics.WeightedPercentile(values, weights, 50)
	p.LatencyP99 = metrics.WeightedPercentile(values, weights, 99)
	if p.Deliveries > 0 {
		p.BytesPerDelivery = float64(c.Sim.Stats().BytesSent-baseBytes) / float64(p.Deliveries)
	}
	if delivered[1] > 0 {
		p.HotBytesPerDelivery = float64(topicBytes[1]) / float64(delivered[1])
	}
	return p
}

// flushRouters broadcasts every open batch frame across the cluster.
func flushRouters(c *Cluster) {
	for _, nodeID := range c.ids {
		c.Router(nodeID).Flush()
	}
}

// workloadFrames sums the publish-side broadcast-round counter over every
// router in the cluster.
func workloadFrames(c *Cluster) uint64 {
	var frames uint64
	for _, nodeID := range c.ids {
		frames += c.Router(nodeID).Stats().Frames
	}
	return frames
}

// WorkloadOK is the envelope check on a Workload run: every arm delivers with
// per-topic reliability at least 0.99, and batching reduces the hot topic's
// wire bytes per delivered message relative to the unbatched arm. The CI
// smoke gates on it.
func WorkloadOK(points []WorkloadPoint) bool {
	var unbatchedHot, batchedHot float64
	for _, p := range points {
		if p.MinReliability < 0.99 {
			return false
		}
		switch p.Arm {
		case "unbatched":
			unbatchedHot = p.HotBytesPerDelivery
		case "batched":
			batchedHot = p.HotBytesPerDelivery
		}
	}
	return batchedHot > 0 && batchedHot < unbatchedHot
}
