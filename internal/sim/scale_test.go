package sim

// Production-scale smoke: the ROADMAP's north star is simulating overlays at
// the scale PeerSim ran for the paper (§5 uses n=10,000) and beyond. The
// rewritten event engine — index-based node table, pooled single event heap —
// makes an n=100,000 HyParView population practical; this test proves it
// end to end: build, stabilize, broadcast, full reliability.

import "testing"

func TestScale100kBroadcastReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node scale smoke skipped in -short mode")
	}
	scaleSmoke(t, 100_000, 1)
}

// TestScale1MBroadcastReliability breaks the million-node barrier end to end
// on the sharded wave/barrier engine: build n=1,000,000, stabilize,
// broadcast, and demand full reliability. Expect several minutes and ~10 GB
// of heap; CI runs it in a dedicated non-short step.
func TestScale1MBroadcastReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-node scale smoke skipped in -short mode")
	}
	scaleSmoke(t, 1_000_000, 2)
}

func scaleSmoke(t *testing.T, n, shards int) {
	c := NewCluster(HyParView, Options{N: n, Seed: 1, Shards: shards})
	c.Stabilize(2)
	stats := c.MeasureBurst(2)
	if stats.MeanReliability != 1.0 {
		t.Fatalf("%d-node burst reliability = %v, want 1.0", n, stats.MeanReliability)
	}
	if stats.RMR < 0 {
		t.Errorf("RMR = %v, want >= 0", stats.RMR)
	}
	st := c.Sim.Stats()
	t.Logf("%d-node cluster (shards=%d): %d events delivered, %d bytes simulated wire traffic, RMR %.2f",
		n, shards, st.Delivered, st.BytesSent, stats.RMR)
}
