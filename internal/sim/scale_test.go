package sim

// Production-scale smoke: the ROADMAP's north star is simulating overlays at
// the scale PeerSim ran for the paper (§5 uses n=10,000) and beyond. The
// rewritten event engine — index-based node table, pooled single event heap —
// makes an n=100,000 HyParView population practical; this test proves it
// end to end: build, stabilize, broadcast, full reliability.

import "testing"

func TestScale100kBroadcastReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node scale smoke skipped in -short mode")
	}
	c := NewCluster(HyParView, Options{N: 100_000, Seed: 1})
	c.Stabilize(2)
	stats := c.MeasureBurst(2)
	if stats.MeanReliability != 1.0 {
		t.Fatalf("100k-node burst reliability = %v, want 1.0", stats.MeanReliability)
	}
	if stats.RMR < 0 {
		t.Errorf("RMR = %v, want >= 0", stats.RMR)
	}
	st := c.Sim.Stats()
	t.Logf("100k cluster: %d events delivered, %d bytes simulated wire traffic, RMR %.2f",
		st.Delivered, st.BytesSent, stats.RMR)
}
