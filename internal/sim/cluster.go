// Package sim is the experiment harness: it builds simulated clusters
// running one of the membership protocols under the gossip broadcast layer
// and reproduces every figure and table of the paper's evaluation (§5).
//
// Methodology (paper §5): the overlay is created by having nodes join one by
// one, without membership rounds in between; HyParView and Cyclon use a
// single contact node, SCAMP uses a random node already in the overlay. A
// stabilization period of 50 membership cycles follows. Failures are induced
// at random, and broadcast bursts are sent from random correct nodes with no
// periodic membership cycles in between — only reactive steps run.
package sim

import (
	"fmt"
	"sort"
	"sync"

	"hyparview/internal/core"
	"hyparview/internal/cyclon"
	"hyparview/internal/gossip"
	"hyparview/internal/graph"
	"hyparview/internal/id"
	"hyparview/internal/metrics"
	"hyparview/internal/netsim"
	"hyparview/internal/peer"
	"hyparview/internal/plumtree"
	"hyparview/internal/pubsub"
	"hyparview/internal/rng"
	"hyparview/internal/scamp"
	"hyparview/internal/xbot"
)

// Protocol selects the membership protocol under test.
type Protocol int

// The four protocols of the paper's evaluation.
const (
	HyParView Protocol = iota + 1
	Cyclon
	CyclonAcked
	Scamp
)

// String names the protocol as the paper does.
func (p Protocol) String() string {
	switch p {
	case HyParView:
		return "HyParView"
	case Cyclon:
		return "Cyclon"
	case CyclonAcked:
		return "CyclonAcked"
	case Scamp:
		return "Scamp"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// AllProtocols lists the protocols in the paper's presentation order.
func AllProtocols() []Protocol {
	return []Protocol{HyParView, CyclonAcked, Cyclon, Scamp}
}

// BroadcastProtocol selects the broadcast layer a cluster runs on top of its
// membership protocol.
type BroadcastProtocol int

// The two broadcast layers.
const (
	// BroadcastGossip is the paper's evaluation broadcast: flooding for
	// HyParView, random fanout for the peer-sampling protocols.
	BroadcastGossip BroadcastProtocol = iota
	// BroadcastPlumtree runs the Plumtree epidemic broadcast tree (eager
	// push on tree links, lazy announcements elsewhere) over the membership
	// protocol.
	BroadcastPlumtree
)

// String names the broadcast protocol.
func (b BroadcastProtocol) String() string {
	switch b {
	case BroadcastGossip:
		return "gossip"
	case BroadcastPlumtree:
		return "plumtree"
	default:
		return fmt.Sprintf("BroadcastProtocol(%d)", int(b))
	}
}

// Optimizer selects an overlay optimization layer running alongside the
// membership protocol.
type Optimizer int

// The optimization layers.
const (
	// OptimizerNone leaves the overlay oblivious, as the paper builds it.
	OptimizerNone Optimizer = iota
	// OptimizerXBot runs the X-BOT 4-node coordinated swap protocol (SRDS
	// 2009) on every node, biasing active views toward low-cost links as
	// measured by the cluster's latency model. HyParView only.
	OptimizerXBot
)

// String names the optimizer.
func (o Optimizer) String() string {
	switch o {
	case OptimizerNone:
		return "none"
	case OptimizerXBot:
		return "xbot"
	default:
		return fmt.Sprintf("Optimizer(%d)", int(o))
	}
}

// Options configures a cluster build.
type Options struct {
	// N is the cluster size (paper: 10,000).
	N int
	// Seed drives all randomness of the run.
	Seed uint64
	// Shards selects the simulator's event engine: 1 (or 0, the default)
	// runs the classic single-shard heap engine; >= 2 runs the sharded
	// wave/barrier engine (netsim.NewSharded), which partitions the node
	// table across that many shards and delivers event waves in parallel.
	// Determinism is preserved per (Seed, Shards) pair, and aggregate
	// results (reliability, RMR, delivery counts) match the single-shard
	// engine — the cross-shard conformance suite pins this.
	Shards int
	// Fanout is the gossip fan-out for the peer-sampling protocols
	// (paper §5.1: 4). HyParView floods and ignores it.
	Fanout int
	// Broadcast selects the broadcast layer: the paper's flood/fanout
	// gossip (default) or Plumtree epidemic broadcast trees.
	Broadcast BroadcastProtocol
	// Plumtree overrides Plumtree parameters when Broadcast is
	// BroadcastPlumtree; zero fields take the protocol's defaults. Over
	// HyParView and CyclonAcked the cluster forces ReportPeerDown on
	// (broadcast doubles as their failure detector, as in gossip mode).
	Plumtree plumtree.Config
	// HyParView, Cyclon and Scamp override protocol parameters; zero fields
	// take the paper's defaults.
	HyParView core.Config
	Cyclon    cyclon.Config
	Scamp     scamp.Config
	// ConfigureHyParView, when set, customizes the HyParView configuration
	// per node (by join index): the hook behind the heterogeneous-degree
	// extension experiment (paper §6 future work).
	ConfigureHyParView func(i int, cfg core.Config) core.Config
	// Latency, when set, installs a raw virtual-time latency function on the
	// simulator (see netsim.Sim.Latency). The paper's experiments measure
	// hops and run in the default FIFO mode. Prefer LatencyModel, which also
	// provides the cost oracle and per-link metrics; when both are set the
	// explicit function wins for message timing.
	Latency func(from, to id.ID, r *rng.Rand) uint64
	// LatencyModel, when set, switches the simulator to event-driven virtual
	// time with the model's per-link delays, enables virtual-time delivery
	// latency in MeasureBurst and per-link cost metrics, and serves as the
	// cost oracle for Optimizer layers.
	LatencyModel netsim.LatencyModel
	// Optimizer runs an overlay optimization layer on every node. X-BOT
	// needs HyParView's symmetric reciprocal views: HyParView clusters run
	// it, the peer-sampling baselines ignore the option so protocol-sweep
	// experiments stay runnable under one option set. When no LatencyModel
	// is set, a Euclidean model seeded with Seed is installed so the
	// optimizer has a non-trivial cost surface.
	Optimizer Optimizer
	// XBot overrides X-BOT parameters when Optimizer is OptimizerXBot; zero
	// fields take the protocol's defaults.
	XBot xbot.Config
	// Oracle overrides the optimizer's link-cost source. Default: the
	// cluster's LatencyModel, so optimization minimizes exactly what the
	// simulated network charges; a custom oracle decouples the two (e.g. a
	// monetary cost surface over a latency-simulated network, or running
	// the optimizer in FIFO mode with no latency model at all).
	Oracle xbot.Oracle
	// StabilizationCycles is used by Stabilize callers that take the
	// default (paper: 50).
	StabilizationCycles int

	// PubSub, when set, wraps every node's broadcaster in a pubsub.Router
	// built from this configuration. A nil NextRound defaults to the
	// cluster Tracker's allocator so published rounds share the global
	// monotonic space; a nil Fallback defaults to the cluster's delivery
	// callback so untagged broadcast measurements keep working through the
	// wrapped stack. Per-node routers are reachable via Cluster.Router.
	PubSub *pubsub.Config

	// ShuffleInterval, when non-zero, switches HyParView clusters to the
	// paper-faithful periodic mode: every node schedules its own shuffle
	// round each ShuffleInterval virtual ticks (core.Config.ShuffleInterval)
	// and the X-BOT optimizer, when enabled, derives its attempt cadence
	// from the same clock (ShuffleInterval × XBot.Period). Stabilize then
	// advances virtual time with Sim.RunFor instead of driving external
	// RunCycle calls, so membership rounds interleave with in-flight traffic
	// in timestamp order. Zero keeps the cycle-driven mode; the
	// peer-sampling baselines (Cyclon, Scamp) are always cycle-driven.
	ShuffleInterval uint64
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.N == 0 {
		o.N = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Fanout == 0 {
		o.Fanout = 4
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.StabilizationCycles == 0 {
		o.StabilizationCycles = 50
	}
	if o.Optimizer != OptimizerNone && o.LatencyModel == nil && o.Oracle == nil {
		o.LatencyModel = netsim.NewEuclidean(o.Seed)
	}
	return o
}

// Cluster is a simulated population of nodes running one membership protocol
// under the gossip broadcast layer.
type Cluster struct {
	Protocol Protocol
	Opts     Options
	Sim      *netsim.Sim
	Tracker  *gossip.Tracker

	ids        []id.ID
	gossipers  map[id.ID]gossip.Broadcaster
	membership map[id.ID]peer.Membership
	routers    map[id.ID]*pubsub.Router

	// Virtual-time delivery tracking: per in-flight round, the clock at
	// broadcast time and the delivery-latency aggregate. Only populated when
	// the simulator runs in latency mode.
	timed      bool
	roundStart map[uint64]uint64
	roundLat   map[uint64]*latencyAgg

	// sharded is true when Opts.Shards >= 2: the delivery callback then runs
	// concurrently from shard goroutines and takes mu. The single-shard path
	// never touches the lock.
	sharded bool
	mu      sync.Mutex
}

// latencyAgg collects the virtual-time latency of every delivery of one
// round; max/mean/percentiles all derive from the samples at endRound.
type latencyAgg struct {
	samples []float64
}

// NewCluster builds a cluster of opts.N nodes running proto, joined one by
// one per the paper's methodology, with all join traffic fully processed.
func NewCluster(proto Protocol, opts Options) *Cluster {
	opts = opts.withDefaults()
	c := &Cluster{
		Protocol:   proto,
		Opts:       opts,
		Sim:        netsim.NewSharded(opts.Seed, opts.Shards),
		Tracker:    gossip.NewTracker(),
		sharded:    opts.Shards > 1,
		gossipers:  make(map[id.ID]gossip.Broadcaster, opts.N),
		membership: make(map[id.ID]peer.Membership, opts.N),
		routers:    make(map[id.ID]*pubsub.Router),
		roundStart: make(map[uint64]uint64),
		roundLat:   make(map[uint64]*latencyAgg),
	}
	switch {
	case opts.Latency != nil:
		c.Sim.Latency = opts.Latency
	case opts.LatencyModel != nil:
		c.Sim.Latency = opts.LatencyModel.Delay
	}
	c.timed = c.Sim.Latency != nil
	for i := 0; i < opts.N; i++ {
		nodeID := id.ID(i + 1)
		c.ids = append(c.ids, nodeID)
		var joiner interface{ Join(id.ID) error }
		c.Sim.Add(nodeID, func(env peer.Env) peer.Process {
			m := c.newMembership(env, i)
			joiner = m.(interface{ Join(id.ID) error })
			g := c.newBroadcaster(env, m)
			c.gossipers[nodeID] = g
			c.membership[nodeID] = m
			return g
		})
		if i > 0 {
			// Paper §5: one-by-one joins, no cycles in between. HyParView
			// and Cyclon use a single contact; SCAMP uses a random node
			// already in the overlay.
			contact := c.ids[0]
			if proto == Scamp {
				contact = c.ids[c.Sim.Rand().Intn(i)]
			}
			if err := joiner.Join(contact); err != nil {
				panic(fmt.Sprintf("sim: join of %v via %v failed: %v", nodeID, contact, err))
			}
			c.Sim.Drain()
		}
	}
	return c
}

// newMembership constructs the protocol instance for the node with join
// index i.
func (c *Cluster) newMembership(env peer.Env, i int) peer.Membership {
	switch c.Protocol {
	case HyParView:
		cfg := c.Opts.HyParView
		if c.Opts.ShuffleInterval > 0 && cfg.ShuffleInterval == 0 {
			cfg.ShuffleInterval = c.Opts.ShuffleInterval
		}
		if c.Opts.ConfigureHyParView != nil {
			cfg = c.Opts.ConfigureHyParView(i, cfg.WithDefaults())
		}
		hv := core.New(env, cfg)
		if c.Opts.Optimizer == OptimizerXBot {
			// By default the latency model doubles as the cost oracle: its
			// Cost strips jitter, modelling a node averaging RTT probes.
			oracle := c.Opts.Oracle
			if oracle == nil {
				oracle = c.Opts.LatencyModel
			}
			xcfg := c.Opts.XBot.DeriveInterval(c.Opts.ShuffleInterval)
			return xbot.New(env, hv, xcfg, oracle)
		}
		return hv
	case Cyclon:
		cfg := c.Opts.Cyclon
		cfg.DetectFailures = false
		return cyclon.New(env, cfg)
	case CyclonAcked:
		cfg := c.Opts.Cyclon
		cfg.DetectFailures = true
		return cyclon.New(env, cfg)
	case Scamp:
		return scamp.New(env, c.Opts.Scamp)
	default:
		panic(fmt.Sprintf("sim: unknown protocol %v", c.Protocol))
	}
}

// gossipConfig maps the protocol to its broadcast behaviour (paper §5).
func (c *Cluster) gossipConfig() gossip.Config {
	switch c.Protocol {
	case HyParView:
		// Deterministic flooding over TCP links doubling as failure
		// detectors.
		return gossip.Config{Mode: gossip.Flood, ReportPeerDown: true}
	case CyclonAcked:
		// Random fan-out with per-send acknowledgments.
		return gossip.Config{Mode: gossip.Fanout, Fanout: c.Opts.Fanout, ReportPeerDown: true}
	default:
		// Plain Cyclon and SCAMP: fire-and-forget random fan-out.
		return gossip.Config{Mode: gossip.Fanout, Fanout: c.Opts.Fanout}
	}
}

// newBroadcaster builds the broadcast-layer node selected by Opts.Broadcast
// over the membership instance m.
func (c *Cluster) newBroadcaster(env peer.Env, m peer.Membership) gossip.Broadcaster {
	deliver := c.deliver
	var router *pubsub.Router
	if c.Opts.PubSub != nil {
		cfg := *c.Opts.PubSub
		if cfg.NextRound == nil {
			cfg.NextRound = c.Tracker.NextRound
		}
		if cfg.Fallback == nil {
			cfg.Fallback = c.deliver
		}
		router = pubsub.New(cfg)
		deliver = router.OnBroadcast
	}
	var b gossip.Broadcaster
	if c.Opts.Broadcast == BroadcastPlumtree {
		pcfg := c.Opts.Plumtree
		// Over HyParView and CyclonAcked, broadcast sends double as the
		// failure detector, exactly as in gossip mode; an explicit opt-in
		// via Options.Plumtree is honored for the other protocols too.
		if c.Protocol == HyParView || c.Protocol == CyclonAcked {
			pcfg.ReportPeerDown = true
		}
		b = plumtree.New(env, m, pcfg, deliver)
	} else {
		b = gossip.New(env, m, c.gossipConfig(), deliver)
	}
	if router != nil {
		router.Bind(env, b)
		c.routers[env.Self()] = router
		return router
	}
	return b
}

// Router returns the pub/sub router of nodeID, or nil when Options.PubSub is
// unset or the node does not exist.
func (c *Cluster) Router(nodeID id.ID) *pubsub.Router { return c.routers[nodeID] }

// deliver is the Delivery callback installed on every broadcaster: it feeds
// the reliability tracker and, in latency mode, aggregates virtual-time
// delivery latencies for rounds the harness is measuring.
func (c *Cluster) deliver(round uint64, topic uint32, payload []byte, hops int) {
	if c.sharded {
		// Waves deliver on shard goroutines concurrently; the tracker and
		// latency aggregates are the one piece of cross-node shared state in
		// the harness. All updates commute (counter adds, max, set-insert), so
		// aggregate results are independent of arrival order.
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	if c.timed {
		if start, ok := c.roundStart[round]; ok {
			agg := c.roundLat[round]
			if agg == nil {
				agg = &latencyAgg{}
				c.roundLat[round] = agg
			}
			agg.samples = append(agg.samples, float64(c.Sim.Now()-start))
		}
	}
	c.Tracker.Deliver(round, topic, payload, hops)
}

// beginRound marks a measured broadcast's start on the virtual clock.
func (c *Cluster) beginRound(round uint64) {
	if c.timed {
		c.roundStart[round] = c.Sim.Now()
	}
}

// endRound returns the virtual-time latency of the round's last and average
// delivery plus the raw per-delivery samples (all zero/nil in FIFO mode) and
// releases the tracking state.
func (c *Cluster) endRound(round uint64) (maxLat, avgLat float64, samples []float64) {
	if !c.timed {
		return 0, 0, nil
	}
	delete(c.roundStart, round)
	agg := c.roundLat[round]
	delete(c.roundLat, round)
	if agg == nil || len(agg.samples) == 0 {
		return 0, 0, nil
	}
	if c.sharded {
		// Concurrent delivery makes the sample order arrival-dependent; sort
		// so float summation (and hence the reported means) is deterministic
		// and matches the single-shard engine bit for bit.
		sort.Float64s(agg.samples)
	}
	var sum float64
	for _, lat := range agg.samples {
		sum += lat
		if lat > maxLat {
			maxLat = lat
		}
	}
	return maxLat, sum / float64(len(agg.samples)), agg.samples
}

// Stabilize runs the given number of membership rounds (paper: 50) over the
// whole cluster. In cycle-driven mode that is RunCycle ×cycles; in periodic
// mode (Options.ShuffleInterval over HyParView) the same round count is
// expressed as a virtual-time duration and the nodes' own scheduled shuffles
// drive the protocol.
func (c *Cluster) Stabilize(cycles int) {
	if iv := c.periodicInterval(); iv > 0 {
		c.Sim.RunFor(uint64(cycles) * iv)
		return
	}
	c.Sim.RunCycles(cycles)
}

// RunFor advances the cluster's virtual time by d ticks, firing scheduled
// protocol rounds and timers along the way (duration-based methodology).
func (c *Cluster) RunFor(d uint64) { c.Sim.RunFor(d) }

// periodicInterval returns the per-round virtual-time interval when the
// cluster runs scheduler-driven membership rounds, zero otherwise.
func (c *Cluster) periodicInterval() uint64 {
	if c.Protocol == HyParView {
		return c.Opts.ShuffleInterval
	}
	return 0
}

// FailFraction crashes frac (0..1) of the currently live nodes, chosen
// uniformly at random, and returns how many were killed.
func (c *Cluster) FailFraction(frac float64) int {
	alive := c.Sim.AliveIDs()
	k := int(frac*float64(len(alive)) + 0.5)
	if k <= 0 {
		return 0
	}
	if k >= len(alive) {
		k = len(alive) - 1 // always leave at least one node to broadcast
	}
	r := c.Sim.Rand()
	r.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	for _, victim := range alive[:k] {
		c.Sim.Fail(victim)
	}
	return k
}

// broadcastMeasured sends one broadcast from a uniformly random live node,
// fully processes the resulting traffic, and returns reliability, hop
// statistics and — in latency mode — the virtual-time latency of the last
// and average delivery.
func (c *Cluster) broadcastMeasured() (rel float64, maxHops int, avgHops, maxLat, avgLat float64, lats []float64) {
	// RandomAlive + AliveCount keep the per-broadcast harness overhead
	// allocation-free; at 100k nodes the old AliveIDs snapshot was an 800KB
	// copy per message.
	source, ok := c.Sim.RandomAlive(c.Sim.Rand())
	if !ok {
		return 0, 0, 0, 0, 0, nil
	}
	alive := c.Sim.AliveCount()
	round := c.Tracker.NextRound()
	c.beginRound(round)
	c.gossipers[source].Broadcast(round, nil)
	c.Sim.Drain()
	rel = c.Tracker.Reliability(round, alive)
	maxHops = c.Tracker.MaxHops(round)
	avgHops = c.Tracker.AvgHops(round)
	c.Tracker.Forget(round)
	maxLat, avgLat, lats = c.endRound(round)
	return rel, maxHops, avgHops, maxLat, avgLat, lats
}

// Broadcast sends one broadcast from a uniformly random live node, fully
// processes the resulting traffic, and returns the message's reliability:
// the fraction of live nodes that delivered it (paper §2.5).
func (c *Cluster) Broadcast() float64 {
	rel, _, _, _, _, _ := c.broadcastMeasured()
	return rel
}

// BroadcastDetailed is Broadcast plus hop statistics: it returns the
// reliability, the maximum hop count and the average hop count of the
// deliveries.
func (c *Cluster) BroadcastDetailed() (rel float64, maxHops int, avgHops float64) {
	rel, maxHops, avgHops, _, _, _ = c.broadcastMeasured()
	return rel, maxHops, avgHops
}

// BroadcastBurst sends count broadcasts back to back (no membership cycles
// in between, per the paper's failure methodology) and returns the
// per-message reliability series.
func (c *Cluster) BroadcastBurst(count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = c.Broadcast()
	}
	return out
}

// Snapshot captures the live overlay for graph analysis. For HyParView the
// overlay is the active views (paper footnote 5).
func (c *Cluster) Snapshot() *graph.Snapshot {
	alive := c.Sim.AliveIDs()
	return graph.Build(alive, func(n id.ID) []id.ID {
		return c.membership[n].Neighbors()
	})
}

// Accuracy computes the paper's view-accuracy metric over the live nodes.
func (c *Cluster) Accuracy() float64 {
	return graph.Accuracy(c.Sim.AliveIDs(), func(n id.ID) []id.ID {
		return c.membership[n].Neighbors()
	}, c.Sim.Alive)
}

// Membership exposes the protocol instance of one node (tests, metrics).
func (c *Cluster) Membership(n id.ID) peer.Membership { return c.membership[n] }

// Gossiper exposes the broadcast-layer node of one node (tests, metrics).
// The concrete type is *gossip.Node or *plumtree.Node per Opts.Broadcast.
func (c *Cluster) Gossiper(n id.ID) gossip.Broadcaster { return c.gossipers[n] }

// CounterTotals sums the broadcast-layer counters over the whole population
// (live and failed): locally delivered first copies, redundant payload
// receptions, successful payload forwards, and rejected sends. Experiments
// snapshot the totals around a burst to compute the RMR metric.
func (c *Cluster) CounterTotals() (delivered, duplicates, forwarded, sendFails uint64) {
	for _, g := range c.gossipers {
		d, dup, fwd, sf := g.Counters()
		delivered += d
		duplicates += dup
		forwarded += fwd
		sendFails += sf
	}
	return delivered, duplicates, forwarded, sendFails
}

// BurstStats aggregates one measured broadcast burst.
type BurstStats struct {
	// MeanReliability and FinalReliability are the mean and last-message
	// fraction of live nodes that delivered (paper §2.5).
	MeanReliability  float64
	FinalReliability float64
	// RMR is the relative message redundancy over the burst: payload
	// messages received from the network per receiving node beyond the
	// first copy (0 = perfect spanning tree; see metrics.RMR).
	RMR float64
	// MeanMaxHops averages the per-message last-delivery hop count, the
	// paper's Table 1 latency proxy.
	MeanMaxHops float64
	// MeanMaxLatency and MeanAvgLatency average, over the burst, the
	// virtual-time (abstract ticks) latency of each message's last and mean
	// delivery. They are the wall-clock analogue of the hop metrics and stay
	// zero in FIFO mode (no latency model installed).
	MeanMaxLatency float64
	MeanAvgLatency float64
	// LatencyP50 and LatencyP99 are percentiles over every individual
	// delivery latency of the burst (all messages, all receivers): the tail
	// a mean hides. Zero in FIFO mode.
	LatencyP50 float64
	LatencyP99 float64
}

// MeasureBurst sends msgs broadcasts back to back from random live nodes
// (no membership cycles in between) and returns reliability, redundancy and
// hop statistics for the burst.
func (c *Cluster) MeasureBurst(msgs int) BurstStats {
	var out BurstStats
	if msgs <= 0 {
		return out
	}
	d0, dup0, _, _ := c.CounterTotals()
	var rels []float64
	var sumMaxHops, sumMaxLat, sumAvgLat float64
	var allLats []float64
	for i := 0; i < msgs; i++ {
		rel, maxHops, _, maxLat, avgLat, lats := c.broadcastMeasured()
		rels = append(rels, rel)
		sumMaxHops += float64(maxHops)
		sumMaxLat += maxLat
		sumAvgLat += avgLat
		allLats = append(allLats, lats...)
	}
	d1, dup1, _, _ := c.CounterTotals()
	delivered := float64(d1 - d0) // includes the msgs source-local deliveries
	duplicates := float64(dup1 - dup0)
	k := float64(msgs)
	// Per-message averages: payload receptions over the network and nodes
	// reached, then the paper's RMR formula.
	out.RMR = metrics.RMR((delivered-k+duplicates)/k, delivered/k)
	out.MeanReliability = metrics.Mean(rels)
	out.FinalReliability = rels[len(rels)-1]
	out.MeanMaxHops = sumMaxHops / k
	out.MeanMaxLatency = sumMaxLat / k
	out.MeanAvgLatency = sumAvgLat / k
	out.LatencyP50 = metrics.Percentile(allLats, 50)
	out.LatencyP99 = metrics.Percentile(allLats, 99)
	return out
}

// ActiveLinkCosts returns the latency-model cost of every directed overlay
// link of the live population, in deterministic (join, view) order. It
// returns nil when the cluster has no latency model.
func (c *Cluster) ActiveLinkCosts() []float64 {
	model := c.Opts.LatencyModel
	if model == nil {
		return nil
	}
	var out []float64
	for _, nodeID := range c.Sim.AliveIDs() {
		for _, p := range c.membership[nodeID].Neighbors() {
			out = append(out, float64(model.Cost(nodeID, p)))
		}
	}
	return out
}

// MeanActiveLinkCost averages the latency-model cost over every directed
// overlay link: the quantity X-BOT minimizes. Zero without a latency model.
func (c *Cluster) MeanActiveLinkCost() float64 {
	return metrics.Mean(c.ActiveLinkCosts())
}

// IDs returns the full population (live and failed) in join order.
func (c *Cluster) IDs() []id.ID {
	out := make([]id.ID, len(c.ids))
	copy(out, c.ids)
	return out
}

// ResetSeen clears all per-node delivered-message tables; long experiments
// call this between phases to bound memory.
func (c *Cluster) ResetSeen() {
	for _, g := range c.gossipers {
		g.ResetSeen()
	}
}
