package sim

// The cross-shard conformance suite: the sharded wave/barrier engine must
// report exactly the same aggregate results as the single-shard reference
// engine — reliability, RMR, hop counts, and every simulator counter — for
// the paper's scenarios at a scale where event interleaving inside a wave
// genuinely differs (10k nodes; 2k under -short). Trace-level equality is
// pinned separately in shard_test.go at small n; this suite pins the
// aggregate contract at population scale, for flood, Plumtree and the
// paper's kill-80% headline scenario.

import (
	"testing"

	"hyparview/internal/netsim"
)

// confSummary is everything a conformance run must reproduce exactly.
type confSummary struct {
	burst BurstStats
	stats netsim.Stats
	alive int
}

// confRun builds a cluster, stabilizes it, optionally kills 80% of the
// population, measures a burst and returns the aggregate summary.
func confRun(t *testing.T, opts Options, kill80 bool) confSummary {
	t.Helper()
	c := NewCluster(HyParView, opts)
	c.Stabilize(5)
	if kill80 {
		c.FailFraction(0.8)
	}
	return confSummary{
		burst: c.MeasureBurst(5),
		stats: c.Sim.Stats(),
		alive: c.Sim.AliveCount(),
	}
}

func confSweep(t *testing.T, opts Options, kill80 bool) {
	t.Helper()
	var ref confSummary
	for _, shards := range shardMatrix {
		o := opts
		o.Shards = shards
		got := confRun(t, o, kill80)
		if got.burst.MeanReliability <= 0 || got.stats.Delivered == 0 {
			t.Fatalf("shards=%d: degenerate run: %+v", shards, got.burst)
		}
		if shards == 1 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("shards=%d diverged from the single-shard engine:\n got %+v\nwant %+v",
				shards, got, ref)
		}
	}
}

func confN(t *testing.T) int {
	if testing.Short() {
		return 2_000
	}
	return 10_000
}

func TestConformanceFlood10k(t *testing.T) {
	confSweep(t, Options{N: confN(t), Seed: 21}, false)
}

func TestConformancePlumtree10k(t *testing.T) {
	confSweep(t, Options{N: confN(t), Seed: 22, Broadcast: BroadcastPlumtree}, false)
}

func TestConformanceKill80(t *testing.T) {
	// The paper's headline scenario: 80% of the population crashes at once
	// and the burst measures recovery. Failure notifications, parked timers
	// and dropped in-flight traffic must all aggregate identically.
	confSweep(t, Options{N: confN(t), Seed: 23, Broadcast: BroadcastPlumtree}, true)
}
