package sim

// The shard-determinism matrix: the sharded wave/barrier engine must honor
// the repository's determinism contract at every shard count — same seed +
// same shard count ⇒ byte-identical event traces, fault injection included —
// and, when no Intercept hook reschedules traffic, the trace must be
// byte-identical to the single-shard reference engine, timestamps included
// (the canonical barrier merge reproduces the serial delivery order exactly;
// see internal/netsim/shards.go).

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"hyparview/internal/faults"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
)

// shardMatrix is the shard-count matrix every determinism test sweeps.
var shardMatrix = []int{1, 2, 4, 8}

func shardTraceOpts(opts Options, t *testing.T) {
	t.Helper()
	ref := ""
	for _, shards := range shardMatrix {
		o := opts
		o.Shards = shards
		a := clusterTrace(o, 5, 3)
		b := clusterTrace(o, 5, 3)
		if a == "" {
			t.Fatalf("shards=%d: empty event trace", shards)
		}
		if a != b {
			t.Fatalf("shards=%d: same seed produced diverging event traces", shards)
		}
		if shards == 1 {
			ref = a
			continue
		}
		if a != ref {
			t.Fatalf("shards=%d: trace diverged from the single-shard engine", shards)
		}
	}
}

func TestShardTraceMatrixFIFO(t *testing.T) {
	shardTraceOpts(Options{N: 120, Seed: 7, Broadcast: BroadcastPlumtree}, t)
}

func TestShardTraceMatrixFlood(t *testing.T) {
	shardTraceOpts(Options{N: 100, Seed: 11}, t)
}

func TestShardTraceMatrixPeriodic(t *testing.T) {
	// Scheduler-driven shuffles exercise the periodic heaps and the RunFor
	// wave loop (due rounds spliced into waves by (at, seq)).
	shardTraceOpts(Options{N: 100, Seed: 5, ShuffleInterval: 20, Broadcast: BroadcastPlumtree}, t)
}

func TestShardTraceMatrixLatency(t *testing.T) {
	// Per-link delays scatter traffic across future time buckets; the merge
	// must draw every delay from the root stream in canonical order.
	shardTraceOpts(Options{
		N: 100, Seed: 9, Broadcast: BroadcastPlumtree,
		LatencyModel: netsim.NewEuclidean(9),
	}, t)
}

func TestShardTraceMatrixUnderFailures(t *testing.T) {
	// Failure notifications (OnPeerDown), parked timers and revives must all
	// sequence identically across shard counts.
	ref := ""
	for _, shards := range shardMatrix {
		trace := func() string {
			c := NewCluster(HyParView, Options{
				N: 150, Seed: 13, Shards: shards, Broadcast: BroadcastPlumtree,
			})
			var b strings.Builder
			c.Sim.Tap = func(from, to id.ID, m msg.Message) {
				fmt.Fprintf(&b, "%d>%d:%d:%d@%d\n", from, to, m.Type, m.Round, c.Sim.Now())
			}
			c.Stabilize(5)
			c.FailFraction(0.3)
			c.MeasureBurst(2)
			victims := 0
			for _, nodeID := range c.IDs() {
				if !c.Sim.Alive(nodeID) {
					c.Sim.Revive(nodeID)
					victims++
					if victims == 10 {
						break
					}
				}
			}
			c.Stabilize(3)
			c.MeasureBurst(2)
			return b.String()
		}
		a, b := trace(), trace()
		if a == "" {
			t.Fatalf("shards=%d: empty event trace", shards)
		}
		if a != b {
			t.Fatalf("shards=%d: failure/revive run is not deterministic", shards)
		}
		if shards == 1 {
			ref = a
		} else if a != ref {
			t.Fatalf("shards=%d: failure/revive trace diverged from the single-shard engine", shards)
		}
	}
}

// TestShardedClusterRaceSmoke is the full-stack companion to netsim's
// parallel-wave exerciser: the whole HyParView + Plumtree stack on the
// sharded engine with goroutine waves genuinely enabled (GOMAXPROCS raised
// before construction), under fault injection and mass failure. It exists
// for the CI -race step: the tracker mutex, the hook pre-pass and the
// barrier merge all get exercised with real concurrency.
func TestShardedClusterRaceSmoke(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	c := NewCluster(HyParView, Options{N: 600, Seed: 31, Shards: 4, Broadcast: BroadcastPlumtree})
	inj := c.InstallFaults(&faults.Injector{
		Default: faults.Profile{Drop: 0.02, Duplicate: 0.02, DupDelay: 2, Delay: 0.05, MaxDelay: 3},
	})
	c.Stabilize(5)
	if st := c.MeasureBurst(3); st.MeanReliability < 0.95 {
		t.Errorf("pre-failure reliability = %v, want >= 0.95 under light faults", st.MeanReliability)
	}
	c.FailFraction(0.5)
	c.MeasureBurst(3)
	if inj.Stats().Inspected == 0 {
		t.Error("injector idle during race smoke")
	}
}
