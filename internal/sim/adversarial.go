package sim

// Adversarial scenario suite: hostile runs driven through the fault-injection
// seam (netsim.Sim.Intercept + internal/faults) and the simulator's failure
// and partition controls. Each scenario asserts an envelope — a floor the
// measured reliability must not fall under — so the suite doubles as the
// regression net for the bugs the injection hooks originally surfaced
// (shuffle-list poisoning, overload shedding, codec bounds).
//
// The headline row reproduces the paper's most hostile data point: 80% of a
// 1000-node overlay crashing at once, with broadcast reliability recovering
// to ≥ 0.99 (paper §5.3, figures 2–4). The remaining rows go beyond the
// published evaluation: Poisson churn, correlated flash crowds, asymmetric
// partitions healing mid-broadcast, per-link loss/reordering, Byzantine-lite
// shuffle tampering and stale-round replay.

import (
	"fmt"

	"hyparview/internal/core"
	"hyparview/internal/faults"
	"hyparview/internal/id"
	"hyparview/internal/metrics"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
	"hyparview/internal/rng"
)

// faultSeedSalt decorrelates the injector's random stream from the
// simulator's own: fault draws must not perturb protocol randomness, or an
// injected run would diverge from its uninjected twin for the wrong reason.
const faultSeedSalt = 0x6a09e667f3bcc909

// FaultRand returns a fresh deterministic random stream for fault decisions,
// derived from the cluster seed but independent of the simulator's stream.
func (c *Cluster) FaultRand() *rng.Rand {
	return rng.New(c.Opts.Seed ^ faultSeedSalt)
}

// InstallFaults wires inj into the cluster's simulator as the delivery-path
// fault hook. Unset fields get deterministic defaults: Rand from the
// cluster's seed (see FaultRand), Redeliver from the simulator's hook-exempt
// re-entry path. It returns inj for chaining.
func (c *Cluster) InstallFaults(inj *faults.Injector) *faults.Injector {
	if inj.Rand == nil {
		inj.Rand = c.FaultRand()
	}
	if inj.Redeliver == nil {
		inj.Redeliver = c.Redeliver
	}
	c.Sim.Intercept = inj.Hook()
	return inj
}

// InstallHook installs a raw fault hook (e.g. a faults.Chain composition) on
// the simulator's delivery path. Pass nil to remove injection.
func (c *Cluster) InstallHook(h faults.Hook) { c.Sim.Intercept = h }

// Redeliver adapts the simulator's hook-exempt redelivery to the
// faults.Redeliver contract (errors to dead nodes are dropped, as a real
// network drops traffic to a crashed host).
func (c *Cluster) Redeliver(from, to id.ID, m msg.Message, delay uint64) {
	_ = c.Sim.Redeliver(from, to, m, delay)
}

// AdversarialPoint is one scenario's measurement against its envelope.
type AdversarialPoint struct {
	Scenario string
	// Class is the fault class exercised: none, failure, churn, partition,
	// loss, byzantine or replay.
	Class string
	// Rel and FinalRel are the mean and last-message broadcast reliability
	// over the scenario's probe burst.
	Rel      float64
	FinalRel float64
	// RMR is the relative message redundancy over the burst.
	RMR float64
	// Floor is the envelope: the reliability value the scenario's OK
	// predicate compares against (the mean for steady-state scenarios, the
	// final message for recovery scenarios — see Note).
	Floor float64
	// OK reports whether the scenario stayed inside its envelope.
	OK bool
	// FaultDropped and Redelivered surface the simulator's fault counters
	// for the scenario's whole run: deliveries suppressed by the Intercept
	// hook and messages re-injected through Redeliver (delays, duplicates,
	// replay). Zero for scenarios whose fault class never touches the seam.
	FaultDropped uint64
	Redelivered  uint64
	// Note records scenario-specific evidence (heal index, fault counters).
	Note string
}

// stampSimFaults copies the cluster simulator's fault-injection counters
// onto the point, so the table shows how much the injection seam actually
// did during the scenario.
func stampSimFaults(c *Cluster, p AdversarialPoint) AdversarialPoint {
	st := c.Sim.Stats()
	p.FaultDropped = st.FaultDropped
	p.Redelivered = st.Redelivered
	return p
}

// burstSeries probes msgs broadcasts back to back and returns the
// per-message reliability series plus the burst's RMR.
func burstSeries(c *Cluster, msgs int) ([]float64, float64) {
	d0, dup0, _, _ := c.CounterTotals()
	rels := c.BroadcastBurst(msgs)
	d1, dup1, _, _ := c.CounterTotals()
	delivered := float64(d1 - d0)
	duplicates := float64(dup1 - dup0)
	k := float64(msgs)
	return rels, metrics.RMR((delivered-k+duplicates)/k, delivered/k)
}

// healIndex returns the index of the first probe at full reliability, or -1.
func healIndex(rels []float64) int {
	for i, r := range rels {
		if r >= 0.9999 {
			return i
		}
	}
	return -1
}

// point assembles an AdversarialPoint from a measured series.
func point(scenario, class string, rels []float64, rmr, floor float64, ok bool, note string) AdversarialPoint {
	return AdversarialPoint{
		Scenario: scenario,
		Class:    class,
		Rel:      metrics.Mean(rels),
		FinalRel: rels[len(rels)-1],
		RMR:      rmr,
		Floor:    floor,
		OK:       ok,
		Note:     note,
	}
}

// Adversarial runs the full adversarial scenario table: every fault class
// injected into its own freshly built HyParView cluster, measured with a
// probe burst of msgs broadcasts. The returned points carry per-scenario
// envelope verdicts; the table is the printable form.
func Adversarial(opts Options, msgs int) ([]AdversarialPoint, *metrics.Table) {
	opts = opts.withDefaults()
	if msgs <= 0 {
		msgs = 25
	}
	points := []AdversarialPoint{
		advBaseline(opts, msgs),
		advMassFailure(opts, msgs),
		advPoissonChurn(opts, msgs),
		advFlashCrowd(opts, msgs),
		advPartitionMidcast(opts),
		advLossReorder(opts, msgs),
		advByzantineTamper(opts, msgs),
		advReplay(opts, msgs),
	}
	t := metrics.NewTable(
		fmt.Sprintf("Adversarial: fault-injection envelopes (n=%d, msgs=%d)", opts.N, msgs),
		"scenario", "class", "mean-rel", "final-rel", "rmr", "floor", "ok",
		"fault-drop", "redeliver", "note")
	for _, p := range points {
		t.AddRow(p.Scenario, p.Class, p.Rel, p.FinalRel, p.RMR, p.Floor, p.OK,
			p.FaultDropped, p.Redelivered, p.Note)
	}
	return points, t
}

// AdversarialOK reports whether every scenario stayed inside its envelope.
func AdversarialOK(points []AdversarialPoint) bool {
	for _, p := range points {
		if !p.OK {
			return false
		}
	}
	return true
}

// advBaseline is the control arm: no faults, reliability must be perfect.
func advBaseline(opts Options, msgs int) AdversarialPoint {
	c := NewCluster(HyParView, opts)
	c.Stabilize(opts.StabilizationCycles)
	rels, rmr := burstSeries(c, msgs)
	const floor = 0.999
	return stampSimFaults(c, point("baseline", "none", rels, rmr, floor,
		metrics.Mean(rels) >= floor, "no faults"))
}

// advMassFailure is the paper's headline hostile case: 80% of the overlay
// crashes at once; the burst must recover to ≥ 0.99 reliability (paper
// figures 2–4 report full recovery within a handful of messages).
func advMassFailure(opts Options, msgs int) AdversarialPoint {
	o := opts
	o.Seed = opts.Seed + 101
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)
	killed := c.FailFraction(0.80)
	rels, rmr := burstSeries(c, msgs)
	const floor = 0.99
	heal := healIndex(rels)
	ok := rels[len(rels)-1] >= floor && heal >= 0
	return stampSimFaults(c, point("kill-80pct", "failure", rels, rmr, floor, ok,
		fmt.Sprintf("killed=%d healed@msg=%d", killed, heal)))
}

// advPoissonChurn drives a Poisson churn trace (memoryless joins and
// crashes) against the overlay, probing reliability every cycle.
func advPoissonChurn(opts Options, msgs int) AdversarialPoint {
	o := opts
	o.Seed = opts.Seed + 211
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)

	cycles := msgs // one probe per churn cycle
	// Mean gap 0.5 cycles ⇒ ~2 membership events per probed cycle.
	trace := faults.PoissonChurn(c.FaultRand(), 0.5, uint64(cycles))
	nextID := id.ID(o.N + 1)
	var rels []float64
	ti := 0
	var joins, crashes int
	d0, dup0, _, _ := c.CounterTotals()
	for cyc := 0; cyc < cycles; cyc++ {
		for ti < len(trace) && trace[ti].At <= uint64(cyc) {
			ev := trace[ti]
			ti++
			if ev.Join {
				alive := c.Sim.AliveIDs()
				contact := alive[c.Sim.Rand().Intn(len(alive))]
				c.addNode(nextID, contact)
				nextID++
				joins++
			} else if victim, ok := c.Sim.RandomAlive(c.Sim.Rand()); ok {
				c.Sim.Fail(victim)
				crashes++
			}
		}
		c.Sim.RunCycle()
		rels = append(rels, c.Broadcast())
	}
	d1, dup1, _, _ := c.CounterTotals()
	delivered := float64(d1 - d0)
	duplicates := float64(dup1 - dup0)
	k := float64(len(rels))
	rmr := metrics.RMR((delivered-k+duplicates)/k, delivered/k)
	const floor = 0.97
	return stampSimFaults(c, point("churn-poisson", "churn", rels, rmr, floor,
		metrics.Mean(rels) >= floor,
		fmt.Sprintf("joins=%d crashes=%d", joins, crashes)))
}

// advFlashCrowd admits 10% of the population as simultaneous joins (the
// correlated burst a Poisson trace never produces) and probes right after.
func advFlashCrowd(opts Options, msgs int) AdversarialPoint {
	o := opts
	o.Seed = opts.Seed + 307
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)

	crowd := faults.FlashCrowd(0, o.N/10)
	alive := c.Sim.AliveIDs()
	nextID := id.ID(o.N + 1)
	for range crowd {
		contact := alive[c.Sim.Rand().Intn(len(alive))]
		c.addNode(nextID, contact)
		nextID++
	}
	rels, rmr := burstSeries(c, msgs)
	const floor = 0.99
	return stampSimFaults(c, point("flash-crowd", "churn", rels, rmr, floor,
		metrics.Mean(rels) >= floor, fmt.Sprintf("joined=%d", len(crowd))))
}

// PartitionMidcastResult is the outcome of one partition-heal-mid-broadcast
// run (see PartitionHealMidcast).
type PartitionMidcastResult struct {
	// Reliability of the broadcast that was in flight when the cut landed,
	// measured after the heal and full quiescence.
	Reliability float64
	// PhantomEagerEdges counts Plumtree eager links pointing at peers that
	// are not overlay neighbors after the dust settles — the stale-edge bug
	// class the NeighborVersioned resync protocol exists to prevent.
	PhantomEagerEdges int
	// MinorityDelivered counts minority-side nodes that delivered.
	MinorityDelivered int
	// MinoritySize is the size of the partitioned-off side.
	MinoritySize int
	// DeliveredAtCut counts nodes (both sides) that had delivered when the
	// partition landed — the proof the broadcast was genuinely mid-flight.
	DeliveredAtCut int
	// FaultDropped and Redelivered are the simulator's fault counters for
	// the run: deliveries the partition hook suppressed, and re-injected
	// messages.
	FaultDropped uint64
	Redelivered  uint64
}

// PartitionHealMidcast cuts an asymmetric partition (plan.MinorityFrac of
// the population) while a Plumtree broadcast is in flight, heals it before
// the missing-round timers expire, and measures whether the broadcast
// converges to full reliability through the post-heal GRAFT path. Plumtree
// over a uniform latency model so "mid-flight" is a real instant; the
// missing-round timer must outlive the partition window (HealAt-CutAt) or
// grafts fire into the void.
func PartitionHealMidcast(opts Options, plan faults.PartitionPlan) PartitionMidcastResult {
	o := opts.withDefaults()
	o.Broadcast = BroadcastPlumtree
	if o.LatencyModel == nil && o.Latency == nil {
		o.LatencyModel = &netsim.Uniform{Base: 10}
	}
	if o.Plumtree.TimerDelay == 0 {
		// Timers armed before or during the cut must fire after the heal.
		o.Plumtree.TimerDelay = plan.HealAt + 100
	}
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)
	// Warm up the broadcast tree: the first rounds on a fresh overlay run
	// all-eager (lazy sets only grow through PRUNE), so a cold-start
	// broadcast has no IHAVE mesh to recover through. The measured round
	// must ride an established tree, where every non-tree link carries
	// announcements — Plumtree's actual repair channel.
	for i := 0; i < 10; i++ {
		c.Broadcast()
	}

	// The minority side is the first MinorityFrac of the join order.
	side := make(map[id.ID]int, o.N)
	cut := int(plan.MinorityFrac * float64(o.N))
	for i, nodeID := range c.IDs() {
		if i < cut {
			side[nodeID] = 1
		}
	}

	// Launch from a majority node, let it spread for CutAt ticks, cut,
	// hold the partition until HealAt, heal, and run to quiescence.
	src := c.ids[len(c.ids)-1]
	round := c.Tracker.NextRound()
	c.gossipers[src].Broadcast(round, nil)
	c.Sim.RunFor(plan.CutAt)
	deliveredAtCut := 0
	for _, nodeID := range c.Sim.AliveIDs() {
		if c.gossipers[nodeID].Seen(round) {
			deliveredAtCut++
		}
	}
	c.Sim.Partition(func(n id.ID) int { return side[n] })
	c.Sim.RunFor(plan.HealAt - plan.CutAt)
	c.Sim.Heal()
	// Reconcile eager sets against the repaired overlay first (Plumtree's
	// periodic housekeeping), so when the missing-round timers — armed
	// before or during the cut — fire into the healed network, the
	// graft-recovered payloads cascade eagerly along live links. A final
	// housekeeping pass retries any round whose first announcer died.
	c.Sim.RunCycles(1)
	c.Sim.RunFor(o.Plumtree.TimerDelay + 50)
	c.Sim.RunCycles(3)
	c.Sim.Drain()

	res := PartitionMidcastResult{
		Reliability:    c.Tracker.Reliability(round, c.Sim.AliveCount()),
		MinoritySize:   cut,
		DeliveredAtCut: deliveredAtCut,
	}
	for _, nodeID := range c.Sim.AliveIDs() {
		if side[nodeID] == 1 && c.gossipers[nodeID].Seen(round) {
			res.MinorityDelivered++
		}
	}
	c.Tracker.Forget(round)
	res.PhantomEagerEdges = c.PhantomEagerEdges()
	res.FaultDropped = c.Sim.Stats().FaultDropped
	res.Redelivered = c.Sim.Stats().Redelivered
	return res
}

// PhantomEagerEdges counts, over the live population, Plumtree eager links
// whose target is not a current overlay neighbor. Zero means every eager
// edge is backed by a real (symmetric, live) membership link.
func (c *Cluster) PhantomEagerEdges() int {
	type eagerer interface{ EagerPeers() []id.ID }
	count := 0
	for _, nodeID := range c.Sim.AliveIDs() {
		g, ok := c.gossipers[nodeID].(eagerer)
		if !ok {
			continue
		}
		neighbors := make(map[id.ID]bool)
		for _, p := range c.membership[nodeID].Neighbors() {
			neighbors[p] = true
		}
		for _, p := range g.EagerPeers() {
			if !neighbors[p] {
				count++
			}
		}
	}
	return count
}

// advPartitionMidcast wraps PartitionHealMidcast as a table row: a 20%
// minority cut lands 30 ticks into an in-flight broadcast and heals 120
// ticks later; the broadcast must still converge to full reliability with
// no phantom eager edges left behind.
func advPartitionMidcast(opts Options) AdversarialPoint {
	o := opts
	o.Seed = opts.Seed + 401
	res := PartitionHealMidcast(o, faults.AsymmetricPartition(40, 160, 0.20))
	const floor = 0.999
	ok := res.Reliability >= floor && res.PhantomEagerEdges == 0
	return AdversarialPoint{
		Scenario:     "partition-heal-midcast",
		Class:        "partition",
		Rel:          res.Reliability,
		FinalRel:     res.Reliability,
		Floor:        floor,
		OK:           ok,
		FaultDropped: res.FaultDropped,
		Redelivered:  res.Redelivered,
		Note: fmt.Sprintf("minority=%d/%d delivered, phantom-eager=%d",
			res.MinorityDelivered, res.MinoritySize, res.PhantomEagerEdges),
	}
}

// advLossReorder stabilizes a clean overlay, then injects a deterministic
// per-link fault surface — every directed link gets its own drop, duplicate
// and delay (reorder) rates — and probes through it. Flood redundancy must
// absorb a few percent of loss without measurable reliability impact.
func advLossReorder(opts Options, msgs int) AdversarialPoint {
	o := opts
	o.Seed = opts.Seed + 503
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)
	inj := c.InstallFaults(&faults.Injector{
		PerLink: faults.LinkProfiles(o.Seed, faults.Profile{
			Drop:      0.05, // per-link drop rate uniform in [0, 5%]
			Duplicate: 0.05,
			DupDelay:  3,
			Delay:     0.50, // up to half of a link's traffic deferred...
			MaxDelay:  5,    // ...behind up to 5 ticks of other deliveries
		}),
	})
	rels, rmr := burstSeries(c, msgs)
	st := inj.Stats()
	const floor = 0.99
	return stampSimFaults(c, point("loss-reorder", "loss", rels, rmr, floor,
		metrics.Mean(rels) >= floor,
		fmt.Sprintf("dropped=%d dup=%d delayed=%d", st.Dropped, st.Duplicated, st.Delayed)))
}

// advByzantineTamper marks 10% of the population Byzantine: their SHUFFLE
// and SHUFFLEREPLY lists are poisoned in flight (self entries, duplicates,
// fabricated identifiers) and their broadcast payloads corrupted. The
// handler-boundary sanitation must reject the poison — the run fails if no
// rejections are counted, proving the tamperer exercised the defense — and
// reliability must hold.
func advByzantineTamper(opts Options, msgs int) AdversarialPoint {
	o := opts
	o.Seed = opts.Seed + 601
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)

	r := c.FaultRand()
	byz := faults.PickFraction(r, c.IDs(), 0.10)
	inj := c.InstallFaults(&faults.Injector{
		Rand: r,
		Tamper: faults.TamperBySenders(byz, faults.Tampers(
			faults.ShuffleLiar(r),
			faults.PayloadCorrupter(r),
		)),
	})
	// Shuffle rounds under tampering, then the probe burst.
	c.Stabilize(10)
	rels, rmr := burstSeries(c, msgs)

	var rejected, unsolicited uint64
	for _, nodeID := range c.Sim.AliveIDs() {
		if hv, ok := c.Membership(nodeID).(interface{ Stats() core.Stats }); ok {
			st := hv.Stats()
			rejected += st.ShuffleEntriesRejected
			unsolicited += st.UnsolicitedShuffleReplies
		}
	}
	st := inj.Stats()
	const floor = 0.99
	ok := metrics.Mean(rels) >= floor && st.Tampered > 0 && rejected > 0
	return stampSimFaults(c, point("byzantine-tamper", "byzantine", rels, rmr, floor, ok,
		fmt.Sprintf("byz=%d tampered=%d rejected=%d unsolicited=%d",
			len(byz), st.Tampered, rejected, unsolicited)))
}

// advReplay records broadcast traffic in flight and re-injects stale copies
// at random receivers: the seen-tables must absorb every replay without
// double-delivering or disturbing reliability.
func advReplay(opts Options, msgs int) AdversarialPoint {
	o := opts
	o.Seed = opts.Seed + 701
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)
	rp := &faults.Replayer{
		Rand:      c.FaultRand(),
		Redeliver: c.Redeliver,
		Prob:      0.05,
	}
	c.InstallHook(rp.Hook())
	rels, rmr := burstSeries(c, msgs)
	const floor = 0.999
	ok := metrics.Mean(rels) >= floor && rp.Replayed() > 0
	return stampSimFaults(c, point("replay", "replay", rels, rmr, floor, ok,
		fmt.Sprintf("replayed=%d", rp.Replayed())))
}
