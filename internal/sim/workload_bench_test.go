package sim

// BenchmarkPubSub10k is the pub/sub companion to BenchmarkCluster10k: the
// full HyParView + flood + pubsub.Router stack at n=10k under the Zipfian
// workload's subscription tables, publish-side batching enabled. One
// iteration replays a fixed slice of the publish schedule (paced, flushed and
// drained), so the measured loop covers Publish batching, topic-tagged
// dissemination, batch-frame unpacking and per-subscriber dispatch. It
// reports simulator events/sec — the unit benchdelta tracks against
// BENCH_workload.json. Run with:
//
//	go test ./internal/sim/ -run '^$' -bench BenchmarkPubSub10k -benchtime 5x

import (
	"encoding/binary"
	"runtime"
	"testing"

	"hyparview/internal/pubsub"
	"hyparview/internal/workload"
)

func BenchmarkPubSub10k(b *testing.B) {
	const (
		n       = 10_000
		perIter = 64 // publish events replayed per benchmark iteration
		rate    = 8  // publishes per virtual tick
	)
	opts := Options{
		N:    n,
		Seed: 1,
		PubSub: &pubsub.Config{
			MaxBatch:      16,
			MaxBatchBytes: 4096,
			FlushInterval: 20,
		},
	}
	c := NewCluster(HyParView, opts)
	c.Stabilize(2)
	w := workload.New(workload.Config{Seed: 1, Nodes: n})
	var delivered uint64
	handler := func(uint32, []byte, int) { delivered++ }
	for i, nodeID := range c.ids {
		r := c.Router(nodeID)
		for _, topic := range w.Subscriptions(i) {
			if err := r.Subscribe(topic, handler); err != nil {
				b.Fatal(err)
			}
		}
	}
	// One reusable payload: the batched Publish path copies the bytes into
	// the pending frame before returning, so mutating it between calls never
	// touches a frozen frame.
	payload := make([]byte, w.PayloadBytes())
	// Warm one slice of the schedule so lazily-grown state (seen caches,
	// batch frames, tracker slots) reaches steady state before measurement.
	replay := func() {
		for i := 0; i < perIter; i++ {
			ev := w.Next()
			binary.BigEndian.PutUint64(payload, c.Sim.Now())
			if err := c.Router(c.ids[ev.Node]).Publish(ev.Topic, payload); err != nil {
				b.Fatal(err)
			}
			if (i+1)%rate == 0 {
				c.Sim.RunFor(1)
			}
		}
		c.Sim.RunFor(20 + 1)
		c.Sim.Drain()
	}
	replay()
	if delivered == 0 {
		b.Fatal("warm-up replay delivered nothing")
	}
	runtime.GC()
	d0 := c.Sim.Stats().Delivered
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replay()
	}
	b.StopTimer()
	events := float64(c.Sim.Stats().Delivered - d0)
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
}
