package sim

// Full-stack cluster benchmarks: the companion to internal/netsim's
// BenchmarkEngine pair. Where the engine benchmarks isolate heap push/pop and
// dispatch with a protocol-free forwarding ring, these run the complete
// HyParView + broadcast stack — membership views, gossip dedup caches, the
// delivery tracker — so the gap between raw engine throughput and protocol
// throughput is measured, tracked in BENCH_sim.json, and cannot silently
// regress. One iteration is one broadcast delivered to the whole live
// population plus all reactive protocol traffic it triggers; the benchmark
// reports protocol events/sec (simulator deliveries, the same unit as
// BenchmarkEngine) and the steady-state allocations per full-cluster
// broadcast. Run with:
//
//	go test ./internal/sim/ -run '^$' -bench BenchmarkCluster -benchtime 20x

import (
	"fmt"
	"runtime"
	"testing"
)

func benchCluster(b *testing.B, n int) { benchClusterSharded(b, n, 1) }

func benchClusterSharded(b *testing.B, n, shards int) {
	before := heapInUse()
	c := NewCluster(HyParView, Options{N: n, Seed: 1, Shards: shards})
	c.Stabilize(2)
	// Warm a few broadcasts so lazily-grown state (tracker slots, per-node
	// seen caches, the sharded engine's wave/output vectors — successive
	// broadcasts differ slightly in shape, so capacities ratchet for a few
	// rounds) reaches steady state before measurement.
	for i := 0; i < 3; i++ {
		if rel := c.Broadcast(); rel != 1.0 {
			b.Fatalf("warm-up broadcast reliability = %v, want 1.0", rel)
		}
	}
	// The build phase allocates heavily; collect before measuring so a GC
	// cycle triggered by construction garbage does not land inside the
	// (allocation-free) measured loop.
	runtime.GC()
	d0 := c.Sim.Stats().Delivered
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rel := c.Broadcast(); rel != 1.0 {
			b.Fatalf("broadcast %d reliability = %v, want 1.0", i, rel)
		}
	}
	b.StopTimer()
	events := float64(c.Sim.Stats().Delivered - d0)
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
	// Marginal heap per node for the whole stack (engine slot, shard
	// vectors, protocol state, tracker) — the memory half of the
	// million-node claim, pinned against a budget in alloc_test.go.
	b.ReportMetric(float64(heapInUse()-before)/float64(n), "bytes/node")
	runtime.KeepAlive(c)
}

// heapInUse returns the live heap after a forced collection.
func heapInUse() uint64 {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func BenchmarkCluster10k(b *testing.B) { benchCluster(b, 10_000) }

func BenchmarkCluster100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-node full-stack benchmark skipped in -short mode")
	}
	benchCluster(b, 100_000)
}

// BenchmarkCluster1M is the million-node barrier benchmark: the complete
// HyParView + flood stack at n=1,000,000, on the single-shard reference
// engine and on the sharded wave/barrier engine. One iteration is one
// full-population broadcast (~5M protocol events); each run also reports the
// marginal bytes/node of the built cluster. Expect minutes per sub-benchmark
// (the build alone walks one million one-by-one joins); run with
// -benchtime 3x and a generous -timeout.
func BenchmarkCluster1M(b *testing.B) {
	if testing.Short() {
		b.Skip("1M-node benchmark skipped in -short mode")
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchClusterSharded(b, 1_000_000, shards)
		})
	}
}
