package sim

// Full-stack cluster benchmarks: the companion to internal/netsim's
// BenchmarkEngine pair. Where the engine benchmarks isolate heap push/pop and
// dispatch with a protocol-free forwarding ring, these run the complete
// HyParView + broadcast stack — membership views, gossip dedup caches, the
// delivery tracker — so the gap between raw engine throughput and protocol
// throughput is measured, tracked in BENCH_sim.json, and cannot silently
// regress. One iteration is one broadcast delivered to the whole live
// population plus all reactive protocol traffic it triggers; the benchmark
// reports protocol events/sec (simulator deliveries, the same unit as
// BenchmarkEngine) and the steady-state allocations per full-cluster
// broadcast. Run with:
//
//	go test ./internal/sim/ -run '^$' -bench BenchmarkCluster -benchtime 20x

import (
	"runtime"
	"testing"
)

func benchCluster(b *testing.B, n int) {
	c := NewCluster(HyParView, Options{N: n, Seed: 1})
	c.Stabilize(2)
	// Warm one broadcast so lazily-grown state (tracker slots, per-node seen
	// caches) reaches steady state before measurement.
	if rel := c.Broadcast(); rel != 1.0 {
		b.Fatalf("warm-up broadcast reliability = %v, want 1.0", rel)
	}
	// The build phase allocates heavily; collect before measuring so a GC
	// cycle triggered by construction garbage does not land inside the
	// (allocation-free) measured loop.
	runtime.GC()
	d0 := c.Sim.Stats().Delivered
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rel := c.Broadcast(); rel != 1.0 {
			b.Fatalf("broadcast %d reliability = %v, want 1.0", i, rel)
		}
	}
	b.StopTimer()
	events := float64(c.Sim.Stats().Delivered - d0)
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/sec")
}

func BenchmarkCluster10k(b *testing.B) { benchCluster(b, 10_000) }

func BenchmarkCluster100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-node full-stack benchmark skipped in -short mode")
	}
	benchCluster(b, 100_000)
}
