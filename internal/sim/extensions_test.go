package sim

import (
	"testing"

	"hyparview/internal/plumtree"
)

func TestOverheadShape(t *testing.T) {
	rows, tbl := Overhead(Options{N: 300, Seed: 2, StabilizationCycles: 20}, 5, 10)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byProto := map[Protocol]OverheadRow{}
	for _, r := range rows {
		byProto[r.Protocol] = r
	}
	hv, cy := byProto[HyParView], byProto[Cyclon]
	// HyParView floods a 5-member symmetric view: ≈ActiveSize-1 sends per
	// delivery minus the arrival link; dissemination messages per node per
	// broadcast must be below the flood bound and above 1.
	if hv.MsgsPerCast < 1 || hv.MsgsPerCast > 5 {
		t.Errorf("HyParView cast msgs/node = %.2f, implausible", hv.MsgsPerCast)
	}
	// Flood redundancy on a degree-5 overlay is ≈4 copies per delivery;
	// fanout-4 gossip sits near 4 as well but is not deterministic.
	if hv.RedundancyRatio < 2 || hv.RedundancyRatio > 5 {
		t.Errorf("HyParView redundancy = %.2f", hv.RedundancyRatio)
	}
	if cy.MsgsPerCast <= 0 {
		t.Error("Cyclon cast traffic missing")
	}
	// Membership traffic must be nonzero for all protocols that do cyclic
	// work (Scamp may be nearly silent outside heartbeats).
	if hv.MsgsPerCycle <= 0 || cy.MsgsPerCycle <= 0 {
		t.Errorf("membership traffic zero: hv=%.2f cy=%.2f", hv.MsgsPerCycle, cy.MsgsPerCycle)
	}
	if hv.BytesPerCycle <= 0 || hv.BytesPerCast <= 0 {
		t.Error("byte accounting missing")
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestChurnHyParViewStaysReliable(t *testing.T) {
	results, tbl := Churn(Options{N: 300, Seed: 3, StabilizationCycles: 20}, 2.0, 8, 3)
	byProto := map[Protocol]ChurnResult{}
	for _, r := range results {
		byProto[r.Protocol] = r
	}
	hv := byProto[HyParView]
	if hv.MeanReliability < 0.98 {
		t.Errorf("HyParView mean reliability under churn = %.4f, want >= 0.98", hv.MeanReliability)
	}
	if hv.FinalConnected < 0.99 {
		t.Errorf("HyParView overlay degraded under churn: lcc = %.3f", hv.FinalConnected)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestChurnGrowsPopulationCorrectly(t *testing.T) {
	c := NewCluster(HyParView, Options{N: 100, Seed: 5})
	before := len(c.IDs())
	c.addNode(500, c.IDs()[0])
	if len(c.IDs()) != before+1 {
		t.Fatal("addNode did not extend the population")
	}
	if !c.Sim.Alive(500) {
		t.Fatal("added node not alive")
	}
	if got := len(c.Membership(500).Neighbors()); got == 0 {
		t.Error("added node has no neighbors")
	}
	// The newcomer must be reachable by broadcast.
	if rel := c.Broadcast(); rel < 1.0 {
		t.Errorf("broadcast after join = %v, want 1.0", rel)
	}
}

func TestPassiveResilienceMonotone(t *testing.T) {
	tbl := PassiveResilience(Options{N: 400, Seed: 7, StabilizationCycles: 30},
		[]int{2, 30}, 80, 15)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	small := parseF(t, tbl.Rows[0][1])
	large := parseF(t, tbl.Rows[1][1])
	if large < small {
		t.Errorf("larger passive view less resilient: size2=%.3f size30=%.3f", small, large)
	}
	if large < 0.8 {
		t.Errorf("passive=30 reliability after 80%% failures = %.3f, want >= 0.8", large)
	}
}

func TestHeterogeneousDegreesShape(t *testing.T) {
	tbl := HeterogeneousDegrees(Options{N: 400, Seed: 9, StabilizationCycles: 30}, 10, 15)
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	bigIn := parseF(t, tbl.Rows[0][2])
	smallIn := parseF(t, tbl.Rows[1][2])
	if bigIn <= smallIn {
		t.Errorf("big nodes not better known: big=%.2f small=%.2f", bigIn, smallIn)
	}
	bigLoad := parseF(t, tbl.Rows[0][3])
	// 10% of the nodes with 3x the view should carry clearly more than 10%
	// of the forwarding load.
	if bigLoad < 0.15 {
		t.Errorf("big nodes carry %.3f of the load, want > 0.15", bigLoad)
	}
	if conn := tbl.Rows[0][5]; conn != "true" {
		t.Error("heterogeneous overlay disconnected")
	}
}

// TestChurnUnderPlumtree runs the sustained-churn extension with the tree
// broadcast layer: lazy IHAVE links and graft repair must keep HyParView's
// reliability through continuous membership turnover, not just through the
// one-shot failures the dedicated Plumtree tests exercise.
func TestChurnUnderPlumtree(t *testing.T) {
	results, tbl := Churn(Options{
		N: 300, Seed: 13, StabilizationCycles: 20, Broadcast: BroadcastPlumtree,
	}, 2.0, 8, 3)
	byProto := map[Protocol]ChurnResult{}
	for _, r := range results {
		byProto[r.Protocol] = r
	}
	hv := byProto[HyParView]
	if hv.MeanReliability < 0.98 {
		t.Errorf("HyParView+Plumtree mean reliability under churn = %.4f, want >= 0.98",
			hv.MeanReliability)
	}
	if hv.FinalConnected < 0.99 {
		t.Errorf("HyParView+Plumtree overlay degraded under churn: lcc = %.3f", hv.FinalConnected)
	}
	if len(tbl.Rows) != 4 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
	// The joiners added mid-churn must have been built as Plumtree nodes.
	c := NewCluster(HyParView, Options{N: 50, Seed: 1, Broadcast: BroadcastPlumtree})
	c.addNode(500, 1)
	if _, ok := c.Gossiper(500).(*plumtree.Node); !ok {
		t.Errorf("churn joiner broadcaster is %T, want *plumtree.Node", c.Gossiper(500))
	}
}

// TestPartitionHealUnderPlumtree runs the partition/heal extension over the
// tree broadcast: each side's tree must re-form against its side's repaired
// overlay and deliver side-locally at full reliability.
func TestPartitionHealUnderPlumtree(t *testing.T) {
	res, tbl := PartitionHeal(Options{
		N: 400, Seed: 17, StabilizationCycles: 30, Broadcast: BroadcastPlumtree,
	}, 0.3, 3, 5)
	if !res.SidesConnected {
		t.Error("partition sides did not re-form internally connected overlays under Plumtree")
	}
	if res.SideReliability < 0.99 {
		t.Errorf("minority-side reliability under Plumtree = %.3f, want ≈1", res.SideReliability)
	}
	if res.MergedLCC < 0.65 {
		t.Errorf("post-heal largest component = %.3f, implausibly small", res.MergedLCC)
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestPartitionHealSidesStayConnected(t *testing.T) {
	res, tbl := PartitionHeal(Options{N: 400, Seed: 11, StabilizationCycles: 30}, 0.3, 3, 5)
	if !res.SidesConnected {
		t.Error("partition sides did not re-form internally connected overlays")
	}
	if res.SideReliability < 0.99 {
		t.Errorf("minority-side reliability = %.3f, want ≈1 (HyParView repairs each side)",
			res.SideReliability)
	}
	if res.MergedLCC < 0.65 {
		// Both sides must at least survive; full re-merge is not guaranteed
		// by the published protocol (see the experiment's doc comment).
		t.Errorf("post-heal largest component = %.3f, implausibly small", res.MergedLCC)
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}
