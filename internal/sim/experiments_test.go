package sim

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment drivers are exercised at reduced scale here; full paper
// scale (n=10,000) runs through cmd/hpv-sim and is recorded in
// EXPERIMENTS.md.

func smallOpts() Options {
	return Options{N: 400, Seed: 3, StabilizationCycles: 30}
}

func TestFig1FanoutReliabilityMonotonicity(t *testing.T) {
	tbl := Fig1FanoutReliability(Cyclon, smallOpts(), []int{1, 3, 6}, 15)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Reliability must grow with fanout (paper Fig. 1a): compare fanout 1
	// vs fanout 6.
	lo := parseF(t, tbl.Rows[0][1])
	hi := parseF(t, tbl.Rows[2][1])
	if hi <= lo {
		t.Errorf("reliability not increasing with fanout: f1=%.3f f6=%.3f", lo, hi)
	}
	if hi < 0.9 {
		t.Errorf("fanout-6 reliability = %.3f, want high", hi)
	}
}

func TestFig1cFailureSeries(t *testing.T) {
	tbl := Fig1cFailure50(smallOpts(), 10)
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tbl.Rows))
	}
	if tbl.Columns[1] != "cyclon" || tbl.Columns[2] != "scamp" {
		t.Errorf("columns = %v", tbl.Columns)
	}
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	points, tbl := Fig2MassFailure(smallOpts(), []int{40, 80}, 40)
	if len(points) != 8 {
		t.Fatalf("points = %d, want 2 pcts * 4 protocols", len(points))
	}
	get := func(p Protocol, pct int) float64 {
		for _, pt := range points {
			if pt.Protocol == p && pt.FailPct == pct {
				return pt.Reliability
			}
		}
		t.Fatalf("missing point %v %d", p, pct)
		return 0
	}
	// Shape assertions from the paper's Fig. 2:
	// HyParView is barely affected below 90%.
	if hv := get(HyParView, 80); hv < 0.9 {
		t.Errorf("HyParView @80%% = %.3f, want >= 0.9", hv)
	}
	// Order at 80%: HyParView >= CyclonAcked >= Cyclon.
	if !(get(HyParView, 80) >= get(CyclonAcked, 80)) {
		t.Errorf("HyParView (%.3f) below CyclonAcked (%.3f) at 80%%",
			get(HyParView, 80), get(CyclonAcked, 80))
	}
	if !(get(CyclonAcked, 80) > get(Cyclon, 80)) {
		t.Errorf("CyclonAcked (%.3f) not above Cyclon (%.3f) at 80%%",
			get(CyclonAcked, 80), get(Cyclon, 80))
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFig3RecoverySeries(t *testing.T) {
	tbl := Fig3Recovery(smallOpts(), 60, 25)
	if len(tbl.Rows) != 25 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// HyParView's column must end near 1.0.
	last := parseF(t, tbl.Rows[24][1])
	if last < 0.95 {
		t.Errorf("HyParView final reliability = %.3f, want >= 0.95", last)
	}
}

func TestFig4HealingShape(t *testing.T) {
	results, tbl := Fig4HealingTime(smallOpts(), []int{40}, 5, 60)
	byProto := map[Protocol]int{}
	for _, r := range results {
		byProto[r.Protocol] = r.Cycles
	}
	// Paper Fig. 4: HyParView recovers in 1-2 cycles for <= 80% failures.
	if hv := byProto[HyParView]; hv < 0 || hv > 3 {
		t.Errorf("HyParView healing = %d cycles, want <= 3", hv)
	}
	// Cyclon needs (many) more cycles than HyParView.
	if cy := byProto[Cyclon]; cy >= 0 && cy < byProto[HyParView] {
		t.Errorf("Cyclon healed faster (%d) than HyParView (%d)", cy, byProto[HyParView])
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestTable1Shape(t *testing.T) {
	rows, tbl := Table1GraphProperties(smallOpts(), 50, 10)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(p Protocol) Table1Row {
		for _, r := range rows {
			if r.Protocol == p {
				return r
			}
		}
		t.Fatalf("missing %v", p)
		return Table1Row{}
	}
	hv, cy, sc := get(HyParView), get(Cyclon), get(Scamp)
	// Paper Table 1 shape: HyParView's clustering is far below both
	// baselines; its ASP is the largest; its delivery hops the smallest.
	if !(hv.Clustering < cy.Clustering && hv.Clustering < sc.Clustering) {
		t.Errorf("clustering order wrong: hv=%.5f cy=%.5f sc=%.5f",
			hv.Clustering, cy.Clustering, sc.Clustering)
	}
	if !(hv.AvgShortestPth > cy.AvgShortestPth) {
		t.Errorf("ASP order wrong: hv=%.3f cy=%.3f", hv.AvgShortestPth, cy.AvgShortestPth)
	}
	if !(hv.MaxHops < cy.MaxHops && hv.MaxHops < sc.MaxHops) {
		t.Errorf("hops order wrong: hv=%.2f cy=%.2f sc=%.2f",
			hv.MaxHops, cy.MaxHops, sc.MaxHops)
	}
	if !strings.Contains(tbl.String(), "HyParView") {
		t.Error("table missing protocol names")
	}
}

func TestFig5InDegreeShape(t *testing.T) {
	tbl := Fig5InDegree(Options{N: 300, Seed: 3, StabilizationCycles: 30})
	// HyParView rows must concentrate at the active view size (5) while
	// Cyclon spreads over a wide range (paper Fig. 5).
	hvPeak, hvTotal := 0, 0
	cyValues := 0
	for _, row := range tbl.Rows {
		switch row[0] {
		case "HyParView":
			n := parseI(t, row[2])
			hvTotal += n
			if row[1] == "5" {
				hvPeak += n
			}
		case "Cyclon":
			cyValues++
		}
	}
	if hvTotal == 0 || float64(hvPeak)/float64(hvTotal) < 0.7 {
		t.Errorf("HyParView in-degree not concentrated at 5: peak=%d total=%d", hvPeak, hvTotal)
	}
	if cyValues < 5 {
		t.Errorf("Cyclon in-degree spread suspiciously narrow: %d distinct values", cyValues)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func parseI(t *testing.T, s string) int {
	t.Helper()
	var v int
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// fmtSscan avoids importing fmt at top-of-file churn in the test helpers.
func fmtSscan(s string, v interface{}) (int, error) { return fmt.Sscan(s, v) }

func TestFig2RunsAggregation(t *testing.T) {
	opts := Options{N: 200, Seed: 3, StabilizationCycles: 10}
	tbl := Fig2MassFailureRuns(opts, []int{50}, 10, 2)
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	if hv := parseF(t, tbl.Rows[0][1]); hv < 0.9 {
		t.Errorf("aggregated HyParView rel = %.3f", hv)
	}
}

func TestFig4RunsAggregation(t *testing.T) {
	opts := Options{N: 200, Seed: 3, StabilizationCycles: 10}
	tbl := Fig4HealingTimeRuns(opts, []int{40}, 3, 20, 2)
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	hv := parseF(t, tbl.Rows[0][1])
	if hv < 1 || hv > 5 {
		t.Errorf("aggregated HyParView healing = %.2f cycles", hv)
	}
}
