package sim

import (
	"math"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/netsim"
	"hyparview/internal/xbot"
)

// TestObliviousVsXBotAtScale is the headline X-BOT acceptance test: at
// N=1000 under the Euclidean latency model, the optimized overlay must cut
// the mean active-link cost by at least 30% without losing broadcast
// reliability, node degrees, symmetry or connectivity.
func TestObliviousVsXBotAtScale(t *testing.T) {
	results, _ := ObliviousVsXBot(Options{N: 1000, Seed: 5}, 20)
	obl, opt := results[0], results[1]

	if obl.MeanLinkCost <= 0 {
		t.Fatal("oblivious overlay has no measured links")
	}
	if opt.MeanLinkCost > 0.7*obl.MeanLinkCost {
		t.Errorf("mean link cost %.1f not ≥30%% below oblivious %.1f (%.1f%% reduction)",
			opt.MeanLinkCost, obl.MeanLinkCost,
			100*(1-opt.MeanLinkCost/obl.MeanLinkCost))
	}
	if opt.MeanReliability < obl.MeanReliability {
		t.Errorf("optimization cost reliability: %.4f vs oblivious %.4f",
			opt.MeanReliability, obl.MeanReliability)
	}
	if opt.MeanReliability < 1.0 {
		t.Errorf("optimized overlay reliability = %.4f, want 1.0", opt.MeanReliability)
	}
	if math.Abs(opt.MeanDegree-obl.MeanDegree) > 0.02*obl.MeanDegree {
		t.Errorf("node degrees changed: %.3f vs oblivious %.3f", opt.MeanDegree, obl.MeanDegree)
	}
	if opt.Symmetry < obl.Symmetry-0.02 {
		t.Errorf("symmetry degraded: %.3f vs oblivious %.3f", opt.Symmetry, obl.Symmetry)
	}
	if !opt.Connected {
		t.Error("optimized overlay disconnected")
	}
	if opt.SwapsCompleted == 0 {
		t.Error("no swaps completed; the optimizer never ran")
	}
	// Cheaper links must show up as faster broadcasts, not just as a nicer
	// static metric.
	if opt.MeanMaxLatency >= obl.MeanMaxLatency {
		t.Errorf("virtual-time broadcast latency did not improve: %.0f vs %.0f",
			opt.MeanMaxLatency, obl.MeanMaxLatency)
	}
	t.Logf("link cost %.1f -> %.1f (-%.1f%%), vtime latency %.0f -> %.0f, swaps=%d",
		obl.MeanLinkCost, opt.MeanLinkCost,
		100*(1-opt.MeanLinkCost/obl.MeanLinkCost),
		obl.MeanMaxLatency, opt.MeanMaxLatency, opt.SwapsCompleted)
}

// TestXBotUnderTransitStub checks the optimizer exploits a bimodal cost
// surface: under the two-tier transit-stub model most optimized links should
// collapse onto cheap intra-cluster paths.
func TestXBotUnderTransitStub(t *testing.T) {
	model := netsim.NewTransitStub(7, 10)
	results, _ := ObliviousVsXBot(Options{N: 600, Seed: 7, LatencyModel: model}, 10)
	obl, opt := results[0], results[1]
	if opt.MeanLinkCost > 0.7*obl.MeanLinkCost {
		t.Errorf("transit-stub: cost %.1f not ≥30%% below %.1f", opt.MeanLinkCost, obl.MeanLinkCost)
	}
	if opt.MeanReliability < obl.MeanReliability {
		t.Errorf("transit-stub: reliability regressed %.4f vs %.4f",
			opt.MeanReliability, obl.MeanReliability)
	}
	if !opt.Connected {
		t.Error("transit-stub: optimized overlay disconnected")
	}
}

// TestXBotNoGainUnderUniformCost pins the control arm: with a flat cost
// surface there is nothing to optimize, and the optimizer must leave the
// overlay's properties alone (reliability, degree) rather than churn it.
func TestXBotNoGainUnderUniformCost(t *testing.T) {
	model := netsim.NewUniform()
	results, _ := ObliviousVsXBot(Options{N: 300, Seed: 9, LatencyModel: model}, 10)
	obl, opt := results[0], results[1]
	if opt.MeanLinkCost != obl.MeanLinkCost {
		t.Errorf("uniform model produced a cost delta: %.1f vs %.1f",
			opt.MeanLinkCost, obl.MeanLinkCost)
	}
	if opt.MeanReliability < obl.MeanReliability {
		t.Errorf("uniform model: reliability regressed %.4f vs %.4f",
			opt.MeanReliability, obl.MeanReliability)
	}
}

// TestXBotOptionPlumbing verifies cluster options reach the optimizer and
// the defaulted latency model is installed.
func TestXBotOptionPlumbing(t *testing.T) {
	c := NewCluster(HyParView, Options{
		N: 60, Seed: 2, Optimizer: OptimizerXBot,
		XBot: xbot.Config{Candidates: 5, ProtectTopK: 2},
	})
	xn, ok := c.Membership(1).(*xbot.Node)
	if !ok {
		t.Fatalf("membership is %T, want *xbot.Node", c.Membership(1))
	}
	if xn.Config().Candidates != 5 || xn.Config().ProtectTopK != 2 {
		t.Errorf("options did not reach the node: %+v", xn.Config())
	}
	if c.Opts.LatencyModel == nil {
		t.Fatal("no latency model auto-installed for the optimizer")
	}
	if c.Sim.Latency == nil {
		t.Fatal("simulator not switched to latency mode")
	}
	c.Stabilize(10)
	if rel := c.Broadcast(); rel != 1.0 {
		t.Errorf("small optimized cluster reliability = %v", rel)
	}
}

// hopOracle charges by identifier distance: a cost surface unrelated to any
// latency model.
type hopOracle struct{}

func (hopOracle) Cost(a, b id.ID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(b - a)
}

// TestXBotCustomOracle checks Options.Oracle decouples the optimizer's cost
// surface from the latency model: with no model set the cluster stays in
// FIFO mode while the optimizer still runs against the custom oracle.
func TestXBotCustomOracle(t *testing.T) {
	obl := NewCluster(HyParView, Options{N: 300, Seed: 3})
	opt := NewCluster(HyParView, Options{N: 300, Seed: 3, Optimizer: OptimizerXBot, Oracle: hopOracle{}})
	if opt.Sim.Latency != nil {
		t.Fatal("custom oracle should not install a latency model")
	}
	if opt.Opts.LatencyModel != nil {
		t.Fatal("Euclidean default installed despite a custom oracle")
	}
	obl.Stabilize(40)
	opt.Stabilize(40)
	mean := func(c *Cluster) float64 {
		var sum float64
		var links int
		for _, nodeID := range c.Sim.AliveIDs() {
			for _, p := range c.Membership(nodeID).Neighbors() {
				sum += float64(hopOracle{}.Cost(nodeID, p))
				links++
			}
		}
		return sum / float64(links)
	}
	if o, x := mean(obl), mean(opt); x >= 0.8*o {
		t.Errorf("custom-oracle cost %.1f not clearly below oblivious %.1f", x, o)
	}
	if rel := opt.Broadcast(); rel != 1.0 {
		t.Errorf("reliability = %v under custom-oracle optimization", rel)
	}
}

// TestXBotIgnoredByPeerSamplingProtocols pins the sweep-friendly scoping:
// protocol-sweep experiments run one option set across all four protocols,
// so the optimizer must apply to HyParView and no-op elsewhere.
func TestXBotIgnoredByPeerSamplingProtocols(t *testing.T) {
	c := NewCluster(Cyclon, Options{N: 30, Seed: 1, Optimizer: OptimizerXBot})
	if _, ok := c.Membership(1).(*xbot.Node); ok {
		t.Error("Cyclon membership wrapped in an optimizer")
	}
	h := NewCluster(HyParView, Options{N: 30, Seed: 1, Optimizer: OptimizerXBot})
	if _, ok := h.Membership(1).(*xbot.Node); !ok {
		t.Errorf("HyParView membership is %T, want *xbot.Node", h.Membership(1))
	}
}

// TestXBotDeterminism pins seed-reproducibility with the optimizer and the
// latency model both active.
func TestXBotDeterminism(t *testing.T) {
	run := func() (BurstStats, float64) {
		c := NewCluster(HyParView, Options{N: 200, Seed: 21, Optimizer: OptimizerXBot})
		c.Stabilize(30)
		return c.MeasureBurst(10), c.MeanActiveLinkCost()
	}
	b1, c1 := run()
	b2, c2 := run()
	if b1 != b2 || c1 != c2 {
		t.Errorf("identical seeds diverged: (%+v, %.3f) vs (%+v, %.3f)", b1, c1, b2, c2)
	}
}

// TestMeasureBurstReportsVirtualTime checks the satellite wiring: any
// cluster with a latency model reports nonzero virtual-time delivery
// latencies from MeasureBurst, and FIFO clusters keep them at zero.
func TestMeasureBurstReportsVirtualTime(t *testing.T) {
	timed := NewCluster(HyParView, Options{N: 150, Seed: 4, LatencyModel: netsim.NewEuclidean(4)})
	timed.Stabilize(20)
	stats := timed.MeasureBurst(5)
	if stats.MeanMaxLatency <= 0 || stats.MeanAvgLatency <= 0 {
		t.Errorf("latency-mode burst reported zero latency: %+v", stats)
	}
	if stats.MeanAvgLatency > stats.MeanMaxLatency {
		t.Errorf("avg latency %.1f above max %.1f", stats.MeanAvgLatency, stats.MeanMaxLatency)
	}

	fifo := NewCluster(HyParView, Options{N: 150, Seed: 4})
	fifo.Stabilize(20)
	if s := fifo.MeasureBurst(5); s.MeanMaxLatency != 0 || s.MeanAvgLatency != 0 {
		t.Errorf("FIFO burst reported latencies: %+v", s)
	}
}

// TestOptimizerString covers the enum.
func TestOptimizerString(t *testing.T) {
	if OptimizerNone.String() != "none" || OptimizerXBot.String() != "xbot" {
		t.Error("optimizer names wrong")
	}
	if Optimizer(9).String() == "" {
		t.Error("unknown optimizer has empty name")
	}
}
