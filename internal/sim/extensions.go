package sim

// Extension experiments beyond the paper's published evaluation, covering
// its §6 future-work items:
//
//   - Overhead: the "packet overhead of our approach due to the use of TCP"
//     measurement the authors planned for PlanetLab, here measured as
//     control/dissemination messages and bytes in the simulator.
//   - Churn: sustained membership churn (the paper only evaluates one-shot
//     catastrophic failures).
//   - PassiveResilience: "the relation between the passive view size and the
//     resilience level of the protocol".
//   - Heterogeneous degrees: "experiment our approach with adaptive
//     fanouts ... nodes would be required to adapt their degree".

import (
	"fmt"

	"hyparview/internal/core"
	"hyparview/internal/graph"
	"hyparview/internal/id"
	"hyparview/internal/metrics"
	"hyparview/internal/peer"
)

// OverheadRow is one protocol's traffic measurement.
type OverheadRow struct {
	Protocol        Protocol
	MsgsPerCycle    float64 // membership messages per node per cycle
	BytesPerCycle   float64 // membership bytes per node per cycle
	MsgsPerCast     float64 // dissemination messages per node per broadcast
	BytesPerCast    float64 // dissemination bytes per node per broadcast
	RedundancyRatio float64 // dissemination messages / deliveries
}

// Overhead measures membership (cyclic) and dissemination traffic per
// protocol: the cost side of the paper's argument that small fanouts plus a
// passive view beat one large view with a high fanout (§5.5).
func Overhead(opts Options, cycles, casts int) ([]OverheadRow, *metrics.Table) {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Overhead: traffic per node (n=%d, fanout=%d)", opts.N, opts.Fanout),
		"protocol", "memb-msgs/cycle", "memb-bytes/cycle", "cast-msgs", "cast-bytes", "redundancy")
	var rows []OverheadRow
	for _, p := range AllProtocols() {
		o := opts
		o.Seed = opts.Seed + uint64(p)*7919
		c := NewCluster(p, o)
		c.Stabilize(o.StabilizationCycles)

		nodes := float64(c.Sim.AliveCount())
		before := c.Sim.Stats()
		c.Sim.RunCycles(cycles)
		mid := c.Sim.Stats()
		var uniqueDeliveries float64
		for i := 0; i < casts; i++ {
			uniqueDeliveries += c.Broadcast() * nodes
		}
		after := c.Sim.Stats()

		row := OverheadRow{
			Protocol:      p,
			MsgsPerCycle:  float64(mid.Sent-before.Sent) / float64(cycles) / nodes,
			BytesPerCycle: float64(mid.BytesSent-before.BytesSent) / float64(cycles) / nodes,
			MsgsPerCast:   float64(after.Sent-mid.Sent) / float64(casts) / nodes,
			BytesPerCast:  float64(after.BytesSent-mid.BytesSent) / float64(casts) / nodes,
		}
		if uniqueDeliveries > 0 {
			// Copies put on the wire per first-time delivery: the paper's
			// redundancy argument (§3.1).
			row.RedundancyRatio = float64(after.Sent-mid.Sent) / uniqueDeliveries
		}
		rows = append(rows, row)
		t.AddRow(p.String(), row.MsgsPerCycle, row.BytesPerCycle,
			row.MsgsPerCast, row.BytesPerCast, row.RedundancyRatio)
	}
	return rows, t
}

// ChurnResult summarizes a sustained-churn run for one protocol.
type ChurnResult struct {
	Protocol        Protocol
	MeanReliability float64
	MinReliability  float64
	FinalConnected  float64 // largest component fraction at the end
}

// Churn subjects each protocol to sustained churn: every cycle, churnPct
// percent of the live population crashes and the same number of fresh nodes
// join (through random live contacts); reliability is probed each cycle.
// This extends the paper's one-shot failure methodology to the steady-state
// churn regime of deployed systems.
func Churn(opts Options, churnPct float64, cycles, probes int) ([]ChurnResult, *metrics.Table) {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("Churn: %.1f%%/cycle for %d cycles (n=%d)", churnPct, cycles, opts.N),
		"protocol", "mean-rel", "min-rel", "final-lcc")
	var results []ChurnResult
	for _, p := range AllProtocols() {
		o := opts
		o.Seed = opts.Seed + uint64(p)*7919
		c := NewCluster(p, o)
		c.Stabilize(o.StabilizationCycles)

		nextID := id.ID(o.N + 1)
		var rels []float64
		for cyc := 0; cyc < cycles; cyc++ {
			// Crash churnPct% of the live population...
			c.FailFraction(churnPct / 100)
			// ...and admit the same number of newcomers via live contacts.
			alive := c.Sim.AliveIDs()
			joins := int(churnPct / 100 * float64(o.N))
			for j := 0; j < joins; j++ {
				contact := alive[c.Sim.Rand().Intn(len(alive))]
				c.addNode(nextID, contact)
				nextID++
			}
			c.Sim.RunCycle()
			for pr := 0; pr < probes; pr++ {
				rels = append(rels, c.Broadcast())
			}
		}
		s := metrics.Summarize(rels)
		lcc := c.Snapshot().LargestComponentFraction()
		results = append(results, ChurnResult{
			Protocol:        p,
			MeanReliability: s.Mean,
			MinReliability:  s.Min,
			FinalConnected:  lcc,
		})
		t.AddRow(p.String(), s.Mean, s.Min, lcc)
	}
	return results, t
}

// addNode joins one additional node to a running cluster through contact.
func (c *Cluster) addNode(nodeID id.ID, contact id.ID) {
	idx := len(c.ids)
	var joiner interface{ Join(id.ID) error }
	c.Sim.Add(nodeID, func(env peer.Env) peer.Process {
		m := c.newMembership(env, idx)
		joiner = m.(interface{ Join(id.ID) error })
		g := c.newBroadcaster(env, m)
		c.gossipers[nodeID] = g
		c.membership[nodeID] = m
		return g
	})
	c.ids = append(c.ids, nodeID)
	_ = joiner.Join(contact)
	c.Sim.Drain()
}

// PassiveResilience sweeps the passive view size and reports post-failure
// reliability and connectivity: the paper's §6 future-work question of how
// passive capacity maps to resilience.
func PassiveResilience(opts Options, sizes []int, failPct float64, probes int) *metrics.Table {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("PassiveResilience: reliability after %.0f%% failures vs passive size (n=%d)",
			failPct, opts.N),
		"passive-size", "mean-rel", "final-rel", "lcc")
	for _, size := range sizes {
		o := opts
		o.Seed = opts.Seed + uint64(size)*31
		kp := core.DefaultConfig().ShuffleKp
		if kp > size {
			kp = size
		}
		o.HyParView = core.Config{PassiveSize: size, ShuffleKp: kp}
		c := NewCluster(HyParView, o)
		c.Stabilize(o.StabilizationCycles)
		c.FailFraction(failPct / 100)
		rels := c.BroadcastBurst(probes)
		lcc := c.Snapshot().LargestComponentFraction()
		t.AddRow(size, metrics.Mean(rels), rels[len(rels)-1], lcc)
	}
	return t
}

// HeterogeneousDegrees implements the paper's §6 adaptive-degree idea: a
// fraction of "server-class" nodes runs with a larger active view while the
// rest keep the default. The experiment verifies the overlay stays connected
// and symmetric and reports how dissemination load concentrates on the
// larger-degree nodes.
func HeterogeneousDegrees(opts Options, bigEvery, bigActive int) *metrics.Table {
	opts = opts.withDefaults()
	t := metrics.NewTable(
		fmt.Sprintf("HeterogeneousDegrees: 1/%d nodes with active=%d (n=%d)",
			bigEvery, bigActive, opts.N),
		"class", "nodes", "mean-in-degree", "share-of-deliver-load", "symmetric", "connected")

	o := opts
	o.ConfigureHyParView = func(i int, cfg core.Config) core.Config {
		if i%bigEvery == 0 {
			cfg.ActiveSize = bigActive
			cfg.ShuffleKa = 3
		}
		return cfg
	}
	c := NewCluster(HyParView, o)
	c.Stabilize(o.StabilizationCycles)

	snap := c.Snapshot()
	ids := snap.IDs()
	in := snap.InDegrees()
	for i := 0; i < 30; i++ {
		c.Broadcast()
	}
	// Forwarded-message share approximates relative load.
	var bigIn, smallIn, bigLoad, smallLoad float64
	var bigN, smallN int
	for idx, nodeID := range ids {
		_, _, fwd, _ := c.Gossiper(nodeID).Counters()
		if int(nodeID-1)%bigEvery == 0 {
			bigN++
			bigIn += float64(in[idx])
			bigLoad += float64(fwd)
		} else {
			smallN++
			smallIn += float64(in[idx])
			smallLoad += float64(fwd)
		}
	}
	total := bigLoad + smallLoad
	sym := snap.SymmetryFraction()
	conn := snap.IsConnected()
	t.AddRow("big", bigN, bigIn/float64(bigN), bigLoad/total, fmt.Sprintf("%.3f", sym), conn)
	t.AddRow("default", smallN, smallIn/float64(smallN), smallLoad/total, fmt.Sprintf("%.3f", sym), conn)
	return t
}

// PartitionResult summarizes a partition/heal run.
type PartitionResult struct {
	// SideReliability is the broadcast reliability within the minority side
	// while the network is cut (measured against that side's population).
	SideReliability float64
	// SidesConnected reports whether each side's overlay was internally
	// connected at the end of the partition.
	SidesConnected bool
	// MergedLCC is the largest-component fraction of the whole overlay
	// after healing and healCycles membership cycles.
	MergedLCC float64
}

// PartitionHeal cuts the network in two (fraction frac on the minority
// side), lets both sides run partCycles membership cycles, heals the cut and
// runs healCycles more. HyParView repairs each side into an internally
// connected overlay almost immediately; whether the two sides RE-MERGE after
// healing depends on cross-side identifiers surviving in passive views — a
// genuine limitation of the published protocol (addressed by later work on
// overlay merging), which this experiment makes measurable.
func PartitionHeal(opts Options, frac float64, partCycles, healCycles int) (PartitionResult, *metrics.Table) {
	opts = opts.withDefaults()
	c := NewCluster(HyParView, opts)
	c.Stabilize(opts.StabilizationCycles)

	// Assign ~frac of nodes to side 1, the rest to side 0.
	side := make(map[id.ID]int, opts.N)
	cut := int(frac * float64(opts.N))
	minority := make(map[id.ID]bool, cut)
	for i, nodeID := range c.IDs() {
		if i < cut {
			side[nodeID] = 1
			minority[nodeID] = true
		}
	}
	c.Sim.Partition(func(n id.ID) int { return side[n] })
	c.Sim.Drain() // deliver the cross-cut resets, trigger repairs
	c.Sim.RunCycles(partCycles)

	// Probe reliability within the minority side.
	var minorityIDs []id.ID
	for _, nodeID := range c.Sim.AliveIDs() {
		if minority[nodeID] {
			minorityIDs = append(minorityIDs, nodeID)
		}
	}
	var sideRel float64
	for probe := 0; probe < 5; probe++ {
		src := minorityIDs[c.Sim.Rand().Intn(len(minorityIDs))]
		round := c.Tracker.NextRound()
		c.gossipers[src].Broadcast(round, nil)
		c.Sim.Drain()
		sideRel += c.Tracker.Reliability(round, len(minorityIDs))
		c.Tracker.Forget(round)
	}
	sideRel /= 5

	// Are both sides internally connected?
	sidesOK := true
	for _, grp := range []int{0, 1} {
		var ids []id.ID
		for _, nodeID := range c.Sim.AliveIDs() {
			if side[nodeID] == grp {
				ids = append(ids, nodeID)
			}
		}
		snap := graphBuild(ids, c)
		if !snap.IsConnected() {
			sidesOK = false
		}
	}

	c.Sim.Heal()
	c.Sim.RunCycles(healCycles)
	merged := c.Snapshot().LargestComponentFraction()

	res := PartitionResult{SideReliability: sideRel, SidesConnected: sidesOK, MergedLCC: merged}
	t := metrics.NewTable(
		fmt.Sprintf("PartitionHeal: %.0f%%/%.0f%% cut for %d cycles, then heal (n=%d)",
			frac*100, 100-frac*100, partCycles, opts.N),
		"minority-side-rel", "sides-connected", "post-heal-lcc")
	t.AddRow(res.SideReliability, res.SidesConnected, res.MergedLCC)
	return res, t
}

// graphBuild snapshots the overlay restricted to ids.
func graphBuild(ids []id.ID, c *Cluster) *graph.Snapshot {
	return graph.Build(ids, func(n id.ID) []id.ID { return c.membership[n].Neighbors() })
}
