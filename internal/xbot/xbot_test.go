package xbot

import (
	"fmt"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// mapOracle is a scriptable symmetric cost oracle.
type mapOracle map[[2]id.ID]uint64

func (o mapOracle) set(a, b id.ID, c uint64) {
	if a > b {
		a, b = b, a
	}
	o[[2]id.ID{a, b}] = c
}

func (o mapOracle) Cost(a, b id.ID) uint64 {
	if a > b {
		a, b = b, a
	}
	return o[[2]id.ID{a, b}]
}

// fakeEnv is a scriptable peer.Env recording sends.
type fakeEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
	down map[id.ID]bool
	sent []sentMsg
}

type sentMsg struct {
	to id.ID
	m  msg.Message
}

func newFakeEnv(self id.ID) *fakeEnv {
	return &fakeEnv{self: self, rand: rng.New(uint64(self) + 77), down: map[id.ID]bool{}}
}

func (e *fakeEnv) Self() id.ID     { return e.self }
func (e *fakeEnv) Rand() *rng.Rand { return e.rand }
func (e *fakeEnv) Send(dst id.ID, m msg.Message) error {
	if e.down[dst] {
		return fmt.Errorf("send: %w", peer.ErrPeerDown)
	}
	e.sent = append(e.sent, sentMsg{to: dst, m: m})
	return nil
}
func (e *fakeEnv) Probe(dst id.ID) error {
	if e.down[dst] {
		return fmt.Errorf("probe: %w", peer.ErrPeerDown)
	}
	return nil
}
func (e *fakeEnv) Watch(id.ID)   {}
func (e *fakeEnv) Unwatch(id.ID) {}

func (e *fakeEnv) take() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

func (e *fakeEnv) lastOfType(t msg.Type) (sentMsg, bool) {
	for i := len(e.sent) - 1; i >= 0; i-- {
		if e.sent[i].m.Type == t {
			return e.sent[i], true
		}
	}
	return sentMsg{}, false
}

// stubMembership is a controllable xbot.Membership.
type stubMembership struct {
	cap      int
	active   []id.ID
	passive  []id.ID
	promoted []id.ID
	demoted  []id.ID
}

func (s *stubMembership) Deliver(id.ID, msg.Message)       {}
func (s *stubMembership) OnCycle()                         {}
func (s *stubMembership) OnPeerDown(id.ID)                 {}
func (s *stubMembership) GossipTargets(int, id.ID) []id.ID { return nil }
func (s *stubMembership) Neighbors() []id.ID               { return append([]id.ID(nil), s.active...) }
func (s *stubMembership) Active() []id.ID                  { return append([]id.ID(nil), s.active...) }
func (s *stubMembership) Passive() []id.ID                 { return append([]id.ID(nil), s.passive...) }
func (s *stubMembership) ActiveFull() bool                 { return len(s.active) >= s.cap }

func (s *stubMembership) ActiveContains(p id.ID) bool {
	for _, a := range s.active {
		if a == p {
			return true
		}
	}
	return false
}

func (s *stubMembership) PromoteActive(p id.ID) bool {
	if s.ActiveContains(p) {
		return false
	}
	s.active = append(s.active, p)
	s.promoted = append(s.promoted, p)
	for i, q := range s.passive {
		if q == p {
			s.passive = append(s.passive[:i], s.passive[i+1:]...)
			break
		}
	}
	return true
}

func (s *stubMembership) DemoteActive(p id.ID) bool {
	for i, a := range s.active {
		if a == p {
			s.active = append(s.active[:i], s.active[i+1:]...)
			s.demoted = append(s.demoted, p)
			s.passive = append(s.passive, p)
			return true
		}
	}
	return false
}

func newTestNode(self id.ID, cap int, cfg Config, oracle Oracle) (*Node, *stubMembership, *fakeEnv) {
	env := newFakeEnv(self)
	m := &stubMembership{cap: cap}
	return New(env, m, cfg, oracle), m, env
}

// partialOracle is a mapOracle that reports some local links as unmeasured,
// exercising the CostKnower extension a live RTT oracle implements.
type partialOracle struct {
	mapOracle
	unknown map[id.ID]bool // peers whose local link has no estimate yet
}

func (o partialOracle) KnownCost(a, b id.ID) bool {
	return !o.unknown[a] && !o.unknown[b]
}

// TestInitiatorSkipsUnmeasuredLinks: a link without a cost estimate must
// never be ranked as the replaceable "worst" link — the optimizer would be
// evicting on no evidence. Here the only expensive link is unmeasured, the
// rest show no gain, so no attempt starts.
func TestInitiatorSkipsUnmeasuredLinks(t *testing.T) {
	oracle := partialOracle{mapOracle: mapOracle{}, unknown: map[id.ID]bool{3: true}}
	oracle.set(1, 2, 10)  // measured, cheap
	oracle.set(1, 3, 100) // would be the evictee, but unmeasured
	oracle.set(1, 4, 20)  // candidate costlier than every measured link
	n, m, env := newTestNode(1, 2, Config{ProtectTopK: 0}, oracle)
	n.cfg.ProtectTopK = 0
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}

	n.OnCycle()
	if sent, ok := env.lastOfType(msg.XBotOptimization); ok {
		t.Fatalf("OPTIMIZATION %+v proposed against an unmeasured link", sent.m)
	}
	if n.Stats().Attempts != 0 {
		t.Errorf("attempts = %d, want 0", n.Stats().Attempts)
	}
}

// TestDisconnectedRejectsUnmeasuredSwap: d must reject a REPLACE when either
// of its locally measured terms (c–d, d–o) has no estimate, even though the
// sentinel arithmetic would otherwise accept.
func TestDisconnectedRejectsUnmeasuredSwap(t *testing.T) {
	// Same geometry as TestDisconnectedAcceptsStrictImprovement (60 < 180,
	// would accept) except the d–o link is unmeasured.
	oracle := partialOracle{mapOracle: mapOracle{}, unknown: map[id.ID]bool{7: true}}
	oracle.set(8, 5, 80) // c-d, measured
	oracle.set(8, 7, 50) // d-o, present but flagged unmeasured
	n, m, env := newTestNode(8, 2, Config{ProtectTopK: 0}, oracle)
	n.cfg.ProtectTopK = 0
	m.active = []id.ID{5, 6}
	n.Deliver(5, msg.Message{
		Type: msg.XBotReplace, Sender: 5, Subject: 7, Nodes: []id.ID{9},
		CostOld: 100, CostNew: 10,
	})
	if _, ok := env.lastOfType(msg.XBotSwitch); ok {
		t.Fatal("SWITCH sent although d-o is unmeasured")
	}
	rr, ok := env.lastOfType(msg.XBotReplaceReply)
	if !ok || rr.m.Accept {
		t.Fatal("unmeasured swap not rejected")
	}
}

func TestInitiatorProposesCheaperCandidate(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)  // protected cheapest link
	oracle.set(1, 3, 100) // the link worth replacing
	oracle.set(1, 4, 20)  // the passive candidate
	n, m, env := newTestNode(1, 2, Config{}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}

	n.OnCycle()
	sent, ok := env.lastOfType(msg.XBotOptimization)
	if !ok {
		t.Fatal("no OPTIMIZATION sent despite a cheaper candidate")
	}
	if sent.to != 4 || sent.m.Subject != 3 {
		t.Errorf("proposed to %v replacing %v, want candidate 4 replacing 3", sent.to, sent.m.Subject)
	}
	if sent.m.CostOld != 100 || sent.m.CostNew != 20 {
		t.Errorf("costs = (%d, %d), want (100, 20)", sent.m.CostOld, sent.m.CostNew)
	}
	if n.Stats().Attempts != 1 {
		t.Error("attempt not counted")
	}
	// A second cycle must not start a concurrent handshake.
	env.take()
	n.OnCycle()
	if _, ok := env.lastOfType(msg.XBotOptimization); ok {
		t.Error("second OPTIMIZATION sent while one is pending")
	}
}

func TestInitiatorSkipsWhenNotFullOrNoGain(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 30)
	oracle.set(1, 4, 500) // candidate worse than every active link
	n, m, env := newTestNode(1, 2, Config{}, oracle)
	m.active = []id.ID{2} // deficient view
	m.passive = []id.ID{4}
	n.OnCycle()
	if _, ok := env.lastOfType(msg.XBotOptimization); ok {
		t.Error("optimized a deficient active view")
	}
	m.active = []id.ID{2, 3} // full, but the candidate is expensive
	n.OnCycle()
	if _, ok := env.lastOfType(msg.XBotOptimization); ok {
		t.Error("proposed a candidate costlier than the worst link")
	}
}

func TestInitiatorProtectsTopK(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 100)
	oracle.set(1, 4, 1) // candidate beats everything
	n, m, env := newTestNode(1, 2, Config{ProtectTopK: 2}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}
	n.OnCycle()
	if _, ok := env.lastOfType(msg.XBotOptimization); ok {
		t.Error("dissolved a protected link (ProtectTopK=2 with 2 links)")
	}
}

func TestCandidateDirectAcceptWithFreeSlot(t *testing.T) {
	oracle := mapOracle{}
	n, m, env := newTestNode(5, 3, Config{}, oracle)
	m.active = []id.ID{6}
	n.Deliver(9, msg.Message{Type: msg.XBotOptimization, Sender: 9, Subject: 7, CostOld: 100, CostNew: 20})
	reply, ok := env.lastOfType(msg.XBotOptimizationReply)
	if !ok || reply.to != 9 {
		t.Fatal("no reply to the initiator")
	}
	if !reply.m.Accept {
		t.Error("free slot rejected")
	}
	if reply.m.Subject != 7 {
		t.Error("reply lost the old-neighbor context")
	}
	if !m.ActiveContains(9) {
		t.Error("initiator not admitted")
	}
}

func TestCandidateDelegatesToEvictee(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(5, 6, 5)  // protected
	oracle.set(5, 8, 80) // the evictee d
	oracle.set(5, 9, 10) // the initiator i: cheaper than d, worth trading
	n, m, env := newTestNode(5, 2, Config{}, oracle)
	m.active = []id.ID{6, 8}
	n.Deliver(9, msg.Message{Type: msg.XBotOptimization, Sender: 9, Subject: 7, CostOld: 100, CostNew: 10})
	rep, ok := env.lastOfType(msg.XBotReplace)
	if !ok {
		t.Fatal("full candidate did not delegate via REPLACE")
	}
	if rep.to != 8 {
		t.Errorf("REPLACE sent to %v, want the costliest non-protected link 8", rep.to)
	}
	if rep.m.Subject != 7 || len(rep.m.Nodes) != 1 || rep.m.Nodes[0] != 9 {
		t.Errorf("REPLACE context wrong: %+v", rep.m)
	}
	if rep.m.CostOld != 100 || rep.m.CostNew != 10 {
		t.Error("costs not relayed")
	}
	if _, ok := env.lastOfType(msg.XBotOptimizationReply); ok {
		t.Error("candidate replied before the 4-node path resolved")
	}
	_ = m
}

func TestCandidateRejectsWorseInitiator(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(5, 6, 5)
	oracle.set(5, 8, 80)
	oracle.set(5, 9, 300) // initiator costlier than the evictee: no gain for c
	n, m, env := newTestNode(5, 2, Config{}, oracle)
	m.active = []id.ID{6, 8}
	n.Deliver(9, msg.Message{Type: msg.XBotOptimization, Sender: 9, Subject: 7, CostOld: 400, CostNew: 300})
	reply, ok := env.lastOfType(msg.XBotOptimizationReply)
	if !ok || reply.m.Accept {
		t.Fatal("candidate should reject an initiator costlier than its own worst link")
	}
}

func TestDisconnectedAcceptsStrictImprovement(t *testing.T) {
	// Swap dissolves {i-o:100, c-d:80} and creates {i-c:10, d-o:50}:
	// 60 < 180, accept.
	oracle := mapOracle{}
	oracle.set(8, 5, 80) // c-d
	oracle.set(8, 7, 50) // d-o
	n, m, env := newTestNode(8, 2, Config{ProtectTopK: 0}, oracle)
	n.cfg.ProtectTopK = 0 // every link negotiable for this scenario
	m.active = []id.ID{5, 6}
	n.Deliver(5, msg.Message{
		Type: msg.XBotReplace, Sender: 5, Subject: 7, Nodes: []id.ID{9},
		CostOld: 100, CostNew: 10,
	})
	sw, ok := env.lastOfType(msg.XBotSwitch)
	if !ok {
		t.Fatal("no SWITCH despite strict improvement")
	}
	if sw.to != 7 || sw.m.Subject != 9 || len(sw.m.Nodes) != 1 || sw.m.Nodes[0] != 5 {
		t.Errorf("SWITCH context wrong: to=%v %+v", sw.to, sw.m)
	}

	// The old neighbor accepts: d commits the o link and drops c.
	env.take()
	n.Deliver(7, msg.Message{Type: msg.XBotSwitchReply, Sender: 7, Subject: 9, Accept: true})
	if !m.ActiveContains(7) {
		t.Error("d did not commit the link to o")
	}
	if m.ActiveContains(5) {
		t.Error("d kept the link to c")
	}
	if dw, ok := env.lastOfType(msg.XBotDisconnectWait); !ok || dw.to != 5 {
		t.Error("c was not told the link dissolved")
	}
	if rr, ok := env.lastOfType(msg.XBotReplaceReply); !ok || rr.to != 5 || !rr.m.Accept {
		t.Error("acceptance not relayed to c")
	}
}

func TestDisconnectedRejectsNonImprovement(t *testing.T) {
	// Swap dissolves {i-o:100, c-d:80} and creates {i-c:90, d-o:95}:
	// 185 >= 180, reject.
	oracle := mapOracle{}
	oracle.set(8, 5, 80)
	oracle.set(8, 7, 95)
	n, m, env := newTestNode(8, 2, Config{ProtectTopK: 0}, oracle)
	n.cfg.ProtectTopK = 0
	m.active = []id.ID{5, 6}
	n.Deliver(5, msg.Message{
		Type: msg.XBotReplace, Sender: 5, Subject: 7, Nodes: []id.ID{9},
		CostOld: 100, CostNew: 90,
	})
	if _, ok := env.lastOfType(msg.XBotSwitch); ok {
		t.Fatal("SWITCH sent for a non-improving swap")
	}
	rr, ok := env.lastOfType(msg.XBotReplaceReply)
	if !ok || rr.m.Accept {
		t.Fatal("non-improving swap not rejected")
	}
}

func TestOldNeighborSwitchesLinks(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(7, 9, 100) // the link to the initiator, expensive
	oracle.set(7, 2, 1)   // a protected cheap link
	n, m, env := newTestNode(7, 2, Config{}, oracle)
	m.active = []id.ID{2, 9}
	n.Deliver(8, msg.Message{Type: msg.XBotSwitch, Sender: 8, Subject: 9, Nodes: []id.ID{5}})
	if dw, ok := env.lastOfType(msg.XBotDisconnectWait); !ok || dw.to != 9 {
		t.Error("initiator not sent DISCONNECTWAIT")
	}
	if m.ActiveContains(9) {
		t.Error("initiator link not dissolved")
	}
	if !m.ActiveContains(8) {
		t.Error("link to d not committed")
	}
	sr, ok := env.lastOfType(msg.XBotSwitchReply)
	if !ok || !sr.m.Accept || sr.to != 8 {
		t.Error("SWITCH not accepted")
	}
}

func TestOldNeighborProtectsUnbiasedFloor(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(7, 9, 100)
	n, m, env := newTestNode(7, 2, Config{}, oracle)
	// The initiator link is this node's only unbiased link: at the
	// ProtectTopK=1 floor it must not be dissolved.
	m.active = []id.ID{9}
	n.Deliver(8, msg.Message{Type: msg.XBotSwitch, Sender: 8, Subject: 9, Nodes: []id.ID{5}})
	sr, ok := env.lastOfType(msg.XBotSwitchReply)
	if !ok || sr.m.Accept {
		t.Fatal("last unbiased link switched away")
	}
	if !m.ActiveContains(9) || m.ActiveContains(8) {
		t.Error("views changed despite rejection")
	}
}

func TestBiasedLinksStayNegotiable(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(7, 9, 100) // biased link to the initiator
	oracle.set(7, 2, 5)   // the one unbiased link
	n, m, env := newTestNode(7, 2, Config{}, oracle)
	m.active = []id.ID{2}
	// A completed direct-accept swap creates a biased link to 9.
	n.Deliver(9, msg.Message{Type: msg.XBotOptimization, Sender: 9, Subject: 4, CostOld: 300, CostNew: 100})
	if !m.ActiveContains(9) {
		t.Fatal("direct accept did not admit the initiator")
	}
	env.take()
	// Even at the unbiased floor (only link 2 is unbiased), the biased link
	// to 9 may still be switched away.
	n.Deliver(8, msg.Message{Type: msg.XBotSwitch, Sender: 8, Subject: 9, Nodes: []id.ID{5}})
	sr, ok := env.lastOfType(msg.XBotSwitchReply)
	if !ok || !sr.m.Accept {
		t.Fatal("biased link treated as protected")
	}
	if m.ActiveContains(9) || !m.ActiveContains(8) {
		t.Error("switch not committed")
	}
	if !m.ActiveContains(2) {
		t.Error("unbiased link disturbed")
	}
}

func TestBiasMarkClearedOnTeardown(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(7, 9, 100)
	oracle.set(7, 2, 5)
	n, m, env := newTestNode(7, 2, Config{}, oracle)
	m.active = []id.ID{2}
	// A direct-accept swap creates a biased link to 9...
	n.Deliver(9, msg.Message{Type: msg.XBotOptimization, Sender: 9, Subject: 4, CostOld: 300, CostNew: 100})
	// ...which 9's own later swap tears down again.
	n.Deliver(9, msg.Message{Type: msg.XBotDisconnectWait, Sender: 9})
	if m.ActiveContains(9) {
		t.Fatal("DISCONNECTWAIT did not dissolve the link")
	}
	// HyParView's random repair re-admits the same peer before any
	// reconciliation runs: the new link is unbiased and must count toward
	// the protection floor.
	m.active = []id.ID{9}
	env.take()
	n.Deliver(8, msg.Message{Type: msg.XBotSwitch, Sender: 8, Subject: 9, Nodes: []id.ID{5}})
	sr, ok := env.lastOfType(msg.XBotSwitchReply)
	if !ok || sr.m.Accept {
		t.Fatal("stale bias mark let the last unbiased link be switched away")
	}
}

func TestInitiatorCommitsOnAccept(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 100)
	oracle.set(1, 4, 20)
	n, m, env := newTestNode(1, 2, Config{}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}
	n.OnCycle() // proposes 4 replacing 3
	env.take()

	// Direct-accept path: no DISCONNECTWAIT arrived first, so the initiator
	// tears the old link down itself.
	n.Deliver(4, msg.Message{Type: msg.XBotOptimizationReply, Sender: 4, Subject: 3, Accept: true})
	if !m.ActiveContains(4) || m.ActiveContains(3) {
		t.Errorf("swap not committed: active=%v", m.active)
	}
	if dw, ok := env.lastOfType(msg.XBotDisconnectWait); !ok || dw.to != 3 {
		t.Error("old neighbor not told about the teardown")
	}
	if n.Stats().SwapsCompleted != 1 {
		t.Error("swap not counted")
	}
}

func TestInitiatorFourNodePathNoDoubleTeardown(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 100)
	oracle.set(1, 4, 20)
	n, m, env := newTestNode(1, 2, Config{}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}
	n.OnCycle()
	env.take()

	// 4-node path: o's DISCONNECTWAIT arrives before the candidate's reply.
	n.Deliver(3, msg.Message{Type: msg.XBotDisconnectWait, Sender: 3})
	if m.ActiveContains(3) {
		t.Fatal("DISCONNECTWAIT did not dissolve the link")
	}
	n.Deliver(4, msg.Message{Type: msg.XBotOptimizationReply, Sender: 4, Subject: 3, Accept: true})
	if !m.ActiveContains(4) {
		t.Error("candidate link not committed")
	}
	if dw, ok := env.lastOfType(msg.XBotDisconnectWait); ok {
		t.Errorf("redundant DISCONNECTWAIT to %v", dw.to)
	}
}

func TestRejectionLeavesViewsUntouched(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 100)
	oracle.set(1, 4, 20)
	n, m, env := newTestNode(1, 2, Config{}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}
	n.OnCycle()
	env.take()
	n.Deliver(4, msg.Message{Type: msg.XBotOptimizationReply, Sender: 4, Subject: 3})
	if !m.ActiveContains(3) || m.ActiveContains(4) {
		t.Errorf("rejected swap changed the view: %v", m.active)
	}
	if n.Stats().SwapsRejected != 1 {
		t.Error("rejection not counted")
	}
	// The handshake is closed: the next cycle may try again.
	n.OnCycle()
	if _, ok := env.lastOfType(msg.XBotOptimization); !ok {
		t.Error("optimizer wedged after a rejection")
	}
}

func TestPendingHandshakeExpires(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 100)
	oracle.set(1, 4, 20)
	n, m, env := newTestNode(1, 2, Config{PendingTTL: 7}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}
	n.OnCycle()
	env.take()
	if env.Pending() != 1 {
		t.Fatalf("expiry sweeps armed = %d, want 1 (via peer.Scheduler)", env.Pending())
	}
	// The candidate never answers: the scheduler fires the expiry sweep at
	// the handshake's deadline and the state is reclaimed.
	for _, tick := range env.Advance(7) {
		n.Deliver(1, tick)
	}
	if n.Stats().Expired == 0 {
		t.Error("stuck handshake never expired")
	}
	n.OnCycle()
	if _, ok := env.lastOfType(msg.XBotOptimization); !ok {
		t.Error("no fresh attempt after expiry")
	}
}

func TestExpirySweepSparesYoungerHandshake(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 100)
	oracle.set(1, 4, 20)
	n, m, env := newTestNode(1, 2, Config{PendingTTL: 50}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}
	n.OnCycle() // handshake armed at t=0, deadline 50
	env.take()
	// A sweep firing before the deadline (e.g. armed by an older handshake)
	// must leave the outstanding state alone.
	for _, tick := range env.Advance(49) {
		n.Deliver(1, tick)
	}
	if n.pending == nil {
		t.Fatal("sweep before the deadline reaped a live handshake")
	}
	for _, tick := range env.Advance(1) {
		n.Deliver(1, tick)
	}
	if n.pending != nil {
		t.Error("handshake survived its deadline")
	}
}

func TestSendFailureAbandonsHandshake(t *testing.T) {
	oracle := mapOracle{}
	oracle.set(1, 2, 10)
	oracle.set(1, 3, 100)
	oracle.set(1, 4, 20)
	n, m, env := newTestNode(1, 2, Config{}, oracle)
	m.active = []id.ID{2, 3}
	m.passive = []id.ID{4}
	env.down[4] = true
	n.OnCycle()
	if n.Stats().Attempts != 0 {
		t.Error("attempt counted despite the candidate being down")
	}
	if n.pending != nil {
		t.Error("pending state left for a dead candidate")
	}
}

func TestDeliverDelegatesNonXBotTraffic(t *testing.T) {
	oracle := mapOracle{}
	n, _, _ := newTestNode(1, 2, Config{}, oracle)
	// Must not panic and must reach the inner stub (which ignores it).
	n.Deliver(2, msg.Message{Type: msg.Shuffle, Sender: 2, Subject: 2, TTL: 3})
	n.Deliver(2, msg.Message{Type: msg.Gossip, Sender: 2, Round: 1})
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.Period != 1 || cfg.Candidates != 2 || cfg.ProtectTopK != 1 || cfg.PendingTTL != 5000 {
		t.Errorf("unexpected defaults: %+v", cfg)
	}
	if cfg.Interval != 0 {
		t.Errorf("Interval defaulted to %d, want 0 (cycle-driven)", cfg.Interval)
	}
}
