// Package xbot implements the X-BOT topology-aware overlay optimization
// protocol (Leitão, Marques, Pereira, Rodrigues — "X-BOT: A Protocol for
// Resilient Optimization of Unstructured Overlays", SRDS 2009), the authors'
// follow-up to HyParView (DSN 2007).
//
// HyParView builds its active views obliviously: links are random, so
// broadcast pays whatever latencies chance hands it. X-BOT continuously
// rewires those views toward low-cost links using only local decisions,
// without changing node degrees and without giving up the random overlay's
// connectivity and healing properties.
//
// # The 4-node coordinated swap
//
// Each cycle, a node i with a full active view probes a few passive-view
// candidates against a cost Oracle. If some candidate c is cheaper than i's
// worst non-protected active neighbor o, i starts the handshake:
//
//	i ── OPTIMIZATION(o, cost(i,o), cost(i,c)) ──▶ c
//
// If c has a free active slot it simply accepts: the i–c link is created and
// i drops o (sending it DISCONNECTWAIT). Otherwise c picks its own worst
// non-protected neighbor d — the node it would disconnect — and delegates:
//
//	c ── REPLACE(i, o, costs) ──▶ d ── SWITCH(i, c) ──▶ o
//
// d accepts only when the swap strictly reduces total cost,
//
//	cost(i,c) + cost(d,o)  <  cost(i,o) + cost(c,d)
//
// which it can evaluate with the relayed costs plus the two links it can
// measure itself. o then trades its link to i for a link to d, and the
// acceptances travel back (SWITCHREPLY, REPLACEREPLY, OPTIMIZATIONREPLY),
// each hop committing one end of the two new links i–c and d–o. Every torn
// link is announced with DISCONNECTWAIT rather than silence or DISCONNECT:
// the receiver demotes the peer to its passive view without treating it as a
// failure and without immediately starting a repair promotion — the swap is
// about to hand it a replacement link, and if the handshake dies midway the
// next HyParView cycle's normal repair refills the slot. Active views
// therefore keep their size and symmetry through every completed swap.
//
// # Protected (unbiased) links
//
// Every link starts unbiased: created by HyParView's own join, repair and
// shuffle mechanisms, i.e. uniformly random. Links the optimizer creates are
// biased toward low cost. A node never dissolves an unbiased link — in any
// swap role: initiator, candidate choosing d, old neighbor answering SWITCH,
// disconnected node answering REPLACE — when that would leave it with fewer
// than Config.ProtectTopK unbiased links; biased links are always
// negotiable. This is the paper's u parameter, and it is a connectivity
// invariant, not a tuning knob: under clustered cost surfaces (transit-stub)
// a purely cost-greedy rewiring collapses each cluster into a disconnected
// island, while the protected random links keep the global overlay one
// component with the short diameter and healing properties of the oblivious
// original.
//
// # Layering
//
// Node wraps a HyParView core (any Membership implementation) and is itself
// a peer.Membership: the broadcast layer stacks on top unchanged, X-BOT
// traffic is intercepted in Deliver, everything else flows through. The cost
// Oracle is pluggable; simulations use a netsim.LatencyModel, deployments
// would plug RTT estimates.
package xbot

import (
	"errors"
	"sort"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// Oracle measures link costs. Implementations must be symmetric
// (Cost(a,b) == Cost(b,a)) and cheap: the protocol calls Cost only for links
// adjacent to the calling node, which models a node measuring its own RTTs.
type Oracle interface {
	Cost(a, b id.ID) uint64
}

// CostKnower is optionally implemented by oracles that may lack estimates
// for some links (live RTT measurement, unlike a simulator's closed-form
// latency model). When the oracle implements it, the protocol refuses to
// rank or dissolve links whose cost is not yet known: deciding a swap on a
// sentinel value would evict possibly-cheap links on no evidence. Calling
// Cost for an unknown link is still allowed — and is how measuring oracles
// learn which links to measure — but its return value is only trusted when
// KnownCost reports true.
type CostKnower interface {
	KnownCost(a, b id.ID) bool
}

// Membership is the contract X-BOT needs from the membership protocol it
// optimizes: the peer.Membership behaviour plus surgical active-view access.
// *core.Node implements it.
type Membership interface {
	peer.Membership

	// Active and Passive return copies of the two views.
	Active() []id.ID
	Passive() []id.ID
	// ActiveContains reports active-view membership.
	ActiveContains(peer id.ID) bool
	// ActiveFull reports whether the active view is at capacity.
	ActiveFull() bool
	// PromoteActive admits peer into the active view; DemoteActive moves an
	// active member to the passive view without wire traffic or repair.
	PromoteActive(peer id.ID) bool
	DemoteActive(peer id.ID) bool
}

// Config parameterizes the optimizer. Zero fields take defaults.
type Config struct {
	// Period is the number of membership cycles between optimization
	// attempts in externally-driven cycle mode (OnCycle). Default 1
	// (attempt every cycle). Ignored when Interval is set.
	Period int

	// Interval, when non-zero, switches the optimizer to scheduler-driven
	// rounds: one optimization attempt every Interval ticks, registered on
	// the environment's peer.Scheduler at construction. OnCycle then runs
	// only the wrapped protocol's cycle. This is the paper-faithful periodic
	// mode; the cluster harness derives it from the membership shuffle
	// interval. Default 0 (cycle-driven).
	Interval uint64

	// Candidates is the number of passive-view members probed per attempt
	// (the paper's Passive Scan Length). Default 2.
	Candidates int

	// ProtectTopK is the minimum number of unbiased links — links created
	// by the membership protocol's own random mechanisms, not by
	// optimization — each node preserves: the paper's u parameter. A node
	// refuses, in any swap role, to dissolve an unbiased link when at or
	// below this floor, which keeps enough randomness in every active view
	// to preserve global connectivity under clustered cost surfaces.
	// Default 1.
	ProtectTopK int

	// PendingTTL is how long, in scheduler ticks, an unanswered handshake
	// may stay outstanding before its state is dropped (peers crash,
	// replies get lost to partitions). Every handshake arms an expiry sweep
	// via peer.Scheduler.After; the sweep fires behind all in-flight
	// traffic, so in the simulator's FIFO mode a stuck handshake is
	// reclaimed as soon as the event heap proves no reply is coming, while
	// under a latency model or the real clock the TTL must exceed the
	// 4-node handshake's round-trip. Default 5000.
	PendingTTL uint64
}

// DeriveInterval fills Interval from the duration of one membership round
// in scheduler ticks — Period rounds per optimization attempt — unless an
// explicit Interval is already set or there is no round clock. Both
// environments derive the cadence through this one rule, so the simulator
// and the deployment can never silently disagree on it.
func (c Config) DeriveInterval(roundTicks uint64) Config {
	if c.Interval != 0 || roundTicks == 0 {
		return c
	}
	period := c.Period
	if period <= 0 {
		period = 1
	}
	c.Interval = roundTicks * uint64(period)
	return c
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Period == 0 {
		c.Period = 1
	}
	if c.Candidates == 0 {
		c.Candidates = 2
	}
	if c.ProtectTopK == 0 {
		c.ProtectTopK = 1
	}
	if c.PendingTTL == 0 {
		c.PendingTTL = 5000
	}
	return c
}

// Stats counts optimizer activity on one node.
type Stats struct {
	Attempts        uint64 // OPTIMIZATION messages sent (initiator role)
	SwapsCompleted  uint64 // accepted OPTIMIZATIONREPLYs (links improved)
	SwapsRejected   uint64 // rejected OPTIMIZATIONREPLYs
	ReplacesHandled uint64 // REPLACE evaluations (disconnected role)
	SwitchesHandled uint64 // SWITCH evaluations (old-neighbor role)
	DisconnectWaits uint64 // DISCONNECTWAIT notifications received
	Expired         uint64 // handshakes dropped by the pending timeout
}

// initState is the initiator's outstanding handshake.
type initState struct {
	old       id.ID // the active neighbor being replaced
	candidate id.ID
	deadline  uint64 // scheduler tick after which the handshake expires
}

// candState is the candidate's outstanding delegation, keyed by initiator.
type candState struct {
	old      id.ID // the initiator's neighbor being replaced
	evictee  id.ID // d: the neighbor this node offered to disconnect
	deadline uint64
}

// discState is the disconnected node's outstanding switch, keyed by
// initiator.
type discState struct {
	candidate id.ID // c: the neighbor this node will trade away
	old       id.ID // o: the replacement neighbor being negotiated
	deadline  uint64
}

// Node is one X-BOT optimizer instance layered over a Membership. It is not
// safe for concurrent use, matching every other protocol in this repository.
type Node struct {
	env    peer.Env
	self   id.ID
	inner  Membership
	oracle Oracle
	cfg    Config

	pending     *initState
	asCandidate map[id.ID]*candState
	asDisc      map[id.ID]*discState

	// biased marks active links created by the optimizer; everything else
	// in the active view is an unbiased (random) link. Entries for links
	// that have since left the active view are pruned lazily.
	biased map[id.ID]bool

	cycles      int
	fallbackVer uint64 // synthetic NeighborVersion for unversioned inners
	stats       Stats
}

var _ peer.Membership = (*Node)(nil)

// New layers an X-BOT optimizer over inner, measuring links with oracle.
// With Config.Interval set, the optimization cadence is registered on the
// environment's scheduler here; otherwise rounds are driven by OnCycle.
func New(env peer.Env, inner Membership, cfg Config, oracle Oracle) *Node {
	if oracle == nil {
		panic("xbot: nil cost oracle")
	}
	n := &Node{
		env:         env,
		self:        env.Self(),
		inner:       inner,
		oracle:      oracle,
		cfg:         cfg.WithDefaults(),
		asCandidate: make(map[id.ID]*candState),
		asDisc:      make(map[id.ID]*discState),
		biased:      make(map[id.ID]bool),
	}
	if n.cfg.Interval > 0 {
		env.Every(n.cfg.Interval, msg.Message{
			Type: msg.Tick, Sender: n.self, Round: msg.TickXBotOptimize,
		})
	}
	return n
}

// Inner returns the wrapped membership protocol (tests, metrics).
func (n *Node) Inner() Membership { return n.inner }

// Config returns the effective configuration.
func (n *Node) Config() Config { return n.cfg }

// Stats returns a copy of the optimizer counters.
func (n *Node) Stats() Stats { return n.stats }

// Join bootstraps the wrapped protocol through contact; the experiment
// harness joins clusters through this method regardless of layering.
func (n *Node) Join(contact id.ID) error {
	if j, ok := n.inner.(interface{ Join(id.ID) error }); ok {
		return j.Join(contact)
	}
	return nil
}

// --- peer.Membership plumbing ----------------------------------------------

// Neighbors implements peer.Membership.
func (n *Node) Neighbors() []id.ID { return n.inner.Neighbors() }

// NeighborVersion implements peer.NeighborVersioned by forwarding the
// wrapped protocol's change counter: X-BOT rewires the inner active view but
// never maintains a neighborhood of its own. When the inner protocol carries
// no version, every call reports a fresh value so upper layers fall back to
// resynchronizing unconditionally — a constant would wrongly signal "never
// changed".
func (n *Node) NeighborVersion() uint64 {
	if v, ok := n.inner.(peer.NeighborVersioned); ok {
		return v.NeighborVersion()
	}
	n.fallbackVer++
	return n.fallbackVer
}

// GossipTargets implements peer.Membership. The result follows the
// interface's scratch-buffer contract (owned by the inner membership, valid
// until its next GossipTargets call).
func (n *Node) GossipTargets(fanout int, exclude id.ID) []id.ID {
	return n.inner.GossipTargets(fanout, exclude)
}

// OnPeerDown implements peer.Membership: handshake state referencing the
// dead peer is abandoned, then the failure is passed down for view repair.
func (n *Node) OnPeerDown(peerID id.ID) {
	n.dropPeerState(peerID)
	n.inner.OnPeerDown(peerID)
}

// Deliver implements peer.Membership: X-BOT traffic is consumed here,
// everything else reaches the wrapped protocol. Scheduler ticks addressed to
// this layer (optimization rounds, handshake expiry sweeps) are recognized
// by their kind; every other tick descends to the wrapped protocol.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	switch m.Type {
	case msg.Tick:
		if from == n.self {
			switch m.Round {
			case msg.TickXBotOptimize:
				n.tryOptimize()
				return
			case msg.TickXBotExpire:
				n.sweep()
				return
			}
		}
		n.inner.Deliver(from, m)
	case msg.XBotOptimization:
		n.onOptimization(from, m)
	case msg.XBotOptimizationReply:
		n.onOptimizationReply(from, m)
	case msg.XBotReplace:
		n.onReplace(from, m)
	case msg.XBotReplaceReply:
		n.onReplaceReply(from, m)
	case msg.XBotSwitch:
		n.onSwitch(from, m)
	case msg.XBotSwitchReply:
		n.onSwitchReply(from, m)
	case msg.XBotDisconnectWait:
		n.onDisconnectWait(from)
	default:
		n.inner.Deliver(from, m)
	}
}

// OnCycle implements peer.Membership: the wrapped protocol's cycle runs
// first (shuffle, repair), then — in cycle-driven mode, every Period
// cycles — one optimization attempt starts. With Config.Interval set the
// optimization cadence and handshake expiry ride the scheduler instead.
func (n *Node) OnCycle() {
	n.inner.OnCycle()
	if n.cfg.Interval != 0 {
		return
	}
	n.cycles++
	if n.cycles%n.cfg.Period == 0 {
		n.tryOptimize()
	}
}

// --- initiator role ---------------------------------------------------------

// tryOptimize starts one optimization round: probe candidates from the
// passive view, pick the cheapest, and propose replacing the costliest
// non-protected active link if the exchange is an improvement.
func (n *Node) tryOptimize() {
	if n.pending != nil || !n.inner.ActiveFull() {
		return
	}
	old, oldCost, ok := n.replaceable(n.inner.Active(), id.Nil)
	if !ok {
		return
	}
	candidate, candCost, ok := n.bestCandidate()
	if !ok || candCost >= oldCost {
		return
	}
	if n.send(candidate, msg.Message{
		Type:    msg.XBotOptimization,
		Sender:  n.self,
		Subject: old,
		CostOld: oldCost,
		CostNew: candCost,
	}) {
		n.pending = &initState{old: old, candidate: candidate, deadline: n.armExpiry()}
		n.stats.Attempts++
	}
}

// costKnown reports whether the oracle holds a trustworthy estimate for the
// local node's link to peer. Oracles without the CostKnower extension (the
// simulator's latency models) know every link.
func (n *Node) costKnown(peer id.ID) bool {
	if k, ok := n.oracle.(CostKnower); ok {
		return k.KnownCost(n.self, peer)
	}
	return true
}

// bestCandidate samples Config.Candidates passive members, skips the
// unreachable and already-active ones, and returns the cheapest.
func (n *Node) bestCandidate() (id.ID, uint64, bool) {
	passive := n.inner.Passive()
	r := n.env.Rand()
	r.Shuffle(len(passive), func(i, j int) { passive[i], passive[j] = passive[j], passive[i] })
	var (
		best     id.ID
		bestCost uint64
		found    bool
	)
	probed := 0
	for _, p := range passive {
		if probed >= n.cfg.Candidates {
			break
		}
		if p == n.self || n.inner.ActiveContains(p) {
			continue
		}
		probed++
		if n.env.Probe(p) != nil {
			continue // dead candidate; core's own probes purge it eventually
		}
		// Query the cost before the known-check: a measuring oracle uses the
		// query to start measuring the link, so the next attempt is informed.
		c := n.oracle.Cost(n.self, p)
		if !n.costKnown(p) {
			continue
		}
		if !found || c < bestCost {
			best, bestCost, found = p, c, true
		}
	}
	return best, bestCost, found
}

// replaceable returns the costliest active link this node is willing to
// dissolve — skipping exclude and protected (unbiased-floor) links — along
// with its cost.
func (n *Node) replaceable(active []id.ID, exclude id.ID) (id.ID, uint64, bool) {
	type link struct {
		peer id.ID
		cost uint64
	}
	links := make([]link, 0, len(active))
	for _, p := range active {
		cost := n.oracle.Cost(n.self, p)
		if !n.costKnown(p) {
			// Never rank — let alone dissolve — a link the oracle has no
			// estimate for; the Cost query above started its measurement.
			continue
		}
		links = append(links, link{peer: p, cost: cost})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].cost != links[j].cost {
			return links[i].cost > links[j].cost
		}
		return links[i].peer > links[j].peer // deterministic under equal costs
	})
	for _, l := range links {
		if l.peer != exclude && !n.protected(l.peer) {
			return l.peer, l.cost, true
		}
	}
	return id.Nil, 0, false
}

// markBiased records that the active link to peer was created by the
// optimizer rather than by the membership protocol's random mechanisms.
func (n *Node) markBiased(peer id.ID) {
	if n.inner.ActiveContains(peer) {
		n.biased[peer] = true
	}
}

// demote dissolves the active link to peer and clears its bias mark
// immediately: if the membership protocol re-admits the same peer through
// its own random mechanisms — possibly before the next reconcileBias runs —
// that new link is unbiased again and must count toward the protection
// floor.
func (n *Node) demote(peer id.ID) bool {
	delete(n.biased, peer)
	return n.inner.DemoteActive(peer)
}

// reconcileBias prunes bias marks for links no longer in the active view:
// whatever replaces them (join, repair, shuffle promotion) is random again.
func (n *Node) reconcileBias() {
	for p := range n.biased {
		if !n.inner.ActiveContains(p) {
			delete(n.biased, p)
		}
	}
}

// protected reports whether dissolving the link to peer is forbidden: the
// link is unbiased and the node is at (or below) its ProtectTopK floor of
// unbiased links. Biased links — created by optimization — are always
// negotiable.
func (n *Node) protected(peer id.ID) bool {
	n.reconcileBias()
	if n.biased[peer] {
		return false
	}
	unbiased := len(n.inner.Active()) - len(n.biased)
	return unbiased <= n.cfg.ProtectTopK
}

// onOptimizationReply closes the initiator's handshake: on acceptance the
// candidate link is committed and the old link — if the 4-node path has not
// already dissolved it via DISCONNECTWAIT — is torn down directly.
func (n *Node) onOptimizationReply(from id.ID, m msg.Message) {
	st := n.pending
	if st == nil || st.candidate != from {
		return // stale or duplicated reply
	}
	n.pending = nil
	if !m.Accept {
		n.stats.SwapsRejected++
		return
	}
	if n.inner.ActiveContains(st.old) {
		// Direct-accept path: the candidate had a free slot, so nobody told
		// the old neighbor. Dissolve the link ourselves.
		n.send(st.old, msg.Message{Type: msg.XBotDisconnectWait, Sender: n.self})
		n.demote(st.old)
	}
	n.inner.PromoteActive(from)
	n.markBiased(from)
	n.stats.SwapsCompleted++
}

// --- candidate role ---------------------------------------------------------

// onOptimization evaluates a proposal from initiator i. A free active slot
// accepts immediately; a full view delegates to the neighbor d this node
// would evict, provided trading d for i is itself an improvement.
func (n *Node) onOptimization(from id.ID, m msg.Message) {
	if from == n.self || from.IsNil() || n.inner.ActiveContains(from) {
		// Already linked (or malformed): nothing to optimize.
		n.send(from, msg.Message{
			Type: msg.XBotOptimizationReply, Sender: n.self, Subject: m.Subject,
		})
		return
	}
	if !n.inner.ActiveFull() {
		n.inner.PromoteActive(from)
		n.markBiased(from)
		n.send(from, msg.Message{
			Type: msg.XBotOptimizationReply, Sender: n.self, Subject: m.Subject, Accept: true,
		})
		return
	}
	evictee, evicteeCost, ok := n.replaceable(n.inner.Active(), from)
	initiatorCost := n.oracle.Cost(n.self, from)
	if !ok || !n.costKnown(from) || initiatorCost >= evicteeCost || n.asCandidate[from] != nil {
		n.send(from, msg.Message{
			Type: msg.XBotOptimizationReply, Sender: n.self, Subject: m.Subject,
		})
		return
	}
	if n.send(evictee, msg.Message{
		Type:    msg.XBotReplace,
		Sender:  n.self,
		Subject: m.Subject,     // o, the initiator's old neighbor
		Nodes:   []id.ID{from}, // i, the initiator
		CostOld: m.CostOld,     // cost(i, o), relayed
		CostNew: m.CostNew,     // cost(i, c), relayed
	}) {
		n.asCandidate[from] = &candState{old: m.Subject, evictee: evictee, deadline: n.armExpiry()}
	} else {
		// The evictee died under us; the send already triggered repair.
		n.send(from, msg.Message{
			Type: msg.XBotOptimizationReply, Sender: n.self, Subject: m.Subject,
		})
	}
}

// onReplaceReply completes the candidate's side of the 4-node path: on
// acceptance the evictee link is gone (d tore it down) and the initiator
// link is committed.
func (n *Node) onReplaceReply(from id.ID, m msg.Message) {
	initiator := m.Subject
	st := n.asCandidate[initiator]
	if st == nil || st.evictee != from {
		return
	}
	delete(n.asCandidate, initiator)
	if !m.Accept {
		n.send(initiator, msg.Message{
			Type: msg.XBotOptimizationReply, Sender: n.self, Subject: st.old,
		})
		return
	}
	if n.inner.ActiveContains(st.evictee) {
		// Under FIFO delivery d's DISCONNECTWAIT arrives first; under
		// reordering commit the demotion here.
		n.demote(st.evictee)
	}
	n.inner.PromoteActive(initiator)
	n.markBiased(initiator)
	n.send(initiator, msg.Message{
		Type: msg.XBotOptimizationReply, Sender: n.self, Subject: st.old, Accept: true,
	})
}

// --- disconnected role ------------------------------------------------------

// onReplace evaluates the swap from d's perspective: accept only when the
// total cost of the two new links beats the two old ones, the candidate link
// is not protected, and the initiator's old neighbor is reachable.
func (n *Node) onReplace(from id.ID, m msg.Message) {
	n.stats.ReplacesHandled++
	if len(m.Nodes) != 1 {
		return // malformed
	}
	initiator, old := m.Nodes[0], m.Subject
	reject := func() {
		n.send(from, msg.Message{
			Type: msg.XBotReplaceReply, Sender: n.self, Subject: initiator,
		})
	}
	if !n.inner.ActiveContains(from) || n.protected(from) ||
		n.inner.ActiveContains(old) || old == n.self ||
		n.asDisc[initiator] != nil {
		reject()
		return
	}
	if n.env.Probe(old) != nil {
		reject()
		return
	}
	// The swap dissolves {i–o, c–d} and creates {i–c, d–o}: accept only on a
	// strict total-cost improvement (this also rules out swap oscillation).
	// Both locally measured terms must be genuine estimates — evaluating the
	// condition with an unknown-cost sentinel would accept or reject swaps
	// on no evidence (the Cost queries start the measurements either way).
	costDO := n.oracle.Cost(n.self, old)
	costCD := n.oracle.Cost(n.self, from)
	if !n.costKnown(old) || !n.costKnown(from) {
		reject()
		return
	}
	if m.CostNew+costDO >= m.CostOld+costCD {
		reject()
		return
	}
	if n.send(old, msg.Message{
		Type:    msg.XBotSwitch,
		Sender:  n.self,
		Subject: initiator,
		Nodes:   []id.ID{from}, // c, the candidate
	}) {
		n.asDisc[initiator] = &discState{candidate: from, old: old, deadline: n.armExpiry()}
	} else {
		reject()
	}
}

// onSwitchReply completes d's side: on acceptance the candidate link is
// dissolved (DISCONNECTWAIT) and the link to the initiator's old neighbor is
// committed; either way the outcome is relayed to the candidate.
func (n *Node) onSwitchReply(from id.ID, m msg.Message) {
	initiator := m.Subject
	st := n.asDisc[initiator]
	if st == nil || st.old != from {
		return
	}
	delete(n.asDisc, initiator)
	if m.Accept {
		if n.inner.ActiveContains(st.candidate) {
			n.send(st.candidate, msg.Message{Type: msg.XBotDisconnectWait, Sender: n.self})
			n.demote(st.candidate)
		}
		n.inner.PromoteActive(from)
		n.markBiased(from)
	}
	n.send(st.candidate, msg.Message{
		Type: msg.XBotReplaceReply, Sender: n.self, Subject: initiator, Accept: m.Accept,
	})
}

// --- old-neighbor role ------------------------------------------------------

// onSwitch is the last negotiation step: o trades its link to the initiator
// for a link to d, unless the initiator link is protected or already gone.
func (n *Node) onSwitch(from id.ID, m msg.Message) {
	n.stats.SwitchesHandled++
	initiator := m.Subject
	accept := n.inner.ActiveContains(initiator) &&
		!n.inner.ActiveContains(from) &&
		!n.protected(initiator)
	if accept {
		n.send(initiator, msg.Message{Type: msg.XBotDisconnectWait, Sender: n.self})
		n.demote(initiator)
		n.inner.PromoteActive(from)
		n.markBiased(from)
	}
	n.send(from, msg.Message{
		Type: msg.XBotSwitchReply, Sender: n.self, Subject: initiator, Accept: accept,
	})
}

// onDisconnectWait dissolves a link at the request of an optimizing peer:
// the peer is demoted to the passive view (it is alive and useful as a
// backup) without the repair kick a failure or DISCONNECT would trigger —
// the in-flight swap delivers a replacement link, and if it does not, the
// next cycle repairs normally.
func (n *Node) onDisconnectWait(from id.ID) {
	n.stats.DisconnectWaits++
	n.demote(from)
	if n.pending != nil && n.pending.old == from {
		// Our own swap's teardown arriving before the candidate's reply:
		// expected, keep waiting for the reply.
		return
	}
}

// --- shared plumbing --------------------------------------------------------

// send transmits m to dst, reporting proven-down peers to the wrapped
// protocol (X-BOT traffic doubles as a failure detector exactly like
// broadcast traffic does) and abandoning any handshake state involving the
// dead peer. Other send errors (queue-overflow degradation) lose the message
// without indicting the link; the handshake expiry sweep reclaims the state.
func (n *Node) send(dst id.ID, m msg.Message) bool {
	if dst.IsNil() || dst == n.self {
		return false
	}
	if err := n.env.Send(dst, m); err != nil {
		if errors.Is(err, peer.ErrPeerDown) {
			n.dropPeerState(dst)
			n.inner.OnPeerDown(dst)
		}
		return false
	}
	return true
}

// dropPeerState abandons handshake state that references peerID in any role.
func (n *Node) dropPeerState(peerID id.ID) {
	if st := n.pending; st != nil && (st.candidate == peerID || st.old == peerID) {
		n.pending = nil
	}
	for _, i := range sortedKeys(n.asCandidate) {
		st := n.asCandidate[i]
		if i == peerID || st.evictee == peerID || st.old == peerID {
			delete(n.asCandidate, i)
		}
	}
	for _, i := range sortedKeys(n.asDisc) {
		st := n.asDisc[i]
		if i == peerID || st.candidate == peerID || st.old == peerID {
			delete(n.asDisc, i)
		}
	}
}

// armExpiry stamps a new handshake's deadline and schedules the sweep that
// reclaims its state if the counterpart crashes or the reply is lost.
func (n *Node) armExpiry() uint64 {
	n.env.After(n.cfg.PendingTTL, msg.Message{
		Type: msg.Tick, Sender: n.self, Round: msg.TickXBotExpire,
	})
	return n.env.Now() + n.cfg.PendingTTL
}

// sweep drops every outstanding handshake whose deadline has passed. Sweeps
// fired by one handshake's timer never reap a younger handshake: its
// deadline is strictly later than the sweeping tick.
func (n *Node) sweep() {
	now := n.env.Now()
	if st := n.pending; st != nil && now >= st.deadline {
		n.pending = nil
		n.stats.Expired++
	}
	for _, i := range sortedKeys(n.asCandidate) {
		if now >= n.asCandidate[i].deadline {
			delete(n.asCandidate, i)
			n.stats.Expired++
		}
	}
	for _, i := range sortedKeys(n.asDisc) {
		if now >= n.asDisc[i].deadline {
			delete(n.asDisc, i)
			n.stats.Expired++
		}
	}
}

// sortedKeys returns the map keys ascending, keeping iteration deterministic
// under a fixed seed.
func sortedKeys[V any](m map[id.ID]V) []id.ID {
	out := make([]id.ID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
