package xbot_test

// End-to-end tests: X-BOT over real HyParView cores on the deterministic
// network simulator, measured against an oblivious baseline built from the
// same seed.

import (
	"testing"

	"hyparview/internal/core"
	"hyparview/internal/id"
	"hyparview/internal/netsim"
	"hyparview/internal/peer"
	"hyparview/internal/xbot"
)

// buildOverlay joins n HyParView nodes one by one through node 1 and runs
// cycles membership cycles. With optimize set, every node runs an X-BOT
// layer against the model's cost oracle.
func buildOverlay(t *testing.T, n, cycles int, seed uint64, optimize bool) (*netsim.Sim, map[id.ID]peer.Membership, *netsim.Euclidean) {
	t.Helper()
	s := netsim.New(seed)
	model := netsim.NewEuclidean(seed)
	members := make(map[id.ID]peer.Membership, n)
	for i := 0; i < n; i++ {
		nodeID := id.ID(i + 1)
		s.Add(nodeID, func(env peer.Env) peer.Process {
			var m peer.Membership = core.New(env, core.Config{})
			if optimize {
				m = xbot.New(env, m.(*core.Node), xbot.Config{}, model)
			}
			members[nodeID] = m
			return m
		})
		if i > 0 {
			j := members[nodeID].(interface{ Join(id.ID) error })
			if err := j.Join(1); err != nil {
				t.Fatalf("join of %v failed: %v", nodeID, err)
			}
			s.Drain()
		}
	}
	s.RunCycles(cycles)
	s.Drain()
	return s, members, model
}

// meanLinkCost averages the oracle cost over every directed active link.
func meanLinkCost(s *netsim.Sim, members map[id.ID]peer.Membership, model *netsim.Euclidean) float64 {
	var sum float64
	var links int
	for _, nodeID := range s.AliveIDs() {
		for _, p := range members[nodeID].Neighbors() {
			sum += float64(model.Cost(nodeID, p))
			links++
		}
	}
	if links == 0 {
		return 0
	}
	return sum / float64(links)
}

// overlayStats returns the symmetry fraction and the mean out-degree.
func overlayStats(s *netsim.Sim, members map[id.ID]peer.Membership) (symmetry, meanDegree float64) {
	neighbors := make(map[id.ID]map[id.ID]bool)
	var links, symmetric, degreeSum int
	for _, nodeID := range s.AliveIDs() {
		set := make(map[id.ID]bool)
		for _, p := range members[nodeID].Neighbors() {
			set[p] = true
		}
		neighbors[nodeID] = set
		degreeSum += len(set)
	}
	for nodeID, set := range neighbors {
		for p := range set {
			links++
			if back, ok := neighbors[p]; ok && back[nodeID] {
				symmetric++
			}
		}
	}
	if links > 0 {
		symmetry = float64(symmetric) / float64(links)
	}
	meanDegree = float64(degreeSum) / float64(len(neighbors))
	return symmetry, meanDegree
}

func TestXBotReducesLinkCostOverHyParView(t *testing.T) {
	const n, cycles, seed = 200, 40, 11
	sObl, mObl, model := buildOverlay(t, n, cycles, seed, false)
	sOpt, mOpt, _ := buildOverlay(t, n, cycles, seed, true)

	oblCost := meanLinkCost(sObl, mObl, model)
	optCost := meanLinkCost(sOpt, mOpt, model)
	if oblCost <= 0 {
		t.Fatal("baseline overlay has no links")
	}
	if optCost >= 0.7*oblCost {
		t.Errorf("mean link cost %.1f not ≥30%% below oblivious %.1f", optCost, oblCost)
	}

	oblSym, oblDeg := overlayStats(sObl, mObl)
	optSym, optDeg := overlayStats(sOpt, mOpt)
	if optSym < oblSym-0.02 {
		t.Errorf("optimization broke symmetry: %.3f vs baseline %.3f", optSym, oblSym)
	}
	if optDeg < oblDeg-0.1 || optDeg > oblDeg+0.1 {
		t.Errorf("optimization changed degrees: %.2f vs baseline %.2f", optDeg, oblDeg)
	}
}

func TestXBotSwapActivityObservable(t *testing.T) {
	s, members, _ := buildOverlay(t, 120, 30, 3, true)
	var attempts, swaps uint64
	for _, nodeID := range s.AliveIDs() {
		xn := members[nodeID].(*xbot.Node)
		st := xn.Stats()
		attempts += st.Attempts
		swaps += st.SwapsCompleted
	}
	if attempts == 0 {
		t.Fatal("no optimization attempts across the whole overlay")
	}
	if swaps == 0 {
		t.Fatal("no completed swaps across the whole overlay")
	}
	t.Logf("attempts=%d swaps=%d", attempts, swaps)
}

func TestXBotDeterministicUnderSeed(t *testing.T) {
	run := func() (float64, uint64) {
		s, members, model := buildOverlay(t, 100, 20, 9, true)
		var swaps uint64
		for _, nodeID := range s.AliveIDs() {
			swaps += members[nodeID].(*xbot.Node).Stats().SwapsCompleted
		}
		return meanLinkCost(s, members, model), swaps
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Errorf("identical seeds diverged: (%.3f, %d) vs (%.3f, %d)", c1, s1, c2, s2)
	}
}

func TestXBotSurvivesMassFailure(t *testing.T) {
	s, members, _ := buildOverlay(t, 150, 30, 5, true)
	// Kill 30% of the nodes; the optimizer must not wedge view repair.
	ids := s.AliveIDs()
	r := s.Rand()
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, victim := range ids[:len(ids)*30/100] {
		s.Fail(victim)
	}
	s.Drain()
	s.RunCycles(10)
	s.Drain()
	for _, nodeID := range s.AliveIDs() {
		if len(members[nodeID].Neighbors()) == 0 {
			t.Errorf("node %v isolated after failures + repair", nodeID)
		}
		for _, p := range members[nodeID].Neighbors() {
			if !s.Alive(p) {
				t.Errorf("node %v keeps dead neighbor %v", nodeID, p)
			}
		}
	}
}

// buildPeriodicOverlay is buildOverlay's scheduler-driven twin: every core
// schedules its own ΔT shuffle round and every optimizer its own attempt
// cadence on the simulator's virtual clock; stabilization is RunFor, not
// external cycles.
func buildPeriodicOverlay(t *testing.T, n int, interval, duration, seed uint64) (*netsim.Sim, map[id.ID]peer.Membership, *netsim.Euclidean) {
	t.Helper()
	s := netsim.New(seed)
	model := netsim.NewEuclidean(seed)
	members := make(map[id.ID]peer.Membership, n)
	for i := 0; i < n; i++ {
		nodeID := id.ID(i + 1)
		s.Add(nodeID, func(env peer.Env) peer.Process {
			hv := core.New(env, core.Config{ShuffleInterval: interval})
			m := peer.Membership(xbot.New(env, hv, xbot.Config{Interval: interval}, model))
			members[nodeID] = m
			return m
		})
		if i > 0 {
			j := members[nodeID].(interface{ Join(id.ID) error })
			if err := j.Join(1); err != nil {
				t.Fatalf("join of %v failed: %v", nodeID, err)
			}
			s.Drain()
		}
	}
	s.RunFor(duration)
	return s, members, model
}

// TestScheduledOptimizationRounds runs the full stack in scheduler-driven
// periodic mode: optimization attempts are timer events on the virtual
// clock, and they must still cut the overlay's link cost against an
// oblivious baseline built from the same seed.
func TestScheduledOptimizationRounds(t *testing.T) {
	const n, seed = 150, 11
	const interval, rounds = 100, 40
	sObl, mObl, model := buildOverlay(t, n, rounds, seed, false)
	sOpt, mOpt, _ := buildPeriodicOverlay(t, n, interval, interval*rounds, seed)

	if got := sOpt.Now(); got < interval*rounds {
		t.Fatalf("virtual clock at %d, want >= %d (RunFor drives periodic rounds)", got, interval*rounds)
	}
	var attempts uint64
	for _, nodeID := range sOpt.AliveIDs() {
		attempts += mOpt[nodeID].(*xbot.Node).Stats().Attempts
	}
	if attempts == 0 {
		t.Fatal("no scheduler-driven optimization attempts")
	}
	oblCost := meanLinkCost(sObl, mObl, model)
	optCost := meanLinkCost(sOpt, mOpt, model)
	if oblCost <= 0 {
		t.Fatal("baseline overlay has no links")
	}
	if optCost >= 0.8*oblCost {
		t.Errorf("periodic-mode mean link cost %.1f not ≥20%% below oblivious %.1f", optCost, oblCost)
	}
}
