// Package rng provides a small, fast, deterministic random number generator
// used throughout the simulator and the protocol implementations.
//
// Determinism matters twice here: the paper's methodology aggregates multiple
// seeded simulation runs, and our test suite asserts that identical seeds
// produce identical event traces. The generator is xoshiro256**, seeded via
// splitmix64, matching the recommendation of Blackman & Vigna. It is NOT
// cryptographically secure and must never be used for keys.
package rng

// Rand is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; give each goroutine (or simulated node) its own stream via
// Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64 so that small or
// similar seeds still yield well-mixed states.
func New(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A state of all zeros would be a fixed point; splitmix64 cannot produce
	// four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's nearly
// divisionless method. It panics when n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		// Rejection sampling on the low word keeps the result unbiased.
		thresh := uint64(-n) % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split derives an independent generator from this one. Streams produced by
// distinct Split calls are statistically independent for simulation purposes.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}
