package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverged at step %d: %d != %d", i, x, y)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestSeedReset(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Seed did not reset stream at %d", i)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestUint64nCoversRange(t *testing.T) {
	r := New(9)
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		seen[r.Uint64n(8)] = true
	}
	if len(seen) != 8 {
		t.Errorf("Uint64n(8) produced %d distinct values, want 8", len(seen))
	}
}

func TestUint64nRoughlyUniform(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("value %d: count %d deviates more than 10%% from %f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	seen := make(map[int]bool)
	for _, x := range xs {
		got += x
		seen[x] = true
	}
	if got != sum || len(seen) != len(xs) {
		t.Errorf("Shuffle corrupted slice: %v", xs)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("Split stream correlates with parent: %d/100 equal", same)
	}
}

func TestUint64nNeverExceedsBound(t *testing.T) {
	f := func(seed uint64, bound uint64) bool {
		if bound == 0 {
			bound = 1
		}
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Uint64n(bound) >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestBoolBalanced(t *testing.T) {
	r := New(23)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Errorf("Bool true rate = %d/10000", trues)
	}
}
