package msg

import (
	"reflect"
	"strings"
	"testing"

	"hyparview/internal/id"
)

func TestTypeString(t *testing.T) {
	tests := []struct {
		give Type
		want string
	}{
		{Join, "JOIN"},
		{ForwardJoin, "FORWARDJOIN"},
		{Disconnect, "DISCONNECT"},
		{Neighbor, "NEIGHBOR"},
		{NeighborReply, "NEIGHBORREPLY"},
		{Shuffle, "SHUFFLE"},
		{ShuffleReply, "SHUFFLEREPLY"},
		{Gossip, "GOSSIP"},
		{ScampHeartbeat, "SCAMPHEARTBEAT"},
		{PlumtreeGossip, "PLUMTREEGOSSIP"},
		{PlumtreeIHave, "PLUMTREEIHAVE"},
		{PlumtreeGraft, "PLUMTREEGRAFT"},
		{PlumtreePrune, "PLUMTREEPRUNE"},
		{Type(0), "Type(0)"},
		{Type(200), "Type(200)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestTypeValid(t *testing.T) {
	if Type(0).Valid() {
		t.Error("Type(0) reported valid")
	}
	if !Join.Valid() || !ScampHeartbeat.Valid() || !PlumtreePrune.Valid() {
		t.Error("known types reported invalid")
	}
	if maxType.Valid() {
		t.Error("maxType reported valid")
	}
}

func TestPriorityString(t *testing.T) {
	if HighPriority.String() != "high" || LowPriority.String() != "low" {
		t.Error("priority names wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Message{
		Type:      Shuffle,
		Sender:    1,
		Nodes:     []id.ID{1, 2, 3},
		Entries:   []Entry{{Node: 4, Age: 5}},
		Payload:   []byte{9, 9},
		Directory: []DirEntry{{Node: 1, Addr: "a"}},
	}
	c := m.Clone()
	c.Nodes[0] = 99
	c.Entries[0].Node = 99
	c.Payload[0] = 0
	c.Directory[0].Addr = "b"
	if m.Nodes[0] != 1 || m.Entries[0].Node != 4 || m.Payload[0] != 9 || m.Directory[0].Addr != "a" {
		t.Error("Clone shares memory with original")
	}
}

func TestCloneNilSlicesStayNil(t *testing.T) {
	c := Message{Type: Join}.Clone()
	if c.Nodes != nil || c.Entries != nil || c.Payload != nil || c.Directory != nil {
		t.Error("Clone materialized nil slices")
	}
}

func TestReferencedIDs(t *testing.T) {
	m := Message{
		Type:    Shuffle,
		Sender:  1,
		Subject: 2,
		Nodes:   []id.ID{3, 4},
		Entries: []Entry{{Node: 5}},
	}
	want := []id.ID{1, 2, 3, 4, 5}
	if got := m.ReferencedIDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("ReferencedIDs() = %v, want %v", got, want)
	}
}

func TestReferencedIDsSkipsNil(t *testing.T) {
	m := Message{Type: Join}
	if got := m.ReferencedIDs(); len(got) != 0 {
		t.Errorf("ReferencedIDs() = %v, want empty", got)
	}
}

func TestMessageString(t *testing.T) {
	s := Message{Type: ForwardJoin, Sender: 1, Subject: 2, TTL: 6}.String()
	for _, frag := range []string{"FORWARDJOIN", "n1", "n2", "ttl=6"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}
