package msg

import (
	"testing"

	"hyparview/internal/id"
)

func benchMessage() Message {
	return Message{
		Type:    Shuffle,
		Sender:  12345,
		Subject: 12345,
		TTL:     6,
		Nodes:   []id.ID{1, 2, 3, 4, 5, 6, 7, 8}, // paper's shuffle list size
	}
}

func BenchmarkEncodeShuffle(b *testing.B) {
	m := benchMessage()
	buf := make([]byte, 0, EncodedSize(m))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
}

func BenchmarkDecodeShuffle(b *testing.B) {
	buf := Encode(benchMessage())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeGossip1K(b *testing.B) {
	m := Message{Type: Gossip, Sender: 1, Round: 42, Payload: make([]byte, 1024)}
	buf := make([]byte, 0, EncodedSize(m))
	b.SetBytes(int64(EncodedSize(m)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], m)
	}
}
