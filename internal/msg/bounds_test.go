package msg

import (
	"errors"
	"testing"

	"hyparview/internal/id"
)

// Hostile-frame bounds: a forged length field on a short frame must be
// rejected by arithmetic alone — before any allocation sized by the lie.
// These pin the decode-side defences the adversarial tamperers probe.

// dirCountOffset locates the directory count field of an encoding with no
// variable sections: fixed header, then empty Nodes, Entries and Payload.
func dirCountOffset(t *testing.T) ([]byte, int) {
	t.Helper()
	buf := Encode(Message{Type: Gossip, Sender: 1})
	// header + nNodes(2) + nEntries(2) + nPayload(4) + nDir(2)
	if len(buf) != headerSize+10 {
		t.Fatalf("unexpected frame size %d, layout changed", len(buf))
	}
	return buf, len(buf) - 2
}

func TestDecodeForgedDirectoryCountRejectedWithoutAllocation(t *testing.T) {
	buf, off := dirCountOffset(t)
	// Claim maxList directory entries on a frame holding zero bytes of them.
	buf[off] = byte(maxList >> 8 & 0xff)
	buf[off+1] = byte(maxList & 0xff)
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := Decode(buf); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("Decode error = %v, want ErrShortBuffer", err)
		}
	})
	if allocs != 0 {
		t.Errorf("hostile frame cost %.0f allocs/op, want 0", allocs)
	}
}

func TestDecodeOversizedDirectoryCountRejected(t *testing.T) {
	buf, off := dirCountOffset(t)
	buf[off] = 0xff
	buf[off+1] = 0xff
	if _, _, err := Decode(buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Decode error = %v, want ErrTooLarge", err)
	}
}

func TestDecodeForgedAddrLengthRejected(t *testing.T) {
	buf := Encode(Message{Type: Join, Sender: 1, Directory: []DirEntry{{Node: 2, Addr: "h:1"}}})
	// The 2-byte addr length sits 10 bytes from the end ("h:1" + its 2-byte
	// length prefix after the 8-byte node id).
	off := len(buf) - 3 - 2
	buf[off] = 0xff
	buf[off+1] = 0xff
	if _, _, err := Decode(buf); err == nil {
		t.Error("Decode accepted a forged 65535-byte addr on a 3-byte frame")
	}
}

func TestDecodeTruncatedTopicRejectedWithoutAllocation(t *testing.T) {
	// A frame cut inside the 4-byte topic tag (the last header field) must
	// fall to the fixed-header length check before any list count is read.
	buf := Encode(Message{Type: Gossip, Sender: 1, Topic: 9, Payload: []byte("tp")})
	short := buf[:headerSize-2]
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := Decode(short); !errors.Is(err, ErrShortBuffer) {
			t.Fatalf("Decode error = %v, want ErrShortBuffer", err)
		}
	})
	if allocs != 0 {
		t.Errorf("truncated topic frame cost %.0f allocs/op, want 0", allocs)
	}
}

func TestDecodeForgedCountsNeverOverAllocate(t *testing.T) {
	// Sweep a forged big-endian uint16 through every offset of a small valid
	// frame: whatever field it lands on, a short frame must never cost more
	// than the frame's own size in allocations (no length-field-sized makes).
	base := Encode(Message{Type: Shuffle, Sender: 1, Nodes: []id.ID{2, 3}, Payload: []byte("xy")})
	for off := 0; off+2 <= len(base); off++ {
		buf := append([]byte(nil), base...)
		buf[off] = 0x3f
		buf[off+1] = 0xff
		allocs := testing.AllocsPerRun(20, func() {
			_, _, _ = Decode(buf)
		})
		// A successful decode of a mutated-but-valid frame may allocate its
		// (frame-bounded) slices; a failed one must allocate nothing big. In
		// both cases a handful of small allocations is the ceiling.
		if allocs > 8 {
			t.Errorf("offset %d: %.0f allocs/op decoding a %d-byte frame", off, allocs, len(buf))
		}
	}
}
