package msg

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyparview/internal/id"
)

// Codec errors surfaced to transport callers.
var (
	// ErrShortBuffer indicates the encoded form was truncated.
	ErrShortBuffer = errors.New("msg: short buffer")
	// ErrBadType indicates an unknown message type byte.
	ErrBadType = errors.New("msg: unknown message type")
	// ErrTooLarge indicates a length field exceeding sane bounds.
	ErrTooLarge = errors.New("msg: length field too large")
)

// Wire format (all integers big-endian):
//
//	type      uint8
//	sender    uint64
//	subject   uint64
//	ttl       uint8
//	priority  uint8
//	accept    uint8
//	round     uint64
//	hops      uint16
//	costOld   uint64
//	costNew   uint64
//	topic     uint32
//	nNodes    uint16, then nNodes * uint64
//	nEntries  uint16, then nEntries * (uint64 id + uint16 age)
//	nPayload  uint32, then payload bytes
//	nDir      uint16, then nDir * (uint64 id + uint16 addrLen + addr bytes)
//
// The fixed header is 50 bytes. maxList bounds list lengths defensively: no
// protocol in this repository exchanges more than a few dozen identifiers.
const (
	headerSize = 1 + 8 + 8 + 1 + 1 + 1 + 8 + 2 + 8 + 8 + 4
	maxList    = 1 << 14
	maxPayload = 1 << 26
	maxAddr    = 1 << 10
)

// AppendEncode appends the wire encoding of m to dst and returns the extended
// slice.
func AppendEncode(dst []byte, m Message) []byte {
	dst = append(dst, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Sender))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Subject))
	dst = append(dst, m.TTL, byte(m.Priority), boolByte(m.Accept))
	dst = binary.BigEndian.AppendUint64(dst, m.Round)
	dst = binary.BigEndian.AppendUint16(dst, m.Hops)
	dst = binary.BigEndian.AppendUint64(dst, m.CostOld)
	dst = binary.BigEndian.AppendUint64(dst, m.CostNew)
	dst = binary.BigEndian.AppendUint32(dst, m.Topic)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Nodes)))
	for _, n := range m.Nodes {
		dst = binary.BigEndian.AppendUint64(dst, uint64(n))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Entries)))
	for _, e := range m.Entries {
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Node))
		dst = binary.BigEndian.AppendUint16(dst, e.Age)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Payload)))
	dst = append(dst, m.Payload...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Directory)))
	for _, d := range m.Directory {
		dst = binary.BigEndian.AppendUint64(dst, uint64(d.Node))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(d.Addr)))
		dst = append(dst, d.Addr...)
	}
	return dst
}

// Encode returns the wire encoding of m.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, EncodedSize(m)), m)
}

// EncodedSize returns the exact number of bytes Encode will produce for m.
func EncodedSize(m Message) int { return m.EncodedSize() }

// EncodedSize returns the exact number of bytes Encode will produce. The
// pointer receiver matters on the simulator's per-send accounting path: a
// value receiver would copy the whole struct per call. The directory loop
// lives in a separate non-inlinable function so this common case (no
// directory) stays inline at the call site.
func (m *Message) EncodedSize() int {
	n := headerSize + 2 + 8*len(m.Nodes) + 2 + 10*len(m.Entries) + 4 + len(m.Payload) + 2
	if len(m.Directory) != 0 {
		n += directorySize(m.Directory)
	}
	return n
}

// directorySize returns the encoded size of the directory side table.
func directorySize(dir []DirEntry) int {
	n := 0
	for _, d := range dir {
		n += 10 + len(d.Addr)
	}
	return n
}

// Decode parses a message from buf, returning the message and the number of
// bytes consumed.
func Decode(buf []byte) (Message, int, error) {
	var m Message
	if len(buf) < headerSize+2 {
		return m, 0, ErrShortBuffer
	}
	off := 0
	m.Type = Type(buf[off])
	off++
	if !m.Type.Valid() {
		return m, 0, fmt.Errorf("%w: %d", ErrBadType, buf[0])
	}
	m.Sender = id.ID(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	m.Subject = id.ID(binary.BigEndian.Uint64(buf[off:]))
	off += 8
	m.TTL = buf[off]
	m.Priority = Priority(buf[off+1])
	m.Accept = buf[off+2] != 0
	off += 3
	m.Round = binary.BigEndian.Uint64(buf[off:])
	off += 8
	m.Hops = binary.BigEndian.Uint16(buf[off:])
	off += 2
	m.CostOld = binary.BigEndian.Uint64(buf[off:])
	off += 8
	m.CostNew = binary.BigEndian.Uint64(buf[off:])
	off += 8
	m.Topic = binary.BigEndian.Uint32(buf[off:])
	off += 4

	nNodes := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if nNodes > maxList {
		return m, 0, ErrTooLarge
	}
	if len(buf) < off+8*nNodes+2 {
		return m, 0, ErrShortBuffer
	}
	if nNodes > 0 {
		m.Nodes = make([]id.ID, nNodes)
		for i := range m.Nodes {
			m.Nodes[i] = id.ID(binary.BigEndian.Uint64(buf[off:]))
			off += 8
		}
	}

	nEntries := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if nEntries > maxList {
		return m, 0, ErrTooLarge
	}
	if len(buf) < off+10*nEntries+4 {
		return m, 0, ErrShortBuffer
	}
	if nEntries > 0 {
		m.Entries = make([]Entry, nEntries)
		for i := range m.Entries {
			m.Entries[i].Node = id.ID(binary.BigEndian.Uint64(buf[off:]))
			m.Entries[i].Age = binary.BigEndian.Uint16(buf[off+8:])
			off += 10
		}
	}

	nPayload := int(binary.BigEndian.Uint32(buf[off:]))
	off += 4
	if nPayload > maxPayload {
		return m, 0, ErrTooLarge
	}
	if len(buf) < off+nPayload {
		return m, 0, ErrShortBuffer
	}
	if nPayload > 0 {
		m.Payload = make([]byte, nPayload)
		copy(m.Payload, buf[off:off+nPayload])
		off += nPayload
	}

	if len(buf) < off+2 {
		return m, 0, ErrShortBuffer
	}
	nDir := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if nDir > maxList {
		return m, 0, ErrTooLarge
	}
	// Verify the buffer can hold at least the fixed part of every entry
	// before allocating: a 2-byte hostile frame claiming 16384 entries must
	// not cost a ~400KB allocation per frame.
	if len(buf) < off+10*nDir {
		return m, 0, ErrShortBuffer
	}
	if nDir > 0 {
		m.Directory = make([]DirEntry, nDir)
		for i := range m.Directory {
			if len(buf) < off+10 {
				return m, 0, ErrShortBuffer
			}
			m.Directory[i].Node = id.ID(binary.BigEndian.Uint64(buf[off:]))
			alen := int(binary.BigEndian.Uint16(buf[off+8:]))
			off += 10
			if alen > maxAddr {
				return m, 0, ErrTooLarge
			}
			if len(buf) < off+alen {
				return m, 0, ErrShortBuffer
			}
			m.Directory[i].Addr = string(buf[off : off+alen])
			off += alen
		}
	}
	return m, off, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
