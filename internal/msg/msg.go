// Package msg defines the wire messages exchanged by the membership and
// broadcast protocols, together with a compact binary codec.
//
// The message set is the union of what HyParView (paper §4, Algorithm 1),
// Cyclon, Scamp and the gossip broadcast layer need. A single shared message
// type keeps the simulator and the real TCP transport protocol-agnostic.
package msg

import (
	"fmt"

	"hyparview/internal/id"
)

// Type discriminates the protocol messages.
type Type uint8

// Message types. The numbering is part of the wire format; append only.
const (
	// HyParView membership (paper §4.2–§4.4).
	Join Type = iota + 1
	ForwardJoin
	Disconnect
	Neighbor
	NeighborReply
	Shuffle
	ShuffleReply

	// Gossip broadcast layer (paper §2.5, §5).
	Gossip
	GossipAck

	// Cyclon membership.
	CyclonShuffle
	CyclonShuffleReply
	CyclonJoinWalk

	// Scamp membership.
	ScampSubscribe
	ScampForwardSub
	ScampKept
	ScampUnsubscribe
	ScampHeartbeat

	// Plumtree broadcast layer (Leitão, Pereira, Rodrigues — "Epidemic
	// Broadcast Trees", SRDS 2007): eager payload push, lazy announcement,
	// and the two tree-repair control messages.
	PlumtreeGossip
	PlumtreeIHave
	PlumtreeGraft
	PlumtreePrune

	// X-BOT overlay optimization (Leitão, Marques, Pereira, Rodrigues —
	// "X-BOT: A Protocol for Resilient Optimization of Unstructured
	// Overlays", SRDS 2009): the 4-node coordinated swap handshake that
	// rewires HyParView's active views toward low-cost links. The initiator
	// asks a candidate to take the place of an expensive neighbor
	// (OPTIMIZATION); a full candidate delegates to the neighbor it would
	// evict (REPLACE), which negotiates with the initiator's old neighbor
	// (SWITCH); DISCONNECTWAIT closes a link without signalling failure.
	XBotOptimization
	XBotOptimizationReply
	XBotReplace
	XBotReplaceReply
	XBotSwitch
	XBotSwitchReply
	XBotDisconnectWait

	// RTT measurement for deployments. A PING carries a nonce in Round; the
	// receiver echoes it back in a PONG. The TCP agent's cost oracle times
	// the exchange and feeds an EWMA per peer, giving X-BOT the live RTT
	// estimates that the simulator gets from its latency model.
	Ping
	Pong

	// Tick is a scheduler-delivered local timer message (peer.Scheduler).
	// Environments deliver it to the local process with sender == self; it
	// never crosses the wire. Each protocol layer recognizes its own ticks
	// by the kind carried in Round (see the Tick* constants) and passes
	// every other kind down the stack, so one registration drives periodic
	// behavior at exactly one layer.
	Tick

	maxType
)

// Tick kinds, carried in Message.Round. The registry is shared across the
// protocol stack so that one layer's timer is never mistaken for another's as
// a tick descends from the broadcast layer to the membership core.
const (
	// TickShuffle drives one HyParView periodic round: shuffle plus active
	// view repair (internal/core, paper §4.2/§4.4).
	TickShuffle uint64 = iota + 1
	// TickXBotOptimize starts one X-BOT optimization attempt (internal/xbot).
	TickXBotOptimize
	// TickXBotExpire sweeps X-BOT's outstanding swap handshakes, dropping
	// the ones whose deadline has passed (internal/xbot).
	TickXBotExpire
	// TickPubSubFlush flushes the pub/sub router's pending publish batches
	// (internal/pubsub): every topic buffer that has not reached its size
	// threshold is broadcast now so batching trades bounded latency, never
	// unbounded latency, for bytes.
	TickPubSubFlush
)

var typeNames = [...]string{
	Join:               "JOIN",
	ForwardJoin:        "FORWARDJOIN",
	Disconnect:         "DISCONNECT",
	Neighbor:           "NEIGHBOR",
	NeighborReply:      "NEIGHBORREPLY",
	Shuffle:            "SHUFFLE",
	ShuffleReply:       "SHUFFLEREPLY",
	Gossip:             "GOSSIP",
	GossipAck:          "GOSSIPACK",
	CyclonShuffle:      "CYCLONSHUFFLE",
	CyclonShuffleReply: "CYCLONSHUFFLEREPLY",
	CyclonJoinWalk:     "CYCLONJOINWALK",
	ScampSubscribe:     "SCAMPSUBSCRIBE",
	ScampForwardSub:    "SCAMPFORWARDSUB",
	ScampKept:          "SCAMPKEPT",
	ScampUnsubscribe:   "SCAMPUNSUBSCRIBE",
	ScampHeartbeat:     "SCAMPHEARTBEAT",
	PlumtreeGossip:     "PLUMTREEGOSSIP",
	PlumtreeIHave:      "PLUMTREEIHAVE",
	PlumtreeGraft:      "PLUMTREEGRAFT",
	PlumtreePrune:      "PLUMTREEPRUNE",

	XBotOptimization:      "XBOTOPTIMIZATION",
	XBotOptimizationReply: "XBOTOPTIMIZATIONREPLY",
	XBotReplace:           "XBOTREPLACE",
	XBotReplaceReply:      "XBOTREPLACEREPLY",
	XBotSwitch:            "XBOTSWITCH",
	XBotSwitchReply:       "XBOTSWITCHREPLY",
	XBotDisconnectWait:    "XBOTDISCONNECTWAIT",

	Ping: "PING",
	Pong: "PONG",
	Tick: "TICK",
}

// String returns the conventional upper-case name of the message type.
func (t Type) String() string {
	if int(t) < len(typeNames) && typeNames[t] != "" {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t is a known message type.
func (t Type) Valid() bool { return t >= Join && t < maxType }

// Priority is carried by NEIGHBOR requests (paper §4.3).
type Priority uint8

// Neighbor request priorities.
const (
	// LowPriority requests are accepted only when the receiver has a free
	// active-view slot.
	LowPriority Priority = iota + 1
	// HighPriority requests are always accepted, evicting a random active
	// member if necessary. Sent when the requester's active view is empty.
	HighPriority
)

// String returns "low" or "high".
func (p Priority) String() string {
	if p == HighPriority {
		return "high"
	}
	return "low"
}

// Entry is a view entry exchanged by Cyclon shuffles: a node identifier
// tagged with its age in shuffle cycles.
type Entry struct {
	Node id.ID
	Age  uint16
}

// Message is the single wire-level message structure. Fields are used
// depending on Type; unused fields stay at their zero values and encode
// compactly.
//
// Ownership: Message is copied by value everywhere, and its slice fields are
// shared between those copies under the copy-on-write discipline documented
// on the peer package ("Message ownership"): a slice is frozen the moment the
// message is handed to an environment's Send, per-hop mutation touches only
// the scalar fields on a fresh struct copy, and whoever needs to modify a
// list copies it first. Broadcast fan-out therefore shares one payload buffer
// across every receiver instead of deep-copying per link.
type Message struct {
	Type Type

	// Sender is the node that emitted this hop of the message. For relayed
	// messages (FORWARDJOIN, SHUFFLE) it is the previous hop, not the origin.
	Sender id.ID

	// Subject is the node the message is about: the joiner in JOIN and
	// FORWARDJOIN, the origin in SHUFFLE, the subscriber in Scamp messages.
	Subject id.ID

	// TTL is the remaining time-to-live of random-walked messages.
	TTL uint8

	// Priority of a NEIGHBOR request.
	Priority Priority

	// Accept is the verdict carried by NEIGHBORREPLY.
	Accept bool

	// Nodes carries identifier lists (shuffle exchange contents, Scamp
	// forwarded views).
	Nodes []id.ID

	// Entries carries aged view entries for Cyclon shuffles.
	Entries []Entry

	// Round is the broadcast round / message identifier for GOSSIP.
	Round uint64

	// Hops counts overlay hops travelled by a GOSSIP message, used by the
	// evaluation to reproduce Table 1's "maximum hops to delivery".
	Hops uint16

	// Topic tags a GOSSIP/PLUMTREEGOSSIP round with the pub/sub topic it
	// belongs to. 0 means untagged (plain broadcast); the high bit is
	// reserved by internal/pubsub as its batch-frame flag, so application
	// topics are < 1<<31. Like Round it is a scalar: per-hop forwarding
	// copies it for free and the cached payload keeps its tag for GRAFT
	// retransmission.
	Topic uint32

	// CostOld and CostNew carry the link costs measured by an X-BOT
	// optimization initiator: the cost of the active link it wants to drop
	// (initiator–old neighbor) and of the link it wants to create
	// (initiator–candidate). They ride on XBOTOPTIMIZATION and are relayed
	// by XBOTREPLACE so the disconnected node can evaluate the 4-node swap
	// condition with only locally measurable additions.
	CostOld uint64
	CostNew uint64

	// Payload is the opaque application payload of a GOSSIP message.
	Payload []byte

	// Directory carries (identifier, dialable address) pairs for node
	// identifiers referenced by this message. The paper's identifiers are
	// (ip, port) tuples; our compact IDs need this side table so that a
	// receiver can open connections to nodes it just learned about. The
	// TCP transport fills and consumes it transparently; the simulator
	// ignores it.
	Directory []DirEntry
}

// DirEntry maps a node identifier to its dialable address.
type DirEntry struct {
	Node id.ID
	Addr string
}

// Clone returns a deep copy of m. No protocol hot path uses it — forwarding
// shares slices copy-on-write (see the ownership rules on package peer) —
// but callers that need a mutable or lifetime-independent copy (tests,
// persistence) take one here.
func (m Message) Clone() Message {
	c := m
	if m.Nodes != nil {
		c.Nodes = make([]id.ID, len(m.Nodes))
		copy(c.Nodes, m.Nodes)
	}
	if m.Entries != nil {
		c.Entries = make([]Entry, len(m.Entries))
		copy(c.Entries, m.Entries)
	}
	if m.Payload != nil {
		c.Payload = make([]byte, len(m.Payload))
		copy(c.Payload, m.Payload)
	}
	if m.Directory != nil {
		c.Directory = make([]DirEntry, len(m.Directory))
		copy(c.Directory, m.Directory)
	}
	return c
}

// ReferencedIDs returns every node identifier the message mentions (sender,
// subject, node lists, entries); the transport uses it to build Directory.
func (m Message) ReferencedIDs() []id.ID {
	out := make([]id.ID, 0, 2+len(m.Nodes)+len(m.Entries))
	if !m.Sender.IsNil() {
		out = append(out, m.Sender)
	}
	if !m.Subject.IsNil() {
		out = append(out, m.Subject)
	}
	out = append(out, m.Nodes...)
	for _, e := range m.Entries {
		out = append(out, e.Node)
	}
	return out
}

// String renders a compact debugging representation.
func (m Message) String() string {
	return fmt.Sprintf("%s{from=%v subj=%v ttl=%d n=%d e=%d round=%d}",
		m.Type, m.Sender, m.Subject, m.TTL, len(m.Nodes), len(m.Entries), m.Round)
}
