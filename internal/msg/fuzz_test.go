package msg

import (
	"reflect"
	"testing"

	"hyparview/internal/id"
)

// FuzzDecode drives the codec with arbitrary byte strings: decoding must
// never panic, and anything that decodes successfully must re-encode to a
// form that decodes to the same message (canonicalization round-trip).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	// The Plumtree message set, covering field combinations the protocol
	// actually emits: an eager payload push, a hop-tagged announcement, the
	// node's self-addressed timer tick (TTL in an IHAVE), both graft
	// flavors (with and without a retransmission request), and a prune.
	f.Add(Encode(Message{Type: PlumtreeGossip, Sender: 1, Round: 9, Hops: 2, Payload: []byte("p")}))
	f.Add(Encode(Message{Type: PlumtreeIHave, Sender: 2, Round: 9, Hops: 2}))
	f.Add(Encode(Message{Type: PlumtreeIHave, Sender: 3, Round: 9, TTL: 8}))
	f.Add(Encode(Message{Type: PlumtreeGraft, Sender: 4, Round: 9, Accept: true}))
	f.Add(Encode(Message{Type: PlumtreeGraft, Sender: 5, Accept: false}))
	f.Add(Encode(Message{Type: PlumtreePrune, Sender: 6}))
	// The X-BOT 4-node swap handshake, in protocol order: the initiator's
	// proposal with both measured costs, the candidate's delegation to the
	// node it would evict (costs relayed, initiator in Nodes), the switch
	// negotiation with the initiator's old neighbor, the three replies, and
	// the failure-free link teardown.
	f.Add(Encode(Message{Type: XBotOptimization, Sender: 1, Subject: 2, CostOld: 500, CostNew: 40}))
	f.Add(Encode(Message{Type: XBotReplace, Sender: 3, Subject: 2, Nodes: []id.ID{1}, CostOld: 500, CostNew: 40}))
	f.Add(Encode(Message{Type: XBotSwitch, Sender: 4, Subject: 1, Nodes: []id.ID{3}}))
	f.Add(Encode(Message{Type: XBotSwitchReply, Sender: 2, Subject: 1, Accept: true}))
	f.Add(Encode(Message{Type: XBotReplaceReply, Sender: 4, Subject: 1, Accept: true}))
	f.Add(Encode(Message{Type: XBotOptimizationReply, Sender: 3, Subject: 2, Accept: false}))
	f.Add(Encode(Message{Type: XBotDisconnectWait, Sender: 2}))
	// The RTT measurement pair: a nonce-carrying ping and its echo, the wire
	// traffic behind the TCP agent's live cost oracle.
	f.Add(Encode(Message{Type: Ping, Sender: 1, Round: 0xdecafbad}))
	f.Add(Encode(Message{Type: Pong, Sender: 2, Round: 0xdecafbad}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	// Tamperer-style mutations, mirroring the adversarial suite's fault
	// classes: a shuffle with its node count forged high on a short frame, a
	// payload gossip with one flipped payload byte, a frame truncated
	// mid-section, and a directory frame claiming entries it does not carry.
	shuf := Encode(Message{Type: Shuffle, Sender: 1, Nodes: []id.ID{2, 3, 4}})
	forged := append([]byte(nil), shuf...)
	forged[headerSize] = 0x3f
	forged[headerSize+1] = 0xff
	f.Add(forged)
	flip := Encode(Message{Type: PlumtreeGossip, Sender: 1, Round: 3, Payload: []byte("abcd")})
	flip[len(flip)-4] ^= 0x80
	f.Add(flip)
	f.Add(shuf[:len(shuf)-5])
	dir := Encode(Message{Type: Join, Sender: 1, Directory: []DirEntry{{Node: 2, Addr: "h:1"}}})
	forgedDir := append([]byte(nil), dir...)
	forgedDir[len(dir)-13] = 0x3f
	forgedDir[len(dir)-12] = 0xff
	f.Add(forgedDir)
	// Pub/sub topic-field mutations. The topic tag is the last 4 header
	// bytes; the batch flag (bit 31) marks the payload as a batch frame of
	// (uvarint len, bytes) entries, decoded one layer up in pubsub. Seeds: a
	// topic-tagged round, a well-formed 2-entry batch frame, a batch frame
	// whose first uvarint claims far more bytes than the frame carries
	// (truncated batch), a frame cut mid-topic-field, and a topic tag with
	// every bit forced high (flag set, topic beyond MaxTopic).
	topical := Encode(Message{Type: Gossip, Sender: 1, Round: 5, Topic: 7, Payload: []byte("tp")})
	f.Add(topical)
	batch := append([]byte{4}, "abcd"...)
	batch = append(batch, 2, 'x', 'y')
	f.Add(Encode(Message{Type: PlumtreeGossip, Sender: 1, Round: 6, Topic: 3 | 1<<31, Payload: batch}))
	f.Add(Encode(Message{Type: Gossip, Sender: 2, Round: 7, Topic: 1 | 1<<31,
		Payload: []byte{0xff, 0xff, 0xff, 0xff, 0x0f, 'a'}}))
	f.Add(topical[:headerSize-2])
	forgedTopic := append([]byte(nil), topical...)
	for i := headerSize - 4; i < headerSize; i++ {
		forgedTopic[i] = 0xff
	}
	f.Add(forgedTopic)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		re := Encode(m)
		m2, _, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(m2)) {
			t.Fatalf("round-trip mismatch:\n %+v\n %+v", m, m2)
		}
	})
}

// FuzzEncodeDecode drives the codec with structured inputs.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint8(1), uint64(1), uint64(2), uint8(6), uint64(99), []byte("payload"))
	f.Fuzz(func(t *testing.T, ty uint8, sender, subject uint64, ttl uint8, round uint64, payload []byte) {
		m := Message{
			Type:    Type(ty%uint8(maxType-1) + 1),
			Sender:  id.ID(sender),
			Subject: id.ID(subject),
			TTL:     ttl,
			Round:   round,
			Payload: payload,
		}
		got, n, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if n != EncodedSize(m) {
			t.Fatalf("size mismatch: %d vs %d", n, EncodedSize(m))
		}
		if got.Type != m.Type || got.Sender != m.Sender || got.Round != m.Round {
			t.Fatalf("fields corrupted: %+v vs %+v", got, m)
		}
	})
}
