package msg

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hyparview/internal/id"
)

func sampleMessages() []Message {
	return []Message{
		{Type: Join, Sender: 1},
		{Type: ForwardJoin, Sender: 2, Subject: 3, TTL: 6},
		{Type: Disconnect, Sender: 9},
		{Type: Neighbor, Sender: 4, Priority: HighPriority},
		{Type: Neighbor, Sender: 4, Priority: LowPriority},
		{Type: NeighborReply, Sender: 5, Accept: true},
		{Type: Shuffle, Sender: 6, Subject: 6, TTL: 4, Nodes: []id.ID{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: ShuffleReply, Sender: 7, Nodes: []id.ID{10, 20, 30}},
		{Type: Gossip, Sender: 8, Round: 12345, Hops: 7, Payload: []byte("hello world")},
		{Type: Gossip, Sender: 8, Round: 12346, Topic: 42, Payload: []byte("topical")},
		{Type: PlumtreeGossip, Sender: 8, Round: 12347, Topic: 1<<31 | 42, Payload: []byte("batched")},
		{Type: GossipAck, Sender: 8, Round: 12345},
		{Type: CyclonShuffle, Sender: 9, Entries: []Entry{{Node: 1, Age: 0}, {Node: 2, Age: 65535}}},
		{Type: CyclonShuffleReply, Sender: 10, Entries: []Entry{{Node: 3, Age: 7}}},
		{Type: CyclonJoinWalk, Sender: 11, Subject: 12, TTL: 5},
		{Type: ScampSubscribe, Sender: 13, Subject: 13},
		{Type: ScampForwardSub, Sender: 14, Subject: 13, TTL: 64},
		{Type: ScampKept, Sender: 15},
		{Type: ScampUnsubscribe, Sender: 16, Subject: 16, Nodes: []id.ID{77}},
		{Type: ScampHeartbeat, Sender: 17},
		{Type: Gossip, Sender: 18, Round: 1, Directory: []DirEntry{
			{Node: 18, Addr: "10.0.0.1:999"}, {Node: 19, Addr: ""},
		}},
		{Type: PlumtreeGossip, Sender: 20, Round: 77, Hops: 3, Payload: []byte("tree")},
		{Type: PlumtreeIHave, Sender: 21, Round: 77, Hops: 3},
		{Type: PlumtreeGraft, Sender: 22, Round: 77, Accept: true},
		{Type: PlumtreePrune, Sender: 23},
		{Type: XBotOptimization, Sender: 24, Subject: 25, CostOld: 812, CostNew: 97},
		{Type: XBotOptimizationReply, Sender: 25, Subject: 26, Accept: true},
		{Type: XBotOptimizationReply, Sender: 25, Subject: 26, Accept: false},
		{Type: XBotReplace, Sender: 26, Subject: 25, Nodes: []id.ID{24}, CostOld: 812, CostNew: 97},
		{Type: XBotReplaceReply, Sender: 27, Subject: 24, Accept: true},
		{Type: XBotSwitch, Sender: 27, Subject: 24, Nodes: []id.ID{26}},
		{Type: XBotSwitchReply, Sender: 25, Subject: 24, Accept: true},
		{Type: XBotDisconnectWait, Sender: 28},
		{Type: Ping, Sender: 29, Round: 0xfeedbeef},
		{Type: Pong, Sender: 30, Round: 0xfeedbeef},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		t.Run(m.Type.String(), func(t *testing.T) {
			buf := Encode(m)
			got, n, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if n != len(buf) {
				t.Errorf("Decode consumed %d of %d bytes", n, len(buf))
			}
			if !reflect.DeepEqual(normalize(m), normalize(got)) {
				t.Errorf("round trip mismatch:\n give %+v\n got  %+v", m, got)
			}
		})
	}
}

// normalize maps nil and empty slices to nil so DeepEqual compares content.
func normalize(m Message) Message {
	if len(m.Nodes) == 0 {
		m.Nodes = nil
	}
	if len(m.Entries) == 0 {
		m.Entries = nil
	}
	if len(m.Payload) == 0 {
		m.Payload = nil
	}
	if len(m.Directory) == 0 {
		m.Directory = nil
	}
	return m
}

func TestEncodedSizeExact(t *testing.T) {
	for _, m := range sampleMessages() {
		if got, want := len(Encode(m)), EncodedSize(m); got != want {
			t.Errorf("%v: len(Encode)=%d EncodedSize=%d", m.Type, got, want)
		}
	}
}

func TestAppendEncodePreservesPrefix(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	m := Message{Type: Join, Sender: 1}
	out := AppendEncode(append([]byte(nil), prefix...), m)
	if !bytes.Equal(out[:2], prefix) {
		t.Error("AppendEncode clobbered prefix")
	}
	got, _, err := Decode(out[2:])
	if err != nil || got.Type != Join {
		t.Errorf("decode after prefix: %v %v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := Encode(Message{Type: Shuffle, Sender: 1, Nodes: []id.ID{1, 2, 3}})
	tests := []struct {
		name string
		buf  []byte
		want error
	}{
		{name: "empty", buf: nil, want: ErrShortBuffer},
		{name: "header only half", buf: valid[:10], want: ErrShortBuffer},
		{name: "truncated nodes", buf: valid[:len(valid)-8], want: ErrShortBuffer},
		{name: "bad type", buf: append([]byte{0xff}, valid[1:]...), want: ErrBadType},
		{name: "zero type", buf: append([]byte{0x00}, valid[1:]...), want: ErrBadType},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := Decode(tt.buf)
			if !errors.Is(err, tt.want) {
				t.Errorf("Decode error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeRejectsHugeLists(t *testing.T) {
	m := Message{Type: Shuffle, Sender: 1, Nodes: []id.ID{1}}
	buf := Encode(m)
	// Nodes count lives right after the fixed header; forge it.
	buf[headerSize] = 0xff
	buf[headerSize+1] = 0xff
	if _, _, err := Decode(buf); err == nil {
		t.Error("Decode accepted forged 65535-node list")
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		buf := make([]byte, r.Intn(128))
		r.Read(buf)
		_, _, _ = Decode(buf) // must not panic
	}
}

// quickMessage builds a valid random message for property tests.
func quickMessage(r *rand.Rand) Message {
	types := []Type{Join, ForwardJoin, Disconnect, Neighbor, NeighborReply,
		Shuffle, ShuffleReply, Gossip, GossipAck, CyclonShuffle,
		CyclonShuffleReply, CyclonJoinWalk, ScampSubscribe, ScampForwardSub,
		ScampKept, ScampUnsubscribe, ScampHeartbeat, PlumtreeGossip,
		PlumtreeIHave, PlumtreeGraft, PlumtreePrune, XBotOptimization,
		XBotOptimizationReply, XBotReplace, XBotReplaceReply, XBotSwitch,
		XBotSwitchReply, XBotDisconnectWait}
	m := Message{
		Type:     types[r.Intn(len(types))],
		Sender:   id.ID(r.Uint64()),
		Subject:  id.ID(r.Uint64()),
		TTL:      uint8(r.Intn(256)),
		Priority: Priority(r.Intn(2) + 1),
		Accept:   r.Intn(2) == 0,
		Round:    r.Uint64(),
		Hops:     uint16(r.Intn(1 << 16)),
		Topic:    r.Uint32(),
		CostOld:  r.Uint64(),
		CostNew:  r.Uint64(),
	}
	for i := r.Intn(10); i > 0; i-- {
		m.Nodes = append(m.Nodes, id.ID(r.Uint64()))
	}
	for i := r.Intn(10); i > 0; i-- {
		m.Entries = append(m.Entries, Entry{Node: id.ID(r.Uint64()), Age: uint16(r.Intn(1 << 16))})
	}
	if r.Intn(2) == 0 {
		m.Payload = make([]byte, r.Intn(64))
		r.Read(m.Payload)
	}
	for i := r.Intn(4); i > 0; i-- {
		m.Directory = append(m.Directory, DirEntry{Node: id.ID(r.Uint64()), Addr: "h:1"})
	}
	return m
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(quickMessage(r))
		},
	}
	f := func(m Message) bool {
		got, n, err := Decode(Encode(m))
		return err == nil && n == EncodedSize(m) &&
			reflect.DeepEqual(normalize(m), normalize(got))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncationProperty(t *testing.T) {
	// Every strict prefix of a valid encoding must fail cleanly, never panic.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		buf := Encode(quickMessage(r))
		for cut := 0; cut < len(buf); cut += 1 + r.Intn(7) {
			if _, _, err := Decode(buf[:cut]); err == nil {
				t.Fatalf("truncated decode at %d/%d succeeded", cut, len(buf))
			}
		}
	}
}
