package view

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/rng"
)

// The view is the protocol's hottest data structure: every shuffle samples
// it, every broadcast iterates it.

func benchView(n int) *View {
	v := New(n)
	for i := 1; i <= n; i++ {
		v.Add(id.ID(i))
	}
	return v
}

func BenchmarkAddRemove(b *testing.B) {
	v := New(30)
	for i := 1; i < 30; i++ {
		v.Add(id.ID(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Add(9999)
		v.Remove(9999)
	}
}

func BenchmarkSamplePassive(b *testing.B) {
	v := benchView(30) // passive view size
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Sample(r, 4) // kp
	}
}

func BenchmarkRandomExcept(b *testing.B) {
	v := benchView(5) // active view size
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.RandomExcept(r, 3)
	}
}

func BenchmarkContains(b *testing.B) {
	v := benchView(30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Contains(id.ID(i%40 + 1))
	}
}
