package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hyparview/internal/id"
	"hyparview/internal/rng"
)

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestAddRemoveContains(t *testing.T) {
	v := New(3)
	if !v.Add(1) || !v.Add(2) {
		t.Fatal("Add of fresh ids failed")
	}
	if v.Add(1) {
		t.Error("duplicate Add succeeded")
	}
	if v.Add(id.Nil) {
		t.Error("Add(Nil) succeeded")
	}
	if !v.Contains(1) || v.Contains(9) {
		t.Error("Contains wrong")
	}
	if !v.Remove(1) || v.Remove(1) {
		t.Error("Remove semantics wrong")
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d, want 1", v.Len())
	}
}

func TestFullBlocksAdd(t *testing.T) {
	v := New(2)
	v.Add(1)
	v.Add(2)
	if !v.Full() {
		t.Error("view not reported full")
	}
	if v.Add(3) {
		t.Error("Add to full view succeeded")
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
}

func TestRemoveRandomEmptiesView(t *testing.T) {
	v := New(5)
	r := rng.New(1)
	for i := 1; i <= 5; i++ {
		v.Add(id.ID(i))
	}
	seen := make(map[id.ID]bool)
	for i := 0; i < 5; i++ {
		n, ok := v.RemoveRandom(r)
		if !ok || seen[n] {
			t.Fatalf("RemoveRandom returned %v, ok=%v, dup=%v", n, ok, seen[n])
		}
		seen[n] = true
	}
	if _, ok := v.RemoveRandom(r); ok {
		t.Error("RemoveRandom on empty view succeeded")
	}
	if !v.Empty() {
		t.Error("view not empty after removing everything")
	}
}

func TestRandomExcept(t *testing.T) {
	r := rng.New(2)
	v := New(4)

	if _, ok := v.RandomExcept(r, 1); ok {
		t.Error("RandomExcept on empty view succeeded")
	}
	v.Add(1)
	if _, ok := v.RandomExcept(r, 1); ok {
		t.Error("RandomExcept with only the excluded member succeeded")
	}
	v.Add(2)
	v.Add(3)
	for i := 0; i < 100; i++ {
		n, ok := v.RandomExcept(r, 2)
		if !ok || n == 2 {
			t.Fatalf("RandomExcept returned %v, ok=%v", n, ok)
		}
	}
	// Excluded id not in the view: all members eligible.
	counts := map[id.ID]int{}
	for i := 0; i < 300; i++ {
		n, _ := v.RandomExcept(r, 99)
		counts[n]++
	}
	if len(counts) != 3 {
		t.Errorf("RandomExcept(absent) covered %d members, want 3", len(counts))
	}
}

func TestRandomExceptUniform(t *testing.T) {
	r := rng.New(3)
	v := New(4)
	for i := 1; i <= 4; i++ {
		v.Add(id.ID(i))
	}
	counts := map[id.ID]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		n, _ := v.RandomExcept(r, 4)
		counts[n]++
	}
	for n := id.ID(1); n <= 3; n++ {
		c := counts[n]
		if c < trials/3-trials/20 || c > trials/3+trials/20 {
			t.Errorf("member %v drawn %d times, want ≈%d", n, c, trials/3)
		}
	}
	if counts[4] != 0 {
		t.Error("excluded member was drawn")
	}
}

func TestSampleDistinct(t *testing.T) {
	r := rng.New(4)
	v := New(10)
	for i := 1; i <= 10; i++ {
		v.Add(id.ID(i))
	}
	for _, k := range []int{0, 1, 3, 10, 15} {
		s := v.Sample(r, k)
		want := k
		if want > 10 {
			want = 10
		}
		if want < 0 {
			want = 0
		}
		if len(s) != want {
			t.Fatalf("Sample(%d) len = %d, want %d", k, len(s), want)
		}
		seen := make(map[id.ID]bool)
		for _, n := range s {
			if seen[n] || !v.Contains(n) {
				t.Fatalf("Sample(%d) invalid: %v", k, s)
			}
			seen[n] = true
		}
	}
	// Sampling must not disturb the view itself.
	if v.Len() != 10 {
		t.Error("Sample mutated the view")
	}
}

func TestMembersIsCopy(t *testing.T) {
	v := New(3)
	v.Add(1)
	m := v.Members()
	m[0] = 42
	if !v.Contains(1) || v.Contains(42) {
		t.Error("Members() exposed internal storage")
	}
}

func TestClear(t *testing.T) {
	v := New(3)
	v.Add(1)
	v.Add(2)
	v.Clear()
	if !v.Empty() || v.Contains(1) {
		t.Error("Clear left residue")
	}
	if !v.Add(1) {
		t.Error("Add after Clear failed")
	}
}

func TestForEachAndAt(t *testing.T) {
	v := New(3)
	v.Add(1)
	v.Add(2)
	total := 0
	v.ForEach(func(id.ID) { total++ })
	if total != 2 {
		t.Errorf("ForEach visited %d, want 2", total)
	}
	seen := map[id.ID]bool{v.At(0): true, v.At(1): true}
	if !seen[1] || !seen[2] {
		t.Errorf("At() coverage wrong: %v", seen)
	}
}

// TestInvariantsUnderRandomOps drives a view with random operations and
// checks the structural invariants after every step.
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint64, capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw%16) + 1
		v := New(capacity)
		r := rng.New(seed)
		shadow := make(map[id.ID]bool)
		for _, op := range ops {
			node := id.ID(op%32 + 1)
			switch op % 4 {
			case 0, 1:
				added := v.Add(node)
				if added {
					shadow[node] = true
				}
			case 2:
				if v.Remove(node) {
					delete(shadow, node)
				}
			case 3:
				if n, ok := v.RemoveRandom(r); ok {
					delete(shadow, n)
				}
			}
			// Invariants: bounded, consistent with shadow set.
			if v.Len() > capacity || v.Len() != len(shadow) {
				return false
			}
			for n := range shadow {
				if !v.Contains(n) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSampleIsUniformish(t *testing.T) {
	r := rng.New(8)
	v := New(6)
	for i := 1; i <= 6; i++ {
		v.Add(id.ID(i))
	}
	counts := map[id.ID]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, n := range v.Sample(r, 2) {
			counts[n]++
		}
	}
	want := trials * 2 / 6
	for n := id.ID(1); n <= 6; n++ {
		if c := counts[n]; c < want*9/10 || c > want*11/10 {
			t.Errorf("member %v sampled %d times, want ≈%d", n, c, want)
		}
	}
}

func TestRandomAccessor(t *testing.T) {
	r := rng.New(9)
	v := New(3)
	if _, ok := v.Random(r); ok {
		t.Error("Random on empty view succeeded")
	}
	v.Add(1)
	v.Add(2)
	seen := map[id.ID]bool{}
	for i := 0; i < 100; i++ {
		n, ok := v.Random(r)
		if !ok || !v.Contains(n) {
			t.Fatalf("Random = %v, %v", n, ok)
		}
		seen[n] = true
	}
	if len(seen) != 2 {
		t.Errorf("Random covered %d members, want 2", len(seen))
	}
	if v.Cap() != 3 {
		t.Errorf("Cap = %d", v.Cap())
	}
}
