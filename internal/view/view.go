// Package view implements the bounded partial-view containers used by the
// membership protocols.
//
// A View is a set of node identifiers with a fixed capacity: the container
// the HyParView pseudo-code (paper Algorithm 1) manipulates for both the
// active and the passive view. Views are tiny — the paper's configurations
// hold 5 active and 30 passive entries — so membership tests and removals
// are linear scans over one contiguous array: at this size a scan resolves
// in a cache line or two and beats a hash map on every axis that matters on
// the per-delivery hot path (no hashing, no pointer chasing, no per-insert
// allocation), which is measurable at 100k-node populations where view
// lookups run hundreds of thousands of times per broadcast.
package view

import (
	"hyparview/internal/id"
	"hyparview/internal/rng"
)

// View is a bounded set of node identifiers. The zero value is unusable; use
// New. View is not safe for concurrent use: each protocol instance owns its
// views and the simulator serializes deliveries per node.
type View struct {
	cap     int
	order   []id.ID
	version uint64  // incremented on every membership change
	scratch []id.ID // reused by SampleInto's partial Fisher-Yates

	// inline backs order for small capacities (every active view: the
	// paper's configurations use 5). A View embedded by value in a protocol
	// node then keeps its members inside the node's own cache lines — the
	// per-delivery flood fan-out reads them with zero extra pointer chases.
	// A View whose order aliases inline must never be copied by value;
	// protocol nodes hold Views embedded in heap-allocated structs and only
	// ever address them through the node pointer.
	inline [8]id.ID
}

// New returns an empty view with the given capacity. Capacity must be
// positive.
func New(capacity int) *View {
	v := &View{}
	v.Init(capacity)
	return v
}

// Init (re)initializes the view with the given capacity, for embedding a
// View by value inside a protocol node: the per-delivery paths then reach
// the member array through one pointer instead of two. Capacity must be
// positive.
func (v *View) Init(capacity int) {
	if capacity <= 0 {
		panic("view: capacity must be positive")
	}
	v.cap = capacity
	if capacity <= len(v.inline) {
		v.order = v.inline[:0]
	} else {
		v.order = make([]id.ID, 0, capacity)
	}
	v.version = 0
}

// Cap returns the view's capacity.
func (v *View) Cap() int { return v.cap }

// Version returns a change counter over the membership: it increments on
// every successful Add, Remove and Clear, never decreases, and lets layers
// that mirror the view (peer.NeighborVersioned) detect "nothing changed"
// with one integer compare.
func (v *View) Version() uint64 { return v.version }

// Len returns the number of identifiers currently in the view.
func (v *View) Len() int { return len(v.order) }

// Full reports whether the view is at capacity.
func (v *View) Full() bool { return len(v.order) >= v.cap }

// Empty reports whether the view has no members.
func (v *View) Empty() bool { return len(v.order) == 0 }

// indexOf returns the position of node, or -1 (linear scan; views are tiny).
func (v *View) indexOf(node id.ID) int {
	for i, m := range v.order {
		if m == node {
			return i
		}
	}
	return -1
}

// Contains reports whether node is in the view.
func (v *View) Contains(node id.ID) bool {
	return v.indexOf(node) >= 0
}

// Add inserts node and reports whether it was inserted. Adding a present
// identifier or adding to a full view is a no-op returning false; callers
// that need eviction semantics must free a slot first (see RemoveRandom).
func (v *View) Add(node id.ID) bool {
	if node.IsNil() {
		return false
	}
	if v.indexOf(node) >= 0 {
		return false
	}
	if v.Full() {
		return false
	}
	v.order = append(v.order, node)
	v.version++
	return true
}

// Remove deletes node and reports whether it was present.
func (v *View) Remove(node id.ID) bool {
	i := v.indexOf(node)
	if i < 0 {
		return false
	}
	last := len(v.order) - 1
	v.order[i] = v.order[last]
	v.order = v.order[:last]
	v.version++
	return true
}

// RemoveRandom deletes a uniformly random member and returns it; it returns
// (Nil, false) when the view is empty.
func (v *View) RemoveRandom(r *rng.Rand) (id.ID, bool) {
	if len(v.order) == 0 {
		return id.Nil, false
	}
	node := v.order[r.Intn(len(v.order))]
	v.Remove(node)
	return node, true
}

// Random returns a uniformly random member without removing it; it returns
// (Nil, false) when the view is empty.
func (v *View) Random(r *rng.Rand) (id.ID, bool) {
	if len(v.order) == 0 {
		return id.Nil, false
	}
	return v.order[r.Intn(len(v.order))], true
}

// RandomExcept returns a uniformly random member different from excluded; it
// returns (Nil, false) when no such member exists.
func (v *View) RandomExcept(r *rng.Rand, excluded id.ID) (id.ID, bool) {
	n := len(v.order)
	if n == 0 {
		return id.Nil, false
	}
	if v.indexOf(excluded) < 0 {
		return v.order[r.Intn(n)], true
	}
	if n == 1 {
		return id.Nil, false
	}
	// Choose uniformly among the n-1 members that are not excluded.
	i := r.Intn(n - 1)
	if v.order[i] == excluded {
		i = n - 1
	}
	return v.order[i], true
}

// Sample returns up to n distinct members chosen uniformly at random. The
// returned slice is freshly allocated (callers send it inside messages,
// where it must stay frozen; see the ownership rules on package peer).
func (v *View) Sample(r *rng.Rand, n int) []id.ID {
	if n <= 0 || len(v.order) == 0 {
		return nil
	}
	if n > len(v.order) {
		n = len(v.order)
	}
	return v.SampleInto(r, n, make([]id.ID, 0, n))
}

// SampleInto appends up to n distinct members chosen uniformly at random to
// dst and returns the extended slice. It consumes exactly the same random
// draws as Sample for the same (n, membership), so the two are
// interchangeable without perturbing a seeded run; the difference is purely
// allocation — SampleInto scratches on a buffer owned by the view and
// appends into caller-provided memory.
func (v *View) SampleInto(r *rng.Rand, n int, dst []id.ID) []id.ID {
	if n <= 0 || len(v.order) == 0 {
		return dst
	}
	if n >= len(v.order) {
		start := len(dst)
		dst = append(dst, v.order...)
		out := dst[start:]
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return dst
	}
	// Partial Fisher-Yates over a scratch copy keeps the view's internal
	// order untouched (Members/At iteration order is part of the
	// deterministic-trace contract).
	v.scratch = append(v.scratch[:0], v.order...)
	tmp := v.scratch
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(tmp)-i)
		tmp[i], tmp[j] = tmp[j], tmp[i]
		dst = append(dst, tmp[i])
	}
	return dst
}

// Members returns a copy of the current membership in insertion-ish order
// (removal swaps elements, so the order is arbitrary but deterministic).
func (v *View) Members() []id.ID {
	out := make([]id.ID, len(v.order))
	copy(out, v.order)
	return out
}

// ForEach calls fn for every member. fn must not mutate the view.
func (v *View) ForEach(fn func(id.ID)) {
	for _, n := range v.order {
		fn(n)
	}
}

// At returns the i-th member in internal order; it is intended for tests and
// metrics that iterate without allocating.
func (v *View) At(i int) id.ID { return v.order[i] }

// AppendMembers appends the current membership to dst and returns the
// extended slice; dst may be a reused scratch buffer.
func (v *View) AppendMembers(dst []id.ID) []id.ID {
	return append(dst, v.order...)
}

// AppendExcept appends every member except exclude to dst and returns the
// extended slice. It is the flood-dissemination hot path (one call per
// delivered broadcast), so it ranges the member array directly.
func (v *View) AppendExcept(dst []id.ID, exclude id.ID) []id.ID {
	for _, m := range v.order {
		if m != exclude {
			dst = append(dst, m)
		}
	}
	return dst
}

// Clear removes all members.
func (v *View) Clear() {
	if len(v.order) > 0 {
		v.version++
	}
	v.order = v.order[:0]
}
