// Package view implements the bounded partial-view containers used by the
// membership protocols.
//
// A View is a set of node identifiers with a fixed capacity, O(1) membership
// tests, O(1) uniform random selection and O(1) removal — the operations the
// HyParView pseudo-code (paper Algorithm 1) performs on both the active and
// the passive view.
package view

import (
	"hyparview/internal/id"
	"hyparview/internal/rng"
)

// View is a bounded set of node identifiers. The zero value is unusable; use
// New. View is not safe for concurrent use: each protocol instance owns its
// views and the simulator serializes deliveries per node.
type View struct {
	cap   int
	order []id.ID
	index map[id.ID]int
}

// New returns an empty view with the given capacity. Capacity must be
// positive.
func New(capacity int) *View {
	if capacity <= 0 {
		panic("view: capacity must be positive")
	}
	return &View{
		cap:   capacity,
		order: make([]id.ID, 0, capacity),
		index: make(map[id.ID]int, capacity),
	}
}

// Cap returns the view's capacity.
func (v *View) Cap() int { return v.cap }

// Len returns the number of identifiers currently in the view.
func (v *View) Len() int { return len(v.order) }

// Full reports whether the view is at capacity.
func (v *View) Full() bool { return len(v.order) >= v.cap }

// Empty reports whether the view has no members.
func (v *View) Empty() bool { return len(v.order) == 0 }

// Contains reports whether node is in the view.
func (v *View) Contains(node id.ID) bool {
	_, ok := v.index[node]
	return ok
}

// Add inserts node and reports whether it was inserted. Adding a present
// identifier or adding to a full view is a no-op returning false; callers
// that need eviction semantics must free a slot first (see RemoveRandom).
func (v *View) Add(node id.ID) bool {
	if node.IsNil() {
		return false
	}
	if _, ok := v.index[node]; ok {
		return false
	}
	if v.Full() {
		return false
	}
	v.index[node] = len(v.order)
	v.order = append(v.order, node)
	return true
}

// Remove deletes node and reports whether it was present.
func (v *View) Remove(node id.ID) bool {
	i, ok := v.index[node]
	if !ok {
		return false
	}
	last := len(v.order) - 1
	moved := v.order[last]
	v.order[i] = moved
	v.index[moved] = i
	v.order = v.order[:last]
	delete(v.index, node)
	return true
}

// RemoveRandom deletes a uniformly random member and returns it; it returns
// (Nil, false) when the view is empty.
func (v *View) RemoveRandom(r *rng.Rand) (id.ID, bool) {
	if len(v.order) == 0 {
		return id.Nil, false
	}
	node := v.order[r.Intn(len(v.order))]
	v.Remove(node)
	return node, true
}

// Random returns a uniformly random member without removing it; it returns
// (Nil, false) when the view is empty.
func (v *View) Random(r *rng.Rand) (id.ID, bool) {
	if len(v.order) == 0 {
		return id.Nil, false
	}
	return v.order[r.Intn(len(v.order))], true
}

// RandomExcept returns a uniformly random member different from excluded; it
// returns (Nil, false) when no such member exists.
func (v *View) RandomExcept(r *rng.Rand, excluded id.ID) (id.ID, bool) {
	n := len(v.order)
	if n == 0 {
		return id.Nil, false
	}
	if _, present := v.index[excluded]; !present {
		return v.order[r.Intn(n)], true
	}
	if n == 1 {
		return id.Nil, false
	}
	// Choose uniformly among the n-1 members that are not excluded.
	i := r.Intn(n - 1)
	if v.order[i] == excluded {
		i = n - 1
	}
	return v.order[i], true
}

// Sample returns up to n distinct members chosen uniformly at random. The
// returned slice is freshly allocated.
func (v *View) Sample(r *rng.Rand, n int) []id.ID {
	if n <= 0 || len(v.order) == 0 {
		return nil
	}
	if n >= len(v.order) {
		out := make([]id.ID, len(v.order))
		copy(out, v.order)
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	// Partial Fisher-Yates over a copy keeps the view's internal order
	// untouched (the index map relies on it).
	tmp := make([]id.ID, len(v.order))
	copy(tmp, v.order)
	out := make([]id.ID, n)
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(tmp)-i)
		tmp[i], tmp[j] = tmp[j], tmp[i]
		out[i] = tmp[i]
	}
	return out
}

// Members returns a copy of the current membership in insertion-ish order
// (removal swaps elements, so the order is arbitrary but deterministic).
func (v *View) Members() []id.ID {
	out := make([]id.ID, len(v.order))
	copy(out, v.order)
	return out
}

// ForEach calls fn for every member. fn must not mutate the view.
func (v *View) ForEach(fn func(id.ID)) {
	for _, n := range v.order {
		fn(n)
	}
}

// At returns the i-th member in internal order; it is intended for tests and
// metrics that iterate without allocating.
func (v *View) At(i int) id.ID { return v.order[i] }

// Clear removes all members.
func (v *View) Clear() {
	v.order = v.order[:0]
	for k := range v.index {
		delete(v.index, k)
	}
}
