package pubsub

import (
	"testing"

	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// quietEnv is a non-recording environment for allocation pins: Send succeeds
// and discards, so the measurement sees only the router and gossip layers.
type quietEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
}

var _ peer.Env = (*quietEnv)(nil)

func (e *quietEnv) Self() id.ID                   { return e.self }
func (e *quietEnv) Rand() *rng.Rand               { return e.rand }
func (e *quietEnv) Watch(id.ID)                   {}
func (e *quietEnv) Unwatch(id.ID)                 {}
func (e *quietEnv) Probe(id.ID) error             { return nil }
func (e *quietEnv) Send(id.ID, msg.Message) error { return nil }

func newQuietStack(cfg Config, neighbors ...id.ID) *Router {
	env := &quietEnv{self: 1, rand: rng.New(1)}
	mem := &fakeMembership{neighbors: neighbors}
	if cfg.NextRound == nil {
		var round uint64
		cfg.NextRound = func() uint64 { round++; return round }
	}
	r := New(cfg)
	inner := gossip.New(env, mem, gossip.Config{Mode: gossip.Flood}, r.OnBroadcast)
	r.Bind(env, inner)
	return r
}

// TestUnbatchedPublishDeliverZeroAlloc pins the acceptance criterion for the
// pub/sub steady state: an unbatched Publish — local subscriber delivery plus
// the flood fan-out over the overlay — costs zero allocations per message.
func TestUnbatchedPublishDeliverZeroAlloc(t *testing.T) {
	r := newQuietStack(Config{}, 2, 3, 4)
	sink := 0
	if err := r.Subscribe(7, func(_ uint32, p []byte, _ int) { sink += len(p) }); err != nil {
		t.Fatal(err)
	}
	payload := []byte("steady-state payload")
	// Warm up: first publishes touch lazily initialized map buckets.
	for i := 0; i < 64; i++ {
		_ = r.Publish(7, payload)
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = r.Publish(7, payload)
	})
	if allocs != 0 {
		t.Errorf("unbatched publish cost %.1f allocs/op, want 0", allocs)
	}
}

// TestBatchedPublishAppendZeroAlloc pins the batched hot path: a publish that
// lands in an existing batch frame with spare capacity allocates nothing. The
// per-flush frame allocation is the only one batching makes, amortized across
// the batch.
func TestBatchedPublishAppendZeroAlloc(t *testing.T) {
	r := newQuietStack(Config{MaxBatch: 1 << 20, MaxBatchBytes: 1 << 20}, 2)
	payload := []byte("batched")
	_ = r.Publish(5, payload) // opens the frame (one-time buffer allocation)
	allocs := testing.AllocsPerRun(100, func() {
		_ = r.Publish(5, payload)
	})
	if allocs != 0 {
		t.Errorf("batched append cost %.1f allocs/op, want 0", allocs)
	}
}

// TestBatchDeliveryZeroAlloc pins the subscriber side: unpacking a batch
// frame dispatches sub-slices that alias the frozen frame — no per-message
// copies, no allocations.
func TestBatchDeliveryZeroAlloc(t *testing.T) {
	r := newQuietStack(Config{})
	sink := 0
	if err := r.Subscribe(9, func(_ uint32, p []byte, _ int) { sink += len(p) }); err != nil {
		t.Fatal(err)
	}
	// A 4-entry frame: (len, bytes) * 4.
	frame := []byte{3, 'a', 'b', 'c', 2, 'd', 'e', 1, 'f', 4, 'g', 'h', 'i', 'j'}
	r.OnBroadcast(1, 9|batchFlag, frame, 2)
	allocs := testing.AllocsPerRun(100, func() {
		r.OnBroadcast(1, 9|batchFlag, frame, 2)
	})
	if allocs != 0 {
		t.Errorf("batch delivery cost %.1f allocs/op, want 0", allocs)
	}
}

// TestMalformedFrameRejectionZeroAlloc pins the hostile-input bound, matching
// the msg codec's bounds tests: a frame whose entry over-claims its length is
// rejected by arithmetic alone.
func TestMalformedFrameRejectionZeroAlloc(t *testing.T) {
	r := newQuietStack(Config{})
	if err := r.Subscribe(9, func(uint32, []byte, int) {}); err != nil {
		t.Fatal(err)
	}
	hostile := []byte{200, 1} // claims a 200-byte entry on a 2-byte frame
	allocs := testing.AllocsPerRun(100, func() {
		r.OnBroadcast(1, 9|batchFlag, hostile, 0)
	})
	if allocs != 0 {
		t.Errorf("hostile frame cost %.1f allocs/op, want 0", allocs)
	}
	if r.Stats().Malformed == 0 {
		t.Error("hostile frame not counted as malformed")
	}
}
