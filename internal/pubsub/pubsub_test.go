package pubsub

import (
	"bytes"
	"fmt"
	"testing"
	"unsafe"

	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// fakeMembership is a scriptable peer.Membership.
type fakeMembership struct {
	neighbors []id.ID
	downs     []id.ID
	delivered []msg.Message
	cycles    int
	scratch   []id.ID // reused by GossipTargets, as real memberships do
}

var _ peer.Membership = (*fakeMembership)(nil)

func (f *fakeMembership) Deliver(_ id.ID, m msg.Message) { f.delivered = append(f.delivered, m) }
func (f *fakeMembership) OnCycle()                       { f.cycles++ }
func (f *fakeMembership) Neighbors() []id.ID             { return append([]id.ID(nil), f.neighbors...) }
func (f *fakeMembership) OnPeerDown(p id.ID)             { f.downs = append(f.downs, p) }

func (f *fakeMembership) GossipTargets(fanout int, exclude id.ID) []id.ID {
	out := f.scratch[:0]
	for _, n := range f.neighbors {
		if n != exclude {
			out = append(out, n)
		}
	}
	if fanout > 0 && len(out) > fanout {
		out = out[:fanout]
	}
	f.scratch = out
	return out
}

// fakeEnv records sends and provides a manually advanced scheduler.
type fakeEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
	down map[id.ID]bool
	sent []sentMsg
}

type sentMsg struct {
	to id.ID
	m  msg.Message
}

var _ peer.Env = (*fakeEnv)(nil)

func newFakeEnv(self id.ID) *fakeEnv {
	return &fakeEnv{self: self, rand: rng.New(1), down: make(map[id.ID]bool)}
}

func (e *fakeEnv) Self() id.ID       { return e.self }
func (e *fakeEnv) Rand() *rng.Rand   { return e.rand }
func (e *fakeEnv) Watch(id.ID)       {}
func (e *fakeEnv) Unwatch(id.ID)     {}
func (e *fakeEnv) Probe(id.ID) error { return nil }

func (e *fakeEnv) Send(dst id.ID, m msg.Message) error {
	if e.down[dst] {
		return fmt.Errorf("send: %w", peer.ErrPeerDown)
	}
	e.sent = append(e.sent, sentMsg{to: dst, m: m})
	return nil
}

// newStack builds a Router over a real flood gossip.Node on a fake
// environment with the given neighbors.
func newStack(cfg Config, neighbors ...id.ID) (*Router, *fakeEnv, *fakeMembership) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: neighbors}
	if cfg.NextRound == nil {
		var round uint64
		cfg.NextRound = func() uint64 { round++; return round }
	}
	r := New(cfg)
	inner := gossip.New(env, mem, gossip.Config{Mode: gossip.Flood}, r.OnBroadcast)
	r.Bind(env, inner)
	return r, env, mem
}

type got struct {
	topic   uint32
	payload string
	hops    int
}

func collect(r *Router, topic uint32, into *[]got) {
	if err := r.Subscribe(topic, func(tp uint32, p []byte, hops int) {
		*into = append(*into, got{tp, string(p), hops})
	}); err != nil {
		panic(err)
	}
}

func TestPublishDeliversToLocalSubscriberAndFloodsNeighbors(t *testing.T) {
	r, env, _ := newStack(Config{}, 2, 3)
	var rx []got
	collect(r, 7, &rx)
	if err := r.Publish(7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if len(rx) != 1 || rx[0] != (got{7, "hello", 0}) {
		t.Fatalf("local delivery = %+v", rx)
	}
	if len(env.sent) != 2 {
		t.Fatalf("flooded %d neighbors, want 2", len(env.sent))
	}
	for _, s := range env.sent {
		if s.m.Topic != 7 || string(s.m.Payload) != "hello" {
			t.Fatalf("wire message %+v", s.m)
		}
	}
}

func TestUnbatchedPublishPassesPayloadThrough(t *testing.T) {
	r, env, _ := newStack(Config{}, 2)
	payload := []byte("zero-copy")
	if err := r.Publish(3, payload); err != nil {
		t.Fatal(err)
	}
	if sent := env.sent[0].m.Payload; unsafe.SliceData(sent) != unsafe.SliceData(payload) {
		t.Error("unbatched publish copied the payload")
	}
}

func TestRemoteDeliveryUnpacksIntoSubscribers(t *testing.T) {
	r, _, _ := newStack(Config{})
	var rx []got
	collect(r, 9, &rx)
	// A remote tagged round arrives through the normal broadcast path.
	r.Deliver(5, msg.Message{Type: msg.Gossip, Sender: 5, Round: 99, Hops: 2, Topic: 9, Payload: []byte("remote")})
	if len(rx) != 1 || rx[0] != (got{9, "remote", 3}) {
		t.Fatalf("remote delivery = %+v", rx)
	}
}

func TestZeroSubscriberTopicCountsAndDropsQuietly(t *testing.T) {
	r, env, _ := newStack(Config{}, 2)
	if err := r.Publish(4, []byte("nobody home")); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.NoSubscriber != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The round still floods: subscription tables are per-node edges, not
	// routing state.
	if len(env.sent) != 1 {
		t.Fatalf("flooded %d neighbors, want 1", len(env.sent))
	}
}

func TestPublishRejectsOutOfRangeTopics(t *testing.T) {
	r, _, _ := newStack(Config{})
	if err := r.Publish(0, nil); err == nil {
		t.Error("topic 0 accepted")
	}
	if err := r.Publish(MaxTopic+1, nil); err == nil {
		t.Error("topic beyond MaxTopic accepted")
	}
	if err := r.Subscribe(0, func(uint32, []byte, int) {}); err == nil {
		t.Error("Subscribe accepted topic 0")
	}
}

func TestBatchingAggregatesUntilSizeFlush(t *testing.T) {
	r, env, _ := newStack(Config{MaxBatch: 3}, 2)
	var rx []got
	collect(r, 5, &rx)
	must(t, r.Publish(5, []byte("a")))
	must(t, r.Publish(5, []byte("bb")))
	if len(env.sent) != 0 || r.PendingMessages() != 2 {
		t.Fatalf("premature flush: sent=%d pending=%d", len(env.sent), r.PendingMessages())
	}
	must(t, r.Publish(5, []byte("ccc"))) // reaches MaxBatch, flushes
	if len(env.sent) != 1 {
		t.Fatalf("sent %d frames, want 1", len(env.sent))
	}
	if tp := env.sent[0].m.Topic; tp != 5|batchFlag {
		t.Fatalf("frame topic = %#x, want batch-flagged 5", tp)
	}
	want := []got{{5, "a", 0}, {5, "bb", 0}, {5, "ccc", 0}}
	if len(rx) != 3 || rx[0] != want[0] || rx[1] != want[1] || rx[2] != want[2] {
		t.Fatalf("deliveries = %+v", rx)
	}
	if r.PendingMessages() != 0 {
		t.Fatalf("pending after flush = %d", r.PendingMessages())
	}
}

func TestSingleMessageFlushHasNoWrapOverhead(t *testing.T) {
	r, env, _ := newStack(Config{MaxBatch: 8}, 2)
	must(t, r.Publish(6, []byte("solo")))
	r.Flush()
	if len(env.sent) != 1 {
		t.Fatalf("sent %d, want 1", len(env.sent))
	}
	m := env.sent[0].m
	if m.Topic != 6 {
		t.Fatalf("topic = %#x, want unflagged 6", m.Topic)
	}
	if !bytes.Equal(m.Payload, []byte("solo")) {
		t.Fatalf("payload = %q, want raw bytes with no framing", m.Payload)
	}
}

func TestFlushTickDrainsPendingBatches(t *testing.T) {
	r, env, _ := newStack(Config{MaxBatch: 100, FlushInterval: 10}, 2)
	var rx []got
	collect(r, 2, &rx)
	must(t, r.Publish(2, []byte("buffered")))
	if len(env.sent) != 0 {
		t.Fatal("flushed before the tick")
	}
	for _, m := range env.ManualScheduler.Advance(10) {
		r.Deliver(env.self, m)
	}
	if len(env.sent) != 1 || len(rx) != 1 {
		t.Fatalf("after tick: sent=%d delivered=%d", len(env.sent), len(rx))
	}
}

func TestFlushOrderIsFirstBufferedFirstSent(t *testing.T) {
	r, env, _ := newStack(Config{MaxBatch: 100}, 2)
	must(t, r.Publish(30, []byte("x")))
	must(t, r.Publish(10, []byte("y")))
	must(t, r.Publish(30, []byte("z")))
	must(t, r.Publish(20, []byte("w")))
	r.Flush()
	var order []uint32
	for _, s := range env.sent {
		order = append(order, s.m.Topic&^batchFlag)
	}
	if len(order) != 3 || order[0] != 30 || order[1] != 10 || order[2] != 20 {
		t.Fatalf("flush order = %v, want [30 10 20]", order)
	}
}

func TestCloseAndPeerDownFlushPending(t *testing.T) {
	r, env, mem := newStack(Config{MaxBatch: 100}, 2)
	must(t, r.Publish(1, []byte("a")))
	r.OnPeerDown(2)
	if len(env.sent) == 0 {
		t.Fatal("OnPeerDown did not flush")
	}
	if len(mem.downs) != 1 || mem.downs[0] != 2 {
		t.Fatalf("failure not forwarded: %v", mem.downs)
	}
	env.sent = nil
	must(t, r.Publish(1, []byte("b")))
	r.Close()
	if len(env.sent) != 1 {
		t.Fatal("Close did not flush")
	}
	if r.PendingMessages() != 0 {
		t.Fatal("pending survived Close")
	}
}

func TestOversizedPayloadBypassesBatching(t *testing.T) {
	r, env, _ := newStack(Config{MaxBatch: 4, MaxBatchBytes: 16}, 2)
	must(t, r.Publish(3, []byte("ab"))) // buffered
	big := bytes.Repeat([]byte("B"), 64)
	must(t, r.Publish(3, big)) // flushes the pending frame, then goes raw
	if len(env.sent) != 2 {
		t.Fatalf("sent %d, want 2 (pending flush + raw oversize)", len(env.sent))
	}
	if env.sent[0].m.Topic != 3 || string(env.sent[0].m.Payload) != "ab" {
		t.Fatalf("first send %+v, want the unwrapped pending message", env.sent[0].m)
	}
	m := env.sent[1].m
	if m.Topic != 3 || !bytes.Equal(m.Payload, big) {
		t.Fatalf("oversize send %+v", m)
	}
	if unsafe.SliceData(m.Payload) != unsafe.SliceData(big) {
		t.Error("oversized payload was copied")
	}
}

func TestBatchFrameOrderingWithinTopicIsFIFO(t *testing.T) {
	r, _, _ := newStack(Config{MaxBatch: 2, MaxBatchBytes: 8}, 2)
	var rx []got
	collect(r, 5, &rx)
	for i := 0; i < 6; i++ {
		must(t, r.Publish(5, []byte{byte('a' + i)}))
	}
	r.Flush()
	if len(rx) != 6 {
		t.Fatalf("delivered %d, want 6", len(rx))
	}
	for i, g := range rx {
		if g.payload != string([]byte{byte('a' + i)}) {
			t.Fatalf("delivery %d = %q, order broken", i, g.payload)
		}
	}
}

func TestMalformedBatchFrameStopsCleanly(t *testing.T) {
	r, _, _ := newStack(Config{})
	var rx []got
	collect(r, 4, &rx)
	// One valid entry, then an entry claiming more bytes than remain.
	frame := []byte{1, 'k', 60}
	r.OnBroadcast(1, 4|batchFlag, frame, 0)
	if len(rx) != 1 || rx[0].payload != "k" {
		t.Fatalf("deliveries = %+v, want the valid prefix entry", rx)
	}
	if r.Stats().Malformed != 1 {
		t.Fatalf("Malformed = %d, want 1", r.Stats().Malformed)
	}
	// An empty-entry frame must terminate (uvarint 0 consumes one byte).
	r.OnBroadcast(2, 4|batchFlag, []byte{0, 0, 0}, 0)
	if n := len(rx); n != 4 {
		t.Fatalf("deliveries after empty entries = %d, want 4", n)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
