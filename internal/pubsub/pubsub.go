// Package pubsub layers topic-based publish/subscribe over any broadcast
// protocol in this repository (flood gossip or Plumtree), turning the
// protocol-internal dissemination machinery into the API a product would
// actually call: Publish(topic, payload) on any node, per-topic Subscribe
// handlers on every interested node.
//
// # Topic-tagged rounds
//
// Topics ride the existing broadcast rounds rather than building per-topic
// overlays: every published message is broadcast over the shared overlay
// with msg.Message.Topic carrying the topic identifier, and the subscription
// table filters at the delivery edge. This is the classic flat-mesh design
// point — dissemination cost is paid per message cluster-wide, delivery cost
// per subscriber — chosen because the HyParView/Plumtree overlay is exactly
// one robust mesh and the paper's reliability results apply per round
// regardless of the tag. The tag is a scalar field: per-hop forwarding copies
// it for free under the copy-on-write regime, and Plumtree's payload cache
// retains it so GRAFT retransmissions reproduce the tag.
//
// # Batching
//
// Hot topics amortize the per-message overlay cost (header bytes, IHAVE
// announcements, per-hop bookkeeping) by concatenating consecutive publishes
// into one batch frame, flushed when the frame reaches a size threshold
// (Config.MaxBatch messages or Config.MaxBatchBytes bytes) or when the
// periodic flush tick fires (Config.FlushInterval via peer.Scheduler.Every —
// msg.TickPubSubFlush), whichever comes first. Batch frames are tagged with
// the topic's identifier plus the high batchFlag bit; a flush that finds
// exactly one buffered message sends it raw, untagged by the flag, so light
// traffic never pays the frame overhead.
//
// Ownership follows the rules on package peer: a payload handed to Publish
// is frozen from that moment. On the unbatched path the caller's slice is
// passed through to the broadcaster untouched — zero copies, zero
// allocations. On the batched path the bytes are appended into the topic's
// pending frame (the one copy batching fundamentally requires); once the
// frame is handed to the broadcaster it is frozen forever — Plumtree may
// alias it for a full cache window of GRAFT retransmissions — so the router
// starts a fresh buffer per batch instead of recycling, one bounded
// allocation per flush, amortized across the batch.
package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// batchFlag marks a round's payload as a batch frame. It occupies the high
// bit of the 32-bit wire topic, so application topics are bounded by
// MaxTopic.
const batchFlag uint32 = 1 << 31

// MaxTopic is the largest valid application topic identifier. Topic 0 is
// reserved for untagged plain broadcasts (Broadcast without a topic).
const MaxTopic = batchFlag - 1

// ErrBadTopic is returned by Publish for topic 0 or a topic above MaxTopic.
var ErrBadTopic = errors.New("pubsub: topic out of range")

// SplitTopic decodes a wire topic tag into the application topic and whether
// the round carries a batch frame. Measurement harnesses use it to attribute
// wire traffic per topic without knowing the flag layout.
func SplitTopic(wire uint32) (topic uint32, batched bool) {
	return wire &^ batchFlag, wire&batchFlag != 0
}

// Handler is a per-subscriber delivery callback: invoked once per delivered
// message on the topic it was registered for, with the (frozen, read-only)
// payload and the overlay hop count of the round that carried it.
type Handler func(topic uint32, payload []byte, hops int)

// Config parameterizes a Router. The zero value disables batching and the
// flush tick.
type Config struct {
	// NextRound allocates globally-unique round identifiers for published
	// messages (gossip.Tracker.NextRound in the simulator, a random source
	// on the transport). Required.
	NextRound func() uint64

	// MaxBatch enables publish-side batching when > 1: up to MaxBatch
	// consecutive publishes per topic are concatenated into one frame
	// before the size threshold forces a flush.
	MaxBatch int

	// MaxBatchBytes caps the batch frame size in bytes (default 4096 when
	// batching is enabled). A publish that would overflow the cap flushes
	// the pending frame first; a single payload larger than the cap is
	// sent unbatched.
	MaxBatchBytes int

	// FlushInterval, when > 0, registers a periodic flush tick
	// (msg.TickPubSubFlush) every FlushInterval scheduler ticks, bounding
	// the latency a buffered message can accumulate waiting for its batch
	// to fill.
	FlushInterval uint64

	// Fallback receives rounds with topic 0 — plain broadcasts published
	// beneath the pub/sub layer (Broadcast/BroadcastTopic callers). May be
	// nil.
	Fallback gossip.Delivery
}

// Stats counts the router's activity. All counters are cumulative.
type Stats struct {
	Published    uint64 // messages accepted by Publish
	Batched      uint64 // messages that entered a pending batch frame
	Flushes      uint64 // batch flushes (size-, tick-, event- or Close-driven)
	Frames       uint64 // broadcast rounds sent on behalf of Publish calls
	Delivered    uint64 // handler invocations
	NoSubscriber uint64 // delivered messages on topics with no local handler
	Malformed    uint64 // batch frames with broken framing (truncated entry)
}

// pending is one topic's open batch frame.
type pending struct {
	buf   []byte
	count int
	first int // offset of the first entry's bytes, to unwrap 1-entry batches
}

// Router is the pub/sub layer node. It wraps a gossip.Broadcaster and
// implements gossip.Broadcaster itself by delegation, so it drops into any
// slot that hosts a broadcast node (the simulator's cluster, the TCP agent)
// without interface changes; the pub/sub API (Subscribe, Publish) sits
// alongside the inherited broadcast API.
//
// Construction is two-phase because the inner broadcaster needs the router's
// delivery callback at its own construction:
//
//	r := pubsub.New(cfg)
//	inner := gossip.New(env, membership, gcfg, r.OnBroadcast)
//	r.Bind(env, inner)
//
// Router is not safe for concurrent use; like every protocol layer here it
// lives on a single-threaded event loop (the simulator's, or the agent's
// actor goroutine).
type Router struct {
	cfg   Config
	env   peer.Env
	self  id.ID
	inner gossip.Broadcaster

	subs      map[uint32][]Handler
	pend      map[uint32]*pending
	pendOrder []uint32 // topics with open frames, in first-buffer order

	batchCap int // frame buffer capacity; 0 means batching disabled

	stats Stats
}

var _ gossip.Broadcaster = (*Router)(nil)

// New builds an unbound Router. Bind must be called before traffic flows.
func New(cfg Config) *Router {
	if cfg.NextRound == nil {
		panic("pubsub: Config.NextRound is required")
	}
	r := &Router{
		cfg:  cfg,
		subs: make(map[uint32][]Handler),
		pend: make(map[uint32]*pending),
	}
	if cfg.MaxBatch > 1 {
		r.batchCap = cfg.MaxBatchBytes
		if r.batchCap <= 0 {
			r.batchCap = 4096
		}
	}
	return r
}

// Bind attaches the router to its environment and inner broadcaster and, when
// configured, registers the periodic flush tick. It must be called exactly
// once, after the inner broadcaster was constructed with OnBroadcast as its
// delivery callback.
func (r *Router) Bind(env peer.Env, inner gossip.Broadcaster) {
	if r.inner != nil {
		panic("pubsub: Bind called twice")
	}
	r.env = env
	r.self = env.Self()
	r.inner = inner
	if r.batchCap > 0 && r.cfg.FlushInterval > 0 {
		env.Every(r.cfg.FlushInterval, msg.Message{
			Type:   msg.Tick,
			Sender: r.self,
			Round:  msg.TickPubSubFlush,
		})
	}
}

// Subscribe registers fn for topic. Multiple handlers per topic are invoked
// in registration order.
func (r *Router) Subscribe(topic uint32, fn Handler) error {
	if topic == 0 || topic > MaxTopic {
		return fmt.Errorf("%w: %d", ErrBadTopic, topic)
	}
	r.subs[topic] = append(r.subs[topic], fn)
	return nil
}

// Unsubscribe removes every handler registered for topic.
func (r *Router) Unsubscribe(topic uint32) {
	delete(r.subs, topic)
}

// Publish disseminates payload on topic from this node. The payload is
// frozen from this call on (see package doc). With batching disabled the
// message is broadcast immediately; with batching enabled it is appended to
// the topic's pending frame, which is flushed by size here or by the flush
// tick later.
func (r *Router) Publish(topic uint32, payload []byte) error {
	if topic == 0 || topic > MaxTopic {
		return fmt.Errorf("%w: %d", ErrBadTopic, topic)
	}
	r.stats.Published++
	if r.batchCap == 0 {
		// Unbatched steady path: the caller's slice goes straight through,
		// no copy, no allocation.
		r.stats.Frames++
		r.inner.BroadcastTopic(r.cfg.NextRound(), topic, payload)
		return nil
	}
	need := uvarintLen(uint64(len(payload))) + len(payload)
	if need > r.batchCap {
		// Oversized for any frame: send raw, no wrap overhead.
		r.flushTopic(topic)
		r.stats.Frames++
		r.inner.BroadcastTopic(r.cfg.NextRound(), topic, payload)
		return nil
	}
	p := r.pend[topic]
	if p == nil {
		p = &pending{}
		r.pend[topic] = p
	}
	if p.count > 0 && (p.count >= r.cfg.MaxBatch || len(p.buf)+need > r.batchCap) {
		r.flushTopic(topic)
	}
	if p.count == 0 {
		if p.buf == nil {
			// Fresh frame: the previous buffer (if any) was frozen when its
			// batch was broadcast, so it cannot be recycled.
			p.buf = make([]byte, 0, r.batchCap)
		}
		r.pendOrder = append(r.pendOrder, topic)
		p.first = uvarintLen(uint64(len(payload)))
	}
	p.buf = binary.AppendUvarint(p.buf, uint64(len(payload)))
	p.buf = append(p.buf, payload...)
	p.count++
	r.stats.Batched++
	if p.count >= r.cfg.MaxBatch {
		r.flushTopic(topic)
	}
	return nil
}

// Flush broadcasts every pending batch frame now, in the deterministic order
// the topics first buffered a message. Applications call it around traffic
// lulls; the flush tick and Close call it internally.
func (r *Router) Flush() {
	if len(r.pendOrder) == 0 {
		return
	}
	// flushTopic compacts pendOrder via removeOrder; iterate over a stable
	// snapshot semantics by draining from the front until empty.
	for len(r.pendOrder) > 0 {
		r.flushTopic(r.pendOrder[0])
	}
}

// Close flushes all pending frames. The periodic flush registration (if any)
// lives as long as the node, per the Scheduler contract; subsequent ticks
// find nothing to flush.
func (r *Router) Close() {
	r.Flush()
}

// flushTopic broadcasts topic's pending frame, if any. A frame holding a
// single message is unwrapped and sent as a plain tagged round — the batch
// framing costs nothing until it pays for itself.
func (r *Router) flushTopic(topic uint32) {
	p := r.pend[topic]
	if p == nil || p.count == 0 {
		return
	}
	r.stats.Flushes++
	r.stats.Frames++
	if p.count == 1 {
		r.inner.BroadcastTopic(r.cfg.NextRound(), topic, p.buf[p.first:])
	} else {
		r.inner.BroadcastTopic(r.cfg.NextRound(), topic|batchFlag, p.buf)
	}
	// The frame is frozen now (the broadcaster may alias it indefinitely);
	// drop it so the next publish starts fresh.
	p.buf = nil
	p.count = 0
	r.removeOrder(topic)
}

// removeOrder deletes topic from the open-frame order, preserving the order
// of the rest.
func (r *Router) removeOrder(topic uint32) {
	for i, t := range r.pendOrder {
		if t == topic {
			r.pendOrder = append(r.pendOrder[:i], r.pendOrder[i+1:]...)
			return
		}
	}
}

// OnBroadcast is the gossip.Delivery callback to install on the inner
// broadcaster at its construction. It routes tagged rounds to the
// subscription table — unpacking batch frames in place, the sub-payload
// slices alias the frozen frame — and hands untagged rounds to
// Config.Fallback.
func (r *Router) OnBroadcast(round uint64, topic uint32, payload []byte, hops int) {
	if topic == 0 {
		if r.cfg.Fallback != nil {
			r.cfg.Fallback(round, topic, payload, hops)
		}
		return
	}
	if topic&batchFlag == 0 {
		r.dispatch(topic, payload, hops)
		return
	}
	topic &^= batchFlag
	rest := payload
	for len(rest) > 0 {
		n, u := binary.Uvarint(rest)
		if u <= 0 || n > uint64(len(rest)-u) {
			// Truncated or over-claiming entry: the frame is broken from
			// here on. Entries already dispatched stand.
			r.stats.Malformed++
			return
		}
		r.dispatch(topic, rest[u:u+int(n)], hops)
		rest = rest[u+int(n):]
	}
}

// dispatch invokes topic's handlers for one delivered message.
func (r *Router) dispatch(topic uint32, payload []byte, hops int) {
	hs := r.subs[topic]
	if len(hs) == 0 {
		r.stats.NoSubscriber++
		return
	}
	for _, h := range hs {
		h(topic, payload, hops)
		r.stats.Delivered++
	}
}

// Stats returns a copy of the router's counters.
func (r *Router) Stats() Stats { return r.stats }

// PendingMessages returns the number of published messages currently held in
// open batch frames (tests, draining checks).
func (r *Router) PendingMessages() int {
	n := 0
	for _, p := range r.pend {
		n += p.count
	}
	return n
}

// --- gossip.Broadcaster by delegation -----------------------------------

// Deliver implements peer.Process. The router's own flush tick triggers a
// flush; every message — including the tick, which descends the stack per
// the msg.Tick convention — is handed to the inner broadcaster.
func (r *Router) Deliver(from id.ID, m msg.Message) {
	if m.Type == msg.Tick && from == r.self && m.Round == msg.TickPubSubFlush {
		r.Flush()
	}
	r.inner.Deliver(from, m)
}

// OnCycle implements peer.Process by delegation (externally-cycled stacks
// flush per cycle, mirroring the tick-driven mode).
func (r *Router) OnCycle() {
	r.Flush()
	r.inner.OnCycle()
}

// OnPeerDown flushes pending frames — the overlay is changing under the
// batches, and bounding buffered-message loss beats amortizing bytes — then
// forwards the failure to the inner broadcaster.
func (r *Router) OnPeerDown(peerID id.ID) {
	r.Flush()
	r.inner.OnPeerDown(peerID)
}

// Broadcast implements gossip.Broadcaster by delegation (untagged round).
func (r *Router) Broadcast(round uint64, payload []byte) {
	r.inner.Broadcast(round, payload)
}

// BroadcastTopic implements gossip.Broadcaster by delegation.
func (r *Router) BroadcastTopic(round uint64, topic uint32, payload []byte) {
	r.inner.BroadcastTopic(round, topic, payload)
}

// Counters implements gossip.Broadcaster by delegation.
func (r *Router) Counters() (delivered, duplicates, forwarded, sendFails uint64) {
	return r.inner.Counters()
}

// Seen implements gossip.Broadcaster by delegation.
func (r *Router) Seen(round uint64) bool { return r.inner.Seen(round) }

// ResetSeen implements gossip.Broadcaster by delegation.
func (r *Router) ResetSeen() { r.inner.ResetSeen() }

// Membership implements gossip.Broadcaster by delegation.
func (r *Router) Membership() peer.Membership { return r.inner.Membership() }

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
