package id

import (
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	tests := []struct {
		name string
		give ID
		want string
	}{
		{name: "nil", give: Nil, want: "nil"},
		{name: "one", give: ID(1), want: "n1"},
		{name: "big", give: ID(123456789), want: "n123456789"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestIDIsNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if ID(7).IsNil() {
		t.Error("ID(7).IsNil() = true")
	}
}

func TestFromAddrStable(t *testing.T) {
	a := FromAddr("10.0.0.1:7946")
	b := FromAddr("10.0.0.1:7946")
	if a != b {
		t.Errorf("FromAddr not stable: %v != %v", a, b)
	}
	if a.IsNil() {
		t.Error("FromAddr returned Nil")
	}
	if c := FromAddr("10.0.0.2:7946"); c == a {
		t.Error("distinct addresses collided")
	}
}

func TestFromAddrNeverNil(t *testing.T) {
	f := func(addr string) bool { return !FromAddr(addr).IsNil() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBookPutAddrLookup(t *testing.T) {
	b := NewBook()
	b.Put(ID(1), "a:1")
	b.Put(ID(2), "a:2")

	if addr, ok := b.Addr(ID(1)); !ok || addr != "a:1" {
		t.Errorf("Addr(1) = %q, %v", addr, ok)
	}
	if node, ok := b.Lookup("a:2"); !ok || node != ID(2) {
		t.Errorf("Lookup(a:2) = %v, %v", node, ok)
	}
	if _, ok := b.Addr(ID(3)); ok {
		t.Error("Addr(3) unexpectedly found")
	}
	if _, ok := b.Lookup("nope"); ok {
		t.Error("Lookup(nope) unexpectedly found")
	}
}

func TestBookPutReplacesBothDirections(t *testing.T) {
	b := NewBook()
	b.Put(ID(1), "a:1")
	// Re-map the id to a new address: the old address must be forgotten.
	b.Put(ID(1), "a:9")
	if _, ok := b.Lookup("a:1"); ok {
		t.Error("stale address a:1 still resolves")
	}
	if addr, _ := b.Addr(ID(1)); addr != "a:9" {
		t.Errorf("Addr(1) = %q, want a:9", addr)
	}
	// Re-map the address to a new id: the old id must be forgotten.
	b.Put(ID(2), "a:9")
	if _, ok := b.Addr(ID(1)); ok {
		t.Error("stale id 1 still resolves")
	}
	if b.Len() != 1 {
		t.Errorf("Len() = %d, want 1", b.Len())
	}
}

func TestBookDelete(t *testing.T) {
	b := NewBook()
	b.Put(ID(1), "a:1")
	b.Delete(ID(1))
	if _, ok := b.Addr(ID(1)); ok {
		t.Error("deleted id still resolves")
	}
	if _, ok := b.Lookup("a:1"); ok {
		t.Error("deleted addr still resolves")
	}
	b.Delete(ID(42)) // absent: must not panic
}

func TestBookIDsSorted(t *testing.T) {
	b := NewBook()
	for _, n := range []ID{5, 1, 9, 3} {
		b.Put(n, n.String())
	}
	ids := b.IDs()
	if len(ids) != 4 {
		t.Fatalf("IDs() len = %d, want 4", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs() not sorted: %v", ids)
		}
	}
}

func TestBookZeroValueUsable(t *testing.T) {
	var b Book
	b.Put(ID(1), "x")
	if addr, ok := b.Addr(ID(1)); !ok || addr != "x" {
		t.Errorf("zero-value Book broken: %q %v", addr, ok)
	}
}

func TestBookMustAddrPanics(t *testing.T) {
	b := NewBook()
	defer func() {
		if recover() == nil {
			t.Error("MustAddr on missing id did not panic")
		}
	}()
	b.MustAddr(ID(404))
}
