// Package id defines node identifiers and the address book that maps
// identifiers to network addresses.
//
// The paper identifies a node by an (ip, port) tuple. Inside the simulator a
// compact integer is far cheaper, so ID is a uint64; the transport layer uses
// a Book to translate between IDs and dialable addresses, and FromAddr
// derives a stable ID from an address string so that real deployments need no
// out-of-band coordination.
package id

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// ID uniquely identifies a node in the overlay.
//
// Nil is the zero value and never identifies a real node.
type ID uint64

// Nil is the absent node identifier.
const Nil ID = 0

// String renders the identifier in a short human-readable form.
func (i ID) String() string {
	if i == Nil {
		return "nil"
	}
	return "n" + strconv.FormatUint(uint64(i), 10)
}

// IsNil reports whether the identifier is the zero identifier.
func (i ID) IsNil() bool { return i == Nil }

// FromAddr derives a stable non-nil identifier from a network address such as
// "10.0.0.1:7946". Two distinct addresses collide with probability ~2^-64.
func FromAddr(addr string) ID {
	h := fnv.New64a()
	_, _ = h.Write([]byte(addr))
	v := h.Sum64()
	if v == uint64(Nil) {
		v = 1
	}
	return ID(v)
}

// Book is a concurrency-safe bidirectional map between node identifiers and
// dialable addresses. The zero value is ready to use.
type Book struct {
	mu     sync.RWMutex
	byID   map[ID]string
	byAddr map[string]ID
}

// NewBook returns an empty address book.
func NewBook() *Book {
	return &Book{
		byID:   make(map[ID]string),
		byAddr: make(map[string]ID),
	}
}

// Put registers the (id, addr) pair, replacing any previous mapping for
// either key.
func (b *Book) Put(node ID, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.byID == nil {
		b.byID = make(map[ID]string)
		b.byAddr = make(map[string]ID)
	}
	if old, ok := b.byID[node]; ok {
		delete(b.byAddr, old)
	}
	if old, ok := b.byAddr[addr]; ok {
		delete(b.byID, old)
	}
	b.byID[node] = addr
	b.byAddr[addr] = node
}

// Addr returns the address registered for node.
func (b *Book) Addr(node ID) (string, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	addr, ok := b.byID[node]
	return addr, ok
}

// Lookup returns the identifier registered for addr.
func (b *Book) Lookup(addr string) (ID, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	node, ok := b.byAddr[addr]
	return node, ok
}

// Delete removes the mapping for node, if any.
func (b *Book) Delete(node ID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if addr, ok := b.byID[node]; ok {
		delete(b.byAddr, addr)
		delete(b.byID, node)
	}
}

// Len returns the number of registered mappings.
func (b *Book) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.byID)
}

// IDs returns all registered identifiers in ascending order.
func (b *Book) IDs() []ID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]ID, 0, len(b.byID))
	for node := range b.byID {
		out = append(out, node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MustAddr returns the address for node or panics; intended for tests and
// program initialization where the mapping is known to exist.
func (b *Book) MustAddr(node ID) string {
	addr, ok := b.Addr(node)
	if !ok {
		panic(fmt.Sprintf("id: no address registered for %v", node))
	}
	return addr
}
