// Package transport implements the real-network counterpart of the
// simulator: length-prefixed binary framing of msg.Message over TCP, a
// cached-connection sender whose failures surface as peer.ErrPeerDown, and
// watch-based connection-breakage notifications.
//
// The paper's architecture (§1, §4) assumes exactly this substrate: gossip
// over TCP so that omissions need not be masked by redundancy, and TCP
// doubling as the failure detector. The HyParView authors deferred a real
// deployment to future work (PlanetLab, §6); this package provides it.
//
// Two layers live here. Transport is the wire: framing, connection cache,
// address directory, watch notifications. Agent hosts the complete protocol
// stack over one Transport — HyParView membership, flood or Plumtree
// broadcast (AgentConfig.Broadcast), and optionally the X-BOT overlay
// optimizer fed by live PING/PONG RTT measurements (AgentConfig.Optimize) —
// inside a single actor goroutine, so the same unsynchronized protocol code
// runs here and in the simulator. The agent also provides the real-clock
// half of the peer.Scheduler contract (one tick = 1ms): protocols schedule
// their own timers and periodic rounds — Plumtree's missing-message timer,
// HyParView's shuffle ΔT, X-BOT's optimization cadence — and the scheduled
// messages re-enter the actor loop exactly like network traffic.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// Frame format: 4-byte big-endian payload length followed by the msg codec
// encoding. maxFrame protects against corrupt peers.
const (
	lenHeaderSize = 4
	maxFrame      = 1 << 26
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Config tunes transport behaviour.
type Config struct {
	// DialTimeout bounds connection establishment (default 3s).
	DialTimeout time.Duration
	// WriteTimeout bounds a single frame write (default 5s).
	WriteTimeout time.Duration
	// SendQueue caps the per-peer outbound frame queue (default 256). Frames
	// are written by a per-connection writer goroutine; when a slow peer's
	// queue is full the frame is shed and Send returns peer.ErrOverflow
	// (counted in Stats.Overflowed) — the same degrade-don't-die overload
	// semantics as the simulator's MaxQueue, instead of blocking the caller
	// until overload becomes indistinguishable from peer death.
	SendQueue int
	// WriteBatch caps how many queued frames one writer wakeup gathers into
	// a single vectored write (default 32). Under load the per-peer queue
	// fills faster than the kernel drains it, so one writev flushes many
	// frames — the data-plane counterpart of the pub/sub layer's
	// publish-side batching. 1 disables coalescing.
	WriteBatch int
	// ReadBuffer sizes the per-connection buffered reader (default 8KiB).
	// Length prefix and payload are decoded out of the buffer, so a batch of
	// small frames arriving back-to-back touches the kernel once instead of
	// twice per frame; payloads larger than the buffer bypass it and read
	// directly into the frame buffer, still one syscall.
	ReadBuffer int
	// Intercept, when non-nil, is the fault-injection seam (the real-socket
	// counterpart of netsim.Sim.Intercept): it observes every decoded inbound
	// message after the address directory is absorbed and before dispatch.
	// Returning false suppresses the delivery; returning a non-nil
	// replacement dispatches it instead. It is invoked from reader
	// goroutines, so implementations must be safe for concurrent use (see
	// faults.Synchronized). Nil costs one predictable branch per frame.
	Intercept func(node id.ID, m *msg.Message) (*msg.Message, bool)
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.SendQueue == 0 {
		c.SendQueue = 256
	}
	if c.WriteBatch <= 0 {
		c.WriteBatch = 32
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 8 << 10
	}
	return c
}

// Stats counts transport-level events. All counters are cumulative.
type Stats struct {
	// FramesSent counts frames successfully written to a socket.
	FramesSent uint64
	// Overflowed counts frames shed because a peer's send queue was full;
	// each corresponds to one Send that returned peer.ErrOverflow.
	Overflowed uint64
	// FaultDropped counts inbound deliveries suppressed by Config.Intercept.
	FaultDropped uint64
	// WriteCalls counts vectored flushes issued by writer goroutines — one
	// per writev into the kernel, so FramesSent/WriteCalls is the write
	// path's frames-per-syscall ratio (see FramesPerWrite).
	WriteCalls uint64
	// BatchedWrites counts flushes that carried two or more frames: wakeups
	// where the batch drain actually amortized a syscall.
	BatchedWrites uint64
	// ReadSyscalls counts kernel reads across all connections. With the
	// buffered reader a back-to-back batch of small frames costs one read,
	// so FramesSent (at the peers) outpaces ReadSyscalls under load.
	ReadSyscalls uint64
}

// FramesPerWrite reports the average number of frames flushed per vectored
// write — the write path's frames-per-syscall ratio (1.0 means no batching
// engaged; higher means queued frames were coalesced).
func (s Stats) FramesPerWrite() float64 {
	if s.WriteCalls == 0 {
		return 0
	}
	return float64(s.FramesSent) / float64(s.WriteCalls)
}

// Transport sends and receives protocol messages over TCP. One Transport
// serves one node. All exported methods are safe for concurrent use.
type Transport struct {
	self id.ID
	addr string
	cfg  Config
	book *id.Book
	ln   net.Listener

	onMessage  func(from id.ID, m msg.Message)
	onPeerDown func(peerID id.ID)

	mu      sync.Mutex
	conns   map[id.ID]*outConn
	inbound map[net.Conn]struct{}
	watched map[id.ID]bool
	closed  bool

	// closedFlag mirrors closed for the per-frame fast check in readLoop,
	// keeping the mutex off the receive hot path.
	closedFlag atomic.Bool

	framesSent    atomic.Uint64
	overflowed    atomic.Uint64
	faultDropped  atomic.Uint64
	writeCalls    atomic.Uint64
	batchedWrites atomic.Uint64
	readSyscalls  atomic.Uint64

	wg sync.WaitGroup
}

// outConn is a cached outbound connection: a reader goroutine that detects
// resets and a writer goroutine draining the bounded send queue. The writer
// goroutine is the only code that touches the socket's write side, so its
// deadline state needs no lock. (An inline write-from-Send fast path for idle
// connections was tried and rejected: it blocks the calling actor for the
// syscall and defeats the vectored batching, costing ~20% on broadcast
// benchmarks for a marginal serial-latency win.)
type outConn struct {
	c        net.Conn
	ch       chan *sendScratch // owned frames; the writer returns them to the pool
	closed   chan struct{}     // closed exactly once when the connection is dropped
	once     sync.Once
	deadline time.Time // armed write deadline (writer goroutine only)
}

// shut marks the connection dead for queued and future senders.
func (oc *outConn) shut() { oc.once.Do(func() { close(oc.closed) }) }

// Listen opens a listener on addr ("host:port", ":0" for ephemeral) and
// returns a transport whose identity is derived from the bound address.
// onMessage is invoked from reader goroutines — implementations must be
// concurrency-safe or hand off to a single consumer (see Agent). onPeerDown
// (may be nil) is invoked when a watched peer's connection breaks.
func Listen(addr string, cfg Config, onMessage func(id.ID, msg.Message), onPeerDown func(id.ID)) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport listen %s: %w", addr, err)
	}
	bound := ln.Addr().String()
	t := &Transport{
		self:       id.FromAddr(bound),
		addr:       bound,
		cfg:        cfg.withDefaults(),
		book:       id.NewBook(),
		ln:         ln,
		onMessage:  onMessage,
		onPeerDown: onPeerDown,
		conns:      make(map[id.ID]*outConn),
		inbound:    make(map[net.Conn]struct{}),
		watched:    make(map[id.ID]bool),
	}
	t.book.Put(t.self, bound)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Self returns the transport's node identifier.
func (t *Transport) Self() id.ID { return t.self }

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.addr }

// Register adds a (node, addr) mapping so the node becomes dialable. It
// returns the derived identifier for convenience.
func (t *Transport) Register(addr string) id.ID {
	node := id.FromAddr(addr)
	t.book.Put(node, addr)
	return node
}

// Book exposes the address book (shared with the hosting agent).
func (t *Transport) Book() *id.Book { return t.book }

// sendScratch is the per-send working memory — the frame being encoded and
// the directory side table — recycled through sendPool so the steady-state
// send path allocates nothing. The buffers are dead the moment Send returns
// (the frame bytes are on the wire, the directory was copied into the frame
// by the encoder), which is exactly the lifetime a pool wants.
type sendScratch struct {
	frame []byte
	dir   []msg.DirEntry
}

var sendPool = sync.Pool{New: func() any { return &sendScratch{} }}

// scratchBalance tracks checked-out sendScratches (gets minus puts). Frame
// buffers pass through Send, the per-connection queue, the writer's batch
// and — on connection failure — the drain path; the balance returning to its
// prior value is how tests prove none of those paths leaks a frame. One
// uncontended atomic add per side is noise next to the syscall it brackets.
var scratchBalance atomic.Int64

func getScratch() *sendScratch {
	scratchBalance.Add(1)
	return sendPool.Get().(*sendScratch)
}

func putScratch(sc *sendScratch) {
	scratchBalance.Add(-1)
	sendPool.Put(sc)
}

// Send delivers m to dst over a cached or freshly dialed connection. A
// failure to dial is reported as peer.ErrPeerDown. The frame itself is
// written asynchronously by the connection's writer goroutine: Send returns
// once the frame is queued, a full queue sheds the frame with
// peer.ErrOverflow (the peer is overloaded, not dead), and a write failure
// surfaces through the watch machinery like any connection breakage.
func (t *Transport) Send(dst id.ID, m msg.Message) error {
	oc, err := t.conn(dst)
	if err != nil {
		return err
	}
	sc := getScratch()
	sc.dir = t.appendDirectory(sc.dir[:0], m)
	m.Directory = sc.dir
	frame := append(sc.frame[:0], make([]byte, lenHeaderSize)...)
	frame = msg.AppendEncode(frame, m)
	sc.frame = frame
	binary.BigEndian.PutUint32(frame[:lenHeaderSize], uint32(len(frame)-lenHeaderSize))

	select {
	case <-oc.closed:
		putScratch(sc)
		return fmt.Errorf("send %v: %w", dst, peer.ErrPeerDown)
	default:
	}

	select {
	case oc.ch <- sc: // ownership of sc transfers to the writer goroutine
		return nil
	default:
		putScratch(sc)
		t.overflowed.Add(1)
		return fmt.Errorf("send %v: queue full: %w", dst, peer.ErrOverflow)
	}
}

// writeBatch is one writer wakeup's worth of frames: the iovec array handed
// to the kernel and the owned scratches whose frame buffers it aliases. Both
// slices ratchet to WriteBatch capacity and recycle through batchPool, so
// the steady-state flush allocates nothing.
type writeBatch struct {
	bufs net.Buffers
	scs  []*sendScratch
}

var batchPool = sync.Pool{New: func() any { return &writeBatch{} }}

// release returns every gathered frame to the send pool in one pass and
// empties the batch. It is the single ownership hand-back point for both the
// success path and the mid-batch failure drain.
func (wb *writeBatch) release() {
	for i, sc := range wb.scs {
		putScratch(sc)
		wb.scs[i] = nil
		wb.bufs[i] = nil
	}
	wb.scs = wb.scs[:0]
	wb.bufs = wb.bufs[:0]
}

// writeLoop drains one connection's send queue, gathering up to WriteBatch
// queued frames per wakeup and flushing them with a single vectored write —
// under load the queue refills while the kernel drains the previous flush,
// so frames-per-syscall rises with pressure and latency stays flat. The
// write deadline is coalesced: it is reset only once it has decayed by more
// than a slack threshold, not per frame. The first failure drops the
// connection (firing the watch notification) and every frame — gathered and
// still queued — goes back to the pool in one pass.
func (t *Transport) writeLoop(dst id.ID, oc *outConn) {
	defer t.wg.Done()
	drain := func() {
		for {
			select {
			case sc := <-oc.ch:
				putScratch(sc)
			default:
				return
			}
		}
	}
	wb := batchPool.Get().(*writeBatch)
	defer batchPool.Put(wb)
	for {
		select {
		case sc := <-oc.ch:
			wb.scs = append(wb.scs, sc)
			wb.bufs = append(wb.bufs, sc.frame)
		gather:
			for len(wb.scs) < t.cfg.WriteBatch {
				select {
				case more := <-oc.ch:
					wb.scs = append(wb.scs, more)
					wb.bufs = append(wb.bufs, more.frame)
				default:
					break gather
				}
			}
			err := t.flush(oc, wb)
			wb.release()
			if err != nil {
				t.dropConn(dst, oc)
				drain()
				return
			}
		case <-oc.closed:
			drain()
			return
		}
	}
}

// flush writes the gathered frames: a plain write for a single frame, a
// vectored write (writev on TCP) for a batch. The write deadline is
// coalesced — re-armed only once the armed deadline has decayed by more than
// a slack threshold, because a frame is late only once the whole
// WriteTimeout passed, so re-arming within the slack window buys nothing.
// Frame ownership stays with the caller — release runs either way. On
// failure nothing is counted: the connection is about to drop and the kernel
// may have taken any prefix of the batch, which is the same partial-write
// uncertainty a failed single write always had.
func (t *Transport) flush(oc *outConn, wb *writeBatch) error {
	now := time.Now()
	if slack := t.cfg.WriteTimeout / 4; oc.deadline.Sub(now) < t.cfg.WriteTimeout-slack {
		oc.deadline = now.Add(t.cfg.WriteTimeout)
		if err := oc.c.SetWriteDeadline(oc.deadline); err != nil {
			return err
		}
	}
	n := len(wb.bufs)
	var err error
	if n == 1 {
		_, err = oc.c.Write(wb.bufs[0])
	} else {
		// WriteTo consumes the slice it is given, so hand it a copy of the
		// header: wb.bufs keeps the full backing array for the next wakeup.
		iov := wb.bufs
		_, err = iov.WriteTo(oc.c)
	}
	if err != nil {
		return err
	}
	t.framesSent.Add(uint64(n))
	t.writeCalls.Add(1)
	if n > 1 {
		t.batchedWrites.Add(1)
	}
	return nil
}

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() Stats {
	return Stats{
		FramesSent:    t.framesSent.Load(),
		Overflowed:    t.overflowed.Load(),
		FaultDropped:  t.faultDropped.Load(),
		WriteCalls:    t.writeCalls.Load(),
		BatchedWrites: t.batchedWrites.Load(),
		ReadSyscalls:  t.readSyscalls.Load(),
	}
}

// Probe attempts to establish (or reuse) a connection to dst without sending
// anything, mirroring the paper's connection test before a NEIGHBOR request.
func (t *Transport) Probe(dst id.ID) error {
	_, err := t.conn(dst)
	return err
}

// Connected reports whether a cached connection to dst currently exists,
// without dialing.
func (t *Transport) Connected(dst id.ID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.conns[dst]
	return ok
}

// Watch marks dst so that a broken connection to it triggers onPeerDown.
// An active-view link is an open TCP connection in the paper's architecture
// (§4.1), so Watch also ensures one exists: it dials asynchronously if
// needed, and a failed dial reports the peer as down immediately.
func (t *Transport) Watch(dst id.ID) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.watched[dst] = true
	_, connected := t.conns[dst]
	t.mu.Unlock()
	if connected {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		if _, err := t.conn(dst); err != nil {
			t.mu.Lock()
			fire := t.watched[dst] && !t.closed
			if fire {
				delete(t.watched, dst)
			}
			cb := t.onPeerDown
			t.mu.Unlock()
			if fire && cb != nil {
				cb(dst)
			}
		}
	}()
}

// Unwatch cancels Watch.
func (t *Transport) Unwatch(dst id.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.watched, dst)
}

// appendDirectory appends the (id, addr) side table for every identifier m
// references to dst (a reused scratch buffer), so receivers can dial nodes
// they just learned about. The paper's identifiers are (ip, port) tuples;
// this reconstructs that property over our compact IDs. Deduplication is a
// linear scan over the entries built so far: messages reference a handful of
// identifiers, and the scan keeps the hot send path free of the map and
// intermediate slice the old ReferencedIDs-based assembly allocated.
func (t *Transport) appendDirectory(dst []msg.DirEntry, m msg.Message) []msg.DirEntry {
	add := func(n id.ID) {
		if n.IsNil() {
			return
		}
		for _, d := range dst {
			if d.Node == n {
				return
			}
		}
		if addr, ok := t.book.Addr(n); ok {
			dst = append(dst, msg.DirEntry{Node: n, Addr: addr})
		}
	}
	add(m.Sender)
	add(m.Subject)
	for _, n := range m.Nodes {
		add(n)
	}
	for _, e := range m.Entries {
		add(e.Node)
	}
	return dst
}

// conn returns a cached connection to dst, dialing on demand.
func (t *Transport) conn(dst id.ID) (*outConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if oc, ok := t.conns[dst]; ok {
		t.mu.Unlock()
		return oc, nil
	}
	addr, ok := t.book.Addr(dst)
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dial %v: unknown address: %w", dst, peer.ErrPeerDown)
	}

	c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial %v (%s): %w", dst, addr, peer.ErrPeerDown)
	}
	oc := &outConn{
		c:      c,
		ch:     make(chan *sendScratch, t.cfg.SendQueue),
		closed: make(chan struct{}),
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[dst]; ok {
		// Lost a dial race; keep the existing connection.
		t.mu.Unlock()
		_ = c.Close()
		return existing, nil
	}
	t.conns[dst] = oc
	t.mu.Unlock()

	// The reader goroutine turns the remote's messages on this connection
	// into deliveries and, crucially, detects connection breakage: that is
	// the TCP failure detector. The writer goroutine drains the bounded send
	// queue (see Send).
	t.wg.Add(2)
	go t.writeLoop(dst, oc)
	go func() {
		defer t.wg.Done()
		t.readLoop(oc.c)
		t.dropConn(dst, oc)
	}()
	return oc, nil
}

// dropConn closes and forgets a cached connection and fires the peer-down
// notification when the peer was watched.
func (t *Transport) dropConn(dst id.ID, oc *outConn) {
	t.mu.Lock()
	watched := false
	if t.conns[dst] == oc {
		delete(t.conns, dst)
		watched = t.watched[dst] && !t.closed
		if watched {
			delete(t.watched, dst)
		}
	}
	cb := t.onPeerDown
	t.mu.Unlock()
	oc.shut()
	_ = oc.c.Close()
	if watched && cb != nil {
		cb(dst)
	}
}

// acceptLoop serves inbound connections.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.inbound[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readLoop(c)
			t.mu.Lock()
			delete(t.inbound, c)
			t.mu.Unlock()
			_ = c.Close()
		}()
	}
}

// countingReader is the kernel-facing side of a connection's buffered
// reader: every Read is one read(2) on the socket, tallied into the
// transport's ReadSyscalls counter so frames-per-syscall is observable on
// the receive path too.
type countingReader struct {
	c net.Conn
	n *atomic.Uint64
}

func (r *countingReader) Read(p []byte) (int, error) {
	n, err := r.c.Read(p)
	r.n.Add(1)
	return n, err
}

// nopReader parks pooled bufio.Readers between connections so a pooled
// reader never pins a dead connection.
type nopReader struct{}

func (nopReader) Read([]byte) (int, error) { return 0, io.EOF }

// readerPools shares sized bufio.Readers across every transport in the
// process, keyed by buffer size. A reader is checked out for its
// connection's whole lifetime, so a per-transport pool would hold nothing
// but corpses: each new transport (tests and benchmarks start them by the
// dozen) would re-allocate — and the runtime would re-zero — its entire
// working set of buffers. Buffer sizes are process-wide constants in
// practice, which is exactly the sharing axis sync.Map handles well.
var readerPools sync.Map // int -> *sync.Pool

func getReader(size int) *bufio.Reader {
	p, ok := readerPools.Load(size)
	if !ok {
		p, _ = readerPools.LoadOrStore(size, &sync.Pool{
			New: func() any { return bufio.NewReaderSize(nopReader{}, size) },
		})
	}
	return p.(*sync.Pool).Get().(*bufio.Reader)
}

func putReader(size int, br *bufio.Reader) {
	br.Reset(nopReader{})
	if p, ok := readerPools.Load(size); ok {
		p.(*sync.Pool).Put(br)
	}
}

// readLoop decodes frames from c and dispatches them until the connection
// errors or the transport closes. The connection is wrapped in a sized,
// pooled buffered reader: one kernel read pulls in as many back-to-back
// frames as fit, and the length-prefix + payload decode of each is then
// buffer-only — under load the two reads per frame collapse to a fraction
// of one. The frame buffer is reused across frames: msg.Decode copies every
// variable-length field into fresh memory (nothing the protocol retains
// aliases the buffer or the read buffer), so one buffer per connection
// amortizes to zero allocations per received frame, and the decode-bounds
// guarantees (maxFrame here, list/payload caps in the codec) are unchanged.
func (t *Transport) readLoop(c net.Conn) {
	cr := countingReader{c: c, n: &t.readSyscalls}
	br := getReader(t.cfg.ReadBuffer)
	br.Reset(&cr)
	defer putReader(t.cfg.ReadBuffer, br)
	var lenBuf [lenHeaderSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		m, _, err := msg.Decode(buf)
		if err != nil {
			return // corrupt peer; drop the connection
		}
		// Absorb the address side table before dispatching so the protocol
		// can immediately act on any identifier the message mentions.
		for _, d := range m.Directory {
			if d.Node != t.self && d.Addr != "" {
				t.book.Put(d.Node, d.Addr)
			}
		}
		if t.closedFlag.Load() {
			return
		}
		// The fault-injection seam: same contract as netsim.Sim.Intercept.
		// On the wire the dispatch identity is m.Sender either way, so a
		// replacement message fully controls what the stack observes.
		if hook := t.cfg.Intercept; hook != nil {
			repl, deliver := hook(t.self, &m)
			if !deliver {
				t.faultDropped.Add(1)
				continue
			}
			if repl != nil {
				m = *repl
			}
		}
		t.onMessage(m.Sender, m)
	}
}

// Close shuts the listener and all connections down and waits for every
// transport goroutine to exit.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.closedFlag.Store(true)
	outs := make([]*outConn, 0, len(t.conns))
	conns := make([]net.Conn, 0, len(t.conns)+len(t.inbound))
	for _, oc := range t.conns {
		outs = append(outs, oc)
		conns = append(conns, oc.c)
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.conns = make(map[id.ID]*outConn)
	t.inbound = make(map[net.Conn]struct{})
	t.mu.Unlock()

	err := t.ln.Close()
	for _, oc := range outs {
		oc.shut() // release writer goroutines blocked on their queues
	}
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	return err
}
