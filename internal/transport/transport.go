// Package transport implements the real-network counterpart of the
// simulator: length-prefixed binary framing of msg.Message over TCP, a
// cached-connection sender whose failures surface as peer.ErrPeerDown, and
// watch-based connection-breakage notifications.
//
// The paper's architecture (§1, §4) assumes exactly this substrate: gossip
// over TCP so that omissions need not be masked by redundancy, and TCP
// doubling as the failure detector. The HyParView authors deferred a real
// deployment to future work (PlanetLab, §6); this package provides it.
//
// Two layers live here. Transport is the wire: framing, a per-peer
// connection lifecycle manager (dial, redial-with-backoff, suspicion,
// graceful drain), address directory, watch notifications. Agent hosts the
// complete protocol stack over one Transport — HyParView membership, flood
// or Plumtree broadcast (AgentConfig.Broadcast), and optionally the X-BOT
// overlay optimizer fed by live PING/PONG RTT measurements
// (AgentConfig.Optimize) — inside a single actor goroutine, so the same
// unsynchronized protocol code runs here and in the simulator. The agent
// also provides the real-clock half of the peer.Scheduler contract (one
// tick = 1ms): protocols schedule their own timers and periodic rounds —
// Plumtree's missing-message timer, HyParView's shuffle ΔT, X-BOT's
// optimization cadence — and the scheduled messages re-enter the actor loop
// exactly like network traffic.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/rng"
)

// Frame format: 4-byte big-endian payload length followed by the msg codec
// encoding. maxFrame protects against corrupt peers.
const (
	lenHeaderSize = 4
	maxFrame      = 1 << 26
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Config tunes transport behaviour.
type Config struct {
	// DialTimeout bounds connection establishment (default 3s).
	DialTimeout time.Duration
	// WriteTimeout bounds a single frame write (default 5s).
	WriteTimeout time.Duration
	// SendQueue caps the per-peer outbound frame queue (default 256). Frames
	// are written by a per-peer writer goroutine; when a slow peer's
	// queue is full the frame is shed and Send returns peer.ErrOverflow
	// (counted in Stats.Overflowed) — the same degrade-don't-die overload
	// semantics as the simulator's MaxQueue, instead of blocking the caller
	// until overload becomes indistinguishable from peer death.
	SendQueue int
	// WriteBatch caps how many queued frames one writer wakeup gathers into
	// a single vectored write (default 32). Under load the per-peer queue
	// fills faster than the kernel drains it, so one writev flushes many
	// frames — the data-plane counterpart of the pub/sub layer's
	// publish-side batching. 1 disables coalescing.
	WriteBatch int
	// ReadBuffer sizes the per-connection buffered reader (default 8KiB).
	// Length prefix and payload are decoded out of the buffer, so a batch of
	// small frames arriving back-to-back touches the kernel once instead of
	// twice per frame; payloads larger than the buffer bypass it and read
	// directly into the frame buffer, still one syscall.
	ReadBuffer int

	// RedialBase and RedialCap bound the decorrelated-jitter backoff between
	// redial attempts on a broken watched link (defaults 25ms and 500ms).
	// Each sleep is drawn from [RedialBase, 3×previous], capped, so retries
	// across peers desynchronize instead of thundering in lockstep.
	RedialBase time.Duration
	RedialCap  time.Duration
	// RedialBudget caps dial attempts per outage on a watched link (default
	// 4). Transient dial or write failures become retries instead of an
	// instant peer.ErrPeerDown verdict; only a spent budget fires the watch.
	RedialBudget int
	// SuspicionWindow is the wall-clock bound on one outage: once a watched
	// link has been down this long the watch fires even if the attempt
	// budget remains (default 2s). Together with RedialBudget it bounds how
	// stale an active view can get: a dead neighbor is reported within
	// roughly SuspicionWindow plus one DialTimeout.
	SuspicionWindow time.Duration
	// DrainTimeout bounds the graceful flush of a peer's queued frames on
	// deliberate teardown — demotion, DISCONNECT, Close (default 200ms).
	DrainTimeout time.Duration

	// Dial, when non-nil, replaces net.DialTimeout for outbound connections:
	// the dial half of the socket-level fault seam (see faults.Sockets).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// WrapConn, when non-nil, wraps every connection — outbound
	// (inbound=false) and accepted (inbound=true) — before the transport
	// uses it: the wire half of the socket-level fault seam. Wrapped
	// connections that do not expose syscall.Conn lose the writev fast path
	// and the Probe peek check, which is acceptable for fault injection.
	WrapConn func(c net.Conn, inbound bool) net.Conn

	// Intercept, when non-nil, is the message-level fault-injection seam
	// (the real-socket counterpart of netsim.Sim.Intercept): it observes
	// every decoded inbound message after the address directory is absorbed
	// and before dispatch. Returning false suppresses the delivery;
	// returning a non-nil replacement dispatches it instead. It is invoked
	// from reader goroutines, so implementations must be safe for concurrent
	// use (see faults.Synchronized). Nil costs one predictable branch per
	// frame.
	Intercept func(node id.ID, m *msg.Message) (*msg.Message, bool)
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 5 * time.Second
	}
	if c.SendQueue == 0 {
		c.SendQueue = 256
	}
	if c.WriteBatch <= 0 {
		c.WriteBatch = 32
	}
	if c.ReadBuffer <= 0 {
		c.ReadBuffer = 8 << 10
	}
	if c.RedialBase <= 0 {
		c.RedialBase = 25 * time.Millisecond
	}
	if c.RedialCap <= 0 {
		c.RedialCap = 500 * time.Millisecond
	}
	if c.RedialBudget <= 0 {
		c.RedialBudget = 4
	}
	if c.SuspicionWindow <= 0 {
		c.SuspicionWindow = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 200 * time.Millisecond
	}
	return c
}

// Stats counts transport-level events. All counters are cumulative.
type Stats struct {
	// FramesSent counts frames successfully written to a socket.
	FramesSent uint64
	// Overflowed counts frames shed because a peer's send queue was full;
	// each corresponds to one Send that returned peer.ErrOverflow.
	Overflowed uint64
	// FaultDropped counts inbound deliveries suppressed by Config.Intercept.
	FaultDropped uint64
	// WriteCalls counts vectored flushes issued by writer goroutines — one
	// per writev into the kernel, so FramesSent/WriteCalls is the write
	// path's frames-per-syscall ratio (see FramesPerWrite).
	WriteCalls uint64
	// BatchedWrites counts flushes that carried two or more frames: wakeups
	// where the batch drain actually amortized a syscall.
	BatchedWrites uint64
	// ReadSyscalls counts kernel reads across all connections. With the
	// buffered reader a back-to-back batch of small frames costs one read,
	// so FramesSent (at the peers) outpaces ReadSyscalls under load.
	ReadSyscalls uint64
	// Redials counts dial attempts made by the backoff machinery beyond a
	// link's first contact: every retry after a broken connection or a
	// failed watch-establishment dial. A rising Redials with stable views
	// means transient faults are being absorbed, which is the point.
	Redials uint64
	// DialRacesLost counts outbound dials discarded because a concurrent
	// dial to the same peer won the cache slot (previously the loser was
	// silently closed).
	DialRacesLost uint64
	// Suspected counts links condemned by Suspect — the RTT prober's
	// half-open verdict on a stalled-but-not-closed peer.
	Suspected uint64
	// Drained counts graceful teardowns that ran the deadline-bounded flush
	// of queued frames (demotion, DISCONNECT, Close).
	Drained uint64
}

// FramesPerWrite reports the average number of frames flushed per vectored
// write — the write path's frames-per-syscall ratio (1.0 means no batching
// engaged; higher means queued frames were coalesced).
func (s Stats) FramesPerWrite() float64 {
	if s.WriteCalls == 0 {
		return 0
	}
	return float64(s.FramesSent) / float64(s.WriteCalls)
}

// Transport sends and receives protocol messages over TCP. One Transport
// serves one node. All exported methods are safe for concurrent use.
type Transport struct {
	self id.ID
	addr string
	cfg  Config
	book *id.Book
	ln   net.Listener

	onMessage  func(from id.ID, m msg.Message)
	onPeerDown func(peerID id.ID)

	mu      sync.Mutex
	conns   map[id.ID]*link
	inbound map[net.Conn]struct{}
	watched map[id.ID]bool
	closed  bool

	// quit is closed once on Close, releasing backoff sleeps and writer
	// selects that no connection close would reach.
	quit chan struct{}

	// closedFlag mirrors closed for the per-frame fast check in readLoop,
	// keeping the mutex off the receive hot path.
	closedFlag atomic.Bool

	framesSent    atomic.Uint64
	overflowed    atomic.Uint64
	faultDropped  atomic.Uint64
	writeCalls    atomic.Uint64
	batchedWrites atomic.Uint64
	readSyscalls  atomic.Uint64
	redials       atomic.Uint64
	dialRacesLost atomic.Uint64
	suspected     atomic.Uint64
	drained       atomic.Uint64

	// writers tracks only the per-link writer goroutines so Close can give
	// them one bounded grace period to drain before cutting power; wg tracks
	// every transport goroutine (writers included) for the final join.
	writers sync.WaitGroup
	wg      sync.WaitGroup
}

// link is one peer's connection lifecycle: a persistent writer goroutine and
// send queue that survive reconnects, plus the current physical connection
// under an epoch counter. Epochs are the no-resurrection contract: every
// reader/writer reports breakage against the epoch it was serving, so a
// stale goroutine outliving a replaced or deliberately dropped connection
// can never tear down (or revive) its successor.
//
// The lifecycle is: active (c non-nil) → broken (c nil, writer redialing
// with backoff) → active again on a successful redial, or condemned
// (removed from the table, queue reclaimed, watch fired if the failure
// budget was spent). Deliberate teardown (Drain) short-circuits to
// condemned after flushing the queue.
type link struct {
	dst id.ID
	ch  chan *sendScratch // owned frames; the writer returns them to the pool

	closed chan struct{} // closed exactly once when the link is condemned
	once   sync.Once
	// drainReq asks the writer for a graceful flush-then-close teardown.
	drainReq  chan struct{}
	drainOnce sync.Once

	// condemned fences Send admissions; inflight counts senders between
	// their admission check and enqueue, so teardown can wait them out and
	// the post-condemn queue reclaim is complete (no stranded frames).
	condemned atomic.Bool
	inflight  atomic.Int64

	deadline time.Time // armed write deadline (writer goroutine only)

	mu    sync.Mutex
	c     net.Conn      // nil while broken/redialing
	epoch uint64        // bumped for every installed connection
	dead  chan struct{} // per-epoch: closed when that epoch's conn broke
}

// shut marks the link condemned for queued and future senders.
func (l *link) shut() { l.once.Do(func() { close(l.closed) }) }

// requestDrain asks the writer for a graceful teardown (idempotent).
func (l *link) requestDrain() { l.drainOnce.Do(func() { close(l.drainReq) }) }

// enter admits a sender; pairs with exit. A condemned link admits nobody, so
// after condemnation-plus-wait the queue is final and reclaimQueue cannot
// race an enqueue.
func (l *link) enter() bool {
	l.inflight.Add(1)
	if l.condemned.Load() {
		l.inflight.Add(-1)
		return false
	}
	return true
}

func (l *link) exit() { l.inflight.Add(-1) }

// current snapshots the live connection, its epoch and the epoch's dead
// channel.
func (l *link) current() (net.Conn, chan struct{}, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c, l.dead, l.epoch
}

// install publishes a freshly dialed connection as the link's current one
// and returns its epoch. It fails when the link was condemned while the
// dial was in flight — the caller must close the connection.
func (l *link) install(c net.Conn) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.condemned.Load() {
		return 0, false
	}
	l.c = c
	l.epoch++
	l.dead = make(chan struct{})
	l.deadline = time.Time{}
	return l.epoch, true
}

// broke retires the connection serving epoch: the first reporter gets the
// connection back (to close) and the epoch's dead channel closes so the
// writer re-evaluates. Stale reporters — a reader outliving a replaced
// connection — get nil and cannot disturb the successor epoch.
func (l *link) broke(epoch uint64) net.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.epoch != epoch || l.c == nil {
		return nil
	}
	c := l.c
	l.c = nil
	close(l.dead)
	return c
}

// Listen opens a listener on addr ("host:port", ":0" for ephemeral) and
// returns a transport whose identity is derived from the bound address.
// onMessage is invoked from reader goroutines — implementations must be
// concurrency-safe or hand off to a single consumer (see Agent). onPeerDown
// (may be nil) is invoked when a watched peer's connection breaks for good:
// after the redial budget or suspicion window is spent, or on Suspect.
func Listen(addr string, cfg Config, onMessage func(id.ID, msg.Message), onPeerDown func(id.ID)) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport listen %s: %w", addr, err)
	}
	bound := ln.Addr().String()
	t := &Transport{
		self:       id.FromAddr(bound),
		addr:       bound,
		cfg:        cfg.withDefaults(),
		book:       id.NewBook(),
		ln:         ln,
		onMessage:  onMessage,
		onPeerDown: onPeerDown,
		conns:      make(map[id.ID]*link),
		inbound:    make(map[net.Conn]struct{}),
		watched:    make(map[id.ID]bool),
		quit:       make(chan struct{}),
	}
	t.book.Put(t.self, bound)
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Self returns the transport's node identifier.
func (t *Transport) Self() id.ID { return t.self }

// Addr returns the bound listen address.
func (t *Transport) Addr() string { return t.addr }

// Register adds a (node, addr) mapping so the node becomes dialable. It
// returns the derived identifier for convenience.
func (t *Transport) Register(addr string) id.ID {
	node := id.FromAddr(addr)
	t.book.Put(node, addr)
	return node
}

// Book exposes the address book (shared with the hosting agent).
func (t *Transport) Book() *id.Book { return t.book }

// sendScratch is the per-send working memory — the frame being encoded and
// the directory side table — recycled through sendPool so the steady-state
// send path allocates nothing. The buffers are dead the moment Send returns
// (the frame bytes are on the wire, the directory was copied into the frame
// by the encoder), which is exactly the lifetime a pool wants.
type sendScratch struct {
	frame []byte
	dir   []msg.DirEntry
}

var sendPool = sync.Pool{New: func() any { return &sendScratch{} }}

// scratchBalance tracks checked-out sendScratches (gets minus puts). Frame
// buffers pass through Send, the per-peer queue, the writer's batch and —
// on connection failure — the reclaim path; the balance returning to its
// prior value is how tests prove none of those paths leaks a frame. One
// uncontended atomic add per side is noise next to the syscall it brackets.
var scratchBalance atomic.Int64

func getScratch() *sendScratch {
	scratchBalance.Add(1)
	return sendPool.Get().(*sendScratch)
}

func putScratch(sc *sendScratch) {
	scratchBalance.Add(-1)
	sendPool.Put(sc)
}

// Send delivers m to dst over a cached or freshly dialed connection. A
// failure to dial first contact is reported as peer.ErrPeerDown. The frame
// itself is written asynchronously by the peer's writer goroutine: Send
// returns once the frame is queued, a full queue sheds the frame with
// peer.ErrOverflow (the peer is overloaded, not dead), and a write failure
// on an established watched link triggers the redial machinery — queued
// frames survive the outage — before any watch notification fires.
func (t *Transport) Send(dst id.ID, m msg.Message) error {
	l, err := t.conn(dst)
	if err != nil {
		return err
	}
	if !l.enter() {
		return fmt.Errorf("send %v: %w", dst, peer.ErrPeerDown)
	}
	defer l.exit()
	sc := getScratch()
	sc.dir = t.appendDirectory(sc.dir[:0], m)
	m.Directory = sc.dir
	frame := append(sc.frame[:0], make([]byte, lenHeaderSize)...)
	frame = msg.AppendEncode(frame, m)
	sc.frame = frame
	binary.BigEndian.PutUint32(frame[:lenHeaderSize], uint32(len(frame)-lenHeaderSize))

	select {
	case l.ch <- sc: // ownership of sc transfers to the writer goroutine
		return nil
	default:
		putScratch(sc)
		t.overflowed.Add(1)
		return fmt.Errorf("send %v: queue full: %w", dst, peer.ErrOverflow)
	}
}

// writeBatch is one writer wakeup's worth of frames: the iovec array handed
// to the kernel and the owned scratches whose frame buffers it aliases. Both
// slices ratchet to WriteBatch capacity and recycle through batchPool, so
// the steady-state flush allocates nothing.
type writeBatch struct {
	bufs net.Buffers
	scs  []*sendScratch
}

var batchPool = sync.Pool{New: func() any { return &writeBatch{} }}

// release returns every gathered frame to the send pool in one pass and
// empties the batch. It is the single ownership hand-back point for both the
// success path and the mid-batch failure drop.
func (wb *writeBatch) release() {
	for i, sc := range wb.scs {
		putScratch(sc)
		wb.scs[i] = nil
		wb.bufs[i] = nil
	}
	wb.scs = wb.scs[:0]
	wb.bufs = wb.bufs[:0]
}

// serveVerdict is why serve stopped pumping the current connection.
type serveVerdict uint8

const (
	serveBroken serveVerdict = iota // connection failed; redial decides
	serveDrain                      // graceful teardown requested
	serveStop                       // link condemned or transport closing
)

// runLink is the link's writer goroutine, alive for the link's whole
// lifetime — across reconnects, which is what lets the send queue survive
// an outage. It pumps the queue into the current connection; on breakage
// the redial state machine decides between a backoff retry (watched links)
// and teardown.
func (t *Transport) runLink(l *link) {
	defer t.wg.Done()
	defer t.writers.Done()
	wb := batchPool.Get().(*writeBatch)
	defer batchPool.Put(wb)
	for {
		c, dead, epoch := l.current()
		if c == nil {
			if !t.redial(l) {
				return
			}
			continue
		}
		switch t.serve(l, c, dead, epoch, wb) {
		case serveBroken:
			// Loop: redial (via the nil-conn branch) decides what happens.
		case serveDrain:
			t.drainLink(l, c, wb)
			return
		case serveStop:
			return
		}
	}
}

// serve pumps queued frames into c — gathering up to WriteBatch frames per
// wakeup into one vectored write, so frames-per-syscall rises with pressure
// and latency stays flat — until the connection breaks, a drain is
// requested, or the link stops. On a write failure the gathered batch is
// forfeit (the kernel may have taken any prefix of it, the same uncertainty
// a failed single write has) but still-queued frames stay for the successor
// connection.
func (t *Transport) serve(l *link, c net.Conn, dead chan struct{}, epoch uint64, wb *writeBatch) serveVerdict {
	for {
		select {
		case sc := <-l.ch:
			wb.scs = append(wb.scs, sc)
			wb.bufs = append(wb.bufs, sc.frame)
		gather:
			for len(wb.scs) < t.cfg.WriteBatch {
				select {
				case more := <-l.ch:
					wb.scs = append(wb.scs, more)
					wb.bufs = append(wb.bufs, more.frame)
				default:
					break gather
				}
			}
			err := t.flushConn(l, c, wb)
			wb.release()
			if err != nil {
				if cc := l.broke(epoch); cc != nil {
					_ = cc.Close()
				}
				return serveBroken
			}
		case <-dead:
			return serveBroken
		case <-l.drainReq:
			return serveDrain
		case <-l.closed:
			return serveStop
		case <-t.quit:
			return serveStop
		}
	}
}

// flushConn writes the gathered frames with the coalesced write deadline:
// re-armed only once the armed deadline has decayed by more than a slack
// threshold, because a frame is late only once the whole WriteTimeout
// passed, so re-arming within the slack window buys nothing.
func (t *Transport) flushConn(l *link, c net.Conn, wb *writeBatch) error {
	now := time.Now()
	if slack := t.cfg.WriteTimeout / 4; l.deadline.Sub(now) < t.cfg.WriteTimeout-slack {
		l.deadline = now.Add(t.cfg.WriteTimeout)
		if err := c.SetWriteDeadline(l.deadline); err != nil {
			return err
		}
	}
	return t.writeOut(c, wb)
}

// writeOut issues the gathered frames: a plain write for a single frame, a
// vectored write (writev on TCP) for a batch. Frame ownership stays with
// the caller — release runs either way. On failure nothing is counted: the
// connection is about to drop and the kernel may have taken any prefix of
// the batch.
func (t *Transport) writeOut(c net.Conn, wb *writeBatch) error {
	n := len(wb.bufs)
	var err error
	if n == 1 {
		_, err = c.Write(wb.bufs[0])
	} else {
		// WriteTo consumes the slice it is given, so hand it a copy of the
		// header: wb.bufs keeps the full backing array for the next wakeup.
		iov := wb.bufs
		_, err = iov.WriteTo(c)
	}
	if err != nil {
		return err
	}
	t.framesSent.Add(uint64(n))
	t.writeCalls.Add(1)
	if n > 1 {
		t.batchedWrites.Add(1)
	}
	return nil
}

// redial decides a broken link's fate. An unwatched link is torn down on
// the spot: nobody asked for failure notifications and the next Send dials
// fresh. A watched link is an active-view edge — the paper's failure
// detector signal (§4.1) — so a transient outage should heal invisibly: the
// writer retries with capped decorrelated-jitter backoff until either a
// dial lands (the link resumes under a new epoch, queue intact) or the
// failure budget / suspicion window is spent and the watch fires. Returns
// false when the writer should exit.
func (t *Transport) redial(l *link) bool {
	if l.condemned.Load() {
		return false
	}
	t.mu.Lock()
	watched := t.watched[l.dst] && !t.closed
	addr, known := t.book.Addr(l.dst)
	t.mu.Unlock()
	if !watched || !known {
		t.failLink(l, false)
		return false
	}
	r := rng.New(uint64(l.dst) ^ uint64(time.Now().UnixNano()))
	start := time.Now()
	sleep := t.cfg.RedialBase
	for attempt := 1; ; attempt++ {
		t.redials.Add(1)
		c, err := t.dialAddr(addr)
		if err == nil {
			if epoch, ok := l.install(c); ok {
				// Adding from the writer goroutine is safe: the writer itself
				// keeps t.wg above zero until after this add.
				t.wg.Add(1)
				t.startReader(l, c, epoch)
				return true
			}
			_ = c.Close() // condemned while dialing; stay down
			return false
		}
		if attempt >= t.cfg.RedialBudget || time.Since(start) >= t.cfg.SuspicionWindow {
			t.failLink(l, true)
			return false
		}
		select {
		case <-time.After(sleep):
		case <-l.drainReq:
			// Draining a link with no connection: nothing to flush into.
			t.failLink(l, false)
			return false
		case <-l.closed:
			return false
		case <-t.quit:
			t.failLink(l, false)
			return false
		}
		sleep = nextBackoff(r, sleep, t.cfg.RedialBase, t.cfg.RedialCap)
		t.mu.Lock()
		watched = t.watched[l.dst] && !t.closed
		t.mu.Unlock()
		if !watched {
			// Unwatched mid-outage (demotion raced the redial): stop quietly.
			t.failLink(l, false)
			return false
		}
	}
}

// nextBackoff draws the next decorrelated-jitter sleep: uniform in
// [base, 3×prev], capped. Decorrelation keeps a fleet of redialing peers
// from synchronizing into retry storms the way a fixed multiplier does.
func nextBackoff(r *rng.Rand, prev, base, cap time.Duration) time.Duration {
	hi := 3 * prev
	if hi > cap {
		hi = cap
	}
	if hi <= base {
		return base
	}
	return base + time.Duration(r.Uint64n(uint64(hi-base)))
}

// condemn retires l exactly once: out of the connection table, closed to
// new senders, in-flight enqueuers waited out. The winner owns the queue
// and the connection; false means another path already did.
func (t *Transport) condemn(l *link) bool {
	if !l.condemned.CompareAndSwap(false, true) {
		return false
	}
	t.mu.Lock()
	if t.conns[l.dst] == l {
		delete(t.conns, l.dst)
	}
	t.mu.Unlock()
	l.shut()
	// Senders between enter() and their enqueue select hold no locks and
	// block on nothing; a yield loop outwaits them in nanoseconds.
	for l.inflight.Load() > 0 {
		runtime.Gosched()
	}
	return true
}

// reclaimQueue returns every queued frame to the scratch pool. Only valid
// after condemn: with senders fenced out the queue is final.
func reclaimQueue(l *link) {
	for {
		select {
		case sc := <-l.ch:
			putScratch(sc)
		default:
			return
		}
	}
}

// failLink condemns l the hard way: queued frames go back to the pool, the
// socket closes, and — when fire is set — the watch fires. Safe from any
// goroutine; only the first condemner acts.
func (t *Transport) failLink(l *link, fire bool) {
	if !t.condemn(l) {
		return
	}
	reclaimQueue(l)
	l.mu.Lock()
	c := l.c
	l.c = nil
	l.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
	if fire {
		t.fireWatch(l.dst)
	}
}

// drainLink is the graceful teardown: condemn (fencing senders), then flush
// whatever the queue still holds through the writev batch path under one
// DrainTimeout write deadline, then close. No watch fires — a drain is
// deliberate (demotion, DISCONNECT, Close), not a failure, and the frames
// flushed here are typically the courtesy DISCONNECT itself.
func (t *Transport) drainLink(l *link, c net.Conn, wb *writeBatch) {
	if !t.condemn(l) {
		return
	}
	_ = c.SetWriteDeadline(time.Now().Add(t.cfg.DrainTimeout))
	for {
	gather:
		for len(wb.scs) < t.cfg.WriteBatch {
			select {
			case sc := <-l.ch:
				wb.scs = append(wb.scs, sc)
				wb.bufs = append(wb.bufs, sc.frame)
			default:
				break gather
			}
		}
		if len(wb.scs) == 0 {
			break
		}
		err := t.writeOut(c, wb)
		wb.release()
		if err != nil {
			reclaimQueue(l)
			break
		}
	}
	l.mu.Lock()
	cc := l.c
	l.c = nil
	l.mu.Unlock()
	if cc != nil {
		_ = cc.Close()
	} else {
		_ = c.Close()
	}
	t.drained.Add(1)
}

// fireWatch delivers the peer-down notification for dst if it is still
// watched. The watch is consumed: one shot per Watch, like the paper's
// connection-loss signal.
func (t *Transport) fireWatch(dst id.ID) {
	t.mu.Lock()
	fire := t.watched[dst] && !t.closed
	if fire {
		delete(t.watched, dst)
	}
	cb := t.onPeerDown
	t.mu.Unlock()
	if fire && cb != nil {
		cb(dst)
	}
}

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() Stats {
	return Stats{
		FramesSent:    t.framesSent.Load(),
		Overflowed:    t.overflowed.Load(),
		FaultDropped:  t.faultDropped.Load(),
		WriteCalls:    t.writeCalls.Load(),
		BatchedWrites: t.batchedWrites.Load(),
		ReadSyscalls:  t.readSyscalls.Load(),
		Redials:       t.redials.Load(),
		DialRacesLost: t.dialRacesLost.Load(),
		Suspected:     t.suspected.Load(),
		Drained:       t.drained.Load(),
	}
}

// Probe checks reachability of dst without sending anything — the paper's
// connection test before a NEIGHBOR request. A cached connection is
// health-checked with a non-consuming zero-byte peek rather than trusted: a
// dead cached connection no longer yields a false "reachable" while the
// reader has yet to observe the close. A broken cache is retired (the
// redial machinery takes over the watched-link side) and the verdict comes
// from a fresh dial; with no cache at all Probe dials and keeps the
// connection.
func (t *Transport) Probe(dst id.ID) error {
	t.mu.Lock()
	l, ok := t.conns[dst]
	t.mu.Unlock()
	if !ok {
		_, err := t.conn(dst)
		return err
	}
	c, _, epoch := l.current()
	if c != nil && connAlive(c) {
		return nil
	}
	if c != nil {
		if cc := l.broke(epoch); cc != nil {
			_ = cc.Close()
		}
	}
	// Between connections (mid-redial) or just-retired cache: report
	// current reachability from a throwaway dial without disturbing the
	// link's own recovery.
	addr, known := t.book.Addr(dst)
	if !known {
		return fmt.Errorf("probe %v: unknown address: %w", dst, peer.ErrPeerDown)
	}
	cc, err := t.dialAddr(addr)
	if err != nil {
		return fmt.Errorf("probe %v (%s): %w", dst, addr, peer.ErrPeerDown)
	}
	_ = cc.Close()
	return nil
}

// Connected reports whether a live cached connection to dst currently
// exists, without dialing. A link mid-redial reports false.
func (t *Transport) Connected(dst id.ID) bool {
	t.mu.Lock()
	l, ok := t.conns[dst]
	t.mu.Unlock()
	if !ok {
		return false
	}
	c, _, _ := l.current()
	return c != nil
}

// Watch marks dst so that a broken connection to it triggers onPeerDown.
// An active-view link is an open TCP connection in the paper's architecture
// (§4.1), so Watch also ensures one exists: it dials asynchronously with
// the same backoff and budget the redial machine applies to established
// links — a transiently unreachable peer becomes retries, not an instant
// verdict, and only a spent budget fires the watch.
func (t *Transport) Watch(dst id.ID) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.watched[dst] = true
	_, connected := t.conns[dst]
	if !connected {
		// Tracked under the same lock as the closed check, so the add cannot
		// race Close's wait.
		t.wg.Add(1)
	}
	t.mu.Unlock()
	if connected {
		return
	}
	go t.establishWatched(dst)
}

// establishWatched dials a watched peer that had no cached connection,
// retrying with backoff inside the failure budget; exhaustion fires the
// watch. Concurrent Sends may win the dial race, which is fine — the link
// exists either way.
func (t *Transport) establishWatched(dst id.ID) {
	defer t.wg.Done()
	r := rng.New(uint64(dst) ^ uint64(time.Now().UnixNano()))
	start := time.Now()
	sleep := t.cfg.RedialBase
	for attempt := 1; ; attempt++ {
		if attempt > 1 {
			t.redials.Add(1)
		}
		_, err := t.conn(dst)
		if err == nil || errors.Is(err, ErrClosed) {
			return
		}
		if attempt >= t.cfg.RedialBudget || time.Since(start) >= t.cfg.SuspicionWindow {
			t.fireWatch(dst)
			return
		}
		select {
		case <-time.After(sleep):
		case <-t.quit:
			return
		}
		sleep = nextBackoff(r, sleep, t.cfg.RedialBase, t.cfg.RedialCap)
		t.mu.Lock()
		still := t.watched[dst] && !t.closed
		t.mu.Unlock()
		if !still {
			return
		}
	}
}

// Unwatch cancels Watch.
func (t *Transport) Unwatch(dst id.ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.watched, dst)
}

// Suspect condemns dst's connection on external evidence of a half-open
// link — the agent's RTT prober observing N consecutive unanswered PINGs.
// TCP alone cannot tell a stalled peer from a slow one until a write times
// out; the prober can, and Suspect turns its verdict into the same signal a
// reset produces: the socket is closed proactively and the watch fires now,
// with no redial grace (the probe misses already spent the suspicion
// window).
func (t *Transport) Suspect(dst id.ID) {
	t.mu.Lock()
	l, ok := t.conns[dst]
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return
	}
	t.suspected.Add(1)
	if ok {
		t.failLink(l, true)
	} else {
		t.fireWatch(dst)
	}
}

// Drain gracefully retires the connection to dst: senders are cut off, the
// frames already queued are flushed within DrainTimeout, and the socket
// closes without firing the watch. The agent invokes it on deliberate
// demotions, so the courtesy DISCONNECT a demotion queues still reaches the
// wire before the FIN. Asynchronous and idempotent; draining an unknown
// peer is a no-op.
func (t *Transport) Drain(dst id.ID) {
	t.mu.Lock()
	delete(t.watched, dst)
	l, ok := t.conns[dst]
	t.mu.Unlock()
	if !ok {
		return
	}
	l.requestDrain()
}

// appendDirectory appends the (id, addr) side table for every identifier m
// references to dst (a reused scratch buffer), so receivers can dial nodes
// they just learned about. The paper's identifiers are (ip, port) tuples;
// this reconstructs that property over our compact IDs. Deduplication is a
// linear scan over the entries built so far: messages reference a handful of
// identifiers, and the scan keeps the hot send path free of the map and
// intermediate slice the old ReferencedIDs-based assembly allocated.
func (t *Transport) appendDirectory(dst []msg.DirEntry, m msg.Message) []msg.DirEntry {
	add := func(n id.ID) {
		if n.IsNil() {
			return
		}
		for _, d := range dst {
			if d.Node == n {
				return
			}
		}
		if addr, ok := t.book.Addr(n); ok {
			dst = append(dst, msg.DirEntry{Node: n, Addr: addr})
		}
	}
	add(m.Sender)
	add(m.Subject)
	for _, n := range m.Nodes {
		add(n)
	}
	for _, e := range m.Entries {
		add(e.Node)
	}
	return dst
}

// dialAddr runs one dial attempt through the configured dialer and conn
// wrapper (the socket-level fault seam).
func (t *Transport) dialAddr(addr string) (net.Conn, error) {
	dial := t.cfg.Dial
	var c net.Conn
	var err error
	if dial != nil {
		c, err = dial(addr, t.cfg.DialTimeout)
	} else {
		c, err = net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	}
	if err != nil {
		return nil, err
	}
	if wrap := t.cfg.WrapConn; wrap != nil {
		c = wrap(c, false)
	}
	return c, nil
}

// conn returns dst's link, dialing a first connection on demand. First
// contact is deliberately synchronous and single-attempt: the protocol
// probes before promoting (Probe → NEIGHBOR) and expects an unreachable
// fresh peer to surface as ErrPeerDown immediately — the backoff machinery
// guards established and watched links, not first contact.
func (t *Transport) conn(dst id.ID) (*link, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if l, ok := t.conns[dst]; ok {
		t.mu.Unlock()
		return l, nil
	}
	addr, ok := t.book.Addr(dst)
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dial %v: unknown address: %w", dst, peer.ErrPeerDown)
	}

	c, err := t.dialAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("dial %v (%s): %w", dst, addr, peer.ErrPeerDown)
	}
	return t.adopt(dst, c)
}

// adopt registers a freshly dialed connection as dst's link and spawns its
// writer and reader goroutines. A lost dial race keeps the incumbent link
// and counts the loss.
func (t *Transport) adopt(dst id.ID, c net.Conn) (*link, error) {
	l := &link{
		dst:      dst,
		ch:       make(chan *sendScratch, t.cfg.SendQueue),
		closed:   make(chan struct{}),
		drainReq: make(chan struct{}),
	}
	l.c = c
	l.epoch = 1
	l.dead = make(chan struct{})

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return nil, ErrClosed
	}
	if existing, ok := t.conns[dst]; ok {
		t.mu.Unlock()
		_ = c.Close()
		t.dialRacesLost.Add(1)
		return existing, nil
	}
	t.conns[dst] = l
	// Goroutine accounting happens under the same lock as the closed check:
	// Close marks closed before waiting on these groups, so an Add can never
	// race a Wait that already saw a zero counter.
	t.writers.Add(1)
	t.wg.Add(2) // the writer and the first connection's reader
	t.mu.Unlock()

	// The reader goroutine turns the remote's messages on this connection
	// into deliveries and, crucially, detects connection breakage: that is
	// the TCP failure detector. The writer goroutine owns the link's whole
	// lifecycle (see runLink).
	go t.runLink(l)
	t.startReader(l, c, 1)
	return l, nil
}

// startReader spawns the reader goroutine for one physical connection. The
// epoch pins its breakage report to this connection: a reader outliving a
// replaced connection cannot tear down the successor. The caller must have
// added the goroutine to t.wg already, from a context where the add cannot
// race Close's wait — under t.mu (adopt) or from a wg-tracked goroutine
// (redial's writer).
func (t *Transport) startReader(l *link, c net.Conn, epoch uint64) {
	go func() {
		defer t.wg.Done()
		t.readLoop(c)
		if cc := l.broke(epoch); cc != nil {
			_ = cc.Close()
		}
		_ = c.Close()
	}()
}

// acceptLoop serves inbound connections.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if wrap := t.cfg.WrapConn; wrap != nil {
			c = wrap(c, true)
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.inbound[c] = struct{}{}
		t.wg.Add(1) // under the closed check's lock; cannot race Close's wait
		t.mu.Unlock()
		go func() {
			defer t.wg.Done()
			t.readLoop(c)
			t.mu.Lock()
			delete(t.inbound, c)
			t.mu.Unlock()
			_ = c.Close()
		}()
	}
}

// countingReader is the kernel-facing side of a connection's buffered
// reader: every Read is one read(2) on the socket, tallied into the
// transport's ReadSyscalls counter so frames-per-syscall is observable on
// the receive path too.
type countingReader struct {
	c net.Conn
	n *atomic.Uint64
}

func (r *countingReader) Read(p []byte) (int, error) {
	n, err := r.c.Read(p)
	r.n.Add(1)
	return n, err
}

// nopReader parks pooled bufio.Readers between connections so a pooled
// reader never pins a dead connection.
type nopReader struct{}

func (nopReader) Read([]byte) (int, error) { return 0, io.EOF }

// readerPools shares sized bufio.Readers across every transport in the
// process, keyed by buffer size. A reader is checked out for its
// connection's whole lifetime, so a per-transport pool would hold nothing
// but corpses: each new transport (tests and benchmarks start them by the
// dozen) would re-allocate — and the runtime would re-zero — its entire
// working set of buffers. Buffer sizes are process-wide constants in
// practice, which is exactly the sharing axis sync.Map handles well.
var readerPools sync.Map // int -> *sync.Pool

func getReader(size int) *bufio.Reader {
	p, ok := readerPools.Load(size)
	if !ok {
		p, _ = readerPools.LoadOrStore(size, &sync.Pool{
			New: func() any { return bufio.NewReaderSize(nopReader{}, size) },
		})
	}
	return p.(*sync.Pool).Get().(*bufio.Reader)
}

func putReader(size int, br *bufio.Reader) {
	br.Reset(nopReader{})
	if p, ok := readerPools.Load(size); ok {
		p.(*sync.Pool).Put(br)
	}
}

// readLoop decodes frames from c and dispatches them until the connection
// errors or the transport closes. The connection is wrapped in a sized,
// pooled buffered reader: one kernel read pulls in as many back-to-back
// frames as fit, and the length-prefix + payload decode of each is then
// buffer-only — under load the two reads per frame collapse to a fraction
// of one. The frame buffer is reused across frames: msg.Decode copies every
// variable-length field into fresh memory (nothing the protocol retains
// aliases the buffer or the read buffer), so one buffer per connection
// amortizes to zero allocations per received frame, and the decode-bounds
// guarantees (maxFrame here, list/payload caps in the codec) are unchanged.
func (t *Transport) readLoop(c net.Conn) {
	cr := countingReader{c: c, n: &t.readSyscalls}
	br := getReader(t.cfg.ReadBuffer)
	br.Reset(&cr)
	defer putReader(t.cfg.ReadBuffer, br)
	var lenBuf [lenHeaderSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n == 0 || n > maxFrame {
			return
		}
		if uint32(cap(buf)) < n {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		m, _, err := msg.Decode(buf)
		if err != nil {
			return // corrupt peer; drop the connection
		}
		// Absorb the address side table before dispatching so the protocol
		// can immediately act on any identifier the message mentions.
		for _, d := range m.Directory {
			if d.Node != t.self && d.Addr != "" {
				t.book.Put(d.Node, d.Addr)
			}
		}
		if t.closedFlag.Load() {
			return
		}
		// The fault-injection seam: same contract as netsim.Sim.Intercept.
		// On the wire the dispatch identity is m.Sender either way, so a
		// replacement message fully controls what the stack observes.
		if hook := t.cfg.Intercept; hook != nil {
			repl, deliver := hook(t.self, &m)
			if !deliver {
				t.faultDropped.Add(1)
				continue
			}
			if repl != nil {
				m = *repl
			}
		}
		t.onMessage(m.Sender, m)
	}
}

// Close shuts the transport down: the listener stops, every link gets the
// same bounded graceful drain a demotion gets (queued frames flush within
// DrainTimeout), stragglers are force-closed, and every goroutine is joined
// before returning.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.closedFlag.Store(true)
	links := make([]*link, 0, len(t.conns))
	for _, l := range t.conns {
		links = append(links, l)
	}
	ins := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		ins = append(ins, c)
	}
	t.mu.Unlock()

	err := t.ln.Close()
	for _, l := range links {
		l.requestDrain()
	}
	// Writers flush and exit on their own within DrainTimeout; give them
	// that long plus slack, then cut the power.
	drained := make(chan struct{})
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.writers.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(t.cfg.DrainTimeout + 100*time.Millisecond):
	}
	close(t.quit)
	for _, l := range links {
		t.failLink(l, false)
	}
	for _, c := range ins {
		_ = c.Close()
	}
	t.wg.Wait()
	return err
}
