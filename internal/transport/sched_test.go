package transport

import (
	"sync"
	"testing"
	"time"

	"hyparview/internal/msg"
	"hyparview/internal/peer/peertest"
)

// The agent's real-clock scheduler must pass the same conformance suite as
// the simulator's virtual-time Endpoint (one tick = 1ms here): the shared
// suite is what lets a protocol written against peer.Scheduler run unchanged
// in both environments.
func TestSchedulerConformance(t *testing.T) {
	peertest.Conformance(t, func(t *testing.T) *peertest.Instance {
		stop := make(chan struct{})
		t.Cleanup(func() { close(stop) })
		var mu sync.Mutex
		var got []msg.Message
		cs := newClockScheduler(func(m msg.Message) {
			mu.Lock()
			got = append(got, m)
			mu.Unlock()
		}, stop)
		return &peertest.Instance{
			Sched: cs,
			Run: func(d uint64) {
				// Wall clock: sleep past the window plus generous slack so a
				// loaded CI box still sees every due firing.
				time.Sleep(time.Duration(d)*tickDuration + 150*time.Millisecond)
			},
			Delivered: func() []msg.Message {
				mu.Lock()
				defer mu.Unlock()
				return append([]msg.Message(nil), got...)
			},
			Real: true,
		}
	})
}

// TestClockSchedulerStopsPeriodic verifies Every goroutines exit on stop and
// deliver nothing afterwards.
func TestClockSchedulerStopsPeriodic(t *testing.T) {
	stop := make(chan struct{})
	var mu sync.Mutex
	count := 0
	cs := newClockScheduler(func(msg.Message) {
		mu.Lock()
		count++
		mu.Unlock()
	}, stop)
	cs.Every(10, msg.Message{Type: msg.Tick})
	time.Sleep(60 * time.Millisecond)
	close(stop)
	cs.wait()
	mu.Lock()
	atStop := count
	mu.Unlock()
	if atStop == 0 {
		t.Fatal("periodic task never fired")
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	after := count
	mu.Unlock()
	if after != atStop {
		t.Errorf("periodic fired after stop: %d -> %d", atStop, after)
	}
}
