package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// The batched data plane's contracts: a mid-batch write failure drops the
// connection exactly once and returns every queued frame to the pool; the
// vectored write preserves frame order and boundaries; buffered reads
// coalesce kernel reads without changing decode semantics; and the batch
// drain stays safe under concurrent Send / connection drop / Close.

// rawSink accepts one connection and holds it unread until released, so a
// sender's kernel buffer fills, its writer goroutine blocks mid-flush, and
// its bounded send queue backs up — the deterministic way to force frames to
// queue behind an in-flight batch.
type rawSink struct {
	ln    net.Listener
	conns chan net.Conn
}

func newRawSink(t *testing.T) *rawSink {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &rawSink{ln: ln, conns: make(chan net.Conn, 1)}
	// The cleanup holds s, which keeps the accepted conn reachable for the
	// whole test: without that, a test that never touches the sink again
	// would let the GC finalize the conn's fd mid-test and RST the sender.
	t.Cleanup(func() {
		_ = ln.Close()
		select {
		case c := <-s.conns:
			_ = c.Close()
		default:
		}
	})
	go func() {
		c, err := ln.Accept()
		if err == nil {
			s.conns <- c
		}
	}()
	return s
}

// conn returns the accepted connection, waiting for the dial to land.
func (s *rawSink) conn(t *testing.T) net.Conn {
	t.Helper()
	select {
	case c := <-s.conns:
		s.conns <- c
		return c
	case <-time.After(3 * time.Second):
		t.Fatal("sink never accepted a connection")
		return nil
	}
}

// fillQueue sends frames at dst until one sheds with ErrOverflow: at that
// point the writer goroutine is blocked in a write and the send queue holds
// SendQueue frames. Returns the number of frames accepted into the queue or
// the kernel.
func fillQueue(t *testing.T, tr *Transport, dst id.ID, payload []byte) int {
	t.Helper()
	accepted := 0
	for i := 0; i < 1<<16; i++ {
		err := tr.Send(dst, msg.Message{Type: msg.Gossip, Sender: tr.Self(), Round: uint64(i), Payload: payload})
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, peer.ErrOverflow):
			return accepted
		default:
			t.Fatalf("send %d: %v", i, err)
		}
	}
	t.Fatal("queue never overflowed against a non-reading peer")
	return 0
}

// TestWriteFailureMidBatchDrainsQueue pins the failure-drain contract under
// batching: when a write fails with a batch gathered and more frames still
// queued on an unwatched link, the link tears down quietly — every frame,
// the in-flight batch and the queued remainder, goes back to the pool
// without leaking, the cache entry is retired, and no watch notification
// fires (nobody asked for one; watched links get the redial machinery
// instead, pinned in lifecycle_test.go).
func TestWriteFailureMidBatchDrainsQueue(t *testing.T) {
	sink := newRawSink(t)
	var ca collector
	a := listen(t, &ca)
	dst := a.Register(sink.ln.Addr().String())

	balanceBefore := scratchBalance.Load()
	if err := a.Probe(dst); err != nil {
		t.Fatal(err)
	}
	// Block the writer mid-flush and back the queue up behind it.
	fillQueue(t, a, dst, make([]byte, 32<<10))

	// Hard-close the sink with a RST so the blocked write errors instead of
	// draining: a mid-batch failure with a full queue behind it.
	c := sink.conn(t)
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if scratchBalance.Load() == balanceBefore && !a.Connected(dst) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := scratchBalance.Load(); got != balanceBefore {
		t.Errorf("scratch balance %d after drain, want %d: frames leaked from the failure path", got, balanceBefore)
	}
	if a.Connected(dst) {
		t.Error("connection still cached after mid-batch failure")
	}
	ca.mu.Lock()
	nDowns := len(ca.downs)
	ca.mu.Unlock()
	if nDowns != 0 {
		t.Errorf("watch fired %d times on an unwatched link, want 0", nDowns)
	}
}

// TestBatchedWritesEngageAndPreserveFrames forces a real batch: the writer
// blocks against an unread socket while small frames queue behind it, then
// the sink drains everything. Every accepted frame must arrive intact and in
// order through the vectored write path, and the stats must show the batch
// (WriteCalls < FramesSent, BatchedWrites > 0, FramesPerWrite > 1).
func TestBatchedWritesEngageAndPreserveFrames(t *testing.T) {
	sink := newRawSink(t)
	var ca collector
	a := listen(t, &ca)
	dst := a.Register(sink.ln.Addr().String())
	if err := a.Probe(dst); err != nil {
		t.Fatal(err)
	}

	// Big frames block the writer and fill the kernel buffer; the queue
	// then holds SendQueue more (these will flush in batches once the sink
	// reads). Count every frame the transport accepted.
	accepted := fillQueue(t, a, dst, make([]byte, 16<<10))

	// Drain the sink: read and decode every frame, checking order.
	c := sink.conn(t)
	var next uint64
	rd := func() error {
		var hdr [lenHeaderSize]byte
		if _, err := io.ReadFull(c, hdr[:]); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		buf := make([]byte, n)
		if _, err := io.ReadFull(c, buf); err != nil {
			return err
		}
		m, _, err := msg.Decode(buf)
		if err != nil {
			return err
		}
		if m.Round != next {
			t.Fatalf("frame %d arrived out of order (round %d)", next, m.Round)
		}
		next++
		return nil
	}
	_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
	for int(next) < accepted {
		if err := rd(); err != nil {
			t.Fatalf("after %d/%d frames: %v", next, accepted, err)
		}
	}

	st := a.Stats()
	if st.FramesSent != uint64(accepted) {
		t.Errorf("FramesSent = %d, want %d", st.FramesSent, accepted)
	}
	if st.WriteCalls >= st.FramesSent {
		t.Errorf("WriteCalls = %d not below FramesSent = %d: batching never engaged", st.WriteCalls, st.FramesSent)
	}
	if st.BatchedWrites == 0 {
		t.Error("BatchedWrites = 0 with a backed-up queue")
	}
	if fpw := st.FramesPerWrite(); fpw <= 1 {
		t.Errorf("FramesPerWrite = %.2f, want > 1", fpw)
	}
}

// TestBufferedReadCoalescesSyscalls sends a burst of frames in one socket
// write; the receiving transport must decode and deliver all of them while
// touching the kernel far fewer than the two-reads-per-frame the unbuffered
// loop cost.
func TestBufferedReadCoalescesSyscalls(t *testing.T) {
	var ca collector
	a := listen(t, &ca)

	const frames = 64
	var burst []byte
	for i := 0; i < frames; i++ {
		body := msg.Encode(msg.Message{Type: msg.Gossip, Sender: id.ID(7), Round: uint64(i), Payload: []byte("x")})
		var hdr [lenHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
		burst = append(burst, hdr[:]...)
		burst = append(burst, body...)
	}
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	before := a.Stats().ReadSyscalls
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	got := ca.waitMsgs(t, frames)
	for i, m := range got {
		if m.Round != uint64(i) {
			t.Fatalf("frame %d delivered round %d", i, m.Round)
		}
	}
	reads := a.Stats().ReadSyscalls - before
	if reads >= frames {
		t.Errorf("%d kernel reads for %d coalesced frames: read buffering not engaged", reads, frames)
	}
}

// TestConcurrentSendDropCloseRace exercises the batch drain's ownership
// hand-offs under -race: several goroutines hammer Send while the remote
// dies mid-stream and the transport finally closes. Every outcome is legal
// per frame (sent, shed, peer-down) — what must hold is no deadlock, no
// double-put, and a clean scratch balance once everything unwinds.
func TestConcurrentSendDropCloseRace(t *testing.T) {
	balanceBefore := scratchBalance.Load()
	for round := 0; round < 3; round++ {
		var ca, cb collector
		a := listen(t, &ca)
		b := listen(t, &cb)
		dst := a.Register(b.Addr())

		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				payload := make([]byte, 512)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					err := a.Send(dst, msg.Message{
						Type: msg.Gossip, Sender: a.Self(), Round: uint64(g)<<32 | uint64(i), Payload: payload,
					})
					if errors.Is(err, ErrClosed) {
						return
					}
				}
			}(g)
		}
		time.Sleep(20 * time.Millisecond)
		_ = b.Close() // remote dies mid-stream: writers hit the failure drain
		time.Sleep(20 * time.Millisecond)
		_ = a.Close() // then the whole transport closes under fire
		close(stop)
		wg.Wait()
	}
	deadline := time.Now().Add(2 * time.Second)
	for scratchBalance.Load() != balanceBefore && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := scratchBalance.Load(); got != balanceBefore {
		t.Errorf("scratch balance %d after close, want %d", got, balanceBefore)
	}
}

// TestOverflowShedUnchangedUnderBatching pins that batching did not move the
// overflow-shed semantics: against a non-reading peer the queue still fills,
// Send still sheds with peer.ErrOverflow, and the sheds are still counted —
// then a drained queue accepts sends again on a fresh connection.
func TestOverflowShedUnchangedUnderBatching(t *testing.T) {
	sink := newRawSink(t)
	var ca collector
	a := listen(t, &ca)
	dst := a.Register(sink.ln.Addr().String())

	fillQueue(t, a, dst, make([]byte, 64<<10))
	if got := a.Stats().Overflowed; got == 0 {
		t.Error("Stats.Overflowed = 0 after a shed Send")
	}
	err := a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: 1})
	if !errors.Is(err, peer.ErrOverflow) {
		t.Errorf("send against full queue: %v, want ErrOverflow", err)
	}
}
