package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"hyparview/internal/core"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/trace"
)

// loopbackCluster is a set of TCP agents on loopback sharing a delivery
// counter, for end-to-end stack tests.
type loopbackCluster struct {
	agents    []*Agent
	delivered atomic.Int64
}

// newLoopbackCluster starts n agents with the given stack configuration and
// joins all of them through agent 0.
func newLoopbackCluster(t testing.TB, n int, mode BroadcastMode, optimize bool) *loopbackCluster {
	t.Helper()
	c := &loopbackCluster{}
	t.Cleanup(c.close)
	for i := 0; i < n; i++ {
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			CyclePeriod:   100 * time.Millisecond,
			Broadcast:     mode,
			PlumtreeTimer: 50 * time.Millisecond,
			Optimize:      optimize,
			ProbePeriod:   50 * time.Millisecond,
			Seed:          uint64(i + 1),
			OnDeliver:     func([]byte) { c.delivered.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		c.agents = append(c.agents, a)
	}
	for _, a := range c.agents[1:] {
		if err := a.Join(c.agents[0].Addr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(400 * time.Millisecond) // let shuffles symmetrize the overlay
	return c
}

func (c *loopbackCluster) close() {
	for _, a := range c.agents {
		_ = a.Close()
	}
}

// burst broadcasts msgs payloads round-robin across the agents and waits
// until every agent delivered every message (or deadline). It returns the
// number of deliveries observed for the burst.
func (c *loopbackCluster) burst(t testing.TB, msgs int, timeout time.Duration) int64 {
	t.Helper()
	start := c.delivered.Load()
	for i := 0; i < msgs; i++ {
		if err := c.agents[i%len(c.agents)].Broadcast([]byte{byte(i)}); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	want := int64(msgs * len(c.agents))
	deadline := time.Now().Add(timeout)
	for c.delivered.Load()-start < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	return c.delivered.Load() - start
}

// dupTotal sums the duplicate payload receptions across the cluster.
func (c *loopbackCluster) dupTotal() uint64 {
	var total uint64
	for _, a := range c.agents {
		total += a.BroadcastStats().Duplicates
	}
	return total
}

// burstRMR measures a burst's relative message redundancy: duplicate payload
// receptions per required payload delivery. A perfect spanning tree scores 0;
// flooding a symmetric overlay of mean degree d scores about d-1.
func (c *loopbackCluster) burstRMR(t testing.TB, msgs int, timeout time.Duration) float64 {
	t.Helper()
	n := len(c.agents)
	dupBefore := c.dupTotal()
	got := c.burst(t, msgs, timeout)
	if want := int64(msgs * n); got != want {
		t.Fatalf("burst reliability < 1.0: delivered %d of %d", got, want)
	}
	dup := c.dupTotal() - dupBefore
	return float64(dup) / float64(msgs*(n-1))
}

// TestAgentFullStackSoak is the deployment the paper deferred to future work
// (§6), in miniature: 12 real TCP agents running the complete protocol stack
// — HyParView membership, X-BOT RTT-driven overlay optimization, Plumtree
// broadcast trees with real-clock repair timers — must deliver a burst at
// reliability 1.0 while beating flooding's redundancy on an equivalent
// overlay.
func TestAgentFullStackSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-agent loopback soak")
	}
	const n, msgs = 12, 20

	tree := newLoopbackCluster(t, n, BroadcastPlumtree, true)
	// Warm-up: redundant pushes earn PRUNEs and the eager links converge to
	// a spanning tree. One fully-delivered broadcast at a time, like the
	// simulator's drained rounds — concurrent rounds on a still-redundant
	// topology thrash each other's prune decisions and delay convergence.
	for i := 0; i < 15; i++ {
		tree.burst(t, 1, 10*time.Second)
	}
	treeRMR := tree.burstRMR(t, msgs, 30*time.Second)

	flood := newLoopbackCluster(t, n, BroadcastFlood, false)
	floodRMR := flood.burstRMR(t, msgs, 30*time.Second)

	t.Logf("RMR over %d msgs: plumtree=%.3f flood=%.3f", msgs, treeRMR, floodRMR)
	if treeRMR >= floodRMR {
		t.Errorf("plumtree RMR %.3f not below flood RMR %.3f", treeRMR, floodRMR)
	}

	// The optimizer must be live: pings answered, RTT estimates flowing in,
	// stats plumbed through. (Whether swaps complete depends on loopback RTT
	// jitter, so only the machinery is asserted.)
	measured := 0
	for _, a := range tree.agents {
		if _, ok := a.OptimizerStats(); !ok {
			t.Fatal("OptimizerStats not available with Optimize set")
		}
		if _, ok := a.MeanLinkCost(); ok {
			measured++
		}
	}
	if measured == 0 {
		t.Error("no agent measured any active-link RTT")
	}
	t.Logf("optimizer: %d/%d agents hold RTT estimates for active links", measured, n)

	if _, ok := tree.agents[0].PlumtreeStats(); !ok {
		t.Error("PlumtreeStats not available in plumtree mode")
	}
	if _, ok := flood.agents[0].PlumtreeStats(); ok {
		t.Error("PlumtreeStats reported in flood mode")
	}
}

// TestAgentTraceNeighborEvents wires internal/trace rings into live agents
// and asserts the NeighborUp/NeighborDown ordering of a join/leave over TCP:
// the join raises the link at both ends before anything lowers it, and the
// surviving end records exactly one NeighborDown — after its NeighborUp —
// when the peer's process dies (TCP reset as failure detector).
func TestAgentTraceNeighborEvents(t *testing.T) {
	mk := func(seed uint64) (*Agent, *trace.Ring) {
		ring := trace.NewRing(64)
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			CyclePeriod: 50 * time.Millisecond,
			Seed:        seed,
			OnNeighborUp: func(peer id.ID) {
				ring.Record(trace.Event{Kind: trace.NeighborUp, Peer: peer})
			},
			OnNeighborDown: func(peer id.ID, reason core.DownReason) {
				ring.Record(trace.Event{Kind: trace.NeighborDown, Peer: peer, Note: reason.String()})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return a, ring
	}
	a, ringA := mk(1)
	defer a.Close()
	b, ringB := mk(2)
	defer b.Close()

	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	waitEvent(t, ringA, trace.NeighborUp, b.Self())
	waitEvent(t, ringB, trace.NeighborUp, a.Self())
	if down := ringA.OfKind(trace.NeighborDown); len(down) != 0 {
		t.Fatalf("NeighborDown before any leave: %v", down)
	}

	_ = b.Close()
	down := waitEvent(t, ringA, trace.NeighborDown, b.Self())
	up := ringA.OfKind(trace.NeighborUp)[0]
	if down.Seq <= up.Seq {
		t.Errorf("NeighborDown seq %d not after NeighborUp seq %d", down.Seq, up.Seq)
	}
	if down.Note != core.DownFailed.String() {
		t.Errorf("down reason = %q, want %q (TCP reset)", down.Note, core.DownFailed)
	}
	// Ordering invariant over the whole trace: every Down has an earlier Up
	// for the same peer.
	for _, d := range ringA.OfKind(trace.NeighborDown) {
		ok := false
		for _, u := range ringA.OfKind(trace.NeighborUp) {
			if u.Peer == d.Peer && u.Seq < d.Seq {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("NeighborDown %v without earlier NeighborUp", d)
		}
	}
}

// waitEvent blocks until ring holds an event of the given kind and peer.
func waitEvent(t testing.TB, ring *trace.Ring, kind trace.Kind, peer id.ID) trace.Event {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, ev := range ring.OfKind(kind) {
			if ev.Peer == peer {
				return ev
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no %v event for peer %v; trace:\n%s", kind, peer, ring.Dump())
	return trace.Event{}
}

// TestAgentPlumtreeTimerRealClock is the real-clock scheduling regression for
// Plumtree's missing-message timer: a node that hears an IHAVE announcement
// but never the payload must GRAFT the announcer after PlumtreeTimer — once,
// not once per simulated re-queue pass, and not immediately.
func TestAgentPlumtreeTimerRealClock(t *testing.T) {
	const timer = 60 * time.Millisecond

	a, err := NewAgent("127.0.0.1:0", AgentConfig{
		Broadcast:     BroadcastPlumtree,
		PlumtreeTimer: timer,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	// A bare transport plays the announcing peer: it speaks IHAVE but never
	// delivers the payload, so the agent's only path to the message is the
	// timer-driven GRAFT.
	grafts := make(chan msg.Message, 16)
	peerTr, err := Listen("127.0.0.1:0", Config{}, func(_ id.ID, m msg.Message) {
		if m.Type == msg.PlumtreeGraft {
			grafts <- m
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peerTr.Close()

	agentID := peerTr.Register(a.Addr())
	const round = 7
	sent := time.Now()
	if err := peerTr.Send(agentID, msg.Message{
		Type:   msg.PlumtreeIHave,
		Sender: peerTr.Self(),
		Round:  round,
		Hops:   1,
	}); err != nil {
		t.Fatal(err)
	}

	select {
	case g := <-grafts:
		elapsed := time.Since(sent)
		if g.Round != round || !g.Accept {
			t.Errorf("graft = %v, want retransmission request for round %d", g, round)
		}
		// The graft must wait out the timer (generous lower bound to absorb
		// scheduling noise), not fire on arrival as the simulator's
		// zero-pass expiry would.
		if elapsed < timer/2 {
			t.Errorf("graft after %v: timer did not delay it (want ≥ %v)", elapsed, timer/2)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("missing-message timer never fired a GRAFT")
	}

	// Exactly one shot per arming: the TTL re-queue passes of the simulator
	// must not replay as extra wall-clock grafts.
	select {
	case g := <-grafts:
		t.Fatalf("second graft %v after the timer already fired", g)
	case <-time.After(5 * timer):
	}
}
