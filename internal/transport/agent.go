package transport

import (
	"fmt"
	"sync"
	"time"

	"hyparview/internal/core"
	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/rng"
)

// AgentConfig configures a TCP-hosted HyParView node.
type AgentConfig struct {
	// Core carries the HyParView parameters (zero fields take the paper's
	// defaults).
	Core core.Config
	// CyclePeriod is the shuffle period (ΔT). Zero disables automatic
	// cycles; Cycle can then be driven manually (useful in tests).
	CyclePeriod time.Duration
	// Transport tunes dial/write timeouts.
	Transport Config
	// Seed drives the node's deterministic randomness; zero derives a seed
	// from the bound address.
	Seed uint64
	// OnDeliver is invoked (from the agent goroutine) once per delivered
	// broadcast. May be nil.
	OnDeliver func(payload []byte)
	// OnNeighborUp is invoked (from the agent goroutine) when a peer enters
	// the active view. May be nil.
	OnNeighborUp func(peerID id.ID)
	// OnNeighborDown is invoked (from the agent goroutine) when a peer
	// leaves the active view. May be nil.
	OnNeighborDown func(peerID id.ID, reason core.DownReason)
}

// agentEnv adapts Transport to peer.Env for the protocol goroutine.
type agentEnv struct {
	t *Transport
	r *rng.Rand
}

var _ peer.Env = (*agentEnv)(nil)

func (e *agentEnv) Self() id.ID                       { return e.t.Self() }
func (e *agentEnv) Send(d id.ID, m msg.Message) error { return e.t.Send(d, m) }
func (e *agentEnv) Probe(d id.ID) error               { return e.t.Probe(d) }
func (e *agentEnv) Watch(d id.ID)                     { e.t.Watch(d) }
func (e *agentEnv) Unwatch(d id.ID)                   { e.t.Unwatch(d) }
func (e *agentEnv) Rand() *rng.Rand                   { return e.r }

// Agent runs one HyParView node over real TCP. The protocol state machine is
// single-threaded: every network delivery, peer-down notification, timer
// tick and API call is funneled through one actor goroutine, so the core
// protocol needs no locking — the same discipline the simulator enforces.
type Agent struct {
	tr        *Transport
	node      *core.Node
	gnode     *gossip.Node
	rand      *rng.Rand
	inbox     chan func()
	stop      chan struct{}
	done      chan struct{}
	ticker    *time.Ticker
	closeOnce sync.Once
}

// NewAgent binds a listener on listenAddr and starts the actor loop. Close
// must be called to release the listener and goroutines.
func NewAgent(listenAddr string, cfg AgentConfig) (*Agent, error) {
	a := &Agent{
		// The inbox decouples transport reader goroutines from the protocol
		// actor. It is deliberately bounded: if the actor falls behind,
		// senders block, TCP backpressure propagates, and remote peers'
		// write timeouts expel us — precisely the slow-node handling the
		// paper adopts from NeEM (§5.5).
		inbox: make(chan func(), 256),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	tr, err := Listen(listenAddr, cfg.Transport,
		func(from id.ID, m msg.Message) {
			select {
			case a.inbox <- func() { a.gnode.Deliver(from, m) }:
			case <-a.stop:
			}
		},
		func(peerID id.ID) {
			op := func() { a.gnode.OnPeerDown(peerID) }
			// This callback can fire on the actor goroutine itself (a Send
			// that fails drops the connection synchronously); blocking on a
			// full inbox there would self-deadlock, so fall back to an
			// asynchronous hand-off that exits with the agent.
			select {
			case a.inbox <- op:
			default:
				go func() {
					select {
					case a.inbox <- op:
					case <-a.stop:
					}
				}()
			}
		})
	if err != nil {
		return nil, err
	}
	a.tr = tr
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(tr.Self()) ^ uint64(time.Now().UnixNano())
	}
	a.rand = rng.New(seed)
	env := &agentEnv{t: tr, r: a.rand}
	a.node = core.New(env, cfg.Core)
	if cfg.OnNeighborUp != nil || cfg.OnNeighborDown != nil {
		a.node.SetListener(core.Listener{
			NeighborUp:   cfg.OnNeighborUp,
			NeighborDown: cfg.OnNeighborDown,
		})
	}
	gcfg := gossip.Config{Mode: gossip.Flood, ReportPeerDown: true}
	var deliver gossip.Delivery
	if cb := cfg.OnDeliver; cb != nil {
		deliver = func(_ uint64, payload []byte, _ int) { cb(payload) }
	}
	a.gnode = gossip.New(env, a.node, gcfg, deliver)
	if cfg.CyclePeriod > 0 {
		a.ticker = time.NewTicker(cfg.CyclePeriod)
	}
	go a.loop()
	return a, nil
}

// loop is the actor goroutine: the only place protocol state is touched.
func (a *Agent) loop() {
	defer close(a.done)
	var tick <-chan time.Time
	if a.ticker != nil {
		tick = a.ticker.C
	}
	for {
		select {
		case op := <-a.inbox:
			op()
		case <-tick:
			a.gnode.OnCycle()
		case <-a.stop:
			return
		}
	}
}

// call runs op on the actor goroutine and waits for completion.
func (a *Agent) call(op func()) error {
	donech := make(chan struct{})
	select {
	case a.inbox <- func() { op(); close(donech) }:
	case <-a.stop:
		return ErrClosed
	}
	select {
	case <-donech:
		return nil
	case <-a.stop:
		return ErrClosed
	}
}

// Self returns the agent's node identifier.
func (a *Agent) Self() id.ID { return a.tr.Self() }

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.tr.Addr() }

// Join connects to the overlay through the node listening at contactAddr.
func (a *Agent) Join(contactAddr string) error {
	contact := a.tr.Register(contactAddr)
	var joinErr error
	if err := a.call(func() { joinErr = a.node.Join(contact) }); err != nil {
		return err
	}
	if joinErr != nil {
		return fmt.Errorf("join via %s: %w", contactAddr, joinErr)
	}
	return nil
}

// Register makes addr dialable and returns its derived identifier.
func (a *Agent) Register(addr string) id.ID { return a.tr.Register(addr) }

// Broadcast floods payload over the overlay. The round identifier is drawn
// from the node's random stream; collisions across 64 bits are negligible.
func (a *Agent) Broadcast(payload []byte) error {
	return a.call(func() { a.gnode.Broadcast(a.rand.Uint64(), payload) })
}

// Cycle triggers one membership cycle synchronously (manual ΔT driving).
func (a *Agent) Cycle() error {
	return a.call(func() { a.gnode.OnCycle() })
}

// ActiveView returns a snapshot of the active view.
func (a *Agent) ActiveView() []id.ID {
	var out []id.ID
	_ = a.call(func() { out = a.node.Active() })
	return out
}

// PassiveView returns a snapshot of the passive view.
func (a *Agent) PassiveView() []id.ID {
	var out []id.ID
	_ = a.call(func() { out = a.node.Passive() })
	return out
}

// Stats returns a snapshot of the protocol counters.
func (a *Agent) Stats() core.Stats {
	var out core.Stats
	_ = a.call(func() { out = a.node.Stats() })
	return out
}

// Close stops the actor loop and the transport, waiting for all goroutines.
// It is idempotent and safe for concurrent use.
func (a *Agent) Close() error {
	var err error
	a.closeOnce.Do(func() {
		close(a.stop)
		<-a.done
		if a.ticker != nil {
			a.ticker.Stop()
		}
		err = a.tr.Close()
	})
	return err
}
