package transport

import (
	"fmt"
	"sync"
	"time"

	"hyparview/internal/core"
	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/plumtree"
	"hyparview/internal/pubsub"
	"hyparview/internal/rng"
	"hyparview/internal/xbot"
)

// BroadcastMode selects the broadcast layer a TCP agent runs over HyParView.
type BroadcastMode uint8

// Broadcast modes.
const (
	// BroadcastFlood forwards every payload on every active-view link except
	// the arrival one: the paper's own dissemination (§4.1).
	BroadcastFlood BroadcastMode = iota
	// BroadcastPlumtree runs the Plumtree epidemic broadcast tree (SRDS
	// 2007): eager payload push on tree links, lazy IHAVE announcements
	// elsewhere, GRAFT/PRUNE repair — flooding's reliability at near-zero
	// payload redundancy.
	BroadcastPlumtree
)

// String names the mode.
func (m BroadcastMode) String() string {
	switch m {
	case BroadcastFlood:
		return "flood"
	case BroadcastPlumtree:
		return "plumtree"
	default:
		return fmt.Sprintf("BroadcastMode(%d)", uint8(m))
	}
}

// AgentConfig configures a TCP-hosted HyParView node.
type AgentConfig struct {
	// Core carries the HyParView parameters (zero fields take the paper's
	// defaults).
	Core core.Config
	// CyclePeriod is the shuffle period (ΔT). Zero disables automatic
	// cycles; Cycle can then be driven manually (useful in tests).
	CyclePeriod time.Duration
	// Transport tunes dial/write timeouts.
	Transport Config
	// Seed drives the node's deterministic randomness; zero derives a seed
	// from the bound address.
	Seed uint64

	// Broadcast selects the broadcast layer (default BroadcastFlood).
	Broadcast BroadcastMode
	// Plumtree overrides Plumtree parameters when Broadcast is
	// BroadcastPlumtree; zero fields take the protocol's defaults.
	Plumtree plumtree.Config
	// PlumtreeTimer is the missing-message timeout under the agent's real
	// clock: how long a node that heard an IHAVE announcement waits for the
	// eager copy before GRAFTing the announcer. It is mapped onto
	// plumtree.Config.TimerDelay through the agent's peer.Scheduler (one
	// tick = 1ms); the protocol schedules the timer itself, identically in
	// the simulator and here. Default 200ms.
	PlumtreeTimer time.Duration

	// Optimize layers the X-BOT optimizer (SRDS 2009) over HyParView: a
	// periodic ticker measures live RTTs with PING/PONG exchanges and the
	// 4-node coordinated swap handshake continuously rewires the active view
	// toward low-latency links. Each optimization attempt probes
	// XBot.Candidates passive-view members; probing a dead candidate costs
	// one failed dial (Transport.DialTimeout) on the agent goroutine — the
	// same price HyParView's own view repair pays per dead passive entry —
	// so keep DialTimeout modest on overlays with heavy churn.
	Optimize bool
	// XBot overrides optimizer parameters when Optimize is set; zero fields
	// take the protocol's defaults. XBot.Period counts membership cycles
	// between optimization attempts.
	XBot xbot.Config
	// ProbePeriod is how often active-view links are re-measured with a
	// PING/PONG round trip when Optimize or SuspectAfter enables the prober.
	// Default: CyclePeriod when positive, else 1s.
	ProbePeriod time.Duration

	// SuspectAfter, when positive, arms half-open link detection: an active
	// peer whose PINGs go unanswered for this many consecutive probe rounds
	// is marked suspected — the transport closes its socket proactively and
	// NeighborDown fires without waiting for a write to time out. This is
	// the failure-detector sharpening the paper's TCP-as-detector (§4.1)
	// needs for stalled-but-not-closed peers: a wedged process whose kernel
	// keeps ACKing looks healthy to every write. The effective suspicion
	// window is SuspectAfter × ProbePeriod; setting SuspectAfter starts the
	// probe ticker even without Optimize. 0 disables (the default).
	SuspectAfter int

	// PubSub, when set, wraps the broadcast layer in a pubsub.Router built
	// from this configuration and enables the agent's Subscribe/Publish API —
	// the same Router the simulator's clusters run, over the real clock
	// (Config.FlushInterval counts scheduler ticks of 1ms). A nil NextRound
	// defaults to the node's random stream (collisions across 64 bits are
	// negligible, as for Broadcast); a nil Fallback defaults to OnDeliver, so
	// plain broadcasts keep reaching the callback through the wrapped stack.
	PubSub *pubsub.Config

	// OnDeliver is invoked (from the agent goroutine) once per delivered
	// broadcast. May be nil.
	OnDeliver func(payload []byte)
	// OnNeighborUp is invoked (from the agent goroutine) when a peer enters
	// the active view. May be nil.
	OnNeighborUp func(peerID id.ID)
	// OnNeighborDown is invoked (from the agent goroutine) when a peer
	// leaves the active view. May be nil.
	OnNeighborDown func(peerID id.ID, reason core.DownReason)
}

// agentEnv adapts Transport to peer.Env for the protocol goroutine. The
// scheduler half of the contract is the agent's real-clock scheduler: timers
// are protocol-owned, there is no self-addressed-send interception.
type agentEnv struct {
	a *Agent
	r *rng.Rand
}

var _ peer.Env = (*agentEnv)(nil)

func (e *agentEnv) Self() id.ID { return e.a.tr.Self() }

func (e *agentEnv) Send(d id.ID, m msg.Message) error {
	if d == e.a.tr.Self() {
		return fmt.Errorf("transport: self-send unsupported; schedule timers via peer.Scheduler")
	}
	return e.a.tr.Send(d, m)
}

func (e *agentEnv) Probe(d id.ID) error { return e.a.tr.Probe(d) }
func (e *agentEnv) Watch(d id.ID)       { e.a.tr.Watch(d) }
func (e *agentEnv) Unwatch(d id.ID)     { e.a.tr.Unwatch(d) }
func (e *agentEnv) Rand() *rng.Rand     { return e.r }

func (e *agentEnv) Now() uint64                       { return e.a.sched.Now() }
func (e *agentEnv) After(delay uint64, m msg.Message) { e.a.sched.After(delay, m) }
func (e *agentEnv) Every(interval uint64, m msg.Message) {
	e.a.sched.Every(interval, m)
}

// pingState is one outstanding PING: who it was sent to and when.
type pingState struct {
	peer id.ID
	sent time.Time
}

// inboxOp is one unit of actor-loop work: a network or scheduler delivery
// (fn nil — dispatch from/m) or an arbitrary operation (fn non-nil). The
// struct form keeps the per-frame hot path free of the closure allocation a
// chan func() costs — the delivery fields are copied into the channel
// buffer, nothing escapes.
type inboxOp struct {
	fn   func()
	from id.ID
	m    msg.Message
}

// Agent runs one HyParView node over real TCP, hosting the full protocol
// stack of the paper and its companion papers: the HyParView core, the
// selected broadcast layer (flood or Plumtree), and optionally the X-BOT
// overlay optimizer fed by a live RTT oracle. The protocol state machine is
// single-threaded: every network delivery, peer-down notification, timer
// tick and API call is funneled through one actor goroutine, so the core
// protocol needs no locking — the same discipline the simulator enforces.
type Agent struct {
	tr           *Transport
	node         *core.Node
	xnode        *xbot.Node     // non-nil when optimizing
	ptree        *plumtree.Node // non-nil in BroadcastPlumtree mode
	router       *pubsub.Router // non-nil when AgentConfig.PubSub is set
	broadcaster  gossip.Broadcaster
	rand         *rng.Rand
	rtt          *rttOracle
	sched        *clockScheduler
	pings        map[uint64]pingState
	ledger       *probeLedger // non-nil when SuspectAfter > 0
	suspectAfter int
	replySlots   chan struct{} // caps concurrent PONG dial-back goroutines
	probePeriod  time.Duration
	inbox        chan inboxOp
	stop         chan struct{}
	done         chan struct{}
	probeTicker  *time.Ticker
	closeOnce    sync.Once
}

// NewAgent binds a listener on listenAddr and starts the actor loop. Close
// must be called to release the listener and goroutines.
func NewAgent(listenAddr string, cfg AgentConfig) (*Agent, error) {
	a := &Agent{
		// The inbox decouples transport reader goroutines from the protocol
		// actor. It is deliberately bounded: if the actor falls behind,
		// senders block, TCP backpressure propagates, and remote peers'
		// write timeouts expel us — precisely the slow-node handling the
		// paper adopts from NeEM (§5.5).
		inbox:      make(chan inboxOp, 256),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		pings:      make(map[uint64]pingState),
		replySlots: make(chan struct{}, 16),
	}
	ptimer := cfg.PlumtreeTimer
	if ptimer <= 0 {
		ptimer = 200 * time.Millisecond
	}
	tr, err := Listen(listenAddr, cfg.Transport,
		func(from id.ID, m msg.Message) {
			select {
			case a.inbox <- inboxOp{from: from, m: m}:
			case <-a.stop:
			}
		},
		func(peerID id.ID) {
			a.enqueue(func() { a.broadcaster.OnPeerDown(peerID) })
		})
	if err != nil {
		return nil, err
	}
	a.tr = tr
	// The real-clock half of the peer.Scheduler contract: scheduled messages
	// re-enter the actor loop as self-deliveries at the top of the protocol
	// stack, exactly as the simulator delivers them.
	a.sched = newClockScheduler(func(m msg.Message) {
		// Scheduled messages ride the delivery path (fn nil): dispatch
		// routes tick kinds straight down the broadcaster stack, exactly
		// like a self-delivery in the simulator, with no closure per tick.
		select {
		case a.inbox <- inboxOp{from: a.tr.Self(), m: m}:
		case <-a.stop:
		}
	}, a.stop)
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(tr.Self()) ^ uint64(time.Now().UnixNano())
	}
	a.rand = rng.New(seed)
	env := &agentEnv{a: a, r: a.rand}
	ccfg := cfg.Core
	if cfg.CyclePeriod > 0 && ccfg.ShuffleInterval == 0 {
		// ΔT: the core schedules its own periodic rounds on the agent's
		// clock; the tick cascades down the whole stack.
		ccfg.ShuffleInterval = ticks(cfg.CyclePeriod)
	}
	a.node = core.New(env, ccfg)
	userDown := cfg.OnNeighborDown
	a.node.SetListener(core.Listener{
		NeighborUp: cfg.OnNeighborUp,
		NeighborDown: func(p id.ID, reason core.DownReason) {
			if reason != core.DownFailed {
				// Deliberate departure (demotion to passive, or the peer's
				// DISCONNECT): retire the connection gracefully. The drain is
				// deferred through the inbox because the current dispatch may
				// still queue a courtesy DISCONNECT for p — core fires this
				// callback before sending it — and the flush must see that
				// frame. Failures need no drain: the link is already gone.
				a.enqueue(func() { a.tr.Drain(p) })
			}
			if userDown != nil {
				userDown(p, reason)
			}
		},
	})

	// Membership stack: X-BOT (when optimizing) wraps the HyParView core and
	// is itself a peer.Membership, so the broadcast layer stacks on top
	// unchanged — the same layering the simulator uses.
	var member peer.Membership = a.node
	if cfg.Optimize {
		a.rtt = newRTTOracle(tr.Self(), a.sendPing)
		xcfg := cfg.XBot
		if cfg.CyclePeriod > 0 {
			// Scheduler-driven optimization rounds: Period membership cycles
			// between attempts, expressed in clock ticks.
			xcfg = xcfg.DeriveInterval(ticks(cfg.CyclePeriod))
		}
		a.xnode = xbot.New(env, a.node, xcfg, a.rtt)
		member = a.xnode
	}
	a.suspectAfter = cfg.SuspectAfter
	if a.suspectAfter > 0 {
		a.ledger = newProbeLedger()
	}
	// The PING/PONG prober serves two masters: the X-BOT RTT oracle
	// (Optimize) and half-open suspicion (SuspectAfter). Either one arms it.
	if cfg.Optimize || a.suspectAfter > 0 {
		a.probePeriod = cfg.ProbePeriod
		if a.probePeriod <= 0 {
			if cfg.CyclePeriod > 0 {
				a.probePeriod = cfg.CyclePeriod
			} else {
				a.probePeriod = time.Second
			}
		}
		a.probeTicker = time.NewTicker(a.probePeriod)
	}

	var deliver gossip.Delivery
	if cb := cfg.OnDeliver; cb != nil {
		deliver = func(_ uint64, _ uint32, payload []byte, _ int) { cb(payload) }
	}
	if cfg.PubSub != nil {
		// Two-phase router construction: the inner broadcaster takes the
		// router's OnBroadcast as its delivery callback, then Bind (below)
		// closes the loop — the same wiring the simulator's clusters use.
		rcfg := *cfg.PubSub
		if rcfg.NextRound == nil {
			rcfg.NextRound = a.rand.Uint64
		}
		if rcfg.Fallback == nil {
			rcfg.Fallback = deliver
		}
		a.router = pubsub.New(rcfg)
		deliver = a.router.OnBroadcast
	}
	switch cfg.Broadcast {
	case BroadcastPlumtree:
		pcfg := cfg.Plumtree
		pcfg.ReportPeerDown = true
		if pcfg.TimerDelay == 0 {
			pcfg.TimerDelay = ticks(ptimer)
		}
		a.ptree = plumtree.New(env, member, pcfg, deliver)
		a.broadcaster = a.ptree
	default:
		a.broadcaster = gossip.New(env, member,
			gossip.Config{Mode: gossip.Flood, ReportPeerDown: true}, deliver)
	}
	if a.router != nil {
		a.router.Bind(env, a.broadcaster)
		a.broadcaster = a.router
	}

	go a.loop()
	return a, nil
}

// ticks converts a wall-clock duration to scheduler ticks, never rounding a
// positive duration down to zero.
func ticks(d time.Duration) uint64 {
	t := uint64(d / tickDuration)
	if t == 0 {
		t = 1
	}
	return t
}

// enqueue hands fn to the actor loop without blocking. It may be called
// from the actor goroutine itself (a listener or peer-down callback firing
// mid-dispatch); blocking on a full inbox there would self-deadlock, so a
// full inbox falls back to an asynchronous hand-off that exits with the
// agent.
func (a *Agent) enqueue(fn func()) {
	op := inboxOp{fn: fn}
	select {
	case a.inbox <- op:
	default:
		go func() {
			select {
			case a.inbox <- op:
			case <-a.stop:
			}
		}()
	}
}

// loop is the actor goroutine: the only place protocol state is touched.
// Periodic protocol rounds arrive through the inbox as scheduler-delivered
// ticks; only the agent-internal RTT probe keeps a raw ticker.
func (a *Agent) loop() {
	defer close(a.done)
	var probe <-chan time.Time
	if a.probeTicker != nil {
		probe = a.probeTicker.C
	}
	for {
		select {
		case op := <-a.inbox:
			if op.fn != nil {
				op.fn()
			} else {
				a.dispatch(op.from, op.m)
			}
		case <-probe:
			a.onProbeTick()
		case <-a.stop:
			return
		}
	}
}

// dispatch routes one network delivery on the actor goroutine: the RTT
// measurement traffic is answered here, everything else descends the
// broadcast/optimizer/membership stack.
func (a *Agent) dispatch(from id.ID, m msg.Message) {
	switch m.Type {
	case msg.Ping:
		// Echo the nonce back. A pinger we hold a cached connection to gets
		// the reply inline — the pong literal stays on the stack, keeping
		// the steady-state probe path allocation-free on this side. One that
		// reached us over an inbound connection (an optimizer measuring a
		// candidate link) needs a dial-back, which runs off the actor
		// goroutine so that a peer that died right after pinging cannot
		// stall the agent for a dial timeout. Failed sends need no handling:
		// the watch machinery reports broken links.
		if a.tr.Connected(from) {
			_ = a.tr.Send(from, msg.Message{Type: msg.Pong, Sender: a.tr.Self(), Round: m.Round})
			return
		}
		a.pongDialback(from, m.Round)
	case msg.Pong:
		a.onPong(from, m.Round)
	default:
		a.broadcaster.Deliver(from, m)
	}
}

// pongDialback answers a PING from a sender we hold no cached connection
// to. The dial-back goroutines are capped: a flood of pings from unroutable
// senders must not pile up one dial-timeout-blocked goroutine each. Past the
// cap the reply is dropped — the measurement is best-effort and the prober
// retries.
func (a *Agent) pongDialback(from id.ID, nonce uint64) {
	select {
	case a.replySlots <- struct{}{}:
		go func() {
			defer func() { <-a.replySlots }()
			_ = a.tr.Send(from, msg.Message{Type: msg.Pong, Sender: a.tr.Self(), Round: nonce})
		}()
	default:
	}
}

// sendPing starts one RTT measurement: a PING carrying a random nonce that
// the peer echoes back in a PONG. It only rides connections that already
// exist — never dialing — so a measurement request can never stall the
// actor goroutine on a dead peer. Active-view links are open by definition
// (Watch dials them), and optimizer candidates were just probed, so the
// peers worth measuring always have a cached connection. Called on the
// actor goroutine only.
func (a *Agent) sendPing(dst id.ID) {
	if dst == a.tr.Self() || dst.IsNil() || !a.tr.Connected(dst) {
		return
	}
	nonce := a.rand.Uint64()
	if err := a.tr.Send(dst, msg.Message{Type: msg.Ping, Sender: a.tr.Self(), Round: nonce}); err != nil {
		return // connection just broke; watch/send-failure paths handle it
	}
	a.pings[nonce] = pingState{peer: dst, sent: time.Now()}
	if a.ledger != nil {
		a.ledger.sent(dst)
	}
}

// onPong completes one RTT measurement and feeds the EWMA oracle.
func (a *Agent) onPong(from id.ID, nonce uint64) {
	st, ok := a.pings[nonce]
	if !ok || st.peer != from {
		return // stale, duplicated or forged
	}
	delete(a.pings, nonce)
	if a.rtt != nil {
		a.rtt.observe(from, time.Since(st.sent))
	}
	if a.ledger != nil {
		a.ledger.answered(from)
	}
}

// onProbeTick re-measures every active-view link, advances the half-open
// suspicion ledger, and garbage-collects the measurement state: pings that
// never came back (the peer died — the failure detector reports that
// separately) and RTT estimates for peers no longer in either view.
func (a *Agent) onProbeTick() {
	// The GC cutoff keeps an absolute floor above any plausible RTT: with a
	// short probe period (tests use 50ms), 3×period alone would collect
	// in-flight pings on high-latency paths before their pongs arrive,
	// leaving exactly the expensive links forever unmeasured.
	cutoff := 3 * a.probePeriod
	if cutoff < 3*time.Second {
		cutoff = 3 * time.Second
	}
	now := time.Now()
	for nonce, st := range a.pings {
		if now.Sub(st.sent) > cutoff {
			delete(a.pings, nonce)
		}
	}
	active := a.node.Active()
	for _, p := range active {
		if a.ledger != nil {
			if misses := a.ledger.tick(p); misses >= a.suspectAfter {
				// Half-open verdict: the link swallowed SuspectAfter
				// consecutive probe rounds. Condemn it now — Suspect fires
				// the watch, which re-enters through the inbox as the usual
				// peer-down repair path.
				a.ledger.forget(p)
				a.forgetPings(p)
				a.tr.Suspect(p)
				continue
			}
		}
		a.sendPing(p)
	}
	keep := make(map[id.ID]bool, len(active))
	for _, p := range active {
		keep[p] = true
	}
	for _, p := range a.node.Passive() {
		keep[p] = true
	}
	for _, st := range a.pings {
		keep[st.peer] = true
	}
	if a.rtt != nil {
		a.rtt.prune(keep)
	}
	if a.ledger != nil {
		a.ledger.prune(keep)
	}
}

// forgetPings drops every outstanding ping aimed at peer (it was just
// suspected; a late PONG must not resurrect its measurement state).
func (a *Agent) forgetPings(peer id.ID) {
	for nonce, st := range a.pings {
		if st.peer == peer {
			delete(a.pings, nonce)
		}
	}
}

// call runs op on the actor goroutine and waits for completion.
func (a *Agent) call(op func()) error {
	donech := make(chan struct{})
	select {
	case a.inbox <- inboxOp{fn: func() { op(); close(donech) }}:
	case <-a.stop:
		return ErrClosed
	}
	select {
	case <-donech:
		return nil
	case <-a.stop:
		return ErrClosed
	}
}

// Self returns the agent's node identifier.
func (a *Agent) Self() id.ID { return a.tr.Self() }

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.tr.Addr() }

// Join connects to the overlay through the node listening at contactAddr.
func (a *Agent) Join(contactAddr string) error {
	contact := a.tr.Register(contactAddr)
	var joinErr error
	if err := a.call(func() { joinErr = a.node.Join(contact) }); err != nil {
		return err
	}
	if joinErr != nil {
		return fmt.Errorf("join via %s: %w", contactAddr, joinErr)
	}
	return nil
}

// Register makes addr dialable and returns its derived identifier.
func (a *Agent) Register(addr string) id.ID { return a.tr.Register(addr) }

// Broadcast disseminates payload over the overlay through the configured
// broadcast layer. The round identifier is drawn from the node's random
// stream; collisions across 64 bits are negligible.
func (a *Agent) Broadcast(payload []byte) error {
	return a.call(func() { a.broadcaster.Broadcast(a.rand.Uint64(), payload) })
}

// ErrNoPubSub is returned by the pub/sub API on agents built without
// AgentConfig.PubSub.
var ErrNoPubSub = fmt.Errorf("transport: agent built without AgentConfig.PubSub")

// Subscribe registers fn for topic on the agent's pub/sub router. Handlers
// run on the agent goroutine with frozen, read-only payloads — copy before
// retaining or crossing goroutines.
func (a *Agent) Subscribe(topic uint32, fn pubsub.Handler) error {
	if a.router == nil {
		return ErrNoPubSub
	}
	var err error
	if cerr := a.call(func() { err = a.router.Subscribe(topic, fn) }); cerr != nil {
		return cerr
	}
	return err
}

// Publish disseminates payload on topic over the overlay through the pub/sub
// router (batched per AgentConfig.PubSub). The payload is frozen from this
// call on, per the ownership rules on package peer.
func (a *Agent) Publish(topic uint32, payload []byte) error {
	if a.router == nil {
		return ErrNoPubSub
	}
	var err error
	if cerr := a.call(func() { err = a.router.Publish(topic, payload) }); cerr != nil {
		return cerr
	}
	return err
}

// FlushPubSub broadcasts every open batch frame now, ahead of the size
// threshold or flush tick.
func (a *Agent) FlushPubSub() error {
	if a.router == nil {
		return ErrNoPubSub
	}
	return a.call(func() { a.router.Flush() })
}

// PubSubStats returns the pub/sub router's counters; ok is false when the
// agent runs without AgentConfig.PubSub.
func (a *Agent) PubSubStats() (stats pubsub.Stats, ok bool) {
	_ = a.call(func() {
		if a.router != nil {
			stats, ok = a.router.Stats(), true
		}
	})
	return stats, ok
}

// Cycle triggers one membership cycle synchronously (manual ΔT driving,
// for agents built with CyclePeriod zero). With Optimize set this includes
// the X-BOT optimization attempt cadence; agents with a CyclePeriod run
// both through the scheduler instead.
func (a *Agent) Cycle() error {
	return a.call(func() { a.broadcaster.OnCycle() })
}

// ActiveView returns a snapshot of the active view.
func (a *Agent) ActiveView() []id.ID {
	var out []id.ID
	_ = a.call(func() { out = a.node.Active() })
	return out
}

// PassiveView returns a snapshot of the passive view.
func (a *Agent) PassiveView() []id.ID {
	var out []id.ID
	_ = a.call(func() { out = a.node.Passive() })
	return out
}

// Stats returns a snapshot of the protocol counters.
func (a *Agent) Stats() core.Stats {
	var out core.Stats
	_ = a.call(func() { out = a.node.Stats() })
	return out
}

// BroadcastStats is a snapshot of the broadcast layer's payload accounting:
// Delivered counts first copies (including this node's own broadcasts),
// Duplicates counts redundant payload receptions, Forwarded counts payload
// sends, SendFails counts sends rejected because the peer was down. The
// population-level RMR of an overlay over a burst of msgs broadcasts is
// sum(Duplicates) / (sum(Delivered) - msgs): redundant payload receptions
// per payload reception the dissemination actually required (an
// originator's own delivery involves no wire reception). Per node,
// Duplicates/Delivered is the local redundancy share.
type BroadcastStats struct {
	Delivered  uint64
	Duplicates uint64
	Forwarded  uint64
	SendFails  uint64
}

// BroadcastStats returns the broadcast layer's payload accounting.
func (a *Agent) BroadcastStats() BroadcastStats {
	var out BroadcastStats
	_ = a.call(func() {
		out.Delivered, out.Duplicates, out.Forwarded, out.SendFails = a.broadcaster.Counters()
	})
	return out
}

// TransportStats returns the transport's frame and lifecycle counters:
// frames written to sockets, frames shed by per-peer send-queue overflow
// (each a Send that returned peer.ErrOverflow), inbound deliveries
// suppressed by a fault-injection hook, and the connection lifecycle
// manager's accounting — backoff redials, dial races lost, links condemned
// by half-open suspicion, and graceful drains. Safe without the actor
// goroutine: counters are atomic.
func (a *Agent) TransportStats() Stats { return a.tr.Stats() }

// PlumtreeStats returns the Plumtree control-plane counters; ok is false
// when the agent runs flood broadcast.
func (a *Agent) PlumtreeStats() (stats plumtree.ControlStats, ok bool) {
	_ = a.call(func() {
		if a.ptree != nil {
			stats, ok = a.ptree.Control(), true
		}
	})
	return stats, ok
}

// OptimizerStats returns the X-BOT handshake counters; ok is false when the
// agent runs without the optimizer.
func (a *Agent) OptimizerStats() (stats xbot.Stats, ok bool) {
	_ = a.call(func() {
		if a.xnode != nil {
			stats, ok = a.xnode.Stats(), true
		}
	})
	return stats, ok
}

// MeanLinkCost returns the mean measured RTT (microseconds) over the
// active-view links the RTT oracle has estimates for; ok is false when the
// agent runs without the optimizer or nothing has been measured yet.
func (a *Agent) MeanLinkCost() (mean float64, ok bool) {
	_ = a.call(func() {
		if a.rtt == nil {
			return
		}
		var sum float64
		var n int
		for _, p := range a.node.Active() {
			if c, measured := a.rtt.estimate(p); measured {
				sum += c
				n++
			}
		}
		if n > 0 {
			mean, ok = sum/float64(n), true
		}
	})
	return mean, ok
}

// Close stops the actor loop and the transport, waiting for all goroutines.
// It is idempotent and safe for concurrent use.
func (a *Agent) Close() error {
	var err error
	a.closeOnce.Do(func() {
		if a.router != nil {
			// Flush buffered publishes while the actor loop still runs, so a
			// shutdown never strands a batch (the zero-loss half of the
			// batching contract; OnPeerDown handles the overlay-change half).
			_ = a.call(func() { a.router.Close() })
		}
		close(a.stop)
		<-a.done
		a.sched.wait()
		if a.probeTicker != nil {
			a.probeTicker.Stop()
		}
		err = a.tr.Close()
	})
	return err
}
