//go:build linux

package transport

import (
	"net"
	"syscall"
)

// connAlive health-checks a cached connection without consuming data: a
// non-blocking MSG_PEEK recv. A readable byte or EAGAIN means the
// connection is live; a zero-byte return (orderly EOF) or a pending socket
// error (ECONNRESET and friends) means the remote is gone even though no
// local read or write has observed it yet — exactly the dead-cached-conn
// case Probe used to miss. Connections that do not expose a raw descriptor
// (fault-injection wrappers may not forward one) report alive: the peek is
// an opportunistic sharpening of the failure detector, not its foundation.
func connAlive(c net.Conn) bool {
	sc, ok := c.(syscall.Conn)
	if !ok {
		return true
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return true
	}
	alive := true
	ctrlErr := raw.Control(func(fd uintptr) {
		var buf [1]byte
		n, _, rerr := syscall.Recvfrom(int(fd), buf[:], syscall.MSG_PEEK|syscall.MSG_DONTWAIT)
		switch {
		case n > 0:
			// Data pending: the reader will consume it; the link is live.
		case rerr == syscall.EAGAIN || rerr == syscall.EWOULDBLOCK:
			// Idle but open.
		default:
			// n == 0 with no error is an orderly EOF; any other errno is a
			// pending socket error. Either way the connection is dead.
			alive = false
		}
	})
	if ctrlErr != nil {
		return true
	}
	return alive
}
