package transport

import (
	"time"

	"hyparview/internal/id"
)

// unknownCost is returned for links the oracle has no estimate for yet. It is
// large enough that an unmeasured link never looks attractive to the
// optimizer, while the triggered measurement makes the next optimization
// round better informed.
const unknownCost = uint64(1) << 40

// rttEWMAWeight is the weight of a new sample in the running estimate: TCP's
// classic SRTT smoothing factor (RFC 6298), 1/8.
const rttEWMAWeight = 0.125

// rttOracle implements xbot.Oracle over live PING/PONG round-trip
// measurements: one exponentially weighted moving average per peer, in
// microseconds. This is the deployment-side counterpart of the simulator's
// latency model — X-BOT only ever asks a node for the cost of its own
// adjacent links, which is exactly what a node can measure itself.
//
// The oracle is owned by the agent's actor goroutine; it is not safe for
// concurrent use and needs no locks.
type rttOracle struct {
	self id.ID
	est  map[id.ID]float64 // microseconds, EWMA-smoothed

	// requestPing asynchronously starts a measurement of a link the
	// optimizer asked about but that has no estimate yet. The current call
	// still returns unknownCost; the estimate exists by the next attempt.
	requestPing func(id.ID)
}

// newRTTOracle builds an oracle for self; requestPing is invoked for
// cost queries about unmeasured peers.
func newRTTOracle(self id.ID, requestPing func(id.ID)) *rttOracle {
	return &rttOracle{
		self:        self,
		est:         make(map[id.ID]float64),
		requestPing: requestPing,
	}
}

// Cost implements xbot.Oracle. One endpoint is always the local node; the
// estimate for the other endpoint is returned, or unknownCost — after
// kicking off a measurement — when the link was never measured.
func (o *rttOracle) Cost(a, b id.ID) uint64 {
	other := b
	if other == o.self {
		other = a
	}
	if other == o.self || other.IsNil() {
		return 0
	}
	if e, ok := o.est[other]; ok {
		if e < 1 {
			return 1
		}
		return uint64(e)
	}
	if o.requestPing != nil {
		o.requestPing(other)
	}
	return unknownCost
}

// KnownCost implements xbot.CostKnower: the optimizer must not rank or
// dissolve links this oracle has never completed a measurement for.
func (o *rttOracle) KnownCost(a, b id.ID) bool {
	other := b
	if other == o.self {
		other = a
	}
	if other == o.self || other.IsNil() {
		return true
	}
	_, ok := o.est[other]
	return ok
}

// observe folds one measured round trip into the peer's estimate.
func (o *rttOracle) observe(peer id.ID, rtt time.Duration) {
	if rtt < 0 {
		return
	}
	sample := float64(rtt.Microseconds())
	if prev, ok := o.est[peer]; ok {
		o.est[peer] = prev + rttEWMAWeight*(sample-prev)
	} else {
		o.est[peer] = sample
	}
}

// estimate returns the current estimate for peer in microseconds.
func (o *rttOracle) estimate(peer id.ID) (float64, bool) {
	e, ok := o.est[peer]
	return e, ok
}

// prune drops estimates for peers outside keep, bounding the map to the
// node's current membership horizon (both views plus in-flight pings).
func (o *rttOracle) prune(keep map[id.ID]bool) {
	for p := range o.est {
		if !keep[p] {
			delete(o.est, p)
		}
	}
}

// len reports the number of live estimates (tests).
func (o *rttOracle) len() int { return len(o.est) }
