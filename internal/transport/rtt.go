package transport

import (
	"time"

	"hyparview/internal/id"
)

// unknownCost is returned for links the oracle has no estimate for yet. It is
// large enough that an unmeasured link never looks attractive to the
// optimizer, while the triggered measurement makes the next optimization
// round better informed.
const unknownCost = uint64(1) << 40

// rttEWMAWeight is the weight of a new sample in the running estimate: TCP's
// classic SRTT smoothing factor (RFC 6298), 1/8.
const rttEWMAWeight = 0.125

// rttOracle implements xbot.Oracle over live PING/PONG round-trip
// measurements: one exponentially weighted moving average per peer, in
// microseconds. This is the deployment-side counterpart of the simulator's
// latency model — X-BOT only ever asks a node for the cost of its own
// adjacent links, which is exactly what a node can measure itself.
//
// The oracle is owned by the agent's actor goroutine; it is not safe for
// concurrent use and needs no locks.
type rttOracle struct {
	self id.ID
	est  map[id.ID]float64 // microseconds, EWMA-smoothed

	// requestPing asynchronously starts a measurement of a link the
	// optimizer asked about but that has no estimate yet. The current call
	// still returns unknownCost; the estimate exists by the next attempt.
	requestPing func(id.ID)
}

// newRTTOracle builds an oracle for self; requestPing is invoked for
// cost queries about unmeasured peers.
func newRTTOracle(self id.ID, requestPing func(id.ID)) *rttOracle {
	return &rttOracle{
		self:        self,
		est:         make(map[id.ID]float64),
		requestPing: requestPing,
	}
}

// Cost implements xbot.Oracle. One endpoint is always the local node; the
// estimate for the other endpoint is returned, or unknownCost — after
// kicking off a measurement — when the link was never measured.
func (o *rttOracle) Cost(a, b id.ID) uint64 {
	other := b
	if other == o.self {
		other = a
	}
	if other == o.self || other.IsNil() {
		return 0
	}
	if e, ok := o.est[other]; ok {
		if e < 1 {
			return 1
		}
		return uint64(e)
	}
	if o.requestPing != nil {
		o.requestPing(other)
	}
	return unknownCost
}

// KnownCost implements xbot.CostKnower: the optimizer must not rank or
// dissolve links this oracle has never completed a measurement for.
func (o *rttOracle) KnownCost(a, b id.ID) bool {
	other := b
	if other == o.self {
		other = a
	}
	if other == o.self || other.IsNil() {
		return true
	}
	_, ok := o.est[other]
	return ok
}

// observe folds one measured round trip into the peer's estimate.
func (o *rttOracle) observe(peer id.ID, rtt time.Duration) {
	if rtt < 0 {
		return
	}
	sample := float64(rtt.Microseconds())
	if prev, ok := o.est[peer]; ok {
		o.est[peer] = prev + rttEWMAWeight*(sample-prev)
	} else {
		o.est[peer] = sample
	}
}

// estimate returns the current estimate for peer in microseconds.
func (o *rttOracle) estimate(peer id.ID) (float64, bool) {
	e, ok := o.est[peer]
	return e, ok
}

// probeLedger is the bookkeeping behind half-open suspicion
// (AgentConfig.SuspectAfter): per-peer "a PING is in flight unanswered"
// flags and the count of consecutive probe rounds entered in that state. A
// stalled-but-not-closed peer keeps ACKing at the kernel level, so writes
// succeed and the watch machinery stays silent; unanswered application-level
// probes are the only timely evidence, and N consecutive misses is the
// suspicion verdict the agent converts into Transport.Suspect. Owned by the
// agent's actor goroutine; no locks.
type probeLedger struct {
	awaiting map[id.ID]bool // PING sent, no PONG yet
	misses   map[id.ID]int  // consecutive probe rounds entered while awaiting
}

func newProbeLedger() *probeLedger {
	return &probeLedger{
		awaiting: make(map[id.ID]bool),
		misses:   make(map[id.ID]int),
	}
}

// sent records an in-flight PING to peer.
func (p *probeLedger) sent(peer id.ID) { p.awaiting[peer] = true }

// answered clears peer's suspicion state: any PONG proves the link live.
func (p *probeLedger) answered(peer id.ID) {
	delete(p.awaiting, peer)
	delete(p.misses, peer)
}

// tick is called once per probe round per active peer, before that round's
// PING goes out, and returns the consecutive-miss count: entering a round
// with the previous PING still unanswered is one miss; entering clean
// resets the streak. A short outage self-heals — the first answered probe
// after a redial wipes the streak — so only sustained silence accumulates
// toward the suspicion threshold.
func (p *probeLedger) tick(peer id.ID) int {
	if p.awaiting[peer] {
		p.misses[peer]++
	} else {
		delete(p.misses, peer)
	}
	return p.misses[peer]
}

// forget drops peer entirely (suspected, or left the membership horizon).
func (p *probeLedger) forget(peer id.ID) {
	delete(p.awaiting, peer)
	delete(p.misses, peer)
}

// prune drops state for peers outside keep, mirroring rttOracle.prune.
func (p *probeLedger) prune(keep map[id.ID]bool) {
	for q := range p.awaiting {
		if !keep[q] {
			delete(p.awaiting, q)
		}
	}
	for q := range p.misses {
		if !keep[q] {
			delete(p.misses, q)
		}
	}
}

// prune drops estimates for peers outside keep, bounding the map to the
// node's current membership horizon (both views plus in-flight pings).
func (o *rttOracle) prune(keep map[id.ID]bool) {
	for p := range o.est {
		if !keep[p] {
			delete(o.est, p)
		}
	}
}

// len reports the number of live estimates (tests).
func (o *rttOracle) len() int { return len(o.est) }
