package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// BenchmarkSendLoopback measures one framed message over a cached TCP
// connection on loopback (the transport's hot path).
func BenchmarkSendLoopback(b *testing.B) {
	var received atomic.Int64
	sink, err := Listen("127.0.0.1:0", Config{},
		func(id.ID, msg.Message) { received.Add(1) }, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	src, err := Listen("127.0.0.1:0", Config{}, func(id.ID, msg.Message) {}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()

	dst := src.Register(sink.Addr())
	m := msg.Message{Type: msg.Gossip, Sender: src.Self(), Round: 1, Payload: make([]byte, 256)}
	b.SetBytes(int64(msg.EncodedSize(m)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			err := src.Send(dst, m)
			if err == nil {
				break
			}
			// Send is asynchronous: a tight loop outruns the writer and the
			// bounded queue sheds. Overflow is the transport's backpressure
			// signal, so back off briefly and retry like a real caller.
			if !errors.Is(err, peer.ErrOverflow) {
				b.Fatal(err)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	b.StopTimer()
	// Drain so the next benchmark starts clean.
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// benchAgentBroadcast measures an end-to-end broadcast across 8 real TCP
// agents on loopback under the given broadcast layer: one iteration is one
// message fully delivered at every agent.
func benchAgentBroadcast(b *testing.B, mode BroadcastMode) {
	const n = 8
	var delivered atomic.Int64
	agents := make([]*Agent, 0, n)
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 0; i < n; i++ {
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			Broadcast:     mode,
			PlumtreeTimer: 50 * time.Millisecond,
			OnDeliver:     func([]byte) { delivered.Add(1) },
		})
		if err != nil {
			b.Fatal(err)
		}
		agents = append(agents, a)
	}
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for the overlay to settle.
	time.Sleep(300 * time.Millisecond)
	payload := make([]byte, 64)
	send := func(i int) {
		want := delivered.Load() + n
		if err := agents[i%n].Broadcast(payload); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for delivered.Load() < want && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		if delivered.Load() < want {
			b.Fatalf("broadcast %d incomplete: %d/%d", i, delivered.Load()-(want-int64(n)), n)
		}
	}
	// Warm-up so Plumtree's pruning carves its spanning tree before the
	// measured iterations (a no-op for flood).
	for i := 0; i < 10; i++ {
		send(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(i)
	}
	b.StopTimer()
	var dup, del uint64
	for _, a := range agents {
		st := a.BroadcastStats()
		dup += st.Duplicates
		del += st.Delivered
	}
	b.ReportMetric(float64(dup)/float64(del), "dup/delivery")
}

// BenchmarkFloodBroadcast: per-message latency and redundancy of flooding
// every active-view link (the paper's own dissemination) on real sockets.
func BenchmarkFloodBroadcast(b *testing.B) { benchAgentBroadcast(b, BroadcastFlood) }

// BenchmarkPlumtreeBroadcast: the same workload over Plumtree broadcast
// trees — equal reliability, payload pushes on tree links only.
func BenchmarkPlumtreeBroadcast(b *testing.B) { benchAgentBroadcast(b, BroadcastPlumtree) }

// benchBroadcastThroughput pumps a pipelined flood-broadcast load through n
// loopback agents: up to `window` broadcasts are in flight at once, so the
// per-peer send queues refill while writer goroutines flush and the batched
// data plane actually engages. One iteration is one broadcast delivered at
// every agent; the reported msgs/sec is end-to-end goodput and
// frames/syscall is the write path's measured batching ratio (1.0 would
// mean every frame cost its own writev).
func benchBroadcastThroughput(b *testing.B, n int) {
	var delivered atomic.Int64
	agents := make([]*Agent, 0, n)
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 0; i < n; i++ {
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			OnDeliver: func([]byte) { delivered.Add(1) },
		})
		if err != nil {
			b.Fatal(err)
		}
		agents = append(agents, a)
	}
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	time.Sleep(time.Duration(n) * 40 * time.Millisecond) // let the overlay settle

	payload := make([]byte, 64)
	waitFor := func(target int64) {
		deadline := time.Now().Add(time.Duration(n) * 5 * time.Second)
		for delivered.Load() < target && time.Now().Before(deadline) {
			time.Sleep(50 * time.Microsecond)
		}
		if got := delivered.Load(); got < target {
			b.Fatalf("stalled at %d/%d deliveries", got, target)
		}
	}
	// Warm up: full serial broadcasts open every connection and verify the
	// overlay disseminates before anything is measured.
	for i := 0; i < 5; i++ {
		if err := agents[i%n].Broadcast(payload); err != nil {
			b.Fatal(err)
		}
		waitFor(int64((i + 1) * n))
	}

	const window = 32 // in-flight broadcasts; keeps queues under SendQueue
	base := delivered.Load()
	var framesBefore, writesBefore uint64
	for _, a := range agents {
		st := a.TransportStats()
		framesBefore += st.FramesSent
		writesBefore += st.WriteCalls
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i >= window {
			waitFor(base + int64((i-window+1)*n))
		}
		if err := agents[i%n].Broadcast(payload); err != nil {
			b.Fatal(err)
		}
	}
	waitFor(base + int64(b.N*n))
	b.StopTimer()
	var frames, writes uint64
	for _, a := range agents {
		st := a.TransportStats()
		frames += st.FramesSent
		writes += st.WriteCalls
	}
	if writes > writesBefore {
		b.ReportMetric(float64(frames-framesBefore)/float64(writes-writesBefore), "frames/syscall")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
}

// BenchmarkBroadcastThroughput: sustained flood-broadcast throughput at
// three overlay sizes on loopback — the end-user SLO view of the batched
// transport data plane (msgs/sec) next to its mechanism (frames/syscall).
func BenchmarkBroadcastThroughput(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("agents=%d", n), func(b *testing.B) { benchBroadcastThroughput(b, n) })
	}
}

// BenchmarkRTTProbe measures one full PING→PONG round trip through an
// agent's actor loop: the unit cost of the X-BOT oracle's link measurements.
func BenchmarkRTTProbe(b *testing.B) {
	agent, err := NewAgent("127.0.0.1:0", AgentConfig{})
	if err != nil {
		b.Fatal(err)
	}
	defer agent.Close()

	pongs := make(chan uint64, 1)
	prober, err := Listen("127.0.0.1:0", Config{}, func(_ id.ID, m msg.Message) {
		if m.Type == msg.Pong {
			pongs <- m.Round
		}
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer prober.Close()
	dst := prober.Register(agent.Addr())

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nonce := uint64(i) + 1
		if err := prober.Send(dst, msg.Message{Type: msg.Ping, Sender: prober.Self(), Round: nonce}); err != nil {
			b.Fatal(err)
		}
		if got := <-pongs; got != nonce {
			b.Fatalf("pong nonce %d, want %d", got, nonce)
		}
	}
}
