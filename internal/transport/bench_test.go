package transport

import (
	"sync/atomic"
	"testing"
	"time"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

// BenchmarkSendLoopback measures one framed message over a cached TCP
// connection on loopback (the transport's hot path).
func BenchmarkSendLoopback(b *testing.B) {
	var received atomic.Int64
	sink, err := Listen("127.0.0.1:0", Config{},
		func(id.ID, msg.Message) { received.Add(1) }, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	src, err := Listen("127.0.0.1:0", Config{}, func(id.ID, msg.Message) {}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()

	dst := src.Register(sink.Addr())
	m := msg.Message{Type: msg.Gossip, Sender: src.Self(), Round: 1, Payload: make([]byte, 256)}
	b.SetBytes(int64(msg.EncodedSize(m)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := src.Send(dst, m); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Drain so the next benchmark starts clean.
	deadline := time.Now().Add(10 * time.Second)
	for received.Load() < int64(b.N) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkAgentBroadcastLoopback measures an end-to-end flood across 8 real
// TCP agents on loopback, timer stopped until every agent delivered.
func BenchmarkAgentBroadcastLoopback(b *testing.B) {
	const n = 8
	var delivered atomic.Int64
	agents := make([]*Agent, 0, n)
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 0; i < n; i++ {
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			OnDeliver: func([]byte) { delivered.Add(1) },
		})
		if err != nil {
			b.Fatal(err)
		}
		agents = append(agents, a)
	}
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			b.Fatal(err)
		}
	}
	// Wait for the overlay to settle.
	time.Sleep(300 * time.Millisecond)
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		want := delivered.Load() + n
		if err := agents[i%n].Broadcast(payload); err != nil {
			b.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for delivered.Load() < want && time.Now().Before(deadline) {
			time.Sleep(100 * time.Microsecond)
		}
		if delivered.Load() < want {
			b.Fatalf("broadcast %d incomplete: %d/%d", i, delivered.Load()-(want-int64(n)), n)
		}
	}
}
