//go:build !linux

package transport

import "net"

// connAlive reports whether a cached connection looks live. Without the
// Linux MSG_PEEK fast check this is indeterminate, so it errs on the side
// of alive: the reader goroutine and the RTT-probe suspicion machinery
// remain the failure detectors of record on other platforms.
func connAlive(net.Conn) bool { return true }
