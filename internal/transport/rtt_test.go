package transport

import (
	"testing"
	"time"

	"hyparview/internal/id"
	"hyparview/internal/xbot"
)

// The rtt oracle must satisfy the optimizer's contracts.
var (
	_ xbot.Oracle     = (*rttOracle)(nil)
	_ xbot.CostKnower = (*rttOracle)(nil)
)

func TestRTTOracleUnknownTriggersPing(t *testing.T) {
	var pinged []id.ID
	o := newRTTOracle(1, func(p id.ID) { pinged = append(pinged, p) })

	if o.KnownCost(1, 2) {
		t.Error("unmeasured link reported as known")
	}
	if c := o.Cost(1, 2); c != unknownCost {
		t.Errorf("unmeasured Cost = %d, want unknownCost", c)
	}
	if len(pinged) != 1 || pinged[0] != 2 {
		t.Fatalf("Cost of unmeasured link pinged %v, want [2]", pinged)
	}
	// Self links are never measured and always "known".
	if c := o.Cost(1, 1); c != 0 {
		t.Errorf("self Cost = %d, want 0", c)
	}
	if !o.KnownCost(1, 1) {
		t.Error("self link reported unknown")
	}
}

func TestRTTOracleEWMAAndSymmetry(t *testing.T) {
	o := newRTTOracle(1, nil)
	o.observe(2, 800*time.Microsecond)
	if c := o.Cost(1, 2); c != 800 {
		t.Errorf("first sample Cost = %d, want 800", c)
	}
	// Argument order must not matter: one endpoint is always the local node.
	if o.Cost(2, 1) != o.Cost(1, 2) {
		t.Error("Cost not symmetric in argument order")
	}
	if !o.KnownCost(2, 1) {
		t.Error("measured link reported unknown")
	}
	// RFC 6298 smoothing: est' = est + (sample-est)/8.
	o.observe(2, 1600*time.Microsecond)
	if c := o.Cost(1, 2); c != 900 {
		t.Errorf("EWMA Cost = %d, want 900", c)
	}
	// Sub-microsecond estimates clamp to 1, never 0 (a zero-cost link would
	// always win every comparison).
	o2 := newRTTOracle(1, nil)
	o2.observe(3, 100*time.Nanosecond)
	if c := o2.Cost(1, 3); c != 1 {
		t.Errorf("tiny RTT Cost = %d, want clamp to 1", c)
	}
}

func TestRTTOraclePrune(t *testing.T) {
	o := newRTTOracle(1, nil)
	o.observe(2, time.Millisecond)
	o.observe(3, time.Millisecond)
	o.observe(4, time.Millisecond)
	o.prune(map[id.ID]bool{3: true})
	if o.len() != 1 || !o.KnownCost(1, 3) || o.KnownCost(1, 2) {
		t.Errorf("prune kept %d estimates, want only peer 3", o.len())
	}
}
