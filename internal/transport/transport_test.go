package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hyparview/internal/core"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// collector accumulates deliveries thread-safely.
type collector struct {
	mu    sync.Mutex
	msgs  []msg.Message
	froms []id.ID
	downs []id.ID
}

func (c *collector) onMessage(from id.ID, m msg.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
	c.froms = append(c.froms, from)
}

func (c *collector) onDown(p id.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.downs = append(c.downs, p)
}

func (c *collector) waitMsgs(t *testing.T, n int) []msg.Message {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		c.mu.Lock()
		if len(c.msgs) >= n {
			out := append([]msg.Message(nil), c.msgs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c *collector) waitDowns(t *testing.T, n int) []id.ID {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		c.mu.Lock()
		if len(c.downs) >= n {
			out := append([]id.ID(nil), c.downs...)
			c.mu.Unlock()
			return out
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d downs", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func listen(t *testing.T, c *collector) *Transport {
	t.Helper()
	tr, err := Listen("127.0.0.1:0", Config{}, c.onMessage, c.onDown)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	return tr
}

func TestSendDeliversMessage(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	bID := a.Register(b.Addr())

	want := msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: 42, Payload: []byte("hi")}
	if err := a.Send(bID, want); err != nil {
		t.Fatal(err)
	}
	got := cb.waitMsgs(t, 1)[0]
	if got.Round != 42 || string(got.Payload) != "hi" || got.Sender != a.Self() {
		t.Errorf("got %+v", got)
	}
}

func TestSelfIDDerivedFromAddr(t *testing.T) {
	var c collector
	tr := listen(t, &c)
	if tr.Self() != id.FromAddr(tr.Addr()) {
		t.Error("Self() does not match FromAddr(Addr())")
	}
	if addr, ok := tr.Book().Addr(tr.Self()); !ok || addr != tr.Addr() {
		t.Error("own address not in book")
	}
}

func TestSendToUnknownIDFails(t *testing.T) {
	var c collector
	a := listen(t, &c)
	err := a.Send(id.ID(424242), msg.Message{Type: msg.Gossip, Sender: a.Self()})
	if !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("err = %v, want ErrPeerDown", err)
	}
}

func TestSendToDeadAddrFails(t *testing.T) {
	var c collector
	a := listen(t, &c)
	// Reserve a port, then close it so nothing listens there.
	var cb collector
	b := listen(t, &cb)
	addr := b.Addr()
	_ = b.Close()
	dead := a.Register(addr)
	err := a.Send(dead, msg.Message{Type: msg.Gossip, Sender: a.Self()})
	if !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("err = %v, want ErrPeerDown", err)
	}
}

func TestProbeSemantics(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	bID := a.Register(b.Addr())
	if err := a.Probe(bID); err != nil {
		t.Errorf("probe of live peer failed: %v", err)
	}
	_ = b.Close()
	// The cached connection is now dead. Probe used to answer from the cache
	// without checking it — a false "reachable" until the reader noticed the
	// close; now the peek check (or the retired cache plus a failed redial)
	// must surface ErrPeerDown.
	deadline := time.Now().Add(3 * time.Second)
	for {
		err := a.Probe(bID)
		if errors.Is(err, peer.ErrPeerDown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe of dead cached peer never failed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWatchFiresOnPeerDeath(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	bID := a.Register(b.Addr())
	if err := a.Probe(bID); err != nil { // establish the watched connection
		t.Fatal(err)
	}
	a.Watch(bID)
	_ = b.Close()
	downs := ca.waitDowns(t, 1)
	if downs[0] != bID {
		t.Errorf("down = %v, want %v", downs[0], bID)
	}
}

func TestUnwatchSuppressesNotification(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	bID := a.Register(b.Addr())
	if err := a.Probe(bID); err != nil {
		t.Fatal(err)
	}
	a.Watch(bID)
	a.Unwatch(bID)
	_ = b.Close()
	time.Sleep(150 * time.Millisecond)
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if len(ca.downs) != 0 {
		t.Errorf("downs = %v, want none after Unwatch", ca.downs)
	}
}

func TestDirectoryTeachesAddresses(t *testing.T) {
	// a knows b and c; b learns c's address from a message's directory and
	// can then send to c directly.
	var ca, cb, cc collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	c := listen(t, &cc)
	bID := a.Register(b.Addr())
	cID := a.Register(c.Addr())

	if err := a.Send(bID, msg.Message{
		Type: msg.ForwardJoin, Sender: a.Self(), Subject: cID, TTL: 3,
	}); err != nil {
		t.Fatal(err)
	}
	cb.waitMsgs(t, 1)
	if err := b.Send(cID, msg.Message{Type: msg.Gossip, Sender: b.Self(), Round: 1}); err != nil {
		t.Fatalf("b could not reach c after learning via directory: %v", err)
	}
	cc.waitMsgs(t, 1)
}

func TestLargeMessageRoundTrip(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	bID := a.Register(b.Addr())
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(bID, msg.Message{Type: msg.Gossip, Sender: a.Self(), Payload: payload}); err != nil {
		t.Fatal(err)
	}
	got := cb.waitMsgs(t, 1)[0]
	if len(got.Payload) != len(payload) || got.Payload[12345] != payload[12345] {
		t.Error("large payload corrupted")
	}
}

func TestConcurrentSendsSafe(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	bID := a.Register(b.Addr())
	var wg sync.WaitGroup
	const senders, each = 8, 50
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				// A full send queue sheds with ErrOverflow by design; the
				// lossless delivery this test asserts requires retrying.
				for {
					err := a.Send(bID, msg.Message{
						Type: msg.Gossip, Sender: a.Self(), Round: uint64(g*each + i),
					})
					if !errors.Is(err, peer.ErrOverflow) {
						break
					}
					time.Sleep(100 * time.Microsecond)
				}
			}
		}(g)
	}
	wg.Wait()
	msgs := cb.waitMsgs(t, senders*each)
	seen := make(map[uint64]bool, len(msgs))
	for _, m := range msgs {
		if seen[m.Round] {
			t.Fatalf("duplicate or corrupted frame for round %d", m.Round)
		}
		seen[m.Round] = true
	}
}

func TestCloseIdempotent(t *testing.T) {
	var c collector
	tr := listen(t, &c)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := tr.Send(id.ID(1), msg.Message{Type: msg.Gossip}); !errors.Is(err, ErrClosed) && !errors.Is(err, peer.ErrPeerDown) {
		t.Errorf("send after close: %v", err)
	}
}

func TestAgentViewsAndStats(t *testing.T) {
	a, err := NewAgent("127.0.0.1:0", AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewAgent("127.0.0.1:0", AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		av, bv := a.ActiveView(), b.ActiveView()
		if len(av) == 1 && av[0] == b.Self() && len(bv) == 1 && bv[0] == a.Self() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("views never became symmetric: a=%v b=%v", av, bv)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := a.Stats(); st.JoinsHandled != 1 {
		t.Errorf("contact stats = %+v, want JoinsHandled=1", st)
	}
}

func TestAgentManualCycle(t *testing.T) {
	a, err := NewAgent("127.0.0.1:0", AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Cycle(); err != nil {
		t.Errorf("manual cycle: %v", err)
	}
}

func TestAgentFailureRepairsOverTCP(t *testing.T) {
	// 4 agents; one dies; the survivors must purge it from their active
	// views via the watch mechanism and stay mutually broadcastable.
	mk := func(c *collector) *Agent {
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			CyclePeriod: 50 * time.Millisecond,
			OnDeliver:   func(p []byte) { c.onMessage(id.Nil, msg.Message{Payload: p}) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	cols := make([]*collector, 4)
	agents := make([]*Agent, 4)
	for i := range agents {
		cols[i] = &collector{}
		agents[i] = mk(cols[i])
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 1; i < 4; i++ {
		if err := agents[i].Join(agents[0].Addr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)

	victim := agents[3].Self()
	_ = agents[3].Close()

	// Survivors must eventually drop the victim from their active views.
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		for i := 0; i < 3; i++ {
			for _, n := range agents[i].ActiveView() {
				if n == victim {
					clean = false
				}
			}
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never purged from survivors' active views")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := agents[1].Broadcast([]byte("post-failure")); err != nil {
		t.Fatal(err)
	}
	cols[0].waitMsgs(t, 1)
	cols[2].waitMsgs(t, 1)
}

func TestAgentNeighborEvents(t *testing.T) {
	type event struct {
		up   bool
		peer id.ID
	}
	var mu sync.Mutex
	var events []event
	a, err := NewAgent("127.0.0.1:0", AgentConfig{
		OnNeighborUp: func(p id.ID) {
			mu.Lock()
			events = append(events, event{up: true, peer: p})
			mu.Unlock()
		},
		OnNeighborDown: func(p id.ID, _ core.DownReason) {
			mu.Lock()
			events = append(events, event{up: false, peer: p})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewAgent("127.0.0.1:0", AgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	bID := b.Self()

	waitEvent := func(wantUp bool) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for {
			mu.Lock()
			for _, e := range events {
				if e.up == wantUp && e.peer == bID {
					mu.Unlock()
					return
				}
			}
			mu.Unlock()
			if time.Now().After(deadline) {
				t.Fatalf("no %v event for %v", wantUp, bID)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitEvent(true)
	_ = b.Close()
	waitEvent(false)
}

func TestCorruptFrameDropsConnectionOnly(t *testing.T) {
	// A peer sending garbage must get its connection dropped without
	// killing the transport; healthy peers keep working.
	var ca collector
	a := listen(t, &ca)

	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// Valid length prefix, garbage body.
	frame := []byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	// The transport must close the corrupt connection.
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("corrupt connection not closed")
	}
	_ = conn.Close()

	// A healthy peer still gets through.
	var cb collector
	b := listen(t, &cb)
	aID := b.Register(a.Addr())
	if err := b.Send(aID, msg.Message{Type: msg.Gossip, Sender: b.Self(), Round: 5}); err != nil {
		t.Fatal(err)
	}
	got := ca.waitMsgs(t, 1)
	if got[0].Round != 5 {
		t.Errorf("round = %d", got[0].Round)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	var ca collector
	a := listen(t, &ca)
	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Length field beyond maxFrame.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("oversized frame did not close the connection")
	}
}
