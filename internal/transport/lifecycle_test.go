package transport

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyparview/internal/core"
	"hyparview/internal/faults"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// The connection-lifecycle contracts: transient dial and write failures on
// watched links become backoff retries instead of instant peer-down
// verdicts; persistent failure fires the watch within the budget/suspicion
// window; deliberate teardown drains queued frames before the FIN; the RTT
// prober's half-open suspicion condemns stalled-but-ACKing peers; and all of
// it holds under concurrent Send/Probe/Watch/Drain/Suspect/Close pressure
// with socket-level faults injected (internal/faults.Sockets).

// fastLifecycle returns a Config with the lifecycle knobs tightened for
// loopback tests: quick backoff, small budget, sub-second suspicion window.
func fastLifecycle() Config {
	return Config{
		RedialBase:      5 * time.Millisecond,
		RedialCap:       40 * time.Millisecond,
		RedialBudget:    4,
		SuspicionWindow: time.Second,
		DrainTimeout:    200 * time.Millisecond,
	}
}

// TestWatchBackoffRecoversFromTransientDialFailure: a Watch whose first dial
// attempts fail transiently must keep retrying with backoff and connect —
// no watch notification for an outage shorter than the budget.
func TestWatchBackoffRecoversFromTransientDialFailure(t *testing.T) {
	s := faults.NewSockets(1)
	var ca, cb collector
	cfg := fastLifecycle()
	cfg.Dial = s.Dialer(nil)
	a := listenWith(t, cfg, &ca)
	b := listen(t, &cb)
	dst := a.Register(b.Addr())

	s.FailNextDials(2)
	a.Watch(dst)

	deadline := time.Now().Add(3 * time.Second)
	for !a.Connected(dst) {
		if time.Now().After(deadline) {
			t.Fatal("watched link never connected through transient dial failures")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := a.Stats().Redials; got < 1 {
		t.Errorf("Redials = %d, want >= 1 after two injected dial failures", got)
	}
	if got := s.Stats().DialsFailed; got != 2 {
		t.Errorf("injected dial failures = %d, want 2", got)
	}
	time.Sleep(100 * time.Millisecond)
	ca.mu.Lock()
	downs := len(ca.downs)
	ca.mu.Unlock()
	if downs != 0 {
		t.Errorf("watch fired %d times for a transient outage, want 0", downs)
	}
}

// TestPersistentFailureFiresWithinWindow: a watched peer that stays
// unreachable must be reported — but only after the redial budget ran, and
// within the suspicion window plus slack, not eventually-maybe.
func TestPersistentFailureFiresWithinWindow(t *testing.T) {
	var ca, cb collector
	cfg := fastLifecycle()
	cfg.SuspicionWindow = 500 * time.Millisecond
	a := listenWith(t, cfg, &ca)
	// Reserve an address, then close it so nothing ever listens there.
	b := listen(t, &cb)
	addr := b.Addr()
	_ = b.Close()
	dead := a.Register(addr)

	start := time.Now()
	a.Watch(dead)
	downs := ca.waitDowns(t, 1)
	elapsed := time.Since(start)
	if downs[0] != dead {
		t.Errorf("down = %v, want %v", downs[0], dead)
	}
	// Bound: budget × (dial + max backoff) stays well under 2s with the fast
	// knobs; generous slack absorbs CI scheduling noise.
	if elapsed > 2*time.Second {
		t.Errorf("watch fired after %v, want within the suspicion window (+slack)", elapsed)
	}
	if got := a.Stats().Redials; got < 1 {
		t.Errorf("Redials = %d, want >= 1 (retries before the verdict)", got)
	}
}

// TestWriteFailureRedialsWithoutDown: an injected connection reset on an
// established watched link must engage the redial machinery — later frames
// deliver over the successor connection and no watch fires.
func TestWriteFailureRedialsWithoutDown(t *testing.T) {
	s := faults.NewSockets(2)
	var ca, cb collector
	cfg := fastLifecycle()
	cfg.Dial = s.Dialer(nil)
	a := listenWith(t, cfg, &ca)
	b := listen(t, &cb)
	dst := a.Register(b.Addr())

	if err := a.Probe(dst); err != nil {
		t.Fatal(err)
	}
	a.Watch(dst)
	if err := a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: 0}); err != nil {
		t.Fatal(err)
	}
	cb.waitMsgs(t, 1)

	s.ResetNextWrites(1)
	// The frame that rides the reset write is forfeit (the kernel may have
	// taken any prefix); frames sent afterwards must arrive once the redial
	// restores the link.
	deadline := time.Now().Add(3 * time.Second)
	round := uint64(1)
	for {
		_ = a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: round})
		round++
		cb.mu.Lock()
		n := len(cb.msgs)
		cb.mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no frames delivered after the injected reset")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := a.Stats().Redials; got < 1 {
		t.Errorf("Redials = %d, want >= 1 after a reset on a watched link", got)
	}
	ca.mu.Lock()
	downs := len(ca.downs)
	ca.mu.Unlock()
	if downs != 0 {
		t.Errorf("watch fired %d times for a healed reset, want 0", downs)
	}
}

// TestGracefulDrainDeliversQueuedFrames: Drain must flush every frame
// already accepted into the queue before closing — the courtesy-DISCONNECT
// guarantee — then retire the link without firing the watch.
func TestGracefulDrainDeliversQueuedFrames(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listen(t, &cb)
	dst := a.Register(b.Addr())
	balanceBefore := scratchBalance.Load()

	const frames = 40
	for i := 0; i < frames; i++ {
		if err := a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: uint64(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	a.Drain(dst)

	got := cb.waitMsgs(t, frames)
	seen := make(map[uint64]bool, len(got))
	for _, m := range got {
		seen[m.Round] = true
	}
	for i := uint64(0); i < frames; i++ {
		if !seen[i] {
			t.Errorf("frame %d accepted before Drain never delivered", i)
		}
	}
	waitStat(t, func() uint64 { return a.Stats().Drained }, 1, "Drained")
	deadline := time.Now().Add(2 * time.Second)
	for (a.Connected(dst) || scratchBalance.Load() != balanceBefore) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if a.Connected(dst) {
		t.Error("connection still cached after Drain")
	}
	if got := scratchBalance.Load(); got != balanceBefore {
		t.Errorf("scratch balance %d after drain, want %d", got, balanceBefore)
	}
	ca.mu.Lock()
	downs := len(ca.downs)
	ca.mu.Unlock()
	if downs != 0 {
		t.Errorf("watch fired %d times on a deliberate drain, want 0", downs)
	}
}

// TestDialRaceLostCounted: two concurrent first-contact Sends race the dial;
// the loser's connection is discarded and counted, and both frames deliver
// over the winning link.
func TestDialRaceLostCounted(t *testing.T) {
	s := faults.NewSockets(3)
	s.SetPlan(faults.ConnPlan{DialDelay: 50 * time.Millisecond})
	var ca, cb collector
	cfg := fastLifecycle()
	cfg.Dial = s.Dialer(nil)
	a := listenWith(t, cfg, &ca)
	b := listen(t, &cb)
	dst := a.Register(b.Addr())

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			errs[g] = a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: uint64(g)})
		}(g)
	}
	close(start)
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("send %d: %v", g, err)
		}
	}
	cb.waitMsgs(t, 2)
	if got := a.Stats().DialRacesLost; got < 1 {
		t.Errorf("DialRacesLost = %d, want >= 1 with a held-open dial window", got)
	}
}

// TestResetStormPoolBalance: a sustained reset mix under load must be
// absorbed by the redial machinery — no watch notification, frame-pool
// balance restored once the storm ends, and the link still delivering.
func TestResetStormPoolBalance(t *testing.T) {
	s := faults.NewSockets(4)
	s.SetPlan(faults.ConnPlan{Reset: 0.05, Partial: 0.02})
	var ca, cb collector
	cfg := fastLifecycle()
	cfg.RedialBase = 2 * time.Millisecond
	cfg.RedialCap = 10 * time.Millisecond
	cfg.Dial = s.Dialer(nil)
	a := listenWith(t, cfg, &ca)
	b := listen(t, &cb)
	dst := a.Register(b.Addr())
	balanceBefore := scratchBalance.Load()

	if err := a.Probe(dst); err != nil {
		t.Fatal(err)
	}
	a.Watch(dst)
	const frames = 1500
	for i := 0; i < frames; i++ {
		if i == frames/2 {
			s.ResetNextWrites(1) // at least one reset regardless of the draw
		}
		err := a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: uint64(i), Payload: []byte("storm")})
		if errors.Is(err, peer.ErrOverflow) {
			time.Sleep(200 * time.Microsecond)
			continue
		}
		if err != nil {
			t.Fatalf("send %d: %v (a reset storm must not look like peer death)", i, err)
		}
	}
	s.SetPlan(faults.ConnPlan{}) // storm over; let the tail flush cleanly

	deadline := time.Now().Add(3 * time.Second)
	for scratchBalance.Load() != balanceBefore && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := scratchBalance.Load(); got != balanceBefore {
		t.Errorf("scratch balance %d after the storm, want %d: frames leaked", got, balanceBefore)
	}
	st := a.Stats()
	if st.Redials < 1 {
		t.Errorf("Redials = %d, want >= 1 across a reset storm", st.Redials)
	}
	if got := s.Stats().Resets; got < 1 {
		t.Errorf("injected resets = %d, want >= 1", got)
	}
	ca.mu.Lock()
	downs := len(ca.downs)
	ca.mu.Unlock()
	if downs != 0 {
		t.Errorf("watch fired %d times during an absorbed storm, want 0", downs)
	}
}

// TestConcurrentLifecycleRace hammers every lifecycle entry point at once —
// Send, Probe, Watch, Unwatch, Drain, Suspect — against a link with injected
// resets, then closes both ends. Any per-call outcome is legal; what must
// hold under -race is no deadlock, no double-put, and a clean frame-pool
// balance after the dust settles.
func TestConcurrentLifecycleRace(t *testing.T) {
	balanceBefore := scratchBalance.Load()
	s := faults.NewSockets(5)
	s.SetPlan(faults.ConnPlan{Reset: 0.02})
	var ca, cb collector
	cfg := fastLifecycle()
	cfg.RedialBase = time.Millisecond
	cfg.RedialCap = 5 * time.Millisecond
	cfg.SuspicionWindow = 200 * time.Millisecond
	cfg.DrainTimeout = 50 * time.Millisecond
	cfg.Dial = s.Dialer(nil)
	a := listenWith(t, cfg, &ca)
	b := listen(t, &cb)
	dst := a.Register(b.Addr())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	ops := []func(){
		func() { _ = a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: 1}) },
		func() { _ = a.Probe(dst) },
		func() { a.Watch(dst) },
		func() { a.Unwatch(dst) },
		func() { a.Drain(dst) },
		func() { a.Suspect(dst) },
	}
	for _, op := range ops {
		wg.Add(1)
		go func(op func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				op()
				time.Sleep(time.Millisecond)
			}
		}(op)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	_ = a.Close()
	_ = b.Close()

	deadline := time.Now().Add(2 * time.Second)
	for scratchBalance.Load() != balanceBefore && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := scratchBalance.Load(); got != balanceBefore {
		t.Errorf("scratch balance %d after concurrent lifecycle churn, want %d", got, balanceBefore)
	}
}

// TestProbeDetectsDeadCachedConn pins the peek-based health check behind the
// Probe fix deterministically: the blackhole parks the reader (it never
// reports the EOF), so the cached connection stays installed and only the
// MSG_PEEK check can notice the FIN the kernel already holds. Linux-only by
// construction — other platforms fall back to the reader/prober detectors.
func TestProbeDetectsDeadCachedConn(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("peek-based health check is linux-only")
	}
	s := faults.NewSockets(6)
	var ca, cb collector
	cfg := fastLifecycle()
	cfg.Dial = s.Dialer(nil)
	a := listenWith(t, cfg, &ca)
	b := listen(t, &cb)
	dst := a.Register(b.Addr())

	if err := a.Probe(dst); err != nil {
		t.Fatalf("probe of live peer: %v", err)
	}
	s.Blackhole(true)
	_ = b.Close()

	// The reader is parked in the blackhole, so the dead connection stays
	// cached: without the peek check Probe would answer nil from the cache
	// forever.
	if !a.Connected(dst) {
		t.Fatal("cached connection already gone; the scenario needs a parked reader")
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		err := a.Probe(dst)
		if errors.Is(err, peer.ErrPeerDown) {
			break
		}
		if err == nil && time.Now().After(deadline) {
			t.Fatal("probe kept trusting a dead cached connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSuspicionDetectsBlackholedPeer is the end-to-end half-open story: a
// neighbor whose process wedges while its kernel keeps ACKing (blackhole)
// looks healthy to every TCP write, so only the RTT prober can convict it.
// With SuspectAfter armed, the agent must fire NeighborDown within the
// suspicion window and count the condemnation.
func TestSuspicionDetectsBlackholedPeer(t *testing.T) {
	s := faults.NewSockets(7)
	downs := make(chan id.ID, 4)
	a, err := NewAgent("127.0.0.1:0", AgentConfig{
		CyclePeriod:  50 * time.Millisecond,
		ProbePeriod:  50 * time.Millisecond,
		SuspectAfter: 3,
		Seed:         1,
		OnNeighborDown: func(p id.ID, reason core.DownReason) {
			select {
			case downs <- p:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewAgent("127.0.0.1:0", AgentConfig{
		CyclePeriod: 50 * time.Millisecond,
		Seed:        2,
		Transport: Config{
			Dial:     s.Dialer(nil),
			WrapConn: s.Wrap,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		av, bv := a.ActiveView(), b.ActiveView()
		if len(av) == 1 && av[0] == b.Self() && len(bv) == 1 && bv[0] == a.Self() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("views never became symmetric: a=%v b=%v", av, bv)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// b's process "wedges": every one of its sockets goes silent while the
	// kernel keeps ACKing. a's writes keep succeeding; only unanswered PINGs
	// reveal the stall.
	s.Blackhole(true)
	select {
	case p := <-downs:
		if p != b.Self() {
			t.Errorf("NeighborDown for %v, want the blackholed peer %v", p, b.Self())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("suspicion never fired NeighborDown for the blackholed peer")
	}
	if got := a.TransportStats().Suspected; got < 1 {
		t.Errorf("Suspected = %d, want >= 1", got)
	}
	// Release b's parked readers before its Close tears the agent down.
	s.Blackhole(false)
}

// TestLifecycleSoak is the CI lifecycle gate: 12 agents under injected
// socket resets, one of them blackholed mid-run (stalled, not closed). The
// survivors must convict and purge the wedged peer via suspicion, and a
// post-purge broadcast burst must reach the live agents at reliability
// >= 0.99 while the reset storm keeps redialing underneath.
func TestLifecycleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected multi-agent loopback soak")
	}
	const n = 12
	socks := make([]*faults.Sockets, n)
	delivered := make([]atomic.Int64, n)
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		socks[i] = faults.NewSockets(uint64(i + 1))
		socks[i].SetPlan(faults.ConnPlan{Reset: 0.01})
		i := i
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			CyclePeriod:  100 * time.Millisecond,
			ProbePeriod:  50 * time.Millisecond,
			SuspectAfter: 3,
			Seed:         uint64(i + 1),
			Transport: Config{
				RedialBase:      5 * time.Millisecond,
				RedialCap:       50 * time.Millisecond,
				SuspicionWindow: time.Second,
				Dial:            socks[i].Dialer(nil),
				WrapConn:        socks[i].Wrap,
			},
			OnDeliver: func([]byte) { delivered[i].Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	defer func() {
		for i, a := range agents {
			socks[i].Blackhole(false) // release parked readers before Close
			_ = a.Close()
		}
	}()
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond) // let shuffles symmetrize the overlay

	// Agent n-1 wedges: its sockets go silent, its kernel keeps ACKing.
	const victim = n - 1
	victimID := agents[victim].Self()
	socks[victim].Blackhole(true)

	// Survivors must purge the victim from their active views via suspicion.
	deadline := time.Now().Add(8 * time.Second)
	for {
		clean := true
		for i := 0; i < victim; i++ {
			for _, p := range agents[i].ActiveView() {
				if p == victimID {
					clean = false
				}
			}
		}
		if clean {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("blackholed peer never purged from the survivors' active views")
		}
		time.Sleep(20 * time.Millisecond)
	}
	var suspected uint64
	for i := 0; i < victim; i++ {
		suspected += agents[i].TransportStats().Suspected
	}
	if suspected == 0 {
		t.Error("no survivor counted a suspicion verdict for the blackholed peer")
	}

	// Post-purge burst among the survivors, resets still injected: flood
	// redundancy plus the redial machinery must hold reliability.
	const msgs = 20
	var before int64
	for i := 0; i < victim; i++ {
		before += delivered[i].Load()
	}
	for i := 0; i < msgs; i++ {
		if err := agents[i%victim].Broadcast([]byte{byte(i)}); err != nil {
			t.Fatalf("broadcast %d: %v", i, err)
		}
	}
	want := int64(msgs * victim)
	deadline = time.Now().Add(20 * time.Second)
	var got int64
	for time.Now().Before(deadline) {
		got = -before
		for i := 0; i < victim; i++ {
			got += delivered[i].Load()
		}
		if got >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	reliability := float64(got) / float64(want)
	t.Logf("soak: reliability %.4f (%d/%d), suspicions %d", reliability, got, want, suspected)
	if reliability < 0.99 {
		t.Errorf("reliability %.4f < 0.99 among live agents", reliability)
	}
}
