package transport

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"hyparview/internal/pubsub"
)

// TestAgentPubSubSoak runs the pub/sub router over real loopback sockets:
// every agent subscribes per a fixed table, a hot topic is published in a
// rapid batched burst and cold topics trickle, and every subscriber must
// deliver every message exactly once (reliability 1.0) — the same Router the
// simulator's workload experiment drives, unmodified, on the TCP runtime.
func TestAgentPubSubSoak(t *testing.T) {
	const (
		n        = 6
		hotMsgs  = 40
		coldMsgs = 8
	)
	var agents []*Agent
	var fallback atomic.Int64
	var hotDelivered, coldDelivered atomic.Int64
	t.Cleanup(func() {
		for _, a := range agents {
			_ = a.Close()
		}
	})
	for i := 0; i < n; i++ {
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			CyclePeriod: 100 * time.Millisecond,
			Seed:        uint64(i + 1),
			PubSub: &pubsub.Config{
				MaxBatch:      8,
				MaxBatchBytes: 1 << 12,
				FlushInterval: 10, // 10ms on the agent clock
			},
			OnDeliver: func([]byte) { fallback.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	for _, a := range agents[1:] {
		if err := a.Join(agents[0].Addr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(400 * time.Millisecond) // let shuffles symmetrize the overlay

	// Subscription table: the hot topic everywhere, the cold topic on half
	// the agents.
	const hotTopic, coldTopic = 1, 2
	coldSubs := 0
	for i, a := range agents {
		if err := a.Subscribe(hotTopic, func(_ uint32, payload []byte, _ int) {
			if len(payload) > 0 {
				hotDelivered.Add(1)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			coldSubs++
			if err := a.Subscribe(coldTopic, func(uint32, []byte, int) {
				coldDelivered.Add(1)
			}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Hot burst from one producer (the batching regime), cold trickle from
	// another, plus one plain broadcast through the same wrapped stack.
	for i := 0; i < hotMsgs; i++ {
		if err := agents[0].Publish(hotTopic, []byte(fmt.Sprintf("hot-%d", i))); err != nil {
			t.Fatalf("publish hot %d: %v", i, err)
		}
	}
	for i := 0; i < coldMsgs; i++ {
		if err := agents[1].Publish(coldTopic, []byte(fmt.Sprintf("cold-%d", i))); err != nil {
			t.Fatalf("publish cold %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := agents[2].Broadcast([]byte("plain")); err != nil {
		t.Fatal(err)
	}

	wantHot := int64(hotMsgs * n)
	wantCold := int64(coldMsgs * coldSubs)
	deadline := time.Now().Add(10 * time.Second)
	for (hotDelivered.Load() < wantHot || coldDelivered.Load() < wantCold ||
		fallback.Load() < int64(n)) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := hotDelivered.Load(); got != wantHot {
		t.Errorf("hot topic: %d deliveries, want %d (reliability 1.0)", got, wantHot)
	}
	if got := coldDelivered.Load(); got != wantCold {
		t.Errorf("cold topic: %d deliveries, want %d (reliability 1.0)", got, wantCold)
	}
	if got := fallback.Load(); got != int64(n) {
		t.Errorf("plain broadcast reached %d OnDeliver callbacks, want %d", got, n)
	}

	// The hot burst must actually have batched: fewer frames than publishes.
	st, ok := agents[0].PubSubStats()
	if !ok {
		t.Fatal("PubSubStats not available on a PubSub-configured agent")
	}
	if st.Published != hotMsgs {
		t.Errorf("producer published %d, want %d", st.Published, hotMsgs)
	}
	if st.Frames >= st.Published {
		t.Errorf("producer sent %d frames for %d publishes, batching never engaged",
			st.Frames, st.Published)
	}
}

// TestAgentPubSubDisabled pins the API contract on agents built without
// AgentConfig.PubSub.
func TestAgentPubSubDisabled(t *testing.T) {
	a, err := NewAgent("127.0.0.1:0", AgentConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Publish(1, []byte("x")); err != ErrNoPubSub {
		t.Errorf("Publish without PubSub: err = %v, want ErrNoPubSub", err)
	}
	if err := a.Subscribe(1, func(uint32, []byte, int) {}); err != ErrNoPubSub {
		t.Errorf("Subscribe without PubSub: err = %v, want ErrNoPubSub", err)
	}
	if _, ok := a.PubSubStats(); ok {
		t.Error("PubSubStats ok = true without PubSub")
	}
}
