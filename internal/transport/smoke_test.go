package transport

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestAgentSmoke(t *testing.T) {
	var delivered atomic.Int64
	mk := func() *Agent {
		a, err := NewAgent("127.0.0.1:0", AgentConfig{
			OnDeliver: func([]byte) { delivered.Add(1) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	agents := make([]*Agent, 8)
	for i := range agents {
		agents[i] = mk()
	}
	defer func() {
		for _, a := range agents {
			_ = a.Close()
		}
	}()
	for i := 1; i < len(agents); i++ {
		if err := agents[i].Join(agents[0].Addr()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	if err := agents[3].Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for delivered.Load() < 8 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := delivered.Load(); got != 8 {
		t.Fatalf("delivered=%d want 8", got)
	}
}
