package transport

import (
	"errors"
	"net"
	"testing"
	"time"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// The fault-injection seam over real sockets: Config.Intercept observes
// every decoded inbound message after framing/decode and before dispatch,
// mirroring netsim.Sim.Intercept so the adversarial suite's hooks drive
// both runtimes unchanged.

func listenWith(t *testing.T, cfg Config, c *collector) *Transport {
	t.Helper()
	tr, err := Listen("127.0.0.1:0", cfg, c.onMessage, c.onDown)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	return tr
}

func waitStat(t *testing.T, get func() uint64, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for get() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %s = %d, want %d", what, get(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestInterceptDropsOverSockets(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listenWith(t, Config{
		Intercept: func(node id.ID, m *msg.Message) (*msg.Message, bool) {
			return nil, m.Round == 2 // deliver only round 2
		},
	}, &cb)
	bID := a.Register(b.Addr())

	for i := uint64(1); i <= 3; i++ {
		if err := a.Send(bID, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := cb.waitMsgs(t, 1)
	if got[0].Round != 2 {
		t.Errorf("delivered round %d, want 2", got[0].Round)
	}
	waitStat(t, func() uint64 { return b.Stats().FaultDropped }, 2, "FaultDropped")
	if n := len(cb.waitMsgs(t, 1)); n != 1 {
		t.Errorf("deliveries = %d, want 1", n)
	}
}

func TestInterceptTamperOverSockets(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	b := listenWith(t, Config{
		Intercept: func(node id.ID, m *msg.Message) (*msg.Message, bool) {
			repl := *m
			repl.Payload = append([]byte(nil), m.Payload...)
			if len(repl.Payload) > 0 {
				repl.Payload[0] ^= 0xff
			}
			return &repl, true
		},
	}, &cb)
	bID := a.Register(b.Addr())

	if err := a.Send(bID, msg.Message{
		Type: msg.Gossip, Sender: a.Self(), Round: 1, Payload: []byte{0x0f, 0x22},
	}); err != nil {
		t.Fatal(err)
	}
	got := cb.waitMsgs(t, 1)[0]
	if len(got.Payload) != 2 || got.Payload[0] != 0xf0 || got.Payload[1] != 0x22 {
		t.Errorf("tampered payload not delivered intact: %v", got.Payload)
	}
}

func TestInterceptSeesReceiverIdentity(t *testing.T) {
	var ca, cb collector
	a := listen(t, &ca)
	seen := make(chan id.ID, 1)
	var b *Transport
	b = listenWith(t, Config{
		Intercept: func(node id.ID, m *msg.Message) (*msg.Message, bool) {
			select {
			case seen <- node:
			default:
			}
			return nil, true
		},
	}, &cb)
	bID := a.Register(b.Addr())
	if err := a.Send(bID, msg.Message{Type: msg.Gossip, Sender: a.Self()}); err != nil {
		t.Fatal(err)
	}
	cb.waitMsgs(t, 1)
	if got := <-seen; got != b.Self() {
		t.Errorf("hook saw node %v, want the receiver %v", got, b.Self())
	}
}

func TestOverflowShedsAndCounts(t *testing.T) {
	// A sink that accepts the connection and never reads: the kernel buffers
	// fill, the writer goroutine blocks, the bounded send queue fills, and
	// further Sends must shed with ErrOverflow — counted in Stats.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c // hold it open, never read
		}
	}()

	var ca collector
	a := listen(t, &ca)
	dst := a.Register(ln.Addr().String())

	payload := make([]byte, 64<<10)
	overflowed := 0
	for i := 0; i < 4096 && overflowed == 0; i++ {
		err := a.Send(dst, msg.Message{Type: msg.Gossip, Sender: a.Self(), Round: uint64(i), Payload: payload})
		if errors.Is(err, peer.ErrOverflow) {
			overflowed++
		} else if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if overflowed == 0 {
		t.Fatal("no Send overflowed against a non-reading peer")
	}
	if got := a.Stats().Overflowed; got == 0 {
		t.Error("Stats.Overflowed = 0 after a shed Send")
	}
	select {
	case c := <-accepted:
		_ = c.Close()
	default:
	}
}
