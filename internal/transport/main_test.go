package transport

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestMain is the package's goroutine-leak gate: every transport goroutine —
// accept loop, per-link writers, readers, watch establishers, drain waiters —
// must be joined by Transport.Close, so after the whole test run no stack
// may still hold a frame from this package. A hand-rolled goleak: capture
// all stacks, keep the blocks that mention the package, retry briefly to let
// just-closed transports finish unwinding, then fail loudly with the
// offending stacks.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if leaked := waitNoTransportGoroutines(5 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d transport goroutines alive after all tests:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// waitNoTransportGoroutines polls until no goroutine stack references this
// package (transient unwinds settle in milliseconds) or the deadline passes,
// returning the surviving stacks.
func waitNoTransportGoroutines(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		leaked := transportGoroutines()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// transportGoroutines returns the stack of every live goroutine holding a
// frame in this package, excluding the TestMain goroutine itself.
func transportGoroutines() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, "internal/transport.") {
			continue
		}
		if strings.Contains(g, "internal/transport.TestMain") ||
			strings.Contains(g, "transportGoroutines") {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}
