package transport_test

import (
	"fmt"
	"time"

	"hyparview/internal/core"
	"hyparview/internal/id"
	"hyparview/internal/transport"
)

// ExampleNewAgent shows the agent lifecycle: bind, join, broadcast, inspect,
// close. Every method is safe to call from any goroutine — the agent funnels
// all work through its single actor goroutine.
func ExampleNewAgent() {
	got := make(chan string, 1)
	contact, err := transport.NewAgent("127.0.0.1:0", transport.AgentConfig{
		OnDeliver: func(p []byte) { got <- string(p) },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer contact.Close()

	peer, err := transport.NewAgent("127.0.0.1:0", transport.AgentConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer peer.Close()

	// Join through any node already in the overlay, then broadcast.
	if err := peer.Join(contact.Addr()); err != nil {
		fmt.Println(err)
		return
	}
	if err := peer.Broadcast([]byte("hi")); err != nil {
		fmt.Println(err)
		return
	}
	select {
	case m := <-got:
		fmt.Printf("contact delivered %q\n", m)
	case <-time.After(5 * time.Second):
		fmt.Println("timeout")
	}
	fmt.Printf("peer sees %d active neighbor(s)\n", len(peer.ActiveView()))
	// Output:
	// contact delivered "hi"
	// peer sees 1 active neighbor(s)
}

// ExampleNewAgent_callbacks wires the three agent callbacks: delivery,
// neighbor-up and neighbor-down. All fire on the agent goroutine, so they
// must return quickly and must not call back into the agent synchronously.
func ExampleNewAgent_callbacks() {
	ups := make(chan id.ID, 8)
	downs := make(chan core.DownReason, 8)
	a, err := transport.NewAgent("127.0.0.1:0", transport.AgentConfig{
		OnNeighborUp:   func(peer id.ID) { ups <- peer },
		OnNeighborDown: func(peer id.ID, reason core.DownReason) { downs <- reason },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer a.Close()

	b, err := transport.NewAgent("127.0.0.1:0", transport.AgentConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := b.Join(a.Addr()); err != nil {
		fmt.Println(err)
		return
	}
	up := <-ups
	fmt.Printf("up: joiner %v\n", up == b.Self())

	// Killing the peer's process breaks the watched TCP connection: the
	// failure detector reports the neighbor down.
	_ = b.Close()
	fmt.Printf("down: %v\n", <-downs)
	// Output:
	// up: joiner true
	// down: failed
}
