package transport

import (
	"sync"
	"time"

	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// tickDuration maps one peer.Scheduler tick onto the transport's real clock:
// one tick is one millisecond. The simulator's virtual ticks and the agent's
// wall clock therefore speak the same contract, and a protocol written
// against peer.Scheduler runs unchanged in both environments.
const tickDuration = time.Millisecond

// clockScheduler implements peer.Scheduler on the wall clock. Due messages
// are handed to deliver, which is responsible for funneling them onto the
// agent's actor goroutine (and for honoring shutdown); periodic tasks stop
// when stop closes.
type clockScheduler struct {
	start   time.Time
	deliver func(msg.Message)
	stop    <-chan struct{}
	wg      sync.WaitGroup // periodic firing goroutines, for clean Close
}

var _ peer.Scheduler = (*clockScheduler)(nil)

// newClockScheduler starts the scheduler's epoch at the current instant.
func newClockScheduler(deliver func(msg.Message), stop <-chan struct{}) *clockScheduler {
	return &clockScheduler{start: time.Now(), deliver: deliver, stop: stop}
}

// Now implements peer.Scheduler: milliseconds since the scheduler's epoch,
// monotonic (time.Since uses the monotonic clock reading).
func (c *clockScheduler) Now() uint64 {
	return uint64(time.Since(c.start) / tickDuration)
}

// After implements peer.Scheduler: m is delivered to the local process once
// delay ticks of wall time have elapsed.
func (c *clockScheduler) After(delay uint64, m msg.Message) {
	time.AfterFunc(time.Duration(delay)*tickDuration, func() {
		select {
		case <-c.stop:
		default:
			c.deliver(m)
		}
	})
}

// Every implements peer.Scheduler: m is delivered every interval ticks until
// the agent closes. A zero interval is clamped to one tick.
func (c *clockScheduler) Every(interval uint64, m msg.Message) {
	if interval == 0 {
		interval = 1
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(time.Duration(interval) * tickDuration)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.deliver(m)
			case <-c.stop:
				return
			}
		}
	}()
}

// wait blocks until all periodic firing goroutines have exited (stop must
// already be closed).
func (c *clockScheduler) wait() { c.wg.Wait() }
