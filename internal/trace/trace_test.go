package trace

import (
	"strings"
	"sync"
	"testing"

	"hyparview/internal/core"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
	"hyparview/internal/peer"
)

func TestNewRingPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

func TestRecordAssignsMonotonicSeq(t *testing.T) {
	r := NewRing(8)
	a := r.Record(Event{Kind: Custom, Node: 1})
	b := r.Record(Event{Kind: Custom, Node: 2})
	if a.Seq != 1 || b.Seq != 2 {
		t.Errorf("seqs = %d, %d", a.Seq, b.Seq)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Record(Event{Kind: Custom, Node: id.ID(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	// Oldest retained must be node 3 (1 and 2 overwritten).
	if evs[0].Node != 3 || evs[2].Node != 5 {
		t.Errorf("events = %v", evs)
	}
	if r.Total() != 5 || r.Len() != 3 {
		t.Errorf("Total=%d Len=%d", r.Total(), r.Len())
	}
}

func TestFilterAtOfKind(t *testing.T) {
	r := NewRing(10)
	r.Record(Event{Kind: NeighborUp, Node: 1, Peer: 2})
	r.Record(Event{Kind: NeighborDown, Node: 1, Peer: 2})
	r.Record(Event{Kind: NeighborUp, Node: 3, Peer: 1})
	if got := len(r.At(1)); got != 2 {
		t.Errorf("At(1) = %d, want 2", got)
	}
	if got := len(r.OfKind(NeighborUp)); got != 2 {
		t.Errorf("OfKind(up) = %d, want 2", got)
	}
}

func TestResetKeepsSeqMonotonic(t *testing.T) {
	r := NewRing(4)
	r.Record(Event{Kind: Custom})
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear")
	}
	ev := r.Record(Event{Kind: Custom})
	if ev.Seq != 2 {
		t.Errorf("seq after reset = %d, want 2", ev.Seq)
	}
}

func TestNoteAndDumpFormatting(t *testing.T) {
	r := NewRing(4)
	r.Note(7, "hello %d", 42)
	r.Deliver(1, 2, msg.Message{Type: msg.Join})
	dump := r.Dump()
	if !strings.Contains(dump, `hello 42`) || !strings.Contains(dump, "JOIN") {
		t.Errorf("Dump = %q", dump)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		MsgDelivered: "deliver", NeighborUp: "neighbor-up",
		NeighborDown: "neighbor-down", NodeFailed: "node-failed",
		Custom: "note", Kind(77): "Kind(77)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestConcurrentRecordSafe(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: Custom})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Errorf("Total = %d, want 800", r.Total())
	}
}

// TestTraceJoinFlow wires the ring into the simulator's tap and asserts the
// canonical join message flow: a JOIN delivered at the contact, followed by
// FORWARDJOIN walks.
func TestTraceJoinFlow(t *testing.T) {
	ring := NewRing(1 << 12)
	s := netsim.New(1)
	s.Tap = ring.Deliver

	nodes := make(map[id.ID]*core.Node)
	for i := 1; i <= 12; i++ {
		nodeID := id.ID(i)
		var nd *core.Node
		s.Add(nodeID, func(env peer.Env) peer.Process {
			nd = core.New(env, core.Config{})
			return nd
		})
		nodes[nodeID] = nd
		if i > 1 {
			if err := nd.Join(1); err != nil {
				t.Fatal(err)
			}
			s.Drain()
		}
	}
	joins := ring.Filter(func(ev Event) bool {
		return ev.Kind == MsgDelivered && ev.Msg == msg.Join
	})
	if len(joins) != 11 {
		t.Fatalf("JOIN deliveries = %d, want 11", len(joins))
	}
	for _, ev := range joins {
		if ev.Node != 1 {
			t.Errorf("JOIN delivered at %v, want contact n1", ev.Node)
		}
	}
	fwds := ring.Filter(func(ev Event) bool {
		return ev.Kind == MsgDelivered && ev.Msg == msg.ForwardJoin
	})
	if len(fwds) == 0 {
		t.Error("no FORWARDJOIN walks observed")
	}
	// The trace must interleave correctly: the first FORWARDJOIN comes
	// after the first JOIN.
	if fwds[0].Seq < joins[0].Seq {
		t.Error("FORWARDJOIN observed before any JOIN")
	}
}
