// Package trace is a lightweight, allocation-conscious event recorder for
// protocol debugging and tests: a bounded ring of structured events that the
// simulator's message tap and the membership listeners can feed.
//
// It is intentionally not a logger: events are typed, cheap to record, and
// meant to be asserted on (tests) or dumped post-mortem (debugging a
// mis-converging overlay).
package trace

import (
	"fmt"
	"strings"
	"sync"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	// MsgDelivered: a protocol message was delivered From -> Node.
	MsgDelivered Kind = iota + 1
	// NeighborUp: Peer entered Node's active view.
	NeighborUp
	// NeighborDown: Peer left Node's active view.
	NeighborDown
	// NodeFailed: the harness crashed Node.
	NodeFailed
	// Custom: free-form annotation in Note.
	Custom
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case MsgDelivered:
		return "deliver"
	case NeighborUp:
		return "neighbor-up"
	case NeighborDown:
		return "neighbor-down"
	case NodeFailed:
		return "node-failed"
	case Custom:
		return "note"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	Seq  uint64
	Kind Kind
	Node id.ID    // the node the event happened at
	Peer id.ID    // counterparty (sender, neighbor, ...)
	Msg  msg.Type // message type for MsgDelivered
	Note string
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case MsgDelivered:
		return fmt.Sprintf("#%d %v<-%v %s", e.Seq, e.Node, e.Peer, e.Msg)
	case Custom:
		return fmt.Sprintf("#%d %v note %q", e.Seq, e.Node, e.Note)
	default:
		return fmt.Sprintf("#%d %v %s %v", e.Seq, e.Node, e.Kind, e.Peer)
	}
}

// Ring is a bounded, concurrency-safe event recorder. When full, the oldest
// events are overwritten. The zero value is unusable; use NewRing.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever recorded
	start int    // index of the oldest event in buf
	count int
}

// NewRing returns a recorder holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record appends an event, stamping its sequence number, and returns it.
func (r *Ring) Record(ev Event) Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	ev.Seq = r.next
	i := (r.start + r.count) % len(r.buf)
	if r.count == len(r.buf) {
		// Overwrite the oldest.
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
	} else {
		r.buf[i] = ev
		r.count++
	}
	return ev
}

// Deliver records a message delivery; shaped to plug into netsim's Tap.
func (r *Ring) Deliver(from, to id.ID, m msg.Message) {
	r.Record(Event{Kind: MsgDelivered, Node: to, Peer: from, Msg: m.Type})
}

// Note records a free-form annotation at node.
func (r *Ring) Note(node id.ID, format string, args ...interface{}) {
	r.Record(Event{Kind: Custom, Node: node, Note: fmt.Sprintf(format, args...)})
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Total returns the number of events ever recorded (including overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Filter returns the retained events satisfying keep, oldest first.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	all := r.Events()
	out := all[:0]
	for _, ev := range all {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// At returns the retained events that happened at node.
func (r *Ring) At(node id.ID) []Event {
	return r.Filter(func(ev Event) bool { return ev.Node == node })
}

// OfKind returns the retained events of the given kind.
func (r *Ring) OfKind(k Kind) []Event {
	return r.Filter(func(ev Event) bool { return ev.Kind == k })
}

// Reset discards all retained events but keeps the sequence counter
// monotonic.
func (r *Ring) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.start, r.count = 0, 0
}

// Dump renders all retained events, one per line.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, ev := range r.Events() {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
