package plumtree

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
	"hyparview/internal/peer"
)

// staticMember is a fixed-topology membership protocol: the neighbor list
// only changes when OnPeerDown removes a failed peer, mimicking HyParView's
// reactive failure detection without its repair dynamics. It lets the
// integration tests isolate Plumtree's tree construction from membership
// churn.
type staticMember struct {
	neighbors []id.ID
}

var _ peer.Membership = (*staticMember)(nil)

func (s *staticMember) Deliver(id.ID, msg.Message) {}
func (s *staticMember) OnCycle()                   {}
func (s *staticMember) Neighbors() []id.ID         { return append([]id.ID(nil), s.neighbors...) }

func (s *staticMember) GossipTargets(fanout int, exclude id.ID) []id.ID {
	var out []id.ID
	for _, n := range s.neighbors {
		if n != exclude {
			out = append(out, n)
		}
	}
	if fanout > 0 && len(out) > fanout {
		out = out[:fanout]
	}
	return out
}

func (s *staticMember) OnPeerDown(p id.ID) {
	for i, n := range s.neighbors {
		if n == p {
			s.neighbors = append(s.neighbors[:i], s.neighbors[i+1:]...)
			return
		}
	}
}

// staticCluster is N Plumtree nodes over a symmetric chordal ring: node i is
// connected to i±1 and i±chord (mod N), a connected degree-4 overlay.
type staticCluster struct {
	sim   *netsim.Sim
	nodes map[id.ID]*Node
	ids   []id.ID
}

func newStaticCluster(t *testing.T, n, chord int, cfg Config) *staticCluster {
	t.Helper()
	c := &staticCluster{sim: netsim.New(1), nodes: make(map[id.ID]*Node)}
	for i := 0; i < n; i++ {
		nodeID := id.ID(i + 1)
		c.ids = append(c.ids, nodeID)
		ring := func(d int) id.ID { return id.ID((i+d+2*n)%n + 1) }
		mem := &staticMember{neighbors: []id.ID{ring(-1), ring(1), ring(-chord), ring(chord)}}
		c.sim.Add(nodeID, func(env peer.Env) peer.Process {
			pn := New(env, mem, cfg, nil)
			c.nodes[nodeID] = pn
			return pn
		})
	}
	return c
}

// broadcast sends round from src and fully processes the traffic.
func (c *staticCluster) broadcast(src id.ID, round uint64) {
	c.nodes[src].Broadcast(round, nil)
	c.sim.Drain()
}

// deliveredBy counts live nodes that have seen round.
func (c *staticCluster) deliveredBy(round uint64) int {
	count := 0
	for _, nodeID := range c.sim.AliveIDs() {
		if c.nodes[nodeID].Seen(round) {
			count++
		}
	}
	return count
}

// totalDuplicates sums redundant payload receptions over all nodes.
func (c *staticCluster) totalDuplicates() uint64 {
	var total uint64
	for _, pn := range c.nodes {
		_, dup, _, _ := pn.Counters()
		total += dup
	}
	return total
}

// eagerIsSpanningTree verifies the single-tree stabilization property: the
// union of live nodes' eager links must be symmetric, acyclic and connected —
// exactly n-1 undirected edges reaching every live node.
func eagerIsSpanningTree(t *testing.T, c *staticCluster) {
	t.Helper()
	alive := c.sim.AliveIDs()
	edges := make(map[[2]id.ID]bool)
	for _, nodeID := range alive {
		for _, p := range c.nodes[nodeID].EagerPeers() {
			if !c.sim.Alive(p) {
				t.Errorf("node %v keeps dead eager peer %v", nodeID, p)
			}
			edges[[2]id.ID{nodeID, p}] = true
		}
	}
	undirected := make(map[[2]id.ID]bool)
	for e := range edges {
		if !edges[[2]id.ID{e[1], e[0]}] {
			t.Errorf("asymmetric eager link %v->%v", e[0], e[1])
		}
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		undirected[[2]id.ID{a, b}] = true
	}
	if len(undirected) != len(alive)-1 {
		t.Fatalf("eager graph has %d undirected edges, want %d (a spanning tree)",
			len(undirected), len(alive)-1)
	}
	// n-1 symmetric edges + connectivity == spanning tree.
	adj := make(map[id.ID][]id.ID)
	for e := range undirected {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := map[id.ID]bool{alive[0]: true}
	queue := []id.ID{alive[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	if len(seen) != len(alive) {
		t.Fatalf("eager graph connects %d of %d live nodes", len(seen), len(alive))
	}
}

func TestStabilizesToSingleSpanningTree(t *testing.T) {
	const n = 60
	c := newStaticCluster(t, n, 7, Config{})
	src := id.ID(1)
	var round uint64
	for i := 0; i < 12; i++ {
		round++
		c.broadcast(src, round)
		if got := c.deliveredBy(round); got != n {
			t.Fatalf("round %d delivered by %d/%d nodes", round, got, n)
		}
	}
	// Once pruning has carved the tree, a broadcast must cost exactly n-1
	// payload messages: no duplicates and RMR 0. Count payloads with the
	// simulator's message tap.
	payloads := 0
	c.sim.Tap = func(_, _ id.ID, m msg.Message) {
		if m.Type == msg.PlumtreeGossip {
			payloads++
		}
	}
	dupsBefore := c.totalDuplicates()
	round++
	c.broadcast(src, round)
	if got := c.deliveredBy(round); got != n {
		t.Fatalf("stabilized round delivered by %d/%d nodes", got, n)
	}
	if d := c.totalDuplicates() - dupsBefore; d != 0 {
		t.Errorf("stabilized broadcast produced %d duplicates, want 0", d)
	}
	if payloads != n-1 {
		t.Errorf("stabilized broadcast moved %d payload messages, want %d", payloads, n-1)
	}
	eagerIsSpanningTree(t, c)
}

func TestTreeSharedAcrossSources(t *testing.T) {
	const n = 40
	c := newStaticCluster(t, n, 5, Config{})
	var round uint64
	// The eager/lazy partition is source-agnostic: after stabilizing from
	// one source, broadcasts from any other node reuse the same tree at
	// full reliability.
	for i := 0; i < 10; i++ {
		round++
		c.broadcast(1, round)
	}
	for _, src := range []id.ID{7, 23, 40} {
		round++
		c.broadcast(src, round)
		if got := c.deliveredBy(round); got != n {
			t.Errorf("source %v: delivered by %d/%d nodes", src, got, n)
		}
	}
}

func TestTreeRepairAfterFailure(t *testing.T) {
	const n = 60
	// ReportPeerDown wires the failure-detection loop the protocol runs
	// with over HyParView: a failed eager push purges the peer from the
	// membership view, so reconcile stops re-adding it.
	c := newStaticCluster(t, n, 7, Config{ReportPeerDown: true})
	src := id.ID(1)
	var round uint64
	for i := 0; i < 12; i++ {
		round++
		c.broadcast(src, round)
	}
	// Kill an interior tree node: one with at least two eager links, so its
	// children genuinely lose their payload path.
	var victim id.ID
	for _, nodeID := range c.ids {
		if nodeID != src && len(c.nodes[nodeID].EagerPeers()) >= 2 {
			victim = nodeID
			break
		}
	}
	if victim.IsNil() {
		t.Fatal("no interior tree node found")
	}
	c.sim.Fail(victim)

	// The very next broadcast must reach every survivor: eager pushes to the
	// dead node fail (reactive detection), the orphaned subtree hears IHAVE
	// announcements on lazy links, times out, and GRAFTs a new parent — all
	// within one drain.
	round++
	c.broadcast(src, round)
	if got := c.deliveredBy(round); got != n-1 {
		t.Fatalf("post-failure round delivered by %d/%d live nodes", got, n-1)
	}

	// A few rounds later the tree must have re-stabilized: spanning again,
	// without the victim, and duplicate-free.
	for i := 0; i < 8; i++ {
		round++
		c.broadcast(src, round)
	}
	dupsBefore := c.totalDuplicates()
	round++
	c.broadcast(src, round)
	if got := c.deliveredBy(round); got != n-1 {
		t.Fatalf("re-stabilized round delivered by %d/%d live nodes", got, n-1)
	}
	if d := c.totalDuplicates() - dupsBefore; d != 0 {
		t.Errorf("re-stabilized broadcast produced %d duplicates, want 0", d)
	}
	eagerIsSpanningTree(t, c)
}

func TestMassFailureStaysReliable(t *testing.T) {
	const n, chord = 80, 9
	c := newStaticCluster(t, n, chord, Config{ReportPeerDown: true})
	var round uint64
	for i := 0; i < 10; i++ {
		round++
		c.broadcast(1, round)
	}
	// Fail 25% of the static overlay (every 4th node, sparing the source).
	for i := 3; i < n; i += 4 {
		c.sim.Fail(id.ID(i + 1))
	}
	// Plumtree must match flood's guarantee: every survivor the residual
	// overlay can still reach from the source delivers. Compute the
	// reachable set over the chordal-ring topology restricted to live nodes.
	reachable := map[id.ID]bool{1: true}
	queue := []id.ID{1}
	for len(queue) > 0 {
		cur := int(queue[0]) - 1
		queue = queue[1:]
		for _, d := range []int{-1, 1, -chord, chord} {
			next := id.ID((cur+d+2*n)%n + 1)
			if c.sim.Alive(next) && !reachable[next] {
				reachable[next] = true
				queue = append(queue, next)
			}
		}
	}
	for i := 0; i < 3; i++ {
		round++
		c.broadcast(1, round)
		if got := c.deliveredBy(round); got != len(reachable) {
			t.Errorf("round %d after mass failure delivered by %d nodes, want the %d reachable",
				round, got, len(reachable))
		}
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		c := newStaticCluster(t, 40, 5, Config{})
		var round uint64
		for i := 0; i < 8; i++ {
			round++
			c.broadcast(id.ID(i%5+1), round)
		}
		var del, dup, fwd uint64
		for _, pn := range c.nodes {
			d, du, f, _ := pn.Counters()
			del += d
			dup += du
			fwd += f
		}
		return del, dup, fwd
	}
	d1, du1, f1 := run()
	d2, du2, f2 := run()
	if d1 != d2 || du1 != du2 || f1 != f2 {
		t.Errorf("identical runs diverged: (%d %d %d) vs (%d %d %d)", d1, du1, f1, d2, du2, f2)
	}
}

// TestMissingMessageTimerFiresAtConfiguredVirtualTime pins the timer
// semantics to the virtual clock: a node that hears only an IHAVE grafts the
// announcer exactly Config.TimerDelay ticks after the announcement, with the
// simulator's clock landing on precisely that instant.
func TestMissingMessageTimerFiresAtConfiguredVirtualTime(t *testing.T) {
	const delay = 250
	sim := netsim.New(1)
	nodes := make(map[id.ID]*Node, 2)
	for _, nodeID := range []id.ID{1, 2} {
		mem := &staticMember{neighbors: []id.ID{3 - nodeID}}
		captured := nodeID
		sim.Add(nodeID, func(env peer.Env) peer.Process {
			pn := New(env, mem, Config{TimerDelay: delay}, nil)
			nodes[captured] = pn
			return pn
		})
	}
	// Node 2 hears about round 7 but never receives the payload.
	if err := sim.Inject(1, 2, msg.Message{Type: msg.PlumtreeIHave, Sender: 1, Round: 7, Hops: 1}); err != nil {
		t.Fatal(err)
	}
	start := sim.Now()
	sim.Drain()
	if got := sim.Now() - start; got != delay {
		t.Errorf("clock after timer-driven repair advanced %d ticks, want exactly %d", got, delay)
	}
	ctl := nodes[2].Control()
	if ctl.TimerFires != 1 || ctl.GraftsSent != 1 {
		t.Errorf("timer fires = %d grafts = %d, want 1 and 1", ctl.TimerFires, ctl.GraftsSent)
	}
	if got := nodes[1].Control().GraftsRecvd; got != 1 {
		t.Errorf("announcer answered %d grafts, want 1", got)
	}
}

// TestTinyTimerDelayRepairsWithinDrain: even a 1-tick timer fires behind all
// in-flight traffic, so tree repair still completes inside a single Drain —
// the property the old TTL re-queue idiom provided, now guaranteed by the
// event heap's time ordering.
func TestTinyTimerDelayRepairsWithinDrain(t *testing.T) {
	c := newStaticCluster(t, 24, 5, Config{TimerDelay: 1})
	c.broadcast(1, 1)
	c.sim.Fail(2)
	c.sim.Drain()
	c.broadcast(5, 2)
	if got, want := c.deliveredBy(2), c.sim.AliveCount(); got != want {
		t.Errorf("delivered to %d of %d live nodes after failure with 1-tick timer", got, want)
	}
}
