package plumtree

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/rng"
)

// nullEnv is an environment whose hot-path operations allocate nothing, so
// AllocsPerRun isolates the Plumtree layer's own allocations. ManualScheduler
// is not embedded because its After appends to a queue; timers are a no-op
// here and the steady-state path under test arms none.
type nullEnv struct {
	self id.ID
	rand *rng.Rand
}

var _ peer.Env = (*nullEnv)(nil)

func (e *nullEnv) Self() id.ID                   { return e.self }
func (e *nullEnv) Send(id.ID, msg.Message) error { return nil }
func (e *nullEnv) Probe(id.ID) error             { return nil }
func (e *nullEnv) Rand() *rng.Rand               { return e.rand }
func (e *nullEnv) Watch(id.ID)                   {}
func (e *nullEnv) Unwatch(id.ID)                 {}
func (e *nullEnv) Now() uint64                   { return 0 }
func (e *nullEnv) After(uint64, msg.Message)     {}
func (e *nullEnv) Every(uint64, msg.Message)     {}

// versionedMembership is a fixed neighborhood exposing the change counter
// that lets reconcile collapse to an integer compare (the HyParView case).
type versionedMembership struct {
	neighbors []id.ID
	scratch   []id.ID
}

var _ peer.Membership = (*versionedMembership)(nil)
var _ peer.NeighborVersioned = (*versionedMembership)(nil)

func (f *versionedMembership) Deliver(id.ID, msg.Message) {}
func (f *versionedMembership) OnCycle()                   {}
func (f *versionedMembership) Neighbors() []id.ID         { return append([]id.ID(nil), f.neighbors...) }
func (f *versionedMembership) OnPeerDown(id.ID)           {}
func (f *versionedMembership) NeighborVersion() uint64    { return 1 }

func (f *versionedMembership) GossipTargets(fanout int, exclude id.ID) []id.ID {
	f.scratch = f.scratch[:0]
	for _, n := range f.neighbors {
		if n != exclude {
			f.scratch = append(f.scratch, n)
		}
	}
	return f.scratch
}

// TestSteadyStateDeliveryZeroAlloc pins the acceptance criterion for the
// Plumtree layer: with the tree converged (stable eager/lazy partition) and
// the membership versioned, delivering an eager payload, pushing it on, an
// IHAVE announcement, and a redundant eager copy all allocate nothing.
func TestSteadyStateDeliveryZeroAlloc(t *testing.T) {
	env := &nullEnv{self: 1, rand: rng.New(1)}
	mem := &versionedMembership{neighbors: []id.ID{2, 3, 4, 5}}
	payload := make([]byte, 64)
	n := New(env, mem, Config{}, nil)

	round := uint64(0)
	iteration := func() {
		round++
		// Fresh eager push from 2 (delivered, forwarded to eager peers,
		// announced to lazy peers), a redundant copy from 3 (PRUNE + demote
		// path), and a late IHAVE from 4 (already-seen optimization check).
		n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: round, Hops: 1, Payload: payload})
		n.Deliver(3, msg.Message{Type: msg.PlumtreeGossip, Sender: 3, Round: round, Hops: 2, Payload: payload})
		n.Deliver(4, msg.Message{Type: msg.PlumtreeIHave, Sender: 4, Round: round, Hops: 2})
	}
	// Warm until the eager/lazy partition and the seen cache reach steady
	// state, past the cache window so eviction recycling is measured too.
	for i := 0; i < DefaultCacheWindow+8; i++ {
		iteration()
	}
	if allocs := testing.AllocsPerRun(200, iteration); allocs != 0 {
		t.Fatalf("steady-state plumtree delivery allocates %.1f/op, want 0", allocs)
	}

	d, dup, _, _ := n.Counters()
	if d == 0 || dup == 0 {
		t.Fatalf("test drove no real traffic: delivered=%d dup=%d", d, dup)
	}
	if n.Control().PrunesSent == 0 {
		t.Fatal("duplicate path never pruned; steady state not exercised")
	}
}

// TestVersionGateDropsStaleNonNeighbor guards the interaction between the
// NeighborVersioned reconcile gate and promote(): traffic from a peer that
// already left the neighborhood (its messages were in flight when it was
// removed) momentarily re-enters the eager set via promote, and because the
// membership version did not move, the gated reconcile would keep that
// phantom edge alive forever. promote must force a resync for such local
// insertions, so the very next delivery prunes the stale peer.
func TestVersionGateDropsStaleNonNeighbor(t *testing.T) {
	env := &nullEnv{self: 1, rand: rng.New(1)}
	mem := &versionedMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)

	// Sync the partition against the neighborhood {2, 3}.
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 1, Hops: 1})

	// Peer 9 is NOT a neighbor; its in-flight payload arrives anyway and
	// promote() pulls it into the eager set.
	n.Deliver(9, msg.Message{Type: msg.PlumtreeGossip, Sender: 9, Round: 2, Hops: 1})

	// The next delivery runs reconcile; the forced resync must prune 9 even
	// though the membership version never moved.
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 3, Hops: 1})
	for _, p := range n.EagerPeers() {
		if p == 9 {
			t.Fatal("stale non-neighbor survived in the eager set behind the version gate")
		}
	}
	for _, p := range n.LazyPeers() {
		if p == 9 {
			t.Fatal("stale non-neighbor survived in the lazy set behind the version gate")
		}
	}
}

// TestMissingRoundPathZeroAlloc pins the repair bookkeeping: IHAVE
// announcements for rounds this node never receives must recycle the
// missing-entry cache (sources slices and all) instead of allocating
// per round.
func TestMissingRoundPathZeroAlloc(t *testing.T) {
	env := &nullEnv{self: 1, rand: rng.New(1)}
	mem := &versionedMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)

	round := uint64(0)
	iteration := func() {
		round++
		n.Deliver(2, msg.Message{Type: msg.PlumtreeIHave, Sender: 2, Round: round, Hops: 1})
		n.Deliver(3, msg.Message{Type: msg.PlumtreeIHave, Sender: 3, Round: round, Hops: 1})
	}
	for i := 0; i < DefaultCacheWindow+8; i++ {
		iteration()
	}
	if allocs := testing.AllocsPerRun(200, iteration); allocs != 0 {
		t.Fatalf("missing-round bookkeeping allocates %.1f/op, want 0", allocs)
	}
}
