package plumtree

import (
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
)

// A newly formed eager link re-announces the last delivered round. Without
// it, a node that gained the link while a round was in flight (view repair
// during a partition, a freshly admitted replacement) never learns of that
// round — announcements are otherwise sent exactly once, at delivery time,
// over the links that existed then — and stays permanently deprived. The
// adversarial partition-heal-mid-broadcast scenario found this; these tests
// pin the fix.

func TestNewEagerLinkGetsLastRoundAnnouncement(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{}, nil)
	n.Broadcast(7, []byte("x"))
	env.sent = nil

	mem.neighbors = []id.ID{2, 4}
	n.OnCycle()
	ihaves := env.sentOfType(msg.PlumtreeIHave)
	if len(ihaves) != 1 {
		t.Fatalf("IHAVEs on reconcile = %d, want 1 (to the new link only)", len(ihaves))
	}
	if ihaves[0].to != 4 || ihaves[0].m.Round != 7 {
		t.Errorf("announcement = round %d to %v, want round 7 to n4", ihaves[0].m.Round, ihaves[0].to)
	}
	if ihaves[0].m.Payload != nil {
		t.Error("announcement carries a payload; it must be IHAVE-sized")
	}
}

func TestNoAnnouncementBeforeFirstDelivery(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{}, nil)

	mem.neighbors = []id.ID{2, 4}
	n.OnCycle()
	if got := len(env.sentOfType(msg.PlumtreeIHave)); got != 0 {
		t.Errorf("IHAVEs = %d before any round existed, want 0", got)
	}
}

func TestNoAnnouncementWhenLastRoundEvicted(t *testing.T) {
	// If the round has left the seen window a graft for it could not be
	// served, so the link must not be teased with an unservable IHAVE.
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{}, nil)
	n.Broadcast(7, []byte("x"))
	n.ResetSeen()
	env.sent = nil

	mem.neighbors = []id.ID{2, 4}
	n.OnCycle()
	if got := len(env.sentOfType(msg.PlumtreeIHave)); got != 0 {
		t.Errorf("IHAVEs = %d for an evicted round, want 0", got)
	}
}

func TestAnnouncementOpensGraftRecovery(t *testing.T) {
	// End to end across two nodes: a deprived node that gains the link,
	// receives the announcement, times out and grafts recovers the payload.
	env := newFakeEnv(5)
	mem := &fakeMembership{neighbors: []id.ID{9}}
	var got []uint64
	n := New(env, mem, Config{TimerDelay: 3}, func(r uint64, _ uint32, _ []byte, _ int) {
		got = append(got, r)
	})
	// The announcement a repaired peer would send on link formation:
	n.Deliver(9, msg.Message{Type: msg.PlumtreeIHave, Sender: 9, Round: 12, Hops: 2})
	for _, tm := range env.Advance(3) { // missing-round timer fires
		n.Deliver(5, tm)
	}
	grafts := env.sentOfType(msg.PlumtreeGraft)
	if len(grafts) != 1 || grafts[0].to != 9 {
		t.Fatalf("grafts = %v, want one to n9", grafts)
	}
	n.Deliver(9, msg.Message{Type: msg.PlumtreeGossip, Sender: 9, Round: 12, Payload: []byte("p")})
	if len(got) != 1 || got[0] != 12 {
		t.Errorf("delivered = %v, want [12]", got)
	}
}
