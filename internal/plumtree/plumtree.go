// Package plumtree implements the Plumtree epidemic broadcast tree protocol
// (Leitão, Pereira, Rodrigues — "Epidemic Broadcast Trees", SRDS 2007), the
// companion broadcast layer the authors designed to run on top of HyParView.
//
// Instead of pushing every payload on every overlay link (flooding), each
// node splits its overlay neighbors into an eager set and a lazy set:
//
//   - Eager peers receive the payload itself (PLUMTREEGOSSIP). The eager
//     links of all nodes converge to a spanning tree of the overlay: the
//     first copy of a message moves the sending link to eager, a redundant
//     copy is answered with PLUMTREEPRUNE, demoting the link to lazy.
//   - Lazy peers receive only an announcement (PLUMTREEIHAVE) carrying the
//     round identifier and the hop count. Announcements are what keep the
//     protocol reliable: a node that hears about a message it never receives
//     starts a missing-message timer and, on expiry, sends PLUMTREEGRAFT to
//     an announcer, which both repairs the tree (the grafted link becomes
//     eager on both ends) and triggers retransmission of the payload.
//
// Tree optimization (paper §4.4): when an IHAVE announces a path shorter by
// Config.OptimizeThreshold hops than the eager path a message actually
// arrived on, the node grafts the announcer and prunes its current parent,
// so the tree keeps approximating a BFS tree as the overlay changes.
//
// Timers: the missing-message timer is a real scheduled event on the
// environment's peer.Scheduler — After(Config.TimerDelay) arms a
// self-addressed PLUMTREEIHAVE that fires once, behind all traffic already
// in flight. In the simulator's FIFO mode (delay-0 messages) that is exactly
// the "wait long enough for the eager path to win" semantics the paper's
// timer provides, and tree repair still runs to completion inside a single
// Drain, deterministic under a fixed seed; under a latency model or the real
// TCP clock the delay is a genuine timeout in ticks. Divergence from the
// paper: IHAVE announcements are sent immediately rather than batched by a
// lazy-queue policy.
//
// The node implements gossip.Broadcaster over any peer.Membership, so the
// experiment harness can swap flood gossip for Plumtree with a cluster
// option and compare reliability and relative message redundancy (RMR).
package plumtree

import (
	"errors"
	"sort"

	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
)

// Config parameterizes a Plumtree node. Zero fields take defaults.
type Config struct {
	// TimerDelay is the missing-message timeout in scheduler ticks: how long
	// a node that heard an IHAVE announcement waits for the eager copy
	// before grafting the announcer (peer.Scheduler.After). A zero-delay
	// timer still fires behind all traffic in flight at arming time, so in
	// the simulator's FIFO mode any value repairs within one Drain; under a
	// latency model the delay must exceed the eager-path/lazy-shortcut
	// delivery gap or the node grafts spuriously, keeping the tree in
	// permanent churn (the extra grafts cost redundancy, never reliability).
	// The TCP agent maps AgentConfig.PlumtreeTimer onto this field (one tick
	// = 1ms). Default 1000.
	TimerDelay uint64

	// OptimizeThreshold is the minimum hop-count improvement an IHAVE
	// announcement must promise over the current eager path before the node
	// swaps the links (GRAFT the announcer, PRUNE the parent). Default 3.
	OptimizeThreshold int

	// ReportPeerDown controls whether send failures are reported to the
	// membership protocol's OnPeerDown. True when running over HyParView,
	// whose broadcast doubles as its failure detector.
	ReportPeerDown bool
}

// WithDefaults fills unset fields with the defaults above.
func (c Config) WithDefaults() Config {
	if c.TimerDelay == 0 {
		c.TimerDelay = 1000
	}
	if c.OptimizeThreshold == 0 {
		c.OptimizeThreshold = 3
	}
	return c
}

// cached is the per-delivered-round state: the payload is kept for GRAFT
// retransmissions, hops and parent feed the optimization rule.
type cached struct {
	payload []byte
	hops    uint16 // hop count at which this node delivered
	parent  id.ID  // eager peer the first copy arrived from (Nil if local)
}

// source is one IHAVE announcer of a round this node has not delivered.
type source struct {
	peer id.ID
	hops uint16
}

// missing tracks a round known only through announcements.
type missing struct {
	sources []source // announcers in arrival order; grafts try them in turn
	timer   bool     // a timer message is in flight for this round
}

// ControlStats counts Plumtree's control-plane activity.
type ControlStats struct {
	IHavesSent  uint64 // announcements pushed to lazy peers
	GraftsSent  uint64 // repair grafts (retransmission requests)
	PrunesSent  uint64 // duplicate-triggered demotions
	TimerFires  uint64 // missing-message timers that expired into a graft
	Optimizes   uint64 // eager/lazy swaps triggered by shorter announced paths
	GraftsRecvd uint64 // grafts answered (payload retransmitted if cached)
}

// Node is a Plumtree broadcast node over a membership protocol. It
// implements gossip.Broadcaster (and therefore peer.Process).
type Node struct {
	env        peer.Env
	membership peer.Membership
	cfg        Config
	onDeliver  gossip.Delivery

	eager map[id.ID]struct{}
	lazy  map[id.ID]struct{}
	seen  map[uint64]*cached
	miss  map[uint64]*missing

	// Payload accounting shared with the flood layer (gossip.Broadcaster).
	delivered  uint64
	duplicates uint64
	forwarded  uint64
	sendFails  uint64

	control ControlStats
}

var _ gossip.Broadcaster = (*Node)(nil)

// New builds a Plumtree node over membership. onDeliver may be nil.
func New(env peer.Env, membership peer.Membership, cfg Config, onDeliver gossip.Delivery) *Node {
	return &Node{
		env:        env,
		membership: membership,
		cfg:        cfg.WithDefaults(),
		onDeliver:  onDeliver,
		eager:      make(map[id.ID]struct{}),
		lazy:       make(map[id.ID]struct{}),
		seen:       make(map[uint64]*cached),
		miss:       make(map[uint64]*missing),
	}
}

// Membership returns the wrapped membership protocol.
func (n *Node) Membership() peer.Membership { return n.membership }

// Config returns the node's effective configuration (defaults applied).
func (n *Node) Config() Config { return n.cfg }

// Deliver implements peer.Process. Plumtree traffic is consumed here,
// everything else is handed to the membership protocol. A PLUMTREEIHAVE
// from the node itself is a missing-message timer firing (see package doc);
// a scheduler Tick from the node itself carries a lower layer's periodic
// round through this one, so the cyclic housekeeping rides along before the
// tick descends.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	switch m.Type {
	case msg.PlumtreeGossip:
		n.onGossip(from, m)
	case msg.PlumtreeIHave:
		if from == n.env.Self() {
			n.onTimer(m)
		} else {
			n.onIHave(from, m)
		}
	case msg.PlumtreeGraft:
		n.onGraft(from, m)
	case msg.PlumtreePrune:
		n.onPrune(from)
	case msg.Tick:
		if from == n.env.Self() {
			n.periodic()
		}
		n.membership.Deliver(from, m)
	default:
		n.membership.Deliver(from, m)
	}
}

// OnCycle runs the membership cycle and the periodic housekeeping
// (externally-driven cycle mode; scheduler-driven stacks get the same
// housekeeping from the Tick pass-through in Deliver).
func (n *Node) OnCycle() {
	n.membership.OnCycle()
	n.periodic()
}

// periodic reconciles the peer sets against the possibly-changed overlay
// neighborhood and re-arms repair timers for rounds still known only through
// announcements.
func (n *Node) periodic() {
	n.reconcile()
	// Sorted iteration keeps the event trace deterministic under a seed.
	rounds := make([]uint64, 0, len(n.miss))
	for round := range n.miss {
		rounds = append(rounds, round)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	for _, round := range rounds {
		ms := n.miss[round]
		if ms.timer {
			continue
		}
		if len(ms.sources) == 0 {
			// Every announcer was tried and failed; forget the round until
			// someone announces it again.
			delete(n.miss, round)
			continue
		}
		n.startTimer(round, 0) // graft behind everything already in flight
	}
}

// Broadcast emits a new message from this node: payload to eager peers,
// announcement to lazy peers.
func (n *Node) Broadcast(round uint64, payload []byte) {
	if _, dup := n.seen[round]; dup {
		return
	}
	n.reconcile()
	n.seen[round] = &cached{payload: payload, hops: 0, parent: id.Nil}
	n.delivered++
	if n.onDeliver != nil {
		n.onDeliver(round, payload, 0)
	}
	n.push(round, payload, 0, id.Nil)
}

// onGossip handles an eager payload push.
func (n *Node) onGossip(from id.ID, m msg.Message) {
	n.reconcile()
	if _, dup := n.seen[m.Round]; dup {
		// Redundant copy: this link is not part of the tree. Demote it and
		// tell the sender to stop eager-pushing to us (paper §4.2).
		n.duplicates++
		n.demote(from)
		if n.sendTo(from, msg.Message{Type: msg.PlumtreePrune, Sender: n.env.Self()}) {
			n.control.PrunesSent++
		}
		return
	}
	hops := m.Hops + 1
	n.seen[m.Round] = &cached{payload: m.Payload, hops: hops, parent: from}
	n.delivered++
	delete(n.miss, m.Round) // any in-flight timer finds the round delivered
	if n.onDeliver != nil {
		n.onDeliver(m.Round, m.Payload, int(hops))
	}
	n.promote(from) // the link that delivered first is a tree edge
	n.push(m.Round, m.Payload, hops, from)
}

// onIHave handles a lazy announcement from a peer.
func (n *Node) onIHave(from id.ID, m msg.Message) {
	n.reconcile()
	if c, ok := n.seen[m.Round]; ok {
		n.maybeOptimize(from, m.Hops, c)
		return
	}
	ms := n.miss[m.Round]
	if ms == nil {
		ms = &missing{}
		n.miss[m.Round] = ms
	}
	ms.sources = append(ms.sources, source{peer: from, hops: m.Hops})
	if !ms.timer {
		n.startTimer(m.Round, n.cfg.TimerDelay)
	}
}

// maybeOptimize applies the paper's §4.4 tree optimization: if the announced
// path would have delivered the message at least OptimizeThreshold hops
// earlier than the eager path did, swap the links.
func (n *Node) maybeOptimize(from id.ID, announcedHops uint16, c *cached) {
	if _, isEager := n.eager[from]; isEager {
		return
	}
	if int(announcedHops)+1+n.cfg.OptimizeThreshold > int(c.hops) {
		return
	}
	n.promote(from)
	// Accept=false: graft the link without requesting a retransmission.
	if n.sendTo(from, msg.Message{Type: msg.PlumtreeGraft, Sender: n.env.Self(), Accept: false}) {
		n.control.Optimizes++
	}
	if parent := c.parent; !parent.IsNil() && parent != from {
		if _, ok := n.eager[parent]; ok {
			n.demote(parent)
			if n.sendTo(parent, msg.Message{Type: msg.PlumtreePrune, Sender: n.env.Self()}) {
				n.control.PrunesSent++
			}
		}
	}
}

// onGraft handles a repair request: the requesting link becomes eager again
// and, when a retransmission is requested (Accept) and the payload is still
// cached, the payload is resent.
func (n *Node) onGraft(from id.ID, m msg.Message) {
	n.reconcile()
	n.promote(from)
	n.control.GraftsRecvd++
	if !m.Accept {
		return
	}
	if c, ok := n.seen[m.Round]; ok {
		if n.sendTo(from, msg.Message{
			Type:    msg.PlumtreeGossip,
			Sender:  n.env.Self(),
			Round:   m.Round,
			Hops:    c.hops,
			Payload: c.payload,
		}) {
			n.forwarded++
		}
	}
}

// onPrune demotes the link to the pruning peer to lazy.
func (n *Node) onPrune(from id.ID) {
	n.reconcile()
	n.demote(from)
}

// onTimer handles a missing-message timer firing (a scheduler-delivered
// self-addressed IHAVE).
func (n *Node) onTimer(m msg.Message) {
	ms := n.miss[m.Round]
	if ms == nil {
		return // delivered (or forgotten) while the timer was in flight
	}
	n.timerExpired(m.Round, ms)
}

// timerExpired grafts the first reachable announcer of round. If announcers
// remain afterwards the timer is re-armed, so a graft to a peer that fails
// before answering falls through to the next announcer.
func (n *Node) timerExpired(round uint64, ms *missing) {
	ms.timer = false
	for len(ms.sources) > 0 {
		s := ms.sources[0]
		ms.sources = ms.sources[1:]
		n.promote(s.peer)
		if n.sendTo(s.peer, msg.Message{
			Type:   msg.PlumtreeGraft,
			Sender: n.env.Self(),
			Round:  round,
			Accept: true,
		}) {
			n.control.GraftsSent++
			n.control.TimerFires++
			break
		}
	}
	if len(ms.sources) > 0 {
		n.startTimer(round, n.cfg.TimerDelay)
	}
	// Otherwise the entry stays with no timer armed: a future IHAVE re-arms
	// it, or the periodic housekeeping garbage-collects it.
}

// startTimer schedules the missing-message timer for round: a self-addressed
// IHAVE delivered by the environment's scheduler after delay ticks, behind
// everything already in flight.
func (n *Node) startTimer(round uint64, delay uint64) {
	ms := n.miss[round]
	if ms == nil {
		return
	}
	ms.timer = true
	n.env.After(delay, msg.Message{
		Type:   msg.PlumtreeIHave,
		Sender: n.env.Self(),
		Round:  round,
	})
}

// push sends the payload to every eager peer and the announcement to every
// lazy peer, excluding the link the message arrived on.
func (n *Node) push(round uint64, payload []byte, hops uint16, skip id.ID) {
	self := n.env.Self()
	for _, p := range sortedPeers(n.eager, skip) {
		if n.sendTo(p, msg.Message{
			Type:    msg.PlumtreeGossip,
			Sender:  self,
			Round:   round,
			Hops:    hops,
			Payload: payload,
		}) {
			n.forwarded++
		}
	}
	for _, p := range sortedPeers(n.lazy, skip) {
		if n.sendTo(p, msg.Message{
			Type:   msg.PlumtreeIHave,
			Sender: self,
			Round:  round,
			Hops:   hops,
		}) {
			n.control.IHavesSent++
		}
	}
}

// sendTo sends m to dst, handling the failure-detection path: a send
// rejected with peer.ErrPeerDown removes dst from both peer sets and, when
// configured, is reported to the membership protocol. Other send errors
// (queue-overflow degradation) lose the message without indicting the link.
func (n *Node) sendTo(dst id.ID, m msg.Message) bool {
	if err := n.env.Send(dst, m); err != nil {
		n.sendFails++
		if errors.Is(err, peer.ErrPeerDown) {
			delete(n.eager, dst)
			delete(n.lazy, dst)
			if n.cfg.ReportPeerDown {
				n.membership.OnPeerDown(dst)
			}
		}
		return false
	}
	return true
}

// reconcile synchronizes the eager/lazy partition with the membership
// protocol's current neighborhood: new overlay neighbors start eager (their
// first redundant push gets pruned), departed neighbors are dropped. This
// keeps Plumtree correct over any peer.Membership without requiring
// neighbor-change callbacks.
func (n *Node) reconcile() {
	neighbors := n.membership.Neighbors()
	current := make(map[id.ID]struct{}, len(neighbors))
	for _, p := range neighbors {
		if p == n.env.Self() {
			continue
		}
		current[p] = struct{}{}
		if _, ok := n.eager[p]; ok {
			continue
		}
		if _, ok := n.lazy[p]; ok {
			continue
		}
		n.eager[p] = struct{}{}
	}
	for p := range n.eager {
		if _, ok := current[p]; !ok {
			delete(n.eager, p)
		}
	}
	for p := range n.lazy {
		if _, ok := current[p]; !ok {
			delete(n.lazy, p)
		}
	}
}

// promote moves p to the eager set.
func (n *Node) promote(p id.ID) {
	if p.IsNil() || p == n.env.Self() {
		return
	}
	delete(n.lazy, p)
	n.eager[p] = struct{}{}
}

// demote moves p to the lazy set.
func (n *Node) demote(p id.ID) {
	if p.IsNil() {
		return
	}
	if _, ok := n.eager[p]; ok {
		delete(n.eager, p)
		n.lazy[p] = struct{}{}
	}
}

// EagerPeers returns the current eager set, sorted (tests, metrics).
func (n *Node) EagerPeers() []id.ID { return sortedPeers(n.eager, id.Nil) }

// LazyPeers returns the current lazy set, sorted (tests, metrics).
func (n *Node) LazyPeers() []id.ID { return sortedPeers(n.lazy, id.Nil) }

// Counters implements gossip.Broadcaster: payload accounting compatible
// with the flood layer's, feeding the shared RMR computation.
func (n *Node) Counters() (delivered, duplicates, forwarded, sendFails uint64) {
	return n.delivered, n.duplicates, n.forwarded, n.sendFails
}

// Control returns the control-plane counters.
func (n *Node) Control() ControlStats { return n.control }

// Seen reports whether the node has delivered round.
func (n *Node) Seen(round uint64) bool {
	_, ok := n.seen[round]
	return ok
}

// ResetSeen clears the delivered-message cache and the missing-round state;
// experiments spanning many thousands of rounds use this to bound memory.
func (n *Node) ResetSeen() {
	n.seen = make(map[uint64]*cached)
	n.miss = make(map[uint64]*missing)
}

// OnPeerDown implements peer.FailureObserver: a connection-level failure
// removes the peer from both sets and is forwarded to the membership
// protocol (which for HyParView triggers reactive view repair).
func (n *Node) OnPeerDown(peerID id.ID) {
	delete(n.eager, peerID)
	delete(n.lazy, peerID)
	n.membership.OnPeerDown(peerID)
}

// sortedPeers returns the members of set except skip, in ascending ID order
// so that send order — and therefore the simulator's event trace — is
// deterministic.
func sortedPeers(set map[id.ID]struct{}, skip id.ID) []id.ID {
	if len(set) == 0 {
		return nil
	}
	out := make([]id.ID, 0, len(set))
	for p := range set {
		if p != skip {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
