// Package plumtree implements the Plumtree epidemic broadcast tree protocol
// (Leitão, Pereira, Rodrigues — "Epidemic Broadcast Trees", SRDS 2007), the
// companion broadcast layer the authors designed to run on top of HyParView.
//
// Instead of pushing every payload on every overlay link (flooding), each
// node splits its overlay neighbors into an eager set and a lazy set:
//
//   - Eager peers receive the payload itself (PLUMTREEGOSSIP). The eager
//     links of all nodes converge to a spanning tree of the overlay: the
//     first copy of a message moves the sending link to eager, a redundant
//     copy is answered with PLUMTREEPRUNE, demoting the link to lazy.
//   - Lazy peers receive only an announcement (PLUMTREEIHAVE) carrying the
//     round identifier and the hop count. Announcements are what keep the
//     protocol reliable: a node that hears about a message it never receives
//     starts a missing-message timer and, on expiry, sends PLUMTREEGRAFT to
//     an announcer, which both repairs the tree (the grafted link becomes
//     eager on both ends) and triggers retransmission of the payload.
//
// Tree optimization (paper §4.4): when an IHAVE announces a path shorter by
// Config.OptimizeThreshold hops than the eager path a message actually
// arrived on, the node grafts the announcer and prunes its current parent,
// so the tree keeps approximating a BFS tree as the overlay changes.
//
// Timers: the missing-message timer is a real scheduled event on the
// environment's peer.Scheduler — After(Config.TimerDelay) arms a
// self-addressed PLUMTREEIHAVE that fires once, behind all traffic already
// in flight. In the simulator's FIFO mode (delay-0 messages) that is exactly
// the "wait long enough for the eager path to win" semantics the paper's
// timer provides, and tree repair still runs to completion inside a single
// Drain, deterministic under a fixed seed; under a latency model or the real
// TCP clock the delay is a genuine timeout in ticks. Divergence from the
// paper: IHAVE announcements are sent immediately rather than batched by a
// lazy-queue policy.
//
// The node implements gossip.Broadcaster over any peer.Membership, so the
// experiment harness can swap flood gossip for Plumtree with a cluster
// option and compare reliability and relative message redundancy (RMR).
package plumtree

import (
	"errors"
	"slices"

	"hyparview/internal/gossip"
	"hyparview/internal/id"
	"hyparview/internal/idset"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/roundcache"
)

// DefaultCacheWindow is the default capacity, in rounds, of the per-node
// delivered-message cache (Config.CacheWindow). Like the gossip layer's seen
// cache it is a fixed-capacity ring over the most recent round identifiers;
// for Plumtree the entry additionally retains the (frozen, aliased) payload
// so GRAFT repair requests can be answered. A round evicted by one more than
// CacheWindow rounds newer loses its retransmission ability and its
// duplicate detection, so the window must cover the rounds for which repair
// can still be pending — in practice the rounds of one burst.
const DefaultCacheWindow = 512

// Config parameterizes a Plumtree node. Zero fields take defaults.
type Config struct {
	// TimerDelay is the missing-message timeout in scheduler ticks: how long
	// a node that heard an IHAVE announcement waits for the eager copy
	// before grafting the announcer (peer.Scheduler.After). A zero-delay
	// timer still fires behind all traffic in flight at arming time, so in
	// the simulator's FIFO mode any value repairs within one Drain; under a
	// latency model the delay must exceed the eager-path/lazy-shortcut
	// delivery gap or the node grafts spuriously, keeping the tree in
	// permanent churn (the extra grafts cost redundancy, never reliability).
	// The TCP agent maps AgentConfig.PlumtreeTimer onto this field (one tick
	// = 1ms). Default 1000.
	TimerDelay uint64

	// OptimizeThreshold is the minimum hop-count improvement an IHAVE
	// announcement must promise over the current eager path before the node
	// swaps the links (GRAFT the announcer, PRUNE the parent). Default 3.
	OptimizeThreshold int

	// ReportPeerDown controls whether send failures are reported to the
	// membership protocol's OnPeerDown. True when running over HyParView,
	// whose broadcast doubles as its failure detector.
	ReportPeerDown bool

	// CacheWindow is the capacity, in rounds, of the delivered-message
	// cache (see DefaultCacheWindow). Zero takes the default.
	CacheWindow int
}

// WithDefaults fills unset fields with the defaults above.
func (c Config) WithDefaults() Config {
	if c.TimerDelay == 0 {
		c.TimerDelay = 1000
	}
	if c.OptimizeThreshold == 0 {
		c.OptimizeThreshold = 3
	}
	if c.CacheWindow <= 0 {
		c.CacheWindow = DefaultCacheWindow
	}
	return c
}

// cached is the per-delivered-round state: the payload is kept for GRAFT
// retransmissions, hops and parent feed the optimization rule. The payload
// slice aliases the received message's frozen buffer (see the ownership
// rules on package peer) — retaining it costs nothing and copies nothing.
type cached struct {
	payload []byte
	topic   uint32 // pub/sub topic tag, preserved across GRAFT retransmission
	hops    uint16 // hop count at which this node delivered
	parent  id.ID  // eager peer the first copy arrived from (Nil if local)
}

// source is one IHAVE announcer of a round this node has not delivered.
type source struct {
	peer id.ID
	hops uint16
}

// missing tracks a round known only through announcements. Entries live in a
// fixed-capacity round cache and hold their announcers in a fixed inline
// array, so the repair bookkeeping allocates nothing however many rounds
// churn through it. maxSources bounds the graft fall-back chain; announcers
// beyond it are dropped, which costs at most repair attempts (a later IHAVE
// re-announces), never correctness.
type missing struct {
	sources [maxSources]source // announcers in arrival order; grafts try them in turn
	nsrc    uint8              // live prefix of sources
	timer   bool               // a timer message is in flight for this round
}

// maxSources is the per-round announcer bound: lazy degree rarely exceeds
// the active-view size (5 in the paper's configurations).
const maxSources = 8

// ControlStats counts Plumtree's control-plane activity.
type ControlStats struct {
	IHavesSent  uint64 // announcements pushed to lazy peers
	GraftsSent  uint64 // repair grafts (retransmission requests)
	PrunesSent  uint64 // duplicate-triggered demotions
	TimerFires  uint64 // missing-message timers that expired into a graft
	Optimizes   uint64 // eager/lazy swaps triggered by shorter announced paths
	GraftsRecvd uint64 // grafts answered (payload retransmitted if cached)
}

// Node is a Plumtree broadcast node over a membership protocol. It
// implements gossip.Broadcaster (and therefore peer.Process).
type Node struct {
	env        peer.Env
	membership peer.Membership
	cfg        Config
	onDeliver  gossip.Delivery

	// versioned gates reconcile: when the membership exposes a neighborhood
	// change counter (peer.NeighborVersioned), the per-delivery resync
	// collapses to one integer compare until the overlay actually changes.
	versioned peer.NeighborVersioned
	lastVer   uint64
	synced    bool

	// sendRef is env's optional by-reference send fast path (peer.RefSender);
	// nil means fall back to env.Send.
	sendRef func(dst id.ID, m *msg.Message) error

	// msgScratch stages outgoing messages on the (heap-allocated) node so
	// the by-reference send path never makes a stack-local message escape —
	// that would cost one allocation per send.
	msgScratch msg.Message

	// lastRound/hasLast fast-path duplicate detection for the round
	// delivered most recently (see the equivalent fields on gossip.Node):
	// the redundant eager pushes that drive PRUNE demotions resolve without
	// touching the seen cache.
	lastRound uint64
	hasLast   bool

	eager idset.Set
	lazy  idset.Set
	seen  roundcache.Cache[cached]
	miss  roundcache.Cache[missing]

	// Reused scratch buffers for the allocation-free hot paths; their
	// contents are dead between calls (see the ownership rules on package
	// peer: messages are sent with frozen slices, never aliasing these).
	peerScratch  []id.ID
	nbrScratch   []id.ID
	roundScratch []uint64

	// Payload accounting shared with the flood layer (gossip.Broadcaster).
	delivered  uint64
	duplicates uint64
	forwarded  uint64
	sendFails  uint64

	control ControlStats
}

var _ gossip.Broadcaster = (*Node)(nil)

// New builds a Plumtree node over membership. onDeliver may be nil.
func New(env peer.Env, membership peer.Membership, cfg Config, onDeliver gossip.Delivery) *Node {
	cfg = cfg.WithDefaults()
	versioned, _ := membership.(peer.NeighborVersioned)
	n := &Node{
		env:        env,
		membership: membership,
		cfg:        cfg,
		onDeliver:  onDeliver,
		versioned:  versioned,
	}
	if rs, ok := env.(peer.RefSender); ok {
		n.sendRef = rs.SendRef
	}
	n.seen.Init(cfg.CacheWindow)
	n.miss.Init(cfg.CacheWindow)
	return n
}

// Membership returns the wrapped membership protocol.
func (n *Node) Membership() peer.Membership { return n.membership }

// Config returns the node's effective configuration (defaults applied).
func (n *Node) Config() Config { return n.cfg }

// Deliver implements peer.Process. Plumtree traffic is consumed here,
// everything else is handed to the membership protocol. A PLUMTREEIHAVE
// from the node itself is a missing-message timer firing (see package doc);
// a scheduler Tick from the node itself carries a lower layer's periodic
// round through this one, so the cyclic housekeeping rides along before the
// tick descends.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	switch m.Type {
	case msg.PlumtreeGossip:
		n.onGossip(from, m)
	case msg.PlumtreeIHave:
		if from == n.env.Self() {
			n.onTimer(m)
		} else {
			n.onIHave(from, m)
		}
	case msg.PlumtreeGraft:
		n.onGraft(from, m)
	case msg.PlumtreePrune:
		n.onPrune(from)
	case msg.Tick:
		if from == n.env.Self() {
			n.periodic()
		}
		n.membership.Deliver(from, m)
	default:
		n.membership.Deliver(from, m)
	}
}

// OnCycle runs the membership cycle and the periodic housekeeping
// (externally-driven cycle mode; scheduler-driven stacks get the same
// housekeeping from the Tick pass-through in Deliver).
func (n *Node) OnCycle() {
	n.membership.OnCycle()
	n.periodic()
}

// periodic reconciles the peer sets against the possibly-changed overlay
// neighborhood and re-arms repair timers for rounds still known only through
// announcements.
func (n *Node) periodic() {
	n.reconcile()
	// Sorted iteration keeps the event trace deterministic under a seed.
	rounds := n.roundScratch[:0]
	n.miss.ForEach(func(round uint64, _ *missing) {
		rounds = append(rounds, round)
	})
	slices.Sort(rounds)
	n.roundScratch = rounds
	for _, round := range rounds {
		ms := n.miss.Get(round)
		if ms == nil || ms.timer {
			continue
		}
		if ms.nsrc == 0 {
			// Every announcer was tried and failed; forget the round until
			// someone announces it again.
			n.miss.Remove(round)
			continue
		}
		n.startTimer(round, 0) // graft behind everything already in flight
	}
}

// Broadcast emits a new message from this node: payload to eager peers,
// announcement to lazy peers.
func (n *Node) Broadcast(round uint64, payload []byte) {
	n.BroadcastTopic(round, 0, payload)
}

// BroadcastTopic emits a new topic-tagged message from this node (see
// gossip.Broadcaster). The tag is cached alongside the payload so GRAFT
// retransmissions reproduce it.
func (n *Node) BroadcastTopic(round uint64, topic uint32, payload []byte) {
	if n.seen.Get(round) != nil {
		return
	}
	n.reconcile()
	c, _ := n.seen.Put(round)
	*c = cached{payload: payload, topic: topic, hops: 0, parent: id.Nil}
	n.lastRound, n.hasLast = round, true
	n.delivered++
	if n.onDeliver != nil {
		n.onDeliver(round, topic, payload, 0)
	}
	n.push(round, topic, payload, 0, id.Nil)
}

// onGossip handles an eager payload push.
func (n *Node) onGossip(from id.ID, m msg.Message) {
	n.reconcile()
	if (n.hasLast && m.Round == n.lastRound) || n.seen.Get(m.Round) != nil {
		// Redundant copy: this link is not part of the tree. Demote it and
		// tell the sender to stop eager-pushing to us (paper §4.2).
		n.duplicates++
		n.demote(from)
		if n.sendTo(from, msg.Message{Type: msg.PlumtreePrune, Sender: n.env.Self()}) {
			n.control.PrunesSent++
		}
		return
	}
	hops := m.Hops + 1
	c, _ := n.seen.Put(m.Round)
	*c = cached{payload: m.Payload, topic: m.Topic, hops: hops, parent: from}
	n.lastRound, n.hasLast = m.Round, true
	n.delivered++
	n.miss.Remove(m.Round) // any in-flight timer finds the round delivered
	if n.onDeliver != nil {
		n.onDeliver(m.Round, m.Topic, m.Payload, int(hops))
	}
	n.promote(from) // the link that delivered first is a tree edge
	n.push(m.Round, m.Topic, m.Payload, hops, from)
}

// onIHave handles a lazy announcement from a peer.
func (n *Node) onIHave(from id.ID, m msg.Message) {
	n.reconcile()
	if c := n.seen.Get(m.Round); c != nil {
		n.maybeOptimize(from, m.Hops, c)
		return
	}
	ms, existed := n.miss.Put(m.Round)
	if !existed {
		// Fresh (or recycled) entry: reset the live fields.
		ms.nsrc = 0
		ms.timer = false
	}
	if int(ms.nsrc) < len(ms.sources) {
		ms.sources[ms.nsrc] = source{peer: from, hops: m.Hops}
		ms.nsrc++
	}
	if !ms.timer {
		n.startTimer(m.Round, n.cfg.TimerDelay)
	}
}

// maybeOptimize applies the paper's §4.4 tree optimization: if the announced
// path would have delivered the message at least OptimizeThreshold hops
// earlier than the eager path did, swap the links.
func (n *Node) maybeOptimize(from id.ID, announcedHops uint16, c *cached) {
	if n.eager.Contains(from) {
		return
	}
	if int(announcedHops)+1+n.cfg.OptimizeThreshold > int(c.hops) {
		return
	}
	// c points into the seen cache; copy the parent out before sending (a
	// send cannot evict cache entries today, but the pointer's validity
	// window is documented as "until the next insert").
	parent := c.parent
	n.promote(from)
	// Accept=false: graft the link without requesting a retransmission.
	if n.sendTo(from, msg.Message{Type: msg.PlumtreeGraft, Sender: n.env.Self(), Accept: false}) {
		n.control.Optimizes++
	}
	if !parent.IsNil() && parent != from {
		if n.eager.Contains(parent) {
			n.demote(parent)
			if n.sendTo(parent, msg.Message{Type: msg.PlumtreePrune, Sender: n.env.Self()}) {
				n.control.PrunesSent++
			}
		}
	}
}

// onGraft handles a repair request: the requesting link becomes eager again
// and, when a retransmission is requested (Accept) and the payload is still
// cached, the payload is resent.
func (n *Node) onGraft(from id.ID, m msg.Message) {
	n.reconcile()
	n.promote(from)
	n.control.GraftsRecvd++
	if !m.Accept {
		return
	}
	if c := n.seen.Get(m.Round); c != nil {
		if n.sendTo(from, msg.Message{
			Type:    msg.PlumtreeGossip,
			Sender:  n.env.Self(),
			Round:   m.Round,
			Hops:    c.hops,
			Topic:   c.topic,
			Payload: c.payload,
		}) {
			n.forwarded++
		}
	}
}

// onPrune demotes the link to the pruning peer to lazy.
func (n *Node) onPrune(from id.ID) {
	n.reconcile()
	n.demote(from)
}

// onTimer handles a missing-message timer firing (a scheduler-delivered
// self-addressed IHAVE).
func (n *Node) onTimer(m msg.Message) {
	ms := n.miss.Get(m.Round)
	if ms == nil {
		return // delivered (or forgotten) while the timer was in flight
	}
	n.timerExpired(m.Round, ms)
}

// timerExpired grafts the first reachable announcer of round. If announcers
// remain afterwards the timer is re-armed, so a graft to a peer that fails
// before answering falls through to the next announcer.
func (n *Node) timerExpired(round uint64, ms *missing) {
	ms.timer = false
	consumed := 0
	for consumed < int(ms.nsrc) {
		s := ms.sources[consumed]
		consumed++
		n.promote(s.peer)
		if n.sendTo(s.peer, msg.Message{
			Type:   msg.PlumtreeGraft,
			Sender: n.env.Self(),
			Round:  round,
			Accept: true,
		}) {
			n.control.GraftsSent++
			n.control.TimerFires++
			break
		}
	}
	// Shift the unconsumed announcers down in place.
	ms.nsrc = uint8(copy(ms.sources[:], ms.sources[consumed:ms.nsrc]))
	if ms.nsrc > 0 {
		n.startTimer(round, n.cfg.TimerDelay)
	}
	// Otherwise the entry stays with no timer armed: a future IHAVE re-arms
	// it, or the periodic housekeeping garbage-collects it.
}

// startTimer schedules the missing-message timer for round: a self-addressed
// IHAVE delivered by the environment's scheduler after delay ticks, behind
// everything already in flight.
func (n *Node) startTimer(round uint64, delay uint64) {
	ms := n.miss.Get(round)
	if ms == nil {
		return
	}
	ms.timer = true
	n.env.After(delay, msg.Message{
		Type:   msg.PlumtreeIHave,
		Sender: n.env.Self(),
		Round:  round,
	})
}

// push sends the payload to every eager peer and the announcement to every
// lazy peer, excluding the link the message arrived on. The peer sets are
// iterated through a reused scratch snapshot (a failed send removes the peer
// from the live set mid-loop), in ascending ID order so the simulator's
// event trace stays deterministic; the payload slice is shared by every
// outgoing copy (copy-on-write fan-out, see package peer).
func (n *Node) push(round uint64, topic uint32, payload []byte, hops uint16, skip id.ID) {
	self := n.env.Self()
	n.msgScratch = msg.Message{
		Type:    msg.PlumtreeGossip,
		Sender:  self,
		Round:   round,
		Hops:    hops,
		Topic:   topic,
		Payload: payload,
	}
	n.peerScratch = n.eager.AppendTo(n.peerScratch[:0], skip)
	for _, p := range n.peerScratch {
		if n.sendRefTo(p, &n.msgScratch) {
			n.forwarded++
		}
	}
	n.msgScratch = msg.Message{
		Type:   msg.PlumtreeIHave,
		Sender: self,
		Round:  round,
		Hops:   hops,
	}
	n.peerScratch = n.lazy.AppendTo(n.peerScratch[:0], skip)
	for _, p := range n.peerScratch {
		if n.sendRefTo(p, &n.msgScratch) {
			n.control.IHavesSent++
		}
	}
}

// sendTo sends m to dst, handling the failure-detection path: a send
// rejected with peer.ErrPeerDown removes dst from both peer sets and, when
// configured, is reported to the membership protocol. Other send errors
// (queue-overflow degradation) lose the message without indicting the link.
func (n *Node) sendTo(dst id.ID, m msg.Message) bool {
	n.msgScratch = m
	return n.sendRefTo(dst, &n.msgScratch)
}

// sendRefTo is sendTo through the environment's by-reference fast path when
// one is available (peer.RefSender); *m is frozen under either path.
func (n *Node) sendRefTo(dst id.ID, m *msg.Message) bool {
	var err error
	if n.sendRef != nil {
		err = n.sendRef(dst, m)
	} else {
		err = n.env.Send(dst, *m)
	}
	if err != nil {
		n.sendFails++
		if errors.Is(err, peer.ErrPeerDown) {
			n.eager.Remove(dst)
			n.lazy.Remove(dst)
			if n.cfg.ReportPeerDown {
				n.membership.OnPeerDown(dst)
			}
		}
		return false
	}
	return true
}

// reconcile synchronizes the eager/lazy partition with the membership
// protocol's current neighborhood: new overlay neighbors start eager (their
// first redundant push gets pruned), departed neighbors are dropped. This
// keeps Plumtree correct over any peer.Membership without requiring
// neighbor-change callbacks. When the membership exposes a neighborhood
// version (peer.NeighborVersioned), the resync is skipped entirely while the
// version is unchanged — the steady-state delivery path pays one integer
// compare instead of a set diff.
func (n *Node) reconcile() {
	if n.versioned != nil {
		v := n.versioned.NeighborVersion()
		if n.synced && v == n.lastVer {
			return
		}
		n.lastVer = v
		n.synced = true
	}
	self := n.env.Self()
	n.nbrScratch = append(n.nbrScratch[:0], n.membership.Neighbors()...)
	slices.Sort(n.nbrScratch)
	n.eager.RetainSorted(n.nbrScratch)
	n.lazy.RetainSorted(n.nbrScratch)
	for _, p := range n.nbrScratch {
		if p == self || n.eager.Contains(p) || n.lazy.Contains(p) {
			continue
		}
		n.eager.Add(p)
		n.announceLast(p)
	}
}

// announceLast sends an IHAVE for the most recently delivered round to a
// newly formed overlay link. Announcements are otherwise sent exactly once,
// at delivery time, over the links that existed then — so a node that gained
// this link while the round was in flight (view repair during a partition, a
// freshly admitted replacement) would never learn of it and could stay
// permanently deprived even though its new neighbor holds the payload: the
// fault class the adversarial partition-heal-mid-broadcast scenario pins.
// One bounded control message per new link re-opens the missing-round
// timer/graft recovery path.
func (n *Node) announceLast(p id.ID) {
	if !n.hasLast {
		return
	}
	c := n.seen.Get(n.lastRound)
	if c == nil {
		// Evicted from the seen window: a graft for it could not be served,
		// so don't advertise it.
		return
	}
	n.msgScratch = msg.Message{
		Type:   msg.PlumtreeIHave,
		Sender: n.env.Self(),
		Round:  n.lastRound,
		Hops:   c.hops,
	}
	if n.sendRefTo(p, &n.msgScratch) {
		n.control.IHavesSent++
	}
}

// promote moves p to the eager set.
func (n *Node) promote(p id.ID) {
	if p.IsNil() || p == n.env.Self() {
		return
	}
	wasLazy := n.lazy.Remove(p)
	if n.eager.Add(p) && !wasLazy {
		// p was tracked in neither set: either a brand-new neighbor (the
		// next resync retains it) or a non-neighbor whose in-flight traffic
		// raced its removal. The membership version cannot see this local
		// insertion, so force the next reconcile to resync — otherwise the
		// version gate would keep a phantom eager edge to a non-neighbor
		// alive until some unrelated neighborhood change.
		n.synced = false
	}
}

// demote moves p to the lazy set.
func (n *Node) demote(p id.ID) {
	if p.IsNil() {
		return
	}
	if n.eager.Remove(p) {
		n.lazy.Add(p)
	}
}

// EagerPeers returns the current eager set, sorted (tests, metrics).
func (n *Node) EagerPeers() []id.ID { return n.eager.Members() }

// LazyPeers returns the current lazy set, sorted (tests, metrics).
func (n *Node) LazyPeers() []id.ID { return n.lazy.Members() }

// Counters implements gossip.Broadcaster: payload accounting compatible
// with the flood layer's, feeding the shared RMR computation.
func (n *Node) Counters() (delivered, duplicates, forwarded, sendFails uint64) {
	return n.delivered, n.duplicates, n.forwarded, n.sendFails
}

// Control returns the control-plane counters.
func (n *Node) Control() ControlStats { return n.control }

// Seen reports whether the node has delivered round within the cache window.
func (n *Node) Seen(round uint64) bool {
	return n.seen.Get(round) != nil
}

// ResetSeen clears the delivered-message cache and the missing-round state in
// place; the fixed-capacity caches keep (and recycle) their memory.
func (n *Node) ResetSeen() {
	n.hasLast = false
	n.seen.Reset()
	n.miss.Reset()
}

// OnPeerDown implements peer.FailureObserver: a connection-level failure
// removes the peer from both sets and is forwarded to the membership
// protocol (which for HyParView triggers reactive view repair).
func (n *Node) OnPeerDown(peerID id.ID) {
	n.eager.Remove(peerID)
	n.lazy.Remove(peerID)
	n.membership.OnPeerDown(peerID)
}
