package plumtree

import (
	"fmt"
	"reflect"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// fakeMembership is a scriptable peer.Membership.
type fakeMembership struct {
	neighbors []id.ID
	downs     []id.ID
	delivered []msg.Message
	cycles    int
}

var _ peer.Membership = (*fakeMembership)(nil)

func (f *fakeMembership) Deliver(_ id.ID, m msg.Message) { f.delivered = append(f.delivered, m) }
func (f *fakeMembership) OnCycle()                       { f.cycles++ }
func (f *fakeMembership) Neighbors() []id.ID             { return append([]id.ID(nil), f.neighbors...) }
func (f *fakeMembership) OnPeerDown(p id.ID)             { f.downs = append(f.downs, p) }

func (f *fakeMembership) GossipTargets(fanout int, exclude id.ID) []id.ID {
	var out []id.ID
	for _, n := range f.neighbors {
		if n != exclude {
			out = append(out, n)
		}
	}
	if fanout > 0 && len(out) > fanout {
		out = out[:fanout]
	}
	return out
}

// fakeEnv records sends; timers land on the embedded manual scheduler and
// are fired explicitly by the tests.
type fakeEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
	down map[id.ID]bool
	sent []sentMsg
}

type sentMsg struct {
	to id.ID
	m  msg.Message
}

var _ peer.Env = (*fakeEnv)(nil)

func newFakeEnv(self id.ID) *fakeEnv {
	return &fakeEnv{self: self, rand: rng.New(1), down: make(map[id.ID]bool)}
}

func (e *fakeEnv) Self() id.ID       { return e.self }
func (e *fakeEnv) Rand() *rng.Rand   { return e.rand }
func (e *fakeEnv) Watch(id.ID)       {}
func (e *fakeEnv) Unwatch(id.ID)     {}
func (e *fakeEnv) Probe(id.ID) error { return nil }

func (e *fakeEnv) Send(dst id.ID, m msg.Message) error {
	if e.down[dst] {
		return fmt.Errorf("send: %w", peer.ErrPeerDown)
	}
	e.sent = append(e.sent, sentMsg{to: dst, m: m})
	return nil
}

// sentOfType filters recorded sends by message type.
func (e *fakeEnv) sentOfType(t msg.Type) []sentMsg {
	var out []sentMsg
	for _, s := range e.sent {
		if s.m.Type == t {
			out = append(out, s)
		}
	}
	return out
}

func TestBroadcastStartsEagerToAllNeighbors(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3, 4}}
	var delivered []uint64
	n := New(env, mem, Config{}, func(r uint64, _ uint32, _ []byte, hops int) {
		if hops != 0 {
			t.Errorf("local delivery hops = %d, want 0", hops)
		}
		delivered = append(delivered, r)
	})
	n.Broadcast(7, []byte("x"))
	gossips := env.sentOfType(msg.PlumtreeGossip)
	if len(gossips) != 3 {
		t.Fatalf("eager pushes = %d, want 3 (all neighbors start eager)", len(gossips))
	}
	for _, s := range gossips {
		if s.m.Round != 7 || s.m.Hops != 0 || string(s.m.Payload) != "x" {
			t.Errorf("bad eager frame: %+v", s.m)
		}
	}
	if len(env.sentOfType(msg.PlumtreeIHave)) != 0 {
		t.Error("IHAVE sent with an empty lazy set")
	}
	if !reflect.DeepEqual(delivered, []uint64{7}) {
		t.Errorf("local delivery = %v, want [7]", delivered)
	}
	if !n.Seen(7) {
		t.Error("broadcast round not marked seen")
	}
}

func TestFirstCopyForwardedDuplicatePruned(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3, 4}}
	n := New(env, mem, Config{}, nil)
	g := msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 9, Hops: 3, Payload: []byte("p")}
	n.Deliver(2, g)
	gossips := env.sentOfType(msg.PlumtreeGossip)
	if len(gossips) != 2 {
		t.Fatalf("forwarded to %d peers, want 2 (sender excluded)", len(gossips))
	}
	for _, s := range gossips {
		if s.to == 2 {
			t.Error("payload pushed back to the sender")
		}
		if s.m.Hops != 4 {
			t.Errorf("hops = %d, want 4", s.m.Hops)
		}
	}
	env.sent = nil

	// A second copy from another neighbor is redundant: that link leaves the
	// tree (PRUNE) and is demoted to lazy.
	n.Deliver(3, g)
	prunes := env.sentOfType(msg.PlumtreePrune)
	if len(prunes) != 1 || prunes[0].to != 3 {
		t.Fatalf("prunes = %v, want one to n3", prunes)
	}
	if !reflect.DeepEqual(n.LazyPeers(), []id.ID{3}) {
		t.Errorf("lazy = %v, want [n3]", n.LazyPeers())
	}
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{2, 4}) {
		t.Errorf("eager = %v, want [n2 n4]", n.EagerPeers())
	}
	d, dup, fwd, _ := n.Counters()
	if d != 1 || dup != 1 || fwd != 2 {
		t.Errorf("counters = %d %d %d, want 1 1 2", d, dup, fwd)
	}
}

func TestLazyPeersGetIHaveNotPayload(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)
	n.Deliver(3, msg.Message{Type: msg.PlumtreePrune, Sender: 3})
	env.sent = nil

	n.Broadcast(5, []byte("y"))
	gossips := env.sentOfType(msg.PlumtreeGossip)
	ihaves := env.sentOfType(msg.PlumtreeIHave)
	if len(gossips) != 1 || gossips[0].to != 2 {
		t.Errorf("eager pushes = %v, want only to n2", gossips)
	}
	if len(ihaves) != 1 || ihaves[0].to != 3 {
		t.Fatalf("ihaves = %v, want only to n3", ihaves)
	}
	if ihaves[0].m.Round != 5 || ihaves[0].m.Payload != nil {
		t.Errorf("IHAVE carries wrong content: %+v", ihaves[0].m)
	}
}

func TestPruneReceptionDemotesLink(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)
	n.Deliver(2, msg.Message{Type: msg.PlumtreePrune, Sender: 2})
	if !reflect.DeepEqual(n.LazyPeers(), []id.ID{2}) {
		t.Errorf("lazy = %v, want [n2]", n.LazyPeers())
	}
}

func TestIHaveForUnseenStartsTimerThenGrafts(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{TimerDelay: 5}, nil)

	n.Deliver(2, msg.Message{Type: msg.PlumtreeIHave, Sender: 2, Round: 4, Hops: 1})
	if env.Pending() != 1 {
		t.Fatalf("scheduled timers = %d, want one missing-message timer", env.Pending())
	}
	if len(env.sentOfType(msg.PlumtreeIHave)) != 0 {
		t.Error("arming the timer sent wire traffic")
	}

	// The scheduler fires the timer at the deadline: the node grafts the
	// announcer, requesting a retransmission.
	timers := env.Advance(5)
	if len(timers) != 1 || timers[0].Type != msg.PlumtreeIHave || timers[0].Round != 4 {
		t.Fatalf("fired = %v, want one self-addressed IHAVE for round 4", timers)
	}
	env.sent = nil
	n.Deliver(1, timers[0])
	grafts := env.sentOfType(msg.PlumtreeGraft)
	if len(grafts) != 1 || grafts[0].to != 2 || grafts[0].m.Round != 4 || !grafts[0].m.Accept {
		t.Fatalf("grafts = %v, want retransmission request to n2 for round 4", grafts)
	}
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{2, 3}) {
		t.Errorf("eager = %v, want announcer promoted", n.EagerPeers())
	}
}

func TestTimerCancelledByDelivery(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{TimerDelay: 5}, nil)
	n.Deliver(2, msg.Message{Type: msg.PlumtreeIHave, Sender: 2, Round: 4, Hops: 1})

	// The eager copy arrives before the timer fires.
	n.Deliver(3, msg.Message{Type: msg.PlumtreeGossip, Sender: 3, Round: 4})
	env.sent = nil
	for _, tm := range env.Advance(5) {
		n.Deliver(1, tm)
	}
	if len(env.sent) != 0 {
		t.Errorf("expired timer for a delivered round acted: %v", env.sent)
	}
}

func TestGraftTriggersRetransmission(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 6, Hops: 1, Payload: []byte("z")})
	n.Deliver(3, msg.Message{Type: msg.PlumtreePrune, Sender: 3}) // n3 now lazy
	env.sent = nil

	n.Deliver(3, msg.Message{Type: msg.PlumtreeGraft, Sender: 3, Round: 6, Accept: true})
	gossips := env.sentOfType(msg.PlumtreeGossip)
	if len(gossips) != 1 || gossips[0].to != 3 {
		t.Fatalf("retransmissions = %v, want one to n3", gossips)
	}
	if string(gossips[0].m.Payload) != "z" || gossips[0].m.Hops != 2 {
		t.Errorf("retransmitted frame = %+v, want cached payload at hops 2", gossips[0].m)
	}
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{2, 3}) {
		t.Errorf("eager = %v, want grafted link restored", n.EagerPeers())
	}
}

func TestGraftWithoutRetransmissionRequest(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{}, nil)
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 6})
	n.Deliver(2, msg.Message{Type: msg.PlumtreePrune, Sender: 2})
	env.sent = nil

	// Accept=false is the optimization graft: re-eager the link, no payload.
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGraft, Sender: 2, Round: 6, Accept: false})
	if len(env.sentOfType(msg.PlumtreeGossip)) != 0 {
		t.Error("optimization graft triggered a retransmission")
	}
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{2}) {
		t.Errorf("eager = %v, want [n2]", n.EagerPeers())
	}
}

func TestOptimizationSwapsEagerAndLazy(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{OptimizeThreshold: 2}, nil)
	// Deliver through n2 at hop count 9.
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 8, Hops: 8})
	n.Deliver(3, msg.Message{Type: msg.PlumtreePrune, Sender: 3}) // n3 lazy
	env.sent = nil

	// n3 announces the same round at hop 2: the path via n3 (3 hops) beats
	// ours (9) by more than the threshold, so the links swap.
	n.Deliver(3, msg.Message{Type: msg.PlumtreeIHave, Sender: 3, Round: 8, Hops: 2})
	grafts := env.sentOfType(msg.PlumtreeGraft)
	if len(grafts) != 1 || grafts[0].to != 3 || grafts[0].m.Accept {
		t.Fatalf("grafts = %v, want optimization graft to n3", grafts)
	}
	prunes := env.sentOfType(msg.PlumtreePrune)
	if len(prunes) != 1 || prunes[0].to != 2 {
		t.Fatalf("prunes = %v, want parent n2 pruned", prunes)
	}
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{3}) || !reflect.DeepEqual(n.LazyPeers(), []id.ID{2}) {
		t.Errorf("eager = %v lazy = %v after swap", n.EagerPeers(), n.LazyPeers())
	}
	if n.Control().Optimizes != 1 {
		t.Errorf("optimizes = %d, want 1", n.Control().Optimizes)
	}
}

func TestOptimizationRespectsThreshold(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{OptimizeThreshold: 4}, nil)
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 8, Hops: 4}) // delivered at 5
	n.Deliver(3, msg.Message{Type: msg.PlumtreePrune, Sender: 3})
	env.sent = nil

	// Announced path delivers at 3: an improvement of 2 < threshold 4.
	n.Deliver(3, msg.Message{Type: msg.PlumtreeIHave, Sender: 3, Round: 8, Hops: 2})
	if len(env.sent) != 0 {
		t.Errorf("sub-threshold improvement acted: %v", env.sent)
	}
}

func TestSendFailureRemovesPeerAndReports(t *testing.T) {
	env := newFakeEnv(1)
	env.down[3] = true
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{ReportPeerDown: true}, nil)
	n.Broadcast(1, nil)
	if len(mem.downs) != 1 || mem.downs[0] != 3 {
		t.Errorf("downs = %v, want [n3]", mem.downs)
	}
	_, _, _, fails := n.Counters()
	if fails != 1 {
		t.Errorf("sendFails = %d, want 1", fails)
	}
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{2}) {
		t.Errorf("eager = %v, dead peer not removed", n.EagerPeers())
	}
}

func TestSendFailureNotReportedWhenDisabled(t *testing.T) {
	env := newFakeEnv(1)
	env.down[3] = true
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{ReportPeerDown: false}, nil)
	n.Broadcast(1, nil)
	if len(mem.downs) != 0 {
		t.Errorf("downs = %v, want none (fire-and-forget)", mem.downs)
	}
}

func TestReconcileTracksMembershipChanges(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)
	n.Broadcast(1, nil)
	n.Deliver(3, msg.Message{Type: msg.PlumtreePrune, Sender: 3})

	// n3 leaves the overlay, n4 joins.
	mem.neighbors = []id.ID{2, 4}
	n.OnCycle()
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{2, 4}) {
		t.Errorf("eager = %v, want [n2 n4] (newcomer eager, leaver dropped)", n.EagerPeers())
	}
	if len(n.LazyPeers()) != 0 {
		t.Errorf("lazy = %v, want empty", n.LazyPeers())
	}
	if mem.cycles != 1 {
		t.Error("membership OnCycle not delegated")
	}
}

func TestOnPeerDownRemovesFromSetsAndForwards(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)
	n.Broadcast(1, nil)
	n.OnPeerDown(2)
	if len(mem.downs) != 1 || mem.downs[0] != 2 {
		t.Errorf("downs = %v, want [n2]", mem.downs)
	}
	if !reflect.DeepEqual(n.EagerPeers(), []id.ID{3}) {
		t.Errorf("eager = %v, want [n3]", n.EagerPeers())
	}
}

func TestMembershipMessagesDelegated(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{}
	n := New(env, mem, Config{}, nil)
	n.Deliver(2, msg.Message{Type: msg.Shuffle, Sender: 2})
	if len(mem.delivered) != 1 || mem.delivered[0].Type != msg.Shuffle {
		t.Error("membership message not delegated")
	}
	if n.Membership() != peer.Membership(mem) {
		t.Error("Membership() does not return the wrapped protocol")
	}
}

func TestBroadcastDuplicateRoundIgnored(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2}}
	n := New(env, mem, Config{}, nil)
	n.Broadcast(5, nil)
	env.sent = nil
	n.Broadcast(5, nil)
	if len(env.sent) != 0 {
		t.Error("re-broadcast of a seen round pushed again")
	}
}

func TestResetSeenClearsDeliveryAndMissingState(t *testing.T) {
	env := newFakeEnv(1)
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{TimerDelay: 5}, nil)
	n.Deliver(2, msg.Message{Type: msg.PlumtreeGossip, Sender: 2, Round: 3})
	n.Deliver(3, msg.Message{Type: msg.PlumtreeIHave, Sender: 3, Round: 99})
	if !n.Seen(3) {
		t.Fatal("round not marked seen")
	}
	n.ResetSeen()
	if n.Seen(3) {
		t.Error("ResetSeen did not clear the cache")
	}
	env.sent = nil
	for _, tm := range env.Advance(5) {
		n.Deliver(1, tm) // stale timer for a forgotten round
	}
	if len(env.sent) != 0 {
		t.Errorf("stale timer acted after ResetSeen: %v", env.sent)
	}
}

func TestOnCycleRearmsStalledRepair(t *testing.T) {
	env := newFakeEnv(1)
	env.down[2] = true
	mem := &fakeMembership{neighbors: []id.ID{2, 3}}
	n := New(env, mem, Config{}, nil)

	// Two announcers; the first graft target is dead, so the expiry falls
	// through to the second announcer immediately.
	n.Deliver(2, msg.Message{Type: msg.PlumtreeIHave, Sender: 2, Round: 4, Hops: 1})
	n.Deliver(3, msg.Message{Type: msg.PlumtreeIHave, Sender: 3, Round: 4, Hops: 1})
	env.sent = nil
	// Fire the missing-message timer by hand.
	n.Deliver(1, msg.Message{Type: msg.PlumtreeIHave, Sender: 1, Round: 4})
	grafts := env.sentOfType(msg.PlumtreeGraft)
	if len(grafts) != 1 || grafts[0].to != 3 {
		t.Fatalf("grafts = %v, want fall-through to n3", grafts)
	}

	// The graft was consumed without a delivery; the next cycle garbage
	// collects the exhausted entry rather than leaking it.
	env.sent = nil
	n.OnCycle()
	n.OnCycle()
	if n.miss.Len() != 0 {
		t.Errorf("missing entries leaked: %d", n.miss.Len())
	}
}

func TestWithDefaults(t *testing.T) {
	cfg := Config{}.WithDefaults()
	if cfg.TimerDelay != 1000 || cfg.OptimizeThreshold != 3 {
		t.Errorf("defaults = %+v", cfg)
	}
	custom := Config{TimerDelay: 3, OptimizeThreshold: 1}.WithDefaults()
	if custom.TimerDelay != 3 || custom.OptimizeThreshold != 1 {
		t.Errorf("custom overridden: %+v", custom)
	}
}
