package scamp

import (
	"fmt"
	"math"
	"testing"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/netsim"
	"hyparview/internal/peer"
	"hyparview/internal/peer/peertest"
	"hyparview/internal/rng"
)

// fakeEnv is a scriptable peer.Env for handler-level tests.
type fakeEnv struct {
	peertest.ManualScheduler
	self id.ID
	rand *rng.Rand
	down map[id.ID]bool
	sent []sentMsg
}

type sentMsg struct {
	to id.ID
	m  msg.Message
}

func newFakeEnv(self id.ID) *fakeEnv {
	return &fakeEnv{self: self, rand: rng.New(uint64(self) + 5), down: make(map[id.ID]bool)}
}

var _ peer.Env = (*fakeEnv)(nil)

func (e *fakeEnv) Self() id.ID     { return e.self }
func (e *fakeEnv) Rand() *rng.Rand { return e.rand }
func (e *fakeEnv) Watch(id.ID)     {}
func (e *fakeEnv) Unwatch(id.ID)   {}

func (e *fakeEnv) Send(dst id.ID, m msg.Message) error {
	if e.down[dst] {
		return fmt.Errorf("send: %w", peer.ErrPeerDown)
	}
	e.sent = append(e.sent, sentMsg{to: dst, m: m})
	return nil
}

func (e *fakeEnv) Probe(dst id.ID) error {
	if e.down[dst] {
		return fmt.Errorf("probe: %w", peer.ErrPeerDown)
	}
	return nil
}

func (e *fakeEnv) take() []sentMsg {
	out := e.sent
	e.sent = nil
	return out
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Config
		wantErr bool
	}{
		{name: "defaults", give: DefaultConfig().WithDefaults(), wantErr: false},
		{name: "negative c", give: Config{C: -1, ForwardTTL: 1, MaxView: 10}, wantErr: true},
		{name: "zero ttl", give: Config{C: 1, ForwardTTL: 0, MaxView: 10}, wantErr: true},
		{name: "timeout without heartbeat", give: Config{C: 1, ForwardTTL: 1, MaxView: 10, IsolationTimeout: 5}, wantErr: true},
		{name: "timeout below heartbeat", give: Config{C: 1, ForwardTTL: 1, MaxView: 10, HeartbeatEvery: 10, IsolationTimeout: 5}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestJoinAddsContactAndSubscribes(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	if err := n.Join(2); err != nil {
		t.Fatal(err)
	}
	if pv := n.PartialView(); len(pv) != 1 || pv[0] != 2 {
		t.Errorf("PartialView = %v, want [n2]", pv)
	}
	sent := env.take()
	if len(sent) != 1 || sent[0].m.Type != msg.ScampSubscribe {
		t.Errorf("sent = %+v", sent)
	}
}

func TestSubscribeFanoutIsViewPlusC(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{C: 4})
	for _, m := range []id.ID{10, 11, 12} {
		n.partial.Add(m)
	}
	n.Deliver(99, msg.Message{Type: msg.ScampSubscribe, Sender: 99, Subject: 99})
	fwd := 0
	for _, s := range env.take() {
		if s.m.Type == msg.ScampForwardSub {
			fwd++
			if s.m.Subject != 99 {
				t.Errorf("forwarded wrong subject: %+v", s.m)
			}
		}
	}
	if fwd != 3+4 {
		t.Errorf("forwarded %d copies, want |view|+c = 7", fwd)
	}
}

func TestSubscribeToLonelyContactKeepsDirectly(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	n.Deliver(99, msg.Message{Type: msg.ScampSubscribe, Sender: 99, Subject: 99})
	if pv := n.PartialView(); len(pv) != 1 || pv[0] != 99 {
		t.Errorf("PartialView = %v, want [n99]", pv)
	}
	// Keeping must notify the subscriber for its InView.
	sent := env.take()
	if len(sent) != 1 || sent[0].m.Type != msg.ScampKept || sent[0].to != 99 {
		t.Errorf("sent = %+v, want ScampKept to n99", sent)
	}
}

func TestForwardSubTTLGuardKeeps(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	n.partial.Add(10)
	n.Deliver(10, msg.Message{Type: msg.ScampForwardSub, Sender: 10, Subject: 99, TTL: 1})
	if !n.partial.Contains(99) {
		t.Error("TTL-exhausted subscription dropped instead of kept")
	}
}

func TestForwardSubNeverKeepsSelfOrDup(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	n.partial.Add(99)
	for i := 0; i < 50; i++ {
		n.Deliver(10, msg.Message{Type: msg.ScampForwardSub, Sender: 10, Subject: 99, TTL: 1})
		n.Deliver(10, msg.Message{Type: msg.ScampForwardSub, Sender: 10, Subject: 1, TTL: 1})
	}
	env.take()
	count := 0
	n.partial.ForEach(func(m id.ID) {
		if m == 99 {
			count++
		}
		if m == 1 {
			t.Fatal("kept own id")
		}
	})
	if count != 1 {
		t.Errorf("duplicate subscription kept %d times", count)
	}
}

func TestKeptUpdatesInView(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	n.Deliver(42, msg.Message{Type: msg.ScampKept, Sender: 42})
	if iv := n.InView(); len(iv) != 1 || iv[0] != 42 {
		t.Errorf("InView = %v, want [n42]", iv)
	}
}

func TestHeartbeatsSentAndConsumed(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{HeartbeatEvery: 2, IsolationTimeout: 6})
	n.partial.Add(10)
	n.OnCycle() // cycle 1: no heartbeat yet
	if len(env.take()) != 0 {
		t.Error("heartbeat sent off-schedule")
	}
	n.OnCycle() // cycle 2: heartbeat due
	sent := env.take()
	if len(sent) != 1 || sent[0].m.Type != msg.ScampHeartbeat || sent[0].to != 10 {
		t.Errorf("sent = %+v, want heartbeat to n10", sent)
	}
	// Receiving a heartbeat refreshes lastHeard.
	n.Deliver(10, msg.Message{Type: msg.ScampHeartbeat, Sender: 10})
	if n.lastHeard != n.cycle {
		t.Error("heartbeat did not refresh lastHeard")
	}
}

func TestIsolationTriggersResubscription(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{HeartbeatEvery: 2, IsolationTimeout: 3})
	n.partial.Add(10)
	for i := 0; i < 4; i++ {
		n.OnCycle()
	}
	resub := false
	for _, s := range env.take() {
		if s.m.Type == msg.ScampSubscribe {
			resub = true
		}
	}
	if !resub {
		t.Error("isolated node did not re-subscribe")
	}
	if n.Stats().IsolationEvents == 0 {
		t.Error("isolation event not counted")
	}
}

func TestLeaseResubscription(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{LeaseCycles: 3})
	n.partial.Add(10)
	for i := 0; i < 9; i++ {
		n.OnCycle()
		n.Deliver(10, msg.Message{Type: msg.ScampHeartbeat, Sender: 10})
	}
	resubs := 0
	for _, s := range env.take() {
		if s.m.Type == msg.ScampSubscribe {
			resubs++
		}
	}
	if resubs != 3 {
		t.Errorf("lease resubscriptions = %d over 9 cycles with lease 3, want 3", resubs)
	}
}

func TestLeaveNotifiesInViewWithReplacements(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	n.partial.Add(10)
	n.inView.Add(20)
	n.inView.Add(21)
	n.Leave()
	unsubs := 0
	for _, s := range env.take() {
		if s.m.Type == msg.ScampUnsubscribe {
			unsubs++
			if len(s.m.Nodes) != 1 || s.m.Nodes[0] != 10 {
				t.Errorf("unsubscribe carries %v, want replacement [n10]", s.m.Nodes)
			}
		}
	}
	if unsubs != 2 {
		t.Errorf("unsubscribes = %d, want 2 (one per InView member)", unsubs)
	}
	if len(n.PartialView()) != 0 || len(n.InView()) != 0 {
		t.Error("Leave did not clear views")
	}
}

func TestHandleUnsubscribeAdoptsReplacement(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	n.partial.Add(50)
	n.Deliver(50, msg.Message{
		Type: msg.ScampUnsubscribe, Sender: 50, Subject: 50, Nodes: []id.ID{60},
	})
	if n.partial.Contains(50) {
		t.Error("leaver still in partial view")
	}
	if !n.partial.Contains(60) {
		t.Error("replacement not adopted")
	}
}

func TestOnPeerDownIsNoop(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	n.partial.Add(10)
	n.OnPeerDown(10)
	if !n.partial.Contains(10) {
		t.Error("Scamp purged a view entry on send failure (it has no detector)")
	}
}

func TestGossipTargetsExcludeAndBound(t *testing.T) {
	env := newFakeEnv(1)
	n := New(env, Config{})
	for _, m := range []id.ID{10, 11, 12, 13} {
		n.partial.Add(m)
	}
	for i := 0; i < 50; i++ {
		ts := n.GossipTargets(2, 11)
		if len(ts) != 2 {
			t.Fatalf("targets = %v, want 2", ts)
		}
		for _, x := range ts {
			if x == 11 {
				t.Fatal("excluded node targeted")
			}
		}
	}
}

// TestViewSizesGrowLogarithmically reproduces SCAMP's signature property:
// mean partial view size ≈ log(n) + c after all subscriptions.
func TestViewSizesGrowLogarithmically(t *testing.T) {
	const n = 2000
	const c = 4
	s := netsim.New(42)
	nodes := make(map[id.ID]*Node, n)
	var ids []id.ID
	for i := 1; i <= n; i++ {
		nodeID := id.ID(i)
		var nd *Node
		s.Add(nodeID, func(env peer.Env) peer.Process {
			nd = New(env, Config{C: c})
			return nd
		})
		nodes[nodeID] = nd
		ids = append(ids, nodeID)
		if i > 1 {
			contact := ids[s.Rand().Intn(i-1)]
			if err := nd.Join(contact); err != nil {
				t.Fatal(err)
			}
			s.Drain()
		}
	}
	var sum float64
	for _, nd := range nodes {
		sum += float64(len(nd.PartialView()))
	}
	mean := sum / n
	want := math.Log(n) + c // ≈ 11.6
	if mean < want*0.6 || mean > want*1.8 {
		t.Errorf("mean view size = %.2f, want ≈ log(n)+c = %.2f", mean, want)
	}
}
