// Package scamp implements the SCAMP membership protocol (Ganesh, Kermarrec,
// Massoulié 2001/2003), the reactive baseline of the HyParView paper's
// evaluation.
//
// SCAMP is (mostly) reactive: partial views change in response to
// subscriptions. A new subscription is forwarded through the overlay and each
// node keeps the subscriber with probability 1/(1+|PartialView|), which makes
// view sizes converge around log(n)+c without any node knowing n. Nodes also
// keep an InView (who has me in their PartialView), send heartbeats to detect
// isolation, and hold subscriptions under a lease that forces periodic
// re-subscription.
package scamp

import (
	"fmt"

	"hyparview/internal/id"
	"hyparview/internal/msg"
	"hyparview/internal/peer"
	"hyparview/internal/view"
)

// Config carries the SCAMP parameters.
type Config struct {
	// C is the fault-tolerance parameter: the number of extra subscription
	// copies forwarded on top of one per PartialView member. The paper uses
	// c=4 (mean view size ≈ 34 at n=10,000).
	C int

	// ForwardTTL bounds subscription forwarding hops as a termination
	// guard; when it expires the subscription is kept unconditionally. The
	// original protocol forwards indefinitely (keeping happens with
	// probability 1 eventually); a generous bound changes nothing
	// observable and protects the simulator.
	ForwardTTL uint8

	// HeartbeatEvery is the period, in membership cycles, of heartbeats
	// sent to PartialView members. Zero disables heartbeats.
	HeartbeatEvery int

	// IsolationTimeout is the number of cycles without any received
	// heartbeat after which a node assumes isolation and re-subscribes.
	// Zero disables the check.
	IsolationTimeout int

	// LeaseCycles is the subscription lease: every LeaseCycles cycles
	// (staggered per node) the node re-subscribes through a random
	// PartialView member. Zero disables leases. The paper notes lease time
	// is "typically high to preserve stability", and its failure
	// experiments run before any lease expires.
	LeaseCycles int

	// MaxView bounds the PartialView container. SCAMP views are unbounded
	// by design; the bound is a defensive capacity for the container and
	// defaults to 1024.
	MaxView int
}

// DefaultConfig returns the paper's §5.1 SCAMP configuration: c=4,
// heartbeats every 10 cycles with a 30-cycle isolation timeout, leases
// disabled (the paper's runs end before lease expiry).
func DefaultConfig() Config {
	return Config{
		C:                4,
		ForwardTTL:       64,
		HeartbeatEvery:   10,
		IsolationTimeout: 30,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.C < 0:
		return fmt.Errorf("scamp: C must be non-negative, got %d", c.C)
	case c.ForwardTTL == 0:
		return fmt.Errorf("scamp: ForwardTTL must be positive")
	case c.MaxView <= 0:
		return fmt.Errorf("scamp: MaxView must be positive, got %d", c.MaxView)
	case c.IsolationTimeout > 0 && c.HeartbeatEvery <= 0:
		return fmt.Errorf("scamp: IsolationTimeout requires heartbeats")
	case c.HeartbeatEvery > 0 && c.IsolationTimeout > 0 &&
		c.IsolationTimeout <= c.HeartbeatEvery:
		return fmt.Errorf("scamp: IsolationTimeout (%d) must exceed HeartbeatEvery (%d)",
			c.IsolationTimeout, c.HeartbeatEvery)
	}
	return nil
}

// WithDefaults fills zero-valued fields from DefaultConfig.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.C == 0 {
		c.C = d.C
	}
	if c.ForwardTTL == 0 {
		c.ForwardTTL = d.ForwardTTL
	}
	if c.MaxView == 0 {
		c.MaxView = 1024
	}
	return c
}

// Stats counts protocol events on one node.
type Stats struct {
	SubscriptionsSeen uint64 // forwarded subscriptions received
	SubscriptionsKept uint64
	Resubscriptions   uint64 // lease renewals + isolation recoveries
	IsolationEvents   uint64
	HeartbeatsSent    uint64
	Unsubscriptions   uint64
}

// Node is one SCAMP protocol instance. Not safe for concurrent use.
type Node struct {
	env  peer.Env
	self id.ID
	cfg  Config

	partial *view.View // out-links: gossip targets
	inView  *view.View // in-links: who keeps us

	cycle       int
	leaseOffset int
	lastHeard   int // cycle at which we last received a heartbeat

	// gossipScratch backs GossipTargets' reused result buffer (see the
	// peer.Membership contract).
	gossipScratch []id.ID

	stats Stats
}

var _ peer.Membership = (*Node)(nil)

// New constructs a SCAMP node bound to env. Zero Config fields take
// defaults; invalid configurations panic.
func New(env peer.Env, cfg Config) *Node {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := &Node{
		env:     env,
		self:    env.Self(),
		cfg:     cfg,
		partial: view.New(cfg.MaxView),
		inView:  view.New(cfg.MaxView),
	}
	if cfg.LeaseCycles > 0 {
		n.leaseOffset = env.Rand().Intn(cfg.LeaseCycles)
	}
	return n
}

// Join subscribes through contact.
func (n *Node) Join(contact id.ID) error {
	if contact == n.self || contact.IsNil() {
		return nil
	}
	if err := n.env.Send(contact, msg.Message{
		Type:    msg.ScampSubscribe,
		Sender:  n.self,
		Subject: n.self,
	}); err != nil {
		return err
	}
	// The new node starts with the contact in its PartialView.
	n.partial.Add(contact)
	return nil
}

// Leave gracefully unsubscribes (SCAMP unsubscription): every InView member
// is asked to replace us with one of our PartialView members, preserving
// their out-degree.
func (n *Node) Leave() {
	n.stats.Unsubscriptions++
	replacements := n.partial.Members()
	i := 0
	n.inView.ForEach(func(watcher id.ID) {
		var repl []id.ID
		if len(replacements) > 0 {
			repl = []id.ID{replacements[i%len(replacements)]}
			i++
		}
		_ = n.env.Send(watcher, msg.Message{
			Type:    msg.ScampUnsubscribe,
			Sender:  n.self,
			Subject: n.self,
			Nodes:   repl,
		})
	})
	n.partial.Clear()
	n.inView.Clear()
}

// Self returns the node's identifier.
func (n *Node) Self() id.ID { return n.self }

// Stats returns a copy of the protocol counters.
func (n *Node) Stats() Stats { return n.stats }

// PartialView returns a copy of the out-link view.
func (n *Node) PartialView() []id.ID { return n.partial.Members() }

// InView returns a copy of the in-link view.
func (n *Node) InView() []id.ID { return n.inView.Members() }

// Neighbors implements peer.Membership.
func (n *Node) Neighbors() []id.ID { return n.partial.Members() }

// GossipTargets implements peer.Membership: fanout random PartialView
// members, excluding exclude. The result is a reused scratch buffer, valid
// until the next call (peer.Membership contract). The in-place filter below
// is why the sample lands in scratch rather than a frozen message slice.
func (n *Node) GossipTargets(fanout int, exclude id.ID) []id.ID {
	if fanout <= 0 || n.partial.Empty() {
		return nil
	}
	sample := n.partial.SampleInto(n.env.Rand(), fanout+1, n.gossipScratch[:0])
	n.gossipScratch = sample
	out := sample[:0]
	for _, m := range sample {
		if m != exclude {
			out = append(out, m)
		}
	}
	if len(out) > fanout {
		out = out[:fanout]
	}
	return out
}

// OnPeerDown implements peer.Membership. SCAMP, as evaluated in the paper,
// has no send-failure detector: gossip omissions are silent.
func (n *Node) OnPeerDown(id.ID) {}

// OnCycle implements peer.Membership: heartbeats, isolation detection and
// lease renewal.
func (n *Node) OnCycle() {
	n.cycle++
	hb := n.cfg.HeartbeatEvery
	if hb > 0 && n.cycle%hb == 0 {
		n.partial.ForEach(func(m id.ID) {
			n.stats.HeartbeatsSent++
			_ = n.env.Send(m, msg.Message{Type: msg.ScampHeartbeat, Sender: n.self})
		})
	}
	if t := n.cfg.IsolationTimeout; t > 0 && n.cycle-n.lastHeard > t {
		// No heartbeat for too long: we are (in-)isolated. Rejoin through a
		// PartialView member (paper §2.4).
		n.stats.IsolationEvents++
		n.lastHeard = n.cycle
		n.resubscribe()
	}
	if l := n.cfg.LeaseCycles; l > 0 && (n.cycle+n.leaseOffset)%l == 0 {
		n.resubscribe()
	}
}

// resubscribe re-issues a subscription through a random PartialView member.
func (n *Node) resubscribe() {
	target, ok := n.partial.Random(n.env.Rand())
	if !ok {
		return
	}
	n.stats.Resubscriptions++
	_ = n.env.Send(target, msg.Message{
		Type:    msg.ScampSubscribe,
		Sender:  n.self,
		Subject: n.self,
	})
}

// Deliver implements peer.Membership.
func (n *Node) Deliver(from id.ID, m msg.Message) {
	switch m.Type {
	case msg.ScampSubscribe:
		n.handleSubscribe(m.Subject)
	case msg.ScampForwardSub:
		n.handleForwardSub(m)
	case msg.ScampKept:
		n.inView.Add(m.Sender)
	case msg.ScampHeartbeat:
		n.lastHeard = n.cycle
	case msg.ScampUnsubscribe:
		n.handleUnsubscribe(m)
	default:
		_ = from
	}
}

// handleSubscribe runs at the contact node: one forwarded copy per
// PartialView member plus C extra copies to random members.
func (n *Node) handleSubscribe(subscriber id.ID) {
	if subscriber == n.self || subscriber.IsNil() {
		return
	}
	if n.partial.Empty() {
		// Degenerate bootstrap: contact is alone; keep directly.
		n.keep(subscriber)
		return
	}
	fwd := msg.Message{
		Type:    msg.ScampForwardSub,
		Sender:  n.self,
		Subject: subscriber,
		TTL:     n.cfg.ForwardTTL,
	}
	n.partial.ForEach(func(m id.ID) {
		_ = n.env.Send(m, fwd)
	})
	for i := 0; i < n.cfg.C; i++ {
		if target, ok := n.partial.Random(n.env.Rand()); ok {
			_ = n.env.Send(target, fwd)
		}
	}
}

func (n *Node) handleForwardSub(m msg.Message) {
	subscriber := m.Subject
	if subscriber.IsNil() || subscriber == n.self {
		return
	}
	n.stats.SubscriptionsSeen++
	// Keep with probability 1/(1+|PartialView|) unless already present.
	p := 1.0 / float64(1+n.partial.Len())
	if !n.partial.Contains(subscriber) && n.env.Rand().Float64() < p {
		n.keep(subscriber)
		return
	}
	if m.TTL <= 1 || n.partial.Empty() {
		// Termination guard: keep unconditionally rather than dropping a
		// subscription on the floor.
		if !n.partial.Contains(subscriber) {
			n.keep(subscriber)
		}
		return
	}
	target, ok := n.partial.Random(n.env.Rand())
	if !ok {
		return
	}
	fwd := m
	fwd.Sender = n.self
	fwd.TTL = m.TTL - 1
	_ = n.env.Send(target, fwd)
}

// keep adds subscriber to the PartialView and notifies it for InView
// bookkeeping.
func (n *Node) keep(subscriber id.ID) {
	if !n.partial.Add(subscriber) {
		return
	}
	n.stats.SubscriptionsKept++
	_ = n.env.Send(subscriber, msg.Message{Type: msg.ScampKept, Sender: n.self})
}

func (n *Node) handleUnsubscribe(m msg.Message) {
	leaver := m.Subject
	if !n.partial.Remove(leaver) {
		return
	}
	// Preserve out-degree by adopting the replacement the leaver suggested.
	for _, repl := range m.Nodes {
		if repl != n.self && !repl.IsNil() && !n.partial.Contains(repl) {
			if n.partial.Add(repl) {
				_ = n.env.Send(repl, msg.Message{Type: msg.ScampKept, Sender: n.self})
			}
			break
		}
	}
	n.inView.Remove(leaver)
}
